// Offline causal analysis of taskrt trace CSVs (Fig. 10 companion).
//
//   trace_analyze trace.csv
//       Print critical path (seconds, compute/network/runtime split, % in
//       halo messages), comm/compute overlap efficiency, per-rank idle
//       breakdown, and totals for one run.
//
//   trace_analyze base.csv ca.csv --diff
//       Compare a baseline trace against a communication-avoiding variant of
//       the same problem: critical-path delta, network-share delta, and the
//       redundant-compute share (extra CPU seconds the CA run spends
//       recomputing ghost regions, as a fraction of the base run's compute).
//
// Options:
//   --diff               two-trace comparison mode (requires two inputs)
//   --report=out.json    write a repro.trace_analysis/v1 document (single
//                        trace mode; validated by tools/validate_report)
//   --chrome=out.json    re-export the trace for chrome://tracing
//   --name=label         report name (default: the input filename)
//   --steps=N            print the last N critical-path steps (default 0)
//   --gate-wire=R        diff mode: exit 1 if the second trace's mean wire
//                        time exceeds R x the first trace's (CI regression
//                        gate for the persistent-channel leg)
//   --gate-latency=R     diff mode: exit 1 if the second trace's mean
//                        enqueue->deliver latency exceeds R x the first's
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"
#include "runtime/trace.hpp"
#include "support/options.hpp"

namespace {

std::vector<repro::rt::TraceEvent> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  return repro::rt::read_trace_csv(in);
}

void print_analysis(const std::string& label,
                    const repro::obs::TraceAnalysis& a, int steps) {
  std::cout << "== " << label << " ==\n";
  std::cout << std::fixed << std::setprecision(6);
  std::cout << "  span               " << a.span_s << " s\n";
  std::cout << "  critical path      " << a.critical_path_s << " s  ("
            << a.cp_tasks << " tasks, " << a.cp_messages << " messages)\n";
  std::cout << "    compute          " << a.cp_compute_s << " s\n";
  std::cout << "    network          " << a.cp_network_s << " s  ("
            << std::setprecision(1) << 100.0 * a.network_share()
            << "% of path)\n"
            << std::setprecision(6);
  std::cout << "    runtime          " << a.cp_runtime_s << " s\n";
  std::cout << "  overlap efficiency " << std::setprecision(1)
            << 100.0 * a.overlap_efficiency << "%  ("
            << std::setprecision(6) << a.network_inflight_s
            << " s in flight, " << a.compute_active_s
            << " s compute-active)\n";
  std::cout << "  totals             " << a.tasks << " tasks, " << a.sends
            << " sends, " << a.recvs << " recvs, " << a.steals << " steals, "
            << a.bytes_sent << " bytes, " << a.retransmits
            << " retransmits\n";
  std::cout << "  per-message        mean enqueue->deliver "
            << a.mean_flow_latency_s() << " s (" << a.flows_delivered
            << " flows), mean wire " << a.mean_wire_s() << " s\n";
  if (a.fused_tasks > 0) {
    std::cout << "  fused wavefront    " << a.fused_tasks
              << " fused tasks, depth " << a.fused_depth << "\n";
  }
  for (const auto& [rank, kinds] : a.idle_by_rank) {
    std::cout << "  idle rank " << rank << "      ";
    bool first = true;
    for (const auto& [kind, seconds] : kinds) {
      if (!first) std::cout << ", ";
      std::cout << kind << "=" << seconds << "s";
      first = false;
    }
    std::cout << "\n";
  }
  if (steps > 0 && !a.path.empty()) {
    const std::size_t n = std::min<std::size_t>(steps, a.path.size());
    std::cout << "  last " << n << " critical-path steps:\n";
    for (std::size_t i = a.path.size() - n; i < a.path.size(); ++i) {
      const auto& s = a.path[i];
      std::cout << "    " << s.key.to_string() << " [" << s.klass << "] r"
                << s.rank << "  compute=" << s.compute_s
                << "s network=" << s.network_s << "s runtime=" << s.runtime_s
                << "s" << (s.remote_release ? "  (remote release)" : "")
                << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  repro::Options opts(argc, argv);
  const auto& inputs = opts.positional();
  const bool diff = opts.get_bool("diff", false);
  if (inputs.empty() || (diff && inputs.size() != 2) ||
      (!diff && inputs.size() != 1)) {
    std::cerr << "usage: trace_analyze <trace.csv> [--report=out.json] "
                 "[--chrome=out.json] [--name=label] [--steps=N]\n"
                 "       trace_analyze <base.csv> <ca.csv> --diff\n";
    return 2;
  }

  try {
    if (!diff) {
      const std::string& path = inputs[0];
      const auto events = load_trace(path);
      const auto analysis = repro::obs::analyze_dataflow(events);
      print_analysis(opts.get_string("name", path), analysis,
                     static_cast<int>(opts.get_int("steps", 0)));

      const std::string report_path = opts.get_string("report", "");
      if (!report_path.empty()) {
        repro::obs::Json params = repro::obs::Json::object();
        params["trace"] = path;
        repro::obs::Json doc = repro::obs::make_trace_analysis_report(
            opts.get_string("name", path), analysis, std::move(params));
        const std::string text = doc.dump(2) + "\n";
        std::string error;
        if (!repro::obs::validate_trace_analysis(text, &error)) {
          std::cerr << "internal error: generated report is invalid: " << error
                    << "\n";
          return 1;
        }
        std::ofstream out(report_path);
        if (!out) {
          std::cerr << "cannot open '" << report_path << "' for writing\n";
          return 1;
        }
        out << text;
        std::cout << "report written to " << report_path << "\n";
      }

      const std::string chrome_path = opts.get_string("chrome", "");
      if (!chrome_path.empty()) {
        std::ofstream out(chrome_path);
        if (!out) {
          std::cerr << "cannot open '" << chrome_path << "' for writing\n";
          return 1;
        }
        repro::rt::write_chrome_trace(events, out);
        std::cout << "chrome trace written to " << chrome_path << "\n";
      }
      return 0;
    }

    // Diff mode: base vs communication-avoiding run of the same problem.
    const auto base = repro::obs::analyze_dataflow(load_trace(inputs[0]));
    const auto ca = repro::obs::analyze_dataflow(load_trace(inputs[1]));
    const int steps = static_cast<int>(opts.get_int("steps", 0));
    print_analysis("base: " + inputs[0], base, steps);
    print_analysis("ca:   " + inputs[1], ca, steps);

    std::cout << "== diff (ca vs base) ==\n";
    std::cout << std::fixed << std::setprecision(6);
    const double cp_delta = ca.critical_path_s - base.critical_path_s;
    std::cout << "  critical path      " << base.critical_path_s << " -> "
              << ca.critical_path_s << " s  ("
              << (cp_delta <= 0.0 ? "" : "+") << cp_delta << " s)\n";
    std::cout << "  network share      " << std::setprecision(1)
              << 100.0 * base.network_share() << "% -> "
              << 100.0 * ca.network_share() << "%\n";
    std::cout << "  overlap efficiency " << 100.0 * base.overlap_efficiency
              << "% -> " << 100.0 * ca.overlap_efficiency << "%\n";
    std::cout << std::setprecision(6);
    std::cout << "  cp messages        " << base.cp_messages << " -> "
              << ca.cp_messages << "\n";
    // CA trades messages for ghost-region recomputation: any compute beyond
    // the base run is redundant work, reported relative to base compute.
    const double redundant =
        base.compute_seconds > 0.0
            ? std::max(0.0, ca.compute_seconds - base.compute_seconds) /
                  base.compute_seconds
            : 0.0;
    std::cout << "  compute seconds    " << base.compute_seconds << " -> "
              << ca.compute_seconds << " s\n";
    std::cout << "  redundant compute  " << std::setprecision(1)
              << 100.0 * redundant << "% of base compute\n";
    std::cout << std::setprecision(9);
    std::cout << "  mean wire          " << base.mean_wire_s() << " -> "
              << ca.mean_wire_s() << " s\n";
    std::cout << "  mean latency       " << base.mean_flow_latency_s()
              << " -> " << ca.mean_flow_latency_s() << " s\n";
    std::cout << "  fused depth        " << base.fused_depth << " -> "
              << ca.fused_depth << "  (" << base.fused_tasks << " -> "
              << ca.fused_tasks << " fused tasks)\n";

    // Regression gates: fail when the candidate (second) trace's per-message
    // costs regress past the allowed ratio over the baseline (first) trace.
    int status = 0;
    const double gate_wire = opts.get_double("gate-wire", 0.0);
    if (gate_wire > 0.0 && ca.mean_wire_s() > gate_wire * base.mean_wire_s()) {
      std::cerr << "trace_analyze: mean wire time regressed: "
                << ca.mean_wire_s() << " s > " << gate_wire << " x "
                << base.mean_wire_s() << " s\n";
      status = 1;
    }
    const double gate_latency = opts.get_double("gate-latency", 0.0);
    if (gate_latency > 0.0 &&
        ca.mean_flow_latency_s() >
            gate_latency * base.mean_flow_latency_s()) {
      std::cerr << "trace_analyze: mean enqueue->deliver latency regressed: "
                << ca.mean_flow_latency_s() << " s > " << gate_latency
                << " x " << base.mean_flow_latency_s() << " s\n";
      status = 1;
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "trace_analyze: " << e.what() << "\n";
    return 1;
  }
}
