#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Scans the given files (or, with no arguments, every *.md at the repo root
and under docs/) for inline links and images `[text](target)` and verifies
that every RELATIVE target resolves to an existing file or directory,
after stripping any #fragment. External schemes (http, https, mailto) and
pure-fragment links (#section) are skipped — CI must not depend on network
reachability. Exits 1 and lists every broken link otherwise.

Usage: tools/check_md_links.py [file.md ...]
"""
import os
import re
import sys

# Inline links/images. [text](target "title") — capture the target up to the
# first unescaped space or closing paren. Reference-style definitions
# `[id]: target` are also covered.
INLINE_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def find_targets(text):
    for match in INLINE_RE.finditer(text):
        yield match.group(1), text[: match.start()].count("\n") + 1
    for match in REFDEF_RE.finditer(text):
        yield match.group(1), text[: match.start()].count("\n") + 1


def default_files(root):
    files = sorted(
        os.path.join(root, f) for f in os.listdir(root) if f.endswith(".md")
    )
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for dirpath, _dirnames, filenames in os.walk(docs):
            files.extend(
                os.path.join(dirpath, f)
                for f in sorted(filenames)
                if f.endswith(".md")
            )
    return files


def check_file(path, broken):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.dirname(os.path.abspath(path))
    count = 0
    for target, line in find_targets(text):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        count += 1
        resolved = os.path.normpath(
            os.path.join(base, target.split("#", 1)[0])
        )
        if not os.path.exists(resolved):
            broken.append(f"{path}:{line}: broken link -> {target}")
    return count


def main(argv):
    files = argv[1:] or default_files(os.getcwd())
    if not files:
        print("check_md_links: no markdown files found", file=sys.stderr)
        return 1
    broken = []
    checked = 0
    for path in files:
        checked += check_file(path, broken)
    for message in broken:
        print(message, file=sys.stderr)
    print(
        f"check_md_links: {len(files)} files, {checked} relative links, "
        f"{len(broken)} broken"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
