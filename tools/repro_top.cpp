// Terminal live view over a repro.telemetry/v1 dump: `top` for a stencil
// run. Attach to the file a live run rewrites (DistConfig::telemetry_dump /
// --telemetry-dump=<path> on the benches) and watch per-rank progress, idle
// taxonomy, wire traffic, and detector events refresh in place.
//
//   repro_top --file=<path> [--interval=0.5] [--once] [--no-clear]
//
// The producer replaces the dump atomically (write temp + rename), so a read
// never observes a torn document; a transiently missing or half-created file
// is simply retried next tick.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace {

struct Options {
  std::string file;
  double interval_s = 0.5;
  bool once = false;
  bool clear = true;
};

bool parse_args(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--file=", 0) == 0) {
      out->file = arg.substr(7);
    } else if (arg.rfind("--interval=", 0) == 0) {
      out->interval_s = std::stod(arg.substr(11));
    } else if (arg == "--once") {
      out->once = true;
    } else if (arg == "--no-clear") {
      out->clear = false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (out->file.empty()) {
    std::cerr << "usage: repro_top --file=<telemetry.json> [--interval=0.5] "
                 "[--once] [--no-clear]\n";
    return false;
  }
  return true;
}

double number_or(const repro::obs::Json& obj, const char* key,
                 double fallback = 0.0) {
  const repro::obs::Json* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string string_or(const repro::obs::Json& obj, const char* key) {
  const repro::obs::Json* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

/// One rendered frame: per-rank table + detector-event tail.
void render(const repro::obs::Json& doc, bool clear) {
  if (clear) std::fputs("\x1b[2J\x1b[H", stdout);

  double snapshots = 0.0;
  if (const repro::obs::Json* rows = doc.find("ranks");
      rows != nullptr && rows->is_array()) {
    for (const repro::obs::Json& row : rows->as_array()) {
      if (row.is_object()) snapshots += number_or(row, "snapshots");
    }
  }
  std::printf("repro_top — source=%s  ranks=%.0f  snapshots=%.0f  events=%zu\n",
              string_or(doc, "source").c_str(), number_or(doc, "nranks"),
              snapshots,
              doc.find("events") != nullptr ? doc.find("events")->size() : 0u);
  std::printf("%4s %9s %9s %7s %10s %7s %9s %9s %9s\n", "rank", "superstep",
              "tasks", "steals", "wire_MB", "queue", "halo_s", "noready_s",
              "steal_s");

  const repro::obs::Json* ranks = doc.find("ranks");
  if (ranks != nullptr && ranks->is_array()) {
    for (const repro::obs::Json& row : ranks->as_array()) {
      if (!row.is_object()) continue;
      if (number_or(row, "rank", -1.0) < 0.0) {
        std::printf("%4s %9s — no report yet\n", "?", "-");
        continue;
      }
      std::printf("%4.0f %9.0f %9.0f %7.0f %10.3f %7.0f %9.3f %9.3f %9.3f\n",
                  number_or(row, "rank"), number_or(row, "superstep"),
                  number_or(row, "tasks_executed"), number_or(row, "steals"),
                  number_or(row, "sent_bytes") / 1e6,
                  number_or(row, "queue_depth"),
                  number_or(row, "idle_halo_s"),
                  number_or(row, "idle_noready_s"),
                  number_or(row, "idle_steal_s"));
    }
  }

  const repro::obs::Json* events = doc.find("events");
  if (events != nullptr && events->is_array() && events->size() > 0) {
    std::printf("\ndetector events (last %zu of %zu):\n",
                std::min<std::size_t>(events->size(), 8), events->size());
    const std::size_t first =
        events->size() > 8 ? events->size() - 8 : 0;
    for (std::size_t i = first; i < events->size(); ++i) {
      const repro::obs::Json& e = events->as_array()[i];
      std::printf("  [%s] rank %.0f @ superstep %.0f  value=%.3f "
                  "threshold=%.3f\n",
                  string_or(e, "detector").c_str(), number_or(e, "rank"),
                  number_or(e, "superstep"), number_or(e, "value"),
                  number_or(e, "threshold"));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;

  int misses = 0;
  while (true) {
    std::ifstream in(opt.file);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      repro::obs::Json doc;
      std::string error;
      if (repro::obs::Json::parse(buffer.str(), &doc, &error) &&
          repro::obs::validate_telemetry(doc, &error)) {
        render(doc, opt.clear);
        misses = 0;
      } else {
        // A dump mid-creation or from a foreign writer: report, keep trying.
        std::fprintf(stderr, "repro_top: %s: %s\n", opt.file.c_str(),
                     error.c_str());
        if (opt.once) return 1;
      }
    } else {
      if (opt.once || ++misses > 600) {
        std::fprintf(stderr, "repro_top: cannot open %s\n", opt.file.c_str());
        return 1;
      }
    }
    if (opt.once) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opt.interval_s));
  }
}
