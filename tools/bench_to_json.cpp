// Normalize a repro.run_report/v1 into a repro.bench_result/v1 — the bridge
// from the rich per-run reports the benches write to the flat, tolerance-
// annotated documents the CI perf gate diffs against committed baselines.
//
//   bench_to_json <run_report.json> --out=<BENCH_name.json>
//                 [--exact=<counter_family>]... [--time-tol=15] [--tol=10]
//
// Mapping:
//   * every numeric "derived" entry becomes a metric — names that look like
//     durations ("*_s", "*seconds*", "*time*") become kind "time"
//     (direction lower), everything else kind "ratio" (direction higher);
//   * each --exact=<family> pulls that counter family's total from the
//     report's metrics block as a kind "exact" metric (the gate hard-fails
//     on any difference — message/byte/allocation counters);
//   * scalar "params" are copied into the bench context so a configuration
//     drift shows up in the gate diff instead of masquerading as a
//     regression.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_result.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"

namespace {

bool looks_like_time(const std::string& name) {
  if (name.size() > 2 && name.compare(name.size() - 2, 2, "_s") == 0) {
    return true;
  }
  return name.find("seconds") != std::string::npos ||
         name.find("time") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  std::string out_path;
  std::vector<std::string> exact_families;
  double time_tol = 15.0;
  double ratio_tol = 10.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--exact=", 0) == 0) {
      exact_families.push_back(arg.substr(8));
    } else if (arg.rfind("--time-tol=", 0) == 0) {
      time_tol = std::stod(arg.substr(11));
    } else if (arg.rfind("--tol=", 0) == 0) {
      ratio_tol = std::stod(arg.substr(6));
    } else if (report_path.empty()) {
      report_path = arg;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (report_path.empty() || out_path.empty()) {
    std::cerr << "usage: bench_to_json <run_report.json> --out=<bench.json> "
                 "[--exact=<counter_family>]... [--time-tol=N] [--tol=N]\n";
    return 2;
  }

  std::ifstream in(report_path);
  if (!in) {
    std::cerr << report_path << ": cannot open\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string error;
  if (!repro::obs::validate_run_report(text, &error)) {
    std::cerr << report_path << ": not a valid run report: " << error << "\n";
    return 1;
  }
  repro::obs::Json doc;
  repro::obs::Json::parse(text, &doc, &error);

  repro::obs::BenchResult bench(doc["name"].as_string());
  for (const auto& [key, value] : doc["params"].as_object()) {
    bench.set_context(key, value);
  }

  std::size_t emitted = 0;
  for (const auto& [key, value] : doc["derived"].as_object()) {
    if (!value.is_number()) continue;
    if (looks_like_time(key)) {
      bench.add_time(key, value.as_number(), time_tol);
    } else {
      bench.add_ratio(key, value.as_number(), "higher", ratio_tol);
    }
    ++emitted;
  }

  // Exactness counters: sum every sample of the family, like
  // MetricsSnapshot::counter_total.
  for (const std::string& family : exact_families) {
    double total = 0.0;
    bool found = false;
    for (const repro::obs::Json& entry :
         doc["metrics"]["counters"].as_array()) {
      const repro::obs::Json* name = entry.find("name");
      const repro::obs::Json* value = entry.find("value");
      if (name != nullptr && name->is_string() &&
          name->as_string() == family && value != nullptr) {
        total += value->as_number();
        found = true;
      }
    }
    if (!found) {
      std::cerr << report_path << ": counter family '" << family
                << "' not present in report metrics\n";
      return 1;
    }
    bench.add_exact(family, static_cast<std::uint64_t>(total), "count");
    ++emitted;
  }

  if (emitted == 0) {
    std::cerr << report_path << ": nothing to emit (no numeric derived "
                 "entries, no --exact families)\n";
    return 1;
  }
  if (!bench.write(out_path)) {
    std::cerr << out_path << ": write failed\n";
    return 1;
  }
  std::cout << out_path << ": " << emitted << " metrics\n";
  return 0;
}
