#!/usr/bin/env python3
"""Clock audit: every time-delta path in src/ must use the monotonic
steady_clock. system_clock is wall time — it jumps under NTP slew/step, so a
delta computed from it can go negative or explode, silently corrupting idle
taxonomy, flight-recorder samples, timeout logic, and the DES cross-checks.

    check_clock_usage.py <src_dir> [--allow=<relpath>]...

Fails (exit 1) on any occurrence of system_clock outside the allowlist.
Allowlisted files are for genuinely calendar-stamped output (none today);
new entries need a review of every delta they feed.
"""
import argparse
import os
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("src_dir")
    parser.add_argument("--allow", action="append", default=[],
                        help="relative path allowed to use system_clock")
    args = parser.parse_args()

    allowed = set(args.allow)
    violations = []
    for root, _dirs, files in os.walk(args.src_dir):
        for fname in files:
            if not fname.endswith((".cpp", ".hpp", ".h", ".cc")):
                continue
            path = os.path.join(root, fname)
            rel = os.path.relpath(path, args.src_dir)
            if rel in allowed:
                continue
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                for lineno, line in enumerate(f, 1):
                    if "system_clock" in line:
                        violations.append(f"{rel}:{lineno}: {line.strip()}")

    if violations:
        print("system_clock used in a time path (use steady_clock — see "
              "support/timing.hpp wall_time()):", file=sys.stderr)
        for v in violations:
            print("  " + v, file=sys.stderr)
        return 1
    print(f"clock audit OK: no system_clock use under {args.src_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
