// CLI report validator for CI: exit 0 iff every file given on the command
// line is a well-formed report of a known schema. The document's "schema"
// field picks the validator:
//   repro.run_report/v1      -> obs::validate_run_report
//                               (incl. the optional "stencil_spec" block
//                               emitted by spec-aware benches)
//   repro.trace_analysis/v1  -> obs::validate_trace_analysis
//   repro.serve_report/v1    -> serve::validate_serve_report
//   repro.telemetry/v1       -> obs::validate_telemetry
//   repro.bench_result/v1    -> obs::validate_bench_result
//
//   validate_report report.json [more.json ...]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/bench_result.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_analysis.hpp"
#include "serve/serve_report.hpp"

namespace {

bool validate_any(const std::string& text, std::string* error) {
  repro::obs::Json doc;
  std::string parse_error;
  if (!repro::obs::Json::parse(text, &doc, &parse_error)) {
    *error = "invalid JSON: " + parse_error;
    return false;
  }
  const repro::obs::Json* schema =
      doc.is_object() ? doc.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string()) {
    *error = "top level: missing string 'schema' field";
    return false;
  }
  const std::string& id = schema->as_string();
  if (id == repro::obs::RunReport::kSchema) {
    return repro::obs::validate_run_report(text, error);
  }
  if (id == repro::obs::kTraceAnalysisSchema) {
    return repro::obs::validate_trace_analysis(text, error);
  }
  if (id == repro::serve::ServeReport::kSchema) {
    return repro::serve::validate_serve_report(text, error);
  }
  if (id == "repro.telemetry/v1") {
    return repro::obs::validate_telemetry(doc, error);
  }
  if (id == "repro.bench_result/v1") {
    return repro::obs::validate_bench_result(doc, error);
  }
  *error = "unknown schema '" + id + "'";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: validate_report <report.json> [more.json ...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (validate_any(buffer.str(), &error)) {
      std::cout << path << ": OK\n";
    } else {
      std::cerr << path << ": INVALID: " << error << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
