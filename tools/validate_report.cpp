// CLI wrapper around obs::validate_run_report for CI: exit 0 iff every file
// given on the command line is a well-formed repro.run_report/v1 document.
//
//   validate_report report.json [more.json ...]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/run_report.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: validate_report <report.json> [more.json ...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::cerr << path << ": cannot open\n";
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (repro::obs::validate_run_report(buffer.str(), &error)) {
      std::cout << path << ": OK\n";
    } else {
      std::cerr << path << ": INVALID: " << error << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
