#!/usr/bin/env python3
"""CI perf-regression gate: diff fresh BENCH_*.json results against the
committed baselines (bench/baselines/), metric by metric.

    check_bench_regression.py --baseline-dir=bench/baselines \
                              --result-dir=<dir with fresh BENCH_*.json> \
                              [--warn-only-kinds=time,ratio]

Both sides are repro.bench_result/v1 documents. Policy per metric `kind`:

  exact  — any difference is a HARD FAIL (deterministic counters: message,
           byte, allocation counts a correct change reproduces bit for bit);
  count  — relative drift beyond tolerance_pct is a hard fail;
  time   — noisy; drift beyond tolerance_pct in the bad direction is a
           WARNING by default (wall-clock noise on shared CI runners must
           not block merges), promoted to hard fail only when 'time' is
           removed from --warn-only-kinds;
  ratio  — same policy as time.

The baseline's tolerance_pct is authoritative (the committed file records
each metric's observed noise band). Exit code: 1 if any hard failure, else
0 — warnings and the full diff table are always printed.
"""
import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "repro.bench_result/v1":
        raise ValueError(f"{path}: schema is not repro.bench_result/v1")
    return doc


def metric_map(doc):
    return {m["name"]: m for m in doc.get("metrics", [])}


def fmt(value):
    return f"{value:.6g}"


def compare(name, baseline, result, warn_only_kinds):
    """Yields (severity, row) tuples; severity in {'ok', 'warn', 'fail'}."""
    base_metrics = metric_map(baseline)
    new_metrics = metric_map(result)

    for mname in sorted(set(base_metrics) | set(new_metrics)):
        if mname not in new_metrics:
            yield "fail", (name, mname, "-", "-", "-", "missing from result")
            continue
        if mname not in base_metrics:
            yield "warn", (name, mname, "-", fmt(new_metrics[mname]["value"]),
                           "-", "not in baseline (new metric?)")
            continue

        base = base_metrics[mname]
        new = new_metrics[mname]
        bval, nval = base["value"], new["value"]
        kind = base.get("kind", "time")
        direction = base.get("direction", "lower")
        tol = base.get("tolerance_pct", 10.0)

        if kind == "exact":
            if nval != bval:
                yield "fail", (name, mname, fmt(bval), fmt(nval), "0%",
                               "EXACT metric differs")
            else:
                yield "ok", (name, mname, fmt(bval), fmt(nval), "0%", "exact")
            continue

        drift_pct = 0.0 if bval == 0 else (nval - bval) / abs(bval) * 100.0
        # Only drift in the bad direction regresses; improvements pass.
        regressed = (direction == "lower" and drift_pct > tol) or \
                    (direction == "higher" and drift_pct < -tol)
        band = f"±{tol:g}%"
        note = f"drift {drift_pct:+.2f}%"
        if not regressed:
            yield "ok", (name, mname, fmt(bval), fmt(nval), band, note)
        elif kind in warn_only_kinds:
            yield "warn", (name, mname, fmt(bval), fmt(nval), band,
                           note + " (warn-only kind)")
        else:
            yield "fail", (name, mname, fmt(bval), fmt(nval), band,
                           note + " REGRESSION")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--result-dir", required=True)
    parser.add_argument("--warn-only-kinds", default="time,ratio",
                        help="comma-separated kinds gated as warnings")
    args = parser.parse_args()

    warn_only_kinds = {k for k in args.warn_only_kinds.split(",") if k}
    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    rows, severities = [], []
    for fname in baselines:
        baseline = load(os.path.join(args.baseline_dir, fname))
        result_path = os.path.join(args.result_dir, fname)
        if not os.path.exists(result_path):
            rows.append(("fail", (fname, "-", "-", "-", "-",
                                  "result file missing")))
            continue
        result = load(result_path)
        if result.get("name") != baseline.get("name"):
            rows.append(("fail", (fname, "-", "-", "-", "-",
                                  "bench name mismatch")))
            continue
        for severity, row in compare(fname, baseline, result,
                                     warn_only_kinds):
            rows.append((severity, row))

    header = ("bench", "metric", "baseline", "result", "band", "status")
    widths = [max(len(str(r[1][i])) for r in rows + [(None, header)])
              for i in range(6)]
    marks = {"ok": "  ", "warn": "~ ", "fail": "X "}
    print("  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for severity, row in rows:
        print(marks[severity] +
              "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        severities.append(severity)

    fails = severities.count("fail")
    warns = severities.count("warn")
    print(f"\n{len(severities)} metrics: {fails} failed, {warns} warnings")
    return 1 if fails else 0


if __name__ == "__main__":
    sys.exit(main())
