#!/usr/bin/env bash
# Run the gate-worthy benches with fixed, CI-sized arguments and collect
# their normalized repro.bench_result/v1 documents into <outdir>.
#
#   tools/run_bench_gate.sh <outdir>        # BUILD_DIR=build by default
#
# The committed baselines under bench/baselines/ were produced by this same
# script, so tools/check_bench_regression.py always diffs like against like:
# identical problem sizes, iteration counts, and sweep points. Change an
# argument here and every baseline must be regenerated in the same commit
# (the gate's context diff will say so loudly).
set -euo pipefail

out="${1:?usage: run_bench_gate.sh <outdir>}"
build="${BUILD_DIR:-build}"
mkdir -p "$out"

# Fig. 8 (modeled): machine-independent DES numbers — CA gains plus the
# exact modeled NaCL-16 wire counters. No size overrides needed.
"$build/bench/bench_fig8_kernel_ratio" \
    --bench-json="$out/BENCH_bench_fig8_kernel_ratio.json" >/dev/null

# Fig. 10 (real runtime, reduced scale): per-leg wire traffic is
# graph-determined (exact), the critical path is wall clock (warn-only).
"$build/bench/bench_fig10_trace" --n=256 --real-iters=8 \
    --bench-json="$out/BENCH_bench_fig10_trace.json" >/dev/null

# Scheduler comparison: stencil task/message/byte counts are exact across
# the whole (scheduler, workers) sweep; wall clocks are warn-only.
"$build/bench/bench_sched_compare" --tasks=1000 --reps=1 --n=128 --iters=8 \
    --bench-json="$out/BENCH_bench_sched_compare.json" >/dev/null

# Serve saturation: the client loops submit a fixed job count (exact);
# completion rate, fairness, and tail latency gate as warn-only bands.
"$build/bench/bench_serve_saturation" --tenants=2 --jobs=4 --rates=8,64 \
    --bench-json="$out/BENCH_bench_serve_saturation.json" >/dev/null

"$build/tools/validate_report" "$out"/BENCH_*.json
