// obs::analyze_dataflow: critical path, overlap, idle taxonomy — first on
// hand-built event streams with closed-form answers, then cross-checked
// against real traced runs (analyzed critical path must bound the measured
// wall clock from below and the longest task from above).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/trace_analysis.hpp"
#include "runtime/runtime.hpp"
#include "runtime/trace.hpp"

namespace repro {
namespace {

rt::TraceEvent task(rt::TaskKey key, const char* klass, int rank, int worker,
                    double begin, double end,
                    std::vector<rt::TaskKey> deps = {}) {
  rt::TraceEvent e;
  e.kind = rt::TraceEventKind::Task;
  e.key = key;
  e.klass = klass;
  e.rank = rank;
  e.worker = worker;
  e.begin_s = begin;
  e.end_s = end;
  e.deps = std::move(deps);
  return e;
}

rt::TraceEvent recv(rt::TaskKey consumer, rt::TaskKey producer, int rank,
                    int peer, std::uint64_t flow, double queued, double begin,
                    double end) {
  rt::TraceEvent e;
  e.kind = rt::TraceEventKind::Recv;
  e.key = consumer;
  e.klass = "recv";
  e.rank = rank;
  e.worker = rt::kTraceLaneRecv;
  e.peer = peer;
  e.flow = flow;
  e.queued_s = queued;
  e.wire_s = queued;
  e.begin_s = begin;
  e.end_s = end;
  e.deps = {producer};
  return e;
}

TEST(TraceAnalysisDag, EmptyStreamIsAllZeroes) {
  const obs::TraceAnalysis a = obs::analyze_dataflow({});
  EXPECT_EQ(a.critical_path_s, 0.0);
  EXPECT_EQ(a.tasks, 0u);
  EXPECT_TRUE(a.path.empty());
  EXPECT_DOUBLE_EQ(a.overlap_efficiency, 1.0);  // nothing in flight
}

TEST(TraceAnalysisDag, ClosedFormCriticalPathWithRemoteRelease) {
  // Three-task chain across two ranks with exact, hand-computed attribution:
  //   A on rank 0: [0.0, 1.0]                       (head, compute 1.0)
  //   A -> B remote: queued 1.0, delivered 1.5      (network 0.5)
  //   B on rank 1: [1.7, 2.2], released at 1.5      (runtime 0.2, compute 0.5)
  //   C on rank 1: [2.2, 3.0], local dep on B       (runtime 0, compute 0.8)
  // A decoy task D finishes earlier than C, so C is the chain tail.
  const rt::TaskKey ka{1, 0, 0, 0}, kb{1, 1, 0, 0}, kc{1, 2, 0, 0},
      kd{9, 0, 0, 0};
  std::vector<rt::TraceEvent> events;
  events.push_back(task(ka, "a", 0, 0, 0.0, 1.0));
  events.push_back(recv(kb, ka, 1, 0, 5, 1.0, 1.45, 1.5));
  events.push_back(task(kb, "b", 1, 0, 1.7, 2.2, {ka}));
  events.push_back(task(kc, "c", 1, 0, 2.2, 3.0, {kb}));
  events.push_back(task(kd, "d", 0, 0, 1.0, 2.5));

  const obs::TraceAnalysis a = obs::analyze_dataflow(events);
  EXPECT_EQ(a.cp_tasks, 3u);
  EXPECT_EQ(a.cp_messages, 1u);
  EXPECT_DOUBLE_EQ(a.critical_path_s, 3.0);  // C.end - A.begin
  EXPECT_DOUBLE_EQ(a.cp_compute_s, 1.0 + 0.5 + 0.8);
  EXPECT_DOUBLE_EQ(a.cp_network_s, 0.5);
  EXPECT_NEAR(a.cp_runtime_s, 0.2, 1e-12);
  EXPECT_NEAR(a.network_share(), 0.5 / 3.0, 1e-12);
  // Attribution covers the chain exactly in this gap-free construction.
  EXPECT_NEAR(a.cp_compute_s + a.cp_network_s + a.cp_runtime_s,
              a.critical_path_s, 1e-12);
  // Path is chronological: A, B, C.
  ASSERT_EQ(a.path.size(), 3u);
  EXPECT_EQ(a.path[0].key, ka);
  EXPECT_EQ(a.path[1].key, kb);
  EXPECT_TRUE(a.path[1].remote_release);
  EXPECT_EQ(a.path[2].key, kc);
  EXPECT_FALSE(a.path[2].remote_release);
}

TEST(TraceAnalysisDag, BindingPredecessorIsTheLatestRelease) {
  // C depends on A (local, ends 1.0) and B (remote, delivered 1.8): the
  // remote release binds even though B's body finished first.
  const rt::TaskKey ka{1, 0, 0, 0}, kb{1, 1, 0, 0}, kc{1, 2, 0, 0};
  std::vector<rt::TraceEvent> events;
  events.push_back(task(ka, "a", 0, 0, 0.0, 1.0));
  events.push_back(task(kb, "b", 1, 0, 0.0, 0.6));
  events.push_back(recv(kc, kb, 0, 1, 3, 0.6, 1.7, 1.8));
  events.push_back(task(kc, "c", 0, 0, 1.9, 2.4, {ka, kb}));

  const obs::TraceAnalysis a = obs::analyze_dataflow(events);
  ASSERT_EQ(a.path.size(), 2u);
  EXPECT_EQ(a.path[0].key, kb);
  EXPECT_EQ(a.path[1].key, kc);
  EXPECT_TRUE(a.path[1].remote_release);
  EXPECT_NEAR(a.path[1].network_s, 1.2, 1e-12);  // 1.8 - 0.6
  EXPECT_NEAR(a.path[1].runtime_s, 0.1, 1e-12);  // 1.9 - 1.8
  EXPECT_DOUBLE_EQ(a.critical_path_s, 2.4);      // C.end - B.begin
}

TEST(TraceAnalysisDag, OverlapEfficiencyCountsHiddenInflightTime) {
  // Flow in flight [1.0, 3.0] (2.0 s); tasks cover [0.0, 2.0] -> half the
  // in-flight window is hidden behind compute.
  const rt::TaskKey ka{1, 0, 0, 0}, kb{1, 1, 0, 0};
  std::vector<rt::TraceEvent> events;
  events.push_back(task(ka, "a", 0, 0, 0.0, 2.0));
  rt::TraceEvent send = recv(kb, ka, 0, 1, 11, 1.0, 1.0, 1.1);
  send.kind = rt::TraceEventKind::Send;
  send.worker = rt::kTraceLaneSend;
  send.deps.clear();
  events.push_back(send);
  events.push_back(recv(kb, ka, 1, 0, 11, 1.0, 2.9, 3.0));
  events.push_back(task(kb, "b", 1, 0, 3.1, 3.2, {ka}));

  const obs::TraceAnalysis a = obs::analyze_dataflow(events);
  EXPECT_DOUBLE_EQ(a.network_inflight_s, 2.0);
  // Tasks cover [0, 2] plus [3.1, 3.2]; the in-flight window [1, 3] overlaps
  // only [1, 2].
  EXPECT_NEAR(a.overlap_efficiency, 0.5, 1e-12);
  EXPECT_NEAR(a.compute_active_s, 2.1, 1e-12);
}

TEST(TraceAnalysisDag, IdleTaxonomyAggregatesPerRank) {
  std::vector<rt::TraceEvent> events;
  events.push_back(task(rt::TaskKey{1, 0, 0, 0}, "k", 0, 0, 0.0, 1.0));
  for (const char* klass : {"idle-halo", "idle-halo", "idle-shutdown"}) {
    rt::TraceEvent e;
    e.kind = rt::TraceEventKind::Idle;
    e.klass = klass;
    e.rank = 0;
    e.worker = 1;
    e.begin_s = 0.0;
    e.end_s = 0.25;
    events.push_back(e);
  }
  const obs::TraceAnalysis a = obs::analyze_dataflow(events);
  EXPECT_DOUBLE_EQ(a.idle_by_rank.at(0).at("halo"), 0.5);
  EXPECT_DOUBLE_EQ(a.idle_by_rank.at(0).at("shutdown"), 0.25);
  EXPECT_EQ(a.idle_by_rank.at(0).count("noready"), 0u);
}

TEST(TraceAnalysisDag, FusedKlassAttributionParsesMemberCounts) {
  // rt::fuse_supersteps stamps rewritten tasks as "fused<members>|<klass>";
  // the analysis counts them and reports the deepest window. Ragged final
  // windows (here 2 members) must not mask the configured depth (3).
  std::vector<rt::TraceEvent> events;
  events.push_back(task(rt::TaskKey{1, 0, 0, 0}, "fused3|step", 0, 0, 0.0, 1.0));
  events.push_back(task(rt::TaskKey{1, 1, 0, 0}, "fused3|step", 0, 1, 0.0, 1.1));
  events.push_back(
      task(rt::TaskKey{1, 0, 1, 0}, "fused2|step", 0, 0, 1.2, 1.9));
  events.push_back(task(rt::TaskKey{1, 2, 0, 0}, "step", 0, 1, 1.2, 1.4));
  // Adversarial klasses that merely look fused must not be attributed.
  events.push_back(task(rt::TaskKey{1, 3, 0, 0}, "fused|step", 0, 0, 2.0, 2.1));
  events.push_back(
      task(rt::TaskKey{1, 4, 0, 0}, "fusedXY|step", 0, 0, 2.1, 2.2));
  events.push_back(task(rt::TaskKey{1, 5, 0, 0}, "fused9", 0, 0, 2.2, 2.3));

  const obs::TraceAnalysis a = obs::analyze_dataflow(events);
  EXPECT_EQ(a.tasks, 7u);
  EXPECT_EQ(a.fused_tasks, 3u);
  EXPECT_EQ(a.fused_depth, 3);

  // The totals flow into the report document and its validator contract.
  const obs::Json doc = obs::make_trace_analysis_report("fused", a);
  const obs::Json* totals = doc.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->find("fused_tasks")->as_int(), 3);
  EXPECT_EQ(totals->find("fused_depth")->as_int(), 3);
  std::string error;
  EXPECT_TRUE(obs::validate_trace_analysis(doc.dump(), &error)) << error;
}

TEST(TraceAnalysisDag, UnfusedTraceReportsDepthOne) {
  std::vector<rt::TraceEvent> events;
  events.push_back(task(rt::TaskKey{1, 0, 0, 0}, "step", 0, 0, 0.0, 1.0));
  const obs::TraceAnalysis a = obs::analyze_dataflow(events);
  EXPECT_EQ(a.fused_tasks, 0u);
  EXPECT_EQ(a.fused_depth, 1);
}

TEST(TraceAnalysisReport, BuildsAndValidates) {
  const rt::TaskKey ka{1, 0, 0, 0}, kb{1, 1, 0, 0};
  std::vector<rt::TraceEvent> events;
  events.push_back(task(ka, "a", 0, 0, 0.0, 1.0));
  events.push_back(recv(kb, ka, 1, 0, 2, 1.0, 1.4, 1.5));
  events.push_back(task(kb, "b", 1, 0, 1.5, 2.0, {ka}));

  obs::Json params = obs::Json::object();
  params["n"] = 64;
  const obs::Json doc = obs::make_trace_analysis_report(
      "unit", obs::analyze_dataflow(events), std::move(params));
  std::string error;
  EXPECT_TRUE(obs::validate_trace_analysis(doc.dump(2), &error)) << error;

  // The validator actually rejects structural damage.
  EXPECT_FALSE(obs::validate_trace_analysis("{}", &error));
  EXPECT_FALSE(obs::validate_trace_analysis("not json", &error));
  obs::Json broken = doc;
  broken["critical_path"]["seconds"] = -1.0;
  EXPECT_FALSE(obs::validate_trace_analysis(broken.dump(), &error));
  EXPECT_NE(error.find("critical_path"), std::string::npos);
}

// Cross-check on real traced runs (the sim_vs_real-style consistency bound):
// for every scheduler, the analyzed critical path must not exceed the
// measured wall clock and must cover at least the longest single task.
TEST(TraceAnalysisCrossCheck, CriticalPathBoundsWallClockOnRealRuns) {
#ifdef REPRO_OBS_DISABLE
  GTEST_SKIP() << "tracing is compiled out";
#endif
  for (const auto policy :
       {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
    rt::TaskGraph graph;
    constexpr int kChains = 4, kDepth = 6;
    for (int c = 0; c < kChains; ++c) {
      for (int d = 0; d < kDepth; ++d) {
        rt::TaskSpec t;
        t.key = rt::TaskKey{2, c, d, 0};
        // Alternate ranks along each chain so every link is a remote flow
        // and the path exercises Recv-based releases.
        t.rank = (c + d) % 2;
        t.klass = "link";
        if (d > 0) {
          t.inputs.push_back({rt::TaskKey{2, c, d - 1, 0}, 0});
        }
        t.body = [](rt::TaskContext& ctx) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          ctx.publish(0, std::vector<double>{1.0});
        };
        graph.add_task(std::move(t));
      }
    }

    rt::Config config;
    config.nranks = 2;
    config.workers_per_rank = 2;
    config.trace = true;
    config.scheduler = policy;
    rt::Runtime runtime(config);
    const rt::RunStats stats = runtime.run(graph);

    const obs::TraceAnalysis a =
        obs::analyze_dataflow(runtime.tracer().events());
    EXPECT_EQ(a.tasks, static_cast<std::size_t>(kChains * kDepth));
    // Every chain is a pure pipeline, so the back-chained path is exactly
    // the tail task's chain.
    EXPECT_EQ(a.cp_tasks, static_cast<std::size_t>(kDepth))
        << rt::sched_policy_name(policy);

    // Lower bound: the path serializes kDepth bodies of >= 200 us each
    // (sleep_for never undershoots). Upper bound: the chain is a real
    // timestamp interval inside the run, so it cannot exceed the wall clock.
    EXPECT_GE(a.critical_path_s, kDepth * 200e-6)
        << rt::sched_policy_name(policy);
    EXPECT_LE(a.critical_path_s, stats.wall_time_s + 1e-9)
        << rt::sched_policy_name(policy);
    // Attribution never exceeds the chain it explains.
    EXPECT_LE(a.cp_compute_s + a.cp_network_s + a.cp_runtime_s,
              a.critical_path_s + 1e-9)
        << rt::sched_policy_name(policy);
    EXPECT_GE(a.overlap_efficiency, 0.0);
    EXPECT_LE(a.overlap_efficiency, 1.0 + 1e-9);
    // Alternating ranks makes every link remote: the comm threads traced
    // their halves and every release on the path came via a Recv.
    EXPECT_EQ(a.recvs, static_cast<std::size_t>(kChains * (kDepth - 1)));
    EXPECT_EQ(a.cp_messages, static_cast<std::size_t>(kDepth - 1))
        << rt::sched_policy_name(policy);
  }
}

}  // namespace
}  // namespace repro
