// Cross-validation: the discrete-event simulator unfolds the SAME task-graph
// shape as the real runtime builder, so for any configuration the two must
// agree exactly on the number of remote messages and (modulo the identical
// header constant) the bytes on the wire. This pins the simulator's fidelity
// to the implementation it models.
#include <gtest/gtest.h>

#include <memory>

#include "obs/metrics.hpp"
#include "sim/models.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/problem.hpp"

namespace repro {
namespace {

struct XCase {
  int n, tile, side, iters, steps;
  friend std::ostream& operator<<(std::ostream& os, const XCase& c) {
    return os << "n" << c.n << "_t" << c.tile << "_p" << c.side << "_it"
              << c.iters << "_s" << c.steps;
  }
};

class SimVsReal : public ::testing::TestWithParam<XCase> {};

TEST_P(SimVsReal, MessageCountsAgreeExactly) {
  const XCase c = GetParam();

  // Real execution, instrumented with its own metrics registry.
  const stencil::Problem problem = stencil::random_problem(c.n, c.n, c.iters);
  stencil::DistConfig config;
  config.decomp = {c.tile, c.tile, c.side, c.side};
  config.steps = c.steps;
  config.metrics = std::make_shared<obs::MetricsRegistry>();
  const stencil::DistResult real = run_distributed(problem, config);

  // Simulated execution of the same configuration, publishing its modeled
  // counters into a second registry under the same family names.
  sim::StencilSimParams params{sim::nacl(), c.n, c.tile, c.side, c.side,
                               c.iters, c.steps, 1.0};
  params.metrics = std::make_shared<obs::MetricsRegistry>();
  const sim::StencilSimOutput simulated = sim::simulate_stencil(params);

  EXPECT_EQ(real.stats.messages, simulated.sim.messages);

  // Bytes: the real wire format carries 6 header words per single-flow
  // message + the 8-byte tag; the model charges a 5-word header. Compare the
  // payload volume: real bytes - messages*(7 words) vs model bytes -
  // messages*(5 words).
  const double real_payload =
      static_cast<double>(real.stats.bytes) -
      static_cast<double>(real.stats.messages) * 7 * sizeof(std::uint64_t);
  const double sim_payload =
      simulated.sim.message_bytes -
      static_cast<double>(simulated.sim.messages) * 5 * sizeof(std::uint64_t);
  EXPECT_DOUBLE_EQ(real_payload, sim_payload);

  // The same cross-validation as a metrics diff: both stacks publish
  // net_messages_total / net_bytes_total into their registries, so agreement
  // is a snapshot comparison — no private accessors required.
  if constexpr (obs::kEnabled) {
    const obs::MetricsSnapshot rs = config.metrics->snapshot();
    const obs::MetricsSnapshot ss = params.metrics->snapshot();
    EXPECT_EQ(rs.counter_total("net_messages_total"),
              ss.counter_total("net_messages_total"));
    const double real_metric_payload =
        static_cast<double>(rs.counter_total("net_bytes_total")) -
        static_cast<double>(rs.counter_total("net_messages_total")) * 7 *
            sizeof(std::uint64_t);
    const double sim_metric_payload =
        static_cast<double>(ss.counter_total("net_bytes_total")) -
        static_cast<double>(ss.counter_total("net_messages_total")) * 5 *
            sizeof(std::uint64_t);
    EXPECT_DOUBLE_EQ(real_metric_payload, sim_metric_payload);
  }
}

// Telemetry cross-check: DistConfig::telemetry adds one fixed-size snapshot
// message per non-zero rank per superstep boundary to the real wire, and
// StencilSimParams::telemetry charges the identical schedule. Comparing the
// with-vs-without DELTAS on each side cancels the header-constant difference
// the base test compensates for, so the telemetry traffic itself must agree
// byte for byte.
TEST_P(SimVsReal, TelemetryTrafficAgreesExactly) {
  const XCase c = GetParam();

  const stencil::Problem problem = stencil::random_problem(c.n, c.n, c.iters);
  stencil::DistConfig config;
  config.decomp = {c.tile, c.tile, c.side, c.side};
  config.steps = c.steps;
  const stencil::DistResult plain = run_distributed(problem, config);
  config.telemetry = true;
  const stencil::DistResult live = run_distributed(problem, config);

  sim::StencilSimParams params{sim::nacl(), c.n, c.tile, c.side, c.side,
                               c.iters, c.steps, 1.0};
  const sim::StencilSimOutput sim_plain = sim::simulate_stencil(params);
  params.telemetry = true;
  params.metrics = std::make_shared<obs::MetricsRegistry>();
  const sim::StencilSimOutput sim_live = sim::simulate_stencil(params);

  const std::uint64_t boundaries =
      1 + static_cast<std::uint64_t>(c.iters / c.steps);
  const std::uint64_t nodes = static_cast<std::uint64_t>(c.side) * c.side;
  const std::uint64_t expected_messages = (nodes - 1) * boundaries;

  EXPECT_EQ(live.stats.messages - plain.stats.messages, expected_messages);
  EXPECT_EQ(sim_live.telemetry_messages, expected_messages);
  EXPECT_EQ(sim_live.sim.messages - sim_plain.sim.messages, expected_messages);

  EXPECT_EQ(live.stats.bytes - plain.stats.bytes,
            expected_messages * obs::kTelemetryWireBytes);
  EXPECT_DOUBLE_EQ(sim_live.sim.message_bytes - sim_plain.sim.message_bytes,
                   static_cast<double>(expected_messages *
                                       obs::kTelemetryWireBytes));

  // Rank 0 aggregates the full stream: every rank, every boundary.
  ASSERT_NE(live.telemetry, nullptr);
  EXPECT_EQ(live.telemetry->deltas_total(), nodes * boundaries);

  // The model publishes the same obs_telemetry_* families under
  // source="sim" with the stream shape a healthy run produces.
  if constexpr (obs::kEnabled) {
    const obs::MetricsSnapshot ss = params.metrics->snapshot();
    EXPECT_EQ(ss.counter_total("obs_telemetry_snapshots_total"),
              static_cast<double>(nodes * boundaries));
  }
}

// Persistent-channel cross-check: with DistConfig::persistent the real stack
// replaces each remote halo message with the route's registered FRAG
// fragments plus a one-time OPEN/ACK negotiation; the model replays the same
// schedule with the exact wire framing, so messages AND total bytes agree
// with no header compensation at all.
TEST_P(SimVsReal, PersistentTrafficAgreesExactly) {
  const XCase c = GetParam();

  const stencil::Problem problem = stencil::random_problem(c.n, c.n, c.iters);
  stencil::DistConfig config;
  config.decomp = {c.tile, c.tile, c.side, c.side};
  config.steps = c.steps;
  config.persistent = true;
  const stencil::DistResult real = run_distributed(problem, config);

  sim::StencilSimParams params{sim::nacl(), c.n, c.tile, c.side, c.side,
                               c.iters, c.steps, 1.0};
  params.persistent = true;
  const sim::StencilSimOutput simulated = sim::simulate_stencil(params);

  EXPECT_GT(simulated.handshake_messages, 0u);
  EXPECT_EQ(real.stats.messages, simulated.sim.messages);
  EXPECT_DOUBLE_EQ(static_cast<double>(real.stats.bytes),
                   simulated.sim.message_bytes);
}

// Fused-wavefront cross-check: with DistConfig::fuse_depth the real stack
// emits a fuse-ready graph and rewrites it through rt::fuse_supersteps; the
// model unfolds the rewritten shape directly. Message counts and payload
// bytes must agree exactly — one exchange per window, W-deep band and W^2
// corner payloads — including the composition with persistent channels
// (FRAG framing plus the one-time handshake).
TEST_P(SimVsReal, FusedTrafficAgreesExactly) {
  const XCase c = GetParam();
  for (const int fuse : {2, 3}) {
    if (c.steps * fuse > c.tile) continue;  // window must fit the tile
    SCOPED_TRACE("fuse=" + std::to_string(fuse));

    const stencil::Problem problem =
        stencil::random_problem(c.n, c.n, c.iters);
    stencil::DistConfig config;
    config.decomp = {c.tile, c.tile, c.side, c.side};
    config.steps = c.steps;
    config.fuse_depth = fuse;
    const stencil::DistResult real = run_distributed(problem, config);

    sim::StencilSimParams params{sim::nacl(), c.n, c.tile, c.side, c.side,
                                 c.iters, c.steps, 1.0};
    params.fuse = fuse;
    const sim::StencilSimOutput simulated = sim::simulate_stencil(params);

    EXPECT_EQ(real.stats.messages, simulated.sim.messages);
    const double real_payload =
        static_cast<double>(real.stats.bytes) -
        static_cast<double>(real.stats.messages) * 7 * sizeof(std::uint64_t);
    const double sim_payload =
        simulated.sim.message_bytes -
        static_cast<double>(simulated.sim.messages) * 5 *
            sizeof(std::uint64_t);
    EXPECT_DOUBLE_EQ(real_payload, sim_payload);
    // The fused redundant-compute accounting must agree too: every existing
    // side (local neighbors included) recomputes its deep band.
    EXPECT_DOUBLE_EQ(real.redundancy(), simulated.redundant_fraction);

    stencil::DistConfig pconfig = config;
    pconfig.persistent = true;
    const stencil::DistResult preal = run_distributed(problem, pconfig);
    sim::StencilSimParams pparams = params;
    pparams.persistent = true;
    const sim::StencilSimOutput psim = sim::simulate_stencil(pparams);
    EXPECT_EQ(preal.stats.messages, psim.sim.messages);
    EXPECT_DOUBLE_EQ(static_cast<double>(preal.stats.bytes),
                     psim.sim.message_bytes);
  }
}

// Spec-driven cross-check: the simulator's neighbor-set parameterization
// (per-spec corner gating, stage-unit supersteps, field-plane payload
// scaling) must reproduce the real driver's traffic exactly. box9 at
// steps=1 is the sharp case — diagonal taps force corner messages every
// superstep even without CA fusing, which the 5-point model never does;
// star9 exercises the stage-doubled superstep count; heat3d the multi-plane
// payload widths.
TEST(SimVsRealSpec, SpecTrafficAgreesExactly) {
  struct SpecCase {
    spec::StencilSpec sp;
    int nz;
    int steps;
  };
  const SpecCase cases[] = {{spec::StencilSpec::box9(), 1, 1},
                            {spec::StencilSpec::box9(), 1, 3},
                            {spec::StencilSpec::star9(), 1, 2},
                            {spec::StencilSpec::heat3d(), 2, 2}};
  for (const SpecCase& c : cases) {
    SCOPED_TRACE(c.sp.name + " nz=" + std::to_string(c.nz) + " s=" +
                 std::to_string(c.steps));
    const stencil::Problem problem =
        stencil::spec_problem(c.sp, 24, 24, 6, c.nz);
    stencil::DistConfig config;
    config.decomp = {4, 4, 2, 2};
    config.steps = c.steps;
    const stencil::DistResult real = run_distributed(problem, config);

    sim::StencilSimParams params{sim::nacl(), 24, 4, 2, 2, 6, c.steps, 1.0};
    params.stencil = c.sp;
    params.nz = c.nz;
    const sim::StencilSimOutput simulated = sim::simulate_stencil(params);

    EXPECT_EQ(real.stats.messages, simulated.sim.messages);
    const double real_payload =
        static_cast<double>(real.stats.bytes) -
        static_cast<double>(real.stats.messages) * 7 * sizeof(std::uint64_t);
    const double sim_payload =
        simulated.sim.message_bytes -
        static_cast<double>(simulated.sim.messages) * 5 *
            sizeof(std::uint64_t);
    EXPECT_DOUBLE_EQ(real_payload, sim_payload);
    // The modeled redundant-compute volume must match the driver's
    // stage-unit accounting too, not just the wire traffic (both normalize
    // by N^2 * iterations * stages).
    EXPECT_DOUBLE_EQ(real.redundancy(), simulated.redundant_fraction);

    // The persistent wire schedule must agree exactly too — the sharp part
    // is nfield > 1 (heat3d), where every route splits into multiple
    // fragments with the remainder on the leading slices.
    stencil::DistConfig pconfig = config;
    pconfig.persistent = true;
    const stencil::DistResult preal = run_distributed(problem, pconfig);
    sim::StencilSimParams pparams = params;
    pparams.persistent = true;
    const sim::StencilSimOutput psim = sim::simulate_stencil(pparams);
    EXPECT_EQ(preal.stats.messages, psim.sim.messages);
    EXPECT_DOUBLE_EQ(static_cast<double>(preal.stats.bytes),
                     psim.sim.message_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimVsReal,
    ::testing::Values(XCase{24, 4, 2, 6, 1},    // base
                      XCase{24, 4, 2, 12, 3},   // CA with corners
                      XCase{36, 4, 3, 8, 2},    // 3x3 nodes
                      XCase{24, 4, 2, 7, 4},    // ragged superstep
                      XCase{32, 8, 2, 10, 5},
                      XCase{30, 5, 3, 9, 3}));

}  // namespace
}  // namespace repro
