// Shared serial-oracle comparison helpers for the equivalence suites
// (fuzz_test, sched_fuzz_test, spec_dist_test, fault_e2e_test, ...).
//
// Every distributed variant in this repo is held to the same bar: bit
// identity with the serial reference. These helpers make a failure
// actionable — the assertion message carries the first mismatching cell
// (coordinates + both values), the mismatch count, and a one-line pretty
// print of the configuration, so a failing fuzz round reproduces from the
// log alone.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/kernel_opt.hpp"

namespace repro::test_support {

/// Bit-exact grid comparison; on mismatch names the first differing cell.
inline ::testing::AssertionResult grids_match(const stencil::Grid2D& expected,
                                              const stencil::Grid2D& actual,
                                              const std::string& label = "") {
  if (expected.rows() != actual.rows() || expected.cols() != actual.cols()) {
    return ::testing::AssertionFailure()
           << label << (label.empty() ? "" : ": ") << "shape mismatch: "
           << "expected " << expected.rows() << "x" << expected.cols()
           << ", got " << actual.rows() << "x" << actual.cols();
  }
  long long mismatches = 0;
  int first_i = -1;
  int first_j = -1;
  for (int i = 0; i < expected.rows(); ++i) {
    for (int j = 0; j < expected.cols(); ++j) {
      if (expected.at(i, j) != actual.at(i, j)) {
        if (mismatches == 0) {
          first_i = i;
          first_j = j;
        }
        ++mismatches;
      }
    }
  }
  if (mismatches == 0) return ::testing::AssertionSuccess();
  std::ostringstream out;
  out.precision(17);
  out << label << (label.empty() ? "" : ": ") << mismatches
      << " mismatching cell(s); first at (" << first_i << "," << first_j
      << "): expected " << expected.at(first_i, first_j) << ", got "
      << actual.at(first_i, first_j) << " (|diff|="
      << std::abs(expected.at(first_i, first_j) - actual.at(first_i, first_j))
      << ")";
  return ::testing::AssertionFailure() << out.str();
}

/// All z planes of a distributed result against the serial oracle's planes,
/// plus the grid == planes[0] invariant.
inline ::testing::AssertionResult planes_match(
    const std::vector<stencil::Grid2D>& expected,
    const stencil::DistResult& result) {
  if (result.planes.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "plane count mismatch: expected " << expected.size() << ", got "
           << result.planes.size();
  }
  for (std::size_t z = 0; z < expected.size(); ++z) {
    const auto planes =
        grids_match(expected[z], result.planes[z], "z=" + std::to_string(z));
    if (!planes) return planes;
  }
  return grids_match(result.planes[0], result.grid, "grid vs planes[0]");
}

/// One-line DistConfig pretty print for SCOPED_TRACE / assertion messages.
inline std::string describe(const stencil::DistConfig& config) {
  std::ostringstream out;
  out << "tiles " << config.decomp.mb << "x" << config.decomp.nb << " nodes "
      << config.decomp.node_rows << "x" << config.decomp.node_cols << " s="
      << config.steps << " fuse=" << config.fuse_depth << " kernel="
      << stencil::kernel_variant_name(config.kernel) << " sched="
      << rt::sched_policy_name(config.scheduler) << " workers="
      << config.workers_per_rank;
  if (config.persistent) out << " persistent";
  if (!config.dedicated_comm_thread) out << " no-comm-thread";
  if (config.sched_seed != 0) out << " sched_seed=" << config.sched_seed;
  return out.str();
}

/// The canonical failure tag: greppable, reproduces the round from the log.
inline std::string failing_seed(std::uint64_t seed,
                                const stencil::DistConfig& config) {
  return "FAILING SEED=" + std::to_string(seed) + " (" + describe(config) +
         ")";
}

}  // namespace repro::test_support
