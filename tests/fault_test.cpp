// Unit tests for the fault subsystem: injector determinism, the reliable
// channel's exactly-once FIFO contract, checkpoint bookkeeping, and the DES
// loss model's closed forms.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/fault_injector.hpp"
#include "fault/reliable_channel.hpp"
#include "net/transport.hpp"
#include "sim/models.hpp"

namespace repro::fault {
namespace {

net::Message make_msg(int src, int dst, std::uint64_t value) {
  net::Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.header = {value};
  msg.payload = {static_cast<double>(value)};
  return msg;
}

/// Acks are applied when the ack's destination rank receives them — the
/// runtime's per-rank receiver loops do that in real runs. Lossy unit tests
/// stand in this poller for the sender-side ranks, or the in-flight window
/// would never drain.
class AckDrainer {
 public:
  AckDrainer(ReliableChannel& channel, std::vector<int> ranks)
      : channel_(channel), ranks_(std::move(ranks)), thread_([this] { run(); }) {}
  ~AckDrainer() { stop(); }

  void stop() {
    done_.store(true);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    try {
      while (!done_.load()) {
        for (int rank : ranks_) channel_.try_recv(rank);
        std::this_thread::yield();
      }
    } catch (const net::ChannelError&) {
      // A test that expects failure observes it on its own thread.
    }
  }

  ReliableChannel& channel_;
  std::vector<int> ranks_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

TEST(FaultInjector, ZeroFaultPlanForwardsEverything) {
  auto transport = std::make_shared<net::Transport>(2);
  FaultInjector injector(transport, FaultPlan::uniform(7, 0.0));
  for (int i = 0; i < 100; ++i) injector.send(make_msg(0, 1, i));
  for (int i = 0; i < 100; ++i) {
    const auto msg = injector.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(i));
  }
  const FaultStats stats = injector.fault_stats();
  EXPECT_EQ(stats.forwarded, 100u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.duplicated, 0u);
  EXPECT_EQ(stats.reordered, 0u);
  injector.close();
}

TEST(FaultInjector, FaultDrawsAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    auto transport = std::make_shared<net::Transport>(2);
    FaultInjector injector(transport,
                           FaultPlan::uniform(seed, 0.3, 0.1, 0.1));
    for (int i = 0; i < 500; ++i) injector.send(make_msg(0, 1, i));
    const FaultStats stats = injector.fault_stats();
    injector.close();
    return stats;
  };
  const FaultStats a = run(42);
  const FaultStats b = run(42);
  const FaultStats c = run(43);
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.reordered, b.reordered);
  // A different seed draws a different fault sequence (with overwhelming
  // probability for 500 sends at these rates).
  EXPECT_NE(a.dropped, c.dropped);
}

TEST(FaultInjector, DropRateIsRoughlyHonored) {
  auto transport = std::make_shared<net::Transport>(2);
  FaultInjector injector(transport, FaultPlan::uniform(1, 0.2));
  const int n = 2000;
  for (int i = 0; i < n; ++i) injector.send(make_msg(0, 1, i));
  const FaultStats stats = injector.fault_stats();
  EXPECT_EQ(stats.forwarded + stats.dropped, static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(stats.dropped) / n, 0.2, 0.05);
  injector.close();
}

TEST(FaultInjector, BlackoutDropsEverythingAfterThreshold) {
  auto transport = std::make_shared<net::Transport>(2);
  FaultPlan plan;  // no random faults
  plan.blackout_after = 10;
  FaultInjector injector(transport, plan);
  for (int i = 0; i < 25; ++i) injector.send(make_msg(0, 1, i));
  const FaultStats stats = injector.fault_stats();
  EXPECT_EQ(stats.forwarded, 10u);
  EXPECT_EQ(stats.dropped, 15u);
  injector.close();
}

TEST(ReliableChannel, ZeroFaultPathAddsNoRetransmits) {
  auto transport = std::make_shared<net::Transport>(2);
  auto injector =
      std::make_shared<FaultInjector>(transport, FaultPlan::uniform(1, 0.0));
  // Nobody drains rank 0's ack mailbox in this test, so park the timeout far
  // beyond the test's lifetime; the e2e suite verifies zero retransmits with
  // live receivers at the real 5 ms timeout.
  ReliableConfig config;
  config.timeout_s = 30.0;
  ReliableChannel channel(injector, config);
  for (int i = 0; i < 200; ++i) channel.send(make_msg(0, 1, i));
  for (int i = 0; i < 200; ++i) {
    const auto msg = channel.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(i));
    EXPECT_EQ(msg->payload[0], static_cast<double>(i));
  }
  const ReliableStats stats = channel.reliable_stats();
  EXPECT_EQ(stats.data_sent, 200u);
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.dup_dropped, 0u);
  EXPECT_EQ(stats.out_of_order, 0u);
  EXPECT_FALSE(stats.failed);
  channel.close();
}

TEST(ReliableChannel, LosslessInnerRetainsEnvelopesOnly) {
  // Over a lossless inner stack the retransmit window keeps envelopes only:
  // the per-message defensive payload copy is skipped entirely.
  {
    ReliableChannel channel(std::make_shared<net::Transport>(2));
    for (int i = 0; i < 50; ++i) channel.send(make_msg(0, 1, i));
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(channel.recv(1).has_value());
    }
    EXPECT_EQ(channel.reliable_stats().retained_payload_doubles, 0u);
    channel.close();
  }
  // A stacked injector can lose messages (lossless() is false even at zero
  // configured rates), so the window must retain payloads for resending.
  {
    auto transport = std::make_shared<net::Transport>(2);
    auto injector = std::make_shared<FaultInjector>(
        transport, FaultPlan::uniform(1, 0.0));
    ReliableConfig config;
    config.timeout_s = 30.0;
    ReliableChannel channel(injector, config);
    for (int i = 0; i < 50; ++i) channel.send(make_msg(0, 1, i));
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(channel.recv(1).has_value());
    }
    // make_msg carries one payload double per message.
    EXPECT_EQ(channel.reliable_stats().retained_payload_doubles, 50u);
    channel.close();
  }
}

TEST(ReliableChannel, SharedViewPayloadKeepsPointerStability) {
  // Persistent-channel fragments ride through the reliability layer as
  // shared views: retention is a refcount bump, never a payload re-copy, so
  // the consumer sees the producer's registered buffer itself.
  auto transport = std::make_shared<net::Transport>(2);
  auto injector = std::make_shared<FaultInjector>(
      transport, FaultPlan::uniform(1, 0.0));
  ReliableConfig config;
  config.timeout_s = 30.0;
  ReliableChannel channel(injector, config);

  auto buffer = std::make_shared<std::vector<double>>(8, 0.0);
  for (int i = 0; i < 8; ++i) (*buffer)[static_cast<std::size_t>(i)] = i;
  const double* registered = buffer->data();

  net::Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.header = {7};
  msg.owner = buffer;
  msg.view_offset = 0;
  msg.view_len = buffer->size();
  channel.send(std::move(msg));

  const auto out = channel.recv(1);
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->shared_payload());
  EXPECT_EQ(out->payload_data(), registered);
  EXPECT_EQ(out->payload_len(), 8u);
  EXPECT_EQ(channel.reliable_stats().retained_payload_doubles, 0u);
  channel.close();
}

TEST(ReliableChannel, HollowRetransmitsStayExactlyOnce) {
  // Force retransmissions over a lossless inner stack (tiny timeout, acks
  // initially undrained): the resends are hollow envelope-only duplicates of
  // already-delivered messages — the receiver must suppress every one of
  // them by sequence number. (Over a FIFO lossless inner the original always
  // arrives before its retransmit, so no hollow copy can be buffered.)
  ReliableConfig config;
  config.timeout_s = 0.0005;
  config.max_retries = 1000;  // the test drains acks before exhaustion
  ReliableChannel channel(std::make_shared<net::Transport>(2), config);
  const int n = 20;
  for (int i = 0; i < n; ++i) channel.send(make_msg(0, 1, i));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  for (int i = 0; i < n; ++i) {
    const auto msg = channel.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(i));
    EXPECT_EQ(msg->payload[0], static_cast<double>(i));
  }

  // Drain the acks so the windows empty and the retransmit thread quiesces.
  AckDrainer drainer(channel, {0});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    std::uint64_t before = channel.reliable_stats().retransmits;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (channel.reliable_stats().retransmits == before) break;
  }

  // No duplicate ever reaches the caller, and no payload was ever retained.
  for (int spin = 0; spin < 20; ++spin) {
    EXPECT_FALSE(channel.try_recv(1).has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ReliableStats stats = channel.reliable_stats();
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.dup_dropped, 0u);
  EXPECT_EQ(stats.retained_payload_doubles, 0u);
  EXPECT_FALSE(stats.failed);
  drainer.stop();
  channel.close();
}

TEST(ReliableChannel, ExactlyOnceFifoOverFaultyChannel) {
  // 15% drop + 10% duplicate + 10% reorder, several seeds: every message
  // arrives exactly once, in order, with its payload intact.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    auto transport = std::make_shared<net::Transport>(2);
    auto injector = std::make_shared<FaultInjector>(
        transport, FaultPlan::uniform(seed, 0.15, 0.10, 0.10));
    ReliableConfig config;
    config.timeout_s = 0.001;
    ReliableChannel channel(injector, config);
    AckDrainer drainer(channel, {0});

    const int n = 300;
    std::thread sender([&] {
      for (int i = 0; i < n; ++i) channel.send(make_msg(0, 1, i));
    });
    for (int i = 0; i < n; ++i) {
      const auto msg = channel.recv(1);
      ASSERT_TRUE(msg.has_value()) << "seed " << seed << " i " << i;
      EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(i));
      EXPECT_EQ(msg->payload[0], static_cast<double>(i));
    }
    sender.join();
    drainer.stop();
    EXPECT_FALSE(channel.failed());
    channel.close();
  }
}

TEST(ReliableChannel, ConcurrentSendersKeepPerChannelFifo) {
  // Ranks 0 and 2 both stream to rank 1 over a lossy link; each (src,dst)
  // stream must stay independently FIFO and complete.
  auto transport = std::make_shared<net::Transport>(3);
  auto injector = std::make_shared<FaultInjector>(
      transport, FaultPlan::uniform(5, 0.1, 0.1, 0.1));
  ReliableConfig config;
  config.timeout_s = 0.001;
  ReliableChannel channel(injector, config);
  AckDrainer drainer(channel, {0, 2});

  const int n = 200;
  auto produce = [&](int src) {
    for (int i = 0; i < n; ++i) channel.send(make_msg(src, 1, i));
  };
  std::thread s0(produce, 0);
  std::thread s2(produce, 2);
  std::uint64_t next_from[3] = {0, 0, 0};
  for (int got = 0; got < 2 * n;) {
    const auto msg = channel.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->header[0], next_from[msg->src]) << "src " << msg->src;
    ++next_from[msg->src];
    ++got;
  }
  s0.join();
  s2.join();
  drainer.stop();
  EXPECT_EQ(next_from[0], static_cast<std::uint64_t>(n));
  EXPECT_EQ(next_from[2], static_cast<std::uint64_t>(n));
  channel.close();
}

TEST(ReliableChannel, GivesUpAndThrowsWhenRetriesExhausted) {
  auto transport = std::make_shared<net::Transport>(2);
  auto injector =
      std::make_shared<FaultInjector>(transport, FaultPlan::uniform(1, 1.0));
  ReliableConfig config;
  config.timeout_s = 0.0005;
  config.max_retries = 3;
  ReliableChannel channel(injector, config);
  channel.send(make_msg(0, 1, 0));
  // recv blocks until the retransmit thread gives up and fails the channel.
  EXPECT_THROW(channel.recv(1), net::ChannelError);
  EXPECT_TRUE(channel.failed());
  EXPECT_TRUE(channel.reliable_stats().failed);
  EXPECT_GE(channel.reliable_stats().retransmits, 3u);
  EXPECT_THROW(channel.send(make_msg(0, 1, 1)), net::ChannelError);
  channel.close();
}

TEST(ReliableChannel, TryRecvDrainsWithoutBlocking) {
  auto transport = std::make_shared<net::Transport>(2);
  ReliableConfig config;
  config.timeout_s = 30.0;  // undrained acks again: keep retransmits out
  ReliableChannel channel(transport, config);
  EXPECT_FALSE(channel.try_recv(1).has_value());
  for (int i = 0; i < 50; ++i) channel.send(make_msg(0, 1, i));
  int got = 0;
  while (got < 50) {
    if (const auto msg = channel.try_recv(1)) {
      EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(got));
      ++got;
    }
  }
  EXPECT_FALSE(channel.try_recv(1).has_value());
  channel.close();
}

TEST(CheckpointStore, StoresFindsAndTracksCompleteness) {
  CheckpointStore store;
  EXPECT_EQ(store.last_complete_superstep(4), -1);
  store.store(0, 0, 0, {1.0});
  store.store(0, 0, 1, {2.0});
  store.store(0, 1, 0, {3.0});
  store.store(0, 1, 1, {4.0});
  store.store(5, 0, 0, {5.0});  // superstep 5 incomplete: 1 of 4 tiles
  EXPECT_EQ(store.last_complete_superstep(4), 0);
  store.store(5, 0, 1, {6.0});
  store.store(5, 1, 0, {7.0});
  store.store(5, 1, 1, {8.0});
  EXPECT_EQ(store.last_complete_superstep(4), 5);

  const auto found = store.find(5, 1, 0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ((*found)[0], 7.0);
  EXPECT_FALSE(store.find(5, 2, 2).has_value());
  EXPECT_FALSE(store.find(3, 0, 0).has_value());

  EXPECT_EQ(store.tiles(0).size(), 4u);
  EXPECT_EQ(store.stats().stored, 8u);
  EXPECT_EQ(store.stats().supersteps, 2);
  EXPECT_EQ(store.stats().bytes, 8u * sizeof(double));
}

TEST(CheckpointStore, OverwriteIsIdempotentAndTrimDropsOldSupersteps) {
  CheckpointStore store;
  store.store(0, 0, 0, {1.0});
  store.store(0, 0, 0, {1.0});  // re-execution stores the same snapshot
  EXPECT_EQ(store.tiles(0).size(), 1u);
  EXPECT_EQ(store.stats().stored, 2u);
  store.store(5, 0, 0, {2.0});
  store.store(10, 0, 0, {3.0});
  store.trim_below(5);
  EXPECT_FALSE(store.find(0, 0, 0).has_value());
  EXPECT_TRUE(store.find(5, 0, 0).has_value());
  EXPECT_TRUE(store.find(10, 0, 0).has_value());
  store.clear();
  EXPECT_EQ(store.last_complete_superstep(1), -1);
}

TEST(CheckpointStore, ConcurrentStoresFromWorkerThreadsAreSafe) {
  CheckpointStore store;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&store, t] {
      for (int k = 0; k < 50; ++k) store.store(k, t, 0, {static_cast<double>(k)});
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(store.stats().stored, 200u);
  EXPECT_EQ(store.last_complete_superstep(4), 49);
}

TEST(LossModel, ZeroLossIsExactlyFree) {
  sim::LossModel loss;
  EXPECT_DOUBLE_EQ(loss.expected_attempts(), 1.0);
  EXPECT_DOUBLE_EQ(loss.expected_extra_latency_s(), 0.0);
}

TEST(LossModel, ExpectedAttemptsMatchesGeometricSeries) {
  sim::LossModel loss;
  loss.loss_rate = 0.5;
  loss.max_retries = 2;
  // 1 + p + p^2 = 1.75 transmissions on average with a 2-resend cap.
  EXPECT_DOUBLE_EQ(loss.expected_attempts(), 1.75);

  loss.max_retries = 60;  // effectively uncapped: -> 1 / (1 - p)
  EXPECT_NEAR(loss.expected_attempts(), 2.0, 1e-9);
}

TEST(LossModel, ExtraLatencyGrowsWithLossAndBacksOff) {
  sim::LossModel a;
  a.loss_rate = 0.1;
  sim::LossModel b = a;
  b.loss_rate = 0.3;
  EXPECT_GT(b.expected_extra_latency_s(), a.expected_extra_latency_s());
  EXPECT_GT(a.expected_extra_latency_s(), 0.0);

  // With backoff 1 and one retry max, the conditional mean wait is
  // p * t / (1 - p + p(1-p)) ... simpler: P(1 fail then success) * t,
  // normalized by P(success within budget).
  sim::LossModel c;
  c.loss_rate = 0.5;
  c.backoff = 1.0;
  c.max_retries = 1;
  c.retransmit_timeout_s = 0.01;
  const double p_success_0 = 0.5, p_success_1 = 0.25;
  const double expect =
      (p_success_1 * 0.01) / (p_success_0 + p_success_1);
  EXPECT_NEAR(c.expected_extra_latency_s(), expect, 1e-12);
}

}  // namespace
}  // namespace repro::fault
