#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/aligned_buffer.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace repro {
namespace {

TEST(Units, GbitConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(gbit_per_s(32.0), 4e9);
  EXPECT_DOUBLE_EQ(to_gbit_per_s(gbit_per_s(100.0)), 100.0);
  EXPECT_DOUBLE_EQ(to_gb_per_s(39.1e9), 39.1);
}

TEST(Units, FormatBytesPicksLargestExactUnit) {
  EXPECT_EQ(format_bytes(256), "256B");
  EXPECT_EQ(format_bytes(4 * KiB), "4KiB");
  EXPECT_EQ(format_bytes(3 * MiB), "3MiB");
  EXPECT_EQ(format_bytes(2 * GiB), "2GiB");
  EXPECT_EQ(format_bytes(1536), "1536B");  // 1.5KiB is not exact
}

TEST(AlignedBuffer, SixtyFourByteAlignment) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<double> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
    EXPECT_EQ(buf.size(), n);
  }
}

TEST(AlignedBuffer, ZeroedInitializesAndMovePreservesData) {
  auto buf = AlignedBuffer<double>::zeroed(128);
  for (double v : buf) EXPECT_EQ(v, 0.0);
  buf[5] = 3.5;
  AlignedBuffer<double> moved = std::move(buf);
  EXPECT_EQ(moved[5], 3.5);
  EXPECT_EQ(buf.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(buf.empty());
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.begin(), buf.end());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformDoublesInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Stats, SummaryOfKnownSample) {
  const double data[] = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptySampleIsZeroes) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const double data[] = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(data, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(data, 12.5), 15.0);
}

TEST(Stats, PercentileTinySamples) {
  // 1 sample: every percentile is that sample.
  const double one[] = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), 7.0);

  // 2 samples: linear interpolation between the two.
  const double two[] = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(two, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(two, 25.0), 12.5);
  EXPECT_DOUBLE_EQ(percentile(two, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(two, 100.0), 20.0);

  // Out-of-range p clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(percentile(two, -5.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(two, 250.0), 20.0);
}

TEST(Stats, PercentileNanPIsNanNotUB) {
  // std::clamp propagates NaN; the old code cast that NaN rank to size_t
  // (undefined behavior, caught by UBSan). NaN in -> NaN out.
  const double data[] = {1.0, 2.0, 3.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(percentile(data, nan)));
  EXPECT_EQ(percentile({}, nan), 0.0);  // empty still wins
}

TEST(Stats, PercentileSortedSkipsTheCopy) {
  const double sorted[] = {1.0, 2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 100.0), 8.0);
  EXPECT_EQ(percentile_sorted({}, 50.0), 0.0);
}

TEST(Stats, SingleSampleSummaryAndRunningStats) {
  const double one[] = {3.5};
  const Summary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);

  RunningStats running;
  running.add(3.5);
  EXPECT_EQ(running.count(), 1u);
  EXPECT_DOUBLE_EQ(running.mean(), 3.5);
  EXPECT_DOUBLE_EQ(running.variance(), 0.0);  // population variance, not n-1
  EXPECT_DOUBLE_EQ(running.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(running.min(), 3.5);
  EXPECT_DOUBLE_EQ(running.max(), 3.5);
}

TEST(Stats, TwoSampleSummary) {
  const double two[] = {2.0, 4.0};
  const Summary s = summarize(two);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
}

TEST(Stats, RunningStatsMatchesBatchSummary) {
  Rng rng(11);
  std::vector<double> samples;
  RunningStats running;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    samples.push_back(x);
    running.add(x);
  }
  const Summary batch = summarize(samples);
  EXPECT_NEAR(running.mean(), batch.mean, 1e-10);
  EXPECT_NEAR(running.stddev(), batch.stddev, 1e-10);
  EXPECT_DOUBLE_EQ(running.min(), batch.min);
  EXPECT_DOUBLE_EQ(running.max(), batch.max);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer-name", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Options, ParsesAllForms) {
  const char* argv[] = {"prog", "--size=100", "--name=nacl", "--flag",
                        "positional"};
  Options opts(5, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("size", 0), 100);
  EXPECT_EQ(opts.get_string("name", ""), "nacl");
  EXPECT_TRUE(opts.get_bool("flag", false));
  EXPECT_FALSE(opts.get_bool("absent", false));
  EXPECT_EQ(opts.get_double("absent", 2.5), 2.5);
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "positional");
}

}  // namespace
}  // namespace repro
