#include <gtest/gtest.h>

#include <cmath>

#include "spmv/laplacian.hpp"
#include "spmv/task_cg.hpp"

namespace repro::spmv {
namespace {

std::vector<double> poisson_rhs_zero_bc(int n) {
  return build_poisson_rhs(
      n, n, [n](long i, long j) {
        return std::sin(3.14159 * (i + 1) / (n + 1)) +
               0.2 * static_cast<double>((i * 7 + j * 3) % 5);
      },
      [](long, long) { return 0.0; });
}

TEST(TaskCg, ConvergesAndMatchesSerialCg) {
  const int n = 20;
  const auto b = poisson_rhs_zero_bc(n);
  const int iters = 120;

  const TaskCgResult parallel = task_cg(n, b, 4, iters, 2);
  EXPECT_LT(parallel.residual_norm, 1e-8 * norm2(b) + 1e-10);

  const CsrMatrix a = build_laplacian_matrix(n, n);
  const CgResult serial = conjugate_gradient(a, b, 1e-12, iters);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    worst = std::max(worst, std::abs(parallel.x[i] - serial.x[i]));
  }
  // Block-wise dot products reorder the reductions; agreement is to solver
  // tolerance, not bitwise.
  EXPECT_LT(worst, 1e-8);
  EXPECT_GT(parallel.stats.messages, 0u);  // halo + reduction traffic
}

TEST(TaskCg, BlockCountDoesNotChangeTheAnswerMaterially) {
  const int n = 16;
  const auto b = poisson_rhs_zero_bc(n);
  const TaskCgResult one = task_cg(n, b, 1, 80);
  const TaskCgResult four = task_cg(n, b, 4, 80);
  const TaskCgResult eight = task_cg(n, b, 8, 80, 2);
  EXPECT_LT(one.residual_norm, 1e-8);
  EXPECT_LT(four.residual_norm, 1e-8);
  EXPECT_LT(eight.residual_norm, 1e-8);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(one.x[i], four.x[i], 1e-8);
    EXPECT_NEAR(one.x[i], eight.x[i], 1e-8);
  }
  // Single block: only scalar handles hop ranks... with nblocks=1 everything
  // is rank 0: no remote messages at all.
  EXPECT_EQ(one.stats.messages, 0u);
}

TEST(TaskCg, ZeroIterationsReturnsZero) {
  const int n = 8;
  const auto b = poisson_rhs_zero_bc(n);
  const TaskCgResult r = task_cg(n, b, 2, 0);
  for (double v : r.x) EXPECT_EQ(v, 0.0);
  EXPECT_NEAR(r.residual_norm, norm2(b), 1e-12);
}

TEST(TaskCg, ValidatesArguments) {
  std::vector<double> b(16, 1.0);
  EXPECT_THROW(task_cg(5, b, 1, 1), std::invalid_argument);   // 5*5 != 16
  EXPECT_THROW(task_cg(4, b, 0, 1), std::invalid_argument);
  EXPECT_THROW(task_cg(4, b, 5, 1), std::invalid_argument);   // blocks > rows
  EXPECT_THROW(task_cg(4, b, 2, -1), std::invalid_argument);
}

TEST(TaskCg, TaskCountMatchesStructure) {
  // Per iteration: nblocks spmv + nblocks pap + 1 alpha + nblocks update +
  // 1 beta + nblocks direction = 4*nblocks + 2. Plus setup: 9*nblocks + 3
  // data sources, nblocks rr-partials + 1 rho-init.
  const int n = 12, nblocks = 3, iters = 5;
  const auto b = poisson_rhs_zero_bc(n);
  const TaskCgResult r = task_cg(n, b, nblocks, iters);
  const std::size_t expected = (6 * nblocks + 3)      // data sources
                               + nblocks + 1          // rho init
                               + iters * (4 * nblocks + 2);
  EXPECT_EQ(r.stats.tasks_executed, expected);
}

}  // namespace
}  // namespace repro::spmv
