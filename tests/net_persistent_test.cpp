// Unit tests for net::PersistentChannel: negotiation validation and
// handshake accounting, zero-copy fragment assembly (pointer equality with
// the producer's registered buffer), slot-pool reuse with zero steady-state
// allocations, the copy-assembly fallback, and passthrough of ordinary
// traffic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/persistent_channel.hpp"
#include "net/transport.hpp"

namespace repro::net {
namespace {

RouteSpec route(std::uint64_t id, int src, int dst, std::size_t doubles,
                std::uint32_t fragments = 1) {
  RouteSpec spec;
  spec.id = id;
  spec.src = src;
  spec.dst = dst;
  spec.doubles = doubles;
  spec.fragments = fragments;
  return spec;
}

Message plain_msg(int src, int dst, std::uint64_t value) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.header = {value};
  msg.payload = {static_cast<double>(value)};
  return msg;
}

TEST(PersistentChannel, NegotiateRejectsInvalidSpecs) {
  auto make = [] {
    return PersistentChannel(std::make_shared<Transport>(2));
  };
  {
    auto chan = make();
    EXPECT_THROW(chan.negotiate({route(0, 0, 1, 8)}), std::invalid_argument);
  }
  {
    auto chan = make();
    EXPECT_THROW(chan.negotiate({route(1, 0, 1, 0)}), std::invalid_argument);
  }
  {
    auto chan = make();
    EXPECT_THROW(chan.negotiate({route(1, 0, 2, 8)}), std::invalid_argument);
  }
  {
    auto chan = make();
    EXPECT_THROW(chan.negotiate({route(1, 0, 1, 8), route(1, 1, 0, 8)}),
                 std::invalid_argument);
  }
  {
    auto chan = make();
    chan.negotiate({route(1, 0, 1, 8)});
    EXPECT_THROW(chan.negotiate({route(2, 0, 1, 8)}), std::logic_error);
  }
}

TEST(PersistentChannel, HandshakeGoesOnTheWireAndIsConsumed) {
  auto transport = std::make_shared<Transport>(2);
  PersistentChannel chan(transport);
  chan.negotiate({route(1, 0, 1, 8), route(2, 0, 1, 4), route(3, 1, 0, 8)});

  // Ordered pairs (0,1) and (1,0): one OPEN + one ACK each.
  const auto stats = chan.persistent_stats();
  EXPECT_EQ(stats.routes, 3u);
  EXPECT_EQ(stats.handshake_messages, 4u);
  EXPECT_EQ(transport->stats().messages, 4u);

  // Control traffic never reaches the caller.
  EXPECT_FALSE(chan.try_recv(0).has_value());
  EXPECT_FALSE(chan.try_recv(1).has_value());
  EXPECT_EQ(chan.pending(0), 0u);
  EXPECT_EQ(chan.pending(1), 0u);

  EXPECT_NE(chan.route_spec(1), nullptr);
  EXPECT_EQ(chan.route_spec(1)->doubles, 8u);
  EXPECT_EQ(chan.route_spec(99), nullptr);
  chan.close();
}

TEST(PersistentChannel, FragmentRoundTripIsZeroCopy) {
  PersistentChannel chan(std::make_shared<Transport>(2));
  chan.negotiate({route(7, 0, 1, 8, 2)});

  auto slot = chan.acquire(7);
  ASSERT_EQ(slot->size(), 8u);
  for (int i = 0; i < 8; ++i) (*slot)[static_cast<std::size_t>(i)] = i * 1.5;
  const double* registered = slot->data();

  const std::vector<std::uint64_t> rt_header = {0, 42, 1, 2, 3, 0};
  chan.send(chan.make_fragment(7, 0, slot, rt_header));
  EXPECT_FALSE(chan.try_recv(1).has_value());  // partial: nothing delivered
  chan.send(chan.make_fragment(7, 1, slot, rt_header));

  auto out = chan.try_recv(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->shared_payload());
  EXPECT_EQ(out->payload_data(), registered);  // the registered buffer itself
  EXPECT_EQ(out->payload_len(), 8u);
  EXPECT_EQ(out->header, rt_header);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(out->payload_data()[i], i * 1.5);
  }

  const auto stats = chan.persistent_stats();
  EXPECT_EQ(stats.fragments, 2u);
  EXPECT_EQ(stats.deliveries, 1u);
  EXPECT_EQ(stats.assembly_copies, 0u);
  chan.close();
}

TEST(PersistentChannel, SlotPoolReachesZeroAllocationSteadyState) {
  PersistentChannel chan(std::make_shared<Transport>(2));
  chan.negotiate({route(1, 0, 1, 16, 4)});

  for (int iter = 0; iter < 100; ++iter) {
    auto slot = chan.acquire(1);
    (*slot)[0] = iter;
    for (std::uint32_t f = 0; f < 4; ++f) {
      chan.send(chan.make_fragment(1, f, slot, {}));
    }
    slot.reset();  // producer lets go; in-flight views keep it alive
    auto out = chan.try_recv(1);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(out->payload_data()[0], iter);
    // `out` dropped here: the slot returns to the pool for the next acquire.
  }

  const auto stats = chan.persistent_stats();
  EXPECT_EQ(stats.deliveries, 100u);
  EXPECT_LE(stats.buffer_allocs, PersistentChannel::kWarmupSlots);
  EXPECT_EQ(stats.steady_allocs, 0u);
  EXPECT_EQ(stats.assembly_copies, 0u);
  chan.close();
}

TEST(PersistentChannel, MixedOwnersFallBackToCopyAssembly) {
  PersistentChannel chan(std::make_shared<Transport>(2));
  chan.negotiate({route(5, 0, 1, 6, 2)});

  // Fragment 0 from one registered slot, fragment 1 from a detached buffer:
  // the consumer cannot deliver one owner zero-copy, so it assembles by copy.
  auto slot = chan.acquire(5);
  for (int i = 0; i < 6; ++i) (*slot)[static_cast<std::size_t>(i)] = 10 + i;
  chan.send(chan.make_fragment(5, 0, slot, {}));

  auto other = std::make_shared<std::vector<double>>(6, 0.0);
  for (int i = 0; i < 6; ++i) (*other)[static_cast<std::size_t>(i)] = 10 + i;
  chan.send(chan.make_fragment(5, 1, other, {}));

  auto out = chan.try_recv(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->shared_payload());
  ASSERT_EQ(out->payload_len(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(out->payload_data()[i], 10 + i);
  }
  EXPECT_GT(chan.persistent_stats().assembly_copies, 0u);
  chan.close();
}

TEST(PersistentChannel, OrdinaryTrafficPassesThroughUntouched) {
  PersistentChannel chan(std::make_shared<Transport>(2));
  chan.negotiate({route(1, 0, 1, 8)});
  for (int i = 0; i < 10; ++i) chan.send(plain_msg(0, 1, i));
  for (int i = 0; i < 10; ++i) {
    auto msg = chan.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(i));
    EXPECT_DOUBLE_EQ(msg->payload[0], i);
  }
  chan.close();
}

TEST(PersistentChannel, FragmentSliceEvenSplitWithRemainder) {
  // 10 doubles over 4 fragments: 3,3,2,2 with contiguous coverage.
  std::size_t expect_begin = 0;
  for (std::uint32_t f = 0; f < 4; ++f) {
    const auto [begin, len] = PersistentChannel::fragment_slice(10, 4, f);
    EXPECT_EQ(begin, expect_begin);
    EXPECT_EQ(len, f < 2 ? 3u : 2u);
    expect_begin += len;
  }
  EXPECT_EQ(expect_begin, 10u);
}

TEST(PersistentChannel, MakeFragmentValidates) {
  PersistentChannel chan(std::make_shared<Transport>(2));
  chan.negotiate({route(1, 0, 1, 8, 2)});
  auto slot = chan.acquire(1);
  EXPECT_THROW(chan.make_fragment(99, 0, slot, {}), std::invalid_argument);
  EXPECT_THROW(chan.make_fragment(1, 2, slot, {}), std::invalid_argument);
  auto wrong = std::make_shared<std::vector<double>>(4, 0.0);
  EXPECT_THROW(chan.make_fragment(1, 0, wrong, {}), std::invalid_argument);
  EXPECT_THROW(chan.acquire(99), std::invalid_argument);
  chan.close();
}

TEST(PersistentChannel, DuplicateFragmentIsAProtocolError) {
  PersistentChannel chan(std::make_shared<Transport>(2));
  chan.negotiate({route(1, 0, 1, 8, 2)});
  auto slot = chan.acquire(1);
  chan.send(chan.make_fragment(1, 0, slot, {}));
  chan.send(chan.make_fragment(1, 0, slot, {}));
  // One try_recv drains both inner messages: frag 0 assembles (partial),
  // its duplicate is a protocol error.
  EXPECT_THROW(chan.try_recv(1), ChannelError);
  chan.close();
}

TEST(PersistentChannel, LosslessDelegatesToInner) {
  auto transport = std::make_shared<Transport>(2);
  PersistentChannel chan(transport);
  EXPECT_TRUE(chan.lossless());  // Transport is lossless
  chan.close();
}

TEST(PersistentChannel, FactoryBuildsPersistentOverDefaultTransport) {
  const ChannelFactory factory = persistent_channel_factory({}, nullptr);
  const std::shared_ptr<Channel> chan = factory(3);
  ASSERT_NE(chan, nullptr);
  EXPECT_EQ(chan->nranks(), 3);
  EXPECT_NE(dynamic_cast<PersistentChannel*>(chan.get()), nullptr);
  chan->close();
}

}  // namespace
}  // namespace repro::net
