// End-to-end distributed equivalence for spec-driven problems: every named
// spec (and a handful of random ones) run through run_distributed must match
// solve_serial_spec bit-for-bit on every z plane, under both schedulers and
// the optimized kernels, in base (steps=1) and CA (steps>1) mode. The star5
// spec must additionally reproduce the LEGACY hard-wired solver exactly —
// same field bytes, same message and byte counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "equivalence_helpers.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"
#include "stencil/spec_kernel.hpp"

namespace repro::stencil {
namespace {

// 24x22 grid over 8x11 tiles on a 2x2 node grid: 3x2 tiles mixing remote
// and local sides in both dimensions, plus ragged edge tiles.
DistConfig small_config(int steps, rt::SchedPolicy sched,
                        KernelVariant kernel = KernelVariant::Scalar) {
  DistConfig config;
  config.decomp = {8, 11, 2, 2};
  config.steps = steps;
  config.workers_per_rank = 2;
  config.scheduler = sched;
  config.kernel = kernel;
  return config;
}

// Thin wrapper over the shared oracle helper: runs the distributed solve and
// tags any mismatch with the spec literal plus the full configuration line.
::testing::AssertionResult planes_match(const Problem& problem,
                                        const DistConfig& config) {
  const DistResult d = run_distributed(problem, config);
  const auto match = test_support::planes_match(solve_serial_spec(problem), d);
  if (!match) {
    return ::testing::AssertionFailure()
           << match.message() << " spec " << problem.spec->to_literal() << " "
           << test_support::describe(config);
  }
  return match;
}

TEST(SpecDist, NamedSpecsBitExactAllSchedulers) {
  for (const std::string& name : spec::spec_names()) {
    const spec::StencilSpec sp = spec::spec_by_name(name);
    const int nz = sp.rank == 3 ? 3 : 1;
    const Problem problem = spec_problem(sp, 24, 22, 6, nz, 11);
    for (int steps : {1, 2}) {
      for (rt::SchedPolicy sched :
           {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
        EXPECT_TRUE(planes_match(problem, small_config(steps, sched)))
            << name << " steps=" << steps
            << " sched=" << rt::sched_policy_name(sched);
      }
    }
  }
}

TEST(SpecDist, PersistentChannelBitExactForNamedSpecs) {
  // The persistent route path on the spec front end: every named spec's
  // halos ride registered route buffers split into nfield fragments (the
  // multi-plane programs exercise true multi-fragment assembly), and each z
  // plane must still match the serial oracle bit-for-bit.
  for (const std::string& name : spec::spec_names()) {
    const spec::StencilSpec sp = spec::spec_by_name(name);
    const int nz = sp.rank == 3 ? 3 : 1;
    const Problem problem = spec_problem(sp, 24, 22, 6, nz, 11);
    for (int steps : {1, 2}) {
      DistConfig config = small_config(steps, rt::SchedPolicy::WorkStealing);
      config.persistent = true;
      EXPECT_TRUE(planes_match(problem, config))
          << name << " steps=" << steps << " persistent";
    }
  }
}

TEST(SpecDist, FusedWavefrontBitExactForNamedSpecs) {
  // Fused wavefronts on the spec front end: every named spec whose window
  // (stage_count * fuse) fits the smallest tile extent (8 here) runs through
  // the fuse-ready builder + rt::fuse_supersteps and must stay bit-exact on
  // every z plane — under both schedulers, and composed with the persistent
  // wire (routes survive the rewrite because window-boundary publishes keep
  // their slot identities).
  for (const std::string& name : spec::spec_names()) {
    const spec::StencilSpec sp = spec::spec_by_name(name);
    const int nz = sp.rank == 3 ? 3 : 1;
    const Problem problem = spec_problem(sp, 24, 22, 6, nz, 11);
    const int stages = spec::stage_count(sp);
    for (int fuse : {2, 3}) {
      if (stages * fuse > 8) continue;
      for (rt::SchedPolicy sched :
           {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
        DistConfig config = small_config(1, sched);
        config.fuse_depth = fuse;
        EXPECT_TRUE(planes_match(problem, config))
            << name << " fuse=" << fuse;
      }
      DistConfig config = small_config(1, rt::SchedPolicy::WorkStealing);
      config.fuse_depth = fuse;
      config.persistent = true;
      EXPECT_TRUE(planes_match(problem, config))
          << name << " fuse=" << fuse << " persistent";
    }
  }
}

TEST(SpecDist, OptimizedKernelsStayBitExact) {
  // Spec programs route non-Scalar variants through the row-band blocked
  // sweep (and star5 through jacobi5_opt); results must not move.
  const Problem box = spec_problem(spec::StencilSpec::box27(), 24, 22, 6, 2);
  EXPECT_TRUE(planes_match(
      box, small_config(2, rt::SchedPolicy::WorkStealing,
                        KernelVariant::Blocked)));
  const Problem star = spec_problem(spec::StencilSpec::star5(), 24, 22, 6, 1);
  EXPECT_TRUE(planes_match(
      star, small_config(2, rt::SchedPolicy::PriorityFifo,
                         KernelVariant::Vector)));
}

TEST(SpecDist, RandomSpecsBitExact) {
  for (unsigned long seed = 1; seed <= 6; ++seed) {
    const spec::StencilSpec sp = spec::random_spec(seed);
    const Problem problem =
        spec_problem(sp, 24, 22, 6, sp.rank == 3 ? 2 : 1, 11);
    EXPECT_TRUE(planes_match(
        problem, small_config(2, rt::SchedPolicy::WorkStealing)))
        << sp.to_literal();
  }
}

TEST(SpecDist, Star5SpecMatchesLegacyDistExactly) {
  // The spec path with the star5 spec must be indistinguishable from the
  // hard-wired 5-point solver: identical field AND identical traffic.
  const Problem ps = spec_problem(spec::StencilSpec::star5(), 24, 22, 6, 1,
                                  11);
  Problem pl = ps;
  pl.spec.reset();
  pl.weights = Stencil5::test_weights();
  for (int steps : {1, 2}) {
    const DistConfig config =
        small_config(steps, rt::SchedPolicy::PriorityFifo);
    const DistResult a = run_distributed(ps, config);
    const DistResult b = run_distributed(pl, config);
    EXPECT_EQ(Grid2D::max_abs_diff(a.grid, b.grid), 0.0) << "steps=" << steps;
    EXPECT_EQ(a.stats.messages, b.stats.messages) << "steps=" << steps;
    EXPECT_EQ(a.stats.bytes, b.stats.bytes) << "steps=" << steps;
    EXPECT_EQ(a.computed_points, b.computed_points) << "steps=" << steps;
  }
}

TEST(SpecDist, CornerMessagesFollowDiagonalTaps) {
  // box9 (diagonal taps) exchanges corners every superstep even at steps=1;
  // star9 (cross) needs no corners at steps=1 despite its 2-stage chain.
  const DistConfig base = small_config(1, rt::SchedPolicy::PriorityFifo);
  const Problem star9 =
      spec_problem(spec::StencilSpec::star9(), 24, 22, 4, 1, 11);
  const Problem box9 =
      spec_problem(spec::StencilSpec::box9(), 24, 22, 4, 1, 11);
  const DistResult rs = run_distributed(star9, base);
  const DistResult rb = run_distributed(box9, base);
  // star9 runs 2 stage-units per iteration with face bands only; box9 runs
  // 1 stage-unit with faces + corners. Both must beat/meet the serial
  // reference regardless — exactness is covered above; here we pin traffic.
  EXPECT_GT(rb.stats.messages, 0u);
  EXPECT_GT(rs.stats.messages, 0u);
  // Corner payloads exist only for box9: with equal supersteps a cross spec
  // sends 4 faces/tile-exchange, the box adds its diagonals.
  const Problem star5 =
      spec_problem(spec::StencilSpec::star5(), 24, 22, 4, 1, 11);
  const DistResult r5 = run_distributed(star5, base);
  EXPECT_GT(rb.stats.messages, r5.stats.messages);
}

TEST(SpecDist, GatherPlanesShapesAndRedundancy) {
  const Problem problem =
      spec_problem(spec::StencilSpec::heat3d(), 24, 22, 4, 3, 11);
  const DistConfig config = small_config(2, rt::SchedPolicy::PriorityFifo);
  const DistResult r = run_distributed(problem, config);
  ASSERT_EQ(r.planes.size(), 3u);
  for (const Grid2D& plane : r.planes) {
    EXPECT_EQ(plane.rows(), 24);
    EXPECT_EQ(plane.cols(), 22);
  }
  // CA at steps=2 recomputes ghost bands: redundant work must be counted.
  EXPECT_GT(r.redundancy(), 0.0);
  EXPECT_GT(r.flops_per_point, 0.0);
}

TEST(SpecDist, OversizedStepsThrow) {
  const Problem problem =
      spec_problem(spec::StencilSpec::star9(), 24, 22, 4, 1, 11);
  // star9 compiles to radius-1 stage units with steps doubled (2 stages), so
  // the effective ghost depth is steps * stages; 8 * 2 = 16 exceeds the
  // smallest tile extent (8) and must throw.
  DistConfig config = small_config(8, rt::SchedPolicy::PriorityFifo);
  EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
}

}  // namespace
}  // namespace repro::stencil
