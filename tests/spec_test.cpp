// Unit tests for the declarative stencil front end (src/spec): spec
// validation, named constructors, derived halo regions, atomic-stage counts,
// compiled-program structure, and the serial staged oracle's agreement with
// a direct wide-stencil sweep (bit-exact for 1-stage specs, tolerance for
// multi-stage ones whose reassembly reassociates the sum).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "spec/stages.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/serial.hpp"
#include "stencil/solver.hpp"
#include "stencil/spec_kernel.hpp"

namespace repro::stencil {
namespace {

// Direct wide-stencil serial reference: radius-r ring, one sweep per
// iteration applying every tap at once in listed order. The staged oracle
// computes the same operator with a different association, so multi-stage
// specs match to rounding; 1-stage specs must match bit-for-bit (one stage
// IS the direct sweep).
std::vector<std::vector<double>> solve_direct(const Problem& p) {
  const spec::StencilSpec& sp = *p.spec;
  const int r = sp.radius();
  const int nz = p.nz;
  const int rows = p.rows, cols = p.cols;
  auto idx = [&](int z, int i, int j) {
    return ((z + r) * (rows + 2 * r) + (i + r)) * (cols + 2 * r) + (j + r);
  };
  std::vector<double> cur(static_cast<std::size_t>(nz + 2 * r) *
                          (rows + 2 * r) * (cols + 2 * r));
  for (int z = -r; z < nz + r; ++z) {
    for (int i = -r; i < rows + r; ++i) {
      for (int j = -r; j < cols + r; ++j) {
        const bool in =
            z >= 0 && z < nz && i >= 0 && i < rows && j >= 0 && j < cols;
        cur[idx(z, i, j)] = in ? p.initial3(i, j, z) : p.boundary3(i, j, z);
      }
    }
  }
  std::vector<double> nxt = cur;
  for (int k = 0; k < p.iterations; ++k) {
    for (int z = 0; z < nz; ++z) {
      for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
          double acc = 0.0;
          for (const spec::StencilPoint& pt : sp.points) {
            acc += pt.coeff * cur[idx(z + pt.offset[2], i + pt.offset[0],
                                      j + pt.offset[1])];
          }
          nxt[idx(z, i, j)] = acc;
        }
      }
    }
    std::swap(cur, nxt);
  }
  std::vector<std::vector<double>> out(nz, std::vector<double>(rows * cols));
  for (int z = 0; z < nz; ++z) {
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) out[z][i * cols + j] = cur[idx(z, i, j)];
    }
  }
  return out;
}

double staged_vs_direct_maxdiff(const spec::StencilSpec& sp, int nz,
                                int iters) {
  const Problem p = spec_problem(sp, 12, 11, iters, nz, 7);
  const std::vector<Grid2D> staged = solve_serial_spec(p);
  const auto ref = solve_direct(p);
  double maxd = 0.0;
  for (int z = 0; z < nz; ++z) {
    for (int i = 0; i < p.rows; ++i) {
      for (int j = 0; j < p.cols; ++j) {
        maxd = std::max(maxd,
                        std::fabs(staged[z].at(i, j) - ref[z][i * p.cols + j]));
      }
    }
  }
  return maxd;
}

TEST(Spec, ValidateRejectsMalformedSpecs) {
  spec::StencilSpec s = spec::StencilSpec::star5();
  EXPECT_NO_THROW(s.validate());

  spec::StencilSpec empty = s;
  empty.points.clear();
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  spec::StencilSpec bad_rank = s;
  bad_rank.rank = 4;
  EXPECT_THROW(bad_rank.validate(), std::invalid_argument);

  spec::StencilSpec dup = s;
  dup.points.push_back(dup.points.front());
  EXPECT_THROW(dup.validate(), std::invalid_argument);

  spec::StencilSpec far = s;
  far.points.push_back({{spec::kMaxRadius + 1, 0, 0}, 0.1});
  EXPECT_THROW(far.validate(), std::invalid_argument);

  spec::StencilSpec inactive = s;  // rank 2 but a z offset
  inactive.points.push_back({{0, 0, 1}, 0.1});
  EXPECT_THROW(inactive.validate(), std::invalid_argument);
}

TEST(Spec, NamedConstructorsAndLookup) {
  const auto& names = spec::spec_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "star5");  // the CLI default
  for (const std::string& name : names) {
    const spec::StencilSpec s = spec::spec_by_name(name);
    EXPECT_EQ(s.name, name);
    EXPECT_NO_THROW(s.validate());
    EXPECT_LT(s.coeff_sum(), 1.0 + 1e-12) << name << " must be contractive";
  }
  EXPECT_THROW(spec::spec_by_name("nope"), std::invalid_argument);

  // star5's tap order is jacobi5's accumulation order — the order is what
  // makes the recognized path bit-identical to the classic solver.
  const spec::StencilSpec s5 = spec::StencilSpec::star5();
  ASSERT_EQ(s5.points.size(), 5u);
  EXPECT_EQ(s5.points[0].offset, (std::array<int, 3>{0, 0, 0}));
  EXPECT_EQ(s5.points[1].offset, (std::array<int, 3>{-1, 0, 0}));
  EXPECT_EQ(s5.points[2].offset, (std::array<int, 3>{1, 0, 0}));
  EXPECT_EQ(s5.points[3].offset, (std::array<int, 3>{0, -1, 0}));
  EXPECT_EQ(s5.points[4].offset, (std::array<int, 3>{0, 1, 0}));
}

TEST(Spec, ReachIsPerAxisAndPerDirection) {
  const spec::StencilSpec a = spec::StencilSpec::advect2d();
  // Upwind: reads strictly one-sided on each active axis.
  const int up = a.reach(0, -1) + a.reach(0, 1);
  EXPECT_GE(up, 1);
  EXPECT_EQ(a.reach(2, -1), 0);
  EXPECT_EQ(a.reach(2, 1), 0);

  const spec::StencilSpec h = spec::StencilSpec::heat3d();
  EXPECT_EQ(h.reach(2, -1), 1);
  EXPECT_EQ(h.reach(2, 1), 1);
  EXPECT_EQ(h.radius_xy(), 1);
  EXPECT_EQ(h.radius(), 1);

  const spec::StencilSpec s9 = spec::StencilSpec::star9();
  EXPECT_EQ(s9.radius(), 2);
  EXPECT_EQ(s9.radius_xy(), 2);
}

TEST(Spec, DeriveHalosFacesAndCorners) {
  // Cross specs need faces only; box specs add the diagonal regions.
  const auto star = spec::derive_halos(spec::StencilSpec::star5());
  EXPECT_EQ(star.size(), 4u);
  for (const auto& h : star) EXPECT_EQ(h.order(), 1);

  const auto star2 = spec::derive_halos(spec::StencilSpec::star9());
  EXPECT_EQ(star2.size(), 4u);  // radius 2, still no corners
  for (const auto& h : star2) {
    const int axis = h.dir[0] != 0 ? 0 : 1;
    EXPECT_EQ(h.depth[axis], 2);
  }

  const auto box = spec::derive_halos(spec::StencilSpec::box9());
  EXPECT_EQ(box.size(), 8u);  // 4 faces + 4 corners
  int corners = 0;
  for (const auto& h : box) corners += h.order() == 2 ? 1 : 0;
  EXPECT_EQ(corners, 4);

  // Full 3D box: the complete 26-neighborhood.
  EXPECT_EQ(spec::derive_halos(spec::StencilSpec::box27()).size(), 26u);
}

TEST(Spec, StageCountAndGhostDepth) {
  EXPECT_EQ(spec::stage_count(spec::StencilSpec::star5()), 1);
  EXPECT_EQ(spec::stage_count(spec::StencilSpec::box9()), 1);
  EXPECT_EQ(spec::stage_count(spec::StencilSpec::star9()), 2);
  EXPECT_EQ(spec::stage_count(spec::StencilSpec::heat3d()), 1);
  EXPECT_EQ(spec::ca_ghost_depth(spec::StencilSpec::star9(), 3), 6);
  EXPECT_EQ(spec::ca_ghost_depth(spec::StencilSpec::box9(), 3), 3);
}

TEST(Spec, CompiledProgramStructure) {
  const spec::CompiledProgram s9 = spec::compile_spec(
      spec::StencilSpec::star9(), 1);
  EXPECT_EQ(s9.nstages, 2);
  EXPECT_EQ(s9.ncomp, 6);
  EXPECT_EQ(s9.nfield, 1);
  EXPECT_FALSE(s9.diagonal_taps);

  const spec::CompiledProgram b9 = spec::compile_spec(
      spec::StencilSpec::box9(), 1);
  EXPECT_EQ(b9.nstages, 1);
  EXPECT_TRUE(b9.diagonal_taps);

  // 2.5D: z folded into per-cell planes — nz field planes plus one frozen
  // Dirichlet ghost plane per read z direction.
  const spec::CompiledProgram h = spec::compile_spec(
      spec::StencilSpec::heat3d(), 4);
  EXPECT_EQ(h.nstages, 1);
  EXPECT_EQ(h.nfield, 6);

  // The recognized 5-point fast path only fires for the exact star5 layout.
  EXPECT_TRUE(spec::compile_spec(spec::StencilSpec::star5(), 1)
                  .star5.has_value());
  EXPECT_FALSE(b9.star5.has_value());

  EXPECT_GT(s9.flops_per_point(), 0.0);
}

TEST(Spec, SingleStageSpecsMatchDirectBitForBit) {
  // One stage applies the taps in listed order starting from w0*x, exactly
  // like the direct sweep: no reassociation, so identity is exact.
  EXPECT_EQ(staged_vs_direct_maxdiff(spec::StencilSpec::star5(), 1, 6), 0.0);
  EXPECT_EQ(staged_vs_direct_maxdiff(spec::StencilSpec::box9(), 1, 5), 0.0);
  EXPECT_EQ(staged_vs_direct_maxdiff(spec::StencilSpec::advect2d(), 1, 6),
            0.0);
}

TEST(Spec, StagedDecompositionMatchesDirectToRounding) {
  EXPECT_LT(staged_vs_direct_maxdiff(spec::StencilSpec::star9(), 1, 5),
            1e-12);
  EXPECT_LT(staged_vs_direct_maxdiff(spec::StencilSpec::heat3d(), 4, 5),
            1e-12);
  EXPECT_LT(staged_vs_direct_maxdiff(spec::StencilSpec::box27(), 3, 4),
            1e-12);
  for (unsigned long seed = 1; seed <= 8; ++seed) {
    const spec::StencilSpec sp = spec::random_spec(seed);
    EXPECT_LT(staged_vs_direct_maxdiff(sp, sp.rank == 3 ? 3 : 1, 4), 1e-12)
        << "seed " << seed << " spec " << sp.to_literal();
  }
}

TEST(Spec, ToLiteralIsExactAndNamesTheSpec) {
  const spec::StencilSpec sp = spec::random_spec(42);
  const std::string lit = sp.to_literal();
  EXPECT_NE(lit.find(sp.name), std::string::npos);
  // Coefficients print as hexfloats so a pasted literal reproduces the spec
  // bit-for-bit.
  EXPECT_NE(lit.find("0x1."), std::string::npos);
  EXPECT_NE(lit.find('p'), std::string::npos);
}

TEST(Spec, Star5SpecBitIdenticalToLegacySerial) {
  const Problem ps = spec_problem(spec::StencilSpec::star5(), 16, 13, 7, 1, 3);
  Problem pl = ps;
  pl.spec.reset();
  pl.weights = Stencil5::test_weights();
  const std::vector<Grid2D> a = solve_serial_spec(ps);
  const Grid2D b = solve_serial(pl);
  EXPECT_EQ(Grid2D::max_abs_diff(a[0], b), 0.0);
}

TEST(Spec, SolveToToleranceRejectsSpecProblems) {
  const Problem p = spec_problem(spec::StencilSpec::heat3d(), 16, 16, 4, 2);
  DistConfig config;
  config.decomp = {8, 8, 2, 2};
  EXPECT_THROW(solve_to_tolerance(p, config, 1e-6, 4, 4),
               std::invalid_argument);
}

TEST(Spec, RandomSpecsAreAlwaysValid) {
  for (unsigned long seed = 0; seed < 64; ++seed) {
    const spec::StencilSpec sp = spec::random_spec(seed);
    EXPECT_NO_THROW(sp.validate()) << sp.to_literal();
    EXPECT_LE(sp.radius(), spec::kMaxRadius);
    EXPECT_NEAR(sp.coeff_sum(), 0.9, 1e-9);
  }
}

}  // namespace
}  // namespace repro::stencil
