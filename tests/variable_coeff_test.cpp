// Variable-coefficient stencil (paper section III-A: coefficients "may be
// the same across the entire grid or differ at each grid point"): every
// implementation route must agree bit-for-bit on per-point coefficients.
#include <gtest/gtest.h>

#include <cmath>

#include "spmv/csr.hpp"
#include "spmv/petsc_like.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

namespace repro::stencil {
namespace {

TEST(VariableKernel, ConstantPlanesMatchConstantKernelBitForBit) {
  const int tile = 7;
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  const Stencil5 w = Stencil5::test_weights();

  std::vector<double> in(g.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(static_cast<double>(i));
  }
  std::vector<double> coeff(kCoeffPlanes * g.size());
  const double values[5] = {w.center, w.north, w.south, w.west, w.east};
  for (int plane = 0; plane < kCoeffPlanes; ++plane) {
    std::fill_n(coeff.begin() + plane * static_cast<long>(g.size()), g.size(),
                values[plane]);
  }

  std::vector<double> out_const(g.size(), -1.0), out_var(g.size(), -1.0);
  jacobi5(in.data(), out_const.data(), g, w, 0, tile, 0, tile);
  jacobi5_var(in.data(), out_var.data(), g, coeff.data(), 0, tile, 0, tile);
  for (int i = 0; i < tile; ++i) {
    for (int j = 0; j < tile; ++j) {
      EXPECT_EQ(out_var[g.idx(i, j)], out_const[g.idx(i, j)]) << i << "," << j;
    }
  }
}

TEST(VariableKernel, UsesPerPointCoefficients) {
  const TileGeom g{2, 2, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 1.0);
  std::vector<double> coeff(kCoeffPlanes * g.size(), 0.0);
  // Point (0,0): only the center coefficient 2.0; point (1,1): only east 3.0.
  coeff[kCoeffCenter * g.size() + g.idx(0, 0)] = 2.0;
  coeff[kCoeffEast * g.size() + g.idx(1, 1)] = 3.0;
  std::vector<double> out(g.size(), -1.0);
  jacobi5_var(in.data(), out.data(), g, coeff.data(), 0, 2, 0, 2);
  EXPECT_DOUBLE_EQ(out[g.idx(0, 0)], 2.0);
  EXPECT_DOUBLE_EQ(out[g.idx(1, 1)], 3.0);
  EXPECT_DOUBLE_EQ(out[g.idx(0, 1)], 0.0);
}

TEST(VariableSerial, ConstantCoefficientFnMatchesConstantSweep) {
  const Problem base = random_problem(11, 13, 3);
  Problem variable = base;
  const Stencil5 w = base.weights;
  variable.coefficient = [w](long, long) {
    return std::array<double, 5>{w.center, w.north, w.south, w.west, w.east};
  };
  const Grid2D a = solve_serial(base);
  const Grid2D b = solve_serial(variable);
  EXPECT_EQ(Grid2D::max_abs_diff(a, b), 0.0);
}

struct VarCase {
  int n, iters, tile, nodes, steps;
  friend std::ostream& operator<<(std::ostream& os, const VarCase& c) {
    return os << "n" << c.n << "_it" << c.iters << "_t" << c.tile << "_p"
              << c.nodes << "_s" << c.steps;
  }
};

class VariableDist : public ::testing::TestWithParam<VarCase> {};

TEST_P(VariableDist, MatchesSerialBitForBit) {
  const VarCase c = GetParam();
  const Problem problem = random_variable_problem(c.n, c.n, c.iters);
  DistConfig config;
  config.decomp = {c.tile, c.tile, c.nodes, c.nodes};
  config.steps = c.steps;
  config.workers_per_rank = 2;
  const DistResult result = run_distributed(problem, config);
  const Grid2D expected = solve_serial(problem);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VariableDist,
    ::testing::Values(VarCase{16, 5, 4, 1, 1},    // single node, base
                      VarCase{16, 6, 4, 2, 1},    // distributed base
                      VarCase{16, 8, 4, 2, 3},    // CA: redundant band needs
                                                  // ghost-region coefficients
                      VarCase{18, 9, 6, 3, 4},    // CA, all-remote corners
                      VarCase{20, 7, 5, 2, 5}));  // CA s = tile

TEST(VariableSpmv, MatchesSerialBitForBit) {
  const Problem problem = random_variable_problem(14, 14, 6);
  const spmv::SpmvRunResult result = spmv::run_petsc_like(problem, 3);
  const Grid2D expected = solve_serial(problem);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
}

TEST(VariableSpmv, MatrixBuilderValidation) {
  EXPECT_THROW(spmv::build_grid_matrix_variable(4, 4, nullptr),
               std::invalid_argument);
  const Problem problem = random_variable_problem(4, 4, 1);
  const auto m = spmv::build_problem_matrix(problem);
  EXPECT_EQ(m.nnz(), 5 * 16 + (m.nrows - 16));
}

TEST(VariableDistCheck, VariableAndConstantDiffer) {
  // Sanity: the variable path is actually exercised (answers differ from the
  // constant-weight run of the same fields).
  Problem variable = random_variable_problem(12, 12, 4);
  Problem constant = variable;
  constant.coefficient = nullptr;
  const Grid2D a = solve_serial(variable);
  const Grid2D b = solve_serial(constant);
  EXPECT_GT(Grid2D::max_abs_diff(a, b), 0.0);
}

}  // namespace
}  // namespace repro::stencil
