// Distributed-vs-serial equivalence: the load-bearing correctness tests.
//
// Jacobi has no cross-point operation-order freedom, and every
// implementation applies the identical per-point FMA sequence, so the
// distributed results must match the serial reference BIT FOR BIT (EXPECT_EQ
// on doubles, tolerance 0.0).
#include <gtest/gtest.h>

#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

namespace repro::stencil {
namespace {

struct Case {
  int rows, cols, iters;
  int mb, nb;
  int node_rows, node_cols;
  int steps;

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << c.rows << "x" << c.cols << "_it" << c.iters << "_tile" << c.mb
              << "x" << c.nb << "_nodes" << c.node_rows << "x" << c.node_cols
              << "_s" << c.steps;
  }
};

class DistEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(DistEquivalence, MatchesSerialBitForBit) {
  const Case c = GetParam();
  const Problem problem = random_problem(c.rows, c.cols, c.iters);

  DistConfig config;
  config.decomp = {c.mb, c.nb, c.node_rows, c.node_cols};
  config.steps = c.steps;
  config.workers_per_rank = 2;

  const DistResult result = run_distributed(problem, config);
  const Grid2D expected = solve_serial(problem);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);

  // CA never computes less than the nominal work.
  EXPECT_GE(result.computed_points, result.nominal_points);
  if (c.steps == 1) {
    EXPECT_EQ(result.computed_points, result.nominal_points);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BaseVersion, DistEquivalence,
    ::testing::Values(
        // Single node, single tile: pure kernel path.
        Case{12, 12, 4, 12, 12, 1, 1, 1},
        // Single node, many tiles: local-line exchange only.
        Case{16, 16, 5, 4, 4, 1, 1, 1},
        // 2x2 nodes: remote band path.
        Case{16, 16, 6, 4, 4, 2, 2, 1},
        // Non-square everything + remainder tiles.
        Case{19, 23, 7, 5, 4, 2, 3, 1},
        // One tile per node: every side remote.
        Case{12, 12, 5, 4, 4, 3, 3, 1},
        // Tall node grid.
        Case{24, 8, 6, 4, 4, 4, 1, 1}));

INSTANTIATE_TEST_SUITE_P(
    CommunicationAvoiding, DistEquivalence,
    ::testing::Values(
        // s=2, multiple supersteps, 2x2 nodes.
        Case{16, 16, 8, 4, 4, 2, 2, 2},
        // s=3 with iterations not a multiple of s (ragged last superstep).
        Case{18, 18, 8, 6, 6, 3, 3, 3},
        // s equal to tile size (maximum legal step).
        Case{16, 16, 9, 4, 4, 2, 2, 4},
        // Remainder tiles with CA; steps bounded by smallest tile (19%5=4).
        Case{19, 19, 9, 5, 5, 2, 2, 4},
        // One tile per node: every side remote, all four corners exercised.
        Case{18, 18, 13, 6, 6, 3, 3, 3},
        // Large step count relative to iterations (single superstep).
        Case{20, 20, 4, 10, 10, 2, 2, 5},
        // Many supersteps on a wider machine.
        Case{24, 24, 12, 4, 4, 3, 3, 2},
        // Asymmetric node grid: rows remote, cols local and vice versa.
        Case{24, 24, 10, 4, 8, 3, 1, 3},
        Case{24, 24, 10, 8, 4, 1, 3, 3}));

TEST_P(DistEquivalence, PersistentChannelMatchesSerialBitForBit) {
  // Same sweep over persistent halo channels: pre-registered route buffers,
  // partitioned fragment sends, zero-copy delivery — results must stay
  // bit-identical to the serial reference in every decomposition.
  const Case c = GetParam();
  const Problem problem = random_problem(c.rows, c.cols, c.iters);

  DistConfig config;
  config.decomp = {c.mb, c.nb, c.node_rows, c.node_cols};
  config.steps = c.steps;
  config.workers_per_rank = 2;
  config.persistent = true;

  const DistResult result = run_distributed(problem, config);
  const Grid2D expected = solve_serial(problem);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
}

TEST(DistStencil, PersistentSteadyStateAllocatesNothing) {
  // Many supersteps on 3x3 nodes: after the warmup pool is primed, every
  // halo publish must reuse a registered slot (the tentpole acceptance
  // criterion: net_persistent_steady_allocs_total == 0), and every delivery
  // must be zero-copy (no assembly copies on a FIFO in-order stack).
  const Problem problem = random_problem(24, 24, 12);
  DistConfig config;
  config.decomp = {4, 4, 3, 3};
  config.steps = 2;
  config.workers_per_rank = 2;
  config.persistent = true;
  config.metrics = std::make_shared<obs::MetricsRegistry>();

  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(solve_serial(problem), result.grid), 0.0);

  if constexpr (obs::kEnabled) {
    auto& registry = *result.metrics;
    EXPECT_GT(registry.counter("net_persistent_routes_total")->value(), 0u);
    EXPECT_GT(registry.counter("net_persistent_fragments_total")->value(), 0u);
    EXPECT_GT(registry.counter("net_persistent_deliveries_total")->value(),
              0u);
    EXPECT_GT(registry.counter("net_persistent_buffer_allocs_total")->value(),
              0u);
    EXPECT_EQ(registry.counter("net_persistent_steady_allocs_total")->value(),
              0u);
    EXPECT_EQ(
        registry.counter("net_persistent_assembly_copies_total")->value(),
        0u);
  }
}

TEST(DistStencil, PersistentMatchesDefaultTraffic) {
  // The persistent wire carries the same payload doubles per superstep as
  // the default path (same bands, same corners) — only framing differs:
  // messages = default messages (one FRAG per band/corner at nfield=1)
  // plus one OPEN and one ACK per directed neighbor pair.
  const Problem problem = random_problem(16, 16, 9);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 3;
  DistConfig pconfig = config;
  pconfig.persistent = true;

  const DistResult def = run_distributed(problem, config);
  const DistResult per = run_distributed(problem, pconfig);
  EXPECT_EQ(Grid2D::max_abs_diff(def.grid, per.grid), 0.0);
  // 2x2 node grid, 4 tiles per cut side: 8 directed band pairs + 12
  // directed corner pairs with traffic = 20 handshake pairs... counted
  // simply: persistent adds exactly 2 messages per directed (src,dst) node
  // pair that carries at least one route. On this layout every ordered node
  // pair exchanges something except the two diagonal-only... all 12 ordered
  // pairs carry routes (bands across cuts, corners across diagonals).
  EXPECT_GT(per.stats.messages, def.stats.messages);
  EXPECT_LE(per.stats.messages, def.stats.messages + 2 * 12);
}

TEST(DistStencil, CaStepOneIsExactlyBase) {
  // steps=1 must produce identical traffic *and* results to the base path
  // (they are the same graph by construction).
  const Problem problem = random_problem(16, 16, 6);
  DistConfig base;
  base.decomp = {4, 4, 2, 2};
  base.steps = 1;
  const DistResult a = run_distributed(problem, base);
  const DistResult b = run_distributed(problem, base);
  EXPECT_EQ(Grid2D::max_abs_diff(a.grid, b.grid), 0.0);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
}

TEST(DistStencil, CaSendsFewerButBiggerMessages) {
  const Problem problem = random_problem(24, 24, 12);
  DistConfig base;
  base.decomp = {4, 4, 2, 2};
  base.steps = 1;
  DistConfig ca = base;
  ca.steps = 4;

  const DistResult rb = run_distributed(problem, base);
  const DistResult rc = run_distributed(problem, ca);

  EXPECT_EQ(Grid2D::max_abs_diff(rb.grid, rc.grid), 0.0);
  // s=4 over 12 iterations: band exchanges at k=1,5,9 instead of every k.
  EXPECT_LT(rc.stats.messages, rb.stats.messages);
  // Each CA band message carries ~s times the payload.
  const double avg_base = static_cast<double>(rb.stats.bytes) /
                          static_cast<double>(rb.stats.messages);
  const double avg_ca = static_cast<double>(rc.stats.bytes) /
                        static_cast<double>(rc.stats.messages);
  EXPECT_GT(avg_ca, 2.0 * avg_base);
  // And CA does measurably more compute (redundancy > 0).
  EXPECT_GT(rc.redundancy(), 0.0);
  EXPECT_DOUBLE_EQ(rb.redundancy(), 0.0);
}

TEST(DistStencil, BaseMessageCountMatchesAnalyticFormula) {
  // 2x2 nodes, each node a 2x2 block of tiles, 16x16 grid, tiles 4x4.
  // Remote edges: the vertical node cut crosses 4 tile rows, the horizontal
  // cut 4 tile cols -> 8 directed tile pairs -> 16 band messages per
  // exchanged iteration. INIT (k=0) packs for k=1, ..., up to k=iters-1
  // packing for k=iters: iters exchange rounds in total.
  const int iters = 5;
  const Problem problem = random_problem(16, 16, iters);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 1;
  const DistResult r = run_distributed(problem, config);
  EXPECT_EQ(r.stats.messages, static_cast<std::uint64_t>(16 * iters));
}

TEST(DistStencil, CaMessageCountMatchesAnalyticFormula) {
  // Same layout, s=3, iters=9: superstep starts at k=1,4,7 -> 3 rounds.
  // Per round: 16 band messages + corner blocks. Corners: each of the 4
  // tiles at the node-grid cross consumes 1 diagonal corner (its node-corner
  // side), and each boundary tile adjacent to the cross with one remote side
  // consumes a strip corner. Count by consumers: tile (1,1) of node (0,0)
  // needs SE corner; tiles (1,0),(0,1)... Full count below: 4 corner-corner
  // + 8 mixed = 12 corner messages per round.
  const int iters = 9;
  const Problem problem = random_problem(16, 16, iters);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 3;
  const DistResult r = run_distributed(problem, config);
  // Bands: 16 per round. Corners per round: consumers with a remote diagonal
  // and >=1 adjacent remote side. Node cut at tile index 2 (tiles 0,1 | 2,3):
  //   * tiles (1,1),(1,2),(2,1),(2,2): diagonal across the cross: 4 blocks
  //   * tiles (1,0),(2,0),(1,3),(2,3): E/W local, N/S remote: NE/SE/NW/SW
  //     strips across the horizontal cut: each consumes 1 -> 4... plus
  //   * tiles (0,1),(0,2),(3,1),(3,2): same across the vertical cut -> 4.
  //   * the four cross tiles each ALSO consume a second strip along their
  //     remote-but-straight diagonal: e.g. (1,1) needs NE? No: (1,1)'s NE
  //     diagonal (0,2) is remote (different node column) and its E side is
  //     remote -> yes, consumed. Each cross tile consumes 3 corners total
  //     (SE-type block + 2 strips).
  // Total corner messages per round = 4*3 + 8 = 20.
  const std::uint64_t rounds = 3;
  EXPECT_EQ(r.stats.messages, rounds * (16 + 20));
}

TEST(DistStencil, TraceLabelsBoundaryVsInteriorTiles) {
  const Problem problem = random_problem(16, 16, 3);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 1;
  config.trace = true;
  const DistResult r = run_distributed(problem, config);
#ifdef REPRO_OBS_DISABLE
  EXPECT_TRUE(r.trace_events.empty());
  GTEST_SKIP() << "tracing is compiled out";
#else
  std::size_t boundary = 0, interior = 0, init = 0;
  for (const auto& e : r.trace_events) {
    if (e.klass == "boundary") ++boundary;
    else if (e.klass == "interior") ++interior;
    else if (e.klass == "init") ++init;
  }
  EXPECT_EQ(init, 16u);
  // 12 of 16 tiles touch a node boundary (all but one corner tile per node).
  EXPECT_EQ(boundary, 12u * 3);
  EXPECT_EQ(interior, 4u * 3);
#endif
}

TEST(DistStencil, KernelRatioReducesComputedPoints) {
  const Problem problem = random_problem(32, 32, 4);
  DistConfig full;
  full.decomp = {8, 8, 2, 2};
  full.steps = 1;
  DistConfig quarter = full;
  quarter.kernel_ratio = 0.5;

  const DistResult rf = run_distributed(problem, full);
  const DistResult rq = run_distributed(problem, quarter);
  // ratio=0.5 updates a quarter of each tile.
  EXPECT_EQ(rq.computed_points * 4, rf.computed_points);
  EXPECT_EQ(rq.nominal_points * 4, rf.nominal_points);
}

TEST(DistStencil, ValidatesConfiguration) {
  const Problem problem = random_problem(16, 16, 2);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 0;
  EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
  config.steps = 5;  // > tile extent 4
  EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
  config.steps = 2;
  config.kernel_ratio = 0.0;
  EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
  config.kernel_ratio = 1.5;
  EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
}

TEST(DistStencil, ZeroIterationsGathersInitialField) {
  const Problem problem = random_problem(12, 12, 0);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  const DistResult r = run_distributed(problem, config);
  for (int i = 0; i < problem.rows; ++i) {
    for (int j = 0; j < problem.cols; ++j) {
      EXPECT_DOUBLE_EQ(r.grid.at(i, j), problem.initial(i, j));
    }
  }
  EXPECT_EQ(r.stats.messages, 0u);
}

TEST(DistStencil, LaplaceProblemAcrossVariantsAgrees) {
  const Problem problem = laplace_problem(24, 20);
  const Grid2D serial = solve_serial(problem);
  for (int steps : {1, 2, 4}) {
    DistConfig config;
    config.decomp = {6, 6, 2, 2};
    config.steps = steps;
    const DistResult r = run_distributed(problem, config);
    EXPECT_EQ(Grid2D::max_abs_diff(serial, r.grid), 0.0) << "steps=" << steps;
  }
}

}  // namespace
}  // namespace repro::stencil
