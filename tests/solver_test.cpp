#include <gtest/gtest.h>

#include "stencil/serial.hpp"
#include "stencil/solver.hpp"

namespace repro::stencil {
namespace {

DistConfig small_config(int steps = 2) {
  DistConfig config;
  config.decomp = {8, 8, 2, 2};
  config.steps = steps;
  config.workers_per_rank = 2;
  return config;
}

TEST(Solver, WarmStartedRoundsEqualOneLongRun) {
  // k rounds of m sweeps must equal one run of k*m sweeps bit for bit —
  // warm starting is exact continuation.
  Problem problem = laplace_problem(32, 0);
  const DistConfig config = small_config();

  problem.iterations = 60;
  const Grid2D reference = solve_serial(problem);

  const IterativeSolveResult result =
      solve_to_tolerance(problem, config, /*tolerance=*/1e-300,
                         /*round_iterations=*/20, /*max_rounds=*/3);
  EXPECT_EQ(result.iterations, 60);
  EXPECT_FALSE(result.converged);  // impossible tolerance
  EXPECT_EQ(Grid2D::max_abs_diff(reference, result.grid), 0.0);
}

TEST(Solver, ConvergesOnLaplaceAndStopsEarly) {
  const Problem problem = laplace_problem(16, 0);
  const IterativeSolveResult result =
      solve_to_tolerance(problem, small_config(), /*tolerance=*/1e-6,
                         /*round_iterations=*/50, /*max_rounds=*/200);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.last_delta, 1e-6);
  EXPECT_LT(result.iterations, 200 * 50);  // stopped before the cap
  EXPECT_GT(result.iterations, 50);        // but needed more than one round
  // Converged field must be close to the discrete harmonic solution:
  // interior values bounded by boundary extremes.
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      EXPECT_GE(result.grid.at(i, j), 0.0);
      EXPECT_LE(result.grid.at(i, j), 1.0);
    }
  }
  EXPECT_GT(result.messages, 0u);
}

TEST(Solver, CaAndBaseConvergeToTheSameField) {
  const Problem problem = laplace_problem(24, 0);
  const auto base = solve_to_tolerance(problem, small_config(1), 1e-8, 40);
  const auto ca = solve_to_tolerance(problem, small_config(4), 1e-8, 40);
  ASSERT_TRUE(base.converged);
  ASSERT_TRUE(ca.converged);
  // Same rounds structure -> identical sweep counts -> identical fields.
  EXPECT_EQ(base.iterations, ca.iterations);
  EXPECT_EQ(Grid2D::max_abs_diff(base.grid, ca.grid), 0.0);
  EXPECT_LT(ca.messages, base.messages);
}

TEST(Solver, ValidatesArguments) {
  const Problem problem = laplace_problem(16, 0);
  EXPECT_THROW(solve_to_tolerance(problem, small_config(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(solve_to_tolerance(problem, small_config(), 1e-6, 0),
               std::invalid_argument);
  EXPECT_THROW(solve_to_tolerance(problem, small_config(), 1e-6, 10, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::stencil
