// End-to-end tests for the solver farm: multi-tenant batches against the
// serial reference, seeded superstep preemption with bit-identical resume,
// deterministic rejection, and graceful shutdown in both drain modes.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <future>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/serve_report.hpp"
#include "serve/solver_farm.hpp"
#include "stencil/serial.hpp"

namespace repro::serve {
namespace {

using stencil::Grid2D;

FarmConfig small_farm_config() {
  FarmConfig config;
  config.node_rows = 2;
  config.node_cols = 2;
  config.workers_per_rank = 2;
  return config;
}

SolveRequest make_request(const std::string& tenant, int rows, int cols,
                          int iters, int mb, int nb, int steps,
                          unsigned long seed) {
  SolveRequest request;
  request.tenant = tenant;
  request.problem = stencil::random_problem(rows, cols, iters, seed);
  request.mb = mb;
  request.nb = nb;
  request.steps = steps;
  return request;
}

TEST(SolverFarm, ConcurrentTenantsBatchedJobsMatchSerial) {
  SolverFarm farm(small_farm_config());

  struct Spec {
    SolveRequest request;
    Grid2D expected;
  };
  std::vector<Spec> specs;
  const int sizes[3][2] = {{16, 20}, {24, 16}, {20, 20}};
  for (int t = 0; t < 3; ++t) {
    for (int j = 0; j < 2; ++j) {
      SolveRequest request = make_request(
          "tenant-" + std::to_string(t), sizes[t][0], sizes[t][1],
          /*iters=*/4, sizes[t][0] / 2, sizes[t][1] / 2,
          /*steps=*/j == 0 ? 1 : 2, /*seed=*/100 + 10 * t + j);
      Grid2D expected = stencil::solve_serial(request.problem);
      specs.push_back(Spec{std::move(request), std::move(expected)});
    }
  }

  // One client thread per tenant, submitting concurrently.
  std::vector<std::future<SolveResponse>> futures(specs.size());
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      for (int j = 0; j < 2; ++j) {
        const std::size_t i = static_cast<std::size_t>(t) * 2 + j;
        auto submission = farm.submit(specs[i].request);
        ASSERT_TRUE(submission.accepted())
            << reject_reason_name(submission.rejected);
        futures[i] = std::move(submission.response);
      }
    });
  }
  for (auto& c : clients) c.join();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    SolveResponse response = futures[i].get();
    ASSERT_EQ(response.status, JobStatus::Completed) << response.error;
    EXPECT_EQ(Grid2D::max_abs_diff(response.grid, specs[i].expected), 0.0)
        << "job " << i;
    EXPECT_EQ(response.iterations_done, 4);
  }

  const auto stats = farm.tenant_stats();
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.rejected, 0u);
    // Both of a tenant's jobs share one size, so goodput is exactly 2x cost.
    const std::size_t t =
        static_cast<std::size_t>(s.tenant.back() - '0');
    ASSERT_LT(t, 3u);
    EXPECT_EQ(s.goodput_points, 2 * request_cost(specs[t * 2].request))
        << s.tenant;
  }
}

TEST(SolverFarm, PersistentFarmMatchesSerialAndNegotiatesRoutes) {
  // A farm with persistent halo channels: every wave's channel is built by
  // persistent_channel_factory and every subgraph annotates its remote flows,
  // so batched jobs ride registered route buffers yet stay bit-identical.
  FarmConfig config = small_farm_config();
  config.persistent = true;
  config.metrics = std::make_shared<obs::MetricsRegistry>();
  SolverFarm farm(config);

  std::vector<SolveRequest> requests;
  std::vector<Grid2D> expected;
  std::vector<std::future<SolveResponse>> futures;
  for (int j = 0; j < 4; ++j) {
    SolveRequest request =
        make_request("tenant-" + std::to_string(j % 2), 24, 20, /*iters=*/4,
                     /*mb=*/12, /*nb=*/10, /*steps=*/j % 2 == 0 ? 1 : 2,
                     /*seed=*/300 + j);
    expected.push_back(stencil::solve_serial(request.problem));
    auto submission = farm.submit(request);
    ASSERT_TRUE(submission.accepted())
        << reject_reason_name(submission.rejected);
    futures.push_back(std::move(submission.response));
    requests.push_back(std::move(request));
  }

  for (std::size_t i = 0; i < futures.size(); ++i) {
    SolveResponse response = futures[i].get();
    ASSERT_EQ(response.status, JobStatus::Completed) << response.error;
    EXPECT_EQ(Grid2D::max_abs_diff(response.grid, expected[i]), 0.0)
        << "job " << i;
  }

  if constexpr (obs::kEnabled) {
    // The resident runtime's channels actually negotiated and used routes.
    const auto routes =
        config.metrics->counter("net_persistent_routes_total", {});
    const auto fragments =
        config.metrics->counter("net_persistent_fragments_total", {});
    EXPECT_GT(routes->value(), 0.0);
    EXPECT_GT(fragments->value(), 0.0);
  }
}

/// Shared state for tests that preempt from the superstep observer.
struct PreemptDriver {
  std::atomic<SolverFarm*> farm{nullptr};
  std::mutex mutex;
  std::set<int> target_supersteps;

  void maybe_preempt(std::uint64_t job_id, int superstep) {
    SolverFarm* f = farm.load();
    if (f == nullptr) return;
    bool fire = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      fire = target_supersteps.erase(superstep) > 0;
    }
    if (fire) f->preempt(job_id);
  }
};

TEST(SolverFarm, PreemptedCaSolveResumesBitIdentical) {
  for (const unsigned long seed : {1ul, 2ul, 3ul}) {
    auto driver = std::make_shared<PreemptDriver>();
    FarmConfig config = small_farm_config();
    config.preempt_cost_threshold = 1000;  // 40*40*24 >> 1000: windowed
    config.checkpoint_supersteps = 2;      // window = 8 iterations at s=4
    config.superstep_observer = [driver](std::uint64_t job_id, int k) {
      driver->maybe_preempt(job_id, k);
    };
    SolverFarm farm(config);
    driver->farm.store(&farm);

    SolveRequest request =
        make_request("big", 40, 40, /*iters=*/24, 10, 10, /*steps=*/4, seed);
    const Grid2D expected = stencil::solve_serial(request.problem);
    {
      // Seeded preemption points: two distinct superstep boundaries.
      std::lock_guard<std::mutex> lock(driver->mutex);
      driver->target_supersteps = {
          static_cast<int>(4 * (1 + seed % 3)),        // 4, 8, or 12
          static_cast<int>(4 * (4 + seed % 2)),        // 16 or 20
      };
    }

    auto submission = farm.submit(request);
    ASSERT_TRUE(submission.accepted());
    SolveResponse response = submission.response.get();
    ASSERT_EQ(response.status, JobStatus::Completed) << response.error;
    EXPECT_GE(response.preemptions, 1) << "seed " << seed;
    EXPECT_GE(response.windows, 3) << "seed " << seed;
    EXPECT_EQ(response.iterations_done, 24);
    // The acceptance bar: preempted + resumed == never interrupted, bitwise.
    EXPECT_EQ(Grid2D::max_abs_diff(response.grid, expected), 0.0)
        << "seed " << seed;
    driver->farm.store(nullptr);
  }
}

TEST(SolverFarm, FusedJobsRunSoloAndStayBitIdentical) {
  // Fused-wavefront jobs dispatch alone — the farm must never batch them
  // into a shared graph, because rt::fuse_supersteps rewrites every fusable
  // chain of the wave it runs. Mixed with batchable plain jobs, every
  // result must still match serial bit for bit (24x20 over 12x10 tiles:
  // min tile extent 10, so windows up to 10 are legal).
  SolverFarm farm(small_farm_config());

  std::vector<Grid2D> expected;
  std::vector<std::future<SolveResponse>> futures;
  for (int j = 0; j < 2; ++j) {
    SolveRequest plain =
        make_request("plain", 24, 20, /*iters=*/6, 12, 10, 1, 400 + j);
    expected.push_back(stencil::solve_serial(plain.problem));
    auto submission = farm.submit(plain);
    ASSERT_TRUE(submission.accepted());
    futures.push_back(std::move(submission.response));
  }
  for (int j = 0; j < 2; ++j) {
    SolveRequest fused = make_request("fused", 24, 20, /*iters=*/6, 12, 10,
                                      /*steps=*/j == 0 ? 1 : 2, 410 + j);
    fused.fuse_depth = j == 0 ? 3 : 2;  // W = 3 (ragged) and W = 4
    expected.push_back(stencil::solve_serial(fused.problem));
    auto submission = farm.submit(fused);
    ASSERT_TRUE(submission.accepted())
        << reject_reason_name(submission.rejected);
    futures.push_back(std::move(submission.response));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    SolveResponse response = futures[i].get();
    ASSERT_EQ(response.status, JobStatus::Completed) << response.error;
    EXPECT_EQ(Grid2D::max_abs_diff(response.grid, expected[i]), 0.0)
        << "job " << i;
  }
}

TEST(SolverFarm, WindowedFusedJobResumesAcrossCheckpoints) {
  // A large fused job runs in checkpoint windows: each window's subgraph is
  // rewritten (one fused wavefront per tile per window) while the
  // checkpoint cadence stays at the ORIGINAL steps granularity, so the
  // windowed composition is exactly resumable.
  FarmConfig config = small_farm_config();
  config.preempt_cost_threshold = 1000;  // 40*40*24 >> 1000: windowed
  config.checkpoint_supersteps = 2;      // window = 4 iterations at s=2
  SolverFarm farm(config);

  SolveRequest request =
      make_request("big", 40, 40, /*iters=*/24, 10, 10, /*steps=*/2, 7);
  request.fuse_depth = 2;  // fused window W = 4 per dispatch window
  const Grid2D expected = stencil::solve_serial(request.problem);
  auto submission = farm.submit(request);
  ASSERT_TRUE(submission.accepted());
  SolveResponse response = submission.response.get();
  ASSERT_EQ(response.status, JobStatus::Completed) << response.error;
  EXPECT_GE(response.windows, 6);
  EXPECT_EQ(response.iterations_done, 24);
  EXPECT_EQ(Grid2D::max_abs_diff(response.grid, expected), 0.0);
}

TEST(SolverFarm, TenantLimitRejectsDeterministically) {
  FarmConfig config = small_farm_config();
  config.admission.max_tenants = 2;
  SolverFarm farm(config);
  auto a = farm.submit(make_request("a", 16, 16, 2, 8, 8, 1, 1));
  auto b = farm.submit(make_request("b", 16, 16, 2, 8, 8, 1, 2));
  auto c = farm.submit(make_request("c", 16, 16, 2, 8, 8, 1, 3));
  EXPECT_TRUE(a.accepted());
  EXPECT_TRUE(b.accepted());
  EXPECT_EQ(c.rejected, RejectReason::TenantLimit);
  EXPECT_EQ(a.response.get().status, JobStatus::Completed);
  EXPECT_EQ(b.response.get().status, JobStatus::Completed);
}

TEST(SolverFarm, MalformedRequestsAreBadRequests) {
  SolverFarm farm(small_farm_config());
  // steps too deep for the tiles: radius * steps > min tile extent.
  auto deep = farm.submit(make_request("a", 16, 16, 4, 8, 8, /*steps=*/9, 1));
  EXPECT_EQ(deep.rejected, RejectReason::BadRequest);
  // Fused window too deep: steps fits, steps * fuse_depth does not.
  SolveRequest wide = make_request("a", 16, 16, 4, 8, 8, /*steps=*/4, 1);
  wide.fuse_depth = 3;  // window 12 > min tile extent 8
  EXPECT_EQ(farm.submit(wide).rejected, RejectReason::BadRequest);
  SolveRequest zero = make_request("a", 16, 16, 4, 8, 8, 1, 1);
  zero.fuse_depth = 0;
  EXPECT_EQ(farm.submit(zero).rejected, RejectReason::BadRequest);
  // No iterations.
  auto empty = farm.submit(make_request("a", 16, 16, 0, 8, 8, 1, 1));
  EXPECT_EQ(empty.rejected, RejectReason::BadRequest);
  // Tiles don't cover the node grid.
  auto thin = farm.submit(make_request("a", 4, 4, 2, 4, 4, 1, 1));
  EXPECT_EQ(thin.rejected, RejectReason::BadRequest);
}

TEST(SolverFarm, ShutdownDrainFinishesQueuedJobsThenRejects) {
  SolverFarm farm(small_farm_config());
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    auto submission =
        farm.submit(make_request("t" + std::to_string(i % 2), 16, 16, 3, 8, 8,
                                 1, 50 + static_cast<unsigned long>(i)));
    ASSERT_TRUE(submission.accepted());
    futures.push_back(std::move(submission.response));
  }
  farm.shutdown(/*drain=*/true);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::Completed);
  }
  auto late = farm.submit(make_request("t0", 16, 16, 3, 8, 8, 1, 99));
  EXPECT_EQ(late.rejected, RejectReason::ShuttingDown);
}

TEST(SolverFarm, ShutdownWithoutDrainCancelsWithCheckpointedProgress) {
  auto driver = std::make_shared<PreemptDriver>();
  std::atomic<bool> fired{false};
  FarmConfig config = small_farm_config();
  config.preempt_cost_threshold = 1000;
  config.checkpoint_supersteps = 1;  // window = 4 iterations at s=4
  config.superstep_observer = [&fired, driver](std::uint64_t, int k) {
    // Superstep 8 first appears in the SECOND window (base 4, k 4), so
    // window one has completed and checkpointed by the time this fires.
    if (k >= 8 && !fired.exchange(true)) {
      if (SolverFarm* f = driver->farm.load()) f->shutdown(/*drain=*/false);
    }
  };
  SolverFarm farm(config);
  driver->farm.store(&farm);

  SolveRequest request =
      make_request("big", 40, 40, /*iters=*/200, 10, 10, /*steps=*/4, 7);
  auto submission = farm.submit(request);
  ASSERT_TRUE(submission.accepted());
  SolveResponse response = submission.response.get();
  EXPECT_EQ(response.status, JobStatus::Cancelled);
  ASSERT_GT(response.iterations_done, 0);
  ASSERT_LT(response.iterations_done, 200);
  // The handed-back progress is the consistent state at `iterations_done` —
  // bit-identical to a serial solve stopped there.
  stencil::Problem partial = request.problem;
  partial.iterations = response.iterations_done;
  const Grid2D expected = stencil::solve_serial(partial);
  EXPECT_EQ(Grid2D::max_abs_diff(response.grid, expected), 0.0);
  driver->farm.store(nullptr);
}

TEST(SolverFarm, ServesMetricsAndValidReport) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  FarmConfig config = small_farm_config();
  config.metrics = registry;
  SolverFarm farm(config);
  SolveRequest request = make_request("alpha", 16, 16, 3, 8, 8, 1, 11);
  request.deadline_s = 300.0;  // generous: must be met
  auto submission = farm.submit(request);
  ASSERT_TRUE(submission.accepted());
  const SolveResponse response = submission.response.get();
  ASSERT_EQ(response.status, JobStatus::Completed);
  EXPECT_TRUE(response.deadline_met);

  if (obs::kEnabled) {
    const auto snapshot = registry->snapshot();
    const auto* jobs = snapshot.find_counter(
        "serve_jobs_total", {{"tenant", "alpha"}, {"status", "completed"}});
    ASSERT_NE(jobs, nullptr);
    EXPECT_EQ(jobs->value, 1u);
    // The runtime stamped the tenant's accounting lane on every task.
    EXPECT_NE(snapshot.find_counter("rt_lane_tasks_executed_total",
                                    {{"lane", "0"}}),
              nullptr);
  }

  ServeReport report("serve_e2e_test");
  report.set_param("nodes", farm.nodes());
  for (const auto& s : farm.tenant_stats()) {
    obs::Json row = obs::Json::object();
    row["tenant"] = s.tenant;
    row["submitted"] = static_cast<long long>(s.submitted);
    row["completed"] = static_cast<long long>(s.completed);
    report.add_tenant(std::move(row));
  }
  report.set_total("jobs", 1);
  report.add_metrics(*registry);
  std::string error;
  EXPECT_TRUE(validate_serve_report(report.to_string(), &error)) << error;
}

TEST(SolverFarm, TelemetryWavesStayContinuousAcrossSharedCollectorFarms) {
  const std::string dump = testing::TempDir() + "/serve_telemetry.json";
  std::shared_ptr<obs::TelemetryCollector> collector;
  std::uint64_t first_waves = 0;
  std::vector<obs::TelemetrySnapshot> after_first;
  {
    FarmConfig config = small_farm_config();
    config.telemetry = true;
    config.telemetry_dump = dump;
    // Halo-share trips on wall-clock idle, which an oversubscribed CI host
    // can legitimately produce; keep only the deterministic straggler check.
    config.telemetry_detectors.halo_share = 0.0;
    SolverFarm farm(config);
    auto a = farm.submit(make_request("alpha", 16, 16, 4, 8, 8, 2, 7));
    auto b = farm.submit(make_request("beta", 16, 16, 4, 8, 8, 2, 8));
    ASSERT_TRUE(a.accepted());
    ASSERT_TRUE(b.accepted());
    a.response.wait();
    b.response.wait();
    farm.shutdown(/*drain=*/true);
    collector = farm.telemetry();
    ASSERT_NE(collector, nullptr);
    // Futures resolve before the wave's telemetry sample lands, so only the
    // destructor (which joins the dispatcher) makes the stream complete —
    // read the collector after this scope closes.
  }
  ASSERT_GT(collector->deltas_total(), 0u);
  ASSERT_EQ(collector->deltas_total() % 4u, 0u)
      << "one snapshot per rank per dispatched wave";
  first_waves = collector->deltas_total() / 4u;
  after_first = collector->latest();
  for (const obs::TelemetrySnapshot& s : after_first) {
    EXPECT_EQ(s.superstep, first_waves - 1);
  }

  // A second farm sharing the collector resumes the wave odometer and keeps
  // the per-rank counters monotonic instead of restarting both at zero.
  {
    FarmConfig config = small_farm_config();
    config.telemetry_collector = collector;
    config.telemetry = true;
    SolverFarm farm(config);
    auto c = farm.submit(make_request("gamma", 16, 16, 4, 8, 8, 2, 9));
    ASSERT_TRUE(c.accepted());
    c.response.wait();
    farm.shutdown(/*drain=*/true);
  }
  const std::vector<obs::TelemetrySnapshot> after_second =
      collector->latest();
  ASSERT_EQ(after_second.size(), after_first.size());
  for (std::size_t r = 0; r < after_second.size(); ++r) {
    EXPECT_GT(after_second[r].superstep, after_first[r].superstep);
    EXPECT_GE(after_second[r].tasks_executed, after_first[r].tasks_executed);
    // A counter-reset bug would surface as a uint64 underflow here: the
    // second farm's totals would dwarf any plausible task count.
    EXPECT_LT(after_second[r].tasks_executed, 1u << 20);
  }
  EXPECT_TRUE(collector->events().empty())
      << "spurious detector event: " << collector->events()[0].detector;

  // The dump written by the first farm is a valid repro.telemetry/v1 doc.
  std::ifstream in(dump);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::Json doc;
  std::string error;
  ASSERT_TRUE(obs::Json::parse(buffer.str(), &doc, &error)) << error;
  EXPECT_TRUE(obs::validate_telemetry(doc, &error)) << error;
}

}  // namespace
}  // namespace repro::serve
