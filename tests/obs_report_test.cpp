// Json round-trip/parser tests and RunReport schema tests, including a
// report generated from a real (tiny) distributed CA run and validated the
// same way CI validates benchmark reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/problem.hpp"

namespace repro::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Json, ScalarRoundTrip) {
  Json doc = Json::object();
  doc["int"] = Json(std::int64_t{1} << 53);
  doc["neg"] = Json(-42);
  doc["pi"] = Json(3.25);
  doc["flag"] = Json(true);
  doc["nothing"] = Json(nullptr);
  doc["text"] = Json("hello \"quoted\" \\ \n\t\x01 world");

  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::parse(doc.dump(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.find("int")->as_int(), std::int64_t{1} << 53);
  EXPECT_EQ(parsed.find("neg")->as_int(), -42);
  EXPECT_DOUBLE_EQ(parsed.find("pi")->as_number(), 3.25);
  EXPECT_TRUE(parsed.find("flag")->as_bool());
  EXPECT_TRUE(parsed.find("nothing")->is_null());
  EXPECT_EQ(parsed.find("text")->as_string(),
            "hello \"quoted\" \\ \n\t\x01 world");
}

TEST(Json, NestedStructuresAndOrder) {
  Json doc = Json::object();
  doc["z"] = Json(1);
  doc["a"] = Json(2);
  Json arr = Json::array();
  arr.push_back(Json(1));
  Json inner = Json::object();
  inner["k"] = Json("v");
  arr.push_back(std::move(inner));
  doc["list"] = std::move(arr);

  // Insertion order is preserved (diffable reports).
  const std::string text = doc.dump();
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));

  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::parse(doc.dump(2), &parsed, &error)) << error;
  ASSERT_NE(parsed.find("list"), nullptr);
  ASSERT_EQ(parsed.find("list")->size(), 2u);
  EXPECT_EQ(parsed.find("list")->as_array()[1].find("k")->as_string(), "v");
}

TEST(Json, UnicodeEscapes) {
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::parse(R"("\u0041\u00e9\u4e2d\ud83d\ude00")", &parsed,
                          &error))
      << error;
  EXPECT_EQ(parsed.as_string(), "A\xC3\xA9\xE4\xB8\xAD\xF0\x9F\x98\x80");
}

TEST(Json, NonFiniteSerializesAsNull) {
  Json doc = Json::object();
  doc["inf"] = Json(1.0 / 0.0);
  doc["nan"] = Json(0.0 / 0.0);
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(text.find("\"nan\":null"), std::string::npos);
}

TEST(Json, ParseErrors) {
  const char* bad[] = {
      "",           "{",        "[1,]",         "{\"a\":}",
      "tru",        "01",       "1.2.3",        "\"unterminated",
      "\"\\q\"",    "{\"a\" 1}", "[1] trailing", "\"\\ud83d\"",  // lone surrogate
  };
  for (const char* text : bad) {
    Json out;
    std::string error;
    EXPECT_FALSE(Json::parse(text, &out, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Json, DeepNestingRejected) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  Json out;
  std::string error;
  EXPECT_FALSE(Json::parse(deep, &out, &error));
}

RunReport tiny_report() {
  RunReport report("unit_test_bench");
  report.set_param("machine", Json("nacl"));
  report.set_param("N", Json(24));
  Json row = Json::object();
  row["nodes"] = Json(4);
  row["gflops"] = Json(1.5);
  report.add_result(std::move(row));
  report.set_derived("best_gflops", Json(1.5));
  return report;
}

TEST(RunReportTest, ValidatesAgainstSchema) {
  const std::string text = tiny_report().to_string();
  std::string error;
  EXPECT_TRUE(validate_run_report(text, &error)) << error;
}

TEST(RunReportTest, ValidatorRejectsBadDocuments) {
  std::string error;
  // Not JSON at all.
  EXPECT_FALSE(validate_run_report("nope", &error));
  // Wrong schema tag.
  EXPECT_FALSE(validate_run_report(
      R"({"schema":"other/v9","name":"x","params":{},"results":[],)"
      R"("metrics":{"counters":[],"gauges":[],"histograms":[]},"derived":{}})",
      &error));
  // Missing metrics section.
  EXPECT_FALSE(validate_run_report(
      R"({"schema":"repro.run_report/v1","name":"x","params":{},)"
      R"("results":[],"derived":{}})",
      &error));
  // Non-scalar result row.
  EXPECT_FALSE(validate_run_report(
      R"({"schema":"repro.run_report/v1","name":"x","params":{},)"
      R"("results":[{"nested":{}}],)"
      R"("metrics":{"counters":[],"gauges":[],"histograms":[]},"derived":{}})",
      &error));
  // Non-finite number arrives as null after serialization -> rejected.
  RunReport bad = tiny_report();
  bad.set_derived("oops", Json(1.0 / 0.0));
  EXPECT_FALSE(validate_run_report(bad.to_string(), &error));
  EXPECT_NE(error.find("oops"), std::string::npos);
}

TEST(RunReportTest, CapturesRealRunMetrics) {
  stencil::Problem problem = stencil::random_problem(24, 24, 6);
  stencil::DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 3;
  config.metrics = std::make_shared<MetricsRegistry>();
  const stencil::DistResult result = run_distributed(problem, config);

  RunReport report("obs_report_test");
  report.set_param("N", Json(24));
  report.set_param("steps", Json(3));
  Json row = Json::object();
  row["messages"] = Json(result.stats.messages);
  row["bytes"] = Json(result.stats.bytes);
  report.add_result(std::move(row));
  report.add_metrics(*config.metrics);

  const std::string text = report.to_string();
  std::string error;
  ASSERT_TRUE(validate_run_report(text, &error)) << error;

  if constexpr (kEnabled) {
    // The registry's view must agree with the channel's own accounting.
    const MetricsSnapshot snap = config.metrics->snapshot();
    EXPECT_EQ(snap.counter_total("net_messages_total"),
              static_cast<double>(result.stats.messages));
    EXPECT_EQ(snap.counter_total("net_bytes_total"),
              static_cast<double>(result.stats.bytes));
    EXPECT_GT(snap.counter_total("rt_tasks_executed_total"), 0.0);
    EXPECT_GT(snap.counter_total("stencil_supersteps_total"), 0.0);

    // And the serialized report must carry those counters.
    Json parsed;
    ASSERT_TRUE(Json::parse(text, &parsed, &error)) << error;
    const Json* counters = parsed.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GT(counters->size(), 0u);
  }
}

TEST(RunReportTest, WriteToFileAndValidate) {
  const std::string path = ::testing::TempDir() + "obs_report_test.json";
  tiny_report().write(path);
  std::string error;
  EXPECT_TRUE(validate_run_report(slurp(path), &error)) << error;
  std::remove(path.c_str());

  EXPECT_THROW(tiny_report().write("/nonexistent-dir/nope/report.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace repro::obs
