// Channel conformance suite: one shared test body run against every channel
// stack the runtime composes (docs/CHANNELS.md), so the layers cannot drift
// apart on the core contract — per-(src,dst) FIFO order, exactly-once
// delivery, try_recv/pending semantics, and close behavior.
//
// Stacks under test:
//   * Transport                                  (the in-memory baseline)
//   * ReliableChannel(FaultInjector(Transport))  (lossy wire + retry layer)
//   * PersistentChannel(Transport)               (persistent routes, pass-through)
//   * PersistentChannel(ReliableChannel(FaultInjector(Transport)))  (full)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/reliable_channel.hpp"
#include "net/persistent_channel.hpp"
#include "net/transport.hpp"

namespace repro::net {
namespace {

struct ChannelCase {
  const char* name;
  std::function<std::shared_ptr<Channel>(int nranks)> make;
  bool lossless;        ///< expected Channel::lossless()
  bool needs_ack_drain; ///< reliability layer: source ranks must poll acks
};

std::vector<ChannelCase> conformance_cases() {
  const auto lossy_reliable = [](int nranks) -> std::shared_ptr<Channel> {
    auto transport = std::make_shared<Transport>(nranks);
    auto injector = std::make_shared<fault::FaultInjector>(
        transport, fault::FaultPlan::uniform(41, 0.1, 0.05, 0.05));
    fault::ReliableConfig config;
    config.timeout_s = 0.001;
    return std::make_shared<fault::ReliableChannel>(injector, config);
  };
  return {
      {"Transport",
       [](int nranks) { return std::make_shared<Transport>(nranks); },
       true, false},
      {"ReliableOverLossy", lossy_reliable, true, true},
      {"PersistentOverTransport",
       [](int nranks) {
         return std::make_shared<PersistentChannel>(
             std::make_shared<Transport>(nranks));
       },
       true, false},
      {"PersistentOverReliableOverLossy",
       [lossy_reliable](int nranks) {
         return std::make_shared<PersistentChannel>(lossy_reliable(nranks));
       },
       true, true},
  };
}

Message make_msg(int src, int dst, std::uint64_t value) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.tag = value;
  msg.header = {value};
  msg.payload = {static_cast<double>(value), static_cast<double>(value) * 2};
  return msg;
}

/// Polls try_recv on the sender-side ranks so reliability acks are applied
/// (in real runs the per-rank receiver loops do this). Harmless on stacks
/// without a retry layer: those ranks receive no traffic.
class Drainer {
 public:
  Drainer(Channel& channel, std::vector<int> ranks)
      : channel_(channel), ranks_(std::move(ranks)),
        thread_([this] { run(); }) {}
  ~Drainer() {
    done_.store(true);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    try {
      while (!done_.load()) {
        for (int rank : ranks_) channel_.try_recv(rank);
        std::this_thread::yield();
      }
    } catch (const ChannelError&) {
    }
  }

  Channel& channel_;
  std::vector<int> ranks_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

class ChannelConformance : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(ChannelConformance, ReportsExpectedLosslessness) {
  const auto chan = GetParam().make(2);
  EXPECT_EQ(chan->lossless(), GetParam().lossless);
  chan->close();
  EXPECT_TRUE(chan->closed());
}

TEST_P(ChannelConformance, FifoExactlyOncePerChannelPair) {
  const int n = 200;
  const auto chan = GetParam().make(3);
  Drainer drainer(*chan, {0, 2});

  // Two interleaved source streams into rank 1: each stream arrives complete
  // and in order (per-(src,dst) FIFO), nothing duplicated, nothing lost.
  for (int i = 0; i < n; ++i) {
    chan->send(make_msg(0, 1, static_cast<std::uint64_t>(i)));
    chan->send(make_msg(2, 1, static_cast<std::uint64_t>(1000 + i)));
  }
  int next_from_0 = 0;
  int next_from_2 = 0;
  for (int i = 0; i < 2 * n; ++i) {
    const auto msg = chan->recv(1);
    ASSERT_TRUE(msg.has_value()) << GetParam().name;
    ASSERT_EQ(msg->dst, 1);
    if (msg->src == 0) {
      EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(next_from_0));
      EXPECT_DOUBLE_EQ(msg->payload_data()[1], 2.0 * next_from_0);
      ++next_from_0;
    } else {
      ASSERT_EQ(msg->src, 2);
      EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(1000 + next_from_2));
      ++next_from_2;
    }
  }
  EXPECT_EQ(next_from_0, n);
  EXPECT_EQ(next_from_2, n);
  chan->close();
}

TEST_P(ChannelConformance, TryRecvDrainsThenReportsEmpty) {
  const auto chan = GetParam().make(2);
  Drainer drainer(*chan, {0});

  for (int i = 0; i < 3; ++i) {
    chan->send(make_msg(0, 1, static_cast<std::uint64_t>(i)));
  }
  // Lossy inner layers may deliver late (retransmit timers), so poll.
  int got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got < 3 && std::chrono::steady_clock::now() < deadline) {
    if (const auto msg = chan->try_recv(1)) {
      EXPECT_EQ(msg->header[0], static_cast<std::uint64_t>(got));
      ++got;
    } else {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(got, 3) << GetParam().name;
  EXPECT_FALSE(chan->try_recv(1).has_value());
  chan->close();
}

TEST_P(ChannelConformance, CloseUnblocksAndSticks) {
  const auto chan = GetParam().make(2);
  std::thread receiver([&] {
    // Blocks until close, then observes shutdown as nullopt.
    EXPECT_FALSE(chan->recv(1).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  chan->close();
  receiver.join();
  EXPECT_TRUE(chan->closed());
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, ChannelConformance, ::testing::ValuesIn(conformance_cases()),
    [](const ::testing::TestParamInfo<ChannelCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace repro::net
