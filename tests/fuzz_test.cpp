// Randomized property tests: broad sweeps over configuration space that the
// hand-picked parameterized cases cannot cover.
//
//   * distributed stencil (random grid/tile/node/step/worker/scheduler
//     combinations) == serial reference, bit for bit;
//   * CA invariants: message count divides by superstep count, redundancy
//     grows with s, traffic bytes conserve the halo volume;
//   * runtime under adversarial graphs: random fan-in/fan-out with random
//     rank placement, values checked against sequential evaluation;
//   * failure injection: a randomly placed throwing task must surface as an
//     error and never hang the runtime;
//   * fused wavefronts: every pool draws a fuse depth, and a deterministic
//     pool pins the sharp window shapes (k > s, ragged final window, k in
//     {2, 3, 5}) under both schedulers and the persistent wire.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "equivalence_helpers.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"
#include "stencil/spec_kernel.hpp"
#include "support/rng.hpp"

namespace repro {
namespace {

TEST(FuzzDistStencil, RandomConfigurationsMatchSerial) {
  Rng rng(0xCA5E);
  for (int round = 0; round < 12; ++round) {
    const int rows = 8 + static_cast<int>(rng.next_below(25));
    const int cols = 8 + static_cast<int>(rng.next_below(25));
    const int iters = 1 + static_cast<int>(rng.next_below(10));
    const int mb = 2 + static_cast<int>(rng.next_below(6));
    const int nb = 2 + static_cast<int>(rng.next_below(6));

    stencil::DistConfig config;
    const int tiles_r = (rows + mb - 1) / mb;
    const int tiles_c = (cols + nb - 1) / nb;
    const int node_rows = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      std::min(tiles_r, 3))));
    const int node_cols = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      std::min(tiles_c, 3))));
    config.decomp = {mb, nb, node_rows, node_cols};

    const stencil::TileMap map(rows, cols, mb, nb, node_rows, node_cols);
    config.steps = 1 + static_cast<int>(rng.next_below(
                           static_cast<std::uint64_t>(map.min_tile_extent())));
    // Fused-wavefront draw: any window steps * fuse_depth that still fits
    // the smallest tile is legal, so fusing crosses every other knob here.
    const int max_fuse =
        std::max(1, map.min_tile_extent() / config.steps);
    config.fuse_depth = 1 + static_cast<int>(rng.next_below(
                                static_cast<std::uint64_t>(
                                    std::min(max_fuse, 3))));
    config.workers_per_rank = 1 + static_cast<int>(rng.next_below(3));
    config.dedicated_comm_thread = rng.next_below(2) == 0;
    const rt::SchedPolicy policies[] = {rt::SchedPolicy::PriorityFifo,
                                        rt::SchedPolicy::Fifo,
                                        rt::SchedPolicy::Lifo,
                                        rt::SchedPolicy::WorkStealing};
    config.scheduler = policies[rng.next_below(4)];
    config.sched_seed = rng.next_u64();
    config.persistent = rng.next_below(2) == 0;

    const bool variable = rng.next_below(3) == 0;
    const stencil::Problem problem =
        variable ? stencil::random_variable_problem(rows, cols, iters,
                                                    1000 + round)
                 : stencil::random_problem(rows, cols, iters, 2000 + round);

    SCOPED_TRACE("round " + std::to_string(round) + ": " +
                 std::to_string(rows) + "x" + std::to_string(cols) +
                 (variable ? " variable " : " constant ") +
                 test_support::describe(config));

    const stencil::DistResult result = run_distributed(problem, config);
    const stencil::Grid2D expected = solve_serial(problem);
    ASSERT_TRUE(test_support::grids_match(expected, result.grid));
  }
}

TEST(FuzzDistStencil, SuperstepCountGovernsBandMessages) {
  // Property: with iters a multiple of s, band messages = base_bands *
  // (iters/s) / iters ... i.e., band rounds == ceil(iters/s). Measured via
  // the byte-free proxy: messages(s) with corners subtracted must equal
  // messages(1) / s when s divides iters and s > 1 needs corner messages
  // accounted. Easier exact check: rounds(s) = number of superstep starts.
  const stencil::Problem problem = stencil::random_problem(24, 24, 12);
  stencil::DistConfig config;
  config.decomp = {4, 4, 2, 2};

  // Count pure-band traffic via s=1 (no corners): 16 tile-pairs crossing
  // cuts... derive per-round band count from the s=1 run.
  config.steps = 1;
  const auto base = run_distributed(problem, config);
  const std::uint64_t bands_per_round = base.stats.messages / 12;

  for (int s : {2, 3, 4}) {
    config.steps = s;
    const auto ca = run_distributed(problem, config);
    const std::uint64_t rounds =
        static_cast<std::uint64_t>((12 + s - 1) / s);
    EXPECT_GE(ca.stats.messages, rounds * bands_per_round) << s;
    // Corner messages are bounded by 3 per boundary tile per round.
    EXPECT_LE(ca.stats.messages, rounds * (bands_per_round + 3 * 16)) << s;
  }
}

TEST(FuzzDistStencil, RedundancyGrowsMonotonicallyWithStepSize) {
  const stencil::Problem problem = stencil::random_problem(32, 32, 8);
  stencil::DistConfig config;
  config.decomp = {8, 8, 2, 2};
  double prev = -1.0;
  for (int s : {1, 2, 4, 8}) {
    config.steps = s;
    const auto result = run_distributed(problem, config);
    EXPECT_GT(result.redundancy() + 1e-15, prev) << s;
    prev = result.redundancy();
  }
}

TEST(FuzzDistStencil, RandomShapesRejectOversizedStepsOrMatchSerial) {
  // Seeded random problem shapes: non-square grids, tile sizes that do not
  // divide the extents (ragged last tiles), and step sizes drawn past the
  // smallest tile extent. Oversized steps must be rejected with
  // std::invalid_argument; every accepted configuration must match the
  // serial reference bit for bit. Each round is derived from its own seed,
  // printed on failure so a reproduction needs only that number.
  int accepted = 0;
  int rejected = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(0x517A9E50 + seed);
    const int rows = 5 + static_cast<int>(rng.next_below(40));
    const int cols = 5 + static_cast<int>(rng.next_below(40));
    const int iters = 1 + static_cast<int>(rng.next_below(6));
    const int mb = 2 + static_cast<int>(rng.next_below(8));
    const int nb = 2 + static_cast<int>(rng.next_below(8));
    const int tiles_r = (rows + mb - 1) / mb;
    const int tiles_c = (cols + nb - 1) / nb;
    const int node_rows = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      std::min(tiles_r, 3))));
    const int node_cols = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      std::min(tiles_c, 3))));
    const stencil::TileMap map(rows, cols, mb, nb, node_rows, node_cols);

    stencil::DistConfig config;
    config.decomp = {mb, nb, node_rows, node_cols};
    // Deliberately overshoot: ~half the draws land past min_tile_extent and
    // must hit the validation path instead of silently corrupting results.
    config.steps = 1 + static_cast<int>(rng.next_below(
                           static_cast<std::uint64_t>(
                               map.min_tile_extent() + 3)));
    // The window is steps * fuse_depth, so a fuse draw pushes even in-range
    // step sizes over the edge — both validation paths stay exercised.
    config.fuse_depth = 1 + static_cast<int>(rng.next_below(3));
    config.workers_per_rank = 1 + static_cast<int>(rng.next_below(4));
    const rt::SchedPolicy policies[] = {rt::SchedPolicy::PriorityFifo,
                                        rt::SchedPolicy::Fifo,
                                        rt::SchedPolicy::Lifo,
                                        rt::SchedPolicy::WorkStealing};
    config.scheduler = policies[rng.next_below(4)];
    config.sched_seed = rng.next_u64();

    const bool variable = rng.next_below(4) == 0;
    const stencil::KernelVariant kernels[] = {stencil::KernelVariant::Scalar,
                                              stencil::KernelVariant::Vector,
                                              stencil::KernelVariant::Blocked};
    config.kernel = kernels[rng.next_below(3)];

    const stencil::Problem problem =
        variable
            ? stencil::random_variable_problem(rows, cols, iters,
                                               3000 + static_cast<int>(seed))
            : stencil::random_problem(rows, cols, iters,
                                      4000 + static_cast<int>(seed));

    SCOPED_TRACE(test_support::failing_seed(seed, config) + " " +
                 std::to_string(rows) + "x" + std::to_string(cols));

    if (config.steps * config.fuse_depth > map.min_tile_extent()) {
      EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
      ++rejected;
      continue;
    }
    const stencil::DistResult result = run_distributed(problem, config);
    const stencil::Grid2D expected = solve_serial(problem);
    ASSERT_TRUE(test_support::grids_match(expected, result.grid));
    ++accepted;
  }
  // The sweep must exercise both outcomes, or the seed constants regressed.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzDistStencil, FusedWavefrontPoolMatchesSerial) {
  // Deterministic fused-wavefront pool pinning the sharp window shapes the
  // random sweeps may miss: fuse depths k in {2, 3, 5}, k > s, windows that
  // do not divide the iteration count (ragged final window), a window that
  // fills the tile exactly, and the persistent-wire composition — all under
  // both the default and the work-stealing scheduler, all bit-identical to
  // the serial oracle.
  struct FusedCase {
    int steps, fuse, iters, node_rows, node_cols;
    bool persistent;
  };
  const FusedCase cases[] = {
      {1, 2, 7, 3, 3, false},   // ragged: 7 iterations over windows of 2
      {1, 3, 8, 3, 1, false},   // k > s; local vertical, remote horizontal
      {1, 5, 9, 3, 3, true},    // deep fuse + persistent, ragged
      {2, 5, 11, 3, 3, false},  // k > s with s > 1, W = 10 fills the tile
      {3, 3, 10, 1, 3, true},   // k == s, ragged, mixed local/remote sides
      {2, 3, 7, 3, 3, false},   // W = 6 > iters' remainder: 2nd window short
  };
  for (const auto sched :
       {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
    for (const FusedCase& c : cases) {
      stencil::DistConfig config;
      config.decomp = {10, 10, c.node_rows, c.node_cols};
      config.steps = c.steps;
      config.fuse_depth = c.fuse;
      config.scheduler = sched;
      config.persistent = c.persistent;
      SCOPED_TRACE(test_support::describe(config) + " iters=" +
                   std::to_string(c.iters));
      const stencil::Problem problem =
          stencil::random_problem(30, 30, c.iters, 6000 + c.iters);
      const stencil::DistResult result = run_distributed(problem, config);
      ASSERT_TRUE(
          test_support::grids_match(solve_serial(problem), result.grid));
    }
  }
  // Oversized window: steps * fuse_depth past the smallest tile extent must
  // throw before any task is built.
  stencil::DistConfig config;
  config.decomp = {10, 10, 3, 3};
  config.steps = 4;
  config.fuse_depth = 3;
  EXPECT_THROW(run_distributed(stencil::random_problem(30, 30, 4), config),
               std::invalid_argument);
}

TEST(FuzzSpecStencil, RandomSpecsMatchSerial) {
  // Random stencil SPECS (random rank, radius, point set, weights) through
  // random decompositions/schedulers: every accepted run must match the
  // spec's own serial oracle bit-for-bit on EVERY z plane; step sizes whose
  // staged ghost depth exceeds the smallest tile must throw. On failure the
  // trace prints the seed and the spec literal — paste the literal into a
  // unit test to reproduce without the fuzz harness.
  const char* env = std::getenv("REPRO_SPEC_FUZZ_ROUNDS");
  const int rounds = env ? std::atoi(env) : 10;
  int accepted = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(rounds);
       ++seed) {
    Rng rng(0x5BEC0000 + seed);
    const spec::StencilSpec sp = spec::random_spec(seed);
    const int nz = sp.rank == 3 ? 1 + static_cast<int>(rng.next_below(3)) : 1;
    const int rows = 10 + static_cast<int>(rng.next_below(20));
    const int cols = 10 + static_cast<int>(rng.next_below(20));
    const int iters = 1 + static_cast<int>(rng.next_below(5));
    const int mb = 3 + static_cast<int>(rng.next_below(6));
    const int nb = 3 + static_cast<int>(rng.next_below(6));
    const int tiles_r = (rows + mb - 1) / mb;
    const int tiles_c = (cols + nb - 1) / nb;
    const int node_rows = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      std::min(tiles_r, 2))));
    const int node_cols = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(
                                      std::min(tiles_c, 2))));
    const stencil::TileMap map(rows, cols, mb, nb, node_rows, node_cols);

    stencil::DistConfig config;
    config.decomp = {mb, nb, node_rows, node_cols};
    config.steps = 1 + static_cast<int>(rng.next_below(3));
    // Bound-aware fuse draw: random specs already reject plenty of rounds on
    // steps * stages alone, so cap the fused window to what could fit and
    // let the steps draw keep the rejection path covered.
    const int max_fuse =
        std::max(1, map.min_tile_extent() /
                        std::max(1, config.steps * spec::stage_count(sp)));
    config.fuse_depth = 1 + static_cast<int>(rng.next_below(
                                static_cast<std::uint64_t>(
                                    std::min(max_fuse, 3))));
    config.workers_per_rank = 1 + static_cast<int>(rng.next_below(3));
    const rt::SchedPolicy policies[] = {rt::SchedPolicy::PriorityFifo,
                                        rt::SchedPolicy::Fifo,
                                        rt::SchedPolicy::Lifo,
                                        rt::SchedPolicy::WorkStealing};
    config.scheduler = policies[rng.next_below(4)];
    config.sched_seed = rng.next_u64();
    config.persistent = rng.next_below(2) == 0;

    const stencil::Problem problem =
        stencil::spec_problem(sp, rows, cols, iters, nz,
                              5000 + static_cast<unsigned long>(seed));

    SCOPED_TRACE(test_support::failing_seed(seed, config) + " SPEC=" +
                 sp.to_literal() + " " + std::to_string(rows) + "x" +
                 std::to_string(cols) + " nz=" + std::to_string(nz));

    // The spec path runs radius-1 stage units with steps multiplied by the
    // stage count (and the fused window multiplies again), so the acceptance
    // bound is steps * stages * fuse_depth.
    if (config.steps * spec::stage_count(sp) * config.fuse_depth >
        map.min_tile_extent()) {
      EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
      continue;
    }
    const stencil::DistResult result = run_distributed(problem, config);
    ASSERT_TRUE(test_support::planes_match(
        stencil::solve_serial_spec(problem), result));
    ++accepted;
  }
  EXPECT_GT(accepted, 0);
}

TEST(FuzzRuntime, RandomDagsWithRandomPlacementComputeCorrectly) {
  Rng rng(77);
  for (int round = 0; round < 6; ++round) {
    const int layers = 2 + static_cast<int>(rng.next_below(5));
    const int width = 3 + static_cast<int>(rng.next_below(10));
    const int ranks = 1 + static_cast<int>(rng.next_below(5));
    const int workers = 1 + static_cast<int>(rng.next_below(3));

    rt::TaskGraph graph;
    std::vector<std::vector<double>> expected(
        static_cast<std::size_t>(layers));
    for (int layer = 0; layer < layers; ++layer) {
      expected[layer].assign(static_cast<std::size_t>(width), 0.0);
      for (int slot = 0; slot < width; ++slot) {
        rt::TaskSpec t;
        t.key = rt::TaskKey{9, layer, slot, 0};
        t.rank = static_cast<int>(rng.next_below(ranks));
        const double self = 1000.0 * layer + slot;
        double sum = self;
        if (layer > 0) {
          const int fan = 1 + static_cast<int>(rng.next_below(4));
          for (int p = 0; p < fan; ++p) {
            const int parent = static_cast<int>(rng.next_below(width));
            t.inputs.push_back({rt::TaskKey{9, layer - 1, parent, 0}, 0});
            sum += expected[layer - 1][parent];
          }
        }
        expected[layer][slot] = sum;
        t.body = [self](rt::TaskContext& ctx) {
          double acc = self;
          for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
            acc += ctx.input(i)[0];
          }
          ctx.publish(0, std::vector<double>{acc});
        };
        graph.add_task(std::move(t));
      }
    }

    rt::Runtime runtime(rt::Config{ranks, workers});
    runtime.run(graph);
    for (int slot = 0; slot < width; ++slot) {
      const rt::Buffer out =
          runtime.result(rt::TaskKey{9, layers - 1, slot, 0}, 0);
      ASSERT_DOUBLE_EQ((*out)[0], expected[layers - 1][slot])
          << "round " << round;
    }
  }
}

TEST(FuzzRuntime, RandomlyPlacedFailureAlwaysSurfacesAndNeverHangs) {
  Rng rng(0xBAD);
  for (int round = 0; round < 8; ++round) {
    const int chain = 5 + static_cast<int>(rng.next_below(10));
    const int bomb = static_cast<int>(rng.next_below(chain));
    const int ranks = 1 + static_cast<int>(rng.next_below(3));

    rt::TaskGraph graph;
    for (int i = 0; i < chain; ++i) {
      rt::TaskSpec t;
      t.key = rt::TaskKey{1, i, 0, 0};
      t.rank = i % ranks;
      if (i > 0) t.inputs.push_back({rt::TaskKey{1, i - 1, 0, 0}, 0});
      const bool is_bomb = i == bomb;
      t.body = [is_bomb](rt::TaskContext& ctx) {
        if (is_bomb) throw std::runtime_error("injected fault");
        ctx.publish(0, std::vector<double>{1.0});
      };
      graph.add_task(std::move(t));
    }
    rt::Runtime runtime(rt::Config{ranks, 2});
    try {
      runtime.run(graph);
      FAIL() << "round " << round << ": fault did not surface";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("injected fault"),
                std::string::npos);
    }
  }
}

TEST(FuzzRuntime, WideFanoutUnderEveryScheduler) {
  for (const auto policy :
       {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::Fifo,
        rt::SchedPolicy::Lifo, rt::SchedPolicy::WorkStealing}) {
    rt::TaskGraph graph;
    rt::TaskSpec src;
    src.key = rt::TaskKey{0, 0, 0, 0};
    src.body = [](rt::TaskContext& ctx) {
      ctx.publish(0, std::vector<double>{2.0});
    };
    graph.add_task(src);

    rt::TaskSpec sink;
    sink.key = rt::TaskKey{2, 0, 0, 0};
    sink.rank = 1;
    constexpr int kFan = 64;
    for (int i = 0; i < kFan; ++i) {
      rt::TaskSpec mid;
      mid.key = rt::TaskKey{1, i, 0, 0};
      mid.rank = i % 3;
      mid.priority = i % 5;
      mid.inputs = {{rt::TaskKey{0, 0, 0, 0}, 0}};
      mid.body = [i](rt::TaskContext& ctx) {
        ctx.publish(0, std::vector<double>{ctx.input(0)[0] * i});
      };
      graph.add_task(std::move(mid));
      sink.inputs.push_back({rt::TaskKey{1, i, 0, 0}, 0});
    }
    sink.body = [](rt::TaskContext& ctx) {
      double sum = 0.0;
      for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
        sum += ctx.input(i)[0];
      }
      ctx.publish(0, std::vector<double>{sum});
    };
    graph.add_task(std::move(sink));

    rt::Config config{3, 2};
    config.scheduler = policy;
    rt::Runtime runtime(config);
    runtime.run(graph);
    const rt::Buffer out = runtime.result(rt::TaskKey{2, 0, 0, 0}, 0);
    EXPECT_DOUBLE_EQ((*out)[0], 2.0 * (kFan * (kFan - 1)) / 2);
  }
}

}  // namespace
}  // namespace repro
