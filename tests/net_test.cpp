#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/link_model.hpp"
#include "net/netpipe.hpp"
#include "net/transport.hpp"
#include "support/units.hpp"

namespace repro::net {
namespace {

TEST(LinkModel, TransferTimeIsAffineInSize) {
  const LinkModel link = nacl_link();
  const double t1 = link.transfer_time(1000);
  const double t2 = link.transfer_time(2000);
  const double per_byte = 1.0 / link.effective_bw_Bps;
  EXPECT_NEAR(t2 - t1, 1000 * per_byte, 1e-15);
  EXPECT_NEAR(link.transfer_time(0), link.latency_s + link.per_message_s,
              1e-15);
}

TEST(LinkModel, BandwidthSaturatesTowardEffectivePeak) {
  for (const LinkModel& link : {nacl_link(), stampede2_link()}) {
    EXPECT_LT(link.effective_bandwidth(256), 0.1 * link.effective_bw_Bps)
        << link.name;
    EXPECT_GT(link.effective_bandwidth(64 * MiB), 0.95 * link.effective_bw_Bps)
        << link.name;
    // Monotone increasing in message size.
    double prev = 0.0;
    for (std::size_t n = 64; n <= 1 * MiB; n *= 4) {
      const double bw = link.effective_bandwidth(n);
      EXPECT_GT(bw, prev);
      prev = bw;
    }
  }
}

TEST(LinkModel, PaperFig5Anchors) {
  // Fig. 5: both systems reach well over half their theoretical peak at 1 MB
  // and sit in single-digit percent at 256 B.
  const LinkModel nacl = nacl_link();
  EXPECT_GT(nacl.fraction_of_peak(1 * MiB), 0.6);
  EXPECT_LT(nacl.fraction_of_peak(256), 0.10);
  const LinkModel stampede = stampede2_link();
  EXPECT_GT(stampede.fraction_of_peak(1 * MiB), 0.55);
  EXPECT_LT(stampede.fraction_of_peak(256), 0.10);
}

TEST(LinkModel, BytesForFractionInvertsTheCurve) {
  const LinkModel link = nacl_link();
  for (double f : {0.2, 0.5, 0.7}) {
    const double n = link.bytes_for_fraction_of_effective_peak(f);
    const double achieved =
        link.effective_bandwidth(static_cast<std::size_t>(n)) /
        link.effective_bw_Bps;
    EXPECT_NEAR(achieved, f, 0.02);
  }
}

TEST(Transport, DeliversInFifoOrderPerChannel) {
  Transport transport(2);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.tag = static_cast<std::uint64_t>(i);
    transport.send(std::move(m));
  }
  for (int i = 0; i < 10; ++i) {
    auto m = transport.recv(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->tag, static_cast<std::uint64_t>(i));
  }
  transport.close();
}

TEST(Transport, TryRecvDoesNotBlock) {
  Transport transport(2);
  EXPECT_FALSE(transport.try_recv(0).has_value());
  Message m;
  m.src = 1;
  m.dst = 0;
  transport.send(std::move(m));
  EXPECT_TRUE(transport.try_recv(0).has_value());
  transport.close();
}

TEST(Transport, RecvUnblocksOnClose) {
  Transport transport(2);
  std::thread closer([&] { transport.close(); });
  EXPECT_FALSE(transport.recv(0).has_value());
  closer.join();
}

TEST(Transport, CountsMessagesAndBytes) {
  Transport transport(2);
  Message m;
  m.src = 0;
  m.dst = 1;
  m.header = {1, 2, 3};
  m.payload.assign(100, 0.5);
  const std::size_t expected = m.bytes();
  EXPECT_EQ(expected, sizeof(std::uint64_t) * 4 + 100 * sizeof(double));
  transport.send(std::move(m));
  const TrafficStats stats = transport.stats();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, expected);
  EXPECT_EQ(stats.sizes.total_count(), 1u);
  EXPECT_EQ(stats.sizes.total_bytes(), expected);
  EXPECT_EQ(stats.sizes.count(SizeHistogram::bucket_of(expected)), 1u);
  transport.close();
}

TEST(SizeHistogram, BucketsByLog2AndKeepsExactByteTotals) {
  SizeHistogram hist;
  EXPECT_EQ(SizeHistogram::bucket_of(0), 0);
  EXPECT_EQ(SizeHistogram::bucket_of(1), 0);
  EXPECT_EQ(SizeHistogram::bucket_of(2), 1);
  EXPECT_EQ(SizeHistogram::bucket_of(3), 1);
  EXPECT_EQ(SizeHistogram::bucket_of(1024), 10);
  EXPECT_EQ(SizeHistogram::bucket_of(1025), 10);
  EXPECT_EQ(SizeHistogram::bucket_lo(10), 1024u);
  hist.record(100);
  hist.record(120);
  hist.record(4096);
  EXPECT_EQ(hist.count(6), 2u);   // [64, 128)
  EXPECT_EQ(hist.bytes(6), 220u);
  EXPECT_EQ(hist.count(12), 1u);  // [4096, 8192)
  EXPECT_EQ(hist.total_count(), 3u);
  EXPECT_EQ(hist.total_bytes(), 100u + 120u + 4096u);
  SizeHistogram other;
  other.record(100);
  hist.merge(other);
  EXPECT_EQ(hist.count(6), 3u);
  EXPECT_EQ(hist.total_count(), 4u);
}

TEST(Transport, RejectsBadRanksAndSendAfterClose) {
  Transport transport(2);
  Message bad;
  bad.src = 0;
  bad.dst = 5;
  EXPECT_THROW(transport.send(std::move(bad)), std::out_of_range);
  transport.close();
  Message late;
  late.src = 0;
  late.dst = 1;
  EXPECT_THROW(transport.send(std::move(late)), std::runtime_error);
}

TEST(Transport, PendingCountsQueuedMessages) {
  Transport transport(3);
  EXPECT_EQ(transport.pending(2), 0u);
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.src = 0;
    m.dst = 2;
    transport.send(std::move(m));
  }
  EXPECT_EQ(transport.pending(2), 3u);
  transport.close();
}

TEST(Transport, ConcurrentSendersAllDeliver) {
  Transport transport(4);
  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (int src = 1; src < 4; ++src) {
    senders.emplace_back([&, src] {
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.src = src;
        m.dst = 0;
        m.tag = static_cast<std::uint64_t>(src * 1000 + i);
        transport.send(std::move(m));
      }
    });
  }
  int received = 0;
  int last_seen[4] = {-1, -1, -1, -1};
  while (received < 3 * kPerSender) {
    auto m = transport.recv(0);
    ASSERT_TRUE(m.has_value());
    const int src = m->src;
    const int seq = static_cast<int>(m->tag) - src * 1000;
    EXPECT_GT(seq, last_seen[src]) << "per-channel FIFO violated";
    last_seen[src] = seq;
    ++received;
  }
  for (auto& t : senders) t.join();
  transport.close();
}

TEST(Transport, ConcurrentCloseAndRecvNeverHangs) {
  // Regression for the closed-flag consolidation: a receiver that blocks
  // just as close() lands must still wake. Repeat to give the race a chance.
  for (int round = 0; round < 50; ++round) {
    Transport transport(2);
    std::thread receiver([&] {
      while (transport.recv(0).has_value()) {
      }
    });
    std::thread closer([&] { transport.close(); });
    closer.join();
    receiver.join();  // would deadlock on a missed wakeup
    EXPECT_TRUE(transport.closed());
  }
}

TEST(Transport, ConcurrentCloseAndSendIsAtomic) {
  // send() either delivers fully (counted + queued) or throws; no partially
  // recorded messages when close() races with senders.
  for (int round = 0; round < 20; ++round) {
    Transport transport(2);
    std::atomic<int> delivered{0};
    std::vector<std::thread> senders;
    for (int t = 0; t < 4; ++t) {
      senders.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          Message m;
          m.src = 0;
          m.dst = 1;
          try {
            transport.send(std::move(m));
            delivered.fetch_add(1);
          } catch (const std::runtime_error&) {
            break;  // close won the race
          }
        }
      });
    }
    transport.close();
    for (auto& t : senders) t.join();
    const TrafficStats stats = transport.stats();
    // Every message that send() accepted is fully accounted; drain and check.
    std::size_t drained = 0;
    while (transport.try_recv(1).has_value()) ++drained;
    EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(delivered.load()));
    EXPECT_EQ(drained, static_cast<std::size_t>(delivered.load()));
  }
}

TEST(Transport, TryRecvUnderConcurrentSendersDeliversEverythingInOrder) {
  Transport transport(3);
  constexpr int kPerSender = 500;
  std::vector<std::thread> senders;
  for (int src = 1; src < 3; ++src) {
    senders.emplace_back([&, src] {
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.src = src;
        m.dst = 0;
        m.tag = static_cast<std::uint64_t>(src * 10000 + i);
        transport.send(std::move(m));
      }
    });
  }
  // Consumer polls with try_recv only (the non-blocking path was previously
  // untested under contention); FIFO must hold per source channel.
  int received = 0;
  int last_seen[3] = {-1, -1, -1};
  while (received < 2 * kPerSender) {
    auto m = transport.try_recv(0);
    if (!m.has_value()) {
      std::this_thread::yield();
      continue;
    }
    const int src = m->src;
    const int seq = static_cast<int>(m->tag) - src * 10000;
    EXPECT_GT(seq, last_seen[src]) << "per-channel FIFO violated via try_recv";
    last_seen[src] = seq;
    ++received;
  }
  for (auto& t : senders) t.join();
  EXPECT_FALSE(transport.try_recv(0).has_value());
  EXPECT_EQ(transport.pending(0), 0u);
  transport.close();
}

TEST(Transport, PendingIsConsistentUnderConcurrentSenders) {
  Transport transport(2);
  constexpr int kTotal = 400;
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&] {
      for (int i = 0; i < kTotal / 4; ++i) {
        Message m;
        m.src = 0;
        m.dst = 1;
        transport.send(std::move(m));
      }
    });
  }
  // pending() snapshots must never exceed the number of completed sends and
  // must reach the exact total once senders are done.
  std::size_t last = 0;
  while (last < kTotal) {
    const std::size_t now = transport.pending(1);
    EXPECT_LE(now, static_cast<std::size_t>(kTotal));
    last = now;
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(transport.pending(1), static_cast<std::size_t>(kTotal));
  EXPECT_EQ(transport.stats().messages, static_cast<std::uint64_t>(kTotal));
  transport.close();
}

TEST(Netpipe, AnalyticCurveMatchesModel) {
  const LinkModel link = stampede2_link();
  const auto sizes = netpipe_sizes(64, 1 * MiB);
  const auto curve = analytic_curve(link, sizes);
  ASSERT_EQ(curve.size(), sizes.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].bytes, sizes[i]);
    EXPECT_NEAR(curve[i].bandwidth_Bps, link.effective_bandwidth(sizes[i]),
                1e-6);
  }
}

TEST(Netpipe, MeasuredCurveProducesFinitePositiveBandwidth) {
  const auto sizes = netpipe_sizes(64, 16 * KiB);
  const auto curve = measured_curve(sizes, 8);
  ASSERT_EQ(curve.size(), sizes.size());
  for (const auto& p : curve) {
    EXPECT_GT(p.bandwidth_Bps, 0.0);
    EXPECT_GT(p.time_s, 0.0);
  }
}

TEST(Netpipe, ModeledTrafficTimeSumsPerMessage) {
  Transport transport(2);
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.payload.assign(128, 1.0);
    transport.send(std::move(m));
  }
  const LinkModel link = nacl_link();
  const TrafficStats stats = transport.stats();
  // transfer_time is affine in size, so the histogram-backed sum is exact.
  const double expect = 4 * link.transfer_time(stats.bytes / 4);
  EXPECT_NEAR(stats.modeled_time(link), expect, 1e-12);
  transport.close();
}


TEST(Transport, DestinationLabelCardinalityIsCapped) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  const int nranks = Transport::kMaxDstSeries + 8;
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  Transport transport(nranks, metrics);

  // Exactly kMaxDstSeries per-destination series plus one shared overflow
  // bucket, no matter how large the rank count grows.
  int series = 0;
  for (const auto& c : metrics->snapshot().counters) {
    if (c.name == "net_messages_total") ++series;
  }
  EXPECT_EQ(series, Transport::kMaxDstSeries + 1);

  for (int r = 0; r < nranks; ++r) {
    Message m;
    m.src = 0;
    m.dst = r;
    m.payload.assign(4, 1.0);
    transport.send(std::move(m));
  }

  // Capped destinations alias the overflow series...
  const auto* overflow = metrics->snapshot().find_counter(
      "net_messages_total", {{"dst", "overflow"}});
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->value, 8u);

  // ...and the global traffic view stays exact (no double counting).
  const TrafficStats stats = transport.stats();
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(nranks));
  transport.close();
}

}  // namespace
}  // namespace repro::net
