#include <gtest/gtest.h>

#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/models.hpp"
#include "support/units.hpp"

namespace repro::sim {
namespace {

SimMachineConfig ideal_machine(int nodes, int workers) {
  SimMachineConfig m;
  m.nodes = nodes;
  m.workers_per_node = workers;
  m.link = net::ideal_link();
  return m;
}

TEST(Des, EmptyGraph) {
  SimGraph graph;
  const SimResult r = simulate(graph, ideal_machine(1, 1));
  EXPECT_EQ(r.makespan_s, 0.0);
  EXPECT_EQ(r.tasks_executed, 0u);
}

TEST(Des, SerialChainSumsCosts) {
  SimGraph graph;
  std::uint32_t prev = graph.add_task({0, 1.0, 0, 0});
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t next = graph.add_task({0, 2.0, 0, 0});
    graph.add_edge(prev, next);
    prev = next;
  }
  const SimResult r = simulate(graph, ideal_machine(1, 4));
  EXPECT_DOUBLE_EQ(r.makespan_s, 1.0 + 4 * 2.0);  // chain defeats parallelism
  EXPECT_DOUBLE_EQ(r.node_busy_s[0], 9.0);
}

TEST(Des, IndependentTasksPackOntoWorkers) {
  SimGraph graph;
  for (int i = 0; i < 8; ++i) graph.add_task({0, 1.0, 0, 0});
  EXPECT_DOUBLE_EQ(simulate(graph, ideal_machine(1, 1)).makespan_s, 8.0);
  EXPECT_DOUBLE_EQ(simulate(graph, ideal_machine(1, 2)).makespan_s, 4.0);
  EXPECT_DOUBLE_EQ(simulate(graph, ideal_machine(1, 8)).makespan_s, 1.0);
  EXPECT_DOUBLE_EQ(simulate(graph, ideal_machine(1, 16)).makespan_s, 1.0);
}

TEST(Des, PriorityWinsOnContention) {
  SimGraph graph;
  const auto low = graph.add_task({0, 1.0, 0, 7});
  const auto high = graph.add_task({0, 1.0, 5, 9});
  (void)low;
  (void)high;
  const SimResult r = simulate(graph, ideal_machine(1, 1), /*trace=*/true);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].klass, 9);  // high priority first
  EXPECT_EQ(r.trace[1].klass, 7);
}

TEST(Des, RemoteEdgePaysLatencyAndBandwidth) {
  SimMachineConfig m = ideal_machine(2, 1);
  m.link.latency_s = 0.5;
  m.link.effective_bw_Bps = 100.0;  // 100 B/s
  SimGraph graph;
  const auto a = graph.add_task({0, 1.0, 0, 0});
  const auto b = graph.add_task({1, 1.0, 0, 0});
  graph.add_edge(a, b, 200.0);  // 2 s of wire time
  const SimResult r = simulate(graph, m);
  // 1 (task a) + 2 (bytes) + 0.5 (latency) + 1 (task b)
  EXPECT_DOUBLE_EQ(r.makespan_s, 4.5);
  EXPECT_EQ(r.messages, 1u);
  EXPECT_DOUBLE_EQ(r.message_bytes, 200.0);
}

TEST(Des, NicSerializesConcurrentSends) {
  SimMachineConfig m = ideal_machine(2, 4);
  m.link.effective_bw_Bps = 100.0;
  SimGraph graph;
  // Four source tasks finish simultaneously; each sends 100 B (1 s wire).
  std::vector<std::uint32_t> sinks;
  for (int i = 0; i < 4; ++i) {
    const auto src = graph.add_task({0, 1.0, 0, 0});
    const auto dst = graph.add_task({1, 0.0, 0, 0});
    graph.add_edge(src, dst, 100.0);
    sinks.push_back(dst);
  }
  const SimResult r = simulate(graph, m);
  // Sends serialize on node 0's comm resource: last arrives at 1 + 4*1.
  EXPECT_DOUBLE_EQ(r.makespan_s, 5.0);
}

TEST(Des, CommOverheadChargesBothSides) {
  SimMachineConfig m = ideal_machine(2, 1);
  m.comm_overhead_s = 0.25;
  SimGraph graph;
  const auto a = graph.add_task({0, 1.0, 0, 0});
  const auto b = graph.add_task({1, 1.0, 0, 0});
  graph.add_edge(a, b, 0.0);
  const SimResult r = simulate(graph, m);
  // 1 + tx overhead 0.25 + rx overhead 0.25 + 1.
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.5);
}

TEST(Des, BusyConservation) {
  SimGraph graph;
  double total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double cost = 0.1 * (i + 1);
    graph.add_task({i % 3, cost, 0, 0});
    total += cost;
  }
  const SimResult r = simulate(graph, ideal_machine(3, 2));
  double busy = 0.0;
  for (double b : r.node_busy_s) busy += b;
  EXPECT_NEAR(busy, total, 1e-12);
  // Occupancy of each node never exceeds 1.
  for (int node = 0; node < 3; ++node) {
    EXPECT_LE(r.occupancy(node, 2), 1.0 + 1e-12);
  }
}

TEST(Des, TraceIntervalsNeverOverlapPerWorker) {
  SimGraph graph;
  // Random-ish diamond mesh over 2 nodes.
  std::vector<std::uint32_t> prev;
  for (int layer = 0; layer < 5; ++layer) {
    std::vector<std::uint32_t> cur;
    for (int i = 0; i < 6; ++i) {
      const auto t = graph.add_task({i % 2, 0.3 + 0.1 * i, 0, 0});
      for (std::uint32_t p : prev) {
        if ((p + t) % 3 == 0) graph.add_edge(p, t, 64.0);
      }
      cur.push_back(t);
    }
    prev = cur;
  }
  SimMachineConfig m = ideal_machine(2, 2);
  m.link = net::nacl_link();
  m.comm_overhead_s = 1e-5;
  const SimResult r = simulate(graph, m, /*trace=*/true);
  EXPECT_EQ(r.trace.size(), graph.num_tasks());

  std::map<std::pair<int, int>, std::vector<SimInterval>> lanes;
  for (const auto& iv : r.trace) lanes[{iv.node, iv.worker}].push_back(iv);
  for (auto& [lane, ivs] : lanes) {
    std::sort(ivs.begin(), ivs.end(), [](const auto& a, const auto& b) {
      return a.begin_s < b.begin_s;
    });
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      EXPECT_GE(ivs[i].begin_s, ivs[i - 1].end_s - 1e-12);
    }
  }
}

TEST(Des, RejectsBadInput) {
  SimGraph graph;
  const auto a = graph.add_task({0, 1.0, 0, 0});
  EXPECT_THROW(graph.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(a, 99), std::out_of_range);
  EXPECT_THROW(graph.add_task({0, -1.0, 0, 0}), std::invalid_argument);
  SimGraph bad_node;
  bad_node.add_task({5, 1.0, 0, 0});
  EXPECT_THROW(simulate(bad_node, ideal_machine(2, 1)), std::out_of_range);
}



TEST(Des, DeterministicAcrossRuns) {
  // The DES must be bit-deterministic: same graph, same result, twice.
  auto build = [] {
    SimGraph graph;
    std::vector<std::uint32_t> prev;
    for (int layer = 0; layer < 6; ++layer) {
      std::vector<std::uint32_t> cur;
      for (int i = 0; i < 5; ++i) {
        const auto t =
            graph.add_task({(layer + i) % 3, 0.1 * (i + 1), i % 2, 0});
        for (std::uint32_t p : prev) {
          if ((p + t) % 2 == 0) graph.add_edge(p, t, 128.0 * (i + 1));
        }
        cur.push_back(t);
      }
      prev = cur;
    }
    return graph;
  };
  SimMachineConfig m = ideal_machine(3, 2);
  m.link = net::nacl_link();
  m.comm_overhead_s = 2e-5;
  const SimGraph g1 = build();
  const SimGraph g2 = build();
  const SimResult a = simulate(g1, m, true);
  const SimResult b = simulate(g2, m, true);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.messages, b.messages);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].task, b.trace[i].task);
    EXPECT_EQ(a.trace[i].begin_s, b.trace[i].begin_s);
    EXPECT_EQ(a.trace[i].worker, b.trace[i].worker);
  }
}

TEST(Des, AggregationMergesPerDestination) {
  // One producer with three remote consumers: 2 on node 1, 1 on node 2.
  for (bool aggregate : {false, true}) {
    SimMachineConfig m = ideal_machine(3, 2);
    m.aggregate_per_destination = aggregate;
    m.link.effective_bw_Bps = 100.0;
    SimGraph graph;
    const auto src = graph.add_task({0, 1.0, 0, 0});
    for (int i = 0; i < 3; ++i) {
      const auto dst = graph.add_task({i < 2 ? 1 : 2, 0.5, 0, 0});
      graph.add_edge(src, dst, 50.0);
    }
    const SimResult r = simulate(graph, m);
    EXPECT_EQ(r.messages, aggregate ? 2u : 3u);
    EXPECT_DOUBLE_EQ(r.message_bytes, 150.0);  // bytes conserved either way
    EXPECT_EQ(r.tasks_executed, 4u);
  }
}

TEST(Models, AggregationHelpsSmallStepCa) {
  // The small-s corner blowup: s=2 CA at paper scale sends many tiny corner
  // strips; aggregation merges them with the band to the same node.
  StencilSimParams p{nacl(), 11520, 288, 4, 4, 20, 2, 0.2};
  StencilSimParams agg = p;
  agg.aggregate_messages = true;
  const auto plain = simulate_stencil(p);
  const auto merged = simulate_stencil(agg);
  EXPECT_LT(merged.sim.messages, plain.sim.messages);
  EXPECT_GE(merged.gflops, plain.gflops);
  EXPECT_NEAR(merged.sim.message_bytes, plain.sim.message_bytes,
              0.01 * plain.sim.message_bytes);
}

TEST(Machine, PresetsMatchPaperAnchors) {
  const Machine n = nacl();
  EXPECT_EQ(n.cores_per_node, 12);
  EXPECT_EQ(n.compute_workers(), 11);
  EXPECT_NEAR(n.node_stream_bw_Bps, 39.1e9, 1e6);
  EXPECT_NEAR(n.link.theoretical_bw_Bps, gbit_per_s(32.0), 1.0);

  const Machine s = stampede2();
  EXPECT_EQ(s.compute_workers(), 47);
  EXPECT_NEAR(s.node_stream_bw_Bps, 172.5e9, 1e6);
  EXPECT_NEAR(s.link.theoretical_bw_Bps, gbit_per_s(100.0), 1.0);
}

TEST(Machine, RooflineMatchesPaperSectionVIA) {
  // "We expect the effective peak performance between 14.5 to 21.9 GFLOP/s
  // and 63.8 to 96.6 GFLOP/s".
  const Roofline n = stencil_roofline(nacl());
  EXPECT_NEAR(n.gflops_low, 14.5, 0.25);
  EXPECT_NEAR(n.gflops_high, 21.9, 0.25);
  EXPECT_NEAR(n.ai_low, 0.375, 1e-12);
  EXPECT_NEAR(n.ai_high, 0.5625, 1e-12);
  const Roofline s = stencil_roofline(stampede2());
  EXPECT_NEAR(s.gflops_low, 63.8, 1.0);
  EXPECT_NEAR(s.gflops_high, 96.6, 1.0);
}

TEST(Models, SingleNodeModelHitsMeasuredPlateaus) {
  // Fig. 6: NaCL ~11 GFLOP/s at tiles 200-300 (N=20k); Stampede2 ~43.5 at
  // tiles 400-2000 (N=27k).
  const Machine n = nacl();
  for (int tile : {200, 250, 288}) {
    EXPECT_NEAR(single_node_gflops_model(n, 20000, tile), 11.0, 1.2) << tile;
  }
  const Machine s = stampede2();
  for (int tile : {500, 864, 1000}) {
    EXPECT_NEAR(single_node_gflops_model(s, 27000, tile), 43.5, 6.0) << tile;
  }
  // Shape: small tiles lose to task overhead, large NaCL tiles to cache.
  EXPECT_LT(single_node_gflops_model(n, 20000, 50),
            single_node_gflops_model(n, 20000, 250));
  EXPECT_LT(single_node_gflops_model(n, 20000, 2000),
            single_node_gflops_model(n, 20000, 250));
}

TEST(Models, CaStepOneEqualsBaseGraph) {
  const StencilSimParams base{nacl(), 2304, 288, 2, 2, 10, 1, 1.0};
  StencilSimParams ca = base;
  ca.steps = 1;
  const auto a = simulate_stencil(base);
  const auto b = simulate_stencil(ca);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.sim.messages, b.sim.messages);
}

TEST(Models, MessageCountsScaleInverselyWithStepSize) {
  const StencilSimParams base{nacl(), 4608, 288, 2, 2, 30, 1, 1.0};
  StencilSimParams ca = base;
  ca.steps = 15;
  const auto rb = simulate_stencil(base);
  const auto rc = simulate_stencil(ca);
  // 30 iterations: base exchanges 30 rounds, CA s=15 exchanges at k=1,16.
  EXPECT_GT(rb.sim.messages, 10 * rc.sim.messages / 2);
  EXPECT_LT(rc.sim.messages, rb.sim.messages / 5);
  // CA total bytes are comparable (same data, fewer messages) but CA adds
  // corner blocks; allow a modest envelope.
  EXPECT_NEAR(rc.sim.message_bytes, rb.sim.message_bytes,
              0.35 * rb.sim.message_bytes);
}

TEST(Models, CaDoesRedundantWork) {
  const StencilSimParams base{nacl(), 4608, 288, 2, 2, 30, 1, 1.0};
  StencilSimParams ca = base;
  ca.steps = 8;
  EXPECT_DOUBLE_EQ(simulate_stencil(base).redundant_fraction, 0.0);
  EXPECT_GT(simulate_stencil(ca).redundant_fraction, 0.0);
  EXPECT_LT(simulate_stencil(ca).redundant_fraction, 0.25);
}

TEST(Models, StrongScalingIsMonotoneAndSublinear) {
  double prev_gflops = 0.0;
  for (int nr : {1, 2, 4}) {
    const StencilSimParams p{nacl(), 11520, 288, nr, nr, 10, 1, 1.0};
    const auto out = simulate_stencil(p);
    EXPECT_GT(out.gflops, prev_gflops);
    prev_gflops = out.gflops;
  }
  // At most linear: 16 nodes <= 16x one node (equality when communication is
  // fully hidden, as it is at full kernel time).
  const StencilSimParams one{nacl(), 11520, 288, 1, 1, 10, 1, 1.0};
  const StencilSimParams sixteen{nacl(), 11520, 288, 4, 4, 10, 1, 1.0};
  EXPECT_LE(simulate_stencil(sixteen).gflops,
            16.0 * simulate_stencil(one).gflops * (1 + 1e-9));
  // But with a fast kernel the communication shows: strictly sub-linear.
  StencilSimParams one_fast = one;
  one_fast.ratio = 0.2;
  StencilSimParams sixteen_fast = sixteen;
  sixteen_fast.ratio = 0.2;
  EXPECT_LT(simulate_stencil(sixteen_fast).gflops,
            16.0 * simulate_stencil(one_fast).gflops);
}

TEST(Models, CaBeatsBaseOnlyWhenKernelIsFast) {
  // The paper's central claim (Figs. 8/9): base == CA at full kernel time,
  // CA wins when the kernel-adjustment ratio shrinks kernel time.
  const Machine m = nacl();
  const StencilSimParams full_base{m, 23040, 288, 4, 4, 15, 1, 1.0};
  StencilSimParams full_ca = full_base;
  full_ca.steps = 15;
  const double b1 = simulate_stencil(full_base).gflops;
  const double c1 = simulate_stencil(full_ca).gflops;
  EXPECT_NEAR(c1 / b1, 1.0, 0.05);  // indistinguishable when memory-bound

  StencilSimParams fast_base = full_base;
  fast_base.ratio = 0.2;
  StencilSimParams fast_ca = full_ca;
  fast_ca.ratio = 0.2;
  const double b2 = simulate_stencil(fast_base).gflops;
  const double c2 = simulate_stencil(fast_ca).gflops;
  EXPECT_GT(c2 / b2, 1.3);  // paper: up to 57% on NaCL at 16 nodes
}

TEST(Models, PetscModelIsHalfOfParsecOnOneNode) {
  const Machine m = nacl();
  const PetscSimParams p{m, 23040, 1, 10};
  const auto out = simulate_petsc(p);
  EXPECT_NEAR(out.gflops, m.node_stencil_gflops / m.petsc_traffic_factor,
              0.5);
}

TEST(Models, PetscScalesButStaysBelowParsec) {
  const Machine m = nacl();
  for (int nodes : {4, 16, 64}) {
    const PetscSimParams pp{m, 23040, nodes, 10};
    const StencilSimParams sp{m, 23040, 288,
                              nodes == 4 ? 2 : nodes == 16 ? 4 : 8,
                              nodes == 4 ? 2 : nodes == 16 ? 4 : 8, 10, 1,
                              1.0};
    const double petsc = simulate_petsc(pp).gflops;
    const double parsec = simulate_stencil(sp).gflops;
    EXPECT_LT(petsc, parsec) << nodes;
    EXPECT_NEAR(parsec / petsc, 2.0, 0.5) << nodes;  // paper: ~2x
  }
}

TEST(Models, SimulatedTraceHasBoundaryAndInteriorClasses) {
  const StencilSimParams p{nacl(), 4608, 288, 2, 2, 5, 3, 0.4};
  const auto out = simulate_stencil(p, /*trace=*/true);
  std::size_t boundary = 0, interior = 0, init = 0;
  for (const auto& iv : out.sim.trace) {
    if (iv.klass == kKlassBoundary) ++boundary;
    else if (iv.klass == kKlassInterior) ++interior;
    else if (iv.klass == kKlassInit) ++init;
  }
  EXPECT_EQ(init, 16u * 16u);
  EXPECT_EQ(boundary + interior, 16u * 16u * 5u);
  EXPECT_GT(boundary, 0u);
  EXPECT_GT(interior, 0u);
}

}  // namespace
}  // namespace repro::sim
