// Property-based legality tests for rt::fuse_supersteps, the task-graph
// rewrite behind cross-node temporal blocking (DESIGN.md §17).
//
// The pass claims to be a semantics-preserving granularity change: fusing k
// consecutive chain members into one wavefront task must preserve the
// dependence relation (no edge inversion, no lost transitive dependence),
// round-trip task counts exactly (ceil(members / k) per chain), be an exact
// no-op at k = 1, and — the strongest property — leave every computed value
// bit-identical when the graph actually runs. We check all of that on 200
// seeded random pipeline DAGs (ragged chains, arbitrary chain_step strides,
// cross-chain window edges, source/sink singletons, multi-rank placement)
// and on the real stencil graphs of every named spec. Illegal requests
// (mid-window exchanges, backward intra-window edges, mixed ranks, malformed
// metadata) must throw GraphTransformError and leave the graph untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "equivalence_helpers.hpp"
#include "runtime/graph_transform.hpp"
#include "runtime/runtime.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"
#include "support/rng.hpp"

namespace repro {
namespace {

using rt::TaskGraph;
using rt::TaskKey;
using rt::TaskSpec;

// ------------------------------------------------- random pipeline DAGs --

/// Everything the properties need to know about one generated DAG. The
/// generator is deterministic in the seed, so the same RandomDag can be
/// materialized twice — once to fuse, once as the untouched oracle.
struct DagShape {
  int nranks = 1;
  int k = 1;  ///< fuse depth the shape was generated to be legal for
  /// Chain members in chain_step order (outer index: chain).
  std::vector<std::vector<TaskKey>> chains;
  std::vector<TaskKey> singletons;
  /// Every dependence edge as (producer key, consumer key).
  std::vector<std::pair<TaskKey, TaskKey>> edges;
  /// Keys whose slot-0 output both graph shapes must agree on.
  std::vector<TaskKey> observed;
};

/// Per-task build info accumulated by the generator before specs exist.
struct TaskDraft {
  TaskKey key;
  std::uint64_t chain = 0;
  std::int32_t chain_step = 0;
  int rank = 0;
  std::vector<rt::FlowRef> inputs;
  bool publish_cross = false;  ///< also publish slot 1 for cross consumers
};

constexpr std::uint16_t kSlotOut = 0;    ///< every task's observable output
constexpr std::uint16_t kSlotCross = 1;  ///< cross-chain window payload

double key_salt(const TaskKey& key) {
  return static_cast<double>((key.type * 131u + static_cast<unsigned>(key.a)) %
                             1009) +
         0.5;
}

/// Deterministic, input-order-sensitive body: any rewiring mistake (wrong
/// producer, wrong slot, reordered or duplicated input) changes the value.
TaskSpec make_task(const TaskDraft& draft) {
  TaskSpec spec;
  spec.key = draft.key;
  spec.rank = draft.rank;
  spec.chain = draft.chain;
  spec.chain_step = draft.chain_step;
  spec.inputs = draft.inputs;
  const double salt = key_salt(draft.key);
  const bool cross = draft.publish_cross;
  spec.body = [salt, cross](rt::TaskContext& ctx) {
    double acc = salt;
    for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
      const auto in = ctx.input(i);
      for (const double v : in) acc = acc * 1.0000001 + v;
      acc += static_cast<double>(i + 1) * 0.25;
    }
    if (cross) ctx.publish(kSlotCross, std::vector<double>{acc * 0.75, salt});
    ctx.publish(kSlotOut,
                std::vector<double>{acc, static_cast<double>(ctx.num_inputs())});
  };
  return spec;
}

/// Generate a fuse-ready pipeline DAG: chains exchange only across window
/// boundaries (producer = last member of window w, consumer = first member
/// of window w+1), source singletons feed arbitrary members, sink singletons
/// observe arbitrary members — exactly the legality envelope of the pass.
DagShape random_fuse_ready_shape(std::uint64_t seed) {
  Rng rng(0x600D0DA6 + seed);
  DagShape shape;
  shape.k = 1 + static_cast<int>(rng.next_below(5));
  shape.nranks = 1 + static_cast<int>(rng.next_below(3));
  const int nchains = 1 + static_cast<int>(rng.next_below(4));
  const int k = shape.k;

  std::vector<std::vector<TaskDraft>> drafts(
      static_cast<std::size_t>(nchains));
  for (int c = 0; c < nchains; ++c) {
    const int len = 1 + static_cast<int>(rng.next_below(12));
    const int stride = 1 + static_cast<int>(rng.next_below(3));
    const int rank = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(shape.nranks)));
    auto& chain = drafts[static_cast<std::size_t>(c)];
    for (int j = 0; j < len; ++j) {
      TaskDraft draft;
      draft.key = TaskKey{static_cast<std::uint32_t>(10 + c), j, 0, 0};
      draft.chain = static_cast<std::uint64_t>(c) + 1;
      draft.chain_step = j * stride + 1;
      draft.rank = rank;
      if (j > 0) draft.inputs.push_back({chain[j - 1].key, kSlotOut});
      chain.push_back(draft);
    }
  }

  // Cross-chain window edges: last of window w -> first of window w + 1.
  for (int a = 0; a < nchains; ++a) {
    for (int b = 0; b < nchains; ++b) {
      if (a == b) continue;
      auto& prod = drafts[static_cast<std::size_t>(a)];
      auto& cons = drafts[static_cast<std::size_t>(b)];
      for (int w = 0;; ++w) {
        const int pj = w * k + (k - 1);
        const int cj = (w + 1) * k;
        if (pj >= static_cast<int>(prod.size()) ||
            cj >= static_cast<int>(cons.size())) {
          break;
        }
        if (rng.next_below(2) != 0) continue;
        prod[pj].publish_cross = true;
        cons[cj].inputs.push_back({prod[pj].key, kSlotCross});
      }
    }
  }

  // Source singletons (no chain): feed arbitrary members — a window may end
  // up consuming the same singleton slot through several of its members,
  // which is what exercises the pass's external-input dedup.
  const int nsources = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < nsources; ++i) {
    TaskDraft src;
    src.key = TaskKey{1000, i, 0, 0};
    src.rank = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(shape.nranks)));
    const int fanout = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < fanout; ++f) {
      auto& chain = drafts[rng.next_below(
          static_cast<std::uint64_t>(nchains))];
      auto& member = chain[rng.next_below(chain.size())];
      bool duplicate = false;
      for (const auto& flow : member.inputs) {
        duplicate |= flow.producer == src.key && flow.slot == kSlotOut;
      }
      if (!duplicate) member.inputs.push_back({src.key, kSlotOut});
    }
    shape.singletons.push_back(src.key);
    drafts.push_back({src});
  }

  // Sink singletons: observe arbitrary members' slot-0 output — mid-window
  // members exercise the fresh-slot remap of non-last exported outputs.
  const int nsinks = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < nsinks; ++i) {
    TaskDraft sink;
    sink.key = TaskKey{2000, i, 0, 0};
    sink.rank = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(shape.nranks)));
    const int fanin = 1 + static_cast<int>(rng.next_below(3));
    for (int f = 0; f < fanin; ++f) {
      auto& chain = drafts[rng.next_below(
          static_cast<std::uint64_t>(nchains))];
      auto& member = chain[rng.next_below(chain.size())];
      bool duplicate = false;
      for (const auto& flow : sink.inputs) {
        duplicate |= flow.producer == member.key && flow.slot == kSlotOut;
      }
      if (!duplicate) sink.inputs.push_back({member.key, kSlotOut});
    }
    shape.singletons.push_back(sink.key);
    shape.observed.push_back(sink.key);
    drafts.push_back({sink});
  }

  // Observables must be TERMINAL outputs — the runtime retains only
  // unconsumed slots, so a chain tail a sink happens to read is observed
  // through the sink instead.
  std::set<std::uint64_t> sunk;
  for (std::size_t g = static_cast<std::size_t>(nchains); g < drafts.size();
       ++g) {
    for (const auto& draft : drafts[g]) {
      for (const auto& flow : draft.inputs) sunk.insert(flow.producer.pack());
    }
  }
  for (int c = 0; c < nchains; ++c) {
    const auto& chain = drafts[static_cast<std::size_t>(c)];
    std::vector<TaskKey> keys;
    for (const auto& draft : chain) keys.push_back(draft.key);
    if (sunk.count(keys.back().pack()) == 0) {
      shape.observed.push_back(keys.back());
    }
    shape.chains.push_back(std::move(keys));
  }
  for (const auto& group : drafts) {
    for (const auto& draft : group) {
      for (const auto& flow : draft.inputs) {
        shape.edges.emplace_back(flow.producer, draft.key);
      }
    }
  }

  // The generator's draft layout doubles as the build recipe: regenerate on
  // demand via materialize() below, which replays this function. Stash the
  // drafts in a static-free way by rebuilding from the seed instead.
  return shape;
}

/// Materialize the shape's graph (deterministic: replays the generator).
void materialize(std::uint64_t seed, TaskGraph& graph) {
  // Re-run the generator to recover the drafts, then emit specs. Replaying
  // keeps DagShape copyable/od-free and guarantees both materializations
  // are identical.
  Rng rng(0x600D0DA6 + seed);
  const int k = 1 + static_cast<int>(rng.next_below(5));
  const int nranks = 1 + static_cast<int>(rng.next_below(3));
  const int nchains = 1 + static_cast<int>(rng.next_below(4));

  std::vector<std::vector<TaskDraft>> drafts(
      static_cast<std::size_t>(nchains));
  for (int c = 0; c < nchains; ++c) {
    const int len = 1 + static_cast<int>(rng.next_below(12));
    const int stride = 1 + static_cast<int>(rng.next_below(3));
    const int rank =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    auto& chain = drafts[static_cast<std::size_t>(c)];
    for (int j = 0; j < len; ++j) {
      TaskDraft draft;
      draft.key = TaskKey{static_cast<std::uint32_t>(10 + c), j, 0, 0};
      draft.chain = static_cast<std::uint64_t>(c) + 1;
      draft.chain_step = j * stride + 1;
      draft.rank = rank;
      if (j > 0) draft.inputs.push_back({chain[j - 1].key, kSlotOut});
      chain.push_back(draft);
    }
  }
  for (int a = 0; a < nchains; ++a) {
    for (int b = 0; b < nchains; ++b) {
      if (a == b) continue;
      auto& prod = drafts[static_cast<std::size_t>(a)];
      auto& cons = drafts[static_cast<std::size_t>(b)];
      for (int w = 0;; ++w) {
        const int pj = w * k + (k - 1);
        const int cj = (w + 1) * k;
        if (pj >= static_cast<int>(prod.size()) ||
            cj >= static_cast<int>(cons.size())) {
          break;
        }
        if (rng.next_below(2) != 0) continue;
        prod[pj].publish_cross = true;
        cons[cj].inputs.push_back({prod[pj].key, kSlotCross});
      }
    }
  }
  const int nsources = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < nsources; ++i) {
    TaskDraft src;
    src.key = TaskKey{1000, i, 0, 0};
    src.rank =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    const int fanout = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < fanout; ++f) {
      auto& chain =
          drafts[rng.next_below(static_cast<std::uint64_t>(nchains))];
      auto& member = chain[rng.next_below(chain.size())];
      bool duplicate = false;
      for (const auto& flow : member.inputs) {
        duplicate |= flow.producer == src.key && flow.slot == kSlotOut;
      }
      if (!duplicate) member.inputs.push_back({src.key, kSlotOut});
    }
    drafts.push_back({src});
  }
  const int nsinks = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < nsinks; ++i) {
    TaskDraft sink;
    sink.rank =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    sink.key = TaskKey{2000, i, 0, 0};
    const int fanin = 1 + static_cast<int>(rng.next_below(3));
    for (int f = 0; f < fanin; ++f) {
      auto& chain =
          drafts[rng.next_below(static_cast<std::uint64_t>(nchains))];
      auto& member = chain[rng.next_below(chain.size())];
      bool duplicate = false;
      for (const auto& flow : sink.inputs) {
        duplicate |= flow.producer == member.key && flow.slot == kSlotOut;
      }
      if (!duplicate) sink.inputs.push_back({member.key, kSlotOut});
    }
    drafts.push_back({sink});
  }
  for (const auto& group : drafts) {
    for (const auto& draft : group) graph.add_task(make_task(draft));
  }
}

/// Key of the fused task a chain member lands in: last member of its window.
TaskKey fused_home(const std::vector<TaskKey>& chain, std::size_t index,
                   int k) {
  const std::size_t window_end =
      std::min(chain.size() - 1,
               (index / static_cast<std::size_t>(k)) *
                       static_cast<std::size_t>(k) +
                   static_cast<std::size_t>(k) - 1);
  return chain[window_end];
}

std::vector<double> read_result(const rt::Runtime& runtime,
                                const TaskKey& key) {
  const rt::Buffer buffer = runtime.result(key, kSlotOut);
  return *buffer;
}

// --------------------------------------------------------- the properties --

constexpr std::uint64_t kRounds = 200;

TEST(GraphTransform, RandomDagsPreserveStructureAndCounts) {
  for (std::uint64_t seed = 1; seed <= kRounds; ++seed) {
    const DagShape shape = random_fuse_ready_shape(seed);
    SCOPED_TRACE("FAILING SEED=" + std::to_string(seed) +
                 " k=" + std::to_string(shape.k));
    TaskGraph graph;
    materialize(seed, graph);
    const std::size_t before = graph.size();

    const rt::FuseReport report = rt::fuse_supersteps(graph, shape.k);

    // Exact count round-trip: ceil(members / k) tasks per chain, singletons
    // untouched.
    std::size_t expected = shape.singletons.size();
    std::size_t expected_fused_tasks = 0;
    std::size_t expected_fused_members = 0;
    for (const auto& chain : shape.chains) {
      const std::size_t windows =
          (chain.size() + static_cast<std::size_t>(shape.k) - 1) /
          static_cast<std::size_t>(shape.k);
      expected += windows;
      for (std::size_t w = 0; w < windows; ++w) {
        const std::size_t members =
            std::min(chain.size() - w * static_cast<std::size_t>(shape.k),
                     static_cast<std::size_t>(shape.k));
        if (members >= 2) {
          ++expected_fused_tasks;
          expected_fused_members += members;
        }
      }
    }
    EXPECT_EQ(report.tasks_before, before);
    EXPECT_EQ(report.tasks_after, expected);
    EXPECT_EQ(graph.size(), expected);
    EXPECT_EQ(report.chains, shape.chains.size());
    EXPECT_EQ(report.depth, shape.k);
    EXPECT_EQ(report.fused_tasks, expected_fused_tasks);
    EXPECT_EQ(report.fused_members, expected_fused_members);

    // No lost dependence: every original cross-window edge must survive as a
    // direct flow between the corresponding fused tasks.
    std::unordered_map<TaskKey, TaskKey, rt::TaskKeyHash> home;
    for (const auto& chain : shape.chains) {
      for (std::size_t j = 0; j < chain.size(); ++j) {
        home.emplace(chain[j], fused_home(chain, j, shape.k));
      }
    }
    for (const TaskKey& single : shape.singletons) home.emplace(single, single);
    for (const auto& [producer, consumer] : shape.edges) {
      const TaskKey fused_p = home.at(producer);
      const TaskKey fused_c = home.at(consumer);
      if (fused_p == fused_c) continue;  // became in-task staging
      ASSERT_TRUE(graph.contains(fused_c));
      const TaskSpec& spec = graph.spec(graph.index_of(fused_c));
      bool found = false;
      for (const auto& flow : spec.inputs) found |= flow.producer == fused_p;
      EXPECT_TRUE(found) << "edge " << producer.to_string() << " -> "
                         << consumer.to_string()
                         << " lost by fusing: no flow "
                         << fused_p.to_string() << " -> "
                         << fused_c.to_string();
    }

    // No edge inversion: the fused graph still seals (acyclic, ranks valid).
    EXPECT_NO_THROW(graph.seal(shape.nranks));
  }
}

TEST(GraphTransform, RandomDagsComputeBitIdenticalResults) {
  // The semantic property: run the original and the fused graph and compare
  // every observable output bit for bit, across multi-rank placements and
  // both schedulers. A sample of the seed pool keeps the suite fast; the
  // structural sweep above covers all 200.
  for (std::uint64_t seed = 1; seed <= kRounds; seed += 7) {
    const DagShape shape = random_fuse_ready_shape(seed);
    SCOPED_TRACE("FAILING SEED=" + std::to_string(seed) +
                 " k=" + std::to_string(shape.k));

    TaskGraph original;
    materialize(seed, original);
    rt::Config config{shape.nranks, 2, true, false};
    config.scheduler = seed % 2 == 0 ? rt::SchedPolicy::WorkStealing
                                     : rt::SchedPolicy::PriorityFifo;
    rt::Runtime baseline(config);
    baseline.run(original);
    std::vector<std::vector<double>> expected;
    for (const TaskKey& key : shape.observed) {
      expected.push_back(read_result(baseline, key));
    }

    TaskGraph fused_graph;
    materialize(seed, fused_graph);
    rt::fuse_supersteps(fused_graph, shape.k);
    rt::Runtime fused(config);
    fused.run(fused_graph);
    for (std::size_t i = 0; i < shape.observed.size(); ++i) {
      EXPECT_EQ(expected[i], read_result(fused, shape.observed[i]))
          << "observable " << shape.observed[i].to_string()
          << " diverged after fusing";
    }
  }
}

TEST(GraphTransform, DepthOneIsIdentity) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("FAILING SEED=" + std::to_string(seed));
    TaskGraph graph;
    materialize(seed, graph);
    TaskGraph reference;
    materialize(seed, reference);

    const rt::FuseReport report = rt::fuse_supersteps(graph, 1);
    EXPECT_EQ(report.fused_tasks, 0u);
    EXPECT_EQ(report.tasks_before, report.tasks_after);
    ASSERT_EQ(graph.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const TaskSpec& want = reference.spec(i);
      ASSERT_TRUE(graph.contains(want.key));
      const TaskSpec& got = graph.spec(graph.index_of(want.key));
      EXPECT_EQ(got.inputs.size(), want.inputs.size());
      EXPECT_EQ(got.rank, want.rank);
      EXPECT_EQ(got.chain, want.chain);
      EXPECT_EQ(got.chain_step, want.chain_step);
    }
  }
}

// ------------------------------------------------------- illegal requests --

/// Two chains exchanging EVERY step — the classic (non-fuse-ready) stencil
/// shape. Fusing k > 1 must detect the window-level cycle.
void build_mutual_exchange(TaskGraph& graph, int len) {
  for (int c = 0; c < 2; ++c) {
    for (int j = 0; j < len; ++j) {
      TaskDraft draft;
      draft.key = TaskKey{static_cast<std::uint32_t>(10 + c), j, 0, 0};
      draft.chain = static_cast<std::uint64_t>(c) + 1;
      draft.chain_step = j + 1;
      if (j > 0) {
        draft.inputs.push_back(
            {TaskKey{static_cast<std::uint32_t>(10 + c), j - 1, 0, 0},
             kSlotOut});
        draft.inputs.push_back(
            {TaskKey{static_cast<std::uint32_t>(10 + (1 - c)), j - 1, 0, 0},
             kSlotCross});
      }
      draft.publish_cross = j + 1 < len;
      graph.add_task(make_task(draft));
    }
  }
}

TEST(GraphTransform, MidWindowExchangeThrowsAndLeavesGraphUntouched) {
  TaskGraph graph;
  build_mutual_exchange(graph, 6);
  const std::size_t before = graph.size();
  EXPECT_THROW(rt::fuse_supersteps(graph, 2), rt::GraphTransformError);
  EXPECT_THROW(rt::fuse_supersteps(graph, 3), rt::GraphTransformError);
  EXPECT_EQ(graph.size(), before);

  // The untouched graph still runs and matches a never-touched copy.
  rt::Runtime a(rt::Config{1, 2, true, false});
  a.run(graph);
  TaskGraph reference;
  build_mutual_exchange(reference, 6);
  rt::Runtime b(rt::Config{1, 2, true, false});
  b.run(reference);
  EXPECT_EQ(read_result(a, TaskKey{10, 5, 0, 0}),
            read_result(b, TaskKey{10, 5, 0, 0}));
}

TEST(GraphTransform, BackwardIntraWindowEdgeThrows) {
  // step 1 reads step 3's output: acyclic as a graph, but fusing all three
  // into one task would run the consumer before its producer.
  TaskGraph graph;
  for (int j = 0; j < 3; ++j) {
    TaskDraft draft;
    draft.key = TaskKey{10, j, 0, 0};
    draft.chain = 1;
    draft.chain_step = j + 1;
    graph.add_task(make_task(draft));
  }
  TaskDraft consumer;
  consumer.key = TaskKey{11, 0, 0, 0};
  consumer.chain = 1;
  consumer.chain_step = 0;  // earliest member, depends on the latest
  consumer.inputs.push_back({TaskKey{10, 2, 0, 0}, kSlotOut});
  graph.add_task(make_task(consumer));
  EXPECT_THROW(rt::fuse_supersteps(graph, 4), rt::GraphTransformError);
  EXPECT_EQ(graph.size(), 4u);
}

TEST(GraphTransform, MixedRanksInsideWindowThrow) {
  TaskGraph graph;
  for (int j = 0; j < 2; ++j) {
    TaskDraft draft;
    draft.key = TaskKey{10, j, 0, 0};
    draft.chain = 1;
    draft.chain_step = j + 1;
    draft.rank = j;  // window members on different ranks
    graph.add_task(make_task(draft));
  }
  EXPECT_THROW(rt::fuse_supersteps(graph, 2), rt::GraphTransformError);
  EXPECT_EQ(graph.size(), 2u);
}

TEST(GraphTransform, DuplicateChainStepThrows) {
  TaskGraph graph;
  for (int j = 0; j < 2; ++j) {
    TaskDraft draft;
    draft.key = TaskKey{10, j, 0, 0};
    draft.chain = 1;
    draft.chain_step = 7;  // both claim the same position
    graph.add_task(make_task(draft));
  }
  EXPECT_THROW(rt::fuse_supersteps(graph, 2), rt::GraphTransformError);
}

TEST(GraphTransform, SealedGraphAndBadDepthAreRejected) {
  TaskGraph graph;
  TaskDraft draft;
  draft.key = TaskKey{10, 0, 0, 0};
  draft.chain = 1;
  draft.chain_step = 1;
  graph.add_task(make_task(draft));
  EXPECT_THROW(rt::fuse_supersteps(graph, 0), std::invalid_argument);
  EXPECT_THROW(rt::fuse_supersteps(graph, -3), std::invalid_argument);
  graph.seal(1);
  EXPECT_THROW(rt::fuse_supersteps(graph, 2), rt::GraphTransformError);
}

// ------------------------------------------------------ real stencil DAGs --

TEST(GraphTransformStencil, FuseReadyGraphsRoundTripForEveryNamedSpec) {
  // Build the fuse-ready graph of every named spec (plus the classic
  // 5-point), apply the rewrite at the builder's advertised window, and
  // check the exact count identity tiles * (1 + ceil(stage_iters / W)).
  std::vector<std::string> cases = spec::spec_names();
  cases.emplace_back("classic");
  for (const std::string& name : cases) {
    SCOPED_TRACE("spec=" + name);
    const int iters = 4;
    stencil::Problem problem =
        name == "classic"
            ? stencil::random_problem(24, 24, iters, 7)
            : stencil::spec_problem(spec::spec_by_name(name), 24, 24, iters,
                                    spec::spec_by_name(name).rank == 3 ? 2 : 1,
                                    7);
    stencil::DistConfig config;
    config.decomp = {12, 12, 2, 2};
    config.steps = 1;
    config.fuse_depth = 2;
    const int nstages =
        name == "classic" ? 1 : spec::stage_count(spec::spec_by_name(name));
    const int window = config.steps * nstages * config.fuse_depth;
    if (window > 12) continue;  // would be rejected by validation, skip

    TaskGraph graph;
    const stencil::SolveSubgraph subgraph =
        stencil::add_solve_subgraph(graph, problem, config);
    ASSERT_EQ(subgraph.fuse_window(), window);
    const std::size_t tiles = 4;
    const int stage_iters = iters * nstages;
    EXPECT_EQ(graph.size(),
              tiles * (1 + static_cast<std::size_t>(stage_iters)));

    const rt::FuseReport report = rt::fuse_supersteps(graph, window);
    EXPECT_EQ(report.chains, tiles);
    EXPECT_EQ(graph.size(),
              tiles * (1 + static_cast<std::size_t>(
                               (stage_iters + window - 1) / window)));
    EXPECT_NO_THROW(graph.seal(subgraph.nodes()));
  }
}

TEST(GraphTransformStencil, ClassicGraphsAreNotFuseReady) {
  // The classic per-step graph exchanges every superstep; mechanically
  // fusing it MUST be detected as a window-level cycle, not silently
  // miscompiled — this is the reason the builder emits a dedicated
  // fuse-ready shape when fuse_depth > 1.
  const stencil::Problem problem = stencil::random_problem(16, 16, 4, 3);
  stencil::DistConfig config;
  config.decomp = {8, 8, 1, 1};  // 2x2 tiles, all local: exchanges every step
  config.steps = 1;
  rt::TaskGraph graph;
  const stencil::SolveSubgraph subgraph =
      stencil::add_solve_subgraph(graph, problem, config);
  ASSERT_EQ(subgraph.fuse_window(), 1);
  EXPECT_THROW(rt::fuse_supersteps(graph, 2), rt::GraphTransformError);
}

TEST(GraphTransformStencil, FusedRunsMatchSerialBitForBit) {
  // End-to-end sanity here (the fuzz suites carry the heavy sweeps): fused
  // wavefronts across step sizes, schedulers and persistent channels equal
  // the serial reference exactly, and remote traffic matches the equivalent
  // single-superstep window (steps * fuse is all that matters on the wire).
  const stencil::Problem problem = stencil::random_problem(24, 28, 12, 11);
  const stencil::Grid2D expected = stencil::solve_serial(problem);

  stencil::DistConfig window_cfg;
  window_cfg.decomp = {6, 7, 2, 2};
  window_cfg.steps = 4;
  const auto window_run = stencil::run_distributed(problem, window_cfg);

  for (const int steps : {1, 2, 4}) {
    for (const bool persistent : {false, true}) {
      stencil::DistConfig config;
      config.decomp = {6, 7, 2, 2};
      config.steps = steps;
      config.fuse_depth = 4 / steps;
      config.workers_per_rank = 2;
      config.persistent = persistent;
      config.scheduler = persistent ? rt::SchedPolicy::WorkStealing
                                    : rt::SchedPolicy::PriorityFifo;
      SCOPED_TRACE(test_support::describe(config));
      const auto result = stencil::run_distributed(problem, config);
      EXPECT_TRUE(test_support::grids_match(expected, result.grid));
      if (!persistent) {
        // One exchange per window: same message count and bytes as the
        // plain CA run whose superstep equals the whole window.
        EXPECT_EQ(result.stats.messages, window_run.stats.messages);
        EXPECT_EQ(result.stats.bytes, window_run.stats.bytes);
      }
    }
  }
}

TEST(GraphTransformStencil, FusedRunValidationAndMetadata) {
  const stencil::Problem problem = stencil::random_problem(24, 24, 6, 5);
  {
    stencil::DistConfig config;
    config.decomp = {12, 12, 2, 2};
    config.fuse_depth = 0;
    EXPECT_THROW(stencil::run_distributed(problem, config),
                 std::invalid_argument);
  }
  {
    stencil::DistConfig config;
    config.decomp = {12, 12, 2, 2};
    config.fuse_depth = 2;
    config.kernel_ratio = 0.5;
    EXPECT_THROW(stencil::run_distributed(problem, config),
                 std::invalid_argument);
  }
  {
    // Window exceeding the smallest tile extent is rejected up front.
    stencil::DistConfig config;
    config.decomp = {6, 6, 2, 2};
    config.steps = 4;
    config.fuse_depth = 2;
    EXPECT_THROW(stencil::run_distributed(problem, config),
                 std::invalid_argument);
  }
  {
    // The Temporal kernel absorbs the fuse factor into its in-kernel window
    // (no graph rewrite), and fused tasks carry the fused<m>| klass tag.
    stencil::DistConfig config;
    config.decomp = {12, 12, 2, 2};
    config.steps = 3;
    config.fuse_depth = 2;
    config.kernel = stencil::KernelVariant::Temporal;
    config.trace = true;
    const auto result = stencil::run_distributed(problem, config);
    EXPECT_TRUE(test_support::grids_match(stencil::solve_serial(problem),
                                          result.grid));
  }
  {
    stencil::DistConfig config;
    config.decomp = {12, 12, 2, 2};
    config.steps = 3;
    config.fuse_depth = 2;
    config.trace = true;
    const auto result = stencil::run_distributed(problem, config);
    EXPECT_TRUE(test_support::grids_match(stencil::solve_serial(problem),
                                          result.grid));
    // Trace events only exist when observability is compiled in.
    if constexpr (obs::kEnabled) {
      bool saw_fused_klass = false;
      for (const auto& event : result.trace_events) {
        saw_fused_klass |= event.klass.rfind("fused", 0) == 0;
      }
      EXPECT_TRUE(saw_fused_klass);
    }
  }
}

}  // namespace
}  // namespace repro
