// Optimized-kernel equivalence: every variant in kernel_opt.hpp must match
// the scalar jacobi5 reference BIT FOR BIT (EXPECT_EQ on doubles, tolerance
// 0.0). The variants only reorder independent per-point updates or change
// the instruction selection (AVX2 without FMA), never the per-point rounding
// sequence, so exact equality is the contract — asymmetric test_weights and
// odd tile shapes make any directional or tail-handling bug change the bits.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "stencil/dist_stencil.hpp"
#include "stencil/kernel_opt.hpp"
#include "stencil/serial.hpp"

namespace repro::stencil {
namespace {

/// Deterministic, irregular fill so every cell is distinct and no value is
/// exactly representable in fewer bits than a full double.
std::vector<double> irregular_fill(const TileGeom& g, int salt) {
  std::vector<double> buf(g.size());
  for (int i = -g.gn; i < g.h + g.gs; ++i) {
    for (int j = -g.gw; j < g.w + g.ge; ++j) {
      buf[g.idx(i, j)] =
          std::sin(0.137 * i + 0.291 * j + 0.611 * salt) + 1e-3 * i - 7e-4 * j;
    }
  }
  return buf;
}

struct Rect {
  int r0, r1, c0, c1;
};

/// Geometries chosen so h, w, and every ghost depth differ (asymmetric),
/// with odd extents and widths straddling the AVX2 vector width.
const TileGeom kGeoms[] = {
    {7, 5, 1, 1, 1, 1},      // odd, smaller than one vector
    {13, 17, 2, 1, 3, 2},    // odd, asymmetric ghosts
    {9, 23, 4, 4, 4, 4},     // deep CA-style ghost band
    {6, 32, 1, 2, 2, 1},     // width a multiple of the vector width
};

Rect core_rect(const TileGeom& g) { return {0, g.h, 0, g.w}; }

/// A rectangle reaching into the ghost region on every side that has depth
/// for it (the CA redundant-compute shape), leaving one layer to read from.
Rect ghost_rect(const TileGeom& g) {
  return {-(g.gn - 1), g.h + (g.gs - 1), -(g.gw - 1), g.w + (g.ge - 1)};
}

class KernelOptEquivalence : public ::testing::TestWithParam<KernelVariant> {};

TEST_P(KernelOptEquivalence, MatchesScalarBitForBit) {
  const KernelVariant variant = GetParam();
  const Stencil5 w = Stencil5::test_weights();
  int salt = 0;
  for (const TileGeom& g : kGeoms) {
    for (const Rect r : {core_rect(g), ghost_rect(g)}) {
      if (r.r1 <= r.r0 || r.c1 <= r.c0) continue;
      if (r.r0 - 1 < -g.gn || r.r1 + 1 > g.h + g.gs || r.c0 - 1 < -g.gw ||
          r.c1 + 1 > g.w + g.ge) {
        continue;  // ghost_rect needs depth >= 2 to leave a read layer
      }
      const std::vector<double> in = irregular_fill(g, ++salt);
      std::vector<double> expected(g.size(), -1.0);
      std::vector<double> actual(g.size(), -1.0);
      jacobi5(in.data(), expected.data(), g, w, r.r0, r.r1, r.c0, r.c1);

      // Both AVX2 forced off and (if the CPU has it) forced on, plus tiny
      // blocks so the blocked traversal crosses many block boundaries.
      for (const int force : {0, 1}) {
        for (const auto& [br, bc] : {std::pair{64, 1024}, std::pair{2, 3}}) {
          KernelTuning tuning;
          tuning.force_avx2 = force;
          tuning.block_rows = br;
          tuning.block_cols = bc;
          std::fill(actual.begin(), actual.end(), -1.0);
          jacobi5_opt(in.data(), actual.data(), g, w, r.r0, r.r1, r.c0, r.c1,
                      variant, tuning);
          for (std::size_t idx = 0; idx < expected.size(); ++idx) {
            ASSERT_EQ(expected[idx], actual[idx])
                << "variant=" << kernel_variant_name(variant)
                << " force_avx2=" << force << " block=" << br << "x" << bc
                << " idx=" << idx;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, KernelOptEquivalence,
                         ::testing::Values(KernelVariant::Scalar,
                                           KernelVariant::Vector,
                                           KernelVariant::Blocked,
                                           KernelVariant::Temporal),
                         [](const auto& info) {
                           return std::string(kernel_variant_name(info.param));
                         });

/// Reference for jacobi5_temporal: m plain jacobi5 sweeps over the same
/// shrinking regions through full-buffer ping-pong copies.
std::vector<double> temporal_reference(const std::vector<double>& in,
                                       const TileGeom& g, const Stencil5& w,
                                       Rect r, int m,
                                       const std::array<bool, 4>& shrink) {
  std::vector<double> cur = in;
  std::vector<double> next = in;
  for (int t = 0; t < m; ++t) {
    const int r0 = r.r0 + (shrink[0] ? t : 0);
    const int r1 = r.r1 - (shrink[1] ? t : 0);
    const int c0 = r.c0 + (shrink[2] ? t : 0);
    const int c1 = r.c1 - (shrink[3] ? t : 0);
    next = cur;
    jacobi5(cur.data(), next.data(), g, w, r0, r1, c0, c1);
    std::swap(cur, next);
  }
  return cur;
}

class TemporalDepth : public ::testing::TestWithParam<int> {};

TEST_P(TemporalDepth, MatchesIteratedScalarOnShrinkingRegions) {
  const int m = GetParam();
  const Stencil5 w = Stencil5::test_weights();
  const std::array<std::array<bool, 4>, 3> shrink_sets = {{
      {true, true, true, true},     // interior CA tile: all sides shrink
      {true, false, false, true},   // mixed: two deep sides, two on the ring
      {false, false, false, false}  // whole-domain Dirichlet case
  }};
  // Ghosts deep enough for m shrink layers plus one read layer.
  const TileGeom g{9, 11, m + 1, m + 1, m + 1, m + 1};
  const std::vector<double> in = irregular_fill(g, 42 + m);

  for (const auto& shrink : shrink_sets) {
    const Rect r{shrink[0] ? -m : 0, g.h + (shrink[1] ? m : 0),
                 shrink[2] ? -m : 0, g.w + (shrink[3] ? m : 0)};
    const std::vector<double> expected =
        temporal_reference(in, g, w, r, m, shrink);
    std::vector<double> out = in;  // unwritten cells must persist
    jacobi5_temporal(in.data(), out.data(), g, w, r.r0, r.r1, r.c0, r.c1, m,
                     shrink);
    // Compare over the final region only: jacobi5_temporal contracts to
    // write just the last step's rectangle.
    const int fr0 = r.r0 + (shrink[0] ? m - 1 : 0);
    const int fr1 = r.r1 - (shrink[1] ? m - 1 : 0);
    const int fc0 = r.c0 + (shrink[2] ? m - 1 : 0);
    const int fc1 = r.c1 - (shrink[3] ? m - 1 : 0);
    for (int i = fr0; i < fr1; ++i) {
      for (int j = fc0; j < fc1; ++j) {
        ASSERT_EQ(expected[g.idx(i, j)], out[g.idx(i, j)])
            << "m=" << m << " shrink={" << shrink[0] << shrink[1] << shrink[2]
            << shrink[3] << "} cell (" << i << "," << j << ")";
      }
    }
    // Cells outside the written region keep their prior contents.
    for (int j = -g.gw; j < g.w + g.ge; ++j) {
      ASSERT_EQ(in[g.idx(-g.gn, j)], out[g.idx(-g.gn, j)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, TemporalDepth, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param);
                         });

TEST(KernelOptApi, VariantNamesRoundTrip) {
  for (KernelVariant v : kAllKernelVariants) {
    EXPECT_EQ(parse_kernel_variant(kernel_variant_name(v)), v);
  }
  EXPECT_THROW(parse_kernel_variant("turbo"), std::invalid_argument);
  EXPECT_THROW(parse_kernel_variant(""), std::invalid_argument);
}

TEST(KernelOptApi, Avx2ForcingIsRespected) {
  KernelTuning off;
  off.force_avx2 = 0;
  EXPECT_FALSE(avx2_selected(off));
  KernelTuning on;
  on.force_avx2 = 1;
  // Forcing on still requires hardware support; never claims phantom AVX2.
  EXPECT_EQ(avx2_selected(on), avx2_available());
}

TEST(KernelOptApi, TemporalRejectsImpossibleRegions) {
  const TileGeom g{4, 4, 2, 2, 2, 2};
  const std::vector<double> in(g.size(), 1.0);
  std::vector<double> out(g.size(), 0.0);
  const std::array<bool, 4> all{true, true, true, true};
  EXPECT_THROW(jacobi5_temporal(in.data(), out.data(), g,
                                Stencil5::test_weights(), 0, 4, 0, 4, 0, all),
               std::invalid_argument);
  // Shrinking 4 -> 0 cells before the last step.
  EXPECT_THROW(jacobi5_temporal(in.data(), out.data(), g,
                                Stencil5::test_weights(), 0, 4, 0, 4, 3, all),
               std::invalid_argument);
}

TEST(SolveSerialOpt, AllVariantsMatchSolveSerial) {
  const Problem problem = random_problem(21, 17, 9);
  const Grid2D expected = solve_serial(problem);
  for (KernelVariant v : kAllKernelVariants) {
    for (const int fuse : {1, 3, 4}) {
      const Grid2D actual = solve_serial_opt(problem, v, {}, fuse);
      EXPECT_EQ(Grid2D::max_abs_diff(expected, actual), 0.0)
          << kernel_variant_name(v) << " fuse=" << fuse;
    }
  }
}

TEST(SolveSerialOpt, RejectsShapeAndCoefficientProblems) {
  Problem coeff_problem = random_problem(8, 8, 2);
  coeff_problem.coefficient = [](long, long) {
    return std::array<double, kCoeffPlanes>{0.2, 0.2, 0.2, 0.2, 0.2};
  };
  EXPECT_THROW(solve_serial_opt(coeff_problem, KernelVariant::Vector),
               std::invalid_argument);
}

/// Dist-level invariance: the CA result is identical regardless of which
/// kernel variant computes it — including the fused Temporal graph, whose
/// task structure (one task per superstep, deep bands on local sides too)
/// differs radically from the step-per-task graph.
class DistVariantInvariance : public ::testing::TestWithParam<KernelVariant> {
};

TEST_P(DistVariantInvariance, MatchesSerialBitForBit) {
  const KernelVariant variant = GetParam();
  const Problem problem = random_problem(19, 23, 8);
  const Grid2D expected = solve_serial(problem);

  DistConfig config;
  config.decomp = {5, 4, 2, 2};
  config.steps = 3;  // bounded by the smallest remainder tile (23 % 4 = 3)
  config.workers_per_rank = 2;
  config.kernel = variant;
  config.tuning.block_rows = 3;  // tiny blocks: cross many block edges
  config.tuning.block_cols = 5;

  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0)
      << kernel_variant_name(variant);
  EXPECT_GE(result.computed_points, result.nominal_points);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, DistVariantInvariance,
                         ::testing::Values(KernelVariant::Scalar,
                                           KernelVariant::Vector,
                                           KernelVariant::Blocked,
                                           KernelVariant::Temporal),
                         [](const auto& info) {
                           return std::string(kernel_variant_name(info.param));
                         });

TEST(DistTemporal, FusedGraphCoversBaseAndRaggedSupersteps) {
  // steps=1 (degenerate fusion: per-iteration tasks with band exchange on
  // every side) and a ragged final superstep (iters % steps != 0).
  for (const auto& [iters, steps] : {std::pair{5, 1}, std::pair{7, 3}}) {
    const Problem problem = random_problem(18, 18, iters);
    DistConfig config;
    config.decomp = {6, 6, 3, 3};
    config.steps = steps;
    config.kernel = KernelVariant::Temporal;
    const DistResult result = run_distributed(problem, config);
    const Grid2D expected = solve_serial(problem);
    EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0)
        << "iters=" << iters << " steps=" << steps;
  }
}

TEST(DistTemporal, SingleNodeAndSingleTile) {
  // All sides local (one node, many tiles) and no sides at all (one tile).
  for (const auto& [decomp_mb, nodes] : {std::pair{4, 1}, std::pair{16, 1}}) {
    const Problem problem = random_problem(16, 16, 8);
    DistConfig config;
    config.decomp = {decomp_mb, decomp_mb, nodes, nodes};
    config.steps = 4;
    config.kernel = KernelVariant::Temporal;
    const DistResult result = run_distributed(problem, config);
    const Grid2D expected = solve_serial(problem);
    EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0)
        << "tile=" << decomp_mb;
  }
}

TEST(DistTemporal, RejectsUnsupportedConfigurations) {
  const Problem problem = random_problem(16, 16, 4);
  DistConfig config;
  config.decomp = {8, 8, 2, 2};
  config.steps = 2;
  config.kernel = KernelVariant::Temporal;

  DistConfig ratio_config = config;
  ratio_config.kernel_ratio = 0.5;
  EXPECT_THROW(run_distributed(problem, ratio_config), std::invalid_argument);

  Problem coeff_problem = problem;
  coeff_problem.coefficient = [](long, long) {
    return std::array<double, kCoeffPlanes>{0.2, 0.2, 0.2, 0.2, 0.2};
  };
  EXPECT_THROW(run_distributed(coeff_problem, config), std::invalid_argument);
}

}  // namespace
}  // namespace repro::stencil
