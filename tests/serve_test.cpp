// Unit tests for the serve subsystem's pieces in isolation: admission
// quotas, the deficit-round-robin fair queue, and the serve_report schema.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/admission.hpp"
#include "serve/fair_queue.hpp"
#include "serve/serve.hpp"
#include "serve/serve_report.hpp"
#include "stencil/problem.hpp"

namespace repro::serve {
namespace {

TEST(Admission, GlobalCapRejectsThenReleaseRestores) {
  AdmissionConfig config;
  config.max_queued = 2;
  AdmissionController admission(config);
  EXPECT_EQ(admission.try_admit("a", 10), RejectReason::None);
  EXPECT_EQ(admission.try_admit("b", 10), RejectReason::None);
  EXPECT_EQ(admission.try_admit("c", 10), RejectReason::QueueFull);
  admission.release("a", 10);
  EXPECT_EQ(admission.try_admit("c", 10), RejectReason::None);
  EXPECT_EQ(admission.stats().queued, 2);
}

TEST(Admission, PerTenantJobAndCostQuotas) {
  AdmissionConfig config;
  config.max_queued_per_tenant = 2;
  config.max_cost_per_tenant = 100;
  AdmissionController admission(config);
  EXPECT_EQ(admission.try_admit("a", 60), RejectReason::None);
  // Second job fits the job quota but overflows the cost quota.
  EXPECT_EQ(admission.try_admit("a", 60), RejectReason::TenantCost);
  EXPECT_EQ(admission.try_admit("a", 40), RejectReason::None);
  EXPECT_EQ(admission.try_admit("a", 1), RejectReason::TenantQuota);
  // Other tenants are unaffected.
  EXPECT_EQ(admission.try_admit("b", 60), RejectReason::None);
}

TEST(Admission, TenantLimitBoundsDistinctTenants) {
  AdmissionConfig config;
  config.max_tenants = 2;
  AdmissionController admission(config);
  EXPECT_EQ(admission.try_admit("a", 1), RejectReason::None);
  EXPECT_EQ(admission.try_admit("b", 1), RejectReason::None);
  EXPECT_EQ(admission.try_admit("c", 1), RejectReason::TenantLimit);
  // Known tenants keep their identity even when drained.
  admission.release("a", 1);
  EXPECT_EQ(admission.try_admit("a", 1), RejectReason::None);
  EXPECT_TRUE(admission.knows("a"));
  EXPECT_FALSE(admission.knows("c"));
}

TEST(Admission, CloseRejectsEverything) {
  AdmissionController admission(AdmissionConfig{});
  admission.close();
  EXPECT_EQ(admission.try_admit("a", 1), RejectReason::ShuttingDown);
  EXPECT_TRUE(admission.closed());
}

TEST(Admission, NonPositiveCostIsBadRequest) {
  AdmissionController admission(AdmissionConfig{});
  EXPECT_EQ(admission.try_admit("a", 0), RejectReason::BadRequest);
  EXPECT_EQ(admission.try_admit("a", -5), RejectReason::BadRequest);
}

TEST(FairQueue, RoundRobinsAcrossLanesWithEqualQuanta) {
  FairQueue<int> queue(/*quantum=*/10);
  for (int i = 0; i < 3; ++i) queue.push(0, 10, 100 + i);
  for (int i = 0; i < 3; ++i) queue.push(1, 10, 200 + i);
  // Each wave of 2 should take one item from each lane.
  for (int round = 0; round < 3; ++round) {
    const auto wave = queue.pop_wave(2, /*solo_threshold=*/0);
    ASSERT_EQ(wave.size(), 2u);
    EXPECT_EQ(wave[0] / 100 + wave[1] / 100, 3) << "round " << round;
  }
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueue, DeficitLetsExpensiveItemsThroughEventually) {
  FairQueue<int> queue(/*quantum=*/10);
  queue.push(0, 35, 1);  // needs 4 visits' credit
  queue.push(1, 10, 2);
  const auto first = queue.pop_wave(4, 0);
  // The cheap lane-1 item fits immediately; the expensive one does not.
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 2);
  const auto second = queue.pop_wave(4, 0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 1);  // deficit accumulated across cycles
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueue, LargeItemsDispatchAlone) {
  FairQueue<int> queue(/*quantum=*/100);
  queue.push(0, 10, 1);
  queue.push(0, 50, 2);  // >= solo threshold
  queue.push(0, 10, 3);
  const auto first = queue.pop_wave(8, /*solo_threshold=*/50);
  // The small leader is batched; the large item must not join it.
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 1);
  const auto second = queue.pop_wave(8, 50);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 2);
  const auto third = queue.pop_wave(8, 50);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0], 3);
}

TEST(FairQueue, PushFrontResumesAheadOfLaneMates) {
  FairQueue<int> queue(/*quantum=*/100);
  queue.push(0, 10, 1);
  queue.push(0, 10, 2);
  queue.push_front(0, 10, 3);
  const auto wave = queue.pop_wave(3, 0);
  ASSERT_EQ(wave.size(), 3u);
  EXPECT_EQ(wave[0], 3);
  EXPECT_EQ(wave[1], 1);
  EXPECT_EQ(wave[2], 2);
}

TEST(FairQueue, DrainAllEmptiesEverything) {
  FairQueue<int> queue(10);
  queue.push(0, 5, 1);
  queue.push(2, 5, 2);
  const auto all = queue.drain_all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.pop_wave(4, 0).empty());
}

TEST(RequestCost, IsPointsTimesIterations) {
  SolveRequest request;
  request.problem = stencil::random_problem(12, 10, 3);
  EXPECT_EQ(request_cost(request), 12LL * 10 * 3);
}

TEST(ServeReportSchema, RoundTripsAndValidates) {
  ServeReport report("unit_test");
  report.set_param("nodes", 4);
  report.set_param("scheduler", "ws");
  obs::Json row = obs::Json::object();
  row["tenant"] = "alpha";
  row["submitted"] = 10;
  row["completed"] = 9;
  row["p99_latency_s"] = 0.125;
  report.add_tenant(std::move(row));
  report.set_total("goodput_points_per_s", 1.5e6);
  report.set_total("fairness_ratio", 1.1);
  obs::MetricsRegistry registry;
  registry.counter("serve_requests_total", {{"tenant", "alpha"}})->add(10);
  report.add_metrics(registry);

  std::string error;
  EXPECT_TRUE(validate_serve_report(report.to_string(), &error)) << error;
}

TEST(ServeReportSchema, RejectsMissingOrMalformedFields) {
  std::string error;
  EXPECT_FALSE(validate_serve_report("{", &error));
  EXPECT_FALSE(validate_serve_report("{\"schema\":\"nope\"}", &error));

  // Valid except the tenant row is missing "completed".
  const std::string missing =
      "{\"schema\":\"repro.serve_report/v1\",\"name\":\"x\","
      "\"params\":{},\"tenants\":[{\"tenant\":\"a\",\"submitted\":1}],"
      "\"totals\":{},\"metrics\":{\"counters\":[],\"gauges\":[],"
      "\"histograms\":[]}}";
  EXPECT_FALSE(validate_serve_report(missing, &error));
  EXPECT_NE(error.find("completed"), std::string::npos) << error;

  // Non-scalar value inside totals.
  const std::string nested =
      "{\"schema\":\"repro.serve_report/v1\",\"name\":\"x\","
      "\"params\":{},\"tenants\":[],\"totals\":{\"bad\":[1]},"
      "\"metrics\":{\"counters\":[],\"gauges\":[],\"histograms\":[]}}";
  EXPECT_FALSE(validate_serve_report(nested, &error));
}

TEST(RejectReasonNames, AreStableStrings) {
  EXPECT_STREQ(reject_reason_name(RejectReason::None), "none");
  EXPECT_STREQ(reject_reason_name(RejectReason::QueueFull), "queue_full");
  EXPECT_STREQ(reject_reason_name(RejectReason::TenantLimit), "tenant_limit");
  EXPECT_STREQ(job_status_name(JobStatus::Completed), "completed");
  EXPECT_STREQ(job_status_name(JobStatus::Cancelled), "cancelled");
}

}  // namespace
}  // namespace repro::serve
