#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace repro::rt {
namespace {

TaskKey key(std::uint32_t type, int a = 0, int b = 0, int c = 0) {
  return TaskKey{type, a, b, c};
}

TEST(TaskKey, EqualityAndHashing) {
  EXPECT_EQ(key(1, 2, 3, 4), key(1, 2, 3, 4));
  EXPECT_NE(key(1, 2, 3, 4), key(1, 2, 3, 5));
  TaskKeyHash hash;
  EXPECT_EQ(hash(key(1, 2, 3, 4)), hash(key(1, 2, 3, 4)));
  EXPECT_NE(hash(key(1, 2, 3, 4)), hash(key(2, 2, 3, 4)));
}

TEST(TaskGraph, RejectsDuplicateKeysAndMissingProducers) {
  TaskGraph graph;
  TaskSpec a;
  a.key = key(1);
  a.body = [](TaskContext&) {};
  graph.add_task(a);
  EXPECT_THROW(graph.add_task(a), std::invalid_argument);

  TaskSpec b;
  b.key = key(2);
  b.inputs = {{key(99), 0}};
  b.body = [](TaskContext&) {};
  graph.add_task(b);
  EXPECT_THROW(graph.seal(1), std::runtime_error);
}

TEST(TaskGraph, RejectsCycles) {
  TaskGraph graph;
  TaskSpec a;
  a.key = key(1);
  a.inputs = {{key(2), 0}};
  a.body = [](TaskContext&) {};
  TaskSpec b;
  b.key = key(2);
  b.inputs = {{key(1), 0}};
  b.body = [](TaskContext&) {};
  graph.add_task(a);
  graph.add_task(b);
  EXPECT_THROW(graph.seal(1), std::runtime_error);
}

TEST(TaskGraph, RejectsSelfLoopAndBadRank) {
  {
    TaskGraph graph;
    TaskSpec a;
    a.key = key(1);
    a.inputs = {{key(1), 0}};
    a.body = [](TaskContext&) {};
    graph.add_task(a);
    EXPECT_THROW(graph.seal(1), std::runtime_error);
  }
  {
    TaskGraph graph;
    TaskSpec a;
    a.key = key(1);
    a.rank = 3;
    a.body = [](TaskContext&) {};
    graph.add_task(a);
    EXPECT_THROW(graph.seal(2), std::runtime_error);
  }
}

TEST(TaskGraph, ConsumerEdgesAndFanout) {
  TaskGraph graph;
  TaskSpec producer;
  producer.key = key(1);
  producer.body = [](TaskContext& ctx) { ctx.publish(0, {1.0}); };
  graph.add_task(producer);
  for (int i = 0; i < 3; ++i) {
    TaskSpec consumer;
    consumer.key = key(2, i);
    consumer.inputs = {{key(1), 0}};
    consumer.body = [](TaskContext&) {};
    graph.add_task(consumer);
  }
  graph.seal(1);
  EXPECT_EQ(graph.consumers(graph.index_of(key(1))).size(), 3u);
  EXPECT_EQ(graph.slot_fanout(graph.index_of(key(1)), 0), 3u);
  EXPECT_EQ(graph.slot_fanout(graph.index_of(key(1)), 1), 0u);
}

// Build a chain: source publishes {1,2,3}; each stage adds 1 to every
// element; verify the final buffer. Stages alternate ranks to exercise remote
// messaging.
TEST(Runtime, ChainAcrossRanksComputesCorrectly) {
  TaskGraph graph;
  TaskSpec source;
  source.key = key(0);
  source.rank = 0;
  source.body = [](TaskContext& ctx) {
    ctx.publish(0, std::vector<double>{1.0, 2.0, 3.0});
  };
  graph.add_task(source);

  constexpr int kStages = 6;
  for (int s = 1; s <= kStages; ++s) {
    TaskSpec stage;
    stage.key = key(0, s);
    stage.rank = s % 2;
    stage.inputs = {{s == 1 ? key(0) : key(0, s - 1), 0}};
    stage.body = [](TaskContext& ctx) {
      auto in = ctx.input(0);
      std::vector<double> out(in.begin(), in.end());
      for (double& v : out) v += 1.0;
      ctx.publish(0, std::move(out));
    };
    graph.add_task(stage);
  }

  Runtime runtime(Config{2, 2, true, false});
  const RunStats stats = runtime.run(graph);
  EXPECT_EQ(stats.tasks_executed, static_cast<std::size_t>(kStages + 1));

  const Buffer out = runtime.result(key(0, kStages), 0);
  ASSERT_EQ(out->size(), 3u);
  EXPECT_DOUBLE_EQ((*out)[0], 1.0 + kStages);
  EXPECT_DOUBLE_EQ((*out)[2], 3.0 + kStages);

  // Each cross-rank hop is one message: every stage alternates ranks.
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(kStages));
}

TEST(Runtime, FanOutFanInReduction) {
  // source -> N mappers (spread over ranks) -> reducer sums everything.
  constexpr int kMappers = 16;
  constexpr int kRanks = 4;
  TaskGraph graph;

  TaskSpec source;
  source.key = key(1);
  source.rank = 0;
  source.body = [](TaskContext& ctx) {
    std::vector<double> data(8);
    std::iota(data.begin(), data.end(), 1.0);  // 1..8, sum 36
    ctx.publish(0, std::move(data));
  };
  graph.add_task(source);

  TaskSpec reducer;
  reducer.key = key(3);
  reducer.rank = kRanks - 1;
  for (int m = 0; m < kMappers; ++m) {
    TaskSpec mapper;
    mapper.key = key(2, m);
    mapper.rank = m % kRanks;
    mapper.inputs = {{key(1), 0}};
    mapper.body = [m](TaskContext& ctx) {
      double sum = 0.0;
      for (double v : ctx.input(0)) sum += v;
      ctx.publish(0, std::vector<double>{sum * (m + 1)});
    };
    graph.add_task(mapper);
    reducer.inputs.push_back({key(2, m), 0});
  }
  reducer.body = [](TaskContext& ctx) {
    double total = 0.0;
    for (std::size_t i = 0; i < ctx.num_inputs(); ++i) total += ctx.input(i)[0];
    ctx.publish(0, std::vector<double>{total});
  };
  graph.add_task(reducer);

  Runtime runtime(Config{kRanks, 2, true, false});
  runtime.run(graph);
  const Buffer out = runtime.result(key(3), 0);
  // sum_m 36*(m+1) = 36 * 136
  EXPECT_DOUBLE_EQ((*out)[0], 36.0 * (kMappers * (kMappers + 1)) / 2);
}

TEST(Runtime, TaskBodyExceptionSurfacesWithTaskName) {
  TaskGraph graph;
  TaskSpec bad;
  bad.key = key(7, 1, 2, 3);
  bad.body = [](TaskContext&) { throw std::runtime_error("boom"); };
  graph.add_task(bad);
  Runtime runtime(Config{1, 1, true, false});
  try {
    runtime.run(graph);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("t7(1,2,3)"), std::string::npos);
  }
}

TEST(Runtime, MissingPublishIsAnError) {
  TaskGraph graph;
  TaskSpec producer;
  producer.key = key(1);
  producer.body = [](TaskContext&) { /* forgets to publish */ };
  graph.add_task(producer);
  TaskSpec consumer;
  consumer.key = key(2);
  consumer.inputs = {{key(1), 0}};
  consumer.body = [](TaskContext&) {};
  graph.add_task(consumer);
  Runtime runtime(Config{1, 1, true, false});
  EXPECT_THROW(runtime.run(graph), std::runtime_error);
}

TEST(Runtime, DoublePublishIsAnError) {
  TaskGraph graph;
  TaskSpec producer;
  producer.key = key(1);
  producer.body = [](TaskContext& ctx) {
    ctx.publish(0, {1.0});
    ctx.publish(0, {2.0});
  };
  graph.add_task(producer);
  Runtime runtime(Config{1, 1, true, false});
  EXPECT_THROW(runtime.run(graph), std::runtime_error);
}

TEST(Runtime, ZeroCopyWithinRankSharesBuffer) {
  TaskGraph graph;
  TaskSpec producer;
  producer.key = key(1);
  producer.body = [](TaskContext& ctx) {
    ctx.publish(0, std::vector<double>(1024, 1.0));
  };
  graph.add_task(producer);

  static std::atomic<const void*> seen{nullptr};
  TaskSpec keeper;
  keeper.key = key(2);
  keeper.inputs = {{key(1), 0}};
  keeper.body = [](TaskContext& ctx) {
    seen.store(ctx.input_buffer(0)->data());
    ctx.publish(0, ctx.input_buffer(0));  // forward without copying
  };
  graph.add_task(keeper);

  TaskSpec checker;
  checker.key = key(3);
  checker.inputs = {{key(2), 0}};
  checker.body = [](TaskContext& ctx) {
    if (ctx.input_buffer(0)->data() != seen.load()) {
      throw std::runtime_error("buffer was copied within a rank");
    }
  };
  graph.add_task(checker);

  Runtime runtime(Config{1, 1, true, false});
  const RunStats stats = runtime.run(graph);
  EXPECT_EQ(stats.messages, 0u);  // all local
}

TEST(Runtime, PriorityOrdersReadyTasksOnSingleWorker) {
  // All tasks are ready at t0 on one worker; higher priority must run first.
  TaskGraph graph;
  static std::mutex order_mutex;
  static std::vector<int> order;
  order.clear();
  for (int i = 0; i < 4; ++i) {
    TaskSpec t;
    t.key = key(1, i);
    t.priority = i;  // 3 should run first
    t.body = [i](TaskContext&) {
      std::lock_guard lock(order_mutex);
      order.push_back(i);
    };
    graph.add_task(t);
  }
  Runtime runtime(Config{1, 1, true, false});
  runtime.run(graph);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 3);
  EXPECT_EQ(order.back(), 0);
}

TEST(Runtime, FifoWithinEqualPriorityFollowsArrivalOrder) {
  // Regression guard for the ready-queue tie-break: entries of equal
  // priority must run in true arrival (enqueue) order, not in whatever
  // order the heap happens to surface them. The ReadyEntry seqno provides
  // this; without it, ties fall back to heap order and this test flakes.
  TaskGraph graph;
  static std::mutex order_mutex;
  static std::vector<int> order;
  order.clear();
  constexpr int kTasks = 12;
  for (int i = 0; i < kTasks; ++i) {
    TaskSpec t;
    t.key = key(1, i);
    t.priority = i % 2;  // two priority classes, interleaved arrivals
    t.body = [i](TaskContext&) {
      std::lock_guard lock(order_mutex);
      order.push_back(i);
    };
    graph.add_task(t);
  }
  Runtime runtime(Config{1, 1, true, false});
  runtime.run(graph);

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  // All priority-1 tasks first (odd ids, ascending = arrival order), then
  // all priority-0 tasks (even ids, ascending).
  std::vector<int> expected;
  for (int i = 1; i < kTasks; i += 2) expected.push_back(i);
  for (int i = 0; i < kTasks; i += 2) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(Runtime, WorkStealingSingleWorkerHonorsPriorityThenArrival) {
  // With one worker there is nobody to steal from: the owner drains its
  // priority lane front-first (priority-ordered, FIFO within priority),
  // then its low lane. Priorities 3..0 must therefore run 3,2,1,0 — same
  // observable order as PriorityFifo.
  TaskGraph graph;
  static std::mutex order_mutex;
  static std::vector<int> order;
  order.clear();
  for (int i = 0; i < 4; ++i) {
    TaskSpec t;
    t.key = key(1, i);
    t.priority = i;
    t.body = [i](TaskContext&) {
      std::lock_guard lock(order_mutex);
      order.push_back(i);
    };
    graph.add_task(t);
  }
  Config config{1, 1, true, false};
  config.scheduler = SchedPolicy::WorkStealing;
  Runtime runtime(config);
  runtime.run(graph);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Runtime, StealCountersStayZeroWithoutWorkStealing) {
  TaskGraph graph;
  for (int i = 0; i < 8; ++i) {
    TaskSpec t;
    t.key = key(1, i);
    t.body = [](TaskContext&) {};
    graph.add_task(t);
  }
  Runtime runtime(Config{1, 2, true, false});
  runtime.run(graph);
#ifndef REPRO_OBS_DISABLE
  // The families exist for every policy (stable scrape schema)...
  const auto snap = runtime.metrics()->snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_total("rt_steals_total"), 0.0);
  EXPECT_DOUBLE_EQ(snap.counter_total("rt_failed_steals_total"), 0.0);
#endif
  // ...and the shared-queue run never records steal trace events.
  for (const auto& e : runtime.tracer().events()) {
    EXPECT_NE(e.kind, TraceEventKind::Steal);
  }
}

TEST(Runtime, InlineSendModeMatchesDedicatedCommThread) {
  for (bool dedicated : {true, false}) {
    TaskGraph graph;
    TaskSpec a;
    a.key = key(1);
    a.rank = 0;
    a.body = [](TaskContext& ctx) { ctx.publish(0, {42.0}); };
    graph.add_task(a);
    TaskSpec b;
    b.key = key(2);
    b.rank = 1;
    b.inputs = {{key(1), 0}};
    b.body = [](TaskContext& ctx) {
      ctx.publish(0, std::vector<double>{ctx.input(0)[0] + 1});
    };
    graph.add_task(b);
    Runtime runtime(Config{2, 1, dedicated, false});
    const RunStats stats = runtime.run(graph);
    EXPECT_EQ(stats.messages, 1u);
    EXPECT_DOUBLE_EQ((*runtime.result(key(2), 0))[0], 43.0);
  }
}


TEST(Runtime, AggregatedMessagesDeliverIdentically) {
  // A producer whose three outputs all feed tasks on rank 1: aggregation
  // must collapse three messages into one without changing any result.
  for (bool aggregate : {false, true}) {
    TaskGraph graph;
    TaskSpec producer;
    producer.key = key(1);
    producer.rank = 0;
    producer.body = [](TaskContext& ctx) {
      ctx.publish(0, {1.0});
      ctx.publish(1, {2.0, 2.5});
      ctx.publish(2, {3.0});
    };
    graph.add_task(producer);
    for (int i = 0; i < 3; ++i) {
      TaskSpec consumer;
      consumer.key = key(2, i);
      consumer.rank = 1;
      consumer.inputs = {{key(1), static_cast<std::uint16_t>(i)}};
      consumer.body = [i](TaskContext& ctx) {
        std::vector<double> out(ctx.input(0).begin(), ctx.input(0).end());
        for (double& v : out) v += i;
        ctx.publish(0, std::move(out));
      };
      graph.add_task(consumer);
    }
    Config config{2, 1};
    config.aggregate_messages = aggregate;
    Runtime runtime(config);
    const RunStats stats = runtime.run(graph);
    EXPECT_EQ(stats.messages, aggregate ? 1u : 3u);
    EXPECT_DOUBLE_EQ((*runtime.result(key(2, 0), 0))[0], 1.0);
    ASSERT_EQ(runtime.result(key(2, 1), 0)->size(), 2u);
    EXPECT_DOUBLE_EQ((*runtime.result(key(2, 1), 0))[1], 3.5);
    EXPECT_DOUBLE_EQ((*runtime.result(key(2, 2), 0))[0], 5.0);
  }
}

TEST(Runtime, AggregationGroupsPerDestinationOnly) {
  // Two consumers on rank 1, one on rank 2: aggregation yields exactly two
  // messages (one per destination).
  TaskGraph graph;
  TaskSpec producer;
  producer.key = key(1);
  producer.rank = 0;
  producer.body = [](TaskContext& ctx) { ctx.publish(0, {7.0}); };
  graph.add_task(producer);
  for (int i = 0; i < 3; ++i) {
    TaskSpec consumer;
    consumer.key = key(2, i);
    consumer.rank = i < 2 ? 1 : 2;
    consumer.inputs = {{key(1), 0}};
    consumer.body = [](TaskContext& ctx) {
      ctx.publish(0, ctx.input_buffer(0));
    };
    graph.add_task(consumer);
  }
  Config config{3, 1};
  config.aggregate_messages = true;
  Runtime runtime(config);
  const RunStats stats = runtime.run(graph);
  EXPECT_EQ(stats.messages, 2u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*runtime.result(key(2, i), 0))[0], 7.0);
  }
}

TEST(Runtime, TraceRecordsEveryTaskWithSaneTimestamps) {
  TaskGraph graph;
  for (int i = 0; i < 5; ++i) {
    TaskSpec t;
    t.key = key(1, i);
    t.klass = i % 2 == 0 ? "even" : "odd";
    t.body = [](TaskContext&) {};
    graph.add_task(t);
  }
  Runtime runtime(Config{1, 2, true, true});
  runtime.run(graph);
  const auto& events = runtime.tracer().events();
#ifdef REPRO_OBS_DISABLE
  EXPECT_TRUE(events.empty());
  GTEST_SKIP() << "tracing is compiled out";
#else
  // The stream carries Task events plus the Idle gaps between pops; exactly
  // the five task bodies must appear as Task events.
  std::size_t tasks = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.end_s, e.begin_s);
    if (e.kind != TraceEventKind::Task) continue;
    ++tasks;
    EXPECT_TRUE(e.klass == "even" || e.klass == "odd");
    EXPECT_TRUE(e.deps.empty());  // source tasks have no input flows
  }
  EXPECT_EQ(tasks, 5u);
  const TraceReport report = analyze_trace(events, 2);
  EXPECT_EQ(report.count_by_klass.at("even"), 3u);
  EXPECT_EQ(report.count_by_klass.at("odd"), 2u);
  EXPECT_GE(report.span_s, 0.0);
#endif
}

TEST(Runtime, EmptyGraphCompletesImmediately) {
  TaskGraph graph;
  Runtime runtime(Config{2, 2, true, false});
  const RunStats stats = runtime.run(graph);
  EXPECT_EQ(stats.tasks_executed, 0u);
}

// Randomized layered DAG stress test: every task sums its inputs plus its own
// id; an independent sequential evaluation must agree, over several shapes.
TEST(Runtime, FuzzedLayeredDagMatchesSequentialEvaluation) {
  repro::Rng rng(2024);
  for (int round = 0; round < 5; ++round) {
    const int layers = 3 + static_cast<int>(rng.next_below(4));
    const int width = 4 + static_cast<int>(rng.next_below(8));
    const int ranks = 1 + static_cast<int>(rng.next_below(4));

    TaskGraph graph;
    std::vector<std::vector<double>> expected(
        static_cast<std::size_t>(layers),
        std::vector<double>(static_cast<std::size_t>(width), 0.0));
    std::vector<std::vector<std::vector<int>>> parents(
        static_cast<std::size_t>(layers));

    for (int layer = 0; layer < layers; ++layer) {
      parents[layer].resize(static_cast<std::size_t>(width));
      for (int slot = 0; slot < width; ++slot) {
        TaskSpec t;
        t.key = key(1, layer, slot);
        t.rank = static_cast<int>(rng.next_below(ranks));
        const double self = layer * 100.0 + slot;
        if (layer > 0) {
          const int fan = 1 + static_cast<int>(rng.next_below(3));
          for (int p = 0; p < fan; ++p) {
            const int parent = static_cast<int>(rng.next_below(width));
            parents[layer][slot].push_back(parent);
            t.inputs.push_back({key(1, layer - 1, parent), 0});
          }
        }
        t.body = [self](TaskContext& ctx) {
          double sum = self;
          for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
            sum += ctx.input(i)[0];
          }
          ctx.publish(0, std::vector<double>{sum});
        };
        graph.add_task(t);

        double sum = self;
        for (int parent : parents[layer][slot]) {
          sum += expected[layer - 1][parent];
        }
        expected[layer][slot] = sum;
      }
    }

    // Sinks: check final layer values. (Published outputs of the last layer
    // have no consumers, so they are retained.)
    Runtime runtime(Config{ranks, 2, true, false});
    runtime.run(graph);
    for (int slot = 0; slot < width; ++slot) {
      const Buffer out = runtime.result(key(1, layers - 1, slot), 0);
      EXPECT_DOUBLE_EQ((*out)[0], expected[layers - 1][slot])
          << "round " << round << " slot " << slot;
    }
  }
}


// ---------------------------------------------------------------------------
// ResidentRuntime: one Runtime instance executing back-to-back graphs (the
// serve farm's mode of operation). Regression suite for run()'s clean-slate
// contract: no ready-queue, result, or metric state may leak between runs.
// ---------------------------------------------------------------------------

namespace {

/// Add a source -> kStages chain under key type `type`, alternating ranks.
/// Final value per element: base + stages.
void add_chain(TaskGraph& graph, std::uint32_t type, int stages, double base,
               int lane = -1) {
  TaskSpec source;
  source.key = key(type);
  source.rank = 0;
  source.lane = lane;
  source.body = [base](TaskContext& ctx) {
    ctx.publish(0, std::vector<double>{base, base + 1.0});
  };
  graph.add_task(source);
  for (int s = 1; s <= stages; ++s) {
    TaskSpec stage;
    stage.key = key(type, s);
    stage.rank = s % 2;
    stage.lane = lane;
    stage.inputs = {{s == 1 ? key(type) : key(type, s - 1), 0}};
    stage.body = [](TaskContext& ctx) {
      auto in = ctx.input(0);
      std::vector<double> out(in.begin(), in.end());
      for (double& v : out) v += 1.0;
      ctx.publish(0, std::move(out));
    };
    graph.add_task(stage);
  }
}

}  // namespace

TEST(ResidentRuntime, BackToBackGraphsComputeIndependently) {
  Runtime runtime(Config{2, 2, true, false});

  TaskGraph first;
  add_chain(first, 7, 5, 10.0);
  const RunStats stats_a = runtime.run(first);
  EXPECT_EQ(stats_a.tasks_executed, 6u);
  EXPECT_DOUBLE_EQ((*runtime.result(key(7, 5), 0))[0], 15.0);

  // A different graph — different keys, more tasks — on the same instance.
  TaskGraph second;
  add_chain(second, 9, 8, 100.0);
  const RunStats stats_b = runtime.run(second);
  EXPECT_EQ(stats_b.tasks_executed, 9u);
  EXPECT_DOUBLE_EQ((*runtime.result(key(9, 8), 0))[0], 108.0);

  // Per-run stats must reflect the second run only, not accumulate.
  EXPECT_EQ(stats_b.messages, 8u);

  // Metric handles are re-attached per run: the scrape shows run B's counts.
  // (Metric series only exist when observability is compiled in.)
  if constexpr (obs::kEnabled) {
    const auto snapshot = runtime.metrics()->snapshot();
    EXPECT_DOUBLE_EQ(snapshot.counter_total("rt_tasks_executed_total"), 9.0);
  }
}

TEST(ResidentRuntime, ReleaseRunDropsResultsButAllowsNextRun) {
  Runtime runtime(Config{2, 1, true, false});

  TaskGraph first;
  add_chain(first, 3, 2, 1.0);
  runtime.run(first);
  EXPECT_DOUBLE_EQ((*runtime.result(key(3, 2), 0))[0], 3.0);

  runtime.release_run();
  EXPECT_THROW(runtime.result(key(3, 2), 0), std::exception);

  TaskGraph second;
  add_chain(second, 3, 4, 2.0);  // same keys as the released graph
  runtime.run(second);
  EXPECT_DOUBLE_EQ((*runtime.result(key(3, 4), 0))[0], 6.0);
}

TEST(ResidentRuntime, LaneCountersTrackCurrentGraphAndRetireStaleLanes) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "lane counter series require observability compiled in";
  }
  Runtime runtime(Config{2, 1, true, false});

  TaskGraph first;
  add_chain(first, 1, 3, 0.0, /*lane=*/0);   // 4 tasks on lane 0
  add_chain(first, 2, 1, 0.0, /*lane=*/5);   // 2 tasks on lane 5
  runtime.run(first);
  {
    const auto snapshot = runtime.metrics()->snapshot();
    const auto* lane0 = snapshot.find_counter("rt_lane_tasks_executed_total",
                                              {{"lane", "0"}});
    const auto* lane5 = snapshot.find_counter("rt_lane_tasks_executed_total",
                                              {{"lane", "5"}});
    ASSERT_NE(lane0, nullptr);
    ASSERT_NE(lane5, nullptr);
    EXPECT_EQ(lane0->value, 4u);
    EXPECT_EQ(lane5->value, 2u);
  }

  // The next graph uses only lane 5: lane 0's series must disappear (a
  // resident registry never scrapes tenants that no longer exist) and lane
  // 5 must restart from zero, not accumulate.
  TaskGraph second;
  add_chain(second, 1, 2, 0.0, /*lane=*/5);
  runtime.run(second);
  {
    const auto snapshot = runtime.metrics()->snapshot();
    EXPECT_EQ(snapshot.find_counter("rt_lane_tasks_executed_total",
                                    {{"lane", "0"}}),
              nullptr);
    const auto* lane5 = snapshot.find_counter("rt_lane_tasks_executed_total",
                                              {{"lane", "5"}});
    ASSERT_NE(lane5, nullptr);
    EXPECT_EQ(lane5->value, 3u);
  }
}


}  // namespace
}  // namespace repro::rt
