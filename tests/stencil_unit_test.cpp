#include <gtest/gtest.h>

#include <cmath>

#include "stencil/grid.hpp"
#include "stencil/halo.hpp"
#include "stencil/kernel.hpp"
#include "stencil/problem.hpp"
#include "stencil/serial.hpp"
#include "stencil/tile_map.hpp"

namespace repro::stencil {
namespace {

TEST(TileGeom, IndexingAndSizes) {
  const TileGeom g{4, 6, 2, 1, 3, 2};  // h,w,gn,gs,gw,ge
  EXPECT_EQ(g.ld(), 3 + 6 + 2);
  EXPECT_EQ(g.rows(), 2 + 4 + 1);
  EXPECT_EQ(g.size(), 11u * 7u);
  EXPECT_EQ(g.idx(-2, -3), 0u);                    // top-left ghost corner
  EXPECT_EQ(g.idx(0, 0), 2u * 11u + 3u);           // core origin
  EXPECT_EQ(g.idx(4, 7), g.size() - 1);            // bottom-right ghost
}

TEST(Kernel, SinglePointMatchesHandComputation) {
  const TileGeom g{1, 1, 1, 1, 1, 1};
  std::vector<double> in(g.size(), 0.0);
  in[g.idx(0, 0)] = 2.0;   // center
  in[g.idx(-1, 0)] = 3.0;  // north
  in[g.idx(1, 0)] = 5.0;   // south
  in[g.idx(0, -1)] = 7.0;  // west
  in[g.idx(0, 1)] = 11.0;  // east
  std::vector<double> out(g.size(), -1.0);
  const Stencil5 w{0.1, 0.2, 0.3, 0.4, 0.5};
  jacobi5(in.data(), out.data(), g, w, 0, 1, 0, 1);
  EXPECT_DOUBLE_EQ(out[g.idx(0, 0)],
                   0.1 * 2 + 0.2 * 3 + 0.3 * 5 + 0.4 * 7 + 0.5 * 11);
  // Cells outside the region are untouched.
  EXPECT_DOUBLE_EQ(out[g.idx(-1, 0)], -1.0);
}

TEST(Kernel, MatchesSerialSweepOnFullGrid) {
  const Problem p = random_problem(13, 17, 1, 5);
  Grid2D grid(p.rows, p.cols);
  grid.fill(p.initial, p.boundary);
  Grid2D expect(p.rows, p.cols);
  serial_sweep(grid, expect, p.weights);

  // Same grid as one big tile with a one-deep ghost ring.
  const TileGeom g{p.rows, p.cols, 1, 1, 1, 1};
  std::vector<double> in(g.size());
  for (int i = -1; i <= p.rows; ++i) {
    for (int j = -1; j <= p.cols; ++j) in[g.idx(i, j)] = grid.at(i, j);
  }
  std::vector<double> out = in;
  jacobi5(in.data(), out.data(), g, p.weights, 0, p.rows, 0, p.cols);
  for (int i = 0; i < p.rows; ++i) {
    for (int j = 0; j < p.cols; ++j) {
      EXPECT_DOUBLE_EQ(out[g.idx(i, j)], expect.at(i, j)) << i << "," << j;
    }
  }
}

TEST(Kernel, FlopsCount) {
  EXPECT_DOUBLE_EQ(jacobi5_flops(0, 10, 0, 10), 900.0);
  EXPECT_DOUBLE_EQ(jacobi5_flops(-3, 10, 0, 10), 9.0 * 13 * 10);
  EXPECT_DOUBLE_EQ(jacobi5_flops(5, 5, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(jacobi5_flops(6, 5, 0, 10), 0.0);
}

TEST(Grid, FillAndDiff) {
  Grid2D a(3, 3), b(3, 3);
  a.fill([](long i, long j) { return static_cast<double>(i * 10 + j); },
         [](long, long) { return -1.0; });
  b.fill([](long i, long j) { return static_cast<double>(i * 10 + j); },
         [](long, long) { return -2.0; });
  EXPECT_DOUBLE_EQ(Grid2D::max_abs_diff(a, b), 0.0);  // ring excluded
  b.at(2, 1) += 0.25;
  EXPECT_DOUBLE_EQ(Grid2D::max_abs_diff(a, b), 0.25);
  EXPECT_DOUBLE_EQ(a.at(-1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(3, 3), -1.0);
}

TEST(Grid, RejectsDegenerateShapes) {
  EXPECT_THROW(Grid2D(0, 5), std::invalid_argument);
  Grid2D a(2, 2), b(2, 3);
  EXPECT_THROW(Grid2D::max_abs_diff(a, b), std::invalid_argument);
}

TEST(Serial, LaplaceConvergesTowardHarmonicBounds) {
  // With the hot-west-wall Laplace problem, values stay within [0,1] and the
  // column adjacent to the hot wall warms monotonically over iterations.
  Problem p = laplace_problem(16, 50);
  const Grid2D g = solve_serial(p);
  for (int i = 0; i < p.rows; ++i) {
    for (int j = 0; j < p.cols; ++j) {
      EXPECT_GE(g.at(i, j), 0.0);
      EXPECT_LE(g.at(i, j), 1.0);
    }
  }
  EXPECT_GT(g.at(8, 0), g.at(8, 12));  // nearer the hot wall is warmer
}

TEST(Serial, ZeroIterationsReturnsInitialField) {
  const Problem p = random_problem(6, 7, 0);
  const Grid2D g = solve_serial(p);
  for (int i = 0; i < p.rows; ++i) {
    for (int j = 0; j < p.cols; ++j) {
      EXPECT_DOUBLE_EQ(g.at(i, j), p.initial(i, j));
    }
  }
}

TEST(TileMap, TileSizesCoverTheGrid) {
  const TileMap map(23, 17, 5, 4, 2, 2);
  EXPECT_EQ(map.tiles_r(), 5);
  EXPECT_EQ(map.tiles_c(), 5);
  int total_rows = 0;
  for (int ti = 0; ti < map.tiles_r(); ++ti) total_rows += map.tile_h(ti);
  EXPECT_EQ(total_rows, 23);
  int total_cols = 0;
  for (int tj = 0; tj < map.tiles_c(); ++tj) total_cols += map.tile_w(tj);
  EXPECT_EQ(total_cols, 17);
  EXPECT_EQ(map.tile_h(4), 3);  // remainder tile
  EXPECT_EQ(map.tile_w(4), 1);
  EXPECT_EQ(map.min_tile_extent(), 1);
}

TEST(TileMap, BlockOwnershipIsContiguousAndBalanced) {
  const TileMap map(64, 64, 8, 8, 4, 2);  // 8x8 tiles on 4x2 nodes
  // Contiguity: node row index is non-decreasing in ti.
  int prev = 0;
  for (int ti = 0; ti < map.tiles_r(); ++ti) {
    EXPECT_GE(map.node_r(ti), prev);
    EXPECT_LE(map.node_r(ti) - prev, 1);
    prev = map.node_r(ti);
  }
  EXPECT_EQ(map.node_r(map.tiles_r() - 1), 3);
  // Balance: every node owns the same tile count here (8*8 / 8 nodes).
  for (int rank = 0; rank < map.nodes(); ++rank) {
    EXPECT_EQ(map.tiles_on_rank(rank), 8);
  }
}

TEST(TileMap, UnbalancedBlocksDifferByAtMostOneRowOfTiles) {
  const TileMap map(70, 70, 10, 10, 3, 3);  // 7x7 tiles on 3x3 nodes
  int counts[3] = {0, 0, 0};
  for (int ti = 0; ti < map.tiles_r(); ++ti) counts[map.node_r(ti)]++;
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 7);
  EXPECT_LE(std::abs(counts[0] - counts[2]), 1);
}

TEST(TileMap, RemotenessFollowsNodeBlocks) {
  const TileMap map(16, 16, 4, 4, 2, 2);  // 4x4 tiles, 2x2 nodes
  // Tile (1,1) is the bottom-right tile of node (0,0): south and east remote.
  EXPECT_FALSE(map.neighbor_remote(1, 1, -1, 0));
  EXPECT_FALSE(map.neighbor_remote(1, 1, 0, -1));
  EXPECT_TRUE(map.neighbor_remote(1, 1, 1, 0));
  EXPECT_TRUE(map.neighbor_remote(1, 1, 0, 1));
  EXPECT_TRUE(map.neighbor_remote(1, 1, 1, 1));  // diagonal
  // Global corner tile has no neighbors outside the grid.
  EXPECT_FALSE(map.neighbor_exists(0, 0, -1, 0));
  EXPECT_FALSE(map.neighbor_remote(0, 0, -1, 0));
}

TEST(TileMap, RejectsBadConfigurations) {
  EXPECT_THROW(TileMap(10, 10, 0, 5, 1, 1), std::invalid_argument);
  EXPECT_THROW(TileMap(10, 10, 5, 5, 3, 1), std::invalid_argument);
  EXPECT_THROW(TileMap(0, 10, 5, 5, 1, 1), std::invalid_argument);
}

class HaloRoundTrip : public ::testing::TestWithParam<int> {};

// Pack a band on one tile, unpack on the neighbor, verify cell-for-cell
// against global coordinates. The producer has core values f(gi,gj).
TEST_P(HaloRoundTrip, BandsLandOnMatchingGlobalCells) {
  const int depth = GetParam();
  const int h = 6, w = 5;
  auto f = [](int gi, int gj) { return gi * 100.0 + gj; };

  // Producer occupies global rows 0..5, cols 0..4. Consumer is its south
  // neighbor: rows 6..11, same cols, with a north ghost of `depth`.
  const TileGeom pg{h, w, 1, 1, 1, 1};
  std::vector<double> prod(pg.size(), -1.0);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < w; ++j) prod[pg.idx(i, j)] = f(i, j);
  }
  const auto band = pack_band(prod.data(), pg, Side::South, depth);
  ASSERT_EQ(band.size(), static_cast<std::size_t>(depth) * w);

  const TileGeom cg{h, w, depth, 1, 1, 1};
  std::vector<double> cons(cg.size(), -7.0);
  unpack_band(cons.data(), cg, Side::North, band, depth);
  for (int d = 1; d <= depth; ++d) {
    for (int j = 0; j < w; ++j) {
      // Consumer cell (-d, j) is global row 6-d = producer row h-d.
      EXPECT_DOUBLE_EQ(cons[cg.idx(-d, j)], f(h - d, j)) << d << "," << j;
    }
  }
  // Nothing else was touched.
  EXPECT_DOUBLE_EQ(cons[cg.idx(0, 0)], -7.0);
  EXPECT_DOUBLE_EQ(cons[cg.idx(-1, -1)], -7.0);
}

TEST_P(HaloRoundTrip, EastWestBandsLandOnMatchingGlobalCells) {
  const int depth = GetParam();
  const int h = 4, w = 7;
  auto f = [](int gi, int gj) { return gi * 100.0 + gj; };

  // Producer global cols 0..6; consumer is its EAST neighbor with a west
  // ghost of `depth` (consumer col -d = producer col w-d).
  const TileGeom pg{h, w, 1, 1, 1, 1};
  std::vector<double> prod(pg.size(), -1.0);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < w; ++j) prod[pg.idx(i, j)] = f(i, j);
  }
  const auto band = pack_band(prod.data(), pg, Side::East, depth);
  ASSERT_EQ(band.size(), static_cast<std::size_t>(h) * depth);

  const TileGeom cg{h, w, 1, 1, depth, 1};
  std::vector<double> cons(cg.size(), -7.0);
  unpack_band(cons.data(), cg, Side::West, band, depth);
  for (int i = 0; i < h; ++i) {
    for (int d = 1; d <= depth; ++d) {
      EXPECT_DOUBLE_EQ(cons[cg.idx(i, -d)], f(i, w - d)) << i << "," << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, HaloRoundTrip, ::testing::Values(1, 2, 3, 5));

class CornerRoundTrip : public ::testing::TestWithParam<Corner> {};

TEST_P(CornerRoundTrip, CornersLandOnMatchingGlobalCells) {
  const Corner corner = GetParam();
  const int s = 3;
  const int h = 6, w = 6;
  auto f = [](int gi, int gj) { return gi * 100.0 + gj; };

  // The consumer tile sits at global origin (rows 0.., cols 0..); its
  // diagonal producer at `corner` direction. Producer core values follow the
  // global function; consumer ghost cells at the corner must match it.
  const int pti = d_ti(corner);  // -1 or 1
  const int ptj = d_tj(corner);
  const int prow0 = pti * h;  // producer's global origin
  const int pcol0 = ptj * w;

  const TileGeom pg{h, w, 1, 1, 1, 1};
  std::vector<double> prod(pg.size(), -1.0);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < w; ++j) prod[pg.idx(i, j)] = f(prow0 + i, pcol0 + j);
  }
  const auto block = pack_corner(prod.data(), pg, opposite(corner), s);
  ASSERT_EQ(block.size(), static_cast<std::size_t>(s) * s);

  // Consumer ghost depths: s on both sides of this corner.
  const TileGeom cg{h, w,
                    (corner == Corner::NW || corner == Corner::NE) ? s : 1,
                    (corner == Corner::SW || corner == Corner::SE) ? s : 1,
                    (corner == Corner::NW || corner == Corner::SW) ? s : 1,
                    (corner == Corner::NE || corner == Corner::SE) ? s : 1};
  std::vector<double> cons(cg.size(), -7.0);
  unpack_corner(cons.data(), cg, corner, block, s);

  const int ri = d_ti(corner);
  const int rj = d_tj(corner);
  for (int a = 1; a <= s; ++a) {
    for (int b = 1; b <= s; ++b) {
      const int gi = ri < 0 ? -a : h - 1 + a;
      const int gj = rj < 0 ? -b : w - 1 + b;
      EXPECT_DOUBLE_EQ(cons[cg.idx(gi, gj)], f(gi, gj))
          << "corner cell (" << gi << "," << gj << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCorners, CornerRoundTrip,
                         ::testing::Values(Corner::NW, Corner::NE, Corner::SW,
                                           Corner::SE));

TEST(Halo, MixedDepthCornerUsesSubBlock) {
  // Consumer with gn=3 (north remote) but gw=1 (west local): the NW corner
  // unpack must fill only the 3x1 strip.
  const int s = 3, h = 5, w = 5;
  const TileGeom pg{h, w, 1, 1, 1, 1};
  std::vector<double> prod(pg.size());
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < w; ++j) prod[pg.idx(i, j)] = i * 10.0 + j;
  }
  const auto block = pack_corner(prod.data(), pg, Corner::SE, s);

  const TileGeom cg{h, w, s, 1, 1, 1};
  std::vector<double> cons(cg.size(), -7.0);
  unpack_corner(cons.data(), cg, Corner::NW, block, s);
  for (int a = 1; a <= s; ++a) {
    // Consumer (-a,-1) = producer (h-a, w-1).
    EXPECT_DOUBLE_EQ(cons[cg.idx(-a, -1)], (h - a) * 10.0 + (w - 1));
  }
  EXPECT_DOUBLE_EQ(cons[cg.idx(0, 0)], -7.0);
}

TEST(Halo, LocalLineCopySpansExtendedExtent) {
  // Two horizontally adjacent tiles that both have 2-deep north ghosts; the
  // west-side local line must refresh all extended rows, including the ghost
  // rows, from the neighbor's east edge column.
  const int s = 2, h = 4, w = 3;
  const TileGeom g{h, w, s, 1, 1, 1};
  std::vector<double> nbr(g.size());
  for (int i = -s; i < h + 1; ++i) {
    for (int j = -1; j < w + 1; ++j) nbr[g.idx(i, j)] = i * 100.0 + j;
  }
  std::vector<double> mine(g.size(), -7.0);
  copy_local_line(mine.data(), g, Side::West, nbr.data(), g);
  for (int i = -s; i < h + 1; ++i) {
    EXPECT_DOUBLE_EQ(mine[g.idx(i, -1)], i * 100.0 + (w - 1));
  }
  EXPECT_DOUBLE_EQ(mine[g.idx(0, 0)], -7.0);
}

TEST(Halo, LocalLineNorthCopiesFullRowIncludingGhostCols) {
  const int h = 3, w = 4;
  const TileGeom g{h, w, 1, 1, 2, 1};  // 2-deep west ghost (west remote)
  std::vector<double> nbr(g.size());
  for (int i = -1; i < h + 1; ++i) {
    for (int j = -2; j < w + 1; ++j) nbr[g.idx(i, j)] = i * 100.0 + j;
  }
  std::vector<double> mine(g.size(), -7.0);
  copy_local_line(mine.data(), g, Side::North, nbr.data(), g);
  for (int j = -2; j < w + 1; ++j) {
    EXPECT_DOUBLE_EQ(mine[g.idx(-1, j)], (h - 1) * 100.0 + j);
  }
}

TEST(Halo, ValidatesGeometry) {
  const TileGeom g{4, 4, 1, 1, 1, 1};
  std::vector<double> buf(g.size(), 0.0);
  EXPECT_THROW(pack_band(buf.data(), g, Side::North, 5), std::invalid_argument);
  EXPECT_THROW(pack_band(buf.data(), g, Side::North, 0), std::invalid_argument);
  EXPECT_THROW(unpack_band(buf.data(), g, Side::North,
                           std::vector<double>(8, 0.0), 2),
               std::invalid_argument);
  EXPECT_THROW(pack_corner(buf.data(), g, Corner::NW, 5),
               std::invalid_argument);
  const TileGeom misaligned{4, 4, 2, 1, 1, 1};
  std::vector<double> nbr(misaligned.size(), 0.0);
  EXPECT_THROW(
      copy_local_line(buf.data(), g, Side::West, nbr.data(), misaligned),
      std::invalid_argument);
}

}  // namespace
}  // namespace repro::stencil
