// Degenerate and boundary-of-domain configurations across the stack.
#include <gtest/gtest.h>

#include "net/link_model.hpp"
#include "runtime/ptg.hpp"
#include "runtime/runtime.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

namespace repro {
namespace {

using namespace repro::stencil;

TEST(EdgeCases, OneRowGrid) {
  const Problem problem = random_problem(1, 24, 5);
  const Grid2D expected = solve_serial(problem);
  DistConfig config;
  config.decomp = {1, 6, 1, 2};
  config.steps = 1;
  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
}

TEST(EdgeCases, OneColumnGrid) {
  const Problem problem = random_problem(24, 1, 5);
  const Grid2D expected = solve_serial(problem);
  DistConfig config;
  config.decomp = {6, 1, 2, 1};
  config.steps = 1;
  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
}

TEST(EdgeCases, SingleCellTiles) {
  // Tiles of 1x1: maximal task count, every neighbor interaction explicit.
  const Problem problem = random_problem(6, 6, 4);
  const Grid2D expected = solve_serial(problem);
  DistConfig config;
  config.decomp = {1, 1, 2, 2};
  config.steps = 1;
  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
  EXPECT_EQ(result.stats.tasks_executed, 36u * 5u);
}

TEST(EdgeCases, SingleIteration) {
  const Problem problem = random_problem(16, 16, 1);
  const Grid2D expected = solve_serial(problem);
  for (int steps : {1, 3}) {
    DistConfig config;
    config.decomp = {4, 4, 2, 2};
    config.steps = steps;
    const DistResult result = run_distributed(problem, config);
    EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0) << steps;
  }
}

TEST(EdgeCases, IterationsSmallerThanStepSize) {
  // s=5 but only 2 iterations: a single, partially-used superstep.
  const Problem problem = random_problem(20, 20, 2);
  const Grid2D expected = solve_serial(problem);
  DistConfig config;
  config.decomp = {10, 10, 2, 2};
  config.steps = 5;
  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
}

TEST(EdgeCases, ManyWorkersFewTasks) {
  // More workers than tasks per rank: idle workers must not deadlock.
  const Problem problem = random_problem(8, 8, 2);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.workers_per_rank = 8;
  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(solve_serial(problem), result.grid), 0.0);
}

TEST(EdgeCases, ConstantFieldIsFixedPointOfAveraging) {
  // With averaging weights and constant boundary = interior, every iterate
  // is the same constant — catches accidental scaling anywhere.
  Problem problem;
  problem.rows = 12;
  problem.cols = 12;
  problem.iterations = 9;
  problem.weights = Stencil5::laplace_jacobi();  // weights sum to 1
  problem.initial = [](long, long) { return 4.25; };
  problem.boundary = [](long, long) { return 4.25; };
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 3;
  const DistResult result = run_distributed(problem, config);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(result.grid.at(i, j), 4.25);
    }
  }
}

TEST(EdgeCases, TranslationInvarianceOfDecomposition) {
  // The same problem with two unrelated decompositions must agree exactly.
  const Problem problem = random_problem(24, 24, 7);
  DistConfig a;
  a.decomp = {3, 8, 2, 3};
  a.steps = 2;
  DistConfig b;
  b.decomp = {12, 4, 1, 2};
  b.steps = 3;
  const DistResult ra = run_distributed(problem, a);
  const DistResult rb = run_distributed(problem, b);
  EXPECT_EQ(Grid2D::max_abs_diff(ra.grid, rb.grid), 0.0);
}

TEST(EdgeCases, RuntimeObjectIsReusableAcrossGraphs) {
  rt::Runtime runtime(rt::Config{2, 1});
  for (int round = 0; round < 3; ++round) {
    rt::TaskGraph graph;
    rt::TaskSpec a;
    a.key = rt::TaskKey{1, round, 0, 0};
    a.rank = 0;
    a.body = [round](rt::TaskContext& ctx) {
      ctx.publish(0, std::vector<double>{static_cast<double>(round)});
    };
    graph.add_task(a);
    rt::TaskSpec b;
    b.key = rt::TaskKey{2, round, 0, 0};
    b.rank = 1;
    b.inputs = {{a.key, 0}};
    b.body = [](rt::TaskContext& ctx) {
      ctx.publish(0, std::vector<double>{ctx.input(0)[0] + 1});
    };
    graph.add_task(b);
    runtime.run(graph);
    EXPECT_DOUBLE_EQ((*runtime.result(b.key, 0))[0], round + 1.0);
  }
}

TEST(EdgeCases, RunStatsMessageSizeHistogramMatchesCounters) {
  const Problem problem = random_problem(16, 16, 3);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  const DistResult r = run_distributed(problem, config);
  EXPECT_EQ(r.stats.message_sizes.total_count(), r.stats.messages);
  EXPECT_EQ(r.stats.message_sizes.total_bytes(), r.stats.bytes);
}

TEST(EdgeCases, IdealLinkHasNoPerByteCost) {
  const net::LinkModel link = net::ideal_link();
  EXPECT_DOUBLE_EQ(link.transfer_time(0), 0.0);
  EXPECT_DOUBLE_EQ(link.transfer_time(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(link.fraction_of_peak(1024), 0.0);  // no defined peak
}

TEST(EdgeCases, PtgClassWithNoParametersRunsOnce) {
  rt::ptg::PtgProgram program;
  int runs = 0;
  program.task_class("singleton").body(
      [&](rt::TaskContext&, const rt::ptg::Params&) { ++runs; });
  rt::TaskGraph graph = program.unfold();
  EXPECT_EQ(graph.size(), 1u);
  rt::Runtime runtime(rt::Config{1, 1});
  runtime.run(graph);
  EXPECT_EQ(runs, 1);
}

TEST(EdgeCases, AggregationWithCaAndShapesStaysExact) {
  Problem problem = random_problem(18, 18, 6);
  problem.shape = StencilShape::random_box(1);
  const Grid2D expected = solve_serial(problem);
  DistConfig config;
  config.decomp = {6, 6, 3, 3};
  config.steps = 2;
  config.aggregate_messages = true;
  const DistResult result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
}

}  // namespace
}  // namespace repro
