// End-to-end resilience: the CA stencil over the full channel stack
// ReliableChannel( FaultInjector( Transport ) ) must produce a final grid
// bit-identical to the fault-free serial reference — faults may cost time,
// never correctness.
#include <gtest/gtest.h>

#include <memory>

#include "equivalence_helpers.hpp"
#include "fault/fault_injector.hpp"
#include "fault/reliable_channel.hpp"
#include "fault/resilient.hpp"
#include "net/transport.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

namespace repro::fault {
namespace {

using stencil::DistConfig;
using stencil::Grid2D;
using stencil::Problem;

/// Channel factory for the canonical stack; keeps a handle to the last built
/// layers so tests can read their counters after the run.
struct Stack {
  FaultPlan plan;
  ReliableConfig reliable;
  std::shared_ptr<ReliableChannel> last;

  net::ChannelFactory factory() {
    return [this](int nranks) {
      auto transport = std::make_shared<net::Transport>(nranks);
      auto injector = std::make_shared<FaultInjector>(transport, plan);
      last = std::make_shared<ReliableChannel>(injector, reliable);
      return last;
    };
  }
  const FaultInjector& injector() const {
    return static_cast<const FaultInjector&>(*last->inner());
  }
};

DistConfig small_config(int steps) {
  DistConfig config;
  config.decomp = {16, 16, 2, 2};
  config.steps = steps;
  config.workers_per_rank = 2;
  return config;
}

TEST(FaultE2E, CaStencilBitIdenticalUnderHeavyFaults) {
  // 10-20% of every fault type, CA step sizes bracketing the paper's sweep,
  // three seeds each: the delivered field must match serial exactly.
  const Problem problem = stencil::random_problem(64, 64, 15);
  const Grid2D expected = solve_serial(problem);

  for (int steps : {1, 5, 15}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      Stack stack;
      stack.plan = FaultPlan::uniform(seed, 0.15, 0.10, 0.20);
      stack.reliable.timeout_s = 0.001;
      DistConfig config = small_config(steps);
      config.channel_factory = stack.factory();

      const auto result = run_distributed(problem, config);
      EXPECT_TRUE(test_support::grids_match(expected, result.grid))
          << test_support::failing_seed(seed, config);

      const FaultStats faults = stack.injector().fault_stats();
      const ReliableStats rel = stack.last->reliable_stats();
      EXPECT_GT(faults.dropped, 0u) << "fault plan was not exercised";
      EXPECT_GT(rel.retransmits, 0u) << "drops must force retransmissions";
      EXPECT_FALSE(rel.failed);
    }
  }
}

TEST(FaultE2E, FusedWavefrontOverFaultyStackStaysBitIdentical) {
  // The graph rewrite composes with the fault stack: fused-wavefront runs —
  // including a window spanning the whole iteration count, a ragged final
  // window, and the persistent-wire composition — over a lossy injector
  // must still deliver serial bits. Fewer, larger messages raise the stakes
  // per drop; correctness must not depend on message granularity.
  const Problem problem = stencil::random_problem(64, 64, 15);
  const Grid2D expected = solve_serial(problem);

  struct FusedCase {
    int steps, fuse;
    bool persistent;
  };
  const FusedCase cases[] = {
      {5, 3, false},  // W = 15: every iteration inside one fused window
      {2, 5, false},  // W = 10, ragged final window
      {3, 2, true},   // W = 6 over persistent routes
  };
  for (const FusedCase& c : cases) {
    for (std::uint64_t seed : {1u, 2u}) {
      Stack stack;
      stack.plan = FaultPlan::uniform(seed, 0.15, 0.10, 0.20);
      stack.reliable.timeout_s = 0.001;
      DistConfig config = small_config(c.steps);
      config.fuse_depth = c.fuse;
      config.persistent = c.persistent;
      config.channel_factory = stack.factory();

      const auto result = run_distributed(problem, config);
      EXPECT_TRUE(test_support::grids_match(expected, result.grid))
          << test_support::failing_seed(seed, config);

      const FaultStats faults = stack.injector().fault_stats();
      const ReliableStats rel = stack.last->reliable_stats();
      EXPECT_GT(faults.dropped, 0u) << "fault plan was not exercised";
      EXPECT_GT(rel.retransmits, 0u) << "drops must force retransmissions";
      EXPECT_FALSE(rel.failed);
    }
  }
}

TEST(FaultE2E, PersistentOverFaultyStackStaysBitIdentical) {
  // Full composition: PersistentChannel over ReliableChannel over a lossy
  // injector. Route fragments ride reliability envelopes as shared views (no
  // retained payload copies), survive drops/dups/reordering, and the grid
  // still matches serial bit-for-bit.
  const Problem problem = stencil::random_problem(64, 64, 15);
  const Grid2D expected = solve_serial(problem);

  for (int steps : {1, 5}) {
    for (std::uint64_t seed : {1u, 2u}) {
      Stack stack;
      stack.plan = FaultPlan::uniform(seed, 0.15, 0.10, 0.20);
      stack.reliable.timeout_s = 0.001;
      DistConfig config = small_config(steps);
      config.channel_factory = stack.factory();
      config.persistent = true;

      const auto result = run_distributed(problem, config);
      EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0)
          << "steps " << steps << " seed " << seed;

      const FaultStats faults = stack.injector().fault_stats();
      const ReliableStats rel = stack.last->reliable_stats();
      EXPECT_GT(faults.dropped, 0u) << "fault plan was not exercised";
      EXPECT_GT(rel.retransmits, 0u) << "drops must force retransmissions";
      // Fragment payloads are shared views of registered slots, and every
      // other message is header-only, so the retransmit window never deep
      // copies bulk data even over this lossy stack.
      EXPECT_EQ(rel.retained_payload_doubles, 0u);
      EXPECT_FALSE(rel.failed);
    }
  }
}

TEST(FaultE2E, ZeroFaultPlanAddsNoRetransmits) {
  // With live runtime receivers draining acks at the default timeout, a
  // clean channel must see zero reliability traffic beyond the acks.
  const Problem problem = stencil::random_problem(64, 64, 10);
  const Grid2D expected = solve_serial(problem);

  Stack stack;
  stack.plan = FaultPlan::uniform(1, 0.0);
  // Acks turn around in microseconds here; the generous timeout only guards
  // against sanitizer/CI scheduling stalls masquerading as losses.
  stack.reliable.timeout_s = 0.1;
  DistConfig config = small_config(5);
  config.channel_factory = stack.factory();

  const auto result = run_distributed(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);

  const FaultStats faults = stack.injector().fault_stats();
  const ReliableStats rel = stack.last->reliable_stats();
  EXPECT_EQ(faults.dropped, 0u);
  EXPECT_EQ(faults.duplicated, 0u);
  EXPECT_EQ(rel.retransmits, 0u);
  EXPECT_EQ(rel.dup_dropped, 0u);
  EXPECT_EQ(rel.out_of_order, 0u);
  // Everything the injector saw was first-transmission data or acks.
  EXPECT_EQ(rel.data_sent + rel.acks_sent, faults.forwarded);
}

TEST(FaultE2E, SuperstepHookSeesConsistentSnapshots) {
  // The hook must observe, for every superstep boundary, tile cores that
  // reassemble into exactly the serial iterate at that iteration. With
  // fuse_depth > 1 the window widens to steps * fuse, but the hook keeps the
  // ORIGINAL steps cadence — fused tile cores are consistent at every
  // interior superstep boundary, so checkpoints stay fuse-agnostic.
  const Problem problem = stencil::random_problem(32, 32, 6);
  for (int fuse : {1, 2}) {
    DistConfig config;
    config.decomp = {8, 8, 2, 2};
    config.steps = 3;
    config.fuse_depth = fuse;

    CheckpointStore store;
    config.superstep_hook = [&store](int k, int ti, int tj,
                                     const std::vector<double>& core) {
      store.store(k, ti, tj, core);
    };
    run_distributed(problem, config);

    const stencil::TileMap map(32, 32, 8, 8, 2, 2);
    for (int k : {0, 3, 6}) {
      Problem upto = problem;
      upto.iterations = k;
      const Grid2D reference = solve_serial(upto);
      const auto tiles = store.tiles(k);
      ASSERT_EQ(tiles.size(), 16u) << "superstep " << k << " fuse " << fuse;
      for (const auto& [coord, core] : tiles) {
        const auto [ti, tj] = coord;
        for (int i = 0; i < map.tile_h(ti); ++i) {
          for (int j = 0; j < map.tile_w(tj); ++j) {
            ASSERT_EQ(core[static_cast<std::size_t>(i) * map.tile_w(tj) + j],
                      reference.at(map.row0(ti) + i, map.col0(tj) + j))
                << "k=" << k << " tile (" << ti << "," << tj << ") fuse "
                << fuse;
          }
        }
      }
    }
  }
}

TEST(FaultE2E, ResilientRunnerRecoversFromBlackoutBitIdentically) {
  // The channel blacks out mid-run (every message dropped from then on), the
  // reliable layer gives up, and the resilient runner must roll back to the
  // last checkpoint, retry on a fresh channel, and still match serial.
  const Problem problem = stencil::random_problem(48, 48, 12);
  const Grid2D expected = solve_serial(problem);

  int attempt = 0;
  ResilientConfig config;
  config.dist = small_config(3);
  config.checkpoint_supersteps = 2;  // 6-iteration windows
  config.channel_factory = [&attempt](int nranks) -> std::shared_ptr<net::Channel> {
    auto transport = std::make_shared<net::Transport>(nranks);
    FaultPlan plan;
    // First attempt dies early; later attempts get a clean channel so the
    // test terminates deterministically.
    if (attempt++ == 0) plan.blackout_after = 40;
    auto injector = std::make_shared<FaultInjector>(transport, plan);
    ReliableConfig reliable;
    reliable.timeout_s = 0.0005;
    reliable.max_retries = 4;
    return std::make_shared<ReliableChannel>(injector, reliable);
  };

  const ResilientResult result = run_resilient(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
  EXPECT_GE(result.rollbacks, 1);
  EXPECT_EQ(result.attempts, result.windows + result.rollbacks);
  EXPECT_GT(result.checkpoints.stored, 0u);
}

TEST(FaultE2E, ResilientRunnerRecoversFusedRunsBitIdentically) {
  // Checkpoint/rollback over fused wavefronts: the runner's windows are
  // sliced in ORIGINAL supersteps (the hook cadence fusing preserves), so a
  // blackout mid-run must roll a fused window back and replay it to the
  // exact serial bits.
  const Problem problem = stencil::random_problem(48, 48, 12);
  const Grid2D expected = solve_serial(problem);

  int attempt = 0;
  ResilientConfig config;
  config.dist = small_config(3);
  config.dist.fuse_depth = 2;  // W = 6 = one checkpoint window per rewrite
  config.checkpoint_supersteps = 2;
  config.channel_factory =
      [&attempt](int nranks) -> std::shared_ptr<net::Channel> {
    auto transport = std::make_shared<net::Transport>(nranks);
    FaultPlan plan;
    // Fused graphs send far fewer messages, so black out early on the first
    // attempt; later attempts get a clean channel.
    if (attempt++ == 0) plan.blackout_after = 5;
    auto injector = std::make_shared<FaultInjector>(transport, plan);
    ReliableConfig reliable;
    reliable.timeout_s = 0.0005;
    reliable.max_retries = 4;
    return std::make_shared<ReliableChannel>(injector, reliable);
  };

  const ResilientResult result = run_resilient(problem, config);
  EXPECT_TRUE(test_support::grids_match(expected, result.grid));
  EXPECT_GE(result.rollbacks, 1);
  EXPECT_GT(result.checkpoints.stored, 0u);
}

TEST(FaultE2E, ResilientRunnerUnderSustainedRandomLoss) {
  // Persistent 10% drop across every window, aggressive give-up threshold:
  // windows may fail repeatedly, yet recovery must converge to the exact
  // serial result within the attempt budget.
  const Problem problem = stencil::random_problem(48, 48, 9);
  const Grid2D expected = solve_serial(problem);

  std::uint64_t next_seed = 100;
  ResilientConfig config;
  config.dist = small_config(3);
  config.max_attempts = 25;
  config.channel_factory =
      [&next_seed](int nranks) -> std::shared_ptr<net::Channel> {
    auto transport = std::make_shared<net::Transport>(nranks);
    auto injector = std::make_shared<FaultInjector>(
        transport, FaultPlan::uniform(next_seed++, 0.10, 0.05, 0.05));
    ReliableConfig reliable;
    reliable.timeout_s = 0.001;
    return std::make_shared<ReliableChannel>(injector, reliable);
  };

  const ResilientResult result = run_resilient(problem, config);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
  EXPECT_GE(result.windows, 3);  // 9 iterations / (1 superstep * s=3) windows
}

}  // namespace
}  // namespace repro::fault
