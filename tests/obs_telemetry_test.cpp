// Flight recorder + cross-rank telemetry: ring semantics, codec, collector
// deltas and detectors, concurrency hammers (TSan targets), and end-to-end
// runs — snapshot-delta determinism on seeded runs, and the straggler
// detector firing when a rank is stalled through the fault injector.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "fault/fault_injector.hpp"
#include "net/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/problem.hpp"

namespace repro::obs {
namespace {

using stencil::DistConfig;
using stencil::DistResult;
using stencil::Problem;

FlightSample make_sample(std::uint64_t i) {
  FlightSample s;
  s.t_s = static_cast<double>(i);
  s.superstep = i;
  s.tasks_executed = i;
  s.steals = i;
  s.wire_bytes = i;
  s.queue_depth = i;
  s.idle_halo_s = static_cast<double>(i);
  s.idle_noready_s = static_cast<double>(i);
  s.idle_steal_s = static_cast<double>(i);
  return s;
}

TEST(FlightRecorder, RingRetainsMostRecentSamplesOldestFirst) {
  FlightRecorder recorder(2, 4);
  for (std::uint64_t i = 0; i < 10; ++i) recorder.record(0, make_sample(i));
  recorder.record(1, make_sample(99));

  if constexpr (kEnabled) {
    EXPECT_EQ(recorder.lanes(), 2u);
    EXPECT_EQ(recorder.capacity(), 4u);
    EXPECT_EQ(recorder.recorded(0), 10u);
    const auto samples = recorder.snapshot(0);
    ASSERT_EQ(samples.size(), 4u);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ(samples[i].tasks_executed, 6u + i);
      EXPECT_EQ(samples[i].superstep, 6u + i);
    }
    const auto other = recorder.snapshot(1);
    ASSERT_EQ(other.size(), 1u);
    EXPECT_EQ(other[0].wire_bytes, 99u);
  } else {
    // Disabled build: the recorder is an inert stub — no memory, no samples.
    EXPECT_EQ(recorder.recorded(0), 0u);
    EXPECT_TRUE(recorder.snapshot(0).empty());
  }
}

TEST(FlightRecorder, ConcurrentScrapeNeverSeesTornSamples) {
  // One writer per lane (the runtime's contract) racing a scraper. Every
  // recorded sample has all fields equal, so any torn read is detectable.
  FlightRecorder recorder(1, 16);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 20000; ++i) recorder.record(0, make_sample(i));
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      for (const FlightSample& s : recorder.snapshot(0)) {
        if (s.tasks_executed != s.steals || s.steals != s.wire_bytes ||
            s.wire_bytes != s.queue_depth || s.superstep != s.tasks_executed) {
          torn.fetch_add(1);
        }
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  if constexpr (kEnabled) {
    EXPECT_EQ(recorder.recorded(0), 20000u);
    EXPECT_EQ(recorder.snapshot(0).size(), 16u);
  }
}

TEST(TelemetryCodec, RoundTripsEveryField) {
  TelemetrySnapshot snap;
  snap.rank = 7;
  snap.superstep = 42;
  snap.tasks_executed = 1000;
  snap.sent_messages = 12;
  snap.sent_bytes = 34567;
  snap.steals = 3;
  snap.queue_depth = 9;
  snap.idle_halo_s = 0.25;
  snap.idle_noready_s = 0.5;
  snap.idle_steal_s = 0.125;
  snap.t_s = 1.75;

  const std::vector<double> wire = encode_telemetry(snap);
  EXPECT_EQ(wire.size(), kTelemetryDoubles);

  TelemetrySnapshot back;
  ASSERT_TRUE(decode_telemetry(wire, &back));
  EXPECT_EQ(back.rank, snap.rank);
  EXPECT_EQ(back.superstep, snap.superstep);
  EXPECT_EQ(back.tasks_executed, snap.tasks_executed);
  EXPECT_EQ(back.sent_messages, snap.sent_messages);
  EXPECT_EQ(back.sent_bytes, snap.sent_bytes);
  EXPECT_EQ(back.steals, snap.steals);
  EXPECT_EQ(back.queue_depth, snap.queue_depth);
  EXPECT_EQ(back.idle_halo_s, snap.idle_halo_s);
  EXPECT_EQ(back.idle_noready_s, snap.idle_noready_s);
  EXPECT_EQ(back.idle_steal_s, snap.idle_steal_s);
  EXPECT_EQ(back.t_s, snap.t_s);

  // Wrong-size payloads are rejected without touching *out.
  std::vector<double> bad(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(decode_telemetry(bad, &back));

  // The wire constant matches the runtime's framing: 8-byte tag + one header
  // word + the payload doubles.
  EXPECT_EQ(kTelemetryWireBytes, (2 + kTelemetryDoubles) * sizeof(double));
}

TelemetrySnapshot rank_at(int rank, std::uint64_t superstep,
                          std::uint64_t tasks = 0) {
  TelemetrySnapshot snap;
  snap.rank = rank;
  snap.superstep = superstep;
  snap.tasks_executed = tasks;
  return snap;
}

TEST(TelemetryCollector, TracksLatestAndDeltas) {
  TelemetryCollector collector(2);
  collector.ingest(rank_at(0, 0, 10));
  collector.ingest(rank_at(1, 0, 20));
  collector.ingest(rank_at(0, 1, 25));

  EXPECT_EQ(collector.deltas_total(), 3u);
  const auto latest = collector.latest();
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest[0].superstep, 1u);
  EXPECT_EQ(latest[0].tasks_executed, 25u);
  EXPECT_EQ(latest[1].superstep, 0u);
}

TEST(TelemetryCollector, StragglerDetectorFiresOnceOnSuperstepLag) {
  DetectorConfig config;
  config.straggler_lag = 2;
  TelemetryCollector collector(4, config);

  // Every rank reports boundary 0, then ranks 0..2 advance while rank 3
  // stays silent — once the median leads by >= 2 the detector fires, and
  // stays fired (edge-triggered) while the condition persists.
  for (int r = 0; r < 4; ++r) collector.ingest(rank_at(r, 0));
  for (std::uint64_t b = 1; b <= 4; ++b) {
    for (int r = 0; r < 3; ++r) collector.ingest(rank_at(r, b));
  }

  std::size_t stragglers = 0;
  for (const TelemetryEvent& event : collector.events()) {
    if (event.detector == "straggler") {
      ++stragglers;
      EXPECT_EQ(event.rank, 3);
      EXPECT_GE(event.value, 2.0);
      EXPECT_EQ(event.threshold, 2.0);
    }
  }
  EXPECT_EQ(stragglers, 1u);
}

TEST(TelemetryCollector, HaloShareDetectorNeedsMinimumIdle) {
  DetectorConfig config;
  config.halo_share = 0.90;
  config.halo_min_idle_s = 0.05;
  TelemetryCollector collector(1, config);

  // First delta: halo-dominated but under the idle floor — no event.
  TelemetrySnapshot snap = rank_at(0, 0);
  snap.idle_halo_s = 0.04;
  collector.ingest(snap);
  EXPECT_TRUE(collector.events().empty());

  // Second delta adds 0.2s of idle, 96% of it halo wait — fires.
  snap.superstep = 1;
  snap.idle_halo_s += 0.192;
  snap.idle_noready_s += 0.008;
  collector.ingest(snap);
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detector, "halo_share");
  EXPECT_GE(events[0].value, 0.90);
}

TEST(TelemetryCollector, QueueWatermarkDetectorIsEdgeTriggered) {
  DetectorConfig config;
  config.queue_watermark = 8;
  TelemetryCollector collector(1, config);

  TelemetrySnapshot snap = rank_at(0, 0);
  snap.queue_depth = 9;
  collector.ingest(snap);
  snap.superstep = 1;
  snap.queue_depth = 12;  // still above: no second event
  collector.ingest(snap);
  snap.superstep = 2;
  snap.queue_depth = 2;  // clears
  collector.ingest(snap);
  snap.superstep = 3;
  snap.queue_depth = 20;  // re-fires
  collector.ingest(snap);

  std::size_t fired = 0;
  for (const TelemetryEvent& event : collector.events()) {
    if (event.detector == "queue_depth") ++fired;
  }
  EXPECT_EQ(fired, 2u);
}

TEST(TelemetryCollector, ToJsonValidatesAndEmbedsInRunReport) {
  TelemetryCollector collector(2);
  collector.ingest(rank_at(0, 0, 5));
  collector.ingest(rank_at(1, 0, 6));
  collector.ingest(rank_at(0, 1, 9));

  const Json doc = collector.to_json();
  std::string error;
  EXPECT_TRUE(validate_telemetry(doc, &error)) << error;

  RunReport report("telemetry_embed_test");
  report.set_telemetry(doc);
  EXPECT_TRUE(validate_run_report(report.to_string(), &error)) << error;

  // A corrupted stream must be rejected both standalone and embedded.
  Json broken = doc;
  broken["deltas"] = Json("not an array");
  EXPECT_FALSE(validate_telemetry(broken, &error));
  RunReport bad_report("telemetry_embed_test");
  bad_report.set_telemetry(broken);
  EXPECT_FALSE(validate_run_report(bad_report.to_string(), &error));
}

TEST(TelemetryCollector, ConcurrentIngestAndScrapeHammer) {
  // 8 writer threads (one rank each) racing a live scraper that exercises
  // every reader surface — the TSan target for the collector's locking.
  constexpr int kRanks = 8;
  constexpr std::uint64_t kBoundaries = 200;
  auto registry = std::make_shared<MetricsRegistry>();
  TelemetryCollector collector(kRanks, DetectorConfig{}, registry, "real");

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      collector.latest();
      collector.events();
      collector.fingerprint();
      collector.to_json();
      registry->snapshot();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    writers.emplace_back([&collector, r] {
      for (std::uint64_t b = 0; b < kBoundaries; ++b) {
        collector.ingest(rank_at(r, b, b * 10));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  scraper.join();

  EXPECT_EQ(collector.deltas_total(), kRanks * kBoundaries);
  const auto latest = collector.latest();
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(latest[static_cast<std::size_t>(r)].superstep, kBoundaries - 1);
  }
  std::string error;
  EXPECT_TRUE(validate_telemetry(collector.to_json(), &error)) << error;
}

TEST(TelemetryCollector, FingerprintIsIngestOrderIndependent) {
  TelemetryCollector forward(3);
  TelemetryCollector shuffled(3);
  std::vector<TelemetrySnapshot> snaps;
  for (std::uint64_t b = 0; b < 5; ++b) {
    for (int r = 0; r < 3; ++r) {
      snaps.push_back(rank_at(r, b, b * 100 + static_cast<std::uint64_t>(r)));
    }
  }
  for (const auto& s : snaps) forward.ingest(s);
  // Rank-major instead of boundary-major: per-rank delta sequences are
  // preserved (the collector requires monotone per-rank streams), but the
  // interleaving across ranks is completely different.
  for (int r = 0; r < 3; ++r) {
    for (std::uint64_t b = 0; b < 5; ++b) {
      shuffled.ingest(snaps[b * 3 + static_cast<std::uint64_t>(r)]);
    }
  }
  EXPECT_EQ(forward.fingerprint(), shuffled.fingerprint());
  EXPECT_NE(forward.fingerprint(), 0u);
}

DistConfig telemetry_config(int steps) {
  DistConfig config;
  config.decomp = {8, 8, 2, 2};
  config.steps = steps;
  config.workers_per_rank = 2;
  config.telemetry = true;
  return config;
}

TEST(TelemetryE2E, SeededRunsProduceIdenticalFingerprints) {
  // Snapshot-delta determinism: the same seeded problem run twice must
  // aggregate to the identical telemetry stream, no matter how the
  // worker/receiver interleaving differed. Counters are sampled the instant
  // a rank completes a boundary, so the sampled values are reproducible
  // exactly when the rank's execution stream is sequential — one tile and
  // one worker per rank (extra tiles or workers let work race ahead of the
  // sampling point, see the structural check below).
  const Problem problem = stencil::random_problem(32, 32, 6);
  DistConfig config = telemetry_config(3);
  config.decomp = {16, 16, 2, 2};  // one tile per rank
  config.workers_per_rank = 1;
  const int boundaries = 1 + problem.iterations / 3;

  std::uint64_t fingerprints[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    const DistResult result = run_distributed(problem, config);
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_EQ(result.telemetry->nranks(), 4);
    // Every rank reports every boundary (INIT included) exactly once.
    EXPECT_EQ(result.telemetry->deltas_total(),
              static_cast<std::uint64_t>(4 * boundaries));
    fingerprints[run] = result.telemetry->fingerprint();

    std::string error;
    EXPECT_TRUE(validate_telemetry(result.telemetry->to_json(), &error))
        << error;
    if constexpr (kEnabled) {
      // Real runs carry real progress: the final snapshot of every rank has
      // executed tasks and (ranks > 0) shipped bytes.
      for (const TelemetrySnapshot& snap : result.telemetry->latest()) {
        EXPECT_GT(snap.tasks_executed, 0u);
        EXPECT_EQ(snap.superstep, static_cast<std::uint64_t>(boundaries - 1));
        if (snap.rank != 0) {
          EXPECT_GT(snap.sent_bytes, 0u);
        }
      }
    }
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);

  // Multi-tile ranks: the sampled counter VALUES may legitimately differ
  // between runs (sibling tiles race ahead), but the stream SHAPE — which
  // rank reported which boundary, how often — stays deterministic.
  for (int run = 0; run < 2; ++run) {
    const DistResult result = run_distributed(problem, telemetry_config(3));
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_EQ(result.telemetry->deltas_total(),
              static_cast<std::uint64_t>(4 * boundaries));
    for (const TelemetrySnapshot& snap : result.telemetry->latest()) {
      EXPECT_EQ(snap.superstep, static_cast<std::uint64_t>(boundaries - 1));
    }
  }
}

TEST(TelemetryE2E, TelemetryRunMatchesPlainRunBitIdentically) {
  // Telemetry is pure observation: the solved field must be bit-identical
  // with and without it, and the extra wire traffic must be exactly the
  // telemetry schedule — (nodes - 1) snapshots per superstep boundary of
  // kTelemetryWireBytes each.
  const Problem problem = stencil::random_problem(32, 32, 6);
  DistConfig plain = telemetry_config(3);
  plain.telemetry = false;

  const DistResult without = run_distributed(problem, plain);
  const DistResult with = run_distributed(problem, telemetry_config(3));
  EXPECT_EQ(stencil::Grid2D::max_abs_diff(without.grid, with.grid), 0.0);

  const std::uint64_t boundaries = 1 + problem.iterations / 3;
  const std::uint64_t extra_messages = 3 * boundaries;  // ranks 1..3
  EXPECT_EQ(with.stats.messages - without.stats.messages, extra_messages);
  EXPECT_EQ(with.stats.bytes - without.stats.bytes,
            extra_messages * kTelemetryWireBytes);
}

TEST(TelemetryE2E, StalledRankTripsTheStragglerDetector) {
  // A scripted fault::FaultInjector stall holds everything one rank sends —
  // halo bands AND its own telemetry snapshots. Its last-known superstep
  // freezes while ranks farther away keep advancing (the dependency wave
  // lets a rank at Manhattan distance d run ~d boundaries ahead), so the
  // median pulls away and the straggler detector must fire for exactly the
  // stalled rank.
  const Problem problem = stencil::random_problem(48, 48, 12);

  DistConfig config;
  config.decomp = {12, 12, 4, 4};  // one tile per rank, 16 ranks
  config.steps = 1;
  config.telemetry = true;
  config.telemetry_detectors.straggler_lag = 2;
  const int stalled_rank = 15;
  config.channel_factory = [stalled_rank](int nranks) {
    auto transport = std::make_shared<net::Transport>(nranks);
    fault::FaultPlan plan;
    plan.stalls.push_back(
        fault::StallEvent{stalled_rank, /*after_sends=*/6,
                          /*duration_s=*/2.0});
    return std::make_shared<fault::FaultInjector>(transport, plan);
  };

  const DistResult result = run_distributed(problem, config);
  ASSERT_NE(result.telemetry, nullptr);

  bool straggler_fired = false;
  for (const TelemetryEvent& event : result.telemetry->events()) {
    if (event.detector == "straggler" && event.rank == stalled_rank) {
      straggler_fired = true;
      EXPECT_GE(event.value, 2.0);
    }
  }
  EXPECT_TRUE(straggler_fired);

  // The event survives into the validated report surface.
  RunReport report("straggler_stall_test");
  report.set_telemetry(result.telemetry->to_json());
  std::string error;
  EXPECT_TRUE(validate_run_report(report.to_string(), &error)) << error;
}

}  // namespace
}  // namespace repro::obs
