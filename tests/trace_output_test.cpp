// Output-format tests: ASCII Gantt rendering, trace analysis corner cases,
// table CSV emission, and NetPIPE size sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "net/netpipe.hpp"
#include "runtime/runtime.hpp"
#include "runtime/trace.hpp"
#include "support/table.hpp"

namespace repro {
namespace {

rt::TraceEvent event(const char* klass, int rank, int worker, double begin,
                     double end) {
  rt::TraceEvent e;
  e.klass = klass;
  e.rank = rank;
  e.worker = worker;
  e.begin_s = begin;
  e.end_s = end;
  return e;
}

TEST(Gantt, EmptyTraceSaysSo) {
  std::ostringstream os;
  rt::print_ascii_gantt({}, os);
  EXPECT_NE(os.str().find("empty trace"), std::string::npos);
}

TEST(Gantt, LanesAndDominantClasses) {
  std::vector<rt::TraceEvent> events{
      event("alpha", 0, 0, 0.0, 0.6),   // dominates first half of lane r0w0
      event("beta", 0, 0, 0.6, 1.0),    // second part
      event("gamma", 1, 0, 0.0, 1.0)};  // full lane r1w0
  std::ostringstream os;
  rt::print_ascii_gantt(events, os, /*columns=*/10);
  const std::string text = os.str();
  // One lane per (rank, worker).
  EXPECT_NE(text.find("r0w0"), std::string::npos);
  EXPECT_NE(text.find("r1w0"), std::string::npos);
  EXPECT_EQ(text.find("r0w1"), std::string::npos);
  // Lane r1w0 is solid 'g'; lane r0w0 starts with 'a' and ends with 'b'.
  EXPECT_NE(text.find("gggggggggg"), std::string::npos);
  EXPECT_NE(text.find("|aaaa"), std::string::npos);
  EXPECT_NE(text.find("bb|"), std::string::npos);
}

TEST(Gantt, IdleGapsRenderAsDots) {
  std::vector<rt::TraceEvent> events{event("x", 0, 0, 0.0, 0.2),
                                     event("x", 0, 0, 0.8, 1.0)};
  std::ostringstream os;
  rt::print_ascii_gantt(events, os, /*columns=*/10);
  EXPECT_NE(os.str().find("..."), std::string::npos);
}

TEST(TraceAnalysis, OccupancySplitsByRank) {
  // Rank 0: one worker busy 1.0 of a 2.0 span with 2 workers -> 25%.
  std::vector<rt::TraceEvent> events{event("k", 0, 0, 0.0, 1.0),
                                     event("k", 1, 0, 0.0, 2.0),
                                     event("k", 1, 1, 0.0, 2.0)};
  const rt::TraceReport report = rt::analyze_trace(events, /*workers=*/2);
  EXPECT_DOUBLE_EQ(report.span_s, 2.0);
  EXPECT_DOUBLE_EQ(report.occupancy_by_rank.at(0), 0.25);
  EXPECT_DOUBLE_EQ(report.occupancy_by_rank.at(1), 1.0);
  EXPECT_DOUBLE_EQ(report.median_duration_by_klass.at("k"), 2.0);
  EXPECT_EQ(report.count_by_klass.at("k"), 3u);
}

TEST(TraceAnalysis, EmptyTraceIsZeroes) {
  const rt::TraceReport report = rt::analyze_trace({}, 4);
  EXPECT_EQ(report.span_s, 0.0);
  EXPECT_TRUE(report.occupancy_by_rank.empty());
}

TEST(TraceAnalysis, StealEventsAreCountedButExcludedFromOccupancy) {
  std::vector<rt::TraceEvent> events{event("k", 0, 0, 0.0, 1.0),
                                     event("k", 0, 1, 0.0, 1.0)};
  rt::TraceEvent steal;
  steal.kind = rt::TraceEventKind::Steal;
  steal.klass = "steal";
  steal.rank = 0;
  steal.worker = 1;
  steal.steal_victim = 0;
  steal.begin_s = steal.end_s = 0.5;
  events.push_back(steal);

  const rt::TraceReport report = rt::analyze_trace(events, /*workers=*/2);
  EXPECT_EQ(report.steals, 1u);
  // The steal neither widens the span nor shows up as a task class.
  EXPECT_DOUBLE_EQ(report.span_s, 1.0);
  EXPECT_DOUBLE_EQ(report.occupancy_by_rank.at(0), 1.0);
  EXPECT_EQ(report.count_by_klass.count("steal"), 0u);
}

TEST(TraceCsv, RoundTripsTaskAndStealEventsExactly) {
  // Keys contain commas ("t7(1,2,3)") and timestamps are full-precision
  // doubles: the writer must quote and the reader must recover every field
  // bit for bit.
  std::vector<rt::TraceEvent> events;
  rt::TraceEvent task = event("boundary", 2, 3, 0.1234567890123456789, 0.5);
  task.key = rt::TaskKey{7, 1, -2, 3};
  events.push_back(task);
  rt::TraceEvent steal;
  steal.kind = rt::TraceEventKind::Steal;
  steal.klass = "steal";
  steal.rank = 1;
  steal.worker = 0;
  steal.steal_victim = 3;
  steal.begin_s = steal.end_s = 1.0 / 3.0;
  events.push_back(steal);

  std::stringstream ss;
  rt::write_trace_csv(events, ss);
  const std::vector<rt::TraceEvent> back = rt::read_trace_csv(ss);

  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].kind, events[i].kind) << i;
    EXPECT_EQ(back[i].key, events[i].key) << i;
    EXPECT_EQ(back[i].klass, events[i].klass) << i;
    EXPECT_EQ(back[i].rank, events[i].rank) << i;
    EXPECT_EQ(back[i].worker, events[i].worker) << i;
    EXPECT_EQ(back[i].steal_victim, events[i].steal_victim) << i;
    EXPECT_EQ(back[i].begin_s, events[i].begin_s) << i;  // exact, not near
    EXPECT_EQ(back[i].end_s, events[i].end_s) << i;
  }
}

TEST(TraceAnalysis, ZeroWidthAndBoundaryEventsDontInflateBusyTime) {
  // Two back-to-back tasks on one worker share the instant t=1.0, and a
  // zero-width Steal sits exactly on that boundary. Busy time is the union
  // of intervals, so the lane reports exactly 2.0 s busy — the old
  // sum-of-durations accounting would have been correct here, but any
  // overlap (or a nonzero-width event at the seam) must not double-count.
  std::vector<rt::TraceEvent> events{event("k", 0, 0, 0.0, 1.0),
                                     event("k", 0, 0, 1.0, 2.0)};
  rt::TraceEvent steal;
  steal.kind = rt::TraceEventKind::Steal;
  steal.klass = "steal";
  steal.rank = 0;
  steal.worker = 0;
  steal.steal_victim = 1;
  steal.begin_s = steal.end_s = 1.0;
  events.push_back(steal);
  // An overlapping duplicate span (e.g. from a merged multi-run stream) only
  // extends the union by its uncovered part.
  events.push_back(event("k", 0, 0, 0.5, 1.5));

  const rt::TraceReport report = rt::analyze_trace(events, /*workers=*/1);
  EXPECT_DOUBLE_EQ(report.busy_by_worker.at({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(report.occupancy_by_rank.at(0), 1.0);
  EXPECT_EQ(report.steals, 1u);
}

TEST(TraceCsv, RoundTripsCausalMessageAndIdleEvents) {
  // The causal kinds carry the message fields (peer, flow, bytes, enqueue /
  // wire timestamps, retransmits) and dependency-key lists; all must
  // round-trip exactly, including multi-entry deps on Task events.
  std::vector<rt::TraceEvent> events;

  rt::TraceEvent task = event("boundary", 0, 1, 0.1, 0.2);
  task.key = rt::TaskKey{7, 1, 2, 3};
  task.deps = {rt::TaskKey{7, 0, 2, 3}, rt::TaskKey{7, 0, 1, 3}};
  events.push_back(task);

  rt::TraceEvent send = event("send", 0, rt::kTraceLaneSend, 0.25, 0.26);
  send.kind = rt::TraceEventKind::Send;
  send.peer = 3;
  send.flow = 42;
  send.bytes = 4096;
  send.queued_s = 0.24;
  send.wire_s = 0.25;
  events.push_back(send);

  rt::TraceEvent recv = event("recv", 3, rt::kTraceLaneRecv, 0.27, 0.28);
  recv.kind = rt::TraceEventKind::Recv;
  recv.key = rt::TaskKey{7, 2, 2, 3};
  recv.deps = {rt::TaskKey{7, 1, 2, 3}};
  recv.peer = 0;
  recv.flow = 42;
  recv.bytes = 4000;
  recv.queued_s = 0.24;
  recv.wire_s = 0.25;
  recv.retransmits = 2;
  events.push_back(recv);

  rt::TraceEvent idle = event("idle-halo", 3, 0, 0.2, 0.28);
  idle.kind = rt::TraceEventKind::Idle;
  events.push_back(idle);

  std::stringstream ss;
  rt::write_trace_csv(events, ss);
  const std::vector<rt::TraceEvent> back = rt::read_trace_csv(ss);

  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].kind, events[i].kind) << i;
    EXPECT_EQ(back[i].key, events[i].key) << i;
    EXPECT_EQ(back[i].klass, events[i].klass) << i;
    EXPECT_EQ(back[i].peer, events[i].peer) << i;
    EXPECT_EQ(back[i].flow, events[i].flow) << i;
    EXPECT_EQ(back[i].bytes, events[i].bytes) << i;
    EXPECT_EQ(back[i].queued_s, events[i].queued_s) << i;
    EXPECT_EQ(back[i].wire_s, events[i].wire_s) << i;
    EXPECT_EQ(back[i].retransmits, events[i].retransmits) << i;
    ASSERT_EQ(back[i].deps.size(), events[i].deps.size()) << i;
    for (std::size_t d = 0; d < events[i].deps.size(); ++d) {
      EXPECT_EQ(back[i].deps[d], events[i].deps[d]) << i << "/" << d;
    }
  }
}

TEST(TraceChrome, EmitsCommSpansAndFlowArrows) {
  // Producer task on rank 0, consumer on rank 1, linked by a Recv whose dep
  // names the producer: the Chrome export must contain complete events for
  // both comm lanes and a flow-arrow start/finish pair.
  std::vector<rt::TraceEvent> events;
  rt::TraceEvent producer = event("p", 0, 0, 0.0, 1.0);
  producer.key = rt::TaskKey{1, 0, 0, 0};
  events.push_back(producer);
  rt::TraceEvent consumer = event("c", 1, 0, 2.0, 3.0);
  consumer.key = rt::TaskKey{1, 1, 0, 0};
  consumer.deps = {producer.key};
  events.push_back(consumer);
  rt::TraceEvent send = event("send", 0, rt::kTraceLaneSend, 1.0, 1.1);
  send.kind = rt::TraceEventKind::Send;
  send.peer = 1;
  send.flow = 7;
  events.push_back(send);
  rt::TraceEvent recv = event("recv", 1, rt::kTraceLaneRecv, 1.5, 1.9);
  recv.kind = rt::TraceEventKind::Recv;
  recv.key = consumer.key;
  recv.deps = {producer.key};
  recv.peer = 0;
  recv.flow = 7;
  events.push_back(recv);

  std::ostringstream os;
  rt::write_chrome_trace(events, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);  // arrow start
  EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);  // arrow finish
  EXPECT_NE(text.find("\"name\":\"send "), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"recv "), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"comm\""), std::string::npos);
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), '\n');
}

TEST(TraceCsv, ReadsLegacySevenColumnHeader) {
  std::stringstream ss;
  ss << "rank,worker,klass,key,begin_s,end_s,duration_s\n"
     << "0,1,init,t3(4,5,6),0.25,0.75,0.5\n";
  const auto events = rt::read_trace_csv(ss);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, rt::TraceEventKind::Task);
  EXPECT_EQ(events[0].key, (rt::TaskKey{3, 4, 5, 6}));
  EXPECT_EQ(events[0].steal_victim, -1);
  EXPECT_EQ(events[0].begin_s, 0.25);
}

TEST(TraceCsv, ReadsLegacyNineColumnHeader) {
  // The pre-causal header (kind + victim but no message columns): message
  // fields default to zero / -1 and deps stay empty.
  std::stringstream ss;
  ss << "rank,worker,klass,key,begin_s,end_s,duration_s,kind,victim\n"
     << "1,2,steal,\"t0(0,0,0)\",0.5,0.5,0,steal,0\n";
  const auto events = rt::read_trace_csv(ss);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, rt::TraceEventKind::Steal);
  EXPECT_EQ(events[0].steal_victim, 0);
  EXPECT_EQ(events[0].peer, -1);
  EXPECT_EQ(events[0].flow, 0u);
  EXPECT_EQ(events[0].bytes, 0u);
  EXPECT_TRUE(events[0].deps.empty());
}

TEST(TraceCsv, RejectsMalformedRows) {
  std::stringstream bad_header;
  bad_header << "rank,worker\n";
  EXPECT_THROW(rt::read_trace_csv(bad_header), std::runtime_error);

  std::stringstream bad_key;
  bad_key << "rank,worker,klass,key,begin_s,end_s,duration_s,kind,victim\n"
          << "0,0,k,\"nonsense\",0,1,1,task,-1\n";
  EXPECT_THROW(rt::read_trace_csv(bad_key), std::runtime_error);
}

// Concurrent workers write one shared tracer; per worker, task events must
// still be well-formed and monotone (a worker executes serially, so after
// sorting its events by begin time they may not overlap). Exercised under
// both schedulers with enough tasks to keep every worker busy.
TEST(TraceConcurrency, PerWorkerTimestampsAreMonotone) {
#ifdef REPRO_OBS_DISABLE
  GTEST_SKIP() << "tracing is compiled out";
#endif
  for (const auto policy :
       {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
    rt::TaskGraph graph;
    constexpr int kTasks = 120;
    for (int i = 0; i < kTasks; ++i) {
      rt::TaskSpec t;
      t.key = rt::TaskKey{4, i, 0, 0};
      t.rank = i % 2;
      t.body = [](rt::TaskContext&) {
        volatile double sink = 0.0;
        for (int n = 0; n < 500; ++n) sink = sink + n;
      };
      graph.add_task(std::move(t));
    }

    rt::Config config;
    config.nranks = 2;
    config.workers_per_rank = 3;
    config.trace = true;
    config.scheduler = policy;
    rt::Runtime runtime(config);
    runtime.run(graph);

    std::map<std::pair<int, int>, std::vector<rt::TraceEvent>> by_worker;
    std::size_t task_events = 0;
    for (const auto& e : runtime.tracer().events()) {
      if (e.kind != rt::TraceEventKind::Task) continue;
      ++task_events;
      by_worker[{e.rank, e.worker}].push_back(e);
    }
    EXPECT_EQ(task_events, static_cast<std::size_t>(kTasks))
        << rt::sched_policy_name(policy);

    for (auto& [id, lane] : by_worker) {
      std::sort(lane.begin(), lane.end(),
                [](const rt::TraceEvent& a, const rt::TraceEvent& b) {
                  return a.begin_s < b.begin_s;
                });
      for (std::size_t i = 0; i < lane.size(); ++i) {
        ASSERT_LE(lane[i].begin_s, lane[i].end_s)
            << "r" << id.first << "w" << id.second << " event " << i;
        if (i > 0) {
          ASSERT_LE(lane[i - 1].end_s, lane[i].begin_s)
              << "r" << id.first << "w" << id.second << " events " << i - 1
              << "," << i << " overlap under "
              << rt::sched_policy_name(policy);
        }
      }
    }
  }
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  const std::string path = "/tmp/repro_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2,y");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.14159, 0), "3");
  EXPECT_EQ(Table::cell(static_cast<long long>(-42)), "-42");
}

TEST(Netpipe, SizesArePowersOfTwoWithinBounds) {
  const auto sizes = net::netpipe_sizes(64, 4096);
  ASSERT_EQ(sizes.size(), 7u);  // 64..4096
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], 2 * sizes[i - 1]);
  }
  EXPECT_EQ(sizes.front(), 64u);
  EXPECT_EQ(sizes.back(), 4096u);
}

}  // namespace
}  // namespace repro
