// Output-format tests: ASCII Gantt rendering, trace analysis corner cases,
// table CSV emission, and NetPIPE size sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/netpipe.hpp"
#include "runtime/trace.hpp"
#include "support/table.hpp"

namespace repro {
namespace {

rt::TraceEvent event(const char* klass, int rank, int worker, double begin,
                     double end) {
  rt::TraceEvent e;
  e.klass = klass;
  e.rank = rank;
  e.worker = worker;
  e.begin_s = begin;
  e.end_s = end;
  return e;
}

TEST(Gantt, EmptyTraceSaysSo) {
  std::ostringstream os;
  rt::print_ascii_gantt({}, os);
  EXPECT_NE(os.str().find("empty trace"), std::string::npos);
}

TEST(Gantt, LanesAndDominantClasses) {
  std::vector<rt::TraceEvent> events{
      event("alpha", 0, 0, 0.0, 0.6),   // dominates first half of lane r0w0
      event("beta", 0, 0, 0.6, 1.0),    // second part
      event("gamma", 1, 0, 0.0, 1.0)};  // full lane r1w0
  std::ostringstream os;
  rt::print_ascii_gantt(events, os, /*columns=*/10);
  const std::string text = os.str();
  // One lane per (rank, worker).
  EXPECT_NE(text.find("r0w0"), std::string::npos);
  EXPECT_NE(text.find("r1w0"), std::string::npos);
  EXPECT_EQ(text.find("r0w1"), std::string::npos);
  // Lane r1w0 is solid 'g'; lane r0w0 starts with 'a' and ends with 'b'.
  EXPECT_NE(text.find("gggggggggg"), std::string::npos);
  EXPECT_NE(text.find("|aaaa"), std::string::npos);
  EXPECT_NE(text.find("bb|"), std::string::npos);
}

TEST(Gantt, IdleGapsRenderAsDots) {
  std::vector<rt::TraceEvent> events{event("x", 0, 0, 0.0, 0.2),
                                     event("x", 0, 0, 0.8, 1.0)};
  std::ostringstream os;
  rt::print_ascii_gantt(events, os, /*columns=*/10);
  EXPECT_NE(os.str().find("..."), std::string::npos);
}

TEST(TraceAnalysis, OccupancySplitsByRank) {
  // Rank 0: one worker busy 1.0 of a 2.0 span with 2 workers -> 25%.
  std::vector<rt::TraceEvent> events{event("k", 0, 0, 0.0, 1.0),
                                     event("k", 1, 0, 0.0, 2.0),
                                     event("k", 1, 1, 0.0, 2.0)};
  const rt::TraceReport report = rt::analyze_trace(events, /*workers=*/2);
  EXPECT_DOUBLE_EQ(report.span_s, 2.0);
  EXPECT_DOUBLE_EQ(report.occupancy_by_rank.at(0), 0.25);
  EXPECT_DOUBLE_EQ(report.occupancy_by_rank.at(1), 1.0);
  EXPECT_DOUBLE_EQ(report.median_duration_by_klass.at("k"), 2.0);
  EXPECT_EQ(report.count_by_klass.at("k"), 3u);
}

TEST(TraceAnalysis, EmptyTraceIsZeroes) {
  const rt::TraceReport report = rt::analyze_trace({}, 4);
  EXPECT_EQ(report.span_s, 0.0);
  EXPECT_TRUE(report.occupancy_by_rank.empty());
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  const std::string path = "/tmp/repro_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2,y");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.14159, 0), "3");
  EXPECT_EQ(Table::cell(static_cast<long long>(-42)), "-42");
}

TEST(Netpipe, SizesArePowersOfTwoWithinBounds) {
  const auto sizes = net::netpipe_sizes(64, 4096);
  ASSERT_EQ(sizes.size(), 7u);  // 64..4096
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], 2 * sizes[i - 1]);
  }
  EXPECT_EQ(sizes.front(), 64u);
  EXPECT_EQ(sizes.back(), 4096u);
}

}  // namespace
}  // namespace repro
