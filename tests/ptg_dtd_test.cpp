// Tests for the two PaRSEC-style DSLs (PTG and DTD), the scheduler policies,
// and the trace exporters. The headline test writes the base 5-point stencil
// as a PTG program — one task class per JDF "function", dataflow expressions
// naming peer tasks symbolically — and checks it against the serial
// reference bit for bit, with every tile on its own rank so every halo
// crosses the (virtual) network.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "runtime/dtd.hpp"
#include "runtime/ptg.hpp"
#include "runtime/runtime.hpp"
#include "stencil/halo.hpp"
#include "stencil/problem.hpp"
#include "stencil/serial.hpp"

namespace repro::rt {
namespace {

using ptg::Params;
using ptg::PtgProgram;

TEST(Ptg, EnumeratesConstantRanges) {
  PtgProgram program;
  std::atomic<int> runs{0};
  program.task_class("grid")
      .parameter("i", 0, 2)
      .parameter("j", 0, 3)
      .body([&](TaskContext&, const Params&) { ++runs; });
  TaskGraph graph = program.unfold();
  EXPECT_EQ(graph.size(), 12u);
  Runtime runtime(Config{1, 2});
  runtime.run(graph);
  EXPECT_EQ(runs.load(), 12);
}

TEST(Ptg, DependentRangesFormTriangle) {
  PtgProgram program;
  program.task_class("tri")
      .parameter("i", 0, 3)
      .parameter("j", [](const Params&) { return 0; },
                 [](const Params& p) { return p[0]; })  // j <= i
      .body([](TaskContext&, const Params&) {});
  EXPECT_EQ(program.unfold().size(), 4u + 3u + 2u + 1u);
}

TEST(Ptg, EmptyRangeYieldsNoInstances) {
  PtgProgram program;
  program.task_class("none")
      .parameter("i", 5, 4)
      .body([](TaskContext&, const Params&) {});
  EXPECT_EQ(program.unfold().size(), 0u);
}

TEST(Ptg, RejectsMissingBodyAndTooManyParams) {
  {
    PtgProgram program;
    program.task_class("nobody").parameter("i", 0, 0);
    EXPECT_THROW(program.unfold(), std::runtime_error);
  }
  {
    PtgProgram program;
    auto& tc = program.task_class("big")
                   .parameter("a", 0, 0)
                   .parameter("b", 0, 0)
                   .parameter("c", 0, 0);
    EXPECT_THROW(tc.parameter("d", 0, 0), std::runtime_error);
  }
}

TEST(Ptg, PipelineAcrossClassesAndRanks) {
  // source -> stage(k), k = 0..4, alternating ranks; each stage adds k.
  PtgProgram program;
  auto& source = program.task_class("source");
  source.rank([](const Params&) { return 0; })
      .body([](TaskContext& ctx, const Params&) {
        ctx.publish(0, std::vector<double>{10.0});
      });
  auto& stage = program.task_class("stage");
  stage.parameter("k", 0, 4)
      .rank([](const Params& p) { return p[0] % 2; })
      .flow([&](const Params& p) -> std::vector<ptg::FlowEnd> {
        if (p[0] == 0) return {PtgProgram::ref(source, Params{})};
        return {PtgProgram::ref(stage, Params{{p[0] - 1, 0, 0}})};
      })
      .body([](TaskContext& ctx, const Params& p) {
        ctx.publish(0, std::vector<double>{ctx.input(0)[0] + p[0]});
      });

  TaskGraph graph = program.unfold();
  Runtime runtime(Config{2, 1});
  const RunStats stats = runtime.run(graph);
  const Buffer out =
      runtime.result(PtgProgram::key_of(stage, Params{{4, 0, 0}}), 0);
  EXPECT_DOUBLE_EQ((*out)[0], 10.0 + 0 + 1 + 2 + 3 + 4);
  EXPECT_GT(stats.messages, 0u);
}

// ---- The showcase: the base stencil as a PTG program, one tile per rank --

TEST(Ptg, BaseStencilMatchesSerialWithEveryHaloRemote) {
  using namespace repro::stencil;
  const int T = 3;        // 3x3 tiles, each on its own rank
  const int tile = 5;     // 15x15 grid
  const int n = T * tile;
  const int iters = 6;
  const Problem problem = random_problem(n, n, iters);
  const TileGeom g{tile, tile, 1, 1, 1, 1};

  PtgProgram program;
  auto rank_of = [T](const Params& p) { return p[1] * T + p[2]; };

  // Slot layout: 0 = STATE, 1 + side = band packed from that side of core.
  auto band_slot = [](Side s) {
    return static_cast<std::uint16_t>(1 + static_cast<int>(s));
  };

  auto& init = program.task_class("init");
  auto& step = program.task_class("step");

  auto publish_state_and_bands = [=, &problem](TaskContext& ctx, int k,
                                               int ti, int tj,
                                               std::vector<double>&& ext) {
    if (k < iters) {
      for (Side s : kAllSides) {
        const int ni = ti + d_ti(s);
        const int nj = tj + d_tj(s);
        if (ni < 0 || ni >= T || nj < 0 || nj >= T) continue;
        ctx.publish(band_slot(s), pack_band(ext.data(), g, s, 1));
      }
    }
    ctx.publish(0, std::move(ext));
    (void)problem;
  };

  init.parameter("zero", 0, 0)
      .parameter("ti", 0, T - 1)
      .parameter("tj", 0, T - 1)
      .rank(rank_of)
      .body([=, &problem](TaskContext& ctx, const Params& p) {
        const int ti = p[1];
        const int tj = p[2];
        std::vector<double> ext(g.size());
        for (int i = -1; i <= tile; ++i) {
          for (int j = -1; j <= tile; ++j) {
            const long gi = static_cast<long>(ti) * tile + i;
            const long gj = static_cast<long>(tj) * tile + j;
            const bool inside = gi >= 0 && gi < n && gj >= 0 && gj < n;
            ext[g.idx(i, j)] =
                inside ? problem.initial(gi, gj) : problem.boundary(gi, gj);
          }
        }
        publish_state_and_bands(ctx, 0, ti, tj, std::move(ext));
      });

  step.parameter("k", 1, iters)
      .parameter("ti", 0, T - 1)
      .parameter("tj", 0, T - 1)
      .rank(rank_of)
      .flow([&](const Params& p) {
        // Own previous state, then the opposite-side band of each existing
        // neighbor (all remote here: one tile per rank).
        std::vector<ptg::FlowEnd> flows;
        const Params prev{{p[0] - 1, p[1], p[2]}};
        flows.push_back(p[0] == 1 ? PtgProgram::ref(init, Params{{0, p[1], p[2]}})
                                  : PtgProgram::ref(step, prev));
        for (Side s : kAllSides) {
          const int ni = p[1] + d_ti(s);
          const int nj = p[2] + d_tj(s);
          if (ni < 0 || ni >= T || nj < 0 || nj >= T) continue;
          const Params nbr_prev{{p[0] - 1, ni, nj}};
          const auto& producer = p[0] == 1 ? init : step;
          const Params key = p[0] == 1 ? Params{{0, ni, nj}} : nbr_prev;
          flows.push_back(
              PtgProgram::ref(producer, key, band_slot(opposite(s))));
        }
        return flows;
      })
      .body([=, &problem](TaskContext& ctx, const Params& p) {
        const int ti = p[1];
        const int tj = p[2];
        const auto prev = ctx.input(0);
        std::vector<double> assembled(prev.begin(), prev.end());
        std::size_t next = 1;
        for (Side s : kAllSides) {
          const int ni = ti + d_ti(s);
          const int nj = tj + d_tj(s);
          if (ni < 0 || ni >= T || nj < 0 || nj >= T) continue;
          unpack_band(assembled.data(), g, s, ctx.input(next), 1);
          ++next;
        }
        std::vector<double> out = assembled;
        jacobi5(assembled.data(), out.data(), g, problem.weights, 0, tile, 0,
                tile);
        publish_state_and_bands(ctx, p[0], ti, tj, std::move(out));
      });

  TaskGraph graph = program.unfold();
  EXPECT_EQ(graph.size(), static_cast<std::size_t>(T * T * (iters + 1)));

  Runtime runtime(Config{T * T, 1});
  const RunStats stats = runtime.run(graph);
  // Every halo crosses ranks: 2*T*(T-1) directed tile pairs * 2 sides...
  // = 12 interior edges * 2 directions = 24 band messages per round.
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(24 * iters));

  const Grid2D expected = solve_serial(problem);
  for (int ti = 0; ti < T; ++ti) {
    for (int tj = 0; tj < T; ++tj) {
      const Buffer state = runtime.result(
          PtgProgram::key_of(step, Params{{iters, ti, tj}}), 0);
      for (int i = 0; i < tile; ++i) {
        for (int j = 0; j < tile; ++j) {
          EXPECT_EQ((*state)[g.idx(i, j)],
                    expected.at(ti * tile + i, tj * tile + j))
              << ti << "," << tj << " cell " << i << "," << j;
        }
      }
    }
  }
}

// ------------------------------------------------------------------- DTD --

TEST(Dtd, SequentialInsertionBuildsCorrectChain) {
  dtd::DtdProgram program;
  const auto x = program.data("x", 0, {1.0, 2.0, 3.0});
  for (int step = 0; step < 5; ++step) {
    program.insert_task("incr", step % 2,
                        {{x, dtd::Access::ReadWrite}},
                        [](dtd::DtdTaskView& t) {
                          dtd::DtdProgram dummy;  // ensure no accidental state
                          (void)dummy;
                          auto v = t.read_vector(dtd::DataHandle{0});
                          for (double& e : v) e += 1.0;
                          t.write(dtd::DataHandle{0}, std::move(v));
                        });
  }
  TaskGraph graph = program.compile();
  EXPECT_EQ(graph.size(), 6u);  // source + 5 increments

  Runtime runtime(Config{2, 1});
  const RunStats stats = runtime.run(graph);
  const Buffer out =
      runtime.result(program.result_key(x), program.result_slot(x));
  EXPECT_DOUBLE_EQ((*out)[0], 6.0);
  EXPECT_DOUBLE_EQ((*out)[2], 8.0);
  EXPECT_GT(stats.messages, 0u);  // chain alternates ranks
}

TEST(Dtd, ReadersShareOneVersionWritersMakeNewOnes) {
  dtd::DtdProgram program;
  const auto src = program.data("src", 0, {5.0});
  std::vector<dtd::DataHandle> sums;
  // Fan-out: four readers of version 0 each write their own datum.
  for (int r = 0; r < 4; ++r) {
    sums.push_back(program.data("sum" + std::to_string(r), 0, {0.0}));
    program.insert_task(
        "reader", 0,
        {{src, dtd::Access::Read}, {sums.back(), dtd::Access::Write}},
        [r, src, sum = sums.back()](dtd::DtdTaskView& t) {
          t.write(sum, std::vector<double>{t.read(src)[0] * (r + 1)});
        });
  }
  // A subsequent writer to src must NOT affect what the readers saw.
  program.insert_task("overwrite", 0, {{src, dtd::Access::Write}},
                      [src](dtd::DtdTaskView& t) {
                        t.write(src, std::vector<double>{-1.0});
                      });

  TaskGraph graph = program.compile();
  Runtime runtime(Config{1, 2});
  runtime.run(graph);
  for (int r = 0; r < 4; ++r) {
    const Buffer out = runtime.result(program.result_key(sums[r]),
                                      program.result_slot(sums[r]));
    EXPECT_DOUBLE_EQ((*out)[0], 5.0 * (r + 1));
  }
  const Buffer final_src =
      runtime.result(program.result_key(src), program.result_slot(src));
  EXPECT_DOUBLE_EQ((*final_src)[0], -1.0);
}

TEST(Dtd, MultiDataTaskGetsDistinctSlots) {
  dtd::DtdProgram program;
  const auto a = program.data("a", 0, {1.0});
  const auto b = program.data("b", 0, {2.0});
  program.insert_task("swap", 0,
                      {{a, dtd::Access::ReadWrite}, {b, dtd::Access::ReadWrite}},
                      [a, b](dtd::DtdTaskView& t) {
                        auto va = t.read_vector(a);
                        auto vb = t.read_vector(b);
                        t.write(a, std::move(vb));
                        t.write(b, std::move(va));
                      });
  TaskGraph graph = program.compile();
  Runtime runtime(Config{1, 1});
  runtime.run(graph);
  EXPECT_DOUBLE_EQ(
      (*runtime.result(program.result_key(a), program.result_slot(a)))[0],
      2.0);
  EXPECT_DOUBLE_EQ(
      (*runtime.result(program.result_key(b), program.result_slot(b)))[0],
      1.0);
}

TEST(Dtd, RejectsDoubleAccessAndUnknownData) {
  dtd::DtdProgram program;
  const auto a = program.data("a", 0, {1.0});
  EXPECT_THROW(program.insert_task(
                   "bad", 0,
                   {{a, dtd::Access::Read}, {a, dtd::Access::Write}},
                   [](dtd::DtdTaskView&) {}),
               std::invalid_argument);
  EXPECT_THROW(program.insert_task("bad2", 0,
                                   {{dtd::DataHandle{42}, dtd::Access::Read}},
                                   [](dtd::DtdTaskView&) {}),
               std::out_of_range);
  EXPECT_THROW(program.result_key(dtd::DataHandle{42}), std::out_of_range);
}

TEST(Dtd, BodyAccessOutsideDeclarationThrows) {
  dtd::DtdProgram program;
  const auto a = program.data("a", 0, {1.0});
  const auto b = program.data("b", 0, {2.0});
  program.insert_task("sneaky", 0, {{a, dtd::Access::Read}},
                      [b](dtd::DtdTaskView& t) {
                        (void)t.read(b);  // b was never declared
                      });
  TaskGraph graph = program.compile();
  Runtime runtime(Config{1, 1});
  EXPECT_THROW(runtime.run(graph), std::runtime_error);
  (void)a;
}

// -------------------------------------------------------- sched policies --

std::vector<int> run_order(SchedPolicy policy) {
  static std::mutex mutex;
  static std::vector<int> order;
  {
    std::lock_guard lock(mutex);
    order.clear();
  }
  TaskGraph graph;
  for (int i = 0; i < 4; ++i) {
    TaskSpec t;
    t.key = TaskKey{1, i, 0, 0};
    t.priority = i;
    t.body = [i](TaskContext&) {
      std::lock_guard lock(mutex);
      order.push_back(i);
    };
    graph.add_task(t);
  }
  Config config{1, 1};
  config.scheduler = policy;
  Runtime runtime(config);
  runtime.run(graph);
  std::lock_guard lock(mutex);
  return order;
}

TEST(Scheduler, PolicyControlsReadyOrder) {
  EXPECT_EQ(run_order(SchedPolicy::PriorityFifo),
            (std::vector<int>{3, 2, 1, 0}));
  EXPECT_EQ(run_order(SchedPolicy::Fifo), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(run_order(SchedPolicy::Lifo), (std::vector<int>{3, 2, 1, 0}));
  // Work stealing with a single worker degenerates to the owner draining
  // its priority lane (priority order, FIFO within) then its low lane.
  EXPECT_EQ(run_order(SchedPolicy::WorkStealing),
            (std::vector<int>{3, 2, 1, 0}));
}

TEST(Scheduler, PolicyNamesRoundTrip) {
  for (const auto policy :
       {SchedPolicy::PriorityFifo, SchedPolicy::Fifo, SchedPolicy::Lifo,
        SchedPolicy::WorkStealing}) {
    EXPECT_EQ(parse_sched_policy(sched_policy_name(policy)), policy);
  }
  EXPECT_THROW(parse_sched_policy("roundrobin"), std::invalid_argument);
}

TEST(Scheduler, LifoDiffersFromFifoOnDynamicGraph) {
  // A source fans out to a,b; with LIFO the most recently enqueued of the
  // two runs first. (Both were enqueued by the same completion, so LIFO
  // runs 'b' (enqueued last) before 'a'; FIFO the reverse.)
  for (auto [policy, expect_first] :
       {std::pair{SchedPolicy::Fifo, 1}, std::pair{SchedPolicy::Lifo, 2}}) {
    static std::mutex mutex;
    static std::vector<int> order;
    {
      std::lock_guard lock(mutex);
      order.clear();
    }
    TaskGraph graph;
    TaskSpec src;
    src.key = TaskKey{0, 0, 0, 0};
    src.body = [](TaskContext& ctx) { ctx.publish(0, {1.0}); };
    graph.add_task(src);
    for (int i = 1; i <= 2; ++i) {
      TaskSpec t;
      t.key = TaskKey{0, i, 0, 0};
      t.inputs = {{TaskKey{0, 0, 0, 0}, 0}};
      t.body = [i](TaskContext&) {
        std::lock_guard lock(mutex);
        order.push_back(i);
      };
      graph.add_task(t);
    }
    Config config{1, 1};
    config.scheduler = policy;
    Runtime runtime(config);
    runtime.run(graph);
    std::lock_guard lock(mutex);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order.front(), expect_first)
        << (policy == SchedPolicy::Fifo ? "fifo" : "lifo");
  }
}

// -------------------------------------------------------- trace exporters --

TEST(TraceExport, ChromeTraceIsWellFormedJsonArray) {
  std::vector<TraceEvent> events;
  TraceEvent e;
  e.key = TaskKey{1, 2, 3, 4};
  e.klass = "jacobi";
  e.rank = 1;
  e.worker = 0;
  e.begin_s = 10.0;
  e.end_s = 10.001;
  events.push_back(e);
  e.worker = 1;
  e.begin_s = 10.0005;
  e.end_s = 10.002;
  events.push_back(e);

  std::ostringstream os;
  write_chrome_trace(events, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000"), std::string::npos);  // 1 ms = 1000 us
  // Timestamps are rebased to the earliest event.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerEvent) {
  std::vector<TraceEvent> events(3);
  for (int i = 0; i < 3; ++i) {
    events[static_cast<std::size_t>(i)].klass = "k";
    events[static_cast<std::size_t>(i)].begin_s = i;
    events[static_cast<std::size_t>(i)].end_s = i + 0.5;
  }
  std::ostringstream os;
  write_trace_csv(events, os);
  const std::string csv = os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_EQ(csv.rfind("rank,worker,klass,key,begin_s,end_s,duration_s", 0), 0u);
}

}  // namespace
}  // namespace repro::rt
