// Schedule fuzzing: "any legal schedule yields the same bits", tested.
//
// The work-stealing scheduler opens a combinatorial space of execution
// orders (who steals from whom, when). Correctness rests on the dataflow
// contract alone — a task runs only once all inputs arrived — so every
// schedule must produce a grid bit-identical to the serial reference. This
// harness drives rt::SchedTestHook with seeded, stateless perturbations
// (victim-selection override, injected steal delays, pre-execute stalls) and
// sweeps stencil variants x kernel variants x worker counts x seeds under
// both the shared-queue and work-stealing schedulers.
//
// Seed count per configuration defaults to kDefaultSeeds and can be lowered
// via REPRO_SCHED_FUZZ_SEEDS (the TSan CI lane runs 3 seeds; the default
// lane runs the full sweep). Every assertion carries the failing seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "equivalence_helpers.hpp"
#include "runtime/runtime.hpp"
#include "serve/solver_farm.hpp"
#include "spec/stencil_spec.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"
#include "stencil/spec_kernel.hpp"
#include "support/rng.hpp"

namespace repro {
namespace {

constexpr int kDefaultSeeds = 50;

int seeds_per_config() {
  if (const char* env = std::getenv("REPRO_SCHED_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return kDefaultSeeds;
}

/// Stateless mixing of a tuple into a uniform 64-bit value. The hook
/// callbacks run concurrently on worker threads, so all randomness is
/// derived by hashing (seed, call-site coordinates) — no shared state.
std::uint64_t mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  SplitMix64 sm(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                (b * 0xbf58476d1ce4e5b9ULL) ^ (c * 0x94d049bb133111ebULL));
  return sm.next();
}

/// Build the adversarial hook for one fuzz seed: victim choice is scrambled,
/// steals are occasionally delayed, and task execution is occasionally
/// stalled or yielded — shifting every race the scheduler has.
std::shared_ptr<rt::SchedTestHook> make_fuzz_hook(std::uint64_t seed) {
  auto hook = std::make_shared<rt::SchedTestHook>();
  hook->pick_victim = [seed](int rank, int thief, int workers,
                             std::uint64_t attempt) {
    return static_cast<int>(
        mix(seed, static_cast<std::uint64_t>(rank * 64 + thief), attempt, 1) %
        static_cast<std::uint64_t>(workers));
  };
  hook->before_steal = [seed](int rank, int thief, int victim,
                              std::uint64_t attempt) {
    const std::uint64_t r =
        mix(seed, static_cast<std::uint64_t>(rank * 64 + thief),
            attempt ^ static_cast<std::uint64_t>(victim), 2);
    if ((r & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(r % 80));
    } else if ((r & 3) == 0) {
      std::this_thread::yield();
    }
  };
  hook->before_execute = [seed](int rank, int worker, std::uint64_t seq) {
    const std::uint64_t r =
        mix(seed, static_cast<std::uint64_t>(rank * 64 + worker), seq, 3);
    if ((r & 31) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(r % 50));
    } else if ((r & 7) == 0) {
      std::this_thread::yield();
    }
  };
  return hook;
}

struct Variant {
  const char* name;
  int steps;
  stencil::KernelVariant kernel;
  bool persistent = false;  ///< route halos over the persistent channel
  int fuse = 1;             ///< fused-wavefront depth (graph rewrite)
};

// One small problem shared by every variant: 3x3 tiles over 2x2 nodes, so
// the graph has interior tiles, boundary tiles, and halo-publishing tiles
// under both the base (steps=1) and CA (steps=2) shapes.
constexpr int kRows = 12;
constexpr int kCols = 14;
constexpr int kIters = 4;

void run_variant_sweep(const Variant& variant) {
  const stencil::Problem problem =
      stencil::random_problem(kRows, kCols, kIters, 0x5eed);
  const stencil::Grid2D expected = solve_serial(problem);
  const int seeds = seeds_per_config();

  for (const auto policy :
       {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
    for (const int workers : {1, 2, 4, 8}) {
      for (int seed = 0; seed < seeds; ++seed) {
        stencil::DistConfig config;
        config.decomp = {4, 5, 2, 2};
        config.steps = variant.steps;
        config.kernel = variant.kernel;
        config.persistent = variant.persistent;
        config.fuse_depth = variant.fuse;
        config.workers_per_rank = workers;
        config.scheduler = policy;
        config.sched_seed = static_cast<std::uint64_t>(seed);
        config.sched_test_hook =
            make_fuzz_hook(static_cast<std::uint64_t>(seed));

        const stencil::DistResult result = run_distributed(problem, config);
        ASSERT_TRUE(test_support::grids_match(expected, result.grid))
            << variant.name << " "
            << test_support::failing_seed(
                   static_cast<std::uint64_t>(seed), config);
      }
    }
  }
}

// Spec-driven problems ride the same adversarial schedule pool: the staged
// programs add multi-plane state, per-stage local exchanges, and (for box
// specs) corner messages — all of which must stay bit-identical to
// solve_serial_spec under every schedule on every z plane.
void run_spec_sweep(const spec::StencilSpec& sp, int nz, int steps,
                    bool persistent = false, int fuse = 1) {
  const stencil::Problem problem =
      stencil::spec_problem(sp, kRows, kCols, kIters, nz, 0x5eed);
  const std::vector<stencil::Grid2D> expected =
      stencil::solve_serial_spec(problem);
  const int seeds = std::min(seeds_per_config(), 16);

  for (const auto policy :
       {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
    for (const int workers : {2, 4}) {
      for (int seed = 0; seed < seeds; ++seed) {
        stencil::DistConfig config;
        config.decomp = {4, 5, 2, 2};
        config.steps = steps;
        config.persistent = persistent;
        config.fuse_depth = fuse;
        config.workers_per_rank = workers;
        config.scheduler = policy;
        config.sched_seed = static_cast<std::uint64_t>(seed);
        config.sched_test_hook =
            make_fuzz_hook(static_cast<std::uint64_t>(seed));

        const stencil::DistResult result = run_distributed(problem, config);
        ASSERT_TRUE(test_support::planes_match(expected, result))
            << sp.name << " "
            << test_support::failing_seed(static_cast<std::uint64_t>(seed),
                                          config)
            << " SPEC=" << sp.to_literal();
      }
    }
  }
}

TEST(SchedFuzz, SpecStar9CaBitIdenticalUnderAllSchedules) {
  run_spec_sweep(spec::StencilSpec::star9(), 1, 2);
}

TEST(SchedFuzz, SpecBox9CaBitIdenticalUnderAllSchedules) {
  run_spec_sweep(spec::StencilSpec::box9(), 1, 2);
}

TEST(SchedFuzz, SpecHeat3dCaBitIdenticalUnderAllSchedules) {
  run_spec_sweep(spec::StencilSpec::heat3d(), 3, 2);
}

TEST(SchedFuzz, BaseScalarBitIdenticalUnderAllSchedules) {
  run_variant_sweep({"base-scalar", 1, stencil::KernelVariant::Scalar});
}

TEST(SchedFuzz, CaScalarBitIdenticalUnderAllSchedules) {
  run_variant_sweep({"ca-scalar", 2, stencil::KernelVariant::Scalar});
}

TEST(SchedFuzz, CaVectorBitIdenticalUnderAllSchedules) {
  run_variant_sweep({"ca-vector", 2, stencil::KernelVariant::Vector});
}

TEST(SchedFuzz, CaBlockedBitIdenticalUnderAllSchedules) {
  run_variant_sweep({"ca-blocked", 2, stencil::KernelVariant::Blocked});
}

TEST(SchedFuzz, CaTemporalBitIdenticalUnderAllSchedules) {
  run_variant_sweep({"ca-temporal", 2, stencil::KernelVariant::Temporal});
}

// Fused wavefronts under adversarial schedules: the rewritten graph has one
// task per tile per window, so the scheduler sees far fewer, far bigger
// tasks with window-boundary-only cross-tile edges — every steal/stall
// perturbation must still produce serial bits. W = steps * fuse = 4 fills
// the smallest tile exactly; the second variant leaves the window ragged
// against kIters and routes the exchanges over the persistent channel.
TEST(SchedFuzz, CaFusedWavefrontBitIdenticalUnderAllSchedules) {
  run_variant_sweep(
      {"ca-fused", 2, stencil::KernelVariant::Scalar, false, /*fuse=*/2});
}

TEST(SchedFuzz, FusedWavefrontPersistentBitIdenticalUnderAllSchedules) {
  run_variant_sweep({"fused-persistent", 1, stencil::KernelVariant::Scalar,
                     true, /*fuse=*/3});
}

TEST(SchedFuzz, SpecStar9FusedBitIdenticalUnderAllSchedules) {
  run_spec_sweep(spec::StencilSpec::star9(), 1, 1, /*persistent=*/false,
                 /*fuse=*/2);
}

// Persistent-channel runs through the same adversarial schedule pool: the
// fused Temporal path annotates routes only for remote neighbors, and the
// multi-field heat3d path splits every route into nfield fragments — both
// must stay bit-identical to the serial oracle under every schedule.
TEST(SchedFuzz, CaTemporalPersistentBitIdenticalUnderAllSchedules) {
  run_variant_sweep(
      {"ca-temporal-persistent", 2, stencil::KernelVariant::Temporal, true});
}

TEST(SchedFuzz, SpecHeat3dCaPersistentBitIdenticalUnderAllSchedules) {
  run_spec_sweep(spec::StencilSpec::heat3d(), 3, 2, /*persistent=*/true);
}

// A deterministic stall forces stealing: one rank, four workers, a batch of
// independent tasks spread round-robin, and a hook that slows worker 0 on
// every task. The idle workers must drain worker 0's deque; the run proves
// steals actually happen (trace Steal events + rt_steals_total) and that the
// stolen schedule still executes every task exactly once.
TEST(SchedFuzz, StallingOneWorkerForcesSteals) {
  constexpr int kTasks = 96;
  rt::TaskGraph graph;
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i) {
    rt::TaskSpec t;
    t.key = rt::TaskKey{5, i, 0, 0};
    t.body = [&executed](rt::TaskContext&) {
      executed.fetch_add(1, std::memory_order_relaxed);
    };
    graph.add_task(std::move(t));
  }

  auto hook = std::make_shared<rt::SchedTestHook>();
  hook->before_execute = [](int /*rank*/, int worker, std::uint64_t) {
    if (worker == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(800));
    }
  };

  rt::Config config;
  config.nranks = 1;
  config.workers_per_rank = 4;
  config.trace = true;
  config.scheduler = rt::SchedPolicy::WorkStealing;
  config.sched_test_hook = hook;
  rt::Runtime runtime(config);
  const rt::RunStats stats = runtime.run(graph);

  EXPECT_EQ(stats.tasks_executed, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(executed.load(), kTasks);

#ifndef REPRO_OBS_DISABLE
  std::size_t steal_events = 0;
  for (const auto& e : runtime.tracer().events()) {
    if (e.kind == rt::TraceEventKind::Steal) {
      ++steal_events;
      EXPECT_GE(e.steal_victim, 0);
      EXPECT_LT(e.steal_victim, 4);
      EXPECT_NE(e.steal_victim, e.worker);
    }
  }
  EXPECT_GT(steal_events, 0u);
  EXPECT_EQ(rt::analyze_trace(runtime.tracer().events(), 4).steals,
            steal_events);
  EXPECT_EQ(runtime.metrics()
                ->counter("rt_steals_total", {{"rank", "0"}})
                ->value(),
            static_cast<std::uint64_t>(steal_events));
#endif
}

// The hook fires under the shared-queue scheduler too (so PriorityFifo
// schedules can be perturbed), and a null pick_victim leaves the seeded RNG
// in charge without crashing.
TEST(SchedFuzz, HookFiresUnderSharedQueueAndPartialHooksAreSafe) {
  std::atomic<int> calls{0};
  auto hook = std::make_shared<rt::SchedTestHook>();
  hook->before_execute = [&calls](int, int, std::uint64_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  };

  for (const auto policy :
       {rt::SchedPolicy::PriorityFifo, rt::SchedPolicy::WorkStealing}) {
    calls.store(0);
    rt::TaskGraph graph;
    for (int i = 0; i < 16; ++i) {
      rt::TaskSpec t;
      t.key = rt::TaskKey{6, i, 0, 0};
      t.body = [](rt::TaskContext&) {};
      graph.add_task(std::move(t));
    }
    rt::Config config;
    config.nranks = 1;
    config.workers_per_rank = 2;
    config.scheduler = policy;
    config.sched_test_hook = hook;
    rt::Runtime runtime(config);
    runtime.run(graph);
    EXPECT_EQ(calls.load(), 16) << rt::sched_policy_name(policy);
  }
}

// Same sched_seed => same victim-selection streams. With the hook absent the
// scheduler is still deterministic in its own RNG; this doesn't pin down a
// full execution order (real thread timing varies) but it must at least run
// correctly and produce identical results, seed after seed.
TEST(SchedFuzz, SeededRunsStayBitIdenticalWithoutHook) {
  const stencil::Problem problem = stencil::random_problem(kRows, kCols,
                                                           kIters, 0x5eed);
  const stencil::Grid2D expected = solve_serial(problem);
  for (int seed = 0; seed < 8; ++seed) {
    stencil::DistConfig config;
    config.decomp = {4, 5, 2, 2};
    config.steps = 2;
    config.workers_per_rank = 4;
    config.scheduler = rt::SchedPolicy::WorkStealing;
    config.sched_seed = static_cast<std::uint64_t>(seed);
    const stencil::DistResult result = run_distributed(problem, config);
    ASSERT_EQ(stencil::Grid2D::max_abs_diff(expected, result.grid), 0.0)
        << "FAILING SEED=" << seed;
  }
}

// The solver farm rides the same seed pool: a resident runtime multiplexing
// a batch of small tenants plus one windowed (checkpoint/resume) job, all
// under the adversarial hook. Every schedule must hand every tenant bits
// identical to the serial reference.
TEST(SchedFuzz, SolverFarmBitIdenticalUnderAllSchedules) {
  const stencil::Problem small =
      stencil::random_problem(kRows, kCols, kIters, 0x5eed);
  const stencil::Grid2D small_expected = solve_serial(small);
  const stencil::Problem big = stencil::random_problem(20, 20, 8, 0xb16);
  const stencil::Grid2D big_expected = solve_serial(big);

  const int seeds = std::min(seeds_per_config(), 12);
  for (int seed = 0; seed < seeds; ++seed) {
    serve::FarmConfig config;
    config.node_rows = 2;
    config.node_cols = 2;
    config.workers_per_rank = 4;
    config.scheduler = rt::SchedPolicy::WorkStealing;
    config.sched_seed = static_cast<std::uint64_t>(seed);
    config.sched_test_hook = make_fuzz_hook(static_cast<std::uint64_t>(seed));
    config.preempt_cost_threshold = 20 * 20 * 8;  // the big job is windowed
    config.checkpoint_supersteps = 1;
    serve::SolverFarm farm(config);

    std::vector<std::future<serve::SolveResponse>> futures;
    std::vector<const stencil::Grid2D*> expected;
    for (int t = 0; t < 3; ++t) {
      serve::SolveRequest request;
      request.tenant = "t" + std::to_string(t);
      request.problem = small;
      request.mb = 4;
      request.nb = 5;
      request.steps = 2;
      auto submission = farm.submit(request);
      ASSERT_TRUE(submission.accepted()) << "seed " << seed;
      futures.push_back(std::move(submission.response));
      expected.push_back(&small_expected);
    }
    // One fused tenant: forced solo dispatch, graph rewritten per wave.
    serve::SolveRequest fused;
    fused.tenant = "fused";
    fused.problem = small;
    fused.mb = 4;
    fused.nb = 5;
    fused.steps = 2;
    fused.fuse_depth = 2;  // W = 4 = the smallest tile extent
    auto fused_submission = farm.submit(fused);
    ASSERT_TRUE(fused_submission.accepted()) << "seed " << seed;
    futures.push_back(std::move(fused_submission.response));
    expected.push_back(&small_expected);

    serve::SolveRequest windowed;
    windowed.tenant = "big";
    windowed.problem = big;
    windowed.mb = 5;
    windowed.nb = 5;
    windowed.steps = 2;
    windowed.fuse_depth = 2;  // windowed + fused: W = 4 <= tile extent 5
    auto submission = farm.submit(windowed);
    ASSERT_TRUE(submission.accepted()) << "seed " << seed;
    futures.push_back(std::move(submission.response));
    expected.push_back(&big_expected);

    farm.shutdown(/*drain=*/true);
    for (std::size_t i = 0; i < futures.size(); ++i) {
      serve::SolveResponse response = futures[i].get();
      ASSERT_EQ(response.status, serve::JobStatus::Completed)
          << response.error << " job " << i << " FAILING SEED=" << seed;
      ASSERT_EQ(stencil::Grid2D::max_abs_diff(response.grid, *expected[i]),
                0.0)
          << "job " << i << " FAILING SEED=" << seed;
    }
  }
}

}  // namespace
}  // namespace repro
