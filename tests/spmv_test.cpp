#include <gtest/gtest.h>

#include "spmv/csr.hpp"
#include "spmv/partition.hpp"
#include "spmv/petsc_like.hpp"
#include "stencil/dist_stencil.hpp"
#include "stencil/serial.hpp"

namespace repro::spmv {
namespace {

TEST(Csr, GridMatrixStructure) {
  const int rows = 4, cols = 3;
  const CsrMatrix m =
      build_grid_matrix(rows, cols, stencil::Stencil5::test_weights());
  EXPECT_EQ(m.nrows, (rows + 2) * (cols + 2));
  EXPECT_EQ(m.ncols, m.nrows);
  // nnz = 5 per interior + 1 per ring row.
  const std::int64_t ring = m.nrows - rows * cols;
  EXPECT_EQ(m.nnz(), 5 * rows * cols + ring);
  EXPECT_EQ(static_cast<std::int64_t>(m.row_ptr.size()), m.nrows + 1);
  EXPECT_EQ(m.row_ptr.back(), m.nnz());
}

TEST(Csr, MultiplyMatchesSerialSweepBitForBit) {
  const stencil::Problem p = stencil::random_problem(9, 11, 1, 3);
  stencil::Grid2D grid(p.rows, p.cols);
  grid.fill(p.initial, p.boundary);
  stencil::Grid2D expected(p.rows, p.cols);
  serial_sweep(grid, expected, p.weights);

  const CsrMatrix m = build_grid_matrix(p.rows, p.cols, p.weights);
  std::vector<double> x(static_cast<std::size_t>(m.nrows));
  std::vector<double> y(static_cast<std::size_t>(m.nrows));
  for (int i = -1; i <= p.rows; ++i) {
    for (int j = -1; j <= p.cols; ++j) {
      x[static_cast<std::size_t>(grid_vec_index(p.rows, p.cols, i, j))] =
          grid.at(i, j);
    }
  }
  m.multiply(x, y);
  for (int i = -1; i <= p.rows; ++i) {
    for (int j = -1; j <= p.cols; ++j) {
      const double got =
          y[static_cast<std::size_t>(grid_vec_index(p.rows, p.cols, i, j))];
      EXPECT_EQ(got, expected.at(i, j)) << i << "," << j;
    }
  }
}

TEST(Csr, IdentityRowsFixBoundary) {
  const CsrMatrix m =
      build_grid_matrix(3, 3, stencil::Stencil5::laplace_jacobi());
  std::vector<double> x(static_cast<std::size_t>(m.nrows), 2.0);
  std::vector<double> y(static_cast<std::size_t>(m.nrows));
  m.multiply(x, y);
  // Ring rows are identity: y == x there.
  EXPECT_EQ(y[0], 2.0);
  EXPECT_EQ(y[static_cast<std::size_t>(m.nrows) - 1], 2.0);
}

TEST(Csr, TrafficModelCountsIndicesAndValues) {
  const CsrMatrix m =
      build_grid_matrix(10, 10, stencil::Stencil5::laplace_jacobi());
  const double expected =
      static_cast<double>(m.nnz()) * (8 + 8 + 8) +
      static_cast<double>(m.nrows) * (8 + 8);
  EXPECT_DOUBLE_EQ(m.traffic_bytes(), expected);
}

TEST(Csr, MultiplyRejectsSizeMismatch) {
  const CsrMatrix m =
      build_grid_matrix(3, 3, stencil::Stencil5::laplace_jacobi());
  std::vector<double> x(5), y(static_cast<std::size_t>(m.nrows));
  EXPECT_THROW(m.multiply(x, y), std::invalid_argument);
}

TEST(RowPartition, BalancedContiguousCovering) {
  const RowPartition part(100, 7);
  std::int64_t covered = 0;
  for (int r = 0; r < 7; ++r) {
    EXPECT_EQ(part.begin(r), covered);
    covered = part.end(r);
    EXPECT_GE(part.count(r), 100 / 7);
    EXPECT_LE(part.count(r), 100 / 7 + 1);
    for (std::int64_t row = part.begin(r); row < part.end(r); ++row) {
      EXPECT_EQ(part.owner(row), r);
    }
  }
  EXPECT_EQ(covered, 100);
  EXPECT_THROW(part.owner(100), std::out_of_range);
  EXPECT_THROW(part.owner(-1), std::out_of_range);
}

TEST(RowPartition, RejectsMoreRanksThanRows) {
  EXPECT_THROW(RowPartition(3, 4), std::invalid_argument);
}

class PetscLikeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PetscLikeEquivalence, MatchesSerialBitForBit) {
  const int nranks = GetParam();
  const stencil::Problem p = stencil::random_problem(14, 12, 7);
  const SpmvRunResult result = run_petsc_like(p, nranks);
  const stencil::Grid2D expected = solve_serial(p);
  EXPECT_EQ(stencil::Grid2D::max_abs_diff(expected, result.grid), 0.0);
  if (nranks > 1) {
    EXPECT_GT(result.messages, 0u);
    EXPECT_EQ(result.setup_messages,
              static_cast<std::uint64_t>(nranks) * (nranks - 1));
  } else {
    EXPECT_EQ(result.messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PetscLikeEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(PetscLike, MatchesDistributedStencilExactly) {
  // The full triangle: SpMV == serial == distributed CA.
  const stencil::Problem p = stencil::random_problem(16, 16, 8);
  const SpmvRunResult spmv = run_petsc_like(p, 4);
  stencil::DistConfig dist_config;
  dist_config.decomp = {4, 4, 2, 2};
  dist_config.steps = 4;
  const stencil::DistResult dist = run_distributed(p, dist_config);
  EXPECT_EQ(stencil::Grid2D::max_abs_diff(spmv.grid, dist.grid), 0.0);
}

TEST(PetscLike, MessageCountMatchesRowPartitionNeighbors) {
  // 1D row partition of a 2D grid: each rank needs rows owned by the ranks
  // directly above/below its block -> at most 2 neighbors, interior ranks
  // exactly 2. Messages per iteration = number of directed (owner->needer)
  // pairs.
  const stencil::Problem p = stencil::random_problem(16, 16, 5);
  const SpmvRunResult r = run_petsc_like(p, 4);
  // 4 contiguous blocks -> 3 cuts -> 6 directed pairs -> 6 msgs/iter.
  EXPECT_EQ(r.messages, 6u * 5u);
}

TEST(PetscLike, ZeroIterationsReturnsInitialField) {
  const stencil::Problem p = stencil::random_problem(8, 8, 0);
  const SpmvRunResult r = run_petsc_like(p, 2);
  for (int i = 0; i < p.rows; ++i) {
    for (int j = 0; j < p.cols; ++j) {
      EXPECT_DOUBLE_EQ(r.grid.at(i, j), p.initial(i, j));
    }
  }
}

TEST(PetscLike, TrafficModelShowsAtLeastTwiceTheStencilTraffic) {
  // The paper's explanation of the 2x PETSc gap: CSR moves >= 2x the bytes
  // per point compared with the 16-24 B/point tile stencil.
  EXPECT_GE(spmv_bytes_per_point(), 2.0 * kStencilBytesPerPointMin);
  const stencil::Problem p = stencil::random_problem(32, 32, 1);
  const SpmvRunResult r = run_petsc_like(p, 1);
  const double per_point =
      r.local_traffic_bytes_per_iter / (p.rows * p.cols);
  // Ring rows inflate the per-interior-point figure (the 32x32 interior has
  // a 132-cell ring); it must still land in the neighborhood of the analytic
  // constant: within [2x stencil-min, ~1.3x the interior-only figure].
  EXPECT_GT(per_point, 2.0 * kStencilBytesPerPointMin);
  EXPECT_LT(per_point, 1.5 * spmv_bytes_per_point());
}

}  // namespace
}  // namespace repro::spmv
