#include <gtest/gtest.h>

#include "stream/stream.hpp"

namespace repro::stream {
namespace {

TEST(Stream, ProducesPositiveBandwidths) {
  const StreamResult r = run_stream(1 << 20, 3, 1);
  EXPECT_GT(r.copy_Bps, 1e8);   // any machine beats 100 MB/s
  EXPECT_GT(r.scale_Bps, 1e8);
  EXPECT_GT(r.add_Bps, 1e8);
  EXPECT_GT(r.triad_Bps, 1e8);
}

TEST(Stream, MultiThreadedRunValidates) {
  // Correctness of the threaded partition (single-core VM: no speedup
  // expected, but the validation must still pass).
  EXPECT_NO_THROW(run_stream(1 << 20, 2, 3));
}

TEST(Stream, RejectsBadArguments) {
  EXPECT_THROW(run_stream(10, 1, 1), std::invalid_argument);
  EXPECT_THROW(run_stream(1 << 20, 0, 1), std::invalid_argument);
  EXPECT_THROW(run_stream(1 << 20, 1, 0), std::invalid_argument);
}

TEST(Stream, PaperTableOneIsVerbatim) {
  const auto rows = paper_table_one();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].system, "NaCL");
  EXPECT_DOUBLE_EQ(rows[0].copy_MBps, 9814.2);
  EXPECT_DOUBLE_EQ(rows[1].copy_MBps, 40091.3);
  EXPECT_DOUBLE_EQ(rows[3].triad_MBps, 193216.3);
}

}  // namespace
}  // namespace repro::stream
