#include <gtest/gtest.h>

#include <cmath>

#include "spmv/laplacian.hpp"
#include "support/rng.hpp"

namespace repro::spmv {
namespace {

TEST(Laplacian, StructureAndSymmetry) {
  const CsrMatrix a = build_laplacian_matrix(4, 5);
  EXPECT_EQ(a.nrows, 20);
  // nnz = 5*interior-ish: 20*5 - 2*(4+5)*... count directly: each point has
  // 1 diagonal + #in-grid neighbors. Sum of neighbors = 2*edges =
  // 2*(4*4 + 3*5) = 62.
  EXPECT_EQ(a.nnz(), 20 + 62);

  // Symmetry: A(i,j) == A(j,i) for all stored entries.
  auto entry = [&](std::int64_t r, std::int64_t c) {
    for (std::int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      if (a.col[k] == c) return a.val[k];
    }
    return 0.0;
  };
  for (std::int64_t r = 0; r < a.nrows; ++r) {
    for (std::int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      EXPECT_DOUBLE_EQ(entry(a.col[k], r), a.val[k]);
    }
  }
}

TEST(Laplacian, PositiveDefiniteViaRandomQuadraticForms) {
  const CsrMatrix a = build_laplacian_matrix(6, 6);
  Rng rng(3);
  std::vector<double> x(36), ax(36);
  for (int trial = 0; trial < 20; ++trial) {
    double nonzero = 0.0;
    for (double& v : x) {
      v = rng.uniform(-1.0, 1.0);
      nonzero += std::fabs(v);
    }
    ASSERT_GT(nonzero, 0.0);
    a.multiply(x, ax);
    EXPECT_GT(dot(x, ax), 0.0);
  }
}

TEST(Laplacian, RhsFoldsBoundaryTerms) {
  auto f = [](long, long) { return 2.0; };
  auto g = [](long, long) { return 10.0; };
  const auto b = build_poisson_rhs(3, 3, f, g);
  ASSERT_EQ(b.size(), 9u);
  EXPECT_DOUBLE_EQ(b[4], 2.0);                // center: no boundary neighbor
  EXPECT_DOUBLE_EQ(b[0], 2.0 + 10.0 + 10.0);  // corner: two boundary sides
  EXPECT_DOUBLE_EQ(b[1], 2.0 + 10.0);         // edge: one boundary side
}

TEST(Blas1, KernelsMatchHandComputation) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
  axpy(2.0, a, b);  // b = {6, -1, 12}
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[1], -1.0);
  xpby(a, 0.5, b);  // b = a + 0.5*b = {4, 1.5, 9}
  EXPECT_DOUBLE_EQ(b[0], 4.0);
  EXPECT_DOUBLE_EQ(b[2], 9.0);
  std::vector<double> wrong{1.0};
  EXPECT_THROW(dot(a, wrong), std::invalid_argument);
  EXPECT_THROW(axpy(1.0, a, wrong), std::invalid_argument);
}

TEST(Cg, SolvesPoissonToTolerance) {
  const int n = 24;
  const CsrMatrix a = build_laplacian_matrix(n, n);
  const auto b = build_poisson_rhs(
      n, n, [](long, long) { return 1.0; }, [](long, long) { return 0.0; });
  const CgResult result = conjugate_gradient(a, b, 1e-10);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 200);

  // Residual check: ||b - A x|| small relative to ||b||.
  std::vector<double> ax(b.size());
  a.multiply(result.x, ax);
  double rnorm = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rnorm += (b[i] - ax[i]) * (b[i] - ax[i]);
  }
  EXPECT_LT(std::sqrt(rnorm), 1e-9 * norm2(b) + 1e-12);

  // Physics: symmetric problem -> symmetric solution, max at the center.
  const auto at = [&](int i, int j) {
    return result.x[static_cast<std::size_t>(i) * n + j];
  };
  EXPECT_NEAR(at(3, 7), at(7, 3), 1e-9);
  EXPECT_GT(at(n / 2, n / 2), at(0, 0));
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  const CsrMatrix a = build_laplacian_matrix(4, 4);
  const std::vector<double> b(16, 0.0);
  const CgResult result = conjugate_gradient(a, b);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  for (double v : result.x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, AgreesWithJacobiFixedPoint) {
  // The CG solution of A u = b must agree with heavily-iterated Jacobi on
  // the same discrete problem (Jacobi for -Laplace: u' = (b + sum nbr)/4).
  const int n = 10;
  const CsrMatrix a = build_laplacian_matrix(n, n);
  auto g = [n](long i, long j) {
    return (j < 0) ? 1.0 : 0.0 * static_cast<double>(i + n);
  };
  const auto b = build_poisson_rhs(
      n, n, [](long, long) { return 0.0; }, g);
  const CgResult cg = conjugate_gradient(a, b, 1e-12);
  ASSERT_TRUE(cg.converged);

  std::vector<double> u(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> next = u;
  for (int sweep = 0; sweep < 4000; ++sweep) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const auto at = [&](int ii, int jj) -> double {
          if (ii < 0 || ii >= n || jj < 0 || jj >= n) return 0.0;
          return u[static_cast<std::size_t>(ii) * n + jj];
        };
        next[static_cast<std::size_t>(i) * n + j] =
            (b[static_cast<std::size_t>(i) * n + j] + at(i - 1, j) +
             at(i + 1, j) + at(i, j - 1) + at(i, j + 1)) /
            4.0;
      }
    }
    std::swap(u, next);
  }
  for (std::size_t k = 0; k < u.size(); ++k) {
    EXPECT_NEAR(u[k], cg.x[k], 1e-6) << k;
  }
}

}  // namespace
}  // namespace repro::spmv
