// General stencil shapes (radius-r cross, box/9-point) — unit tests on the
// shape machinery plus the distributed equivalence suite for the generalized
// CA geometry (r*s-deep ghosts, r-per-step shrink, diagonal flows).
#include <gtest/gtest.h>

#include <cmath>

#include "stencil/dist_stencil.hpp"
#include "stencil/halo.hpp"
#include "stencil/serial.hpp"

namespace repro::stencil {
namespace {

TEST(Shape, OffsetsOrderAndCounts) {
  const StencilShape cross = StencilShape::random_cross(2);
  EXPECT_EQ(cross.num_points(), 9u);  // 1 + 4*2
  const auto off = cross.offsets();
  ASSERT_EQ(off.size(), 9u);
  EXPECT_EQ(off[0], (std::pair{0, 0}));
  EXPECT_EQ(off[1], (std::pair{-1, 0}));
  EXPECT_EQ(off[4], (std::pair{0, 1}));
  EXPECT_EQ(off[5], (std::pair{-2, 0}));

  const StencilShape box = StencilShape::random_box(1);
  EXPECT_EQ(box.num_points(), 9u);  // 3x3
  EXPECT_EQ(StencilShape::random_box(2).num_points(), 25u);
  EXPECT_DOUBLE_EQ(box.flops_per_point(), 17.0);
  EXPECT_DOUBLE_EQ(StencilShape::five_point({}).flops_per_point(), 9.0);
}

TEST(Shape, ValidateRejectsBadShapes) {
  StencilShape s;
  s.radius = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.radius = 1;
  s.weights = {1.0};  // needs 5
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Shape, FivePointShapeMatchesJacobi5BitForBit) {
  const int tile = 9;
  const TileGeom g{tile, tile, 1, 1, 1, 1};
  const Stencil5 w = Stencil5::test_weights();
  const StencilShape shape = StencilShape::five_point(w);

  std::vector<double> in(g.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::cos(0.1 * static_cast<double>(i));
  }
  std::vector<double> a(g.size(), -1.0), b(g.size(), -1.0);
  jacobi5(in.data(), a.data(), g, w, 0, tile, 0, tile);
  apply_shape(in.data(), b.data(), g, shape, 0, tile, 0, tile);
  for (int i = 0; i < tile; ++i) {
    for (int j = 0; j < tile; ++j) {
      EXPECT_EQ(a[g.idx(i, j)], b[g.idx(i, j)]) << i << "," << j;
    }
  }
}

TEST(Shape, BoxReadsDiagonals) {
  const TileGeom g{1, 1, 1, 1, 1, 1};
  StencilShape box = StencilShape::random_box(1);
  // Zero all weights except the NW diagonal (offset (-1,-1)).
  const auto off = box.offsets();
  for (std::size_t k = 0; k < off.size(); ++k) {
    box.weights[k] = off[k] == std::pair{-1, -1} ? 2.0 : 0.0;
  }
  std::vector<double> in(g.size(), 0.0);
  in[g.idx(-1, -1)] = 3.0;
  std::vector<double> out(g.size(), -1.0);
  apply_shape(in.data(), out.data(), g, box, 0, 1, 0, 1);
  EXPECT_DOUBLE_EQ(out[g.idx(0, 0)], 6.0);
}

TEST(Shape, SerialShapeCrossOneMatchesClassicSolver) {
  Problem p = random_problem(14, 17, 5);
  Problem shaped = p;
  shaped.shape = StencilShape::five_point(p.weights);
  const Grid2D a = solve_serial(p);
  const Grid2D b = solve_serial(shaped);
  EXPECT_EQ(Grid2D::max_abs_diff(a, b), 0.0);
}

TEST(Halo, LocalLineDepthTwoCopiesBothColumns) {
  const int h = 4, w = 5, r = 2;
  const TileGeom g{h, w, r, r, r, r};
  std::vector<double> nbr(g.size());
  for (int i = -r; i < h + r; ++i) {
    for (int j = -r; j < w + r; ++j) nbr[g.idx(i, j)] = i * 100.0 + j;
  }
  std::vector<double> mine(g.size(), -7.0);
  copy_local_line(mine.data(), g, Side::West, nbr.data(), g, r);
  for (int i = -r; i < h + r; ++i) {
    for (int d = 1; d <= r; ++d) {
      // Our col -d = neighbor col w-d.
      EXPECT_DOUBLE_EQ(mine[g.idx(i, -d)], i * 100.0 + (w - d));
    }
  }
  EXPECT_DOUBLE_EQ(mine[g.idx(0, 0)], -7.0);
  // Depth mismatch rejected.
  EXPECT_THROW(copy_local_line(mine.data(), g, Side::West, nbr.data(), g, 1),
               std::invalid_argument);
}

TEST(Halo, LocalCornerCopiesDiagonalCore) {
  const int h = 5, w = 5, r = 2;
  const TileGeom g{h, w, r, r, r, r};
  std::vector<double> diag(g.size());
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < w; ++j) diag[g.idx(i, j)] = i * 10.0 + j;
  }
  std::vector<double> mine(g.size(), -7.0);
  copy_local_corner(mine.data(), g, Corner::NW, diag.data(), g);
  for (int a = 1; a <= r; ++a) {
    for (int b = 1; b <= r; ++b) {
      // Our (-a,-b) = diag core (h-a, w-b).
      EXPECT_DOUBLE_EQ(mine[g.idx(-a, -b)], (h - a) * 10.0 + (w - b));
    }
  }
  EXPECT_DOUBLE_EQ(mine[g.idx(0, 0)], -7.0);
}

TEST(TileMapTopology, CornerNeighborsAreFirstClass) {
  // Regression for latent 4-neighbor assumptions: with one tile per node on
  // a 3x3 grid, EVERY neighbor of the center tile — corners included — is
  // remote, and the map must report the full 8-neighborhood. Spec-driven box
  // stencils route corner exchanges through exactly these queries.
  const TileMap map(12, 12, 4, 4, 3, 3);
  EXPECT_EQ(map.neighbor_count(1, 1), 8);
  EXPECT_EQ(map.neighbor_count(1, 1, /*remote_only=*/true), 8);
  // Corner tile: 3 neighbors (E, S, SE), all remote.
  EXPECT_EQ(map.neighbor_count(0, 0), 3);
  EXPECT_EQ(map.neighbor_count(0, 0, /*remote_only=*/true), 3);
  // Edge tile: 5 neighbors.
  EXPECT_EQ(map.neighbor_count(0, 1), 5);
  // Diagonal remoteness is distinct from face remoteness: on a 1x3 node
  // grid (columns split, rows shared) the center tile's N/S neighbors are
  // local but its diagonal neighbors are remote.
  const TileMap strips(12, 12, 4, 4, 1, 3);
  EXPECT_TRUE(strips.neighbor_remote(1, 1, 0, 1));
  EXPECT_FALSE(strips.neighbor_remote(1, 1, 1, 0));
  EXPECT_TRUE(strips.neighbor_remote(1, 1, 1, 1));
  EXPECT_TRUE(strips.neighbor_remote(1, 1, -1, -1));
  EXPECT_EQ(strips.neighbor_count(1, 1, /*remote_only=*/true), 6);
}

struct ShapeCase {
  int radius;
  bool box;
  int n, iters, tile, nodes, steps;

  friend std::ostream& operator<<(std::ostream& os, const ShapeCase& c) {
    return os << (c.box ? "box" : "cross") << c.radius << "_n" << c.n << "_it"
              << c.iters << "_t" << c.tile << "_p" << c.nodes << "_s"
              << c.steps;
  }
};

class ShapeDist : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeDist, MatchesSerialBitForBit) {
  const ShapeCase c = GetParam();
  Problem problem = random_problem(c.n, c.n, c.iters);
  problem.shape = c.box ? StencilShape::random_box(c.radius)
                        : StencilShape::random_cross(c.radius);

  DistConfig config;
  config.decomp = {c.tile, c.tile, c.nodes, c.nodes};
  config.steps = c.steps;
  config.workers_per_rank = 2;

  const DistResult result = run_distributed(problem, config);
  const Grid2D expected = solve_serial(problem);
  EXPECT_EQ(Grid2D::max_abs_diff(expected, result.grid), 0.0);
  EXPECT_DOUBLE_EQ(result.flops_per_point, problem.shape->flops_per_point());
}

INSTANTIATE_TEST_SUITE_P(
    Cross, ShapeDist,
    ::testing::Values(
        // radius-2 cross, base: 2-deep halos every iteration.
        ShapeCase{2, false, 24, 5, 6, 2, 1},
        // radius-2 cross with CA: 2s-deep ghosts, shrink 2/step.
        ShapeCase{2, false, 24, 7, 8, 2, 3},
        ShapeCase{2, false, 24, 6, 8, 3, 2},
        // radius-3 cross, all sides remote.
        ShapeCase{3, false, 27, 5, 9, 3, 2},
        // radius*steps == tile (boundary of validity).
        ShapeCase{2, false, 24, 9, 8, 2, 4}));

INSTANTIATE_TEST_SUITE_P(
    Box, ShapeDist,
    ::testing::Values(
        // 9-point stencil, single node (local diagonal flows only).
        ShapeCase{1, true, 16, 5, 4, 1, 1},
        // 9-point, distributed base: remote corners every iteration.
        ShapeCase{1, true, 16, 6, 4, 2, 1},
        // 9-point with CA.
        ShapeCase{1, true, 20, 8, 5, 2, 3},
        // one tile per node: every corner remote, every step.
        ShapeCase{1, true, 18, 7, 6, 3, 2},
        // radius-2 box (25-point) with CA.
        ShapeCase{2, true, 24, 6, 8, 2, 2},
        // radius-2 box, base.
        ShapeCase{2, true, 24, 5, 8, 3, 1}));

TEST(ShapeDist, BoxBaseUsesCornerMessages) {
  // 2x2 nodes, one tile each: a box stencil must move corner blocks across
  // the diagonal even at s=1 (4 bands + ... per round), unlike the cross.
  Problem cross_p = random_problem(12, 12, 4);
  cross_p.shape = StencilShape::random_cross(1);
  Problem box_p = cross_p;
  box_p.shape = StencilShape::random_box(1);

  DistConfig config;
  config.decomp = {6, 6, 2, 2};
  config.steps = 1;
  const auto cross_r = run_distributed(cross_p, config);
  const auto box_r = run_distributed(box_p, config);
  // Cross: 2 remote sides per tile -> 8 bands/round. Box adds 1 remote
  // diagonal per tile -> +4 corners/round.
  EXPECT_EQ(cross_r.stats.messages, 8u * 4);
  EXPECT_EQ(box_r.stats.messages, 12u * 4);
}

TEST(ShapeDist, ValidatesRadiusTimesSteps) {
  Problem problem = random_problem(16, 16, 4);
  problem.shape = StencilShape::random_cross(2);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  config.steps = 3;  // 2*3 > 4
  EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
  config.steps = 2;  // 2*2 <= 4
  EXPECT_NO_THROW(run_distributed(problem, config));
}

TEST(ShapeDist, ShapeAndCoefficientAreExclusive) {
  Problem problem = random_variable_problem(16, 16, 2);
  problem.shape = StencilShape::random_cross(1);
  DistConfig config;
  config.decomp = {4, 4, 2, 2};
  EXPECT_THROW(run_distributed(problem, config), std::invalid_argument);
}

}  // namespace
}  // namespace repro::stencil
