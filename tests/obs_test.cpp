// Unit and concurrency tests for the obs metrics primitives: sharded
// counters/gauges/histograms, the registry's create-or-get / attach-replace
// semantics, exposition formats, and a multi-writer hammer scraped live by a
// concurrent reader (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.hpp"
#include "obs/metrics.hpp"

namespace repro::obs {
namespace {

TEST(Counter, AccumulatesAcrossShards) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  Counter c;
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, LeBucketSemantics) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.num_buckets(), 4u);

  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (le is inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(10.0);  // bucket 1
  h.observe(99.0);  // bucket 2
  h.observe(1e6);   // overflow bucket

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_sum(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bucket_sum(1), 11.5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 99.0 + 1e6);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

// The log2 bounds must bucket every size exactly like net::SizeHistogram, so
// Transport::stats() can reconstruct its histogram from the registry.
TEST(Histogram, Log2BoundsMatchSizeHistogram) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  Histogram h(log2_size_bounds());
  ASSERT_EQ(h.num_buckets(),
            static_cast<std::size_t>(net::SizeHistogram::kBuckets));

  const std::vector<std::size_t> sizes = {0,    1,    2,       3,     4,
                                          7,    8,    1023,    1024,  1025,
                                          4096, 65535, 1u << 20, (1u << 20) + 1};
  net::SizeHistogram reference;
  for (std::size_t s : sizes) {
    reference.record(s);
    h.observe(static_cast<double>(s));
  }
  for (int b = 0; b < net::SizeHistogram::kBuckets; ++b) {
    EXPECT_EQ(h.bucket_count(static_cast<std::size_t>(b)),
              reference.count(b))
        << "bucket " << b;
    EXPECT_EQ(std::llround(h.bucket_sum(static_cast<std::size_t>(b))),
              static_cast<long long>(reference.bytes(b)))
        << "bucket " << b;
  }
}

TEST(Registry, CreateOrGetReturnsSameInstance) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  MetricsRegistry reg;
  auto a = reg.counter("requests_total", {{"method", "get"}});
  auto b = reg.counter("requests_total", {{"method", "get"}});
  auto c = reg.counter("requests_total", {{"method", "put"}});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, KindConflictThrows) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
}

TEST(Registry, AttachReplacesPerRunSeries) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  MetricsRegistry reg;

  auto run1 = std::make_shared<Counter>();
  run1->add(100);
  reg.attach("tasks_total", {}, run1);
  EXPECT_EQ(reg.snapshot().counter_total("tasks_total"), 100.0);

  // A second run attaches a fresh instance: the scrape shows the new run,
  // not the sum of both.
  auto run2 = std::make_shared<Counter>();
  run2->add(7);
  reg.attach("tasks_total", {}, run2);
  EXPECT_EQ(reg.snapshot().counter_total("tasks_total"), 7.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, SnapshotTotalsAndFind) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  MetricsRegistry reg;
  reg.counter("msgs", {{"dst", "0"}})->add(3);
  reg.counter("msgs", {{"dst", "1"}})->add(4);
  reg.gauge("depth", {{"rank", "0"}})->set(2.0);
  reg.gauge("depth", {{"rank", "1"}})->set(5.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_total("msgs"), 7.0);
  EXPECT_DOUBLE_EQ(snap.gauge_total("depth"), 7.0);
  EXPECT_DOUBLE_EQ(snap.counter_total("absent"), 0.0);

  const CounterSample* s = snap.find_counter("msgs", {{"dst", "1"}});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 4u);
  EXPECT_EQ(snap.find_counter("msgs", {{"dst", "9"}}), nullptr);
}

TEST(Registry, PrometheusExposition) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  MetricsRegistry reg;
  reg.counter("net_messages_total", {{"dst", "1"}}, "Messages sent")->add(5);
  reg.gauge("queue_depth", {}, "Ready tasks")->set(3.0);
  auto h = reg.histogram("latency_seconds", {0.1, 1.0});
  h->observe(0.05);
  h->observe(0.5);
  h->observe(10.0);

  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("# TYPE net_messages_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP net_messages_total Messages sent"),
            std::string::npos);
  EXPECT_NE(text.find("net_messages_total{dst=\"1\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram"), std::string::npos);
  // Cumulative buckets: 1, 2, +Inf=3.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3"), std::string::npos);
}

TEST(Registry, JsonExportParsesBack) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  MetricsRegistry reg;
  reg.counter("c", {{"k", "v"}})->add(9);
  reg.histogram("h", {1.0, 2.0})->observe(1.5);

  const std::string text = reg.json().dump(2);
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::parse(text, &parsed, &error)) << error;
  const Json* counters = parsed.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->size(), 1u);
  const Json* value = counters->as_array()[0].find("value");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->as_int(), 9);
  const Json* histograms = parsed.find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_EQ(histograms->size(), 1u);
}

// 64-bit counters must round-trip through JSON bit for bit. Above 2^53 a
// double representation silently drops low bits, so values there must stay
// integer-typed through dump and parse (regression: large counters used to
// fall back to double above INT64_MAX).
TEST(JsonNumbers, Uint64RoundTripsLosslessly) {
  const std::uint64_t two53 = 1ull << 53;
  const std::uint64_t cases[] = {two53 - 1, two53, two53 + 1,
                                 static_cast<std::uint64_t>(INT64_MAX),
                                 static_cast<std::uint64_t>(INT64_MAX) + 1,
                                 UINT64_MAX - 1, UINT64_MAX};
  for (const std::uint64_t v : cases) {
    const Json j(static_cast<unsigned long long>(v));
    EXPECT_TRUE(j.is_number());
    EXPECT_EQ(j.as_uint(), v) << v;
    const std::string text = j.dump();
    EXPECT_EQ(text, std::to_string(v));
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(text, &parsed, &error)) << error;
    EXPECT_EQ(parsed.as_uint(), v) << v;
  }
  // Values that fit int64 stay Int (schema-stable for all existing reports);
  // only the overflow range moves to the unsigned alternative.
  EXPECT_TRUE(Json(static_cast<unsigned long long>(INT64_MAX)).is_int());
  EXPECT_TRUE(Json(static_cast<unsigned long long>(INT64_MAX) + 1).is_uint());
}

// An integer literal beyond uint64 cannot round-trip, so the strict parser
// rejects it instead of rounding it through a double. Huge *real* literals
// (exponent form) still parse as doubles.
TEST(JsonNumbers, ParserRejectsLossyIntegerLiterals) {
  Json parsed;
  std::string error;
  EXPECT_FALSE(Json::parse("18446744073709551616", &parsed, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_FALSE(Json::parse("-9223372036854775809", &parsed, &error));
  EXPECT_TRUE(Json::parse("18446744073709551615", &parsed, &error)) << error;
  EXPECT_EQ(parsed.as_uint(), UINT64_MAX);
  EXPECT_TRUE(Json::parse("1.8446744073709552e19", &parsed, &error)) << error;
  EXPECT_TRUE(parsed.is_double());
}

TEST(ScopedTimerTest, RecordsElapsedIntoGaugeAndHistogram) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  Gauge g;
  {
    ScopedTimer t(g);
  }
  EXPECT_GE(g.value(), 0.0);

  Histogram h(duration_seconds_bounds());
  {
    ScopedTimer t(h);
    const double elapsed = t.stop();
    EXPECT_GE(elapsed, 0.0);
  }
  EXPECT_EQ(h.count(), 1u);  // stop() fired, destructor must not double-count
}

// N writers hammer one registry's counter/gauge/histogram while a scraper
// merges concurrently; totals are exact after join. This is the test the
// TSan CI job leans on.
TEST(Concurrency, WritersVsScraper) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;

  MetricsRegistry reg;
  auto counter = reg.counter("hammer_total");
  auto gauge = reg.gauge("hammer_gauge");
  auto hist = reg.histogram("hammer_hist", {10.0, 100.0, 1000.0});

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = reg.snapshot();
      // Monotone counter: a concurrent scrape may lag but never overshoot.
      EXPECT_LE(snap.counter_total("hammer_total"),
                static_cast<double>(kThreads) * kOps);
      (void)reg.prometheus();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        counter->inc();
        gauge->add(1.0);
        hist->observe(static_cast<double>((t * kOps + i) % 2000));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true);
  scraper.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_total("hammer_total"),
                   static_cast<double>(kThreads) * kOps);
  EXPECT_DOUBLE_EQ(snap.gauge_total("hammer_gauge"),
                   static_cast<double>(kThreads) * kOps);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kOps);
}

// Concurrent create-or-get on the same keys must hand every thread the same
// instances and never corrupt the map.
TEST(Concurrency, RegistryCreateOrGet) {
  if (!kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  constexpr int kThreads = 8;
  MetricsRegistry reg;
  std::vector<std::thread> pool;
  std::vector<std::shared_ptr<Counter>> handles(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        handles[t] = reg.counter("shared_total", {{"lane", std::to_string(i % 4)}});
        handles[t]->inc();
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_DOUBLE_EQ(reg.snapshot().counter_total("shared_total"),
                   static_cast<double>(kThreads) * 200);
}

TEST(Disabled, PrimitivesAreInertWhenCompiledOut) {
  if (kEnabled) GTEST_SKIP() << "only meaningful with REPRO_OBS_DISABLE";
  MetricsRegistry reg;
  auto c = reg.counter("c");
  c->add(10);
  EXPECT_EQ(c->value(), 0u);
  auto h = reg.histogram("h", {1.0, 2.0});
  h->observe(1.5);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

}  // namespace
}  // namespace repro::obs
