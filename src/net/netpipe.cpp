#include "net/netpipe.hpp"

#include <thread>

#include "support/stats.hpp"
#include "support/timing.hpp"

namespace repro::net {

std::vector<std::size_t> netpipe_sizes(std::size_t min_bytes,
                                       std::size_t max_bytes) {
  std::vector<std::size_t> sizes;
  for (std::size_t n = min_bytes; n <= max_bytes; n *= 2) sizes.push_back(n);
  return sizes;
}

std::vector<NetpipePoint> analytic_curve(
    const LinkModel& link, const std::vector<std::size_t>& sizes) {
  std::vector<NetpipePoint> curve;
  curve.reserve(sizes.size());
  for (std::size_t n : sizes) {
    NetpipePoint p;
    p.bytes = n;
    p.time_s = link.transfer_time(n);
    p.bandwidth_Bps = link.effective_bandwidth(n);
    p.fraction_of_peak = link.fraction_of_peak(n);
    curve.push_back(p);
  }
  return curve;
}

std::vector<NetpipePoint> measured_curve(const std::vector<std::size_t>& sizes,
                                         int repeats) {
  std::vector<NetpipePoint> curve;
  curve.reserve(sizes.size());

  for (std::size_t n : sizes) {
    Transport transport(2);
    const std::size_t doubles = (n + sizeof(double) - 1) / sizeof(double);

    // Echo thread: rank 1 bounces every message straight back.
    std::thread echo([&] {
      while (auto msg = transport.recv(1)) {
        msg->src = 1;
        msg->dst = 0;
        transport.send(std::move(*msg));
      }
    });

    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(repeats));
    for (int r = 0; r < repeats; ++r) {
      Message msg;
      msg.src = 0;
      msg.dst = 1;
      msg.payload.assign(doubles, 1.0);
      const double t0 = wall_time();
      transport.send(std::move(msg));
      auto back = transport.recv(0);
      const double t1 = wall_time();
      if (!back) break;
      times.push_back((t1 - t0) / 2.0);  // one-way
    }
    transport.close();
    echo.join();

    NetpipePoint p;
    p.bytes = n;
    p.time_s = median(times);
    p.bandwidth_Bps = p.time_s > 0.0 ? static_cast<double>(n) / p.time_s : 0.0;
    p.fraction_of_peak = 0.0;  // no meaningful line rate for memcpy transport
    curve.push_back(p);
  }
  return curve;
}

}  // namespace repro::net
