#include "net/transport.hpp"

#include <stdexcept>

namespace repro::net {

double TrafficStats::modeled_time(const LinkModel& model) const {
  double t = 0.0;
  for (std::size_t n : message_sizes) t += model.transfer_time(n);
  return t;
}

Transport::Transport(int nranks) : nranks_(nranks) {
  if (nranks <= 0) throw std::invalid_argument("Transport needs >= 1 rank");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
}

void Transport::check_rank(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("Transport: bad rank " + std::to_string(rank));
  }
}

void Transport::send(Message msg) {
  check_rank(msg.src);
  check_rank(msg.dst);
  if (closed()) throw std::runtime_error("Transport: send after close");

  {
    std::lock_guard lock(stats_mutex_);
    stats_.messages += 1;
    stats_.bytes += msg.bytes();
    stats_.message_sizes.push_back(msg.bytes());
  }

  Mailbox& box = *boxes_[static_cast<std::size_t>(msg.dst)];
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

std::optional<Message> Transport::recv(int rank) {
  check_rank(rank);
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  box.cv.wait(lock, [&] { return !box.queue.empty() || closed(); });
  if (box.queue.empty()) return std::nullopt;
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::optional<Message> Transport::try_recv(int rank) {
  check_rank(rank);
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  if (box.queue.empty()) return std::nullopt;
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::size_t Transport::pending(int rank) const {
  check_rank(rank);
  const Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  return box.queue.size();
}

void Transport::close() {
  {
    std::lock_guard lock(closed_mutex_);
    closed_ = true;
  }
  for (auto& box : boxes_) box->cv.notify_all();
}

bool Transport::closed() const {
  std::lock_guard lock(closed_mutex_);
  return closed_;
}

TrafficStats Transport::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace repro::net
