#include "net/transport.hpp"

#include <stdexcept>
#include <string>

namespace repro::net {

double TrafficStats::modeled_time(const LinkModel& model) const {
  double t = static_cast<double>(messages) * model.transfer_time(0);
  if (model.effective_bw_Bps > 0.0) {
    t += static_cast<double>(bytes) / model.effective_bw_Bps;
  }
  return t;
}

Transport::Transport(int nranks) : nranks_(nranks) {
  if (nranks <= 0) throw std::invalid_argument("Transport needs >= 1 rank");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
}

void Transport::check_rank(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("Transport: bad rank " + std::to_string(rank));
  }
}

void Transport::send(Message msg) {
  check_rank(msg.src);
  check_rank(msg.dst);
  if (closed()) throw std::runtime_error("Transport: send after close");

  Mailbox& box = *boxes_[static_cast<std::size_t>(msg.dst)];
  {
    std::lock_guard lock(box.mutex);
    box.stats.record(msg.bytes());
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

std::optional<Message> Transport::recv(int rank) {
  check_rank(rank);
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  box.cv.wait(lock, [&] { return !box.queue.empty() || closed(); });
  if (box.queue.empty()) return std::nullopt;
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::optional<Message> Transport::try_recv(int rank) {
  check_rank(rank);
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  if (box.queue.empty()) return std::nullopt;
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::size_t Transport::pending(int rank) const {
  check_rank(rank);
  const Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  return box.queue.size();
}

void Transport::close() {
  closed_.store(true, std::memory_order_release);
  // Taking each mailbox mutex before notifying guarantees no receiver is
  // between its predicate check and its wait when the flag flips.
  for (auto& box : boxes_) {
    std::lock_guard lock(box->mutex);
    box->cv.notify_all();
  }
}

TrafficStats Transport::stats() const {
  TrafficStats total;
  for (const auto& box : boxes_) {
    std::lock_guard lock(box->mutex);
    total.merge(box->stats);
  }
  return total;
}

}  // namespace repro::net
