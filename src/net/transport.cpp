#include "net/transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace repro::net {

double TrafficStats::modeled_time(const LinkModel& model) const {
  double t = static_cast<double>(messages) * model.transfer_time(0);
  if (model.effective_bw_Bps > 0.0) {
    t += static_cast<double>(bytes) / model.effective_bw_Bps;
  }
  return t;
}

Transport::Transport(int nranks, std::shared_ptr<obs::MetricsRegistry> metrics)
    : nranks_(nranks),
      metrics_(metrics ? std::move(metrics)
                       : std::make_shared<obs::MetricsRegistry>()) {
  if (nranks <= 0) throw std::invalid_argument("Transport needs >= 1 rank");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  // Destinations past the cardinality cap share one dst="overflow" series
  // (created lazily on the first capped rank) so a huge rank count cannot
  // grow the registry without bound.
  std::shared_ptr<obs::Counter> over_messages;
  std::shared_ptr<obs::Counter> over_bytes;
  std::shared_ptr<obs::Histogram> over_sizes;
  for (int r = 0; r < nranks; ++r) {
    auto box = std::make_unique<Mailbox>();
    if constexpr (obs::kEnabled) {
      if (r < kMaxDstSeries) {
        const obs::Labels labels{{"dst", std::to_string(r)}};
        box->messages = std::make_shared<obs::Counter>();
        box->bytes = std::make_shared<obs::Counter>();
        box->sizes = std::make_shared<obs::Histogram>(obs::log2_size_bounds());
        metrics_->attach("net_messages_total", labels, box->messages,
                         "Messages delivered into this rank's mailbox");
        metrics_->attach("net_bytes_total", labels, box->bytes,
                         "Wire bytes (tag + header + payload) delivered");
        metrics_->attach("net_message_size_bytes", labels, box->sizes,
                         "Per-message wire size, log2 buckets");
      } else {
        if (!over_messages) {
          const obs::Labels labels{{"dst", "overflow"}};
          over_messages = std::make_shared<obs::Counter>();
          over_bytes = std::make_shared<obs::Counter>();
          over_sizes =
              std::make_shared<obs::Histogram>(obs::log2_size_bounds());
          metrics_->attach("net_messages_total", labels, over_messages,
                           "Messages to destinations past the label cap");
          metrics_->attach("net_bytes_total", labels, over_bytes,
                           "Wire bytes to destinations past the label cap");
          metrics_->attach("net_message_size_bytes", labels, over_sizes,
                           "Per-message wire size past the label cap");
        }
        box->messages = over_messages;
        box->bytes = over_bytes;
        box->sizes = over_sizes;
      }
    }
    boxes_.push_back(std::move(box));
  }
}

void Transport::check_rank(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("Transport: bad rank " + std::to_string(rank));
  }
}

void Transport::send(Message msg) {
  check_rank(msg.src);
  check_rank(msg.dst);
  if (closed()) throw std::runtime_error("Transport: send after close");

  Mailbox& box = *boxes_[static_cast<std::size_t>(msg.dst)];
  const std::size_t wire_bytes = msg.bytes();
  if constexpr (obs::kEnabled) {
    // Sharded relaxed atomics: accounting never touches the mailbox mutex.
    box.messages->inc();
    box.bytes->add(wire_bytes);
    box.sizes->observe(static_cast<double>(wire_bytes));
  }
  {
    std::lock_guard lock(box.mutex);
    if constexpr (!obs::kEnabled) box.stats.record(wire_bytes);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

std::optional<Message> Transport::recv(int rank) {
  check_rank(rank);
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  box.cv.wait(lock, [&] { return !box.queue.empty() || closed(); });
  if (box.queue.empty()) return std::nullopt;
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::optional<Message> Transport::try_recv(int rank) {
  check_rank(rank);
  Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  if (box.queue.empty()) return std::nullopt;
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

std::size_t Transport::pending(int rank) const {
  check_rank(rank);
  const Mailbox& box = *boxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lock(box.mutex);
  return box.queue.size();
}

void Transport::close() {
  closed_.store(true, std::memory_order_release);
  // Taking each mailbox mutex before notifying guarantees no receiver is
  // between its predicate check and its wait when the flag flips.
  for (auto& box : boxes_) {
    std::lock_guard lock(box->mutex);
    box->cv.notify_all();
  }
}

TrafficStats Transport::stats() const {
  TrafficStats total;
  if constexpr (obs::kEnabled) {
    // Reconstruct the TrafficStats view from the obs counters. Per-bucket
    // byte sums are exact: they are integer-valued doubles well below 2^53.
    // Boxes past the cardinality cap all alias the one dst="overflow"
    // series, so count it once (the first capped box) and skip the rest.
    const std::size_t distinct = std::min(
        boxes_.size(), static_cast<std::size_t>(kMaxDstSeries) + 1);
    for (std::size_t r = 0; r < distinct; ++r) {
      const auto& box = boxes_[r];
      total.messages += box->messages->value();
      total.bytes += box->bytes->value();
      for (int b = 0; b < SizeHistogram::kBuckets; ++b) {
        const auto slot = static_cast<std::size_t>(b);
        const std::uint64_t count = box->sizes->bucket_count(slot);
        if (count == 0) continue;
        total.sizes.add_bucket(
            b, count,
            static_cast<std::uint64_t>(
                std::llround(box->sizes->bucket_sum(slot))));
      }
    }
  } else {
    for (const auto& box : boxes_) {
      std::lock_guard lock(box->mutex);
      total.merge(box->stats);
    }
  }
  return total;
}

}  // namespace repro::net
