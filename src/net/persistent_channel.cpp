#include "net/persistent_channel.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/transport.hpp"

namespace repro::net {

// Per-route endpoint state. The producer pool is touched by worker threads
// through acquire(); the assembly fields only by the destination rank's
// receiver thread. One small mutex covers both — contention is nil because
// the two sides live on different ranks of the same route.
struct PersistentChannel::RouteState {
  RouteSpec spec;
  std::mutex m;

  // Producer side: registered slot buffers, reused once the previous
  // instance's last reference (in-flight fragments, retention windows, the
  // consumer's delivered buffer) has dropped.
  std::vector<std::shared_ptr<std::vector<double>>> pool;

  // Consumer side: fragment-ready bitmap of the instance being assembled.
  std::vector<std::uint8_t> got;
  std::uint32_t got_count = 0;
  // Zero-copy candidate: every fragment so far was a canonical slice of the
  // same registered buffer. Falls back to copying into `assembled`.
  std::shared_ptr<const std::vector<double>> shared_owner;
  bool zero_copy = true;
  std::vector<double> assembled;
  std::vector<std::uint64_t> rt_header;
  Message::TraceMeta trace;
};

PersistentChannel::PersistentChannel(
    std::shared_ptr<Channel> inner,
    std::shared_ptr<obs::MetricsRegistry> metrics)
    : inner_(std::move(inner)), metrics_(std::move(metrics)) {
  if (!inner_) {
    throw std::invalid_argument("PersistentChannel: null inner channel");
  }
  if (metrics_) {
    m_routes_ = metrics_->counter("net_persistent_routes_total", {},
                                  "Persistent halo routes negotiated");
    m_handshakes_ =
        metrics_->counter("net_persistent_handshake_messages_total", {},
                          "OPEN/ACK negotiation messages put on the wire");
    m_fragments_ = metrics_->counter("net_persistent_fragments_total", {},
                                     "Route fragments sent");
    m_deliveries_ = metrics_->counter("net_persistent_deliveries_total", {},
                                      "Assembled route instances delivered");
    m_buffer_allocs_ =
        metrics_->counter("net_persistent_buffer_allocs_total", {},
                          "Registered slot allocations (warmup included)");
    m_steady_allocs_ = metrics_->counter(
        "net_persistent_steady_allocs_total", {},
        "Slot allocations past the warmup pool (0 in a healthy run)");
    m_assembly_copies_ =
        metrics_->counter("net_persistent_assembly_copies_total", {},
                          "Fragments assembled by copy instead of zero-copy");
  }
}

PersistentChannel::~PersistentChannel() = default;

std::pair<std::size_t, std::size_t> PersistentChannel::fragment_slice(
    std::size_t doubles, std::uint32_t nfrag, std::uint32_t frag) {
  const std::size_t base = doubles / nfrag;
  const std::size_t rem = doubles % nfrag;
  const std::size_t begin =
      frag * base + std::min<std::size_t>(frag, rem);
  const std::size_t len = base + (frag < rem ? 1 : 0);
  return {begin, len};
}

void PersistentChannel::negotiate(const std::vector<RouteSpec>& routes) {
  if (negotiated_.load(std::memory_order_acquire)) {
    throw std::logic_error("PersistentChannel::negotiate called twice");
  }
  if (closed()) {
    throw ChannelError("PersistentChannel::negotiate after close");
  }
  const int n = inner_->nranks();
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    for (const RouteSpec& spec : routes) {
      if (spec.id == 0 || spec.doubles == 0 || spec.fragments == 0 ||
          spec.src < 0 || spec.src >= n || spec.dst < 0 || spec.dst >= n) {
        throw std::invalid_argument(
            "PersistentChannel: invalid route spec (id " +
            std::to_string(spec.id) + ")");
      }
      auto state = std::make_unique<RouteState>();
      state->spec = spec;
      if (!routes_.emplace(spec.id, std::move(state)).second) {
        throw std::invalid_argument("PersistentChannel: duplicate route id " +
                                    std::to_string(spec.id));
      }
    }
  }
  negotiated_.store(true, std::memory_order_release);

  // Wire handshake, one OPEN + ACK per ordered endpoint pair. The route
  // table above is authoritative (both endpoints live in this process); the
  // messages exist so the negotiation cost is honestly visible to traffic
  // accounting and to the DES model.
  std::map<std::pair<int, int>, std::vector<const RouteSpec*>> pairs;
  for (const auto& [id, state] : routes_) {
    pairs[{state->spec.src, state->spec.dst}].push_back(&state->spec);
  }
  std::uint64_t sent = 0;
  for (const auto& [endpoints, specs] : pairs) {
    Message open;
    open.src = endpoints.first;
    open.dst = endpoints.second;
    open.header.reserve(kOpenHeaderWords + 3 * specs.size());
    open.header = {kMagic, kOpen, static_cast<std::uint64_t>(specs.size())};
    for (const RouteSpec* spec : specs) {
      open.header.push_back(spec->id);
      open.header.push_back(static_cast<std::uint64_t>(spec->doubles));
      open.header.push_back(static_cast<std::uint64_t>(spec->fragments));
    }
    inner_->send(std::move(open));

    Message ack;
    ack.src = endpoints.second;
    ack.dst = endpoints.first;
    ack.header = {kMagic, kAck, static_cast<std::uint64_t>(specs.size())};
    inner_->send(std::move(ack));
    sent += 2;
  }
  routes_count_.fetch_add(routes.size(), std::memory_order_relaxed);
  handshakes_.fetch_add(sent, std::memory_order_relaxed);
  if (m_routes_) m_routes_->add(routes.size());
  if (m_handshakes_) m_handshakes_->add(sent);
}

PersistentChannel::RouteState* PersistentChannel::find_route(
    std::uint64_t id) const {
  if (!negotiated_.load(std::memory_order_acquire)) return nullptr;
  auto it = routes_.find(id);
  return it == routes_.end() ? nullptr : it->second.get();
}

const RouteSpec* PersistentChannel::route_spec(std::uint64_t id) const {
  const RouteState* state = find_route(id);
  return state ? &state->spec : nullptr;
}

std::shared_ptr<std::vector<double>> PersistentChannel::acquire(
    std::uint64_t route) {
  RouteState* state = find_route(route);
  if (!state) {
    throw std::invalid_argument("PersistentChannel::acquire: unknown route " +
                                std::to_string(route));
  }
  std::lock_guard<std::mutex> lock(state->m);
  for (auto& slot : state->pool) {
    // use_count()==1 means the pool holds the only reference: every
    // in-flight fragment, retention window, and consumer buffer of the
    // previous instance has been released. Only this thread creates new
    // references from the pool entry, so the check cannot race upward.
    if (slot.use_count() == 1) return slot;
  }
  const bool steady = state->pool.size() >= kWarmupSlots;
  state->pool.push_back(
      std::make_shared<std::vector<double>>(state->spec.doubles, 0.0));
  buffer_allocs_.fetch_add(1, std::memory_order_relaxed);
  if (m_buffer_allocs_) m_buffer_allocs_->inc();
  if (steady) {
    steady_allocs_.fetch_add(1, std::memory_order_relaxed);
    if (m_steady_allocs_) m_steady_allocs_->inc();
  }
  return state->pool.back();
}

Message PersistentChannel::make_fragment(
    std::uint64_t route, std::uint32_t frag,
    std::shared_ptr<const std::vector<double>> slot,
    const std::vector<std::uint64_t>& runtime_header) const {
  const RouteState* state = find_route(route);
  if (!state) {
    throw std::invalid_argument(
        "PersistentChannel::make_fragment: unknown route " +
        std::to_string(route));
  }
  const RouteSpec& spec = state->spec;
  if (frag >= spec.fragments) {
    throw std::invalid_argument(
        "PersistentChannel::make_fragment: fragment index out of range");
  }
  if (!slot || slot->size() != spec.doubles) {
    throw std::invalid_argument(
        "PersistentChannel::make_fragment: slot size does not match route");
  }
  const auto [begin, len] = fragment_slice(spec.doubles, spec.fragments, frag);
  Message msg;
  msg.src = spec.src;
  msg.dst = spec.dst;
  msg.header.reserve(kFragHeaderWords + runtime_header.size());
  msg.header = {kMagic, kFrag, route, static_cast<std::uint64_t>(frag),
                static_cast<std::uint64_t>(spec.fragments)};
  msg.header.insert(msg.header.end(), runtime_header.begin(),
                    runtime_header.end());
  msg.owner = std::move(slot);
  msg.view_offset = begin;
  msg.view_len = len;
  return msg;
}

void PersistentChannel::send(Message msg) {
  if (msg.header.size() >= 2 && msg.header[0] == kMagic &&
      msg.header[1] == kFrag) {
    fragments_.fetch_add(1, std::memory_order_relaxed);
    if (m_fragments_) m_fragments_->inc();
  }
  inner_->send(std::move(msg));
}

std::optional<Message> PersistentChannel::recv(int rank) {
  while (true) {
    auto msg = inner_->recv(rank);
    if (!msg) return std::nullopt;
    if (auto out = filter(std::move(*msg))) return out;
  }
}

std::optional<Message> PersistentChannel::try_recv(int rank) {
  while (true) {
    auto msg = inner_->try_recv(rank);
    if (!msg) return std::nullopt;
    if (auto out = filter(std::move(*msg))) return out;
  }
}

std::optional<Message> PersistentChannel::filter(Message msg) {
  if (msg.header.size() >= 2 && msg.header[0] == kMagic) {
    const std::uint64_t kind = msg.header[1];
    if (kind == kOpen || kind == kAck) return std::nullopt;  // handshake
    if (kind == kFrag) return accept_fragment(std::move(msg));
  }
  return msg;  // ordinary traffic passes through
}

std::optional<Message> PersistentChannel::accept_fragment(Message msg) {
  if (msg.header.size() < kFragHeaderWords) {
    throw ChannelError("PersistentChannel: truncated fragment header");
  }
  const std::uint64_t route = msg.header[2];
  const auto frag = static_cast<std::uint32_t>(msg.header[3]);
  const auto nfrag = static_cast<std::uint32_t>(msg.header[4]);
  RouteState* state = find_route(route);
  if (!state) {
    throw ChannelError("PersistentChannel: fragment for unknown route " +
                       std::to_string(route));
  }
  const RouteSpec& spec = state->spec;
  if (nfrag != spec.fragments || frag >= nfrag) {
    throw ChannelError("PersistentChannel: fragment indices out of range");
  }

  std::lock_guard<std::mutex> lock(state->m);
  if (state->got.empty()) state->got.assign(nfrag, 0);
  if (state->got[frag]) {
    throw ChannelError("PersistentChannel: duplicate fragment " +
                       std::to_string(frag) + " on route " +
                       std::to_string(route));
  }
  if (state->got_count == 0) {
    state->rt_header.assign(msg.header.begin() + kFragHeaderWords,
                            msg.header.end());
    state->shared_owner.reset();
    state->zero_copy = true;
  }
  // The completing fragment's trace metadata identifies the delivery: its
  // flow links the synthesized Recv span to the last Send on the route.
  state->trace = msg.trace;

  const auto [begin, len] = fragment_slice(spec.doubles, nfrag, frag);
  const bool canonical_view = msg.owner && msg.owner->size() == spec.doubles &&
                              msg.view_offset == begin && msg.view_len == len &&
                              (!state->shared_owner ||
                               state->shared_owner == msg.owner);
  if (state->zero_copy && canonical_view) {
    state->shared_owner = msg.owner;
  } else {
    // Fall back to assembling by copy (generality path: fragments from
    // different buffers, or owned payloads). Back-fill slices that were
    // provisionally zero-copy before switching.
    if (msg.payload_len() != len) {
      throw ChannelError("PersistentChannel: fragment size mismatch on route " +
                         std::to_string(route));
    }
    if (state->assembled.size() != spec.doubles) {
      state->assembled.assign(spec.doubles, 0.0);
    }
    if (state->zero_copy && state->shared_owner) {
      for (std::uint32_t f = 0; f < nfrag; ++f) {
        if (!state->got[f]) continue;
        const auto [b, l] = fragment_slice(spec.doubles, nfrag, f);
        std::memcpy(state->assembled.data() + b,
                    state->shared_owner->data() + b, l * sizeof(double));
        assembly_copies_.fetch_add(1, std::memory_order_relaxed);
        if (m_assembly_copies_) m_assembly_copies_->inc();
      }
    }
    state->zero_copy = false;
    std::memcpy(state->assembled.data() + begin, msg.payload_data(),
                len * sizeof(double));
    assembly_copies_.fetch_add(1, std::memory_order_relaxed);
    if (m_assembly_copies_) m_assembly_copies_->inc();
  }

  state->got[frag] = 1;
  state->got_count += 1;
  if (state->got_count < nfrag) return std::nullopt;

  // Last fragment: deliver the whole registered buffer as one message.
  Message out;
  out.src = spec.src;
  out.dst = spec.dst;
  out.tag = msg.tag;
  out.header = std::move(state->rt_header);
  if (state->zero_copy) {
    out.owner = std::move(state->shared_owner);
    out.view_offset = 0;
    out.view_len = spec.doubles;
  } else {
    out.payload = std::move(state->assembled);
    state->assembled.clear();
  }
  out.trace = state->trace;
  std::fill(state->got.begin(), state->got.end(), 0);
  state->got_count = 0;
  state->shared_owner.reset();
  state->zero_copy = true;
  deliveries_.fetch_add(1, std::memory_order_relaxed);
  if (m_deliveries_) m_deliveries_->inc();
  return out;
}

PersistentChannel::Stats PersistentChannel::persistent_stats() const {
  Stats out;
  out.routes = routes_count_.load(std::memory_order_relaxed);
  out.handshake_messages = handshakes_.load(std::memory_order_relaxed);
  out.fragments = fragments_.load(std::memory_order_relaxed);
  out.deliveries = deliveries_.load(std::memory_order_relaxed);
  out.buffer_allocs = buffer_allocs_.load(std::memory_order_relaxed);
  out.steady_allocs = steady_allocs_.load(std::memory_order_relaxed);
  out.assembly_copies = assembly_copies_.load(std::memory_order_relaxed);
  return out;
}

ChannelFactory persistent_channel_factory(
    ChannelFactory inner, std::shared_ptr<obs::MetricsRegistry> metrics) {
  return [inner = std::move(inner),
          metrics = std::move(metrics)](int nranks) {
    std::shared_ptr<Channel> base =
        inner ? inner(nranks) : std::make_shared<Transport>(nranks, metrics);
    return std::make_shared<PersistentChannel>(std::move(base), metrics);
  };
}

}  // namespace repro::net
