#include "net/link_model.hpp"

#include <limits>

#include "support/units.hpp"

namespace repro::net {

double LinkModel::transfer_time(std::size_t bytes) const {
  double t = latency_s + per_message_s;
  if (effective_bw_Bps > 0.0) {
    t += static_cast<double>(bytes) / effective_bw_Bps;
  }
  return t;
}

double LinkModel::effective_bandwidth(std::size_t bytes) const {
  const double t = transfer_time(bytes);
  return t > 0.0 ? static_cast<double>(bytes) / t : 0.0;
}

double LinkModel::fraction_of_peak(std::size_t bytes) const {
  return theoretical_bw_Bps > 0.0
             ? effective_bandwidth(bytes) / theoretical_bw_Bps
             : 0.0;
}

double LinkModel::bytes_for_fraction_of_effective_peak(double fraction) const {
  // n / (a + n/B) = f*B  =>  n = f*B*a / (1-f)
  if (fraction <= 0.0) return 0.0;
  if (fraction >= 1.0) return std::numeric_limits<double>::infinity();
  const double a = latency_s + per_message_s;
  return fraction * effective_bw_Bps * a / (1.0 - fraction);
}

LinkModel nacl_link() {
  LinkModel m;
  m.name = "NaCL-IB-QDR";
  m.latency_s = usec(1.0);
  m.per_message_s = usec(0.8);  // fitted so small messages sit at a few % of peak
  m.effective_bw_Bps = gbit_per_s(27.0);
  m.theoretical_bw_Bps = gbit_per_s(32.0);
  return m;
}

LinkModel stampede2_link() {
  LinkModel m;
  m.name = "Stampede2-OPA";
  m.latency_s = usec(1.0);
  m.per_message_s = usec(0.8);
  m.effective_bw_Bps = gbit_per_s(86.0);
  m.theoretical_bw_Bps = gbit_per_s(100.0);
  return m;
}

LinkModel ideal_link() {
  LinkModel m;
  m.name = "ideal";
  m.latency_s = 0.0;
  m.per_message_s = 0.0;
  m.effective_bw_Bps = 0.0;  // treated as "no per-byte cost"
  m.theoretical_bw_Bps = 0.0;
  return m;
}

}  // namespace repro::net
