// NetPIPE-style ping-pong bandwidth characterisation (paper Fig. 5).
//
// Two modes:
//   * analytic_curve(): evaluates a LinkModel over a size sweep — this is the
//     curve used to reproduce Fig. 5 for the NaCL and Stampede2 presets.
//   * measured_curve(): runs a real two-thread ping-pong over the in-memory
//     Transport and reports achieved copy bandwidth on the host machine
//     (characterises the substitution substrate itself).
#pragma once

#include <cstddef>
#include <vector>

#include "net/link_model.hpp"
#include "net/transport.hpp"

namespace repro::net {

struct NetpipePoint {
  std::size_t bytes = 0;
  double time_s = 0.0;          ///< one-way transfer time
  double bandwidth_Bps = 0.0;   ///< bytes / time
  double fraction_of_peak = 0;  ///< vs theoretical line rate (0 if unknown)
};

/// Standard NetPIPE size sweep: powers of two from `min_bytes` to `max_bytes`
/// with the classic +/- perturbation points omitted for clarity.
std::vector<std::size_t> netpipe_sizes(std::size_t min_bytes,
                                       std::size_t max_bytes);

/// Evaluate the analytic model at each size.
std::vector<NetpipePoint> analytic_curve(const LinkModel& link,
                                         const std::vector<std::size_t>& sizes);

/// Real ping-pong between rank 0 and rank 1 of a fresh Transport;
/// `repeats` round trips per size, median one-way time reported.
std::vector<NetpipePoint> measured_curve(const std::vector<std::size_t>& sizes,
                                         int repeats = 32);

}  // namespace repro::net
