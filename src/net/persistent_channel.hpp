// Persistent/partitioned halo channels: negotiate once, then a
// zero-allocation, zero-copy steady state.
//
// The classic wire path allocates a fresh payload vector per halo message,
// deep-copies it into the channel, and deep-copies again on delivery. This
// decorator implements the persistent-communication idea from *Persistent
// and Partitioned MPI for Stencil Communication* (PAPERS.md): the task-graph
// builder knows every producer→consumer halo edge and its exact size before
// the run starts, so the endpoints negotiate a `RouteSpec` table ONCE — the
// handshake puts real OPEN/ACK control messages on the inner wire for honest
// traffic accounting — and thereafter each route sends from a pre-registered
// slot buffer:
//
//   * the producer `acquire()`s a mutable slot (reused from a small pool the
//     moment the previous instance's last reference drops — allocations past
//     the warmup pool are counted in `net_persistent_steady_allocs_total`,
//     which a healthy run keeps at 0),
//   * packs straight into it, and publishes each PARTITION of the buffer as
//     a FRAG message the moment that fragment is ready (a shared view — no
//     copy), instead of waiting for a whole-superstep pack,
//   * the consumer side keeps a fragment-ready bitmap per route; when the
//     last fragment lands, the whole registered buffer is delivered to the
//     runtime as one message whose payload IS the producer's slot
//     (zero-copy; the stencil unpacks its ghost region directly from it).
//
// Non-route traffic passes through untouched, so the decorator composes with
// the rest of the stack (docs/CHANNELS.md):
//
//     PersistentChannel( ReliableChannel( FaultInjector( Transport ) ) )
//
// The reliability layer retains shared-view messages by refcount, so even
// retransmits re-send from the registered buffer without re-copying.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"
#include "obs/metrics.hpp"

namespace repro::net {

/// One pre-negotiated producer→consumer halo route: a fixed-size payload
/// sent repeatedly from src to dst for the lifetime of a run.
struct RouteSpec {
  std::uint64_t id = 0;         ///< nonzero, unique across the run
  int src = -1;                 ///< producer rank
  int dst = -1;                 ///< consumer rank
  std::size_t doubles = 0;      ///< payload doubles of one route instance
  std::uint32_t fragments = 1;  ///< partitions one instance is published in
};

/// Channel decorator adding persistent routes (see file comment). Thread
/// safety matches Channel: send()/acquire() from any thread, recv() from the
/// destination rank's receiver thread; negotiate() must be called once,
/// before any route traffic, from a single thread.
class PersistentChannel : public Channel {
 public:
  /// First header word of every control/fragment message ("PERCHAN\0").
  static constexpr std::uint64_t kMagic = 0x5045524348414E00ull;
  /// Control kinds (second header word).
  static constexpr std::uint64_t kOpen = 0;  ///< src→dst route announcement
  static constexpr std::uint64_t kAck = 1;   ///< dst→src handshake accept
  static constexpr std::uint64_t kFrag = 2;  ///< one partition of a route
  /// FRAG framing words before the embedded runtime header:
  /// {kMagic, kFrag, route, frag, nfrag}.
  static constexpr std::size_t kFragHeaderWords = 5;
  /// OPEN framing: {kMagic, kOpen, n} then n x {id, doubles, fragments}.
  static constexpr std::size_t kOpenHeaderWords = 3;
  /// ACK framing: {kMagic, kAck, n}.
  static constexpr std::size_t kAckHeaderWords = 3;
  /// Slots pre-registered per route; allocations beyond this pool after
  /// negotiation count as steady-state allocations (acceptance: zero).
  /// Three slots cover the worst-case number of live instances per route:
  /// the producer's newly acquired buffer, one instance in flight, and one
  /// delivered but not yet consumed. Diagonal (corner) halo routes reach
  /// that bound because the producer's progress is gated only through a
  /// shared side neighbor — grid distance 2 — so the consumer may lag the
  /// producer by two supersteps.
  static constexpr std::size_t kWarmupSlots = 3;

  /// Always-on counters (plain atomics, independent of REPRO_OBS_DISABLE).
  struct Stats {
    std::uint64_t routes = 0;             ///< negotiated routes
    std::uint64_t handshake_messages = 0; ///< OPEN + ACK put on the wire
    std::uint64_t fragments = 0;          ///< FRAG messages sent
    std::uint64_t deliveries = 0;         ///< assembled route instances
    std::uint64_t buffer_allocs = 0;      ///< slot allocations, warmup incl.
    std::uint64_t steady_allocs = 0;      ///< slot allocations past warmup
    std::uint64_t assembly_copies = 0;    ///< fragments assembled by copy
  };

  /// Wrap `inner`; `metrics` (nullable) receives the net_persistent_*
  /// counter families mirroring Stats.
  explicit PersistentChannel(
      std::shared_ptr<Channel> inner,
      std::shared_ptr<obs::MetricsRegistry> metrics = nullptr);
  ~PersistentChannel() override;

  /// One-time route negotiation. Registers every route at both endpoints
  /// and performs the wire handshake: per ordered (src,dst) pair with >= 1
  /// route, one OPEN (src→dst, announcing id/size/fragments) and one ACK
  /// (dst→src). recv()/try_recv() consume these control messages before the
  /// runtime sees any data. Throws if called twice, after close(), or on an
  /// invalid spec (zero/duplicate id, bad ranks, zero size).
  void negotiate(const std::vector<RouteSpec>& routes);

  /// Producer side: a mutable registered buffer (sized spec.doubles) for the
  /// next instance of `route`. Reuses a pooled slot whose previous instance
  /// has been fully released (delivered and consumed); otherwise grows the
  /// pool, counting a steady-state allocation once the warmup pool is
  /// exhausted. Throws on unknown route.
  std::shared_ptr<std::vector<double>> acquire(std::uint64_t route);

  /// Build the FRAG message for partition `frag` (of spec.fragments) of an
  /// instance of `route`: header = {kMagic, kFrag, route, frag, nfrag} ++
  /// `runtime_header`, payload = a shared view of `slot` covering the
  /// fragment's even-split slice. `slot->size()` must equal spec.doubles.
  /// The caller sends the result through send() (typically via the
  /// runtime's outbox so trace metadata is stamped).
  Message make_fragment(std::uint64_t route, std::uint32_t frag,
                        std::shared_ptr<const std::vector<double>> slot,
                        const std::vector<std::uint64_t>& runtime_header) const;

  /// Spec for `id`, or nullptr when the route is unknown / not negotiated.
  const RouteSpec* route_spec(std::uint64_t id) const;

  /// Counter snapshot (always live, even with obs compiled out).
  Stats persistent_stats() const;

  // Channel interface ------------------------------------------------------
  int nranks() const override { return inner_->nranks(); }
  /// Forward to the inner stack (fragments are counted on the way through).
  void send(Message msg) override;
  /// Inner recv, with route reassembly: control messages are consumed,
  /// fragments accumulate in the route's bitmap, and a completed instance is
  /// delivered as a single message carrying the registered buffer. Ordinary
  /// messages pass through unchanged.
  std::optional<Message> recv(int rank) override;
  /// Non-blocking recv with the same reassembly; returns nullopt when the
  /// inner channel is empty or everything drained was control/partial.
  std::optional<Message> try_recv(int rank) override;
  /// Queued message count of the inner channel (control/fragment messages
  /// included — this reports wire occupancy, not assembled deliveries).
  std::size_t pending(int rank) const override { return inner_->pending(rank); }
  void close() override { inner_->close(); }
  bool closed() const override { return inner_->closed(); }
  /// Inner wire traffic: handshake + fragments + passthrough, as sent.
  TrafficStats stats() const override { return inner_->stats(); }
  /// Persistent routing adds no loss; honesty delegates to the inner stack.
  bool lossless() const override { return inner_->lossless(); }

  /// Even-split fragment slice [begin, begin+len) of `doubles` over `nfrag`
  /// partitions (remainder spread over the leading fragments).
  static std::pair<std::size_t, std::size_t> fragment_slice(
      std::size_t doubles, std::uint32_t nfrag, std::uint32_t frag);

 private:
  struct RouteState;

  /// Handle one inner message: returns the message to surface to the
  /// caller, or nullopt when it was control/partial-fragment traffic.
  std::optional<Message> filter(Message msg);
  std::optional<Message> accept_fragment(Message msg);
  RouteState* find_route(std::uint64_t id) const;

  std::shared_ptr<Channel> inner_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;

  mutable std::mutex table_mutex_;  ///< guards routes_ during negotiate()
  std::unordered_map<std::uint64_t, std::unique_ptr<RouteState>> routes_;
  std::atomic<bool> negotiated_{false};

  // Always-on counters (mirrored to obs when a registry is attached).
  std::atomic<std::uint64_t> routes_count_{0};
  std::atomic<std::uint64_t> handshakes_{0};
  std::atomic<std::uint64_t> fragments_{0};
  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> buffer_allocs_{0};
  std::atomic<std::uint64_t> steady_allocs_{0};
  std::atomic<std::uint64_t> assembly_copies_{0};

  std::shared_ptr<obs::Counter> m_routes_, m_handshakes_, m_fragments_,
      m_deliveries_, m_buffer_allocs_, m_steady_allocs_, m_assembly_copies_;
};

/// Wrap a channel factory so each run's stack gains an outermost
/// PersistentChannel (an empty `inner` builds the default Transport over
/// `metrics`, matching the runtime's fallback). The canonical way drivers
/// honor a `persistent` flag.
ChannelFactory persistent_channel_factory(
    ChannelFactory inner, std::shared_ptr<obs::MetricsRegistry> metrics);

}  // namespace repro::net
