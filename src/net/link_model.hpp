// Analytic alpha-beta network link model.
//
// The paper characterises its two interconnects with NetPIPE (Fig. 5):
//   NaCL:      InfiniBand QDR, 32 Gb/s theoretical, ~27 Gb/s effective peak,
//              ~1 us latency
//   Stampede2: Intel Omni-Path, 100 Gb/s theoretical, ~86 Gb/s effective peak,
//              ~1 us latency
//
// A message of n bytes costs
//     T(n) = alpha + overhead_per_message + n / effective_bandwidth
// which yields the classic saturation curve
//     BW_eff(n) = n / T(n)
// rising from latency-bound (tiny messages, a few % of peak) to the effective
// peak (large messages, 70-90% of theoretical peak) exactly as in Fig. 5.
#pragma once

#include <cstddef>
#include <string>

namespace repro::net {

struct LinkModel {
  std::string name;
  double latency_s = 1e-6;          ///< alpha: one-way wire+stack latency
  double per_message_s = 0.5e-6;    ///< software per-message overhead
  double effective_bw_Bps = 0.0;    ///< beta^-1: asymptotic achievable B/s
  double theoretical_bw_Bps = 0.0;  ///< quoted line rate in B/s

  /// One-way transfer time of an n-byte message.
  double transfer_time(std::size_t bytes) const;

  /// Achieved bandwidth n / T(n) in bytes/second.
  double effective_bandwidth(std::size_t bytes) const;

  /// Achieved bandwidth as a fraction of the theoretical line rate (0..1).
  double fraction_of_peak(std::size_t bytes) const;

  /// Message size needed to reach `fraction` (0..1) of the *effective* peak.
  /// Solves n/T(n) = fraction * effective_bw for n.
  double bytes_for_fraction_of_effective_peak(double fraction) const;
};

/// NaCL cluster link (InfiniBand QDR), fitted to the paper's Fig. 5.
LinkModel nacl_link();

/// Stampede2 link (Omni-Path), fitted to the paper's Fig. 5.
LinkModel stampede2_link();

/// Idealised zero-latency infinite-bandwidth link (for ablations/tests).
LinkModel ideal_link();

}  // namespace repro::net
