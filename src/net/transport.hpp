// In-memory message transport between virtual processes (simulated nodes).
//
// This is the substitute for MPI point-to-point messaging: every virtual
// process (rank) owns a mailbox; send() performs an explicit copy of the
// payload into the destination mailbox (no shared-pointer shortcuts across
// ranks, so data volumes are honest), and recv() blocks until a message or
// shutdown. Per-(src,dst) FIFO ordering is guaranteed, matching MPI
// non-overtaking semantics on a single tag.
//
// Transport implements net::Channel, so fault-injection / reliability
// decorators (src/fault) can wrap it transparently.
//
// Locking: one mutex per mailbox guards the queue; shutdown state is a
// single std::atomic<bool>, so send()-vs-close() has exactly one ordering
// point. Traffic accounting lives in sharded obs counters per mailbox
// (lock-free on the send path); stats() reconstructs the TrafficStats view
// from them on demand, exact once senders quiesce. When obs is compiled out
// (REPRO_OBS_DISABLE) the pre-obs per-mailbox TrafficStats path — guarded by
// the mailbox mutex — takes over, so stats() works in both builds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "net/channel.hpp"
#include "obs/metrics.hpp"

namespace repro::net {

class Transport final : public Channel {
 public:
  /// Per-destination label cardinality cap: only the first kMaxDstSeries
  /// ranks get their own dst="<rank>" series; every rank beyond the cap
  /// shares one dst="overflow" series. Bounds the registry footprint when a
  /// resident registry sees large rank counts or thousands of short-lived
  /// transports (the serve farm), at the cost of per-destination resolution
  /// past the cap. stats() remains exact either way.
  static constexpr int kMaxDstSeries = 64;

  /// `metrics`, when given, is the registry the per-destination traffic
  /// counters register into (families net_messages_total, net_bytes_total,
  /// net_message_size_bytes, label dst="<rank>", capped at kMaxDstSeries
  /// distinct destinations + one dst="overflow" bucket); a fresh private
  /// registry is created otherwise. Counters are per-Transport:
  /// re-registering into a shared registry replaces the previous transport's
  /// series.
  explicit Transport(int nranks,
                     std::shared_ptr<obs::MetricsRegistry> metrics = nullptr);

  /// The registry this transport's counters live in (never null).
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  int nranks() const override { return nranks_; }

  /// Deliver `msg` to msg.dst's mailbox. Thread-safe. Throws on bad ranks or
  /// after close().
  void send(Message msg) override;

  /// Blocking receive for `rank`. Returns std::nullopt once close() has been
  /// called and the mailbox is drained.
  std::optional<Message> recv(int rank) override;

  /// Non-blocking receive.
  std::optional<Message> try_recv(int rank) override;

  /// Number of undelivered messages currently queued for `rank`.
  std::size_t pending(int rank) const override;

  /// The in-memory transport never drops, duplicates, or reorders: every
  /// send is delivered exactly once in per-(src,dst) FIFO order.
  bool lossless() const override { return true; }

  /// Wake all blocked receivers; subsequent recv() calls drain then return
  /// nullopt. Idempotent.
  void close() override;

  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  /// Snapshot of global traffic counters.
  TrafficStats stats() const override;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    TrafficStats stats;  ///< fallback accounting when obs is compiled out
    // obs accounting (lock-free sharded; unused no-ops when disabled)
    std::shared_ptr<obs::Counter> messages;
    std::shared_ptr<obs::Counter> bytes;
    std::shared_ptr<obs::Histogram> sizes;
  };

  void check_rank(int rank) const;

  int nranks_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<bool> closed_{false};
};

}  // namespace repro::net
