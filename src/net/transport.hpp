// In-memory message transport between virtual processes (simulated nodes).
//
// This is the substitute for MPI point-to-point messaging: every virtual
// process (rank) owns a mailbox; send() performs an explicit copy of the
// payload into the destination mailbox (no shared-pointer shortcuts across
// ranks, so data volumes are honest), and recv() blocks until a message or
// shutdown. Per-(src,dst) FIFO ordering is guaranteed, matching MPI
// non-overtaking semantics on a single tag.
//
// Traffic statistics (message count, byte count, per-size histogram) feed the
// experiment harnesses; an optional LinkModel lets callers account the time
// the same traffic would have cost on a real interconnect.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/link_model.hpp"

namespace repro::net {

/// A message between ranks. `header` carries small metadata words (task keys,
/// slot ids); `payload` carries the bulk data. Both count toward traffic.
struct Message {
  int src = -1;
  int dst = -1;
  std::uint64_t tag = 0;
  std::vector<std::uint64_t> header;
  std::vector<double> payload;

  std::size_t bytes() const {
    return sizeof(tag) + header.size() * sizeof(std::uint64_t) +
           payload.size() * sizeof(double);
  }
};

/// Aggregate traffic counters, snapshot-able while the transport is running.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Time the observed traffic would cost on `model`, summing per-message
  /// transfer times (an upper bound that ignores overlap).
  double modeled_time(const LinkModel& model) const;
  std::vector<std::size_t> message_sizes;  ///< one entry per message
};

class Transport {
 public:
  explicit Transport(int nranks);

  int nranks() const { return nranks_; }

  /// Deliver `msg` to msg.dst's mailbox. Thread-safe. Throws on bad ranks or
  /// after close().
  void send(Message msg);

  /// Blocking receive for `rank`. Returns std::nullopt once close() has been
  /// called and the mailbox is drained.
  std::optional<Message> recv(int rank);

  /// Non-blocking receive.
  std::optional<Message> try_recv(int rank);

  /// Number of undelivered messages currently queued for `rank`.
  std::size_t pending(int rank) const;

  /// Wake all blocked receivers; subsequent recv() calls drain then return
  /// nullopt. Idempotent.
  void close();

  bool closed() const;

  /// Snapshot of global traffic counters.
  TrafficStats stats() const;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void check_rank(int rank) const;

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  mutable std::mutex stats_mutex_;
  TrafficStats stats_;
  bool closed_ = false;
  mutable std::mutex closed_mutex_;
};

}  // namespace repro::net
