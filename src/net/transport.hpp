// In-memory message transport between virtual processes (simulated nodes).
//
// This is the substitute for MPI point-to-point messaging: every virtual
// process (rank) owns a mailbox; send() performs an explicit copy of the
// payload into the destination mailbox (no shared-pointer shortcuts across
// ranks, so data volumes are honest), and recv() blocks until a message or
// shutdown. Per-(src,dst) FIFO ordering is guaranteed, matching MPI
// non-overtaking semantics on a single tag.
//
// Transport implements net::Channel, so fault-injection / reliability
// decorators (src/fault) can wrap it transparently.
//
// Locking: one mutex per mailbox guards both the queue and that mailbox's
// traffic counters (stats() aggregates across mailboxes on demand); shutdown
// state is a single std::atomic<bool>, so send()-vs-close() has exactly one
// ordering point and no separate stats/closed mutexes exist.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "net/channel.hpp"

namespace repro::net {

class Transport final : public Channel {
 public:
  explicit Transport(int nranks);

  int nranks() const override { return nranks_; }

  /// Deliver `msg` to msg.dst's mailbox. Thread-safe. Throws on bad ranks or
  /// after close().
  void send(Message msg) override;

  /// Blocking receive for `rank`. Returns std::nullopt once close() has been
  /// called and the mailbox is drained.
  std::optional<Message> recv(int rank) override;

  /// Non-blocking receive.
  std::optional<Message> try_recv(int rank) override;

  /// Number of undelivered messages currently queued for `rank`.
  std::size_t pending(int rank) const override;

  /// Wake all blocked receivers; subsequent recv() calls drain then return
  /// nullopt. Idempotent.
  void close() override;

  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  /// Snapshot of global traffic counters.
  TrafficStats stats() const override;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    TrafficStats stats;  ///< traffic delivered into this mailbox
  };

  void check_rank(int rank) const;

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<bool> closed_{false};
};

}  // namespace repro::net
