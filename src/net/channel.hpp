// Message-channel abstraction between virtual processes.
//
// `Channel` is the interface the runtime's communication threads speak; the
// canonical implementation is the in-memory `Transport` (transport.hpp), but
// decorators stack behind the same interface (see docs/CHANNELS.md):
//
//     PersistentChannel( ReliableChannel( FaultInjector( Transport ) ) )
//
// so lossy delivery, retransmission, and persistent zero-copy halo routes
// are invisible to the runtime. A `ChannelFactory` lets callers inject such
// a stack per run without the runtime depending on the fault library.
//
// Traffic accounting lives here too: `TrafficStats` counts messages/bytes and
// keeps a fixed log2-bucket `SizeHistogram` of message sizes, so the memory
// footprint of the counters is constant no matter how many messages a run
// sends (previously one size_t was retained per message, forever).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "net/link_model.hpp"

namespace repro::net {

/// A message between ranks. `header` carries small metadata words (task keys,
/// slot ids); the payload carries the bulk data. Both count toward traffic.
///
/// The payload has two representations:
///   * owned  — `payload` holds the doubles (the classic deep-copy wire);
///   * shared — `owner` points at a pre-registered buffer and the payload is
///     the `view_len` doubles starting at `owner->data() + view_offset`
///     (`payload` stays empty). This is the persistent-channel zero-copy
///     path: copying the Message is a refcount bump, so fault-layer window
///     retention and duplicate injection never re-copy the bulk data.
/// `span()` reads whichever representation is active.
struct Message {
  int src = -1;
  int dst = -1;
  std::uint64_t tag = 0;
  std::vector<std::uint64_t> header;
  std::vector<double> payload;

  /// Shared payload view (see above). Non-null makes `payload` inert.
  std::shared_ptr<const std::vector<double>> owner;
  std::size_t view_offset = 0;
  std::size_t view_len = 0;

  /// True when the payload is a shared view of a registered buffer.
  bool shared_payload() const { return owner != nullptr; }

  /// Payload length in doubles, for either representation.
  std::size_t payload_len() const {
    return owner ? view_len : payload.size();
  }

  /// First payload double, for either representation (null when empty).
  const double* payload_data() const {
    return owner ? owner->data() + view_offset : payload.data();
  }

  /// In-memory trace metadata riding along with the message (never
  /// serialized, never counted in bytes()). Filled by the runtime when
  /// tracing is on; decorator channels must carry it across wrap/unwrap so
  /// the delivered copy still identifies its Send span.
  struct TraceMeta {
    std::uint64_t flow = 0;  ///< nonzero id linking the Send and Recv spans
    double queued_s = 0.0;   ///< when the producer enqueued the message
    double wire_s = 0.0;     ///< when the channel accepted it
    /// Transmission attempt that produced this copy (1 = first send). A
    /// reliability layer bumps it on every retransmit of the retained wire
    /// copy, so the receiver sees the attempt count of the copy that got
    /// through.
    std::uint32_t attempt = 1;
  };
  TraceMeta trace;

  /// Wire size: tag + header words + payload doubles. Shared views count
  /// their viewed doubles — the bytes that would cross a real wire — even
  /// though no copy happens in-process.
  std::size_t bytes() const {
    return sizeof(tag) + header.size() * sizeof(std::uint64_t) +
           payload_len() * sizeof(double);
  }
};

/// Fixed log2-bucket histogram of message sizes: bucket b covers
/// [2^b, 2^(b+1)) bytes (sizes 0 and 1 both land in bucket 0). Constant
/// memory regardless of message count; per-bucket byte totals are exact, so
/// affine link models can still be evaluated exactly from it.
class SizeHistogram {
 public:
  static constexpr int kBuckets = 64;

  static int bucket_of(std::size_t bytes) {
    return bytes <= 1 ? 0 : std::bit_width(bytes) - 1;
  }
  static std::size_t bucket_lo(int bucket) {
    return static_cast<std::size_t>(1) << bucket;
  }

  void record(std::size_t bytes) {
    const auto b = static_cast<std::size_t>(bucket_of(bytes));
    counts_[b] += 1;
    bytes_[b] += bytes;
  }

  /// Bulk-load one bucket (used when reconstructing a histogram from an
  /// external store, e.g. the obs metrics registry).
  void add_bucket(int bucket, std::uint64_t count, std::uint64_t bytes) {
    counts_[static_cast<std::size_t>(bucket)] += count;
    bytes_[static_cast<std::size_t>(bucket)] += bytes;
  }

  void merge(const SizeHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      counts_[static_cast<std::size_t>(b)] +=
          other.counts_[static_cast<std::size_t>(b)];
      bytes_[static_cast<std::size_t>(b)] +=
          other.bytes_[static_cast<std::size_t>(b)];
    }
  }

  std::uint64_t count(int bucket) const {
    return counts_[static_cast<std::size_t>(bucket)];
  }
  std::uint64_t bytes(int bucket) const {
    return bytes_[static_cast<std::size_t>(bucket)];
  }

  std::uint64_t total_count() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : counts_) n += c;
    return n;
  }
  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (std::uint64_t b : bytes_) n += b;
    return n;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::array<std::uint64_t, kBuckets> bytes_{};
};

/// Aggregate traffic counters, snapshot-able while the channel is running.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  SizeHistogram sizes;  ///< log2-bucket message-size distribution

  void record(std::size_t n) {
    messages += 1;
    bytes += n;
    sizes.record(n);
  }

  void merge(const TrafficStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    sizes.merge(other.sizes);
  }

  /// Time the observed traffic would cost on `model`, summing per-message
  /// transfer times (an upper bound that ignores overlap). Exact despite the
  /// histogram: transfer_time is affine in size, so the sum only needs the
  /// message count and the exact byte total.
  double modeled_time(const LinkModel& model) const;
};

/// Abstract point-to-point message channel between `nranks` virtual
/// processes. Implementations must be thread-safe: send() from any thread,
/// recv()/try_recv() from per-rank receiver threads.
class Channel {
 public:
  virtual ~Channel() = default;

  virtual int nranks() const = 0;

  /// Deliver `msg` toward msg.dst. Throws on bad ranks or after close().
  virtual void send(Message msg) = 0;

  /// Blocking receive for `rank`. Returns std::nullopt once close() has been
  /// called and the mailbox is drained. May throw ChannelError when the
  /// channel has conclusively failed (e.g. retries exhausted).
  virtual std::optional<Message> recv(int rank) = 0;

  /// Non-blocking receive.
  virtual std::optional<Message> try_recv(int rank) = 0;

  /// Number of undelivered messages currently queued for `rank`.
  virtual std::size_t pending(int rank) const = 0;

  /// Wake all blocked receivers; subsequent recv() calls drain then return
  /// nullopt. Idempotent.
  virtual void close() = 0;

  virtual bool closed() const = 0;

  /// Snapshot of global traffic counters (for decorators: traffic actually
  /// put on the underlying wire, including retransmissions and acks).
  virtual TrafficStats stats() const = 0;

  /// True when this channel — including its whole inner stack — delivers
  /// every accepted message exactly once, in per-(src,dst) FIFO order,
  /// without loss. The in-memory Transport is lossless; a FaultInjector is
  /// not. A reliability layer over a lossless stack may skip retaining
  /// payload copies for retransmission: any retransmit is then necessarily a
  /// duplicate of an already-delivered message and is dropped by sequence
  /// number before its payload is examined.
  virtual bool lossless() const { return false; }
};

/// Builds the channel stack for one run. Null factory = plain Transport.
using ChannelFactory = std::function<std::shared_ptr<Channel>(int nranks)>;

/// Conclusive delivery failure (retries exhausted, peer unreachable). The
/// runtime aborts the run when a communication thread observes this; a
/// recovery driver can then roll back to a checkpoint and re-run.
class ChannelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace repro::net
