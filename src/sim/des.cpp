#include "sim/des.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <stdexcept>

namespace repro::sim {

std::uint32_t SimGraph::add_task(const SimTaskSpec& spec) {
  if (spec.cost_s < 0.0) throw std::invalid_argument("SimGraph: negative cost");
  tasks_.push_back(spec);
  out_.emplace_back();
  indegree_.push_back(0);
  return static_cast<std::uint32_t>(tasks_.size() - 1);
}

void SimGraph::add_edge(std::uint32_t src, std::uint32_t dst, double bytes) {
  if (src >= tasks_.size() || dst >= tasks_.size()) {
    throw std::out_of_range("SimGraph: edge endpoint out of range");
  }
  if (src == dst) throw std::invalid_argument("SimGraph: self edge");
  out_[src].push_back({dst, bytes});
  ++indegree_[dst];
}

namespace {

struct ReadyEntry {
  int priority;
  double ready_s;
  std::uint32_t task;
  std::uint64_t seq;  ///< enqueue order: FIFO within (priority, ready time)

  friend bool operator<(const ReadyEntry& a, const ReadyEntry& b) {
    // std::priority_queue is a max-heap; we want high priority first, then
    // earlier ready time, then true arrival order. Without the seqno, ties
    // fell back to task id — heap order, not FIFO (the rt::Runtime queue
    // carries the same seqno for the same reason).
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.ready_s != b.ready_s) return a.ready_s > b.ready_s;
    return a.seq > b.seq;
  }
};

enum class EventType { TaskFinish, MessageArrive, DependencySatisfied };

struct Event {
  double time;
  EventType type;
  std::uint32_t task;
  std::uint64_t seq;  ///< tie-breaker for determinism
  double bytes = 0.0;  ///< MessageArrive: payload for the receive-side copy

  friend bool operator<(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;  // min-heap on time
    return a.seq > b.seq;
  }
};

}  // namespace

SimResult simulate(const SimGraph& graph, const SimMachineConfig& machine,
                   bool trace) {
  const std::size_t n = graph.num_tasks();
  SimResult result;
  result.node_busy_s.assign(static_cast<std::size_t>(machine.nodes), 0.0);
  if (n == 0) return result;

  for (std::uint32_t t0 = 0; t0 < n; ++t0) {
    const auto& t = graph.task(t0);
    if (t.node < 0 || t.node >= machine.nodes) {
      throw std::out_of_range("simulate: task node out of range");
    }
  }

  std::vector<std::uint32_t> remaining(n);
  for (std::uint32_t t = 0; t < n; ++t) remaining[t] = graph.indegree(t);
  std::vector<std::priority_queue<ReadyEntry>> ready(
      static_cast<std::size_t>(machine.nodes));
  std::vector<int> free_workers(static_cast<std::size_t>(machine.nodes),
                                machine.workers_per_node);
  // Worker id bookkeeping (for the trace): smallest free id per node.
  std::vector<std::vector<int>> free_ids(
      static_cast<std::size_t>(machine.nodes));
  for (auto& ids : free_ids) {
    for (int w = machine.workers_per_node - 1; w >= 0; --w) ids.push_back(w);
  }
  std::vector<int> assigned_worker(n, -1);
  // One communication thread per node, shared by sends and receives.
  std::vector<double> comm_free_at(static_cast<std::size_t>(machine.nodes),
                                   0.0);

  std::priority_queue<Event> events;
  std::uint64_t seq = 0;
  std::uint64_t ready_seq = 0;  ///< arrival stamp for ready-queue FIFO ties
  std::size_t finished = 0;

  auto start_if_possible = [&](int node, double now) {
    auto& queue = ready[static_cast<std::size_t>(node)];
    while (free_workers[static_cast<std::size_t>(node)] > 0 && !queue.empty()) {
      const ReadyEntry entry = queue.top();
      queue.pop();
      --free_workers[static_cast<std::size_t>(node)];
      const int worker = free_ids[static_cast<std::size_t>(node)].back();
      free_ids[static_cast<std::size_t>(node)].pop_back();
      assigned_worker[entry.task] = worker;
      const double begin = std::max(now, entry.ready_s);
      const double end = begin + graph.task(entry.task).cost_s;
      events.push({end, EventType::TaskFinish, entry.task, seq++});
      result.node_busy_s[static_cast<std::size_t>(node)] +=
          graph.task(entry.task).cost_s;
      if (trace) {
        result.trace.push_back({entry.task, node, worker,
                                graph.task(entry.task).klass, begin, end});
      }
    }
  };

  auto mark_ready = [&](std::uint32_t task, double when) {
    const int node = graph.task(task).node;
    ready[static_cast<std::size_t>(node)].push(
        {graph.task(task).priority, when, task, ready_seq++});
    start_if_possible(node, when);
  };

  // Enqueue every initially-ready task before dispatching any, so priority
  // ordering is honored at t = 0.
  for (std::uint32_t t = 0; t < n; ++t) {
    if (remaining[t] == 0) {
      ready[static_cast<std::size_t>(graph.task(t).node)].push(
          {graph.task(t).priority, 0.0, t, ready_seq++});
    }
  }
  for (int node = 0; node < machine.nodes; ++node) {
    start_if_possible(node, 0.0);
  }

  double now = 0.0;
  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    now = event.time;

    switch (event.type) {
      case EventType::TaskFinish: {
        ++finished;
        const std::uint32_t task = event.task;
        const int node = graph.task(task).node;
        ++free_workers[static_cast<std::size_t>(node)];
        free_ids[static_cast<std::size_t>(node)].push_back(
            assigned_worker[task]);

        // Local edges deliver instantly; remote edges become messages, one
        // per edge or (aggregated) one per destination node.
        std::map<int, std::pair<double, std::vector<std::uint32_t>>> grouped;
        for (const auto& edge : graph.out_edges(task)) {
          const int dst_node = graph.task(edge.dst).node;
          if (dst_node == node) {
            if (--remaining[edge.dst] == 0) mark_ready(edge.dst, now);
          } else if (machine.aggregate_per_destination) {
            auto& group = grouped[dst_node];
            group.first += edge.bytes;
            group.second.push_back(edge.dst);
          } else {
            grouped[static_cast<int>(grouped.size()) + machine.nodes] = {
                edge.bytes, {edge.dst}};  // unique key: one group per edge
          }
        }
        for (const auto& [unused_key, group] : grouped) {
          // The sending comm thread serializes message handling + NIC
          // injection; the wire adds latency; the receiving comm thread
          // serializes delivery (handled at MessageArrive).
          const double send_start =
              std::max(now, comm_free_at[static_cast<std::size_t>(node)]);
          // The payload copy into the outgoing message happens once even
          // when the wire cost repeats across retransmissions.
          const double wire =
              machine.message_cost_multiplier *
                  (machine.comm_overhead_s + machine.link.per_message_s +
                   (machine.link.effective_bw_Bps > 0.0
                        ? group.first / machine.link.effective_bw_Bps
                        : 0.0)) +
              group.first * machine.msg_copy_s_per_byte;
          const double send_end = send_start + wire;
          comm_free_at[static_cast<std::size_t>(node)] = send_end;
          result.messages += 1;
          result.message_bytes += group.first;
          result.network_busy_s += wire;
          for (std::uint32_t dst : group.second) {
            events.push({send_end + machine.link.latency_s +
                             machine.extra_latency_s,
                         EventType::MessageArrive, dst, seq++, group.first});
          }
        }
        start_if_possible(node, now);
        break;
      }
      case EventType::MessageArrive: {
        const int dst_node = graph.task(event.task).node;
        const double done =
            std::max(now, comm_free_at[static_cast<std::size_t>(dst_node)]) +
            machine.comm_overhead_s +
            event.bytes * machine.msg_copy_s_per_byte;
        comm_free_at[static_cast<std::size_t>(dst_node)] = done;
        events.push({done, EventType::DependencySatisfied, event.task, seq++});
        break;
      }
      case EventType::DependencySatisfied: {
        if (--remaining[event.task] == 0) mark_ready(event.task, now);
        break;
      }
    }
  }

  if (finished != n) {
    throw std::runtime_error("simulate: graph did not complete (cycle?)");
  }
  result.makespan_s = now;
  result.tasks_executed = finished;
  return result;
}

}  // namespace repro::sim
