#include "sim/models.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/persistent_channel.hpp"
#include "obs/telemetry.hpp"
#include "spec/stages.hpp"
#include "stencil/halo.hpp"
#include "stencil/tile_map.hpp"

namespace repro::sim {

namespace {

using stencil::Side;
using stencil::Corner;
using stencil::kAllSides;
using stencil::kAllCorners;
using stencil::d_ti;
using stencil::d_tj;

double smoothstep01(double x) {
  x = std::clamp(x, 0.0, 1.0);
  return x * x * (3.0 - 2.0 * x);
}

/// Cache-spill slowdown factor for a task touching `working_set` bytes on a
/// machine whose per-worker cache share is `share`.
double spill_factor(const Machine& m, double working_set) {
  const double share = m.llc_bytes / m.compute_workers();
  const double t = smoothstep01((working_set / share - 1.0) / 3.0);
  return 1.0 + m.cache_spill_penalty * t;
}

}  // namespace

StencilSimOutput simulate_stencil(const StencilSimParams& p, bool trace) {
  const stencil::TileMap map(p.N, p.N, p.tile, p.tile, p.node_rows,
                             p.node_cols);
  // Compile the spec exactly like the real driver: the run advances in STAGE
  // UNITS (steps_eff = steps * nstages), remote payloads carry the nfield
  // field planes, and diagonal-tap programs exchange corners every superstep.
  const spec::CompiledProgram program = spec::compile_spec(p.stencil, p.nz);
  const int nstages = program.nstages;
  const int steps_eff = p.steps * nstages;
  const int nfield = program.nfield;
  const bool diag_taps = program.diagonal_taps;
  const double flops_pp = program.flops_per_point();
  // Task costs are calibrated in 9-FLOP 5-point units; other programs scale
  // by their per-stage tap work (approximate — the real kernel's cache
  // behavior differs — but message counts and bytes below are exact).
  const double flops_scale = flops_pp / 9.0;
  // Fused wavefronts: the window W replaces steps_eff everywhere the ghost
  // depth or exchange cadence matters (W is what radius * steps becomes in
  // the real fuse-ready builder).
  const int W = steps_eff * p.fuse;
  if (p.steps < 1 || p.fuse < 1 || W > map.min_tile_extent()) {
    throw std::invalid_argument("simulate_stencil: bad step size");
  }
  const bool fused = p.fuse > 1;
  const double worker_rate = p.machine.worker_point_rate();
  const double working_set =
      3.0 * static_cast<double>(p.tile) * p.tile * sizeof(double);
  const double point_time =
      spill_factor(p.machine, working_set) / worker_rate;

  SimGraph graph;
  const int tr = map.tiles_r();
  const int tc = map.tiles_c();
  // Task id layout: id(k, ti, tj) = k*tr*tc + ti*tc + tj, k in 0..iterations
  // (k = 0 is INIT).
  auto id = [&](int k, int ti, int tj) {
    return static_cast<std::uint32_t>(
        (static_cast<std::size_t>(k) * tr + ti) * tc + tj);
  };

  double redundant_points = 0.0;

  // Fused runs unfold one task per tile per W-stage window (the shape
  // rt::fuse_supersteps leaves behind); classic runs unfold one task per
  // tile per iteration. Window 0 / iteration 0 is INIT either way.
  const int stage_iters = p.iterations * nstages;
  const int nwindows = (stage_iters + W - 1) / W;
  const int nblocks = fused ? nwindows : p.iterations;

  // First pass: tasks.
  for (int k = 0; k <= nblocks; ++k) {
    for (int ti = 0; ti < tr; ++ti) {
      for (int tj = 0; tj < tc; ++tj) {
        const int h = map.tile_h(ti);
        const int w = map.tile_w(tj);
        bool remote[4];
        bool deep[4];
        bool boundary = false;
        for (Side s : kAllSides) {
          const auto i = static_cast<int>(s);
          remote[i] = map.neighbor_remote(ti, tj, d_ti(s), d_tj(s));
          // Fused windows carry deep bands on every neighbor side (local
          // neighbors too), so every existing side shrinks; classic CA only
          // shrinks the remote sides.
          deep[i] = fused ? map.valid(ti + d_ti(s), tj + d_tj(s)) : remote[i];
          boundary |= remote[i];
        }

        SimTaskSpec task;
        task.node = map.rank_of(ti, tj);
        task.priority = (boundary && p.boundary_priority) ? 1 : 0;
        if (k == 0) {
          task.klass = kKlassInit;
          task.cost_s = p.machine.task_overhead_s +
                        static_cast<double>(h) * w / worker_rate;
        } else {
          task.klass = boundary ? kKlassBoundary : kKlassInterior;
          // One task models either the iteration's nstages atomic stages
          // (classic: each a real runtime task, so overhead per stage) or a
          // whole fused window (one runtime task, overhead paid ONCE — the
          // modeled upside of the rewrite). Each stage's shrink region
          // loses one layer per STAGE unit, exactly as the real driver's
          // stage tasks do.
          const int members =
              fused ? std::min(W, stage_iters - (k - 1) * W) : nstages;
          double points = 0.0;
          const double core = std::max(1.0, std::round(h * p.ratio)) *
                              std::max(1.0, std::round(w * p.ratio));
          for (int t = 0; t < members; ++t) {
            const int jj = fused ? t : ((k - 1) * nstages + t) % W;
            const int extra = W - (jj + 1);
            double rows = h + (deep[0] ? extra : 0) + (deep[1] ? extra : 0);
            double cols = w + (deep[2] ? extra : 0) + (deep[3] ? extra : 0);
            rows = std::max(1.0, std::round(rows * p.ratio));
            cols = std::max(1.0, std::round(cols * p.ratio));
            points += rows * cols;
            redundant_points += rows * cols - core;
          }
          task.cost_s =
              p.machine.task_overhead_s * (fused ? 1 : nstages) +
              points * flops_scale * point_time;
        }
        graph.add_task(task);
      }
    }
  }

  // Second pass: edges (mirrors the real graph builder's input flows).
  const double header_bytes = 5.0 * sizeof(std::uint64_t);
  // Persistent-channel framing, matching net::PersistentChannel and the
  // runtime wire format exactly: a FRAG message carries the 5 frag framing
  // words, the embedded 6-word runtime header, and the 8-byte tag on top of
  // its payload slice.
  const double frag_frame_bytes =
      (net::PersistentChannel::kFragHeaderWords + 6 + 1) *
      static_cast<double>(sizeof(std::uint64_t));
  // Ordered (src_rank, dst_rank) -> negotiated routes, for the handshake.
  std::map<std::pair<int, int>, std::uint64_t> route_pairs;
  // One remote halo flow: the default path sends one deep-copied message;
  // the persistent path sends the route's nfield registered fragments. Every
  // superstep-start flow recurs with the same route id, so routes are
  // counted once, at the first superstep (k == 1).
  const auto add_remote_edge = [&](std::uint32_t src_id, std::uint32_t dst_id,
                                   int src_rank, int dst_rank,
                                   std::size_t payload_doubles, int k) {
    if (!p.persistent) {
      graph.add_edge(src_id, dst_id,
                     header_bytes + static_cast<double>(payload_doubles) *
                                        sizeof(double));
      return;
    }
    if (k == 1) ++route_pairs[{src_rank, dst_rank}];
    for (std::uint32_t f = 0; f < static_cast<std::uint32_t>(nfield); ++f) {
      const auto [begin, len] = net::PersistentChannel::fragment_slice(
          payload_doubles, static_cast<std::uint32_t>(nfield), f);
      static_cast<void>(begin);
      graph.add_edge(src_id, dst_id,
                     frag_frame_bytes +
                         static_cast<double>(len) * sizeof(double));
    }
  };
  for (int k = 1; k <= nblocks; ++k) {
    // Fused windows exchange at EVERY window boundary; classic CA at
    // superstep starts only.
    const bool superstep_start = fused || (k - 1) % p.steps == 0;
    for (int ti = 0; ti < tr; ++ti) {
      for (int tj = 0; tj < tc; ++tj) {
        const std::uint32_t me = id(k, ti, tj);
        graph.add_edge(id(k - 1, ti, tj), me);
        for (Side s : kAllSides) {
          const int ni = ti + d_ti(s);
          const int nj = tj + d_tj(s);
          if (!map.valid(ni, nj)) continue;
          const bool is_remote = map.rank_of(ni, nj) != map.rank_of(ti, tj);
          if (!is_remote) {
            // Classic: per-step local line copy. Fused: the neighbor's
            // packed window-boundary band, still a local (zero-byte) edge.
            graph.add_edge(id(k - 1, ni, nj), me);
          } else if (superstep_start) {
            const int lateral = (s == Side::North || s == Side::South)
                                    ? map.tile_w(tj)
                                    : map.tile_h(ti);
            add_remote_edge(id(k - 1, ni, nj), me, map.rank_of(ni, nj),
                            map.rank_of(ti, tj),
                            static_cast<std::size_t>(W) * lateral * nfield,
                            k);
          }
        }
        if (superstep_start && (diag_taps || W > 1)) {
          for (Corner c : kAllCorners) {
            const int ni = ti + d_ti(c);
            const int nj = tj + d_tj(c);
            if (!map.valid(ni, nj)) continue;
            const bool diag_remote =
                map.rank_of(ni, nj) != map.rank_of(ti, tj);
            if (fused) {
              // Mirrors the fuse-ready TileInfo::corner_in: every existing
              // diagonal supplies its corner block (deep bands on every
              // side need their corners), remote ones as messages.
              if (diag_remote) {
                add_remote_edge(id(k - 1, ni, nj), me, map.rank_of(ni, nj),
                                map.rank_of(ti, tj),
                                static_cast<std::size_t>(W) * W * nfield, k);
              } else {
                graph.add_edge(id(k - 1, ni, nj), me);
              }
              continue;
            }
            if (!diag_remote) continue;
            const Side row_side = d_ti(c) < 0 ? Side::North : Side::South;
            const Side col_side = d_tj(c) < 0 ? Side::West : Side::East;
            const bool adjacent_remote =
                map.neighbor_remote(ti, tj, d_ti(row_side), d_tj(row_side)) ||
                map.neighbor_remote(ti, tj, d_ti(col_side), d_tj(col_side));
            // Mirrors TileInfo::corner_in: diagonal-tap programs read their
            // corners every superstep; cross programs only while redundantly
            // recomputing next to a remote side.
            if (!(diag_taps || (W > 1 && adjacent_remote))) continue;
            add_remote_edge(id(k - 1, ni, nj), me, map.rank_of(ni, nj),
                            map.rank_of(ti, tj),
                            static_cast<std::size_t>(W) * W * nfield, k);
          }
        }
      }
    }
  }

  SimMachineConfig config;
  config.nodes = map.nodes();
  config.workers_per_node = p.machine.compute_workers();
  config.link = p.machine.link;
  config.comm_overhead_s = p.machine.comm_overhead_s;
  config.aggregate_per_destination = p.aggregate_messages;
  config.message_cost_multiplier = p.loss.expected_attempts();
  config.extra_latency_s = p.loss.expected_extra_latency_s();
  // Default path: both comm threads copy every payload byte (sender deep
  // copy into the message, receiver materialization into the consumer's
  // buffer) at the single-core streaming rate. Persistent channels send
  // registered buffers and deliver zero-copy, removing that cost.
  config.msg_copy_s_per_byte =
      (!p.persistent && p.machine.core_stream_bw_Bps > 0.0)
          ? 1.0 / p.machine.core_stream_bw_Bps
          : 0.0;

  StencilSimOutput out;
  out.sim = simulate(graph, config, trace);
  if (p.persistent) {
    // One-time negotiation per ordered rank pair: an OPEN listing the pair's
    // n routes ({magic, kind, n} + n x {id, doubles, fragments} + tag) and a
    // fixed-size ACK. Setup traffic, outside the DES critical path.
    for (const auto& [pair, nroutes] : route_pairs) {
      static_cast<void>(pair);
      out.handshake_messages += 2;
      out.handshake_bytes +=
          (4.0 + 3.0 * static_cast<double>(nroutes) + 4.0) *
          sizeof(std::uint64_t);
    }
    out.sim.messages += out.handshake_messages;
    out.sim.message_bytes += out.handshake_bytes;
  }
  if (p.telemetry) {
    // Telemetry rides the same wire as halos: at every superstep boundary
    // (INIT's k = 0 included) each rank > 0 posts one fixed-size snapshot to
    // rank 0. Fixed cost per message keeps the model byte-exact vs the real
    // kWireTelemetry framing.
    const std::uint64_t boundaries =
        1 + static_cast<std::uint64_t>(p.iterations / p.steps);
    out.telemetry_messages =
        static_cast<std::uint64_t>(map.nodes() - 1) * boundaries;
    out.telemetry_bytes = static_cast<double>(out.telemetry_messages) *
                          static_cast<double>(obs::kTelemetryWireBytes);
    out.sim.messages += out.telemetry_messages;
    out.sim.message_bytes += out.telemetry_bytes;
  }
  out.time_s = out.sim.makespan_s;
  // Nominal work on the same stage-update basis the real driver accounts:
  // flops_per_point is per stage cell, nominal stage updates are
  // N^2 * iterations * nstages (star5: exactly the classic 9 * N^2 * iters).
  const double nominal = flops_pp * static_cast<double>(p.N) * p.N *
                         p.iterations * nstages * p.ratio * p.ratio;
  out.gflops = nominal / out.time_s / 1e9;
  out.redundant_fraction =
      redundant_points * flops_pp / std::max(nominal, 1.0);

  if (p.metrics) {
    // Modeled counters under the real stack's family names: a registry diff
    // against a real run IS the model-vs-real cross-validation.
    auto& registry = *p.metrics;
    const obs::Labels sim_labels{{"source", "sim"}};
    const auto publish = [&](const char* name, std::uint64_t value,
                             const char* help) {
      auto counter = std::make_shared<obs::Counter>();
      counter->add(value);
      registry.attach(name, sim_labels, std::move(counter), help);
    };
    publish("net_messages_total", out.sim.messages,
            "Modeled remote messages");
    publish("net_bytes_total",
            static_cast<std::uint64_t>(std::llround(out.sim.message_bytes)),
            "Modeled wire bytes (5-word headers)");
    publish("rt_tasks_executed_total", out.sim.tasks_executed,
            "Modeled tasks executed");
    registry.gauge("sim_makespan_seconds", sim_labels, "Modeled makespan")
        ->set(out.sim.makespan_s);
    registry
        .gauge("sim_network_busy_seconds", sim_labels,
               "Modeled network busy time")
        ->set(out.sim.network_busy_s);
    if (p.telemetry) {
      // Synthetic collector: ingest the snapshot schedule the model predicts
      // (every rank reaches every boundary, no straggler), so the
      // obs_telemetry_* families appear under source="sim" with the same
      // stream shape a healthy real run produces.
      obs::TelemetryCollector collector(map.nodes(), obs::DetectorConfig{},
                                        p.metrics, "sim");
      const int boundaries = 1 + p.iterations / p.steps;
      for (int b = 0; b < boundaries; ++b) {
        for (int rank = 0; rank < map.nodes(); ++rank) {
          obs::TelemetrySnapshot snap;
          snap.rank = rank;
          snap.superstep = static_cast<std::uint64_t>(b);
          collector.ingest(snap);
        }
      }
    }
  }
  return out;
}

double single_node_gflops_model(const Machine& m, int N, int tile) {
  if (tile < 1 || N < tile) {
    throw std::invalid_argument("single_node_gflops_model: bad tile");
  }
  const int tiles = (N + tile - 1) / tile;
  const double tasks = static_cast<double>(tiles) * tiles;
  const double points = static_cast<double>(tile) * tile;
  const double working_set = 3.0 * points * sizeof(double);

  const double task_time =
      m.task_overhead_s +
      points * spill_factor(m, working_set) / m.worker_point_rate();

  // Load imbalance: the last wave of tasks may not fill every worker.
  const int workers = m.compute_workers();
  const double waves = std::ceil(tasks / workers);
  const double iter_time = waves * task_time;
  const double flops = 9.0 * static_cast<double>(N) * N;
  return flops / iter_time / 1e9;
}

PetscSimOutput simulate_petsc(const PetscSimParams& p) {
  const Machine& m = p.machine;
  const double points = static_cast<double>(p.N) * p.N;
  // Compute: 1D-row-partitioned CSR SpMV at petsc_traffic_factor x the tile
  // stencil's effective traffic, node-bandwidth bound (one rank per core
  // saturates the memory interface).
  const double bytes_per_point =
      m.effective_bytes_per_point() * m.petsc_traffic_factor;
  const double compute =
      points / p.nodes * bytes_per_point / m.node_stream_bw_Bps;

  // Communication: with a 1D partition each node block exchanges one grid
  // row (8N bytes) up and down across node boundaries. On-node rank
  // exchanges ride shared memory. PETSc overlaps the scatter with the
  // interior product, so the iteration takes max(compute, wire) plus one
  // latency that cannot be hidden.
  const double wire =
      (p.nodes > 1)
          ? 2.0 * m.link.transfer_time(static_cast<std::size_t>(8 * p.N))
          : 0.0;
  const double iter = std::max(compute, wire) +
                      (p.nodes > 1 ? m.link.latency_s : 0.0);

  PetscSimOutput out;
  out.time_s = iter * p.iterations;
  out.gflops = 9.0 * points * p.iterations / out.time_s / 1e9;
  return out;
}

}  // namespace repro::sim
