// Machine presets for the two evaluation systems (paper section VI).
//
// All model constants trace back to numbers the paper reports:
//   NaCL:      2x Xeon X5660 (Westmere), 12 cores, 23 GB RAM, IB QDR 32 Gb/s.
//              STREAM COPY: 9.8 GB/s (1 core) / 40.1 GB/s (node); measured
//              base-PaRSEC plateau ~11 GFLOP/s at tile 200-300 (Fig. 6).
//   Stampede2: 2x Xeon Platinum 8160 (Skylake), 48 cores, 192 GB, OPA
//              100 Gb/s. STREAM COPY 176.7 GB/s; plateau ~43.5 GFLOP/s at
//              tile 400-2000 (Fig. 6).
// PaRSEC runs use one process per node with one communication thread and the
// remaining cores as compute workers (11 / 47).
#pragma once

#include <string>

#include "net/link_model.hpp"
#include "stencil/kernel.hpp"

namespace repro::sim {

struct Machine {
  std::string name;
  int cores_per_node = 1;
  double node_stream_bw_Bps = 0.0;   ///< STREAM COPY, full node
  double core_stream_bw_Bps = 0.0;   ///< STREAM COPY, single core
  double node_stencil_gflops = 0.0;  ///< measured base-PaRSEC plateau (Fig 6)
  double llc_bytes = 0.0;            ///< last-level cache per node
  double task_overhead_s = 0.0;      ///< runtime per-task scheduling overhead
  double comm_overhead_s = 0.0;      ///< comm-thread cost per message handled
  /// Fractional slowdown of the stencil kernel once a task's working set
  /// spills the per-worker cache share (Fig. 6's large-tile falloff):
  /// 0.45 on NaCL (11 -> ~7.5 GFLOP/s), small on Stampede2 whose
  /// prefetcher-friendly DDR4 keeps streaming rates flat.
  double cache_spill_penalty = 0.0;
  /// Memory-traffic multiplier of the CSR SpMV formulation vs the tile
  /// stencil ("at the very least doubles the number of memory loads").
  double petsc_traffic_factor = 2.0;
  net::LinkModel link;

  /// Compute workers per node (one core reserved for communication).
  int compute_workers() const { return cores_per_node - 1; }

  /// Stencil points/second for the whole node at the measured plateau.
  double node_point_rate() const {
    return node_stencil_gflops * 1e9 / stencil::kFlopsPerPoint;
  }
  /// Points/second of one compute worker at the plateau.
  double worker_point_rate() const {
    return node_point_rate() / compute_workers();
  }
  /// Effective bytes moved per stencil point implied by the measured plateau
  /// (node_bw / point_rate); lands in the paper's 16-24+ B range.
  double effective_bytes_per_point() const {
    return node_stream_bw_Bps / node_point_rate();
  }
};

Machine nacl();
Machine stampede2();

/// Roofline bounds (paper section VI-A): effective peak GFLOP/s for the
/// stencil's arithmetic-intensity window [9/24, 9/16] FLOP/byte.
struct Roofline {
  double ai_low = 0.0;     ///< 0.375 FLOP/B
  double ai_high = 0.0;    ///< 0.5625 FLOP/B
  double gflops_low = 0.0;
  double gflops_high = 0.0;
};

Roofline stencil_roofline(const Machine& machine);

}  // namespace repro::sim
