#include "sim/machine.hpp"

#include "support/units.hpp"

namespace repro::sim {

Machine nacl() {
  Machine m;
  m.name = "NaCL";
  m.cores_per_node = 12;
  m.node_stream_bw_Bps = 39.1e9;  // paper text, section VI-A (COPY-derived)
  m.core_stream_bw_Bps = 9.8e9;   // Table I COPY, 1-core
  m.node_stencil_gflops = 11.0;   // Fig. 6 plateau, tiles 200-300
  m.llc_bytes = 2 * 12e6;         // 2 sockets x 12 MB L3 (Westmere-EP)
  m.task_overhead_s = usec(25.0);
  m.comm_overhead_s = usec(24.0);
  m.cache_spill_penalty = 0.45;
  m.link = net::nacl_link();
  return m;
}

Machine stampede2() {
  Machine m;
  m.name = "Stampede2";
  m.cores_per_node = 48;
  m.node_stream_bw_Bps = 172.5e9;  // paper text, section VI-A (COPY-derived)
  m.core_stream_bw_Bps = 10.6e9;   // Table I COPY, 1-core
  m.node_stencil_gflops = 43.5;    // Fig. 6 plateau, tiles 400-2000
  m.llc_bytes = 2 * 33e6;          // 2 sockets x 33 MB L2+L3 (SKX 8160)
  m.task_overhead_s = usec(15.0);
  m.comm_overhead_s = usec(20.0);
  m.cache_spill_penalty = 0.08;
  m.link = net::stampede2_link();
  return m;
}

Roofline stencil_roofline(const Machine& machine) {
  Roofline r;
  r.ai_low = stencil::kFlopsPerPoint / 24.0;
  r.ai_high = stencil::kFlopsPerPoint / 16.0;
  r.gflops_low = r.ai_low * machine.node_stream_bw_Bps / 1e9;
  r.gflops_high = r.ai_high * machine.node_stream_bw_Bps / 1e9;
  return r;
}

}  // namespace repro::sim
