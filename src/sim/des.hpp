// Deterministic discrete-event simulator for distributed task graphs.
//
// This is what lets a single-core machine reproduce the paper's 4-64 node
// strong-scaling experiments: the same task graphs the runtime executes for
// real at small scale are replayed here against a timing model —
//   * each node owns `workers` compute workers; a ready task starts as soon
//     as a worker is free (priority, then FIFO by ready time);
//   * a cross-node dependency becomes a message: the producer's node NIC
//     serializes outgoing sends (per-message overhead + bytes/bandwidth) and
//     the consumer's dependency is satisfied one latency later — the
//     communication thread itself is modeled as free, matching the paper's
//     dedicated-comm-thread configuration;
//   * intra-node dependencies are satisfied instantly at producer finish.
//
// The simulation is event-driven and exact for this model: no time stepping,
// no randomness.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link_model.hpp"

namespace repro::sim {

struct SimTaskSpec {
  int node = 0;
  double cost_s = 0.0;
  int priority = 0;      ///< higher runs earlier among ready tasks
  std::uint16_t klass = 0;  ///< caller-defined label (trace aggregation)
};

class SimGraph {
 public:
  /// Returns the new task's id (dense, starting at 0).
  std::uint32_t add_task(const SimTaskSpec& spec);

  /// Dependency dst <- src. If the two tasks live on different nodes the
  /// edge carries `bytes` over the network; `bytes` is ignored for local
  /// edges. Both ids must already exist.
  void add_edge(std::uint32_t src, std::uint32_t dst, double bytes = 0.0);

  std::size_t num_tasks() const { return tasks_.size(); }
  const SimTaskSpec& task(std::uint32_t id) const { return tasks_[id]; }

  struct Edge {
    std::uint32_t dst;
    double bytes;
  };
  const std::vector<Edge>& out_edges(std::uint32_t id) const {
    return out_[id];
  }
  std::uint32_t indegree(std::uint32_t id) const { return indegree_[id]; }

 private:
  std::vector<SimTaskSpec> tasks_;
  std::vector<std::vector<Edge>> out_;  ///< per task: consumers
  std::vector<std::uint32_t> indegree_;
};

struct SimInterval {
  std::uint32_t task = 0;
  int node = 0;
  int worker = 0;
  std::uint16_t klass = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
};

struct SimResult {
  double makespan_s = 0.0;
  std::vector<double> node_busy_s;  ///< total worker-seconds per node
  std::uint64_t messages = 0;
  double message_bytes = 0.0;
  double network_busy_s = 0.0;      ///< sum of NIC send durations
  std::size_t tasks_executed = 0;
  std::vector<SimInterval> trace;   ///< filled only when trace=true

  /// Worker occupancy of one node: busy / (makespan * workers).
  double occupancy(int node, int workers) const {
    return makespan_s > 0.0
               ? node_busy_s[static_cast<std::size_t>(node)] /
                     (makespan_s * workers)
               : 0.0;
  }
};

struct SimMachineConfig {
  int nodes = 1;
  int workers_per_node = 1;
  net::LinkModel link;
  /// Software cost the node's single communication thread pays to handle one
  /// message (activation-message dispatch, dependency bookkeeping). Charged
  /// serially per node on both the sending and the receiving side — this is
  /// the resource the CA scheme relieves: base-PaRSEC saturates the comm
  /// thread with s times more messages.
  double comm_overhead_s = 0.0;
  /// Merge all cross-node edges a finishing task sends to the same
  /// destination into one message (payloads summed, one overhead each way) —
  /// the model counterpart of rt::Config::aggregate_messages.
  bool aggregate_per_destination = false;
  /// Retry-cost model hooks (see sim::LossModel): every send's wire cost is
  /// scaled by the expected transmission count, and every delivery pays the
  /// expected retransmit-timeout wait on top of the link latency. 1.0 / 0.0
  /// reproduce the lossless model exactly.
  double message_cost_multiplier = 1.0;
  double extra_latency_s = 0.0;
  /// Per-payload-byte cost of materializing a message: the default runtime
  /// path deep-copies the payload into the message at the sender and copies
  /// it again into the consumer's buffer at the receiver, so both comm
  /// threads pay bytes * this on top of comm_overhead_s. Persistent-channel
  /// runs send registered buffers and deliver them zero-copy: they model
  /// with 0 (the default, which also preserves the historical exact-timing
  /// expectations).
  double msg_copy_s_per_byte = 0.0;
};

/// Run the graph to completion. Throws on cycles (tasks that never become
/// ready) or out-of-range node ids.
SimResult simulate(const SimGraph& graph, const SimMachineConfig& machine,
                   bool trace = false);

}  // namespace repro::sim
