// Paper-scale performance models built on the DES and machine presets.
//
// Three models cover the evaluation section:
//   * simulate_stencil(): unfolds the SAME tile task graph the real runtime
//     executes (base or CA, any step size/ratio) into a SimGraph with
//     calibrated task costs and message sizes, and replays it through the
//     DES. Drives Figs. 7, 8, 9 and the simulated half of Fig. 10.
//   * single_node_gflops_model(): closed-form shared-memory model of
//     GFLOP/s vs tile size (task overhead at small tiles, cache spill /
//     load imbalance at large tiles). Drives the preset curves of Fig. 6.
//   * simulate_petsc(): closed-form model of the PETSc baseline (1 MPI rank
//     per core, 1D row partition, 2x memory traffic from CSR indices).
//     Drives the PETSc series of Fig. 7.
#pragma once

#include "sim/des.hpp"
#include "sim/machine.hpp"

namespace repro::sim {

/// Task classes recorded in the DES trace.
inline constexpr std::uint16_t kKlassInit = 0;
inline constexpr std::uint16_t kKlassInterior = 1;
inline constexpr std::uint16_t kKlassBoundary = 2;

struct StencilSimParams {
  Machine machine;
  int N = 0;            ///< square problem size
  int tile = 0;         ///< square tile size (paper's mb = nb)
  int node_rows = 1;
  int node_cols = 1;
  int iterations = 100;
  int steps = 1;        ///< 1 = base-PaRSEC, >1 = CA-PaRSEC
  double ratio = 1.0;   ///< kernel-adjustment ratio (Figs. 8/9)
  /// Schedule node-boundary tiles ahead of interior tiles (the runtime's
  /// default). Ablation knob.
  bool boundary_priority = true;
  /// Merge per-destination messages (rt::Config::aggregate_messages analog).
  bool aggregate_messages = false;
};

struct StencilSimOutput {
  SimResult sim;
  double time_s = 0.0;
  double gflops = 0.0;         ///< nominal 9*N^2*ratio^2*iters / time
  double redundant_fraction = 0.0;  ///< extra CA compute vs nominal
};

StencilSimOutput simulate_stencil(const StencilSimParams& params,
                                  bool trace = false);

/// Shared-memory single-node GFLOP/s for a given tile size (Fig. 6 model).
double single_node_gflops_model(const Machine& machine, int N, int tile);

struct PetscSimParams {
  Machine machine;
  int N = 0;
  int nodes = 1;
  int iterations = 100;
};

struct PetscSimOutput {
  double time_s = 0.0;
  double gflops = 0.0;
};

PetscSimOutput simulate_petsc(const PetscSimParams& params);

}  // namespace repro::sim
