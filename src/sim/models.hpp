// Paper-scale performance models built on the DES and machine presets.
//
// Three models cover the evaluation section:
//   * simulate_stencil(): unfolds the SAME tile task graph the real runtime
//     executes (base or CA, any step size/ratio) into a SimGraph with
//     calibrated task costs and message sizes, and replays it through the
//     DES. Drives Figs. 7, 8, 9 and the simulated half of Fig. 10.
//   * single_node_gflops_model(): closed-form shared-memory model of
//     GFLOP/s vs tile size (task overhead at small tiles, cache spill /
//     load imbalance at large tiles). Drives the preset curves of Fig. 6.
//   * simulate_petsc(): closed-form model of the PETSc baseline (1 MPI rank
//     per core, 1D row partition, 2x memory traffic from CSR indices).
//     Drives the PETSc series of Fig. 7.
#pragma once

#include <memory>

#include "obs/metrics.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "spec/stencil_spec.hpp"

namespace repro::sim {

/// Task classes recorded in the DES trace.
inline constexpr std::uint16_t kKlassInit = 0;
inline constexpr std::uint16_t kKlassInterior = 1;
inline constexpr std::uint16_t kKlassBoundary = 2;

/// Expected retransmission cost of a lossy link under the capped-retry
/// policy of fault::ReliableChannel: messages are dropped i.i.d. with
/// probability `loss_rate`, retransmitted after an exponentially backed-off
/// timeout, and given up after `max_retries` resends. The model feeds the
/// DES two aggregates:
///   * expected_attempts() scales every send's wire cost (the NIC/comm
///     thread pays for each transmission, including the doomed ones);
///   * expected_extra_latency_s() adds the mean timeout wait a delivered
///     message accumulated before its successful transmission.
struct LossModel {
  double loss_rate = 0.0;  ///< per-transmission drop probability in [0, 1)
  double retransmit_timeout_s = 5e-3;
  double backoff = 2.0;
  int max_retries = 12;

  /// Mean transmissions per message: (1 - p^{R+1}) / (1 - p), capped at R+1.
  double expected_attempts() const {
    const double p = loss_rate;
    if (p <= 0.0) return 1.0;
    double attempts = 0.0, prob = 1.0;
    for (int k = 0; k <= max_retries; ++k, prob *= p) attempts += prob;
    return attempts;
  }

  /// Mean timeout wait before the transmission that succeeds, conditioned on
  /// delivery within the retry budget.
  double expected_extra_latency_s() const {
    const double p = loss_rate;
    if (p <= 0.0) return 0.0;
    double wait = 0.0, norm = 0.0, prob = 1.0;  // prob = p^k
    for (int k = 0; k <= max_retries; ++k, prob *= p) {
      // k failed transmissions first: wait the first k backoff intervals.
      double intervals = 0.0, t = retransmit_timeout_s;
      for (int j = 0; j < k; ++j, t *= backoff) intervals += t;
      wait += prob * (1.0 - p) * intervals;
      norm += prob * (1.0 - p);
    }
    return norm > 0.0 ? wait / norm : 0.0;
  }
};

struct StencilSimParams {
  Machine machine;
  int N = 0;            ///< square problem size
  int tile = 0;         ///< square tile size (paper's mb = nb)
  int node_rows = 1;
  int node_cols = 1;
  int iterations = 100;
  int steps = 1;        ///< 1 = base-PaRSEC, >1 = CA-PaRSEC
  double ratio = 1.0;   ///< kernel-adjustment ratio (Figs. 8/9)
  /// Fused-wavefront depth (DistConfig::fuse_depth analog). With fuse = f >
  /// 1 the model unfolds the REWRITTEN graph rt::fuse_supersteps produces:
  /// one task per tile per window of steps * stage_count * f atomic stages
  /// (task overhead paid once per window), deep ghost bands on EVERY
  /// neighbor side (local neighbors included — their per-step edges become
  /// in-task staging), and one remote exchange per window whose band and
  /// corner payloads match the real driver's byte for byte.
  int fuse = 1;
  /// Stencil spec the run models. The default star5 reproduces the classic
  /// model exactly; other specs change the message schedule the way the real
  /// driver does — supersteps span steps * stage_count atomic stages, bands
  /// and corner blocks carry the program's nfield field planes, and
  /// diagonal-tap specs (box9, ...) add corner exchanges at every superstep.
  spec::StencilSpec stencil = spec::StencilSpec::star5();
  int nz = 1;           ///< interior z planes (rank-3 specs)
  /// Schedule node-boundary tiles ahead of interior tiles (the runtime's
  /// default). Ablation knob.
  bool boundary_priority = true;
  /// Merge per-destination messages (rt::Config::aggregate_messages analog).
  bool aggregate_messages = false;
  /// Model the persistent-channel wire schedule (DistConfig::persistent
  /// analog): every remote halo edge is carried as the route's nfield FRAG
  /// messages with the exact net::PersistentChannel framing, the one-time
  /// OPEN/ACK handshake is added to the traffic totals, and the per-byte
  /// payload alloc+copy cost the default path pays at both comm threads is
  /// removed (registered buffers, zero-copy delivery).
  bool persistent = false;
  /// Model live cross-rank telemetry (DistConfig::telemetry analog): at
  /// every superstep boundary — 1 + iterations/steps per run, INIT's k = 0
  /// included — each rank > 0 ships one fixed-size snapshot message to rank
  /// 0 (obs::kTelemetryWireBytes, byte-exact vs the real wire format), added
  /// to the traffic totals. With `metrics` set, the obs_telemetry_* families
  /// are also published under source="sim" via a synthetic collector.
  bool telemetry = false;
  /// Lossy-link retry cost (loss_rate 0 = exact lossless model).
  LossModel loss{};
  /// When set, the model publishes its counters into this registry under the
  /// SAME family names the real stack uses (net_messages_total,
  /// net_bytes_total, rt_tasks_executed_total; label source="sim"), so
  /// model-vs-real cross-validation is a metrics diff.
  std::shared_ptr<obs::MetricsRegistry> metrics{};
};

struct StencilSimOutput {
  SimResult sim;
  double time_s = 0.0;
  double gflops = 0.0;         ///< nominal 9*N^2*ratio^2*iters / time
  double redundant_fraction = 0.0;  ///< extra CA compute vs nominal
  /// Persistent mode only: one-time OPEN/ACK route negotiation traffic,
  /// already included in sim.messages / sim.message_bytes.
  std::uint64_t handshake_messages = 0;
  double handshake_bytes = 0.0;
  /// Telemetry mode only: modeled snapshot traffic ((nodes - 1) x superstep
  /// boundaries), already included in sim.messages / sim.message_bytes.
  std::uint64_t telemetry_messages = 0;
  double telemetry_bytes = 0.0;
};

StencilSimOutput simulate_stencil(const StencilSimParams& params,
                                  bool trace = false);

/// Shared-memory single-node GFLOP/s for a given tile size (Fig. 6 model).
double single_node_gflops_model(const Machine& machine, int N, int tile);

struct PetscSimParams {
  Machine machine;
  int N = 0;
  int nodes = 1;
  int iterations = 100;
};

struct PetscSimOutput {
  double time_s = 0.0;
  double gflops = 0.0;
};

PetscSimOutput simulate_petsc(const PetscSimParams& params);

}  // namespace repro::sim
