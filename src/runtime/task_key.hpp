// Task identity: a task class plus up to three integer parameters.
//
// This mirrors PaRSEC's Parameterized Task Graph addressing, where a task is
// named by its task class and parameter tuple, e.g. jacobi(iter, ti, tj).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace repro::rt {

struct TaskKey {
  std::uint32_t type = 0;  ///< task class id, application-defined
  std::int32_t a = 0;      ///< first parameter (e.g. iteration)
  std::int32_t b = 0;      ///< second parameter (e.g. tile row)
  std::int32_t c = 0;      ///< third parameter (e.g. tile column)

  friend bool operator==(const TaskKey&, const TaskKey&) = default;

  std::string to_string() const {
    return "t" + std::to_string(type) + "(" + std::to_string(a) + "," +
           std::to_string(b) + "," + std::to_string(c) + ")";
  }

  /// Pack into a single 64-bit word usable as a message tag. Parameters are
  /// truncated to the ranges used in practice (iteration < 2^24, tile
  /// coordinates < 2^16); pack() asserts nothing — equality must always be
  /// checked via the full key carried in the message header.
  std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(type) << 56) ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) ^
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(b)) << 16) ^
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(c));
  }
};

struct TaskKeyHash {
  std::size_t operator()(const TaskKey& k) const {
    // splitmix64-style finalizer over the packed words.
    std::uint64_t z = (static_cast<std::uint64_t>(k.type) << 32) ^
                      static_cast<std::uint32_t>(k.a);
    z ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.b)) << 32) ^
         static_cast<std::uint32_t>(k.c) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace repro::rt
