// Task graph specification: the application-facing half of the runtime.
//
// The application unfolds its algorithm into tasks before execution (the
// moral equivalent of PaRSEC's JDF unfolding): each task has a key, an owning
// rank (virtual process), a priority, a body, and a list of input flows. An
// input flow names the producing task and one of its output slots; the
// runtime derives every dependency and every communication from these flows,
// exactly as PaRSEC infers communication from task descriptions.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/buffer.hpp"
#include "runtime/task_key.hpp"

namespace repro::rt {

class TaskContext;

/// Reference to one output slot of a producing task.
///
/// A nonzero `route` marks the flow as a persistent halo route (see
/// net::PersistentChannel): the edge carries a fixed-size payload every
/// superstep, so the endpoints can pre-register buffers at run start. The
/// builder that unfolds the graph assigns route ids (unique per graph) and
/// the exact instance size; the runtime collects them into the negotiation
/// table. Routes are ignored — byte-identical default path — unless the
/// run's channel stack contains a PersistentChannel.
struct FlowRef {
  TaskKey producer;
  std::uint16_t slot = 0;
  std::uint64_t route = 0;          ///< nonzero: persistent route id
  std::uint32_t route_doubles = 0;  ///< payload doubles of one instance
  std::uint16_t route_fragments = 1;  ///< partitions per instance
};

using TaskBody = std::function<void(TaskContext&)>;

struct TaskSpec {
  TaskKey key;
  int rank = 0;      ///< owning virtual process; the body runs there
  int priority = 0;  ///< higher value runs earlier among ready tasks
  /// Accounting lane (serve: the tenant's lane id). Tasks with lane >= 0 are
  /// counted in rt_lane_tasks_executed_total{lane=...}; -1 = unlabeled.
  /// Purely observational — scheduling order comes from `priority` alone.
  int lane = -1;
  /// Dependence-cone metadata for graph transformations (see
  /// graph_transform.hpp). Tasks sharing a nonzero `chain` id assert that
  /// they form a totally ordered pipeline — each member depends (directly or
  /// transitively) only on members with smaller `chain_step` — so a rewrite
  /// pass may fuse consecutive members. 0 = not part of any chain; the
  /// builder that unfolds the graph owns the id space. Purely declarative:
  /// the runtime itself never reads these fields.
  std::uint64_t chain = 0;
  std::int32_t chain_step = 0;  ///< position along the chain (any stride)
  std::string klass; ///< trace label, e.g. "jacobi-boundary"
  std::vector<FlowRef> inputs;
  TaskBody body;
};

/// Immutable-after-seal collection of TaskSpecs plus derived consumer lists.
class TaskGraph {
 public:
  /// Add a task. Input flows may reference tasks added later; everything is
  /// resolved at seal(). Duplicate keys are rejected immediately.
  void add_task(TaskSpec spec);

  /// Resolve flows, compute consumer lists, and freeze the graph.
  /// Throws std::runtime_error on dangling flow references or rank < 0.
  void seal(int nranks);

  bool sealed() const { return sealed_; }
  std::size_t size() const { return specs_.size(); }

  const TaskSpec& spec(std::size_t index) const { return specs_[index]; }

  /// Index lookup by key; throws if absent.
  std::size_t index_of(const TaskKey& key) const;
  /// Whether a task with this key has been added.
  bool contains(const TaskKey& key) const;

  /// A consumer edge attached to a producer's output slot.
  struct ConsumerEdge {
    std::uint16_t slot = 0;        ///< producer output slot
    std::uint32_t consumer = 0;    ///< consumer task index
    std::uint16_t input_pos = 0;   ///< position in the consumer's inputs
    std::uint64_t route = 0;       ///< persistent route id (0 = none),
                                   ///< copied from the consumer's FlowRef
    std::uint32_t route_doubles = 0;    ///< instance size in doubles
    std::uint16_t route_fragments = 1;  ///< partitions per instance
  };

  /// Consumers of task `index`, grouped by nothing (iterate linearly).
  std::span<const ConsumerEdge> consumers(std::size_t index) const {
    return consumer_edges_[index];
  }

  /// Number of consumer edges attached to (task, slot).
  std::size_t slot_fanout(std::size_t index, std::uint16_t slot) const;

 private:
  std::vector<TaskSpec> specs_;
  std::unordered_map<TaskKey, std::size_t, TaskKeyHash> by_key_;
  std::vector<std::vector<ConsumerEdge>> consumer_edges_;
  bool sealed_ = false;
};

}  // namespace repro::rt
