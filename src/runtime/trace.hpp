// Task execution tracing, the substitute for PaRSEC's profiling system.
//
// Every executed task records (rank, worker, klass, begin, end). From the
// event stream we derive the paper's Fig. 10 artefacts: per-worker Gantt
// strips, per-rank CPU occupancy, and kernel-duration medians split by task
// class (boundary vs interior tiles).
#pragma once

#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "runtime/task_key.hpp"

namespace repro::rt {

/// What a trace event records: a task body execution, or a scheduler steal
/// (a worker taking a ready task from another worker's deque).
enum class TraceEventKind {
  Task,   ///< [begin_s, end_s] spent inside a task body
  Steal,  ///< instantaneous; `worker` is the thief, `steal_victim` the victim
};

struct TraceEvent {
  TaskKey key;
  std::string klass;
  int rank = 0;
  int worker = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  TraceEventKind kind = TraceEventKind::Task;
  int steal_victim = -1;  ///< robbed worker id for Steal events, else -1

  double duration() const { return end_s - begin_s; }
};

class Tracer {
 public:
  explicit Tracer(bool enabled = false) : enabled_(enabled) {}

  /// Whether record() stores events (fixed at construction; callers may skip
  /// building TraceEvents entirely when false).
  bool enabled() const { return enabled_; }

  /// Append one event. Thread-safe; a no-op when the tracer is disabled.
  void record(TraceEvent event);

  /// All events, unordered. Call only after the run has finished.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Discard all recorded events (e.g. between repetitions of a bench).
  void clear();

 private:
  bool enabled_;
  std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Derived statistics over a finished trace.
struct TraceReport {
  double span_s = 0.0;  ///< max(end) - min(begin) over all events
  /// fraction of (span * workers) spent inside task bodies, per rank
  std::map<int, double> occupancy_by_rank;
  /// median task duration in seconds, per task class
  std::map<std::string, double> median_duration_by_klass;
  /// task counts per class
  std::map<std::string, std::size_t> count_by_klass;
  /// number of Steal events (work-stealing scheduler only; 0 otherwise).
  /// Steal events are excluded from span/occupancy/duration statistics.
  std::size_t steals = 0;
};

TraceReport analyze_trace(const std::vector<TraceEvent>& events,
                          int workers_per_rank);

/// Write one CSV row per event:
///   rank,worker,klass,"key",begin_s,end_s,duration_s,kind,victim
/// The key column is quoted (TaskKey::to_string() contains commas) and
/// timestamps use max_digits10 precision, so read_trace_csv round-trips the
/// stream exactly. kind is "task" or "steal"; victim is -1 for task rows.
void write_trace_csv(const std::vector<TraceEvent>& events, std::ostream& os);

/// Parse a stream produced by write_trace_csv back into events. Accepts the
/// pre-steal 7-column header too (kind defaults to Task). Throws
/// std::runtime_error on malformed input.
std::vector<TraceEvent> read_trace_csv(std::istream& is);

/// Export in Chrome tracing format (chrome://tracing, Perfetto): one
/// complete event ("ph":"X") per task, pid = rank, tid = worker. The
/// counterpart of PaRSEC's binary profile -> visualizer pipeline.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os);

/// ASCII Gantt chart: one text row per (rank, worker), time bucketed into
/// `columns` cells; a cell shows the class initial of the task occupying the
/// majority of the bucket, or '.' when idle. This is the console rendition of
/// the paper's Fig. 10 trace plot.
void print_ascii_gantt(const std::vector<TraceEvent>& events, std::ostream& os,
                       int columns = 100);

}  // namespace repro::rt
