// Causal task-execution tracing, the substitute for PaRSEC's profiling
// system.
//
// The trace is a flat event stream with five event kinds:
//   * Task  — one span per executed task body, carrying the task's
//             predecessor keys (`deps`) so the executed dataflow DAG can be
//             rebuilt offline,
//   * Steal — a scheduler steal (zero-width, thief lane),
//   * Send  — a remote message leaving a rank's comm path (enqueue -> wire
//             timestamps, bytes, destination, flow id),
//   * Recv  — one delivered flow section on the receiving rank (flow id
//             matches the Send; `deps` holds the producing task's key, `key`
//             the consuming task's),
//   * Idle  — a worker gap between pops, classified by what ended it
//             (idle-halo / idle-noready / idle-steal / idle-shutdown).
//
// From the stream we derive the paper's Fig. 10 artefacts — per-worker Gantt
// strips, per-rank occupancy, kernel-duration medians — and, via
// obs/trace_analysis, the causal story behind them: critical path, comm /
// compute overlap, idle taxonomy.
//
// Under REPRO_OBS_DISABLE the collection side compiles out like the metrics
// do: Tracer::enabled() is constant-false, so every recording site folds
// away. The analysis and CSV/Chrome I/O stay available (they operate on
// files, not on live runs).
#pragma once

#include <atomic>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/task_key.hpp"

namespace repro::rt {

#ifdef REPRO_OBS_DISABLE
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// What a trace event records (see file comment for the five kinds).
enum class TraceEventKind {
  Task,   ///< [begin_s, end_s] spent inside a task body
  Steal,  ///< instantaneous; `worker` is the thief, `steal_victim` the victim
  Send,   ///< remote message put on the wire; `worker` == kTraceLaneSend
  Recv,   ///< one flow section delivered; `worker` == kTraceLaneRecv
  Idle,   ///< worker gap between pops, classified via `klass`
};

/// Synthetic worker ids for the comm-thread lanes (Send/Recv events live on
/// per-rank lanes distinct from any compute worker 0..W-1).
inline constexpr int kTraceLaneSend = -2;
inline constexpr int kTraceLaneRecv = -3;

struct TraceEvent {
  TaskKey key;
  std::string klass;
  int rank = 0;
  int worker = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  TraceEventKind kind = TraceEventKind::Task;
  int steal_victim = -1;  ///< robbed worker id for Steal events, else -1

  // Message fields (Send/Recv events; zero/-1 elsewhere).
  int peer = -1;             ///< Send: destination rank; Recv: source rank
  std::uint64_t flow = 0;    ///< nonzero message id linking Send <-> Recv
  std::uint64_t bytes = 0;   ///< Send: wire bytes; Recv: section payload bytes
  double queued_s = 0.0;     ///< when the producer enqueued the message
  double wire_s = 0.0;       ///< when the channel accepted it
  std::uint32_t retransmits = 0;  ///< resends observed on the delivered copy

  /// Task events: predecessor task keys (one per input flow). Recv events:
  /// the producing task's key. Empty otherwise.
  std::vector<TaskKey> deps;

  double duration() const { return end_s - begin_s; }
};

/// Collects events from worker and comm threads without a per-event lock:
/// each recording thread appends to its own buffer (registered under the
/// mutex once per (tracer, run)), and merge() — called after the runtime has
/// joined its threads — splices the buffers into one stream ordered by begin
/// timestamp. clear()/merge() must not race record(); the runtime guarantees
/// that by clearing before spawning and merging after joining.
class Tracer {
 public:
  explicit Tracer(bool enabled = false);

  /// Whether record() stores events. Constant false when tracing is compiled
  /// out, so recording sites (and their TraceEvent construction) fold away.
  bool enabled() const { return kTracingCompiledIn && enabled_; }

  /// Append one event to the calling thread's buffer. Thread-safe (no
  /// per-event lock); a no-op when the tracer is disabled.
  void record(TraceEvent event);

  /// Splice all thread buffers into the merged stream, ordered by begin
  /// timestamp (stable, so same-instant events keep arrival order within a
  /// thread). Idempotent; call after the recording threads have joined.
  void merge();

  /// The merged event stream (empty until merge()).
  const std::vector<TraceEvent>& events() const { return merged_; }

  /// Discard all recorded events and detach every thread buffer (e.g.
  /// between repetitions of a bench). No thread may be recording.
  void clear();

 private:
  struct ThreadBuffer {
    std::vector<TraceEvent> events;
  };

  ThreadBuffer& local_buffer();

  bool enabled_;
  /// Registration identity for thread-local buffer caches. Drawn from a
  /// process-global counter at construction and on every clear(), so a
  /// (tracer address, generation) pair can never repeat — a stale cache from
  /// a destroyed tracer or an earlier run never aliases a live buffer.
  std::atomic<std::uint64_t> generation_;
  std::mutex mutex_;  ///< guards buffers_ registration and merge
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<TraceEvent> merged_;
};

/// Derived statistics over a finished trace.
struct TraceReport {
  double span_s = 0.0;  ///< max(end) - min(begin) over Task events
  /// fraction of (span * workers) spent inside task bodies, per rank.
  /// Busy time is the union of each worker's task intervals, so zero-width
  /// events and boundary-instant overlaps are never double-counted.
  std::map<int, double> occupancy_by_rank;
  /// union-of-intervals busy seconds per (rank, worker) compute lane
  std::map<std::pair<int, int>, double> busy_by_worker;
  /// median task duration in seconds, per task class
  std::map<std::string, double> median_duration_by_klass;
  /// task counts per class
  std::map<std::string, std::size_t> count_by_klass;
  /// number of Steal events (work-stealing scheduler only; 0 otherwise).
  std::size_t steals = 0;
  /// numbers of Send / Recv / Idle events. Like steals, these are excluded
  /// from span/occupancy/duration statistics (obs/trace_analysis digs into
  /// them).
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t idles = 0;
};

TraceReport analyze_trace(const std::vector<TraceEvent>& events,
                          int workers_per_rank);

/// Write one CSV row per event:
///   rank,worker,klass,"key",begin_s,end_s,duration_s,kind,victim,
///   peer,flow,bytes,queued_s,wire_s,retransmits,"deps"
/// key and deps are quoted (TaskKey::to_string() contains commas; deps is a
/// ';'-joined key list) and timestamps use max_digits10 precision, so
/// read_trace_csv round-trips the stream exactly. kind is one of
/// task|steal|send|recv|idle.
void write_trace_csv(const std::vector<TraceEvent>& events, std::ostream& os);

/// Parse a stream produced by write_trace_csv back into events. Also accepts
/// the two legacy headers: 7 columns (pre-steal; kind defaults to Task) and
/// 9 columns (pre-causal; message fields default to zero). Throws
/// std::runtime_error on malformed input.
std::vector<TraceEvent> read_trace_csv(std::istream& is);

/// Export in Chrome tracing format (chrome://tracing, Perfetto): one
/// complete event ("ph":"X") per task / send / recv / idle span, pid = rank,
/// tid = worker (comm lanes use the kTraceLane* ids), instant events for
/// steals, and flow arrows ("ph":"s"/"f") linking each remote producer task
/// to its consumer task across ranks. The counterpart of PaRSEC's binary
/// profile -> visualizer pipeline.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os);

/// ASCII Gantt chart: one text row per (rank, worker), time bucketed into
/// `columns` cells; a cell shows the class initial of the task occupying the
/// majority of the bucket, or '.' when idle. Comm lanes render as "rNtx" /
/// "rNrx". Idle and Steal events are skipped (gaps already render as dots).
/// This is the console rendition of the paper's Fig. 10 trace plot.
void print_ascii_gantt(const std::vector<TraceEvent>& events, std::ostream& os,
                       int columns = 100);

}  // namespace repro::rt
