#include "runtime/graph_transform.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/runtime.hpp"

namespace repro::rt {

namespace {

/// How one member input resolves inside the fused body.
struct InputSrc {
  bool internal = false;
  std::uint16_t outer_pos = 0;          ///< external: fused-task input index
  std::uint32_t producer_ordinal = 0;   ///< internal: producing member
  std::uint16_t slot = 0;               ///< internal: producer's own slot
};

/// Where one member publish goes.
struct Disposition {
  bool exported = false;         ///< consumed outside the window
  bool internal = false;         ///< consumed by a later member
  std::uint16_t outer_slot = 0;  ///< fused-task slot when exported
};

struct MemberPlan {
  TaskSpec spec;  ///< member-visible spec (original key/klass/inputs/body)
  std::vector<InputSrc> inputs;
  bool last = false;
};

struct FusedPlan {
  std::vector<MemberPlan> members;
  /// (member ordinal, slot) -> disposition. Absent = unconsumed: dropped for
  /// non-last members, re-published as-is for the last (result() retention).
  std::map<std::pair<std::uint32_t, std::uint16_t>, Disposition> dispositions;
  /// consumer ordinal -> staged (producer ordinal, slot) entries whose last
  /// in-window reader it is; freed right after that member runs so staging
  /// memory stays bounded at the live wavefront, not the whole window.
  std::map<std::uint32_t,
           std::vector<std::pair<std::uint32_t, std::uint16_t>>>
      release_after;
};

using Staging = std::map<std::pair<std::uint32_t, std::uint16_t>, Buffer>;

/// Shim context for one member of a fused task: inputs resolve either to the
/// outer (fused) task's delivered flows or to the in-task staging table;
/// publishes are routed per the precomputed disposition.
class FusedMemberContext final : public TaskContext {
 public:
  FusedMemberContext(TaskContext& outer, const FusedPlan& plan,
                     std::uint32_t ordinal, Staging& staging)
      : outer_(outer), plan_(plan), ordinal_(ordinal), staging_(staging) {}

  const TaskSpec& spec() const override {
    return plan_.members[ordinal_].spec;
  }
  int rank() const override { return outer_.rank(); }
  int worker() const override { return outer_.worker(); }

  Buffer input_buffer(std::size_t i) const override {
    const auto& inputs = plan_.members[ordinal_].inputs;
    if (i >= inputs.size()) {
      throw std::out_of_range("fused member: input index " +
                              std::to_string(i) + " out of range for " +
                              key().to_string());
    }
    const InputSrc& src = inputs[i];
    if (!src.internal) return outer_.input_buffer(src.outer_pos);
    const auto it = staging_.find({src.producer_ordinal, src.slot});
    if (it == staging_.end() || !it->second) {
      throw std::logic_error("fused member: staged input " +
                             std::to_string(i) + " of " + key().to_string() +
                             " not published by member " +
                             std::to_string(src.producer_ordinal));
    }
    return it->second;
  }

  std::size_t num_inputs() const override {
    return plan_.members[ordinal_].inputs.size();
  }

  using TaskContext::publish;
  void publish(std::uint16_t slot, Buffer buffer) override {
    if (!buffer) throw std::invalid_argument("publish: null buffer");
    const auto it = plan_.dispositions.find({ordinal_, slot});
    if (it == plan_.dispositions.end()) {
      // Unconsumed output: the last member's results must stay readable via
      // Runtime::result(), intermediates evaporate with the window.
      if (plan_.members[ordinal_].last) outer_.publish(slot, std::move(buffer));
      return;
    }
    const Disposition& d = it->second;
    if (d.internal) staging_[{ordinal_, slot}] = buffer;
    if (d.exported) outer_.publish(d.outer_slot, std::move(buffer));
  }

  std::shared_ptr<std::vector<double>> acquire_route_buffer(
      std::uint16_t slot) override {
    const auto it = plan_.dispositions.find({ordinal_, slot});
    // A slot with in-window readers must go through staging, so the
    // early-bird path is only offered for purely-exported slots; callers
    // fall back to classic publish() on nullptr by contract.
    if (it == plan_.dispositions.end() || !it->second.exported ||
        it->second.internal) {
      return nullptr;
    }
    return outer_.acquire_route_buffer(it->second.outer_slot);
  }

  void publish_fragments(
      std::uint16_t slot, std::shared_ptr<std::vector<double>> data) override {
    if (!data) throw std::invalid_argument("publish_fragments: null buffer");
    const auto it = plan_.dispositions.find({ordinal_, slot});
    if (it != plan_.dispositions.end() && it->second.exported &&
        !it->second.internal) {
      outer_.publish_fragments(it->second.outer_slot, std::move(data));
      return;
    }
    publish(slot, Buffer(std::move(data)));
  }

 private:
  TaskContext& outer_;
  const FusedPlan& plan_;
  std::uint32_t ordinal_;
  Staging& staging_;
};

void run_fused(const FusedPlan& plan, TaskContext& outer) {
  Staging staging;  // per-invocation, so a graph can be run more than once
  for (std::uint32_t o = 0; o < plan.members.size(); ++o) {
    FusedMemberContext context(outer, plan, o, staging);
    plan.members[o].spec.body(context);
    const auto it = plan.release_after.find(o);
    if (it != plan.release_after.end()) {
      for (const auto& entry : it->second) staging.erase(entry);
    }
  }
}

}  // namespace

FuseReport fuse_supersteps(TaskGraph& graph, int k) {
  if (k < 1) {
    throw std::invalid_argument("fuse_supersteps: k must be >= 1, got " +
                                std::to_string(k));
  }
  FuseReport report;
  report.depth = k;
  report.tasks_before = graph.size();
  report.tasks_after = graph.size();
  if (graph.sealed()) {
    throw GraphTransformError(
        "fuse_supersteps: graph is sealed; fuse before handing it to run()");
  }

  const std::size_t n = graph.size();
  std::map<std::uint64_t, std::vector<std::size_t>> chains;
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.spec(i).chain != 0) chains[graph.spec(i).chain].push_back(i);
  }
  report.chains = chains.size();
  if (k == 1 || chains.empty()) return report;  // exact no-op

  // --- window assignment -------------------------------------------------
  // group_of[i]: representative task index (the window's last member);
  // everything outside a multi-member window represents itself.
  std::vector<std::size_t> group_of(n);
  for (std::size_t i = 0; i < n; ++i) group_of[i] = i;
  std::vector<std::uint32_t> ordinal_of(n, 0);
  std::unordered_map<std::size_t, std::vector<std::size_t>> windows;

  for (auto& [chain_id, members] : chains) {
    std::stable_sort(members.begin(), members.end(),
                     [&](std::size_t a, std::size_t b) {
                       return graph.spec(a).chain_step <
                              graph.spec(b).chain_step;
                     });
    for (std::size_t m = 1; m < members.size(); ++m) {
      if (graph.spec(members[m]).chain_step ==
          graph.spec(members[m - 1]).chain_step) {
        throw GraphTransformError(
            "fuse_supersteps: chain " + std::to_string(chain_id) +
            " has duplicate chain_step " +
            std::to_string(graph.spec(members[m]).chain_step) + " (" +
            graph.spec(members[m]).key.to_string() + " vs " +
            graph.spec(members[m - 1]).key.to_string() + ")");
      }
    }
    const std::size_t width = static_cast<std::size_t>(k);
    for (std::size_t first = 0; first < members.size(); first += width) {
      const std::size_t end = std::min(first + width, members.size());
      const std::size_t last = members[end - 1];
      for (std::size_t m = first; m < end; ++m) {
        const TaskSpec& ms = graph.spec(members[m]);
        const TaskSpec& ls = graph.spec(last);
        if (ms.rank != ls.rank || ms.lane != ls.lane) {
          throw GraphTransformError(
              "fuse_supersteps: window members " + ms.key.to_string() +
              " and " + ls.key.to_string() +
              " disagree on rank/lane; a fused task runs on one rank");
        }
        group_of[members[m]] = last;
        ordinal_of[members[m]] = static_cast<std::uint32_t>(m - first);
      }
      if (end - first >= 2) {
        windows.emplace(last,
                        std::vector<std::size_t>(members.begin() + first,
                                                 members.begin() + end));
      }
    }
  }
  if (windows.empty()) return report;  // every window degenerated to one task

  // --- edge scan: legality + export/staging bookkeeping -------------------
  // The graph is unsealed (consumers() unavailable), so derive every edge
  // from the consumer side's input flows.
  std::set<std::pair<std::size_t, std::uint16_t>> exports;  // (member, slot)
  std::set<std::pair<std::size_t, std::uint16_t>> internals;
  std::map<std::pair<std::size_t, std::uint16_t>, std::uint32_t> last_reader;
  std::unordered_map<std::size_t, std::vector<std::size_t>> condensed_adj;
  std::unordered_map<std::size_t, std::size_t> condensed_indegree;
  for (std::size_t i = 0; i < n; ++i) {
    if (group_of[i] == i) condensed_indegree.emplace(i, 0);
  }

  for (std::size_t ci = 0; ci < n; ++ci) {
    for (const FlowRef& flow : graph.spec(ci).inputs) {
      if (!graph.contains(flow.producer)) continue;  // dangling: seal()'s job
      const std::size_t pi = graph.index_of(flow.producer);
      const std::size_t gp = group_of[pi];
      const std::size_t gc = group_of[ci];
      if (gp == gc && windows.count(gp) != 0) {
        // Intra-window edge: must point forward along the chain, otherwise
        // fusing would invert it (the staged read would precede its write).
        if (ordinal_of[pi] >= ordinal_of[ci]) {
          throw GraphTransformError(
              "fuse_supersteps: fusing k=" + std::to_string(k) +
              " would invert edge " + flow.producer.to_string() + " -> " +
              graph.spec(ci).key.to_string() + " inside one window");
        }
        internals.insert({pi, flow.slot});
        auto& reader = last_reader[{pi, flow.slot}];
        reader = std::max(reader, ordinal_of[ci]);
        continue;
      }
      if (gp != gc) {
        condensed_adj[gp].push_back(gc);
        ++condensed_indegree[gc];
        if (windows.count(gp) != 0) exports.insert({pi, flow.slot});
      }
      // gp == gc without a window is a self-edge on a singleton; seal()
      // rejects those, so pass them through untouched.
    }
  }

  // Kahn over the condensed (window-level) graph: fusing a graph whose
  // chains exchange inside the window creates a group cycle — reject it
  // rather than hand the runtime a deadlock.
  {
    std::vector<std::size_t> ready;
    for (const auto& [node, degree] : condensed_indegree) {
      if (degree == 0) ready.push_back(node);
    }
    std::size_t processed = 0;
    auto indegree = condensed_indegree;
    while (!ready.empty()) {
      const std::size_t node = ready.back();
      ready.pop_back();
      ++processed;
      const auto it = condensed_adj.find(node);
      if (it == condensed_adj.end()) continue;
      for (const std::size_t next : it->second) {
        if (--indegree[next] == 0) ready.push_back(next);
      }
    }
    if (processed != condensed_indegree.size()) {
      throw GraphTransformError(
          "fuse_supersteps: fusing k=" + std::to_string(k) +
          " creates a dependence cycle between fused windows; the graph is "
          "not fuse-ready at this depth (cross-chain edges must only cross "
          "window boundaries)");
    }
  }

  // --- slot remapping -----------------------------------------------------
  // The last member's exported slots keep their numbers (downstream lookups
  // and persistent routes target them); earlier members' exported slots move
  // to fresh ids above everything any flow in the input graph references.
  std::uint32_t fresh_base = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const FlowRef& flow : graph.spec(i).inputs) {
      fresh_base = std::max(fresh_base, static_cast<std::uint32_t>(flow.slot) + 1);
    }
  }
  std::map<std::pair<std::size_t, std::uint16_t>, std::uint16_t> outer_slot;
  for (const auto& [last, members] : windows) {
    std::uint32_t next_fresh = fresh_base;
    for (const std::size_t m : members) {
      for (auto it = exports.lower_bound({m, 0});
           it != exports.end() && it->first == m; ++it) {
        const std::uint16_t slot = it->second;
        if (m == last) {
          outer_slot[{m, slot}] = slot;
        } else {
          if (next_fresh > std::numeric_limits<std::uint16_t>::max()) {
            throw GraphTransformError(
                "fuse_supersteps: slot id space exhausted remapping window " +
                graph.spec(last).key.to_string());
          }
          outer_slot[{m, slot}] = static_cast<std::uint16_t>(next_fresh++);
        }
      }
    }
  }

  const auto remap_flow = [&](FlowRef flow) {
    if (!graph.contains(flow.producer)) return flow;
    const std::size_t pi = graph.index_of(flow.producer);
    const std::size_t gp = group_of[pi];
    if (windows.count(gp) == 0) return flow;
    flow.producer = graph.spec(gp).key;
    flow.slot = outer_slot.at({pi, flow.slot});
    return flow;
  };

  // --- rebuild ------------------------------------------------------------
  TaskGraph fused;
  for (std::size_t i = 0; i < n; ++i) {
    if (group_of[i] != i) continue;  // absorbed into its window's last member
    const auto wit = windows.find(i);
    if (wit == windows.end()) {
      TaskSpec spec = graph.spec(i);
      for (FlowRef& flow : spec.inputs) flow = remap_flow(flow);
      fused.add_task(std::move(spec));
      continue;
    }

    const std::vector<std::size_t>& members = wit->second;
    const TaskSpec& last_spec = graph.spec(i);
    auto plan = std::make_shared<FusedPlan>();
    TaskSpec spec;
    spec.key = last_spec.key;
    spec.rank = last_spec.rank;
    spec.lane = last_spec.lane;
    spec.chain = last_spec.chain;
    spec.chain_step = last_spec.chain_step;
    spec.klass = "fused" + std::to_string(members.size()) + "|" +
                 last_spec.klass;

    // Dedup external inputs on the remapped (producer, slot): members that
    // shared an upstream payload now receive it once — this is where the
    // message count drops from once-per-step to once-per-window.
    std::unordered_map<TaskKey, std::map<std::uint16_t, std::uint16_t>,
                       TaskKeyHash>
        dedup;
    for (std::uint32_t o = 0; o < members.size(); ++o) {
      const std::size_t m = members[o];
      const TaskSpec& ms = graph.spec(m);
      spec.priority = std::max(spec.priority, ms.priority);
      MemberPlan member;
      member.spec = ms;
      member.last = (m == i);
      member.inputs.reserve(ms.inputs.size());
      for (const FlowRef& flow : ms.inputs) {
        InputSrc src;
        if (graph.contains(flow.producer) &&
            group_of[graph.index_of(flow.producer)] == i) {
          src.internal = true;
          src.producer_ordinal = ordinal_of[graph.index_of(flow.producer)];
          src.slot = flow.slot;
        } else {
          const FlowRef remapped = remap_flow(flow);
          auto& by_slot = dedup[remapped.producer];
          const auto it = by_slot.find(remapped.slot);
          if (it != by_slot.end()) {
            src.outer_pos = it->second;
          } else {
            src.outer_pos = static_cast<std::uint16_t>(spec.inputs.size());
            by_slot.emplace(remapped.slot, src.outer_pos);
            spec.inputs.push_back(remapped);
          }
        }
        member.inputs.push_back(src);
      }
      plan->members.push_back(std::move(member));

      for (auto it = exports.lower_bound({m, 0});
           it != exports.end() && it->first == m; ++it) {
        Disposition& d = plan->dispositions[{o, it->second}];
        d.exported = true;
        d.outer_slot = outer_slot.at({m, it->second});
      }
      for (auto it = internals.lower_bound({m, 0});
           it != internals.end() && it->first == m; ++it) {
        const std::uint16_t slot = it->second;
        plan->dispositions[{o, slot}].internal = true;
        plan->release_after[last_reader.at({m, slot})].push_back({o, slot});
      }
    }

    spec.body = [plan](TaskContext& outer) { run_fused(*plan, outer); };
    fused.add_task(std::move(spec));
    ++report.fused_tasks;
    report.fused_members += members.size();
  }

  graph = std::move(fused);
  report.tasks_after = graph.size();
  return report;
}

}  // namespace repro::rt
