// Dynamic Task Discovery (DTD) DSL — PaRSEC's sequential-insertion model.
//
// The paper contrasts PTG with DTD: "Dynamic Task Discovery ... provide[s]
// alternative programming models ... by delivering an API that allows for
// sequential task insertion into the runtime". This header reproduces that
// model: the application declares logical data, then inserts tasks one after
// another, each naming the data it reads and writes. Dependencies are
// inferred from the data accesses exactly as a superscalar runtime would:
//
//   auto x = program.data("x", /*rank=*/0, {1.0, 2.0});
//   program.insert_task("scale", 0, {{x, Access::ReadWrite}},
//                       [](DtdTaskView& t) {
//                         auto v = t.read_vector(x);
//                         for (double& e : v) e *= 2;
//                         t.write(x, std::move(v));
//                       });
//
// Data is versioned (each write creates a new immutable copy), so
// write-after-read never serializes — matching PaRSEC's data-copy
// semantics. compile() lowers the insertion trace to the same TaskGraph the
// PTG path produces; both DSLs share one execution engine.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/graph.hpp"

namespace repro::rt::dtd {

enum class Access { Read, Write, ReadWrite };

/// Opaque handle to a logical datum.
struct DataHandle {
  std::uint32_t id = 0;
  friend bool operator==(const DataHandle&, const DataHandle&) = default;
};

/// The body's window onto its declared accesses.
class DtdTaskView {
 public:
  /// Current contents of a datum declared Read or ReadWrite.
  std::span<const double> read(DataHandle handle) const;
  Buffer read_buffer(DataHandle handle) const;
  /// Convenience: copy the current contents into a mutable vector.
  std::vector<double> read_vector(DataHandle handle) const;

  /// Publish the new contents of a datum declared Write or ReadWrite. Every
  /// written datum must be written exactly once per task.
  void write(DataHandle handle, std::vector<double>&& data);
  void write(DataHandle handle, Buffer buffer);

 private:
  friend class DtdProgram;
  DtdTaskView(TaskContext& ctx,
              const std::vector<std::pair<std::uint32_t, std::size_t>>& reads,
              const std::vector<std::pair<std::uint32_t, std::uint16_t>>& writes)
      : ctx_(ctx), reads_(reads), writes_(writes) {}

  std::size_t read_pos(DataHandle handle) const;
  std::uint16_t write_slot(DataHandle handle) const;

  TaskContext& ctx_;
  const std::vector<std::pair<std::uint32_t, std::size_t>>& reads_;
  const std::vector<std::pair<std::uint32_t, std::uint16_t>>& writes_;
};

using DtdBody = std::function<void(DtdTaskView&)>;

class DtdProgram {
 public:
  /// Declare a datum with its home rank and initial contents. A source task
  /// on that rank publishes the initial version.
  DataHandle data(const std::string& name, int rank,
                  std::vector<double> initial);

  /// Insert the next task: runs on `rank`, touching `accesses` (each datum
  /// at most once). Read accesses see the latest version at insertion time.
  void insert_task(const std::string& name, int rank,
                   std::vector<std::pair<DataHandle, Access>> accesses,
                   DtdBody body);

  /// Lower the insertion trace to an executable TaskGraph.
  TaskGraph compile() const;

  /// Key under which the latest version of `handle` is published; pass to
  /// Runtime::result() after the run (slot from result_slot()).
  TaskKey result_key(DataHandle handle) const;
  std::uint16_t result_slot(DataHandle handle) const;

  std::size_t num_tasks() const { return tasks_.size(); }

 private:
  struct Datum {
    std::string name;
    int rank;
    /// Producer of the current version: task index (in tasks_) and slot.
    std::uint32_t producer_task = 0;
    std::uint16_t producer_slot = 0;
  };

  struct InsertedTask {
    std::string name;
    int rank;
    DtdBody body;
    /// (datum id, producer FlowRef) for each read, in declaration order.
    std::vector<std::pair<std::uint32_t, FlowRef>> reads;
    /// (datum id, output slot) for each write, in declaration order.
    std::vector<std::pair<std::uint32_t, std::uint16_t>> writes;
  };

  std::vector<Datum> data_;
  std::vector<InsertedTask> tasks_;
};

}  // namespace repro::rt::dtd
