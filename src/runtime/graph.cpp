#include "runtime/graph.hpp"

#include <limits>
#include <stdexcept>

namespace repro::rt {

void TaskGraph::add_task(TaskSpec spec) {
  if (sealed_) throw std::logic_error("TaskGraph: add_task after seal");
  if (!spec.body) throw std::invalid_argument("TaskGraph: task without body");
  if (spec.inputs.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint16_t>::max())) {
    throw std::invalid_argument("TaskGraph: too many inputs");
  }
  const auto [it, inserted] = by_key_.emplace(spec.key, specs_.size());
  if (!inserted) {
    throw std::invalid_argument("TaskGraph: duplicate task " +
                                spec.key.to_string());
  }
  specs_.push_back(std::move(spec));
}

void TaskGraph::seal(int nranks) {
  if (sealed_) throw std::logic_error("TaskGraph: seal twice");
  if (specs_.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::runtime_error("TaskGraph: too many tasks");
  }

  consumer_edges_.assign(specs_.size(), {});
  for (std::size_t ci = 0; ci < specs_.size(); ++ci) {
    const TaskSpec& consumer = specs_[ci];
    if (consumer.rank < 0 || consumer.rank >= nranks) {
      throw std::runtime_error("TaskGraph: task " + consumer.key.to_string() +
                               " has rank " + std::to_string(consumer.rank) +
                               " outside [0," + std::to_string(nranks) + ")");
    }
    for (std::size_t pos = 0; pos < consumer.inputs.size(); ++pos) {
      const FlowRef& flow = consumer.inputs[pos];
      const auto it = by_key_.find(flow.producer);
      if (it == by_key_.end()) {
        throw std::runtime_error("TaskGraph: task " + consumer.key.to_string() +
                                 " consumes missing producer " +
                                 flow.producer.to_string());
      }
      if (it->second == ci) {
        throw std::runtime_error("TaskGraph: task " + consumer.key.to_string() +
                                 " consumes itself");
      }
      consumer_edges_[it->second].push_back(ConsumerEdge{
          flow.slot, static_cast<std::uint32_t>(ci),
          static_cast<std::uint16_t>(pos), flow.route, flow.route_doubles,
          flow.route_fragments});
    }
  }
  // Kahn's algorithm: reject cyclic graphs at seal time so that execution can
  // never deadlock on a dependency cycle.
  std::vector<std::size_t> indegree(specs_.size());
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    indegree[i] = specs_[i].inputs.size();
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::size_t processed = 0;
  while (!frontier.empty()) {
    const std::size_t producer = frontier.back();
    frontier.pop_back();
    ++processed;
    for (const auto& edge : consumer_edges_[producer]) {
      if (--indegree[edge.consumer] == 0) frontier.push_back(edge.consumer);
    }
  }
  if (processed != specs_.size()) {
    throw std::runtime_error("TaskGraph: dependency cycle detected (" +
                             std::to_string(specs_.size() - processed) +
                             " tasks unreachable)");
  }

  sealed_ = true;
}

std::size_t TaskGraph::index_of(const TaskKey& key) const {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    throw std::out_of_range("TaskGraph: unknown task " + key.to_string());
  }
  return it->second;
}

bool TaskGraph::contains(const TaskKey& key) const {
  return by_key_.count(key) > 0;
}

std::size_t TaskGraph::slot_fanout(std::size_t index, std::uint16_t slot) const {
  std::size_t n = 0;
  for (const auto& edge : consumer_edges_[index]) {
    if (edge.slot == slot) ++n;
  }
  return n;
}

}  // namespace repro::rt
