// Parameterized Task Graph (PTG) DSL — the programming model the paper uses.
//
// PaRSEC's PTG/JDF describes an algorithm as task *classes* parameterized by
// integers, with dataflow expressions that name peer tasks symbolically:
//
//   jacobi(k, ti, tj)
//     k  = 1 .. iters
//     ti = 0 .. TR-1
//     tj = 0 .. TC-1
//     : rank = owner(ti, tj)
//     READ prev <- STATE jacobi(k-1, ti, tj)
//     ...
//
// This header provides the same shape in C++: a TaskClassBuilder collects
// parameter ranges (later ranges may depend on earlier parameters), a rank
// expression, dataflow expressions (functions from the parameter tuple to
// producer references, which may be empty for boundary instances), and a
// body. unfold() enumerates every parameter combination and emits the
// concrete TaskGraph the runtime executes — the moral equivalent of
// PaRSEC unfolding a JDF onto the machine.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/graph.hpp"

namespace repro::rt::ptg {

/// Concrete values of a task instance's parameters (up to three, matching
/// TaskKey). Unused parameters are zero.
struct Params {
  std::array<int, 3> v{0, 0, 0};

  int operator[](std::size_t i) const { return v[i]; }
};

/// One input flow of a task instance: the producing task instance and the
/// output slot to read. Returned by dataflow expressions.
struct FlowEnd {
  std::uint32_t producer_class = 0;  ///< TaskClass type id
  Params producer_params;
  std::uint16_t slot = 0;
};

/// A dataflow expression: maps an instance's parameters to the inputs it
/// consumes (possibly none for boundary instances, possibly several).
using FlowExpr = std::function<std::vector<FlowEnd>(const Params&)>;

/// Parameter range; bounds may depend on the values of earlier parameters
/// (like JDF's dependent ranges). Both bounds are inclusive; an empty range
/// (hi < lo) yields no instances.
struct ParamRange {
  std::string name;
  std::function<int(const Params&)> lo;
  std::function<int(const Params&)> hi;
};

class TaskClass {
 public:
  TaskClass(std::string name, std::uint32_t type_id)
      : name_(std::move(name)), type_id_(type_id) {}

  const std::string& name() const { return name_; }
  std::uint32_t type_id() const { return type_id_; }

  /// Add a parameter with constant bounds.
  TaskClass& parameter(const std::string& name, int lo, int hi);
  /// Add a parameter whose bounds depend on earlier parameters.
  TaskClass& parameter(const std::string& name,
                       std::function<int(const Params&)> lo,
                       std::function<int(const Params&)> hi);

  /// Owning rank of an instance (default: rank 0).
  TaskClass& rank(std::function<int(const Params&)> fn);
  /// Scheduling priority (default: 0).
  TaskClass& priority(std::function<int(const Params&)> fn);
  /// Trace label (default: the class name).
  TaskClass& klass(std::function<std::string(const Params&)> fn);

  /// Add a dataflow expression; flows from all expressions are concatenated
  /// in declaration order to form the instance's input list. Bodies access
  /// them positionally via TaskContext::input().
  TaskClass& flow(FlowExpr expr);

  /// The instance body.
  TaskClass& body(std::function<void(TaskContext&, const Params&)> fn);

 private:
  friend class PtgProgram;
  std::string name_;
  std::uint32_t type_id_;
  std::vector<ParamRange> ranges_;
  std::function<int(const Params&)> rank_fn_;
  std::function<int(const Params&)> priority_fn_;
  std::function<std::string(const Params&)> klass_fn_;
  std::vector<FlowExpr> flows_;
  std::function<void(TaskContext&, const Params&)> body_;
};

/// A collection of task classes, unfoldable into a concrete TaskGraph.
class PtgProgram {
 public:
  /// Create a class; type ids are assigned in creation order (0, 1, ...).
  TaskClass& task_class(const std::string& name);

  /// Reference helper for dataflow expressions.
  static FlowEnd ref(const TaskClass& producer, Params params,
                     std::uint16_t slot = 0) {
    return FlowEnd{producer.type_id(), params, slot};
  }

  /// Enumerate every instance of every class and build the TaskGraph.
  /// Throws std::runtime_error on missing bodies or >3 parameters.
  TaskGraph unfold() const;

  /// Key of a concrete instance, for result() lookups after the run.
  static TaskKey key_of(const TaskClass& task_class, const Params& params) {
    return TaskKey{task_class.type_id(), params[0], params[1], params[2]};
  }

  std::size_t num_classes() const { return classes_.size(); }

 private:
  void enumerate(const TaskClass& tc, std::size_t depth, Params& params,
                 TaskGraph& graph) const;

  std::vector<std::unique_ptr<TaskClass>> classes_;
};

}  // namespace repro::rt::ptg
