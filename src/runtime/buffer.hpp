// Shared, immutable-after-publish data buffers flowing between tasks.
//
// A task publishes each output exactly once; after publication the buffer is
// conceptually read-only (consumers hold shared ownership). Local consumers
// share the pointer (intra-node zero copy, as a runtime on one node would);
// remote consumers receive a deep copy through the Transport, which is what
// makes cross-node traffic accounting honest.
#pragma once

#include <memory>
#include <vector>

namespace repro::rt {

using Buffer = std::shared_ptr<const std::vector<double>>;

/// Seal a vector into an immutable shared Buffer (moves; no copy).
inline Buffer make_buffer(std::vector<double>&& data) {
  return std::make_shared<const std::vector<double>>(std::move(data));
}

}  // namespace repro::rt
