#include "runtime/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "support/stats.hpp"

namespace repro::rt {

void Tracer::record(TraceEvent event) {
  if (!enabled_) return;
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

TraceReport analyze_trace(const std::vector<TraceEvent>& events,
                          int workers_per_rank) {
  TraceReport report;
  if (events.empty()) return report;

  double t0 = std::numeric_limits<double>::max();
  double t1 = std::numeric_limits<double>::lowest();
  std::map<int, double> busy_by_rank;
  std::map<std::string, std::vector<double>> durations;

  for (const auto& e : events) {
    if (e.kind == TraceEventKind::Steal) {
      // Steals are bookkeeping, not work: count them but keep them out of
      // the span/occupancy/duration statistics.
      report.steals += 1;
      continue;
    }
    t0 = std::min(t0, e.begin_s);
    t1 = std::max(t1, e.end_s);
    busy_by_rank[e.rank] += e.duration();
    durations[e.klass].push_back(e.duration());
    report.count_by_klass[e.klass] += 1;
  }
  if (t1 < t0) return report;  // only steal events: no span to report
  report.span_s = t1 - t0;

  for (const auto& [rank, busy] : busy_by_rank) {
    const double capacity = report.span_s * workers_per_rank;
    report.occupancy_by_rank[rank] = capacity > 0.0 ? busy / capacity : 0.0;
  }
  for (auto& [klass, samples] : durations) {
    report.median_duration_by_klass[klass] = median(samples);
  }
  return report;
}

void write_trace_csv(const std::vector<TraceEvent>& events, std::ostream& os) {
  // max_digits10 keeps the double -> text -> double round trip exact, and
  // the key is quoted because TaskKey::to_string() contains commas.
  const auto flags = os.flags();
  const auto precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "rank,worker,klass,key,begin_s,end_s,duration_s,kind,victim\n";
  for (const auto& e : events) {
    os << e.rank << ',' << e.worker << ',' << e.klass << ",\""
       << e.key.to_string() << "\"," << e.begin_s << ',' << e.end_s << ','
       << e.duration() << ','
       << (e.kind == TraceEventKind::Steal ? "steal" : "task") << ','
       << e.steal_victim << '\n';
  }
  os.precision(precision);
  os.flags(flags);
}

namespace {

// Split one CSV line into fields; only the key column is ever quoted and
// quotes never nest, so a simple state machine suffices.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (const char c : line) {
    if (c == '"') {
      quoted = !quoted;
    } else if (c == ',' && !quoted) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

TaskKey parse_task_key(const std::string& text) {
  TaskKey key;
  std::uint32_t type = 0;
  int a = 0;
  int b = 0;
  int c = 0;
  if (std::sscanf(text.c_str(), "t%" SCNu32 "(%d,%d,%d)", &type, &a, &b, &c) !=
      4) {
    throw std::runtime_error("read_trace_csv: bad task key '" + text + "'");
  }
  key.type = type;
  key.a = a;
  key.b = b;
  key.c = c;
  return key;
}

}  // namespace

std::vector<TraceEvent> read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return {};
  const auto header = split_csv_line(line);
  const bool has_kind = header.size() >= 9;
  if (header.size() != 7 && !has_kind) {
    throw std::runtime_error("read_trace_csv: unrecognized header '" + line +
                             "'");
  }

  std::vector<TraceEvent> events;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (!has_kind && fields.size() == 9) {
      // The legacy writer did not quote the key, so "t3(4,5,6)" spans three
      // fields; re-join them before shape-checking the row.
      fields[3] += "," + fields[4] + "," + fields[5];
      fields.erase(fields.begin() + 4, fields.begin() + 6);
    }
    if (fields.size() != header.size()) {
      throw std::runtime_error("read_trace_csv: bad row '" + line + "'");
    }
    TraceEvent e;
    e.rank = std::stoi(fields[0]);
    e.worker = std::stoi(fields[1]);
    e.klass = fields[2];
    e.key = parse_task_key(fields[3]);
    e.begin_s = std::stod(fields[4]);
    e.end_s = std::stod(fields[5]);
    if (has_kind) {
      if (fields[7] == "steal") {
        e.kind = TraceEventKind::Steal;
      } else if (fields[7] != "task") {
        throw std::runtime_error("read_trace_csv: bad kind '" + fields[7] +
                                 "'");
      }
      e.steal_victim = std::stoi(fields[8]);
    }
    events.push_back(std::move(e));
  }
  return events;
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os) {
  double t0 = std::numeric_limits<double>::max();
  for (const auto& e : events) t0 = std::min(t0, e.begin_s);
  if (events.empty()) t0 = 0.0;

  os << "[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) os << ",";
    first = false;
    if (e.kind == TraceEventKind::Steal) {
      // Instant event on the thief's lane; the victim id rides in args.
      os << "\n  {\"name\":\"steal<-w" << e.steal_victim
         << "\",\"cat\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.rank
         << ",\"tid\":" << e.worker << ",\"ts\":" << (e.begin_s - t0) * 1e6
         << "}";
      continue;
    }
    os << "\n  {\"name\":\"" << e.klass << ' ' << e.key.to_string()
       << "\",\"cat\":\"" << e.klass << "\",\"ph\":\"X\",\"pid\":" << e.rank
       << ",\"tid\":" << e.worker << ",\"ts\":" << (e.begin_s - t0) * 1e6
       << ",\"dur\":" << e.duration() * 1e6 << "}";
  }
  os << "\n]\n";
}

void print_ascii_gantt(const std::vector<TraceEvent>& events, std::ostream& os,
                       int columns) {
  if (events.empty()) {
    os << "(empty trace)\n";
    return;
  }
  double t0 = std::numeric_limits<double>::max();
  double t1 = std::numeric_limits<double>::lowest();
  for (const auto& e : events) {
    t0 = std::min(t0, e.begin_s);
    t1 = std::max(t1, e.end_s);
  }
  const double span = std::max(t1 - t0, 1e-12);
  const double bucket = span / columns;

  // Lane per (rank, worker); within a bucket the class covering the most time
  // wins; idle buckets print '.'.
  std::map<std::pair<int, int>, std::vector<std::map<char, double>>> lanes;
  for (const auto& e : events) {
    if (e.kind == TraceEventKind::Steal) continue;  // zero-width, skip
    auto& lane = lanes[{e.rank, e.worker}];
    if (lane.empty()) lane.resize(static_cast<std::size_t>(columns));
    const char initial = e.klass.empty() ? '?' : e.klass.front();
    int first = static_cast<int>((e.begin_s - t0) / bucket);
    int last = static_cast<int>((e.end_s - t0) / bucket);
    first = std::clamp(first, 0, columns - 1);
    last = std::clamp(last, 0, columns - 1);
    for (int cell = first; cell <= last; ++cell) {
      const double cell_t0 = t0 + cell * bucket;
      const double cell_t1 = cell_t0 + bucket;
      const double overlap =
          std::min(e.end_s, cell_t1) - std::max(e.begin_s, cell_t0);
      if (overlap > 0.0) lane[static_cast<std::size_t>(cell)][initial] += overlap;
    }
  }

  os << "time -> (" << span * 1e3 << " ms total, " << columns << " buckets; "
     << "letter = first letter of dominant task class, '.' = idle)\n";
  for (const auto& [id, lane] : lanes) {
    os << "r" << id.first << "w" << id.second << " |";
    for (const auto& cell : lane) {
      char best = '.';
      double best_time = 0.0;
      for (const auto& [initial, time] : cell) {
        if (time > best_time) {
          best_time = time;
          best = initial;
        }
      }
      os << best;
    }
    os << "|\n";
  }
}

}  // namespace repro::rt
