#include "runtime/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "support/stats.hpp"

namespace repro::rt {

namespace {

/// Process-global generation counter: every Tracer construction and clear()
/// draws a fresh value, so thread-local caches keyed on (tracer address,
/// generation) can never alias across tracer lifetimes or runs.
std::atomic<std::uint64_t> g_tracer_generation{0};

std::uint64_t next_generation() {
  return g_tracer_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Tracer::Tracer(bool enabled)
    : enabled_(enabled), generation_(next_generation()) {}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  struct Cache {
    const Tracer* owner = nullptr;
    std::uint64_t generation = 0;
    ThreadBuffer* buffer = nullptr;
  };
  static thread_local Cache cache;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (cache.owner != this || cache.generation != generation) {
    auto buffer = std::make_unique<ThreadBuffer>();
    std::lock_guard lock(mutex_);
    cache.buffer = buffer.get();
    buffers_.push_back(std::move(buffer));
    cache.owner = this;
    cache.generation = generation;
  }
  return *cache.buffer;
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  local_buffer().events.push_back(std::move(event));
}

void Tracer::merge() {
  std::lock_guard lock(mutex_);
  for (auto& buffer : buffers_) {
    merged_.insert(merged_.end(),
                   std::make_move_iterator(buffer->events.begin()),
                   std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  std::stable_sort(merged_.begin(), merged_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.begin_s < b.begin_s;
                   });
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  buffers_.clear();
  merged_.clear();
  generation_.store(next_generation(), std::memory_order_release);
}

namespace {

/// Union length of a set of [begin, end] intervals. Zero-width intervals and
/// shared boundary instants contribute nothing — the fix for steal events
/// landing exactly on a task boundary double-counting the instant.
double interval_union_seconds(std::vector<std::pair<double, double>>& spans) {
  if (spans.empty()) return 0.0;
  std::sort(spans.begin(), spans.end());
  double total = 0.0;
  double lo = spans.front().first;
  double hi = spans.front().second;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const auto& [b, e] = spans[i];
    if (b > hi) {
      total += hi - lo;
      lo = b;
      hi = e;
    } else {
      hi = std::max(hi, e);
    }
  }
  total += hi - lo;
  return std::max(total, 0.0);
}

}  // namespace

TraceReport analyze_trace(const std::vector<TraceEvent>& events,
                          int workers_per_rank) {
  TraceReport report;
  if (events.empty()) return report;

  double t0 = std::numeric_limits<double>::max();
  double t1 = std::numeric_limits<double>::lowest();
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> lanes;
  std::map<std::string, std::vector<double>> durations;

  for (const auto& e : events) {
    // Non-task events are bookkeeping, not work: count them but keep them
    // out of the span/occupancy/duration statistics.
    switch (e.kind) {
      case TraceEventKind::Steal: report.steals += 1; continue;
      case TraceEventKind::Send: report.sends += 1; continue;
      case TraceEventKind::Recv: report.recvs += 1; continue;
      case TraceEventKind::Idle: report.idles += 1; continue;
      case TraceEventKind::Task: break;
    }
    t0 = std::min(t0, e.begin_s);
    t1 = std::max(t1, e.end_s);
    lanes[{e.rank, e.worker}].emplace_back(e.begin_s, e.end_s);
    durations[e.klass].push_back(e.duration());
    report.count_by_klass[e.klass] += 1;
  }
  if (t1 < t0) return report;  // no task events: no span to report
  report.span_s = t1 - t0;

  std::map<int, double> busy_by_rank;
  for (auto& [id, spans] : lanes) {
    const double busy = interval_union_seconds(spans);
    report.busy_by_worker[id] = busy;
    busy_by_rank[id.first] += busy;
  }
  for (const auto& [rank, busy] : busy_by_rank) {
    const double capacity = report.span_s * workers_per_rank;
    report.occupancy_by_rank[rank] = capacity > 0.0 ? busy / capacity : 0.0;
  }
  for (auto& [klass, samples] : durations) {
    report.median_duration_by_klass[klass] = median(samples);
  }
  return report;
}

namespace {

const char* kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::Task: return "task";
    case TraceEventKind::Steal: return "steal";
    case TraceEventKind::Send: return "send";
    case TraceEventKind::Recv: return "recv";
    case TraceEventKind::Idle: return "idle";
  }
  return "?";
}

TraceEventKind parse_kind(const std::string& name) {
  if (name == "task") return TraceEventKind::Task;
  if (name == "steal") return TraceEventKind::Steal;
  if (name == "send") return TraceEventKind::Send;
  if (name == "recv") return TraceEventKind::Recv;
  if (name == "idle") return TraceEventKind::Idle;
  throw std::runtime_error("read_trace_csv: bad kind '" + name + "'");
}

}  // namespace

void write_trace_csv(const std::vector<TraceEvent>& events, std::ostream& os) {
  // max_digits10 keeps the double -> text -> double round trip exact; key and
  // deps are quoted because TaskKey::to_string() contains commas.
  const auto flags = os.flags();
  const auto precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "rank,worker,klass,key,begin_s,end_s,duration_s,kind,victim,"
        "peer,flow,bytes,queued_s,wire_s,retransmits,deps\n";
  for (const auto& e : events) {
    os << e.rank << ',' << e.worker << ',' << e.klass << ",\""
       << e.key.to_string() << "\"," << e.begin_s << ',' << e.end_s << ','
       << e.duration() << ',' << kind_name(e.kind) << ',' << e.steal_victim
       << ',' << e.peer << ',' << e.flow << ',' << e.bytes << ','
       << e.queued_s << ',' << e.wire_s << ',' << e.retransmits << ",\"";
    for (std::size_t i = 0; i < e.deps.size(); ++i) {
      if (i > 0) os << ';';
      os << e.deps[i].to_string();
    }
    os << "\"\n";
  }
  os.precision(precision);
  os.flags(flags);
}

namespace {

// Split one CSV line into fields; only the key/deps columns are ever quoted
// and quotes never nest, so a simple state machine suffices.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (const char c : line) {
    if (c == '"') {
      quoted = !quoted;
    } else if (c == ',' && !quoted) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

TaskKey parse_task_key(const std::string& text) {
  TaskKey key;
  std::uint32_t type = 0;
  int a = 0;
  int b = 0;
  int c = 0;
  if (std::sscanf(text.c_str(), "t%" SCNu32 "(%d,%d,%d)", &type, &a, &b, &c) !=
      4) {
    throw std::runtime_error("read_trace_csv: bad task key '" + text + "'");
  }
  key.type = type;
  key.a = a;
  key.b = b;
  key.c = c;
  return key;
}

std::vector<TaskKey> parse_deps(const std::string& text) {
  std::vector<TaskKey> deps;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t stop = text.find(';', start);
    if (stop == std::string::npos) stop = text.size();
    deps.push_back(parse_task_key(text.substr(start, stop - start)));
    start = stop + 1;
  }
  return deps;
}

}  // namespace

std::vector<TraceEvent> read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return {};
  const auto header = split_csv_line(line);
  const bool has_kind = header.size() >= 9;
  const bool has_causal = header.size() >= 16;
  if (header.size() != 7 && header.size() != 9 && header.size() != 16) {
    throw std::runtime_error("read_trace_csv: unrecognized header '" + line +
                             "'");
  }

  std::vector<TraceEvent> events;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (!has_kind && fields.size() == 9) {
      // The legacy writer did not quote the key, so "t3(4,5,6)" spans three
      // fields; re-join them before shape-checking the row.
      fields[3] += "," + fields[4] + "," + fields[5];
      fields.erase(fields.begin() + 4, fields.begin() + 6);
    }
    if (fields.size() != header.size()) {
      throw std::runtime_error("read_trace_csv: bad row '" + line + "'");
    }
    TraceEvent e;
    e.rank = std::stoi(fields[0]);
    e.worker = std::stoi(fields[1]);
    e.klass = fields[2];
    e.key = parse_task_key(fields[3]);
    e.begin_s = std::stod(fields[4]);
    e.end_s = std::stod(fields[5]);
    if (has_kind) {
      e.kind = parse_kind(fields[7]);
      e.steal_victim = std::stoi(fields[8]);
    }
    if (has_causal) {
      e.peer = std::stoi(fields[9]);
      e.flow = std::stoull(fields[10]);
      e.bytes = std::stoull(fields[11]);
      e.queued_s = std::stod(fields[12]);
      e.wire_s = std::stod(fields[13]);
      e.retransmits = static_cast<std::uint32_t>(std::stoul(fields[14]));
      e.deps = parse_deps(fields[15]);
    }
    events.push_back(std::move(e));
  }
  return events;
}

namespace {

/// JSON string escaping for Chrome trace names (klass strings are plain
/// identifiers today, but the exporter should not corrupt the file if one
/// ever carries a quote or backslash).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os) {
  double t0 = std::numeric_limits<double>::max();
  for (const auto& e : events) t0 = std::min(t0, e.begin_s);
  if (events.empty()) t0 = 0.0;

  // Task events indexed by key so Recv events (consumer key + producer dep)
  // can be turned into producer-task -> consumer-task flow arrows.
  std::unordered_map<TaskKey, const TraceEvent*, TaskKeyHash> tasks;
  for (const auto& e : events) {
    if (e.kind == TraceEventKind::Task) tasks[e.key] = &e;
  }

  os << "[";
  bool first = true;
  const auto emit = [&](const std::string& entry) {
    if (!first) os << ",";
    first = false;
    os << "\n  " << entry;
  };

  std::uint64_t arrow_id = 0;
  for (const auto& e : events) {
    std::ostringstream entry;
    entry.precision(10);
    switch (e.kind) {
      case TraceEventKind::Steal:
        // Instant event on the thief's lane; the victim id rides in args.
        entry << "{\"name\":\"steal<-w" << e.steal_victim
              << "\",\"cat\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
              << e.rank << ",\"tid\":" << e.worker
              << ",\"ts\":" << (e.begin_s - t0) * 1e6 << "}";
        emit(entry.str());
        break;
      case TraceEventKind::Task:
        entry << "{\"name\":\"" << json_escape(e.klass) << ' '
              << e.key.to_string() << "\",\"cat\":\"" << json_escape(e.klass)
              << "\",\"ph\":\"X\",\"pid\":" << e.rank << ",\"tid\":"
              << e.worker << ",\"ts\":" << (e.begin_s - t0) * 1e6
              << ",\"dur\":" << e.duration() * 1e6 << "}";
        emit(entry.str());
        break;
      case TraceEventKind::Send:
      case TraceEventKind::Recv:
        entry << "{\"name\":\"" << json_escape(e.klass) << ' '
              << e.key.to_string() << "\",\"cat\":\"comm\",\"ph\":\"X\","
              << "\"pid\":" << e.rank << ",\"tid\":" << e.worker
              << ",\"ts\":" << (e.begin_s - t0) * 1e6
              << ",\"dur\":" << e.duration() * 1e6
              << ",\"args\":{\"peer\":" << e.peer << ",\"flow\":" << e.flow
              << ",\"bytes\":" << e.bytes
              << ",\"retransmits\":" << e.retransmits << "}}";
        emit(entry.str());
        break;
      case TraceEventKind::Idle:
        entry << "{\"name\":\"" << json_escape(e.klass)
              << "\",\"cat\":\"idle\",\"ph\":\"X\",\"pid\":" << e.rank
              << ",\"tid\":" << e.worker << ",\"ts\":" << (e.begin_s - t0) * 1e6
              << ",\"dur\":" << e.duration() * 1e6 << "}";
        emit(entry.str());
        break;
    }

    // One flow arrow per delivered remote section: anchored at the producer
    // task's end, terminating at the consumer task's begin (bp:"e" binds the
    // arrowhead to the enclosing slice).
    if (e.kind == TraceEventKind::Recv && !e.deps.empty()) {
      const auto producer = tasks.find(e.deps.front());
      const auto consumer = tasks.find(e.key);
      if (producer != tasks.end() && consumer != tasks.end()) {
        const TraceEvent& p = *producer->second;
        const TraceEvent& c = *consumer->second;
        const std::uint64_t id = ++arrow_id;
        std::ostringstream s;
        s.precision(10);
        s << "{\"name\":\"halo\",\"cat\":\"dataflow\",\"ph\":\"s\",\"id\":"
          << id << ",\"pid\":" << p.rank << ",\"tid\":" << p.worker
          << ",\"ts\":" << (p.end_s - t0) * 1e6 << "}";
        emit(s.str());
        std::ostringstream f;
        f.precision(10);
        f << "{\"name\":\"halo\",\"cat\":\"dataflow\",\"ph\":\"f\",\"bp\":"
          << "\"e\",\"id\":" << id << ",\"pid\":" << c.rank << ",\"tid\":"
          << c.worker << ",\"ts\":" << (c.begin_s - t0) * 1e6 << "}";
        emit(f.str());
      }
    }
  }
  os << "\n]\n";
}

void print_ascii_gantt(const std::vector<TraceEvent>& events, std::ostream& os,
                       int columns) {
  if (events.empty()) {
    os << "(empty trace)\n";
    return;
  }
  double t0 = std::numeric_limits<double>::max();
  double t1 = std::numeric_limits<double>::lowest();
  for (const auto& e : events) {
    if (e.kind == TraceEventKind::Steal || e.kind == TraceEventKind::Idle) {
      continue;
    }
    t0 = std::min(t0, e.begin_s);
    t1 = std::max(t1, e.end_s);
  }
  if (t1 < t0) {
    os << "(empty trace)\n";
    return;
  }
  const double span = std::max(t1 - t0, 1e-12);
  const double bucket = span / columns;

  // Lane per (rank, worker); within a bucket the class covering the most time
  // wins; idle buckets print '.'. Idle events are skipped (they are the gaps)
  // and steals are zero-width.
  std::map<std::pair<int, int>, std::vector<std::map<char, double>>> lanes;
  for (const auto& e : events) {
    if (e.kind == TraceEventKind::Steal || e.kind == TraceEventKind::Idle) {
      continue;
    }
    auto& lane = lanes[{e.rank, e.worker}];
    if (lane.empty()) lane.resize(static_cast<std::size_t>(columns));
    const char initial = e.klass.empty() ? '?' : e.klass.front();
    int first = static_cast<int>((e.begin_s - t0) / bucket);
    int last = static_cast<int>((e.end_s - t0) / bucket);
    first = std::clamp(first, 0, columns - 1);
    last = std::clamp(last, 0, columns - 1);
    for (int cell = first; cell <= last; ++cell) {
      const double cell_t0 = t0 + cell * bucket;
      const double cell_t1 = cell_t0 + bucket;
      const double overlap =
          std::min(e.end_s, cell_t1) - std::max(e.begin_s, cell_t0);
      if (overlap > 0.0) lane[static_cast<std::size_t>(cell)][initial] += overlap;
    }
  }

  os << "time -> (" << span * 1e3 << " ms total, " << columns << " buckets; "
     << "letter = first letter of dominant task class, '.' = idle)\n";
  for (const auto& [id, lane] : lanes) {
    if (id.second == kTraceLaneSend) {
      os << "r" << id.first << "tx |";
    } else if (id.second == kTraceLaneRecv) {
      os << "r" << id.first << "rx |";
    } else {
      os << "r" << id.first << "w" << id.second << " |";
    }
    for (const auto& cell : lane) {
      char best = '.';
      double best_time = 0.0;
      for (const auto& [initial, time] : cell) {
        if (time > best_time) {
          best_time = time;
          best = initial;
        }
      }
      os << best;
    }
    os << "|\n";
  }
}

}  // namespace repro::rt
