#include "runtime/trace.hpp"

#include <algorithm>
#include <limits>

#include "support/stats.hpp"

namespace repro::rt {

void Tracer::record(TraceEvent event) {
  if (!enabled_) return;
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

TraceReport analyze_trace(const std::vector<TraceEvent>& events,
                          int workers_per_rank) {
  TraceReport report;
  if (events.empty()) return report;

  double t0 = std::numeric_limits<double>::max();
  double t1 = std::numeric_limits<double>::lowest();
  std::map<int, double> busy_by_rank;
  std::map<std::string, std::vector<double>> durations;

  for (const auto& e : events) {
    t0 = std::min(t0, e.begin_s);
    t1 = std::max(t1, e.end_s);
    busy_by_rank[e.rank] += e.duration();
    durations[e.klass].push_back(e.duration());
    report.count_by_klass[e.klass] += 1;
  }
  report.span_s = t1 - t0;

  for (const auto& [rank, busy] : busy_by_rank) {
    const double capacity = report.span_s * workers_per_rank;
    report.occupancy_by_rank[rank] = capacity > 0.0 ? busy / capacity : 0.0;
  }
  for (auto& [klass, samples] : durations) {
    report.median_duration_by_klass[klass] = median(samples);
  }
  return report;
}

void write_trace_csv(const std::vector<TraceEvent>& events, std::ostream& os) {
  os << "rank,worker,klass,key,begin_s,end_s,duration_s\n";
  for (const auto& e : events) {
    os << e.rank << ',' << e.worker << ',' << e.klass << ','
       << e.key.to_string() << ',' << e.begin_s << ',' << e.end_s << ','
       << e.duration() << '\n';
  }
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os) {
  double t0 = std::numeric_limits<double>::max();
  for (const auto& e : events) t0 = std::min(t0, e.begin_s);
  if (events.empty()) t0 = 0.0;

  os << "[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << e.klass << ' ' << e.key.to_string()
       << "\",\"cat\":\"" << e.klass << "\",\"ph\":\"X\",\"pid\":" << e.rank
       << ",\"tid\":" << e.worker << ",\"ts\":" << (e.begin_s - t0) * 1e6
       << ",\"dur\":" << e.duration() * 1e6 << "}";
  }
  os << "\n]\n";
}

void print_ascii_gantt(const std::vector<TraceEvent>& events, std::ostream& os,
                       int columns) {
  if (events.empty()) {
    os << "(empty trace)\n";
    return;
  }
  double t0 = std::numeric_limits<double>::max();
  double t1 = std::numeric_limits<double>::lowest();
  for (const auto& e : events) {
    t0 = std::min(t0, e.begin_s);
    t1 = std::max(t1, e.end_s);
  }
  const double span = std::max(t1 - t0, 1e-12);
  const double bucket = span / columns;

  // Lane per (rank, worker); within a bucket the class covering the most time
  // wins; idle buckets print '.'.
  std::map<std::pair<int, int>, std::vector<std::map<char, double>>> lanes;
  for (const auto& e : events) {
    auto& lane = lanes[{e.rank, e.worker}];
    if (lane.empty()) lane.resize(static_cast<std::size_t>(columns));
    const char initial = e.klass.empty() ? '?' : e.klass.front();
    int first = static_cast<int>((e.begin_s - t0) / bucket);
    int last = static_cast<int>((e.end_s - t0) / bucket);
    first = std::clamp(first, 0, columns - 1);
    last = std::clamp(last, 0, columns - 1);
    for (int cell = first; cell <= last; ++cell) {
      const double cell_t0 = t0 + cell * bucket;
      const double cell_t1 = cell_t0 + bucket;
      const double overlap =
          std::min(e.end_s, cell_t1) - std::max(e.begin_s, cell_t0);
      if (overlap > 0.0) lane[static_cast<std::size_t>(cell)][initial] += overlap;
    }
  }

  os << "time -> (" << span * 1e3 << " ms total, " << columns << " buckets; "
     << "letter = first letter of dominant task class, '.' = idle)\n";
  for (const auto& [id, lane] : lanes) {
    os << "r" << id.first << "w" << id.second << " |";
    for (const auto& cell : lane) {
      char best = '.';
      double best_time = 0.0;
      for (const auto& [initial, time] : cell) {
        if (time > best_time) {
          best_time = time;
          best = initial;
        }
      }
      os << best;
    }
    os << "|\n";
  }
}

}  // namespace repro::rt
