#include "runtime/ptg.hpp"

#include <stdexcept>

namespace repro::rt::ptg {

TaskClass& TaskClass::parameter(const std::string& name, int lo, int hi) {
  return parameter(
      name, [lo](const Params&) { return lo; },
      [hi](const Params&) { return hi; });
}

TaskClass& TaskClass::parameter(const std::string& name,
                                std::function<int(const Params&)> lo,
                                std::function<int(const Params&)> hi) {
  if (ranges_.size() >= 3) {
    throw std::runtime_error("TaskClass " + name_ +
                             ": at most 3 parameters supported");
  }
  ranges_.push_back(ParamRange{name, std::move(lo), std::move(hi)});
  return *this;
}

TaskClass& TaskClass::rank(std::function<int(const Params&)> fn) {
  rank_fn_ = std::move(fn);
  return *this;
}

TaskClass& TaskClass::priority(std::function<int(const Params&)> fn) {
  priority_fn_ = std::move(fn);
  return *this;
}

TaskClass& TaskClass::klass(std::function<std::string(const Params&)> fn) {
  klass_fn_ = std::move(fn);
  return *this;
}

TaskClass& TaskClass::flow(FlowExpr expr) {
  flows_.push_back(std::move(expr));
  return *this;
}

TaskClass& TaskClass::body(
    std::function<void(TaskContext&, const Params&)> fn) {
  body_ = std::move(fn);
  return *this;
}

TaskClass& PtgProgram::task_class(const std::string& name) {
  classes_.push_back(std::make_unique<TaskClass>(
      name, static_cast<std::uint32_t>(classes_.size())));
  return *classes_.back();
}

void PtgProgram::enumerate(const TaskClass& tc, std::size_t depth,
                           Params& params, TaskGraph& graph) const {
  if (depth == tc.ranges_.size()) {
    TaskSpec spec;
    spec.key = TaskKey{tc.type_id_, params[0], params[1], params[2]};
    spec.rank = tc.rank_fn_ ? tc.rank_fn_(params) : 0;
    spec.priority = tc.priority_fn_ ? tc.priority_fn_(params) : 0;
    spec.klass = tc.klass_fn_ ? tc.klass_fn_(params) : tc.name_;
    for (const FlowExpr& expr : tc.flows_) {
      for (const FlowEnd& end : expr(params)) {
        spec.inputs.push_back(
            FlowRef{TaskKey{end.producer_class, end.producer_params[0],
                            end.producer_params[1], end.producer_params[2]},
                    end.slot});
      }
    }
    const Params captured = params;
    auto body = tc.body_;
    spec.body = [body, captured](TaskContext& ctx) { body(ctx, captured); };
    graph.add_task(std::move(spec));
    return;
  }
  const ParamRange& range = tc.ranges_[depth];
  const int lo = range.lo(params);
  const int hi = range.hi(params);
  for (int value = lo; value <= hi; ++value) {
    params.v[depth] = value;
    enumerate(tc, depth + 1, params, graph);
  }
  params.v[depth] = 0;
}

TaskGraph PtgProgram::unfold() const {
  TaskGraph graph;
  for (const auto& tc : classes_) {
    if (!tc->body_) {
      throw std::runtime_error("TaskClass " + tc->name_ + " has no body");
    }
    Params params;
    enumerate(*tc, 0, params, graph);
  }
  return graph;
}

}  // namespace repro::rt::ptg
