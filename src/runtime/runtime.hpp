// taskrt: a distributed dataflow task runtime (the PaRSEC substitute).
//
// The runtime executes a sealed TaskGraph over `nranks` virtual processes
// living in one OS process. Each virtual process owns:
//   * a pool of compute worker threads fed by a pluggable scheduler (shared
//     priority queue or per-worker deques with stealing; see scheduler.hpp),
//   * a dedicated communication thread pair (sender draining an outbox into
//     the Transport, receiver delivering incoming messages), mirroring the
//     paper's "one thread dedicated for communication" configuration.
//
// Dataflow semantics: a task becomes ready when every input flow has been
// satisfied. Local flows (producer and consumer on the same rank) share the
// published buffer pointer; remote flows are serialized into a net::Message
// and deep-copied on the receiving side, so cross-node traffic is explicit
// and measurable. Completed tasks release their inputs immediately and their
// consumed outputs after fan-out, keeping memory bounded across iterations;
// outputs with no consumers are retained and readable via result().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <map>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runtime/buffer.hpp"
#include "runtime/graph.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"

namespace repro::net {
class PersistentChannel;
}

namespace repro::rt {

class RuntimeTaskContext;  // runtime-backed TaskContext (runtime.cpp)

struct Config {
  int nranks = 1;
  int workers_per_rank = 1;
  /// If false, worker threads call Transport::send inline instead of handing
  /// messages to the dedicated sender thread (ablation knob).
  bool dedicated_comm_thread = true;
  bool trace = false;
  SchedPolicy scheduler = SchedPolicy::PriorityFifo;
  /// Combine all flows a completing task sends to the same destination node
  /// into one message (PaRSEC-style per-node aggregation). Fewer, larger
  /// messages; ablation knob for the CA experiments.
  bool aggregate_messages = false;
  /// Builds the message channel for each run — the hook for fault-injection
  /// and reliability stacks (src/fault). Null = plain in-memory Transport.
  net::ChannelFactory channel_factory{};
  /// Registry the runtime scrapes into (rt_* families; the default Transport
  /// also registers its net_* families here). Null = private registry,
  /// reachable via Runtime::metrics().
  std::shared_ptr<obs::MetricsRegistry> metrics{};
  /// Seed for the WorkStealing victim-selection streams; each (rank, worker)
  /// derives its own deterministic sequence. Ignored by the other policies.
  std::uint64_t sched_seed = 0;
  /// Schedule-fuzzing instrumentation (see SchedTestHook). Null in
  /// production; set by tests to perturb victim choice and interleavings.
  std::shared_ptr<SchedTestHook> sched_test_hook{};
  /// Delivery hook for telemetry-format messages (wire format
  /// kWireTelemetry, payload = obs::encode_telemetry doubles). Called on the
  /// destination rank's receiver thread; null drops telemetry on the floor.
  std::function<void(int src_rank, const std::vector<double>& payload)>
      telemetry_sink{};
};

struct RunStats {
  double wall_time_s = 0.0;
  std::size_t tasks_executed = 0;
  std::uint64_t messages = 0;      ///< remote messages (inter-rank only)
  std::uint64_t bytes = 0;         ///< remote payload+header bytes
  net::SizeHistogram message_sizes;  ///< log2-bucket size distribution
};

/// Execution context handed to task bodies.
///
/// Abstract so a context can be *virtualized*: the runtime hands bodies a
/// RuntimeTaskContext bound to live task state, while graph transformations
/// (graph_transform.hpp) wrap member bodies of a fused task in a shim context
/// that reroutes inputs/outputs through in-task staging. Task bodies only
/// ever see this interface, so they compose with any such rewrite.
class TaskContext {
 public:
  virtual ~TaskContext() = default;

  const TaskKey& key() const { return spec().key; }
  virtual const TaskSpec& spec() const = 0;
  virtual int rank() const = 0;
  virtual int worker() const = 0;

  /// i-th input flow's data (i indexes TaskSpec::inputs).
  std::span<const double> input(std::size_t i) const {
    Buffer buffer = input_buffer(i);
    return {buffer->data(), buffer->size()};
  }
  virtual Buffer input_buffer(std::size_t i) const = 0;
  virtual std::size_t num_inputs() const = 0;

  /// Publish output slot `slot`. Each slot may be published at most once.
  void publish(std::uint16_t slot, std::vector<double>&& data) {
    publish(slot, make_buffer(std::move(data)));
  }
  virtual void publish(std::uint16_t slot, Buffer buffer) = 0;

  /// Persistent-channel mode (see net::PersistentChannel): a mutable
  /// pre-registered buffer for output slot `slot`, reused across instances
  /// with zero steady-state allocations. Returns nullptr when the run's
  /// channel stack has no persistent channel or the slot carries no
  /// negotiated route — callers fall back to the classic publish() path, so
  /// task bodies stay channel-agnostic.
  virtual std::shared_ptr<std::vector<double>> acquire_route_buffer(
      std::uint16_t slot) = 0;

  /// Publish `slot` with a buffer from acquire_route_buffer() and dispatch
  /// it immediately from inside the task body (early-bird): routed remote
  /// consumers receive it as partitioned fragment sends out of the
  /// registered buffer (zero-copy), local consumers are woken right away.
  /// complete_task skips slots already dispatched here. The slot must not
  /// also be publish()ed.
  virtual void publish_fragments(std::uint16_t slot,
                                 std::shared_ptr<std::vector<double>> data) = 0;
};

class Runtime {
 public:
  explicit Runtime(Config config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute the graph to completion. The graph is sealed here if the caller
  /// has not sealed it yet. Throws if any task body threw (first error wins)
  /// or if the graph deadlocks (cyclic dependencies).
  ///
  /// A Runtime instance is resident: run() may be called again with another
  /// graph (the serve layer runs a stream of graphs on one instance). Each
  /// run starts from a clean slate — fresh schedulers, outboxes, channel,
  /// task states, and re-attached metric handles — so no ready-queue or
  /// metric state leaks from one graph into the next (regression-tested by
  /// runtime_test's ResidentRuntime suite).
  RunStats run(TaskGraph& graph);

  /// Release everything retained from the last run (task states incl. kept
  /// output buffers, schedulers, outboxes, channel, graph pointer). After
  /// this, result() throws until the next run(). Call between back-to-back
  /// graphs on a resident runtime once results are extracted, so a large
  /// job's buffers don't sit in memory while unrelated jobs execute.
  void release_run();

  /// After run(): buffer published on (task, slot). Only slots with no
  /// consumers are guaranteed to be retained. Throws when absent.
  Buffer result(const TaskKey& key, std::uint16_t slot) const;

  const Tracer& tracer() const { return tracer_; }
  const Config& config() const { return config_; }

  /// Ship `payload` doubles to `dst_rank`'s telemetry sink as one wire
  /// message (format kWireTelemetry, charged to the channel like any other
  /// traffic: obs::kTelemetryWireBytes each). Callable from task bodies and
  /// hooks while the run is live; drivers use it to forward their rank-local
  /// snapshots to rank 0.
  void post_telemetry(int src_rank, int dst_rank, std::vector<double> payload);

  /// Cumulative progress counters for one rank, assembled from the run's
  /// live metric handles (zeros when obs is compiled out, except `superstep`
  /// and `t_s` which are tracked independently). The `rank` field is set.
  obs::TelemetrySnapshot rank_sample(int rank) const;

  /// Driver-visible superstep odometer feeding rank_sample() and the flight
  /// recorder (the runtime itself has no superstep notion).
  void set_superstep(int rank, std::uint64_t superstep);

  /// Always-on per-worker flight recorder (lane = rank * workers_per_rank +
  /// worker). Empty object when obs is compiled out.
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

  /// Scrape point for this runtime's rt_* (and default transport's net_*)
  /// metric families. Never null.
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

 private:
  friend class RuntimeTaskContext;

  struct TaskState {
    std::atomic<int> remaining{0};
    std::vector<Buffer> inputs;
    std::vector<std::pair<std::uint16_t, Buffer>> outputs;
    /// Slots dispatched eagerly from inside the body (publish_fragments);
    /// complete_task skips them. Body-thread-only, then read by
    /// complete_task on the same thread — no lock needed.
    std::vector<std::uint16_t> eager_slots;
    std::atomic<bool> executed{false};
  };

  class Outbox {
   public:
    void push(net::Message msg);
    std::optional<net::Message> pop_blocking();
    void close();

   private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<net::Message> queue_;
    bool closed_ = false;
  };

  void worker_loop(int rank, int worker);
  void sender_loop(int rank);
  void receiver_loop(int rank);

  void execute_task(std::size_t index, int rank, int worker);
  void complete_task(std::size_t index, int rank);
  /// `remote` marks deliveries arriving via the receiver thread; when such a
  /// delivery completes the consumer's inputs the ready entry is tagged as
  /// halo-released for the idle taxonomy.
  void deliver_input(std::size_t consumer_index, std::uint16_t input_pos,
                     Buffer buffer, bool remote = false);
  void enqueue_ready(std::size_t index, bool halo = false);
  void send_remote(int src_rank, std::size_t consumer_index,
                   std::uint16_t input_pos, const Buffer& buffer);
  void send_remote_aggregated(
      int src_rank, int dst_rank,
      const std::vector<std::pair<const TaskGraph::ConsumerEdge*,
                                  const Buffer*>>& sections);
  void post_message(int src_rank, net::Message msg);
  /// Hand `msg` to the channel, recording a Send span (wire timestamps,
  /// bytes, flow id) on the rank's tx lane when tracing. Throws like
  /// Channel::send; callers keep their own error handling.
  void channel_send(int src_rank, net::Message msg);
  void fail(const std::string& message);
  void publish_output(std::size_t task_index, std::uint16_t slot, Buffer buf);
  /// Body-side eager dispatch behind TaskContext::publish_fragments.
  void publish_eager(std::size_t task_index, std::uint16_t slot,
                     std::shared_ptr<std::vector<double>> data);
  /// Collect route-annotated remote flows and negotiate them on the run's
  /// PersistentChannel (no-op when the stack has none or no flow is routed).
  void negotiate_routes(const TaskGraph& graph);
  void setup_metrics();

  Config config_;
  Tracer tracer_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::FlightRecorder flight_;
  /// Per-rank superstep odometer (set_superstep / rank_sample). Plain
  /// atomics, live even when obs is compiled out.
  std::vector<std::atomic<std::uint64_t>> superstep_;

  // Per-run obs handles, re-attached by setup_metrics() (always non-null
  // during run(); no-op objects when obs is compiled out).
  std::vector<std::shared_ptr<obs::Counter>> worker_tasks_;  // rank * W + w
  std::vector<std::shared_ptr<obs::Counter>> tasks_enqueued_;  // per rank
  std::vector<std::shared_ptr<obs::Gauge>> comm_busy_;         // per rank
  std::vector<std::shared_ptr<obs::Gauge>> idle_gauges_;  // rank * 3 + class
  std::vector<std::shared_ptr<obs::Gauge>> depth_gauges_;      // per rank
  std::vector<std::shared_ptr<obs::Counter>> steal_counters_;  // per rank
  std::vector<std::shared_ptr<obs::Counter>> sent_messages_;   // per rank
  std::vector<std::shared_ptr<obs::Counter>> sent_bytes_;      // per rank
  /// Per-lane executed-task counters (rt_lane_tasks_executed_total{lane=}),
  /// one per distinct TaskSpec::lane >= 0 in the current graph. Lanes from
  /// the previous run that the current graph lacks are removed from the
  /// registry, so a resident runtime never scrapes stale tenant series.
  std::map<int, std::shared_ptr<obs::Counter>> lane_tasks_;

  // Per-run state (valid during/after run()).
  TaskGraph* graph_ = nullptr;
  std::vector<TaskState> states_;
  std::vector<std::unique_ptr<Scheduler>> queues_;
  std::vector<std::unique_ptr<Outbox>> outboxes_;
  std::shared_ptr<net::Channel> channel_;
  /// The run's persistent channel, when the factory stacked one (owned by
  /// channel_); null otherwise. Set once before threads spawn.
  net::PersistentChannel* pchan_ = nullptr;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> next_flow_{1};  ///< trace flow-id source
  std::atomic<std::size_t> remaining_tasks_{0};
  std::atomic<std::size_t> executed_tasks_{0};

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;

  std::mutex error_mutex_;
  std::string error_;
  std::atomic<bool> aborted_{false};
};

}  // namespace repro::rt
