#include "runtime/dtd.hpp"

#include "runtime/runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::rt::dtd {

std::span<const double> DtdTaskView::read(DataHandle handle) const {
  return ctx_.input(read_pos(handle));
}

Buffer DtdTaskView::read_buffer(DataHandle handle) const {
  return ctx_.input_buffer(read_pos(handle));
}

std::vector<double> DtdTaskView::read_vector(DataHandle handle) const {
  const auto span = read(handle);
  return {span.begin(), span.end()};
}

void DtdTaskView::write(DataHandle handle, std::vector<double>&& data) {
  ctx_.publish(write_slot(handle), std::move(data));
}

void DtdTaskView::write(DataHandle handle, Buffer buffer) {
  ctx_.publish(write_slot(handle), std::move(buffer));
}

std::size_t DtdTaskView::read_pos(DataHandle handle) const {
  for (const auto& [id, pos] : reads_) {
    if (id == handle.id) return pos;
  }
  throw std::logic_error("DTD: datum not declared Read/ReadWrite");
}

std::uint16_t DtdTaskView::write_slot(DataHandle handle) const {
  for (const auto& [id, slot] : writes_) {
    if (id == handle.id) return slot;
  }
  throw std::logic_error("DTD: datum not declared Write/ReadWrite");
}

DataHandle DtdProgram::data(const std::string& name, int rank,
                            std::vector<double> initial) {
  const auto id = static_cast<std::uint32_t>(data_.size());
  Datum datum;
  datum.name = name;
  datum.rank = rank;
  datum.producer_task = static_cast<std::uint32_t>(tasks_.size());
  datum.producer_slot = 0;
  data_.push_back(datum);

  // Source task publishing the initial version on the datum's home rank.
  InsertedTask source;
  source.name = "data:" + name;
  source.rank = rank;
  source.writes.emplace_back(id, 0);
  auto payload = std::make_shared<const std::vector<double>>(std::move(initial));
  source.body = [payload, id](DtdTaskView& view) {
    view.write(DataHandle{id}, payload);
  };
  tasks_.push_back(std::move(source));
  return DataHandle{id};
}

void DtdProgram::insert_task(const std::string& name, int rank,
                             std::vector<std::pair<DataHandle, Access>> accesses,
                             DtdBody body) {
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i + 1; j < accesses.size(); ++j) {
      if (accesses[i].first == accesses[j].first) {
        throw std::invalid_argument("DTD: datum accessed twice by task " +
                                    name);
      }
    }
    if (accesses[i].first.id >= data_.size()) {
      throw std::out_of_range("DTD: unknown datum in task " + name);
    }
  }

  InsertedTask task;
  task.name = name;
  task.rank = rank;
  task.body = std::move(body);

  const auto task_index = static_cast<std::uint32_t>(tasks_.size());
  std::uint16_t next_slot = 0;
  for (const auto& [handle, access] : accesses) {
    Datum& datum = data_[handle.id];
    if (access == Access::Read || access == Access::ReadWrite) {
      const TaskKey producer{0, static_cast<std::int32_t>(datum.producer_task),
                             0, 0};
      task.reads.emplace_back(handle.id,
                              FlowRef{producer, datum.producer_slot});
    }
    if (access == Access::Write || access == Access::ReadWrite) {
      task.writes.emplace_back(handle.id, next_slot);
      datum.producer_task = task_index;
      datum.producer_slot = next_slot;
      ++next_slot;
    }
  }
  tasks_.push_back(std::move(task));
}

TaskGraph DtdProgram::compile() const {
  TaskGraph graph;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const InsertedTask& task = tasks_[i];
    TaskSpec spec;
    spec.key = TaskKey{0, static_cast<std::int32_t>(i), 0, 0};
    spec.rank = task.rank;
    spec.klass = task.name;

    std::vector<std::pair<std::uint32_t, std::size_t>> read_map;
    for (const auto& [datum_id, flow] : task.reads) {
      read_map.emplace_back(datum_id, spec.inputs.size());
      spec.inputs.push_back(flow);
    }
    const auto& writes = task.writes;
    const auto body = task.body;
    spec.body = [body, read_map, writes](TaskContext& ctx) {
      DtdTaskView view(ctx, read_map, writes);
      body(view);
    };
    graph.add_task(std::move(spec));
  }
  return graph;
}

TaskKey DtdProgram::result_key(DataHandle handle) const {
  if (handle.id >= data_.size()) throw std::out_of_range("DTD: bad handle");
  return TaskKey{0,
                 static_cast<std::int32_t>(data_[handle.id].producer_task), 0,
                 0};
}

std::uint16_t DtdProgram::result_slot(DataHandle handle) const {
  if (handle.id >= data_.size()) throw std::out_of_range("DTD: bad handle");
  return data_[handle.id].producer_slot;
}

}  // namespace repro::rt::dtd
