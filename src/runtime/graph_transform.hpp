// Task-graph transformation passes (Eijkhout, "Task Graph Transformations
// for Latency Tolerance"): rewrites that change the granularity of a sealed
// algorithm unfolding without changing its dataflow semantics.
//
// The one pass implemented today is fuse_supersteps: given dependence-cone
// metadata on tasks (TaskSpec::chain / chain_step), collapse k consecutive
// members of each chain into one pipelined wavefront task. The fused task
// runs its members' bodies back to back on one worker — intra-chain buffers
// stay in-task (cache-resident, never enter the dataflow engine) and every
// cross-chain edge that used to fire once per member now fires once per k
// members. For the CA stencil this is exactly cross-node temporal blocking:
// the builder emits a fuse-ready graph (deep halos on every neighbor side,
// cross-tile edges only at window boundaries) and this pass turns the k
// per-step tasks of each tile window into one wavefront sweep.
//
// The pass is generic: it never inspects task bodies or keys beyond the
// chain metadata, so any workload whose unfolding marks its pipelines
// (task_cg, multigrid smoothers, ...) can reuse it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "runtime/graph.hpp"

namespace repro::rt {

/// A fuse request was structurally illegal for the given graph: fusing would
/// invert an edge (intra-group backward dependence), create a dependence
/// cycle between fused groups, mix ranks or lanes inside one group, or the
/// chain metadata itself is malformed (duplicate chain_step).
class GraphTransformError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What fuse_supersteps did, for logs / metrics / tests.
struct FuseReport {
  int depth = 1;                  ///< requested k
  std::size_t chains = 0;         ///< distinct nonzero chain ids seen
  std::size_t tasks_before = 0;   ///< graph size going in
  std::size_t tasks_after = 0;    ///< graph size coming out
  std::size_t fused_tasks = 0;    ///< emitted tasks wrapping >= 2 members
  std::size_t fused_members = 0;  ///< input tasks absorbed into fused tasks
};

/// Fuse k consecutive supersteps along every dependence chain of `graph`,
/// rewriting it in place (the graph must be unsealed; it stays unsealed).
///
/// Members of each nonzero chain are ordered by chain_step and grouped into
/// ordinal windows of k; each window becomes one task that keeps the LAST
/// member's key, rank, lane and chain metadata (so downstream key-based
/// lookups — result(), gather — keep working) and whose klass is
/// "fused<m>|<last member's klass>". Edges are rewired:
///   * member -> member inside a window becomes in-task staging: the fused
///     body runs members in chain order under shim TaskContexts that resolve
///     those inputs from a staging table instead of the dataflow engine;
///   * edges crossing a window boundary survive as real flows, with the
///     producer-side slot remapped onto the fused task (the last member's
///     slots keep their numbers; earlier members' externally-consumed slots
///     move to fresh slot ids above every slot the input graph references).
///     Route annotations (persistent channels) are preserved verbatim.
/// Outputs of non-last members that nobody consumes are dropped; the last
/// member's unconsumed outputs are re-published so result() still sees them.
///
/// Legality is checked, not assumed: an intra-window edge from a later to an
/// earlier member, or a window-level dependence cycle (which is what fusing
/// a graph whose chains exchange every step produces), throws
/// GraphTransformError and leaves the graph untouched. k == 1 or a graph
/// with no chain metadata is an exact no-op. Tasks per chain after fusing =
/// ceil(members / k).
FuseReport fuse_supersteps(TaskGraph& graph, int k);

}  // namespace repro::rt
