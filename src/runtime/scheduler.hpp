// Ready-task scheduling: the pluggable half of the runtime's execution model.
//
// PaRSEC ships several schedulers (LFQ, LTQ, AP, ...) precisely because the
// ready-queue discipline decides how well workers stay busy and how early
// halo-producing tasks reach the wire. This header carries the same idea:
//   * SharedReadyQueue — one mutex-guarded priority heap per rank (the
//     original design; a contention point, but simple and strictly ordered).
//   * WorkStealingScheduler — one deque pair per worker with seeded random
//     stealing (the LFQ/LTQ analogue): owners push and pop their own low
//     deque LIFO for cache locality, thieves take from the opposite end
//     (FIFO), and prioritized tasks go to a separate priority-ordered lane
//     that everyone drains front-first so halo publishes leave early.
//
// Every discipline preserves the dataflow contract — a task runs only after
// all inputs arrive — so results are bit-identical regardless of policy.
// tests/sched_fuzz_test.cpp turns that claim into a tested invariant via
// SchedTestHook, which lets a harness perturb victim selection and inject
// delays at the scheduler's decision points.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace repro::rt {

class Tracer;

/// Ready-queue discipline (PaRSEC ships several schedulers; these are the
/// orderings that matter for a stencil workload).
enum class SchedPolicy {
  PriorityFifo,  ///< higher priority first, FIFO within a priority (default)
  Fifo,          ///< plain arrival order, priorities ignored
  Lifo,          ///< newest-ready first (depth-first; cache-friendly)
  WorkStealing,  ///< per-worker deques + seeded random stealing
};

/// Parse a command-line spelling ("priority", "fifo", "lifo", "steal").
/// Throws std::invalid_argument on anything else.
SchedPolicy parse_sched_policy(const std::string& name);

/// Canonical spelling for a policy (inverse of parse_sched_policy).
const char* sched_policy_name(SchedPolicy policy);

/// Test-only instrumentation points inside the scheduler, used by the
/// schedule-fuzzing harness to force adversarial interleavings. All callbacks
/// may be invoked concurrently from worker threads and must be thread-safe.
/// Production runs leave the hook null and pay nothing.
struct SchedTestHook {
  /// Override victim selection: given (rank, thief worker, workers per rank,
  /// running attempt counter), return the worker id to rob first. Any int is
  /// accepted — the scheduler reduces it into range and skips the thief.
  std::function<int(int rank, int thief, int workers, std::uint64_t attempt)>
      pick_victim;
  /// Called right before the thief inspects the chosen victim's deque; a
  /// harness can sleep or yield here to shift the steal/pop race.
  std::function<void(int rank, int thief, int victim, std::uint64_t attempt)>
      before_steal;
  /// Called by the worker loop before each task body runs, under every
  /// policy (so PriorityFifo schedules can be perturbed too). `seq` is the
  /// entry's enqueue sequence number.
  std::function<void(int rank, int worker, std::uint64_t seq)> before_execute;
};

/// One ready task, as seen by a scheduler.
struct ReadyEntry {
  int priority = 0;
  std::uint64_t seq = 0;
  std::uint32_t task = 0;
  /// The delivery completing this task's inputs came from the receiver
  /// thread (a remote halo), so a worker whose idle gap ends on this entry
  /// was waiting on the network. Set by the runtime; ignored by ordering.
  bool halo = false;
  /// Set by a stealing scheduler when the entry was taken from another
  /// worker's deque; classifies the thief's preceding gap as steal latency.
  bool stolen = false;

  /// std::priority_queue is a max-heap: higher priority first, then FIFO.
  friend bool operator<(const ReadyEntry& a, const ReadyEntry& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }
};

/// Per-rank ready-task dispenser. push() may be called from any thread;
/// pop_blocking() only from this rank's workers (worker ids 0..W-1). After
/// stop(), pop_blocking drains whatever is left and then returns nullopt.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Hand a ready task to the scheduler. `from_worker` is the calling
  /// worker's id when the caller is one of this rank's workers, -1 when the
  /// push comes from outside (receiver thread, main thread).
  virtual void push(ReadyEntry entry, int from_worker) = 0;

  /// Block until a task is available (returned) or the scheduler is stopped
  /// and empty (nullopt).
  virtual std::optional<ReadyEntry> pop_blocking(int worker) = 0;

  /// Wake all blocked workers; subsequent pops drain remaining entries.
  virtual void stop() = 0;

  /// Depth gauge updated on push/pop (no-op handle when obs is disabled).
  virtual void set_depth_gauge(std::shared_ptr<obs::Gauge> gauge) = 0;

  /// Steal accounting (successful steals / empty-handed victim visits).
  /// Non-stealing schedulers accept and ignore the handles.
  virtual void set_steal_counters(std::shared_ptr<obs::Counter> steals,
                                  std::shared_ptr<obs::Counter> failed) = 0;
};

/// The original design: one mutex+condvar priority heap shared by all of the
/// rank's workers. Strict PriorityFifo/Fifo/Lifo ordering (the ordering
/// itself is encoded in the entries' priority/seq by the runtime).
class SharedReadyQueue final : public Scheduler {
 public:
  void push(ReadyEntry entry, int from_worker) override;
  std::optional<ReadyEntry> pop_blocking(int worker) override;
  void stop() override;
  void set_depth_gauge(std::shared_ptr<obs::Gauge> gauge) override {
    depth_ = std::move(gauge);
  }
  void set_steal_counters(std::shared_ptr<obs::Counter>,
                          std::shared_ptr<obs::Counter>) override {}

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<ReadyEntry> heap_;
  bool stopped_ = false;
  std::shared_ptr<obs::Gauge> depth_;
};

/// Per-worker deques with seeded random stealing (Chase–Lev style split,
/// guarded by a per-deque mutex rather than lock-free CAS — virtual ranks
/// share one process, so the simplicity is worth more than the nanoseconds).
///
/// Each worker owns two lanes:
///   * `high` — entries with priority > 0, kept priority-ordered (stable, so
///     FIFO within a priority). Everyone — owner and thief alike — takes
///     from the front, so the highest-priority ready task (e.g. a
///     halo-publishing boundary tile) runs at the earliest opportunity.
///   * `low`  — priority-0 entries. The owner pushes and pops at the back
///     (LIFO: the freshest task's tiles are still in cache); thieves take
///     from the front (FIFO: the oldest task, the one the owner would reach
///     last).
///
/// Wakeup protocol: `count_` tracks entries across all deques (incremented
/// after an insert, decremented after a removal). An idle worker that finds
/// nothing re-checks `count_` under `idle_mutex_` before sleeping, and every
/// push bumps `count_` and then notifies under the same mutex — so a sleeper
/// either sees the new count or is woken after entering the wait.
class WorkStealingScheduler final : public Scheduler {
 public:
  /// `seed` perturbs victim selection deterministically (each (rank, worker)
  /// derives its own stream). `hook` may be null; `tracer` may be null or
  /// disabled — successful steals are recorded as TraceEventKind::Steal.
  WorkStealingScheduler(int rank, int workers, std::uint64_t seed,
                        std::shared_ptr<SchedTestHook> hook, Tracer* tracer);

  void push(ReadyEntry entry, int from_worker) override;
  std::optional<ReadyEntry> pop_blocking(int worker) override;
  void stop() override;
  void set_depth_gauge(std::shared_ptr<obs::Gauge> gauge) override {
    depth_ = std::move(gauge);
  }
  void set_steal_counters(std::shared_ptr<obs::Counter> steals,
                          std::shared_ptr<obs::Counter> failed) override {
    steals_ = std::move(steals);
    failed_steals_ = std::move(failed);
  }

 private:
  // Padded to a cache line so two workers hammering adjacent deques don't
  // false-share the mutex words.
  struct alignas(64) WorkerDeque {
    std::mutex mutex;
    /// priority > 0 lanes, highest priority first; each bucket is FIFO by
    /// arrival. Keyed per level (not one sorted list) so an insert costs
    /// O(log #levels) — the stencil uses three levels, a sorted list would
    /// degrade to O(n) per push when most tasks are prioritized.
    std::map<int, std::deque<ReadyEntry>, std::greater<int>> high;
    std::deque<ReadyEntry> low;   ///< priority == 0, owner back / thief front
    Rng rng{0};                   ///< victim-selection stream (owner only)
    std::uint64_t attempts = 0;   ///< steal-scan counter (owner only)
  };

  void insert(WorkerDeque& deque, ReadyEntry entry);
  std::optional<ReadyEntry> take_high(WorkerDeque& deque);
  std::optional<ReadyEntry> pop_own(int worker);
  std::optional<ReadyEntry> steal_one(int thief);
  std::optional<ReadyEntry> take_front(WorkerDeque& deque);
  void notify_push();

  int rank_;
  int workers_;
  std::shared_ptr<SchedTestHook> hook_;
  Tracer* tracer_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;

  std::atomic<std::int64_t> count_{0};  ///< entries across all deques
  std::atomic<std::uint64_t> rr_{0};    ///< round-robin target for externals
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  bool stopped_ = false;

  std::shared_ptr<obs::Gauge> depth_;
  std::shared_ptr<obs::Counter> steals_;
  std::shared_ptr<obs::Counter> failed_steals_;
};

/// Build the scheduler for one rank. PriorityFifo/Fifo/Lifo share the
/// SharedReadyQueue (their ordering lives in the entries); WorkStealing gets
/// the per-worker deques.
std::unique_ptr<Scheduler> make_scheduler(SchedPolicy policy, int rank,
                                          int workers, std::uint64_t seed,
                                          std::shared_ptr<SchedTestHook> hook,
                                          Tracer* tracer);

}  // namespace repro::rt
