#include "runtime/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "runtime/trace.hpp"
#include "support/timing.hpp"

namespace repro::rt {

SchedPolicy parse_sched_policy(const std::string& name) {
  if (name == "priority") return SchedPolicy::PriorityFifo;
  if (name == "fifo") return SchedPolicy::Fifo;
  if (name == "lifo") return SchedPolicy::Lifo;
  if (name == "steal") return SchedPolicy::WorkStealing;
  throw std::invalid_argument(
      "unknown scheduler '" + name +
      "' (expected priority | fifo | lifo | steal)");
}

const char* sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::PriorityFifo: return "priority";
    case SchedPolicy::Fifo: return "fifo";
    case SchedPolicy::Lifo: return "lifo";
    case SchedPolicy::WorkStealing: return "steal";
  }
  return "?";
}

// ---------------------------------------------------------- shared queue --

void SharedReadyQueue::push(ReadyEntry entry, int /*from_worker*/) {
  {
    std::lock_guard lock(mutex_);
    heap_.push(entry);
  }
  if (depth_) depth_->add(1.0);
  cv_.notify_one();
}

std::optional<ReadyEntry> SharedReadyQueue::pop_blocking(int /*worker*/) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return !heap_.empty() || stopped_; });
  if (heap_.empty()) return std::nullopt;
  ReadyEntry entry = heap_.top();
  heap_.pop();
  if (depth_) depth_->add(-1.0);
  return entry;
}

void SharedReadyQueue::stop() {
  {
    std::lock_guard lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------- work stealing --

WorkStealingScheduler::WorkStealingScheduler(int rank, int workers,
                                             std::uint64_t seed,
                                             std::shared_ptr<SchedTestHook> hook,
                                             Tracer* tracer)
    : rank_(rank), workers_(workers), hook_(std::move(hook)), tracer_(tracer) {
  if (workers < 1) {
    throw std::invalid_argument("WorkStealingScheduler: need >= 1 worker");
  }
  deques_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto deque = std::make_unique<WorkerDeque>();
    // Distinct deterministic stream per (seed, rank, worker).
    SplitMix64 mix(seed);
    mix.state ^= 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rank + 1);
    mix.state ^= 0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(w + 1);
    deque->rng = Rng(mix.next());
    deques_.push_back(std::move(deque));
  }
}

void WorkStealingScheduler::insert(WorkerDeque& deque, ReadyEntry entry) {
  if (entry.priority > 0) {
    // Appending to the per-level bucket keeps each level FIFO by arrival;
    // the map orders levels highest-first for take_high.
    deque.high[entry.priority].push_back(entry);
  } else {
    deque.low.push_back(entry);
  }
}

std::optional<ReadyEntry> WorkStealingScheduler::take_high(WorkerDeque& deque) {
  if (deque.high.empty()) return std::nullopt;
  const auto it = deque.high.begin();  // highest priority level
  ReadyEntry entry = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) deque.high.erase(it);
  return entry;
}

void WorkStealingScheduler::notify_push() {
  count_.fetch_add(1, std::memory_order_seq_cst);
  if (depth_) depth_->add(1.0);
  {
    // Empty critical section: serializes with the sleeper's count_ re-check
    // under idle_mutex_, so the notify below cannot slip between that check
    // and the wait.
    std::lock_guard lock(idle_mutex_);
  }
  idle_cv_.notify_all();
}

void WorkStealingScheduler::push(ReadyEntry entry, int from_worker) {
  std::size_t target;
  if (from_worker >= 0 && from_worker < workers_) {
    target = static_cast<std::size_t>(from_worker);
  } else {
    // External producers (receiver thread, initial seeding) spread entries
    // round-robin so all workers start with local work.
    target = static_cast<std::size_t>(
        rr_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<std::uint64_t>(workers_));
  }
  {
    std::lock_guard lock(deques_[target]->mutex);
    insert(*deques_[target], entry);
  }
  notify_push();
}

std::optional<ReadyEntry> WorkStealingScheduler::take_front(
    WorkerDeque& deque) {
  if (auto entry = take_high(deque)) return entry;
  if (!deque.low.empty()) {
    ReadyEntry entry = deque.low.front();
    deque.low.pop_front();
    return entry;
  }
  return std::nullopt;
}

std::optional<ReadyEntry> WorkStealingScheduler::pop_own(int worker) {
  WorkerDeque& mine = *deques_[static_cast<std::size_t>(worker)];
  std::lock_guard lock(mine.mutex);
  if (auto entry = take_high(mine)) return entry;
  if (!mine.low.empty()) {
    // Owner side: LIFO — the freshest task's inputs are still in cache.
    ReadyEntry entry = mine.low.back();
    mine.low.pop_back();
    return entry;
  }
  return std::nullopt;
}

std::optional<ReadyEntry> WorkStealingScheduler::steal_one(int thief) {
  if (workers_ < 2) return std::nullopt;
  WorkerDeque& mine = *deques_[static_cast<std::size_t>(thief)];
  const std::uint64_t attempt = mine.attempts++;

  // Starting victim: the fuzz hook's choice if present, else the thief's own
  // seeded stream. Either way the value is reduced into range with the thief
  // skipped, then the scan probes the remaining workers linearly so one pass
  // visits every possible victim exactly once.
  std::uint64_t start;
  if (hook_ && hook_->pick_victim) {
    const int picked = hook_->pick_victim(rank_, thief, workers_, attempt);
    start = static_cast<std::uint64_t>(picked < 0 ? -(picked + 1) : picked);
  } else {
    start = mine.rng.next_u64();
  }
  for (int probe = 0; probe < workers_ - 1; ++probe) {
    const int victim = static_cast<int>(
        (start + static_cast<std::uint64_t>(probe)) %
        static_cast<std::uint64_t>(workers_ - 1));
    const int v = victim >= thief ? victim + 1 : victim;  // skip self
    if (hook_ && hook_->before_steal) {
      hook_->before_steal(rank_, thief, v, attempt);
    }
    std::optional<ReadyEntry> entry;
    {
      std::lock_guard lock(deques_[static_cast<std::size_t>(v)]->mutex);
      entry = take_front(*deques_[static_cast<std::size_t>(v)]);
    }
    if (entry) {
      entry->stolen = true;
      if (steals_) steals_->inc();
      if (tracer_ != nullptr && tracer_->enabled()) {
        TraceEvent event;
        event.kind = TraceEventKind::Steal;
        event.klass = "steal";
        event.rank = rank_;
        event.worker = thief;
        event.steal_victim = v;
        event.begin_s = wall_time();
        event.end_s = event.begin_s;
        tracer_->record(std::move(event));
      }
      return entry;
    }
    if (failed_steals_) failed_steals_->inc();
  }
  return std::nullopt;
}

std::optional<ReadyEntry> WorkStealingScheduler::pop_blocking(int worker) {
  for (;;) {
    if (auto entry = pop_own(worker)) {
      count_.fetch_sub(1, std::memory_order_seq_cst);
      if (depth_) depth_->add(-1.0);
      return entry;
    }
    if (count_.load(std::memory_order_seq_cst) > 0) {
      if (auto entry = steal_one(worker)) {
        count_.fetch_sub(1, std::memory_order_seq_cst);
        if (depth_) depth_->add(-1.0);
        return entry;
      }
      // Entries exist (or existed an instant ago) but every visible deque
      // was empty — either a race or an in-flight insert. Yield and rescan
      // rather than sleeping past work.
      std::this_thread::yield();
      continue;
    }
    std::unique_lock lock(idle_mutex_);
    if (count_.load(std::memory_order_seq_cst) > 0) continue;
    if (stopped_) return std::nullopt;
    idle_cv_.wait(lock, [&] {
      return count_.load(std::memory_order_seq_cst) > 0 || stopped_;
    });
    if (count_.load(std::memory_order_seq_cst) <= 0 && stopped_) {
      return std::nullopt;
    }
  }
}

void WorkStealingScheduler::stop() {
  {
    std::lock_guard lock(idle_mutex_);
    stopped_ = true;
  }
  idle_cv_.notify_all();
}

// ---------------------------------------------------------------- factory --

std::unique_ptr<Scheduler> make_scheduler(SchedPolicy policy, int rank,
                                          int workers, std::uint64_t seed,
                                          std::shared_ptr<SchedTestHook> hook,
                                          Tracer* tracer) {
  if (policy == SchedPolicy::WorkStealing) {
    return std::make_unique<WorkStealingScheduler>(rank, workers, seed,
                                                   std::move(hook), tracer);
  }
  return std::make_unique<SharedReadyQueue>();
}

}  // namespace repro::rt
