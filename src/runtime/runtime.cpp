#include "runtime/runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/persistent_channel.hpp"
#include "support/timing.hpp"

namespace repro::rt {

namespace {
constexpr std::uint64_t kWireSingle = 0;
constexpr std::uint64_t kWireMulti = 1;
// Telemetry snapshot: [2], payload = obs::encode_telemetry doubles. Routed
// to Config::telemetry_sink instead of the dataflow machinery.
constexpr std::uint64_t kWireTelemetry = 2;

// Flight-recorder throttle: a worker records at most one sample per this
// many seconds of wall time (keeps the ring coarse and the overhead in the
// sub-percent range even on microsecond tasks).
constexpr double kFlightSampleInterval = 1e-3;

// Which worker thread (of which rank) is running, so enqueue_ready can push
// a newly-ready task onto the enqueuing worker's own deque under the
// work-stealing scheduler. -1 outside worker threads.
thread_local int tl_rank = -1;
thread_local int tl_worker = -1;
}  // namespace

// ---------------------------------------------------------------- context --

/// The runtime-backed TaskContext: resolves inputs from live TaskState and
/// routes publishes into the dataflow machinery. Bodies wrapped by graph
/// transformations see shim contexts instead (graph_transform.cpp), which
/// ultimately delegate to one of these.
class RuntimeTaskContext final : public TaskContext {
 public:
  RuntimeTaskContext(Runtime& runtime, std::size_t task_index, int rank,
                     int worker)
      : runtime_(runtime), task_index_(task_index), rank_(rank),
        worker_(worker) {}

  const TaskSpec& spec() const override {
    return runtime_.graph_->spec(task_index_);
  }
  int rank() const override { return rank_; }
  int worker() const override { return worker_; }

  Buffer input_buffer(std::size_t i) const override {
    const auto& inputs = runtime_.states_[task_index_].inputs;
    if (i >= inputs.size()) {
      throw std::out_of_range("TaskContext: input index " + std::to_string(i) +
                              " out of range for " + key().to_string());
    }
    const Buffer& buf = inputs[i];
    if (!buf) {
      throw std::logic_error("TaskContext: input " + std::to_string(i) +
                             " of " + key().to_string() + " not delivered");
    }
    return buf;
  }

  std::size_t num_inputs() const override {
    return runtime_.states_[task_index_].inputs.size();
  }

  using TaskContext::publish;
  void publish(std::uint16_t slot, Buffer buffer) override {
    if (!buffer) throw std::invalid_argument("publish: null buffer");
    runtime_.publish_output(task_index_, slot, std::move(buffer));
  }

  std::shared_ptr<std::vector<double>> acquire_route_buffer(
      std::uint16_t slot) override {
    if (runtime_.pchan_ == nullptr) return nullptr;
    for (const auto& edge : runtime_.graph_->consumers(task_index_)) {
      if (edge.slot == slot && edge.route != 0 &&
          runtime_.pchan_->route_spec(edge.route) != nullptr) {
        return runtime_.pchan_->acquire(edge.route);
      }
    }
    return nullptr;
  }

  void publish_fragments(
      std::uint16_t slot, std::shared_ptr<std::vector<double>> data) override {
    if (!data) throw std::invalid_argument("publish_fragments: null buffer");
    runtime_.publish_eager(task_index_, slot, std::move(data));
  }

 private:
  Runtime& runtime_;
  std::size_t task_index_;
  int rank_;
  int worker_;
};

// ----------------------------------------------------------------- outbox --

void Runtime::Outbox::push(net::Message msg) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return;  // shutdown already started; message is moot
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

std::optional<net::Message> Runtime::Outbox::pop_blocking() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  net::Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

void Runtime::Outbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------- runtime --

Runtime::Runtime(Config config)
    : config_(config),
      tracer_(config.trace),
      metrics_(config.metrics ? config.metrics
                              : std::make_shared<obs::MetricsRegistry>()),
      flight_(static_cast<std::size_t>(
          std::max(1, config.nranks) *
          std::max(1, config.workers_per_rank))),
      superstep_(static_cast<std::size_t>(std::max(1, config.nranks))) {
  if (config_.nranks < 1 || config_.workers_per_rank < 1) {
    throw std::invalid_argument("Runtime: need >=1 rank and >=1 worker");
  }
}

void Runtime::setup_metrics() {
  // Fresh handles per run, attached with replace semantics: a scrape always
  // reads the latest run, and stale series never accumulate across runs.
  const int W = config_.workers_per_rank;
  worker_tasks_.assign(static_cast<std::size_t>(config_.nranks * W), nullptr);
  tasks_enqueued_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  comm_busy_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  idle_gauges_.assign(static_cast<std::size_t>(config_.nranks * 3), nullptr);
  depth_gauges_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  steal_counters_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  sent_messages_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  sent_bytes_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  for (int r = 0; r < config_.nranks; ++r) {
    const std::string rank = std::to_string(r);
    for (int w = 0; w < W; ++w) {
      auto counter = std::make_shared<obs::Counter>();
      metrics_->attach("rt_tasks_executed_total",
                       {{"rank", rank}, {"worker", std::to_string(w)}},
                       counter, "Tasks executed, per worker thread");
      worker_tasks_[static_cast<std::size_t>(r * W + w)] = std::move(counter);
    }
    auto enqueued = std::make_shared<obs::Counter>();
    metrics_->attach("rt_tasks_enqueued_total", {{"rank", rank}}, enqueued,
                     "Tasks that became ready on this rank");
    tasks_enqueued_[static_cast<std::size_t>(r)] = std::move(enqueued);

    auto depth = std::make_shared<obs::Gauge>();
    metrics_->attach("rt_ready_queue_depth", {{"rank", rank}}, depth,
                     "Tasks currently ready but not yet picked up");
    depth_gauges_[static_cast<std::size_t>(r)] = depth;
    queues_[static_cast<std::size_t>(r)]->set_depth_gauge(std::move(depth));

    // Steal accounting is attached for every policy so scrapes and the
    // RunReport schema see a stable family set; non-stealing schedulers
    // simply leave both at zero.
    auto steals = std::make_shared<obs::Counter>();
    metrics_->attach("rt_steals_total", {{"rank", rank}}, steals,
                     "Ready tasks taken from another worker's deque");
    steal_counters_[static_cast<std::size_t>(r)] = steals;
    auto failed = std::make_shared<obs::Counter>();
    metrics_->attach("rt_failed_steals_total", {{"rank", rank}}, failed,
                     "Steal attempts that found the victim's deque empty");
    queues_[static_cast<std::size_t>(r)]->set_steal_counters(
        std::move(steals), std::move(failed));

    auto busy = std::make_shared<obs::Gauge>();
    metrics_->attach("rt_comm_busy_seconds_total", {{"rank", rank}}, busy,
                     "Seconds the comm threads spent sending or delivering "
                     "(busy fraction = value / wall time)");
    comm_busy_[static_cast<std::size_t>(r)] = std::move(busy);

    // Always-on idle taxonomy (the tracing path reuses the same clock reads;
    // see worker_loop). Class order: halo, noready, steal.
    static constexpr const char* kIdleClasses[3] = {"halo", "noready",
                                                    "steal"};
    for (int c = 0; c < 3; ++c) {
      auto idle = std::make_shared<obs::Gauge>();
      metrics_->attach("rt_idle_seconds_total",
                       {{"rank", rank}, {"class", kIdleClasses[c]}}, idle,
                       "Worker idle seconds by what ended the gap");
      idle_gauges_[static_cast<std::size_t>(r * 3 + c)] = std::move(idle);
    }

    auto sent_msgs = std::make_shared<obs::Counter>();
    metrics_->attach("rt_sent_messages_total", {{"rank", rank}}, sent_msgs,
                     "Messages this rank posted to the wire");
    sent_messages_[static_cast<std::size_t>(r)] = std::move(sent_msgs);
    auto sent_b = std::make_shared<obs::Counter>();
    metrics_->attach("rt_sent_bytes_total", {{"rank", rank}}, sent_b,
                     "Wire bytes this rank posted (tag + header + payload)");
    sent_bytes_[static_cast<std::size_t>(r)] = std::move(sent_b);
  }

  // Lane accounting: one counter per distinct TaskSpec::lane in this graph.
  // Series for lanes the previous run had but this graph lacks are retired,
  // so a resident runtime's registry tracks exactly the current tenant set.
  std::map<int, std::shared_ptr<obs::Counter>> lanes;
  for (std::size_t i = 0; i < graph_->size(); ++i) {
    const int lane = graph_->spec(i).lane;
    if (lane < 0 || lanes.count(lane) != 0) continue;
    auto counter = std::make_shared<obs::Counter>();
    metrics_->attach("rt_lane_tasks_executed_total",
                     {{"lane", std::to_string(lane)}}, counter,
                     "Tasks executed, per accounting lane (serve tenants)");
    lanes.emplace(lane, std::move(counter));
  }
  for (const auto& [lane, counter] : lane_tasks_) {
    if (lanes.count(lane) == 0) {
      metrics_->remove("rt_lane_tasks_executed_total",
                       {{"lane", std::to_string(lane)}});
    }
  }
  lane_tasks_ = std::move(lanes);
}

Runtime::~Runtime() = default;

void Runtime::release_run() {
  graph_ = nullptr;
  states_.clear();
  states_.shrink_to_fit();
  queues_.clear();
  outboxes_.clear();
  pchan_ = nullptr;
  channel_.reset();
  tracer_.clear();
}

RunStats Runtime::run(TaskGraph& graph) {
  if (!graph.sealed()) graph.seal(config_.nranks);
  graph_ = &graph;

  const std::size_t n = graph.size();
  states_ = std::vector<TaskState>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& inputs = graph.spec(i).inputs;
    states_[i].inputs.resize(inputs.size());
    states_[i].remaining.store(static_cast<int>(inputs.size()),
                               std::memory_order_relaxed);
  }

  queues_.clear();
  outboxes_.clear();
  for (int r = 0; r < config_.nranks; ++r) {
    queues_.push_back(make_scheduler(config_.scheduler, r,
                                     config_.workers_per_rank,
                                     config_.sched_seed,
                                     config_.sched_test_hook, &tracer_));
    outboxes_.push_back(std::make_unique<Outbox>());
  }
  setup_metrics();
  channel_ = config_.channel_factory
                 ? config_.channel_factory(config_.nranks)
                 : std::make_shared<net::Transport>(config_.nranks, metrics_);
  if (!channel_ || channel_->nranks() != config_.nranks) {
    throw std::invalid_argument("Runtime: channel factory returned a channel "
                                "with the wrong rank count");
  }
  // Route negotiation happens here — after the channel exists, before any
  // thread spawns — so the handshake is single-threaded and every receiver
  // observes OPEN before the first fragment (per-channel FIFO).
  pchan_ = dynamic_cast<net::PersistentChannel*>(channel_.get());
  if (pchan_ != nullptr) negotiate_routes(graph);

  seq_.store(0);
  next_flow_.store(1);
  for (auto& step : superstep_) step.store(0, std::memory_order_relaxed);
  remaining_tasks_.store(n);
  executed_tasks_.store(0);
  done_ = n == 0;
  aborted_.store(false);
  error_.clear();
  tracer_.clear();

  const Timer timer;

  for (std::size_t i = 0; i < n; ++i) {
    if (graph.spec(i).inputs.empty()) enqueue_ready(i);
  }

  std::vector<std::thread> receivers;
  std::vector<std::thread> senders;
  std::vector<std::thread> workers;
  for (int r = 0; r < config_.nranks; ++r) {
    receivers.emplace_back([this, r] { receiver_loop(r); });
    if (config_.dedicated_comm_thread) {
      senders.emplace_back([this, r] { sender_loop(r); });
    }
    for (int w = 0; w < config_.workers_per_rank; ++w) {
      workers.emplace_back([this, r, w] { worker_loop(r, w); });
    }
  }

  {
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [&] { return done_ || aborted_.load(); });
  }

  // Orderly shutdown: compute first, then sends, then the transport.
  for (auto& queue : queues_) queue->stop();
  for (auto& thread : workers) thread.join();
  for (auto& outbox : outboxes_) outbox->close();
  for (auto& thread : senders) thread.join();
  channel_->close();
  for (auto& thread : receivers) thread.join();

  // All recording threads have joined: splice the per-thread trace buffers
  // into one timestamp-ordered stream.
  tracer_.merge();

  if (aborted_.load()) {
    std::lock_guard lock(error_mutex_);
    throw std::runtime_error("Runtime: " + error_);
  }

  RunStats stats;
  stats.wall_time_s = timer.elapsed();
  stats.tasks_executed = executed_tasks_.load();
  const auto traffic = channel_->stats();
  stats.messages = traffic.messages;
  stats.bytes = traffic.bytes;
  stats.message_sizes = traffic.sizes;
  return stats;
}

Buffer Runtime::result(const TaskKey& key, std::uint16_t slot) const {
  if (graph_ == nullptr) throw std::logic_error("Runtime: no graph run yet");
  const std::size_t index = graph_->index_of(key);
  for (const auto& [s, buf] : states_[index].outputs) {
    if (s == slot) return buf;
  }
  throw std::out_of_range("Runtime: no retained output " +
                          std::to_string(slot) + " on " + key.to_string());
}

void Runtime::worker_loop(int rank, int worker) {
  tl_rank = rank;
  tl_worker = worker;
  const SchedTestHook* hook = config_.sched_test_hook.get();
  auto& queue = *queues_[static_cast<std::size_t>(rank)];
  const bool tracing = tracer_.enabled();

  // Always-on idle taxonomy + flight recorder (compiled out entirely under
  // REPRO_OBS_DISABLE: no clock reads, no sample state). The taxonomy
  // classifies every pop gap by what ended it — the entry that arrived
  // (halo-released / stolen / plain ready) or the shutdown signal. That is
  // the paper's idle story: "waiting on halo" vs "no ready task" is exactly
  // the base-vs-CA causal difference. The tracing path reuses the same two
  // clock reads, so enabling tracing adds no extra clock cost here.
  const std::size_t lane =
      static_cast<std::size_t>(rank * config_.workers_per_rank + worker);
  obs::FlightSample acc;  // cumulative per-worker sample being built
  double last_flight = 0.0;
  const auto flight_tick = [&](double now, bool force) {
    if constexpr (obs::kEnabled) {
      if (!force && now - last_flight < kFlightSampleInterval) return;
      last_flight = now;
      acc.t_s = now;
      acc.superstep = superstep_[static_cast<std::size_t>(rank)].load(
          std::memory_order_relaxed);
      acc.wire_bytes = sent_bytes_[static_cast<std::size_t>(rank)]->value();
      acc.queue_depth = static_cast<std::uint64_t>(
          depth_gauges_[static_cast<std::size_t>(rank)]->value());
      flight_.record(lane, acc);
    }
  };

  for (;;) {
    const double gap_begin = (tracing || obs::kEnabled) ? wall_time() : 0.0;
    auto entry = queue.pop_blocking(worker);
    double gap_end = 0.0;
    if constexpr (obs::kEnabled) {
      gap_end = wall_time();
      const double gap = gap_end - gap_begin;
      // Class index matches setup_metrics' kIdleClasses order.
      if (entry) {
        if (entry->stolen) {
          acc.idle_steal_s += gap;
          ++acc.steals;
          idle_gauges_[static_cast<std::size_t>(rank * 3 + 2)]->add(gap);
        } else if (entry->halo) {
          acc.idle_halo_s += gap;
          idle_gauges_[static_cast<std::size_t>(rank * 3 + 0)]->add(gap);
        } else {
          acc.idle_noready_s += gap;
          idle_gauges_[static_cast<std::size_t>(rank * 3 + 1)]->add(gap);
        }
      }
      flight_tick(gap_end, /*force=*/!entry);
    }
    if (tracing) {
      TraceEvent event;
      event.kind = TraceEventKind::Idle;
      event.klass = !entry             ? "idle-shutdown"
                    : entry->stolen    ? "idle-steal"
                    : entry->halo      ? "idle-halo"
                                       : "idle-noready";
      event.rank = rank;
      event.worker = worker;
      event.begin_s = gap_begin;
      event.end_s = obs::kEnabled ? gap_end : wall_time();
      tracer_.record(std::move(event));
    }
    if (!entry) break;
    // The hook fires under every policy, so even PriorityFifo schedules can
    // be perturbed by the fuzz harness.
    if (hook != nullptr && hook->before_execute) {
      hook->before_execute(rank, worker, entry->seq);
    }
    execute_task(entry->task, rank, worker);
    if constexpr (obs::kEnabled) ++acc.tasks_executed;
  }
  tl_rank = -1;
  tl_worker = -1;
}

void Runtime::sender_loop(int rank) {
  auto& outbox = *outboxes_[static_cast<std::size_t>(rank)];
  obs::Gauge& busy = *comm_busy_[static_cast<std::size_t>(rank)];
  while (auto msg = outbox.pop_blocking()) {
    try {
      // Busy time is the send itself; blocking in pop_blocking is idle.
      obs::ScopedTimer timer(busy);
      channel_send(rank, std::move(*msg));
    } catch (const std::exception& e) {
      fail(std::string("sender: ") + e.what());
      return;
    }
  }
}

void Runtime::channel_send(int src_rank, net::Message msg) {
  if (!tracer_.enabled()) {
    channel_->send(std::move(msg));
    return;
  }
  TraceEvent event;
  event.kind = TraceEventKind::Send;
  event.klass = "send";
  event.rank = src_rank;
  event.worker = kTraceLaneSend;
  event.peer = msg.dst;
  event.flow = msg.trace.flow;
  event.bytes = msg.bytes();
  event.queued_s = msg.trace.queued_s;
  msg.trace.wire_s = wall_time();
  event.wire_s = msg.trace.wire_s;
  event.begin_s = event.wire_s;
  channel_->send(std::move(msg));
  event.end_s = wall_time();
  tracer_.record(std::move(event));
}

void Runtime::receiver_loop(int rank) {
  // Message wire format, self-describing via header[0]:
  //   kWireSingle: [0, type, a, b, c, input_pos], payload = the flow data
  //   kWireMulti:  [1, n, then n x (type, a, b, c, input_pos, len)],
  //                payload = the n flow payloads concatenated
  // recv() itself may throw (net::ChannelError when a reliability layer has
  // exhausted its retries), so the whole loop sits inside the try: a failed
  // channel aborts the run instead of terminating the process.
  obs::Gauge& busy = *comm_busy_[static_cast<std::size_t>(rank)];
  const bool tracing = tracer_.enabled();
  // One Recv span per delivered flow section, on the rank's rx lane: key =
  // the consuming task, deps = {producing task}, flow/queued/wire/attempt
  // copied from the message's trace metadata. These are the edges the
  // critical-path analysis walks when a binding predecessor is remote.
  const auto record_recv = [&](const net::Message& msg, std::size_t index,
                               std::uint16_t input_pos, std::uint64_t bytes,
                               double begin) {
    TraceEvent event;
    event.kind = TraceEventKind::Recv;
    event.klass = "recv";
    const TaskSpec& consumer = graph_->spec(index);
    event.key = consumer.key;
    if (input_pos < consumer.inputs.size()) {
      event.deps.push_back(consumer.inputs[input_pos].producer);
    }
    event.rank = rank;
    event.worker = kTraceLaneRecv;
    event.peer = msg.src;
    event.flow = msg.trace.flow;
    event.bytes = bytes;
    event.queued_s = msg.trace.queued_s;
    event.wire_s = msg.trace.wire_s;
    event.retransmits = msg.trace.attempt > 0 ? msg.trace.attempt - 1 : 0;
    event.begin_s = begin;
    event.end_s = wall_time();
    tracer_.record(std::move(event));
  };
  try {
    while (auto msg = channel_->recv(rank)) {
      // Busy time is decode + delivery; blocking in recv is idle.
      obs::ScopedTimer timer(busy);
      const double recv_begin = tracing ? wall_time() : 0.0;
      if (msg->header.empty()) throw std::runtime_error("empty header");
      if (msg->header[0] == kWireTelemetry) {
        // Progress snapshot, not dataflow: hand the payload to the sink (the
        // collector's ingest) and move on. No sink = run without telemetry.
        if (msg->header.size() != 1) {
          throw std::runtime_error("malformed telemetry header");
        }
        if (config_.telemetry_sink) {
          config_.telemetry_sink(msg->src, msg->payload);
        }
        continue;
      }
      if (msg->header[0] == kWireSingle) {
        if (msg->header.size() != 6) {
          throw std::runtime_error("malformed single-flow header");
        }
        TaskKey key;
        key.type = static_cast<std::uint32_t>(msg->header[1]);
        key.a = static_cast<std::int32_t>(msg->header[2]);
        key.b = static_cast<std::int32_t>(msg->header[3]);
        key.c = static_cast<std::int32_t>(msg->header[4]);
        const auto input_pos = static_cast<std::uint16_t>(msg->header[5]);
        const std::size_t index = graph_->index_of(key);
        const std::uint64_t bytes = msg->bytes();
        Buffer delivered;
        if (msg->shared_payload() && msg->view_offset == 0 &&
            msg->owner->size() == msg->view_len) {
          // Persistent-route delivery: the payload IS the producer's
          // registered buffer — share it instead of copying.
          delivered = std::move(msg->owner);
        } else if (msg->shared_payload()) {
          delivered = make_buffer(std::vector<double>(
              msg->payload_data(), msg->payload_data() + msg->payload_len()));
        } else {
          delivered = make_buffer(std::move(msg->payload));
        }
        deliver_input(index, input_pos, std::move(delivered),
                      /*remote=*/true);
        if (tracing) record_recv(*msg, index, input_pos, bytes, recv_begin);
      } else if (msg->header[0] == kWireMulti) {
        const auto sections = static_cast<std::size_t>(msg->header[1]);
        if (msg->header.size() != 2 + 6 * sections) {
          throw std::runtime_error("malformed multi-flow header");
        }
        std::size_t offset = 0;
        for (std::size_t s = 0; s < sections; ++s) {
          const std::uint64_t* h = msg->header.data() + 2 + 6 * s;
          TaskKey key;
          key.type = static_cast<std::uint32_t>(h[0]);
          key.a = static_cast<std::int32_t>(h[1]);
          key.b = static_cast<std::int32_t>(h[2]);
          key.c = static_cast<std::int32_t>(h[3]);
          const auto input_pos = static_cast<std::uint16_t>(h[4]);
          const auto len = static_cast<std::size_t>(h[5]);
          if (offset + len > msg->payload.size()) {
            throw std::runtime_error("multi-flow payload overrun");
          }
          std::vector<double> section(
              msg->payload.begin() + static_cast<std::ptrdiff_t>(offset),
              msg->payload.begin() + static_cast<std::ptrdiff_t>(offset + len));
          offset += len;
          const std::size_t index = graph_->index_of(key);
          deliver_input(index, input_pos, make_buffer(std::move(section)),
                        /*remote=*/true);
          if (tracing) {
            record_recv(*msg, index, input_pos, len * sizeof(double),
                        recv_begin);
          }
        }
      } else {
        throw std::runtime_error("unknown wire format");
      }
    }
  } catch (const std::exception& e) {
    fail(std::string("receiver: ") + e.what());
  }
}

void Runtime::execute_task(std::size_t index, int rank, int worker) {
  if (aborted_.load(std::memory_order_relaxed)) return;
  const TaskSpec& spec = graph_->spec(index);

  TraceEvent event;
  if (tracer_.enabled()) {
    event.key = spec.key;
    event.klass = spec.klass;
    event.rank = rank;
    event.worker = worker;
    // Predecessor keys straight from the spec's input flows: the executed
    // DAG is reconstructible from the event stream alone.
    event.deps.reserve(spec.inputs.size());
    for (const auto& input : spec.inputs) event.deps.push_back(input.producer);
    event.begin_s = wall_time();
  }

  try {
    RuntimeTaskContext context(*this, index, rank, worker);
    spec.body(context);
  } catch (const std::exception& e) {
    fail("task " + spec.key.to_string() + ": " + e.what());
    return;
  }

  if (tracer_.enabled()) {
    event.end_s = wall_time();
    tracer_.record(std::move(event));
  }

  states_[index].executed.store(true, std::memory_order_release);
  complete_task(index, rank);

  worker_tasks_[static_cast<std::size_t>(rank * config_.workers_per_rank +
                                         worker)]
      ->inc();
  if (spec.lane >= 0) {
    // lane_tasks_ is read-only during the run; find() never races.
    const auto it = lane_tasks_.find(spec.lane);
    if (it != lane_tasks_.end()) it->second->inc();
  }
  executed_tasks_.fetch_add(1, std::memory_order_relaxed);
  if (remaining_tasks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard lock(done_mutex_);
      done_ = true;
    }
    done_cv_.notify_all();
  }
}

void Runtime::negotiate_routes(const TaskGraph& graph) {
  // A route id is shared by every superstep edge of its (producer tile,
  // slot) stream, so the same id recurs across many consumer tasks —
  // negotiate once per id, rejecting inconsistent redefinitions.
  std::unordered_map<std::uint64_t, net::RouteSpec> by_id;
  std::vector<net::RouteSpec> routes;
  for (std::size_t ci = 0; ci < graph.size(); ++ci) {
    const TaskSpec& consumer = graph.spec(ci);
    for (const auto& flow : consumer.inputs) {
      if (flow.route == 0) continue;
      const TaskSpec& producer = graph.spec(graph.index_of(flow.producer));
      if (producer.rank == consumer.rank) continue;  // local: no wire
      net::RouteSpec spec;
      spec.id = flow.route;
      spec.src = producer.rank;
      spec.dst = consumer.rank;
      spec.doubles = flow.route_doubles;
      spec.fragments = flow.route_fragments;
      const auto [it, inserted] = by_id.emplace(spec.id, spec);
      if (!inserted) {
        const net::RouteSpec& seen = it->second;
        if (seen.src != spec.src || seen.dst != spec.dst ||
            seen.doubles != spec.doubles ||
            seen.fragments != spec.fragments) {
          throw std::runtime_error(
              "Runtime: route " + std::to_string(spec.id) +
              " redefined with a different endpoint or size");
        }
        continue;
      }
      routes.push_back(spec);
    }
  }
  if (!routes.empty()) pchan_->negotiate(routes);
}

void Runtime::publish_eager(std::size_t index, std::uint16_t slot,
                            std::shared_ptr<std::vector<double>> data) {
  const TaskSpec& spec = graph_->spec(index);
  const int rank = spec.rank;
  const Buffer view = data;  // Buffer is shared_ptr<const vector<double>>
  publish_output(index, slot, view);
  states_[index].eager_slots.push_back(slot);
  for (const auto& edge : graph_->consumers(index)) {
    if (edge.slot != slot) continue;
    const TaskSpec& consumer = graph_->spec(edge.consumer);
    if (consumer.rank == rank) {
      // Local consumers share the pointer and wake immediately — a body-time
      // release instead of a complete_task-time one.
      deliver_input(edge.consumer, edge.input_pos, view);
    } else if (pchan_ != nullptr && edge.route != 0 &&
               pchan_->route_spec(edge.route) != nullptr) {
      // Partitioned send out of the registered buffer: each fragment is a
      // shared view, posted the moment the producer marks the slot ready.
      const std::vector<std::uint64_t> rt_header = {
          kWireSingle,
          consumer.key.type,
          static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(consumer.key.a)),
          static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(consumer.key.b)),
          static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(consumer.key.c)),
          edge.input_pos};
      for (std::uint32_t f = 0; f < edge.route_fragments; ++f) {
        net::Message msg =
            pchan_->make_fragment(edge.route, f, data, rt_header);
        msg.tag = consumer.key.pack();
        post_message(rank, std::move(msg));
      }
    } else {
      // No negotiated route (default channel stack): classic deep-copy wire,
      // still dispatched early.
      send_remote(rank, edge.consumer, edge.input_pos, view);
    }
  }
}

void Runtime::complete_task(std::size_t index, int rank) {
  TaskState& state = states_[index];
  const auto edges = graph_->consumers(index);

  // Remote edges grouped by destination when aggregation is on.
  std::map<int, std::vector<std::pair<const TaskGraph::ConsumerEdge*,
                                      const Buffer*>>> grouped;

  for (const auto& edge : edges) {
    // Slots already dispatched from inside the body (publish_fragments).
    if (std::find(state.eager_slots.begin(), state.eager_slots.end(),
                  edge.slot) != state.eager_slots.end()) {
      continue;
    }
    const Buffer* found = nullptr;
    for (const auto& [slot, buf] : state.outputs) {
      if (slot == edge.slot) {
        found = &buf;
        break;
      }
    }
    if (found == nullptr) {
      fail("task " + graph_->spec(index).key.to_string() +
           " finished without publishing slot " + std::to_string(edge.slot) +
           " needed by " + graph_->spec(edge.consumer).key.to_string());
      return;
    }
    const TaskSpec& consumer = graph_->spec(edge.consumer);
    if (consumer.rank == rank) {
      deliver_input(edge.consumer, edge.input_pos, *found);
    } else if (config_.aggregate_messages) {
      grouped[consumer.rank].emplace_back(&edge, found);
    } else {
      send_remote(rank, edge.consumer, edge.input_pos, *found);
    }
  }

  for (const auto& [dst, sections] : grouped) {
    send_remote_aggregated(rank, dst, sections);
  }

  // Release upstream data and any outputs that have been fanned out; keep
  // zero-consumer outputs for result() inspection.
  state.inputs.clear();
  std::erase_if(state.outputs, [&](const auto& entry) {
    return graph_->slot_fanout(index, entry.first) > 0;
  });
}

void Runtime::deliver_input(std::size_t consumer_index,
                            std::uint16_t input_pos, Buffer buffer,
                            bool remote) {
  TaskState& state = states_[consumer_index];
  if (input_pos >= state.inputs.size()) {
    fail("deliver: input position out of range for " +
         graph_->spec(consumer_index).key.to_string());
    return;
  }
  state.inputs[input_pos] = std::move(buffer);
  if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue_ready(consumer_index, /*halo=*/remote);
  }
}

void Runtime::enqueue_ready(std::size_t index, bool halo) {
  const TaskSpec& spec = graph_->spec(index);
  ReadyEntry entry;
  entry.task = static_cast<std::uint32_t>(index);
  entry.halo = halo;
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  switch (config_.scheduler) {
    case SchedPolicy::PriorityFifo:
    case SchedPolicy::WorkStealing:
      entry.priority = spec.priority;
      entry.seq = seq;
      break;
    case SchedPolicy::Fifo:
      entry.priority = 0;
      entry.seq = seq;
      break;
    case SchedPolicy::Lifo:
      // Newest first: invert the sequence so the FIFO tie-break runs
      // backwards.
      entry.priority = 0;
      entry.seq = ~seq;
      break;
  }
  tasks_enqueued_[static_cast<std::size_t>(spec.rank)]->inc();
  const int from_worker = tl_rank == spec.rank ? tl_worker : -1;
  queues_[static_cast<std::size_t>(spec.rank)]->push(entry, from_worker);
}

void Runtime::send_remote(int src_rank, std::size_t consumer_index,
                          std::uint16_t input_pos, const Buffer& buffer) {
  const TaskSpec& consumer = graph_->spec(consumer_index);
  net::Message msg;
  msg.src = src_rank;
  msg.dst = consumer.rank;
  msg.tag = consumer.key.pack();
  msg.header = {kWireSingle,
                consumer.key.type,
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(consumer.key.a)),
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(consumer.key.b)),
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(consumer.key.c)),
                input_pos};
  msg.payload = *buffer;  // deep copy: this is the wire crossing
  post_message(src_rank, std::move(msg));
}

void Runtime::send_remote_aggregated(
    int src_rank, int dst_rank,
    const std::vector<std::pair<const TaskGraph::ConsumerEdge*,
                                const Buffer*>>& sections) {
  net::Message msg;
  msg.src = src_rank;
  msg.dst = dst_rank;
  msg.header = {kWireMulti, sections.size()};
  std::size_t total = 0;
  for (const auto& [edge, buffer] : sections) total += (*buffer)->size();
  msg.payload.reserve(total);
  for (const auto& [edge, buffer] : sections) {
    const TaskKey& key = graph_->spec(edge->consumer).key;
    msg.header.push_back(key.type);
    msg.header.push_back(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.a)));
    msg.header.push_back(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.b)));
    msg.header.push_back(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.c)));
    msg.header.push_back(edge->input_pos);
    msg.header.push_back((*buffer)->size());
    msg.payload.insert(msg.payload.end(), (*buffer)->begin(),
                       (*buffer)->end());
  }
  post_message(src_rank, std::move(msg));
}

void Runtime::post_telemetry(int src_rank, int dst_rank,
                             std::vector<double> payload) {
  net::Message msg;
  msg.src = src_rank;
  msg.dst = dst_rank;
  msg.tag = 0;
  msg.header = {kWireTelemetry};
  msg.payload = std::move(payload);
  post_message(src_rank, std::move(msg));
}

obs::TelemetrySnapshot Runtime::rank_sample(int rank) const {
  obs::TelemetrySnapshot snap;
  snap.rank = rank;
  snap.t_s = wall_time();
  const auto r = static_cast<std::size_t>(rank);
  snap.superstep = superstep_[r].load(std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    if (sent_bytes_.empty()) return snap;  // no run yet: handles unattached
    const int W = config_.workers_per_rank;
    for (int w = 0; w < W; ++w) {
      snap.tasks_executed +=
          worker_tasks_[static_cast<std::size_t>(rank * W + w)]->value();
    }
    snap.steals = steal_counters_[r]->value();
    snap.sent_messages = sent_messages_[r]->value();
    snap.sent_bytes = sent_bytes_[r]->value();
    snap.queue_depth =
        static_cast<std::uint64_t>(depth_gauges_[r]->value());
    snap.idle_halo_s = idle_gauges_[r * 3 + 0]->value();
    snap.idle_noready_s = idle_gauges_[r * 3 + 1]->value();
    snap.idle_steal_s = idle_gauges_[r * 3 + 2]->value();
  }
  return snap;
}

void Runtime::set_superstep(int rank, std::uint64_t superstep) {
  superstep_[static_cast<std::size_t>(rank)].store(superstep,
                                                  std::memory_order_relaxed);
}

void Runtime::post_message(int src_rank, net::Message msg) {
  if constexpr (obs::kEnabled) {
    sent_messages_[static_cast<std::size_t>(src_rank)]->inc();
    sent_bytes_[static_cast<std::size_t>(src_rank)]->add(msg.bytes());
  }
  if (tracer_.enabled()) {
    msg.trace.flow = next_flow_.fetch_add(1, std::memory_order_relaxed);
    msg.trace.queued_s = wall_time();
  }
  if (config_.dedicated_comm_thread) {
    outboxes_[static_cast<std::size_t>(src_rank)]->push(std::move(msg));
  } else {
    try {
      channel_send(src_rank, std::move(msg));
    } catch (const std::exception& e) {
      fail(std::string("send: ") + e.what());
    }
  }
}

void Runtime::fail(const std::string& message) {
  {
    std::lock_guard lock(error_mutex_);
    if (error_.empty()) error_ = message;
  }
  aborted_.store(true);
  {
    std::lock_guard lock(done_mutex_);
  }
  done_cv_.notify_all();
}

void Runtime::publish_output(std::size_t task_index, std::uint16_t slot,
                             Buffer buffer) {
  TaskState& state = states_[task_index];
  for (const auto& [existing, _] : state.outputs) {
    if (existing == slot) {
      throw std::logic_error("publish: slot " + std::to_string(slot) +
                             " published twice by " +
                             graph_->spec(task_index).key.to_string());
    }
  }
  state.outputs.emplace_back(slot, std::move(buffer));
}

}  // namespace repro::rt
