#include "spmv/laplacian.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::spmv {

CsrMatrix build_laplacian_matrix(int rows, int cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("build_laplacian_matrix: empty grid");
  }
  CsrMatrix m;
  m.nrows = static_cast<std::int64_t>(rows) * cols;
  m.ncols = m.nrows;
  m.row_ptr.push_back(0);
  auto index = [cols](int i, int j) {
    return static_cast<std::int64_t>(i) * cols + j;
  };
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      // Sorted column order keeps the matrix canonical CSR.
      if (i > 0) {
        m.col.push_back(index(i - 1, j));
        m.val.push_back(-1.0);
      }
      if (j > 0) {
        m.col.push_back(index(i, j - 1));
        m.val.push_back(-1.0);
      }
      m.col.push_back(index(i, j));
      m.val.push_back(4.0);
      if (j < cols - 1) {
        m.col.push_back(index(i, j + 1));
        m.val.push_back(-1.0);
      }
      if (i < rows - 1) {
        m.col.push_back(index(i + 1, j));
        m.val.push_back(-1.0);
      }
      m.row_ptr.push_back(m.nnz());
    }
  }
  return m;
}

std::vector<double> build_poisson_rhs(int rows, int cols,
                                      const stencil::CellFn& f,
                                      const stencil::CellFn& g) {
  std::vector<double> b(static_cast<std::size_t>(rows) * cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      double value = f(i, j);
      if (i == 0) value += g(-1, j);
      if (i == rows - 1) value += g(rows, j);
      if (j == 0) value += g(i, -1);
      if (j == cols - 1) value += g(i, cols);
      b[static_cast<std::size_t>(i) * cols + j] = value;
    }
  }
  return b;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("xpby: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            double rtol, int max_iterations) {
  const auto n = static_cast<std::size_t>(a.nrows);
  if (b.size() != n) {
    throw std::invalid_argument("conjugate_gradient: rhs size mismatch");
  }
  CgResult result;
  result.x.assign(n, 0.0);

  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> ap(n);

  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  double rr = dot(r, r);

  for (int k = 0; k < max_iterations; ++k) {
    a.multiply(p, ap);
    const double alpha = rr / dot(p, ap);
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    const double rr_next = dot(r, r);
    result.iterations = k + 1;
    if (std::sqrt(rr_next) <= rtol * b_norm) {
      result.converged = true;
      rr = rr_next;
      break;
    }
    xpby(r, rr_next / rr, p);
    rr = rr_next;
  }
  result.residual_norm = std::sqrt(rr);
  return result;
}

}  // namespace repro::spmv
