#include "spmv/petsc_like.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "spmv/csr.hpp"
#include "spmv/partition.hpp"
#include "support/timing.hpp"

namespace repro::spmv {

namespace {

constexpr std::uint64_t kMsgSetup = 0;
constexpr std::uint64_t kMsgData = 1;

/// Per-rank solver state and logic; runs on its own thread.
class RankWorker {
 public:
  RankWorker(int rank, const stencil::Problem& problem,
             const CsrMatrix& global, const RowPartition& partition,
             net::Transport& transport)
      : rank_(rank), problem_(problem), partition_(partition),
        transport_(transport) {
    build_local_matrix(global);
  }

  /// Phase 1: scatter-plan handshake + vector assembly (all ranks together).
  void setup() {
    exchange_scatter_plan();
    init_vector();
  }

  /// Phase 2: the Jacobi iteration loop.
  void iterate() {
    for (int iter = 0; iter < problem_.iterations; ++iter) {
      send_ghost_values(iter);
      receive_ghost_values(iter);
      // Local SpMV into y over owned rows, then promote y to the owned
      // prefix of x. Ghost slots of x are stale until the next exchange.
      local_.multiply(x_, y_);
      std::copy(y_.begin(), y_.end(), x_.begin());
    }
  }

  /// Owned slice of the final vector (call after run()).
  std::span<const double> owned_values() const {
    return {x_.data(), static_cast<std::size_t>(owned_)};
  }

 private:
  void build_local_matrix(const CsrMatrix& global) {
    const std::int64_t r0 = partition_.begin(rank_);
    const std::int64_t r1 = partition_.end(rank_);
    owned_ = r1 - r0;

    // Collect ghost columns (outside the owned range), sorted and unique.
    for (std::int64_t i = r0; i < r1; ++i) {
      for (std::int64_t k = global.row_ptr[i]; k < global.row_ptr[i + 1]; ++k) {
        const std::int64_t c = global.col[k];
        if (c < r0 || c >= r1) ghost_globals_.push_back(c);
      }
    }
    std::sort(ghost_globals_.begin(), ghost_globals_.end());
    ghost_globals_.erase(
        std::unique(ghost_globals_.begin(), ghost_globals_.end()),
        ghost_globals_.end());
    std::unordered_map<std::int64_t, std::int64_t> ghost_local;
    for (std::size_t g = 0; g < ghost_globals_.size(); ++g) {
      ghost_local[ghost_globals_[g]] = owned_ + static_cast<std::int64_t>(g);
    }

    // Local CSR with columns remapped to [owned | ghost] local indexing.
    local_.nrows = owned_;
    local_.ncols = owned_ + static_cast<std::int64_t>(ghost_globals_.size());
    local_.row_ptr.push_back(0);
    for (std::int64_t i = r0; i < r1; ++i) {
      for (std::int64_t k = global.row_ptr[i]; k < global.row_ptr[i + 1]; ++k) {
        const std::int64_t c = global.col[k];
        local_.col.push_back(c >= r0 && c < r1 ? c - r0 : ghost_local.at(c));
        local_.val.push_back(global.val[k]);
      }
      local_.row_ptr.push_back(local_.nnz());
    }
  }

  /// VecScatterCreate handshake: tell every rank which of its rows we need;
  /// learn which of ours everyone else needs.
  void exchange_scatter_plan() {
    // Group our ghost needs by owner.
    std::map<int, std::vector<std::int64_t>> needs;
    for (std::int64_t g : ghost_globals_) {
      needs[partition_.owner(g)].push_back(g);
    }
    if (needs.count(rank_) > 0) {
      throw std::logic_error("scatter plan: ghost owned by self");
    }
    for (int other = 0; other < partition_.nranks(); ++other) {
      if (other == rank_) continue;
      net::Message msg;
      msg.src = rank_;
      msg.dst = other;
      msg.tag = kMsgSetup;
      msg.header.push_back(kMsgSetup);
      const auto it = needs.find(other);
      if (it != needs.end()) {
        for (std::int64_t g : it->second) {
          msg.header.push_back(static_cast<std::uint64_t>(g));
        }
      }
      transport_.send(std::move(msg));
    }
    // Our receive plan, in deterministic (owner, index) order.
    for (auto& [owner, list] : needs) {
      recv_from_.emplace_back(owner, std::move(list));
    }

    // Collect everyone's requests for our rows.
    int setups = 0;
    while (setups < partition_.nranks() - 1) {
      net::Message msg = next_message();
      if (msg.header.empty() || msg.header[0] != kMsgSetup) {
        throw std::logic_error("scatter plan: unexpected message type");
      }
      std::vector<std::int64_t> rows;
      for (std::size_t h = 1; h < msg.header.size(); ++h) {
        rows.push_back(static_cast<std::int64_t>(msg.header[h]));
      }
      if (!rows.empty()) send_to_.emplace_back(msg.src, std::move(rows));
      ++setups;
    }
    std::sort(send_to_.begin(), send_to_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  void init_vector() {
    const std::int64_t r0 = partition_.begin(rank_);
    const int rows = problem_.rows;
    const int cols = problem_.cols;
    x_.resize(static_cast<std::size_t>(owned_) + ghost_globals_.size());
    y_.resize(static_cast<std::size_t>(owned_));
    auto value_at = [&](std::int64_t g) {
      const int i = static_cast<int>(g / (cols + 2)) - 1;
      const int j = static_cast<int>(g % (cols + 2)) - 1;
      const bool ring = i < 0 || i >= rows || j < 0 || j >= cols;
      return ring ? problem_.boundary(i, j) : problem_.initial(i, j);
    };
    for (std::int64_t i = 0; i < owned_; ++i) {
      x_[static_cast<std::size_t>(i)] = value_at(r0 + i);
    }
    // Ghost slots hold iteration-0 values too, so iteration 0's exchange is
    // verified against meaningful data rather than zeros.
    for (std::size_t g = 0; g < ghost_globals_.size(); ++g) {
      x_[static_cast<std::size_t>(owned_) + g] = value_at(ghost_globals_[g]);
    }
  }

  void send_ghost_values(int iter) {
    const std::int64_t r0 = partition_.begin(rank_);
    for (const auto& [dst, rows] : send_to_) {
      net::Message msg;
      msg.src = rank_;
      msg.dst = dst;
      msg.tag = kMsgData;
      msg.header = {kMsgData, static_cast<std::uint64_t>(iter)};
      msg.payload.reserve(rows.size());
      for (std::int64_t g : rows) {
        msg.payload.push_back(x_[static_cast<std::size_t>(g - r0)]);
      }
      transport_.send(std::move(msg));
    }
  }

  void receive_ghost_values(int iter) {
    std::size_t expected = recv_from_.size();
    // Drain anything stashed for this iteration first.
    if (auto it = stash_.find(iter); it != stash_.end()) {
      for (auto& msg : it->second) apply_ghost_message(msg);
      expected -= it->second.size();
      stash_.erase(it);
    }
    while (expected > 0) {
      net::Message msg = next_message();
      if (msg.header.size() < 2 || msg.header[0] != kMsgData) {
        throw std::logic_error("jacobi: unexpected message type");
      }
      const int msg_iter = static_cast<int>(msg.header[1]);
      if (msg_iter == iter) {
        apply_ghost_message(msg);
        --expected;
      } else if (msg_iter > iter) {
        stash_[msg_iter].push_back(std::move(msg));
      } else {
        throw std::logic_error("jacobi: message from a past iteration");
      }
    }
  }

  void apply_ghost_message(const net::Message& msg) {
    // Find this sender's index list; payload order matches it.
    for (const auto& [owner, list] : recv_from_) {
      if (owner != msg.src) continue;
      if (msg.payload.size() != list.size()) {
        throw std::logic_error("jacobi: ghost payload size mismatch");
      }
      for (std::size_t k = 0; k < list.size(); ++k) {
        const auto pos = std::lower_bound(ghost_globals_.begin(),
                                          ghost_globals_.end(), list[k]) -
                         ghost_globals_.begin();
        x_[static_cast<std::size_t>(owned_ + pos)] = msg.payload[k];
      }
      return;
    }
    throw std::logic_error("jacobi: ghost message from unexpected rank");
  }

  net::Message next_message() {
    auto msg = transport_.recv(rank_);
    if (!msg) throw std::runtime_error("transport closed mid-run");
    return std::move(*msg);
  }

  int rank_;
  const stencil::Problem& problem_;
  const RowPartition& partition_;
  net::Transport& transport_;

  CsrMatrix local_;
  std::int64_t owned_ = 0;
  std::vector<std::int64_t> ghost_globals_;
  std::vector<std::pair<int, std::vector<std::int64_t>>> send_to_;
  std::vector<std::pair<int, std::vector<std::int64_t>>> recv_from_;
  std::map<int, std::vector<net::Message>> stash_;
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace

SpmvRunResult run_petsc_like(const stencil::Problem& problem, int nranks,
                             std::shared_ptr<obs::MetricsRegistry> metrics) {
  if (nranks < 1) throw std::invalid_argument("run_petsc_like: nranks >= 1");
  const CsrMatrix global = build_problem_matrix(problem);
  const RowPartition partition(global.nrows, nranks);
  net::Transport transport(nranks, metrics);

  std::vector<std::unique_ptr<RankWorker>> workers;
  workers.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    workers.push_back(std::make_unique<RankWorker>(r, problem, global,
                                                   partition, transport));
  }

  // Run a phase on every rank concurrently; first exception wins.
  auto run_phase = [&](auto method) {
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    std::vector<std::exception_ptr> errors(workers.size());
    for (std::size_t r = 0; r < workers.size(); ++r) {
      threads.emplace_back([&, r] {
        try {
          method(*workers[r]);
        } catch (...) {
          errors[r] = std::current_exception();
          transport.close();  // unblock peers
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  };

  run_phase([](RankWorker& w) { w.setup(); });
  const auto setup_traffic = transport.stats();

  repro::Timer timer;
  run_phase([](RankWorker& w) { w.iterate(); });
  const double wall = timer.elapsed();
  const auto total_traffic = transport.stats();

  SpmvRunResult result{stencil::Grid2D(problem.rows, problem.cols),
                       wall,
                       total_traffic.messages - setup_traffic.messages,
                       total_traffic.bytes - setup_traffic.bytes,
                       setup_traffic.messages,
                       global.traffic_bytes()};

  if (metrics) {
    const auto publish = [&](const char* name, std::uint64_t value,
                             const char* help) {
      auto counter = std::make_shared<obs::Counter>();
      counter->add(value);
      metrics->attach(name, {}, std::move(counter), help);
    };
    publish("spmv_iteration_messages_total", result.messages,
            "VecScatter messages during the iteration phase");
    publish("spmv_iteration_bytes_total", result.bytes,
            "VecScatter bytes during the iteration phase");
    publish("spmv_setup_messages_total", result.setup_messages,
            "Scatter-plan handshake messages");
  }

  // Gather: workers still hold their owned slices.
  std::vector<double> full(static_cast<std::size_t>(global.nrows));
  for (int r = 0; r < nranks; ++r) {
    const auto owned = workers[static_cast<std::size_t>(r)]->owned_values();
    std::copy(owned.begin(), owned.end(),
              full.begin() + static_cast<std::ptrdiff_t>(partition.begin(r)));
  }
  for (int i = -1; i <= problem.rows; ++i) {
    for (int j = -1; j <= problem.cols; ++j) {
      result.grid.at(i, j) = full[static_cast<std::size_t>(
          grid_vec_index(problem.rows, problem.cols, i, j))];
    }
  }
  transport.close();
  return result;
}

double spmv_bytes_per_point() {
  // Per interior point: 5 values + 5 column indices + 1 row pointer + 5
  // x gathers (counted once each under perfect reuse this degrades toward 5;
  // we charge 1 streaming load like the stencil) + 1 y store.
  return 5 * sizeof(double) + 5 * sizeof(std::int64_t) + sizeof(std::int64_t) +
         sizeof(double) + sizeof(double);
}

}  // namespace repro::spmv
