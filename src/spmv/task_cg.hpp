// Task-based conjugate gradients over the dataflow runtime.
//
// The paper's related work motivates exactly this ("Pipelining the CG Solver
// Over a Runtime System", "Improving performance of GMRES by reducing
// communication ..."): express a Krylov iteration as a task graph so the
// runtime overlaps the SpMV halo exchange, the dot-product reductions, and
// the vector updates. This module builds CG for the 2D Poisson problem
// (-Laplace(u) = b, matrix-free 5-point SpMV) through the DTD DSL:
//
//   * the vectors x, r, p, Ap are partitioned into `nblocks` row-blocks,
//     each homed on a virtual rank;
//   * per iteration, per block: one matrix-free SpMV task (reading the
//     neighbor blocks of p — the halo exchange becomes runtime messages),
//     dot-product partial tasks, two scalar reduction tasks, and the
//     axpy/xpby update tasks;
//   * scalars (alpha, beta, rho) are 1-element data flowing between ranks.
//
// The graph runs a fixed iteration count (Krylov recurrences have no
// data-dependent control flow within an iteration), and the caller checks
// the residual afterwards.
#pragma once

#include <span>
#include <vector>

#include "runtime/runtime.hpp"

namespace repro::spmv {

struct TaskCgResult {
  std::vector<double> x;          ///< solution, grid row-major (n*n)
  double residual_norm = 0.0;     ///< ||b - A x|| computed post-run
  rt::RunStats stats;             ///< tasks + remote traffic
};

/// Run `iterations` CG steps on -Laplace(u) = b over an n x n grid (zero
/// Dirichlet boundary), with the vectors split into `nblocks` row-blocks on
/// as many virtual ranks. Throws on invalid arguments.
TaskCgResult task_cg(int n, std::span<const double> b, int nblocks,
                     int iterations, int workers_per_rank = 1);

}  // namespace repro::spmv
