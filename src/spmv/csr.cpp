#include "spmv/csr.hpp"

#include <array>
#include <stdexcept>

namespace repro::spmv {

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  if (static_cast<std::int64_t>(x.size()) != ncols ||
      static_cast<std::int64_t>(y.size()) != nrows) {
    throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  }
  for (std::int64_t i = 0; i < nrows; ++i) {
    double sum = 0.0;
    for (std::int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      sum += val[k] * x[static_cast<std::size_t>(col[k])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

double CsrMatrix::traffic_bytes() const {
  const double entries = static_cast<double>(nnz());
  return entries * (sizeof(double) + sizeof(std::int64_t)   // val + col
                    + sizeof(double))                        // x gather
         + static_cast<double>(nrows) *
               (sizeof(std::int64_t) + sizeof(double));      // row_ptr + y
}

namespace {

/// Shared skeleton: weights(i, j) supplies the five coefficients per point.
template <typename WeightsAt>
CsrMatrix build_grid_matrix_impl(int rows, int cols, WeightsAt weights_at) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("build_grid_matrix: empty grid");
  }
  CsrMatrix m;
  m.nrows = static_cast<std::int64_t>(rows + 2) * (cols + 2);
  m.ncols = m.nrows;
  m.row_ptr.reserve(static_cast<std::size_t>(m.nrows) + 1);
  m.row_ptr.push_back(0);

  for (int i = -1; i <= rows; ++i) {
    for (int j = -1; j <= cols; ++j) {
      const bool ring = i < 0 || i >= rows || j < 0 || j >= cols;
      if (ring) {
        // Identity row: the Dirichlet value is a fixed point of the update.
        m.col.push_back(grid_vec_index(rows, cols, i, j));
        m.val.push_back(1.0);
      } else {
        // Stencil evaluation order: center, north, south, west, east — the
        // same floating-point order as the serial sweep and tile kernel, so
        // the SpMV route is bit-identical to the stencil routes.
        const std::array<double, 5> w = weights_at(i, j);
        m.col.push_back(grid_vec_index(rows, cols, i, j));
        m.val.push_back(w[stencil::kCoeffCenter]);
        m.col.push_back(grid_vec_index(rows, cols, i - 1, j));
        m.val.push_back(w[stencil::kCoeffNorth]);
        m.col.push_back(grid_vec_index(rows, cols, i + 1, j));
        m.val.push_back(w[stencil::kCoeffSouth]);
        m.col.push_back(grid_vec_index(rows, cols, i, j - 1));
        m.val.push_back(w[stencil::kCoeffWest]);
        m.col.push_back(grid_vec_index(rows, cols, i, j + 1));
        m.val.push_back(w[stencil::kCoeffEast]);
      }
      m.row_ptr.push_back(m.nnz());
    }
  }
  return m;
}

}  // namespace

CsrMatrix build_grid_matrix(int rows, int cols, const stencil::Stencil5& w) {
  return build_grid_matrix_impl(rows, cols, [&w](int, int) {
    return std::array<double, 5>{w.center, w.north, w.south, w.west, w.east};
  });
}

CsrMatrix build_grid_matrix_variable(int rows, int cols,
                                     const stencil::CoeffFn& coefficient) {
  if (!coefficient) {
    throw std::invalid_argument("build_grid_matrix_variable: null function");
  }
  return build_grid_matrix_impl(
      rows, cols, [&](int i, int j) { return coefficient(i, j); });
}

CsrMatrix build_problem_matrix(const stencil::Problem& problem) {
  return problem.coefficient
             ? build_grid_matrix_variable(problem.rows, problem.cols,
                                          problem.coefficient)
             : build_grid_matrix(problem.rows, problem.cols, problem.weights);
}

}  // namespace repro::spmv
