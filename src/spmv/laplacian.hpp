// Poisson/Laplacian system builders and dense-vector kernels.
//
// The paper motivates stencils as "key components in many algorithms like
// geometric multigrid or Krylov solvers". These helpers provide the SPD
// 5-point Laplacian system A u = b (Dirichlet boundaries folded into b) that
// the CG and multigrid example applications solve, plus the BLAS-1 kernels
// a Krylov iteration needs.
#pragma once

#include <span>
#include <vector>

#include "spmv/csr.hpp"
#include "stencil/grid.hpp"

namespace repro::spmv {

/// The SPD matrix of -Laplace(u) = f on a rows x cols interior grid with
/// Dirichlet boundaries: 4 on the diagonal, -1 for each in-grid neighbor
/// (row-major interior indexing, no ring).
CsrMatrix build_laplacian_matrix(int rows, int cols);

/// Right-hand side for -Laplace(u) = f with boundary values g: b(i,j) =
/// f(i,j) + sum of g over the point's out-of-grid neighbors.
std::vector<double> build_poisson_rhs(int rows, int cols,
                                      const stencil::CellFn& f,
                                      const stencil::CellFn& g);

// BLAS-1 kernels for Krylov iterations.
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
/// y = x + beta * y (classic CG direction update)
void xpby(std::span<const double> x, double beta, std::span<double> y);

/// Result of a CG solve.
struct CgResult {
  std::vector<double> x;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Conjugate gradients on an SPD CsrMatrix. Stops when ||r|| <= rtol*||b||
/// or after max_iterations.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            double rtol = 1e-8, int max_iterations = 10000);

}  // namespace repro::spmv
