#include "spmv/task_cg.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "runtime/dtd.hpp"
#include "spmv/partition.hpp"

namespace repro::spmv {

namespace {

using rt::dtd::Access;
using rt::dtd::DataHandle;
using rt::dtd::DtdProgram;
using rt::dtd::DtdTaskView;

/// Matrix-free block SpMV: ap = (-Laplace) p over grid rows [r0, r1) of an
/// n-column grid, reading the last row of the block above (may be empty) and
/// the first row of the block below (may be empty). Zero Dirichlet boundary.
std::vector<double> block_spmv(std::span<const double> p_above,
                               std::span<const double> p_block,
                               std::span<const double> p_below, int n,
                               int rows) {
  std::vector<double> ap(static_cast<std::size_t>(rows) * n);
  auto at = [&](int i, int j) -> double {
    if (j < 0 || j >= n) return 0.0;
    if (i < 0) {
      return p_above.empty() ? 0.0
                             : p_above[p_above.size() - static_cast<std::size_t>(n) +
                                       static_cast<std::size_t>(j)];
    }
    if (i >= rows) {
      return p_below.empty() ? 0.0 : p_below[static_cast<std::size_t>(j)];
    }
    return p_block[static_cast<std::size_t>(i) * n + j];
  };
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < n; ++j) {
      ap[static_cast<std::size_t>(i) * n + j] =
          4.0 * at(i, j) - at(i - 1, j) - at(i + 1, j) - at(i, j - 1) -
          at(i, j + 1);
    }
  }
  return ap;
}

double block_dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

TaskCgResult task_cg(int n, std::span<const double> b, int nblocks,
                     int iterations, int workers_per_rank) {
  if (n < 1 || static_cast<std::size_t>(n) * n != b.size()) {
    throw std::invalid_argument("task_cg: rhs size must be n*n");
  }
  if (nblocks < 1 || nblocks > n || iterations < 0) {
    throw std::invalid_argument("task_cg: bad nblocks/iterations");
  }

  const RowPartition part(n, nblocks);  // partition of GRID ROWS
  DtdProgram program;

  // Per-block vector handles; scalars live on rank 0.
  std::vector<DataHandle> hx, hr, hp, hap, hpap, hrr;
  for (int blk = 0; blk < nblocks; ++blk) {
    const auto rows = static_cast<std::size_t>(part.count(blk));
    std::vector<double> rhs(rows * static_cast<std::size_t>(n));
    std::copy(b.begin() + static_cast<std::ptrdiff_t>(part.begin(blk)) * n,
              b.begin() + static_cast<std::ptrdiff_t>(part.end(blk)) * n,
              rhs.begin());
    const std::string id = std::to_string(blk);
    hx.push_back(program.data("x" + id, blk,
                              std::vector<double>(rhs.size(), 0.0)));
    hr.push_back(program.data("r" + id, blk, rhs));
    hp.push_back(program.data("p" + id, blk, std::move(rhs)));
    hap.push_back(program.data("ap" + id, blk,
                               std::vector<double>(rows * n, 0.0)));
    hpap.push_back(program.data("pap" + id, blk, {0.0}));
    hrr.push_back(program.data("rr" + id, blk, {0.0}));
  }
  const DataHandle rho = program.data("rho", 0, {0.0});
  const DataHandle alpha = program.data("alpha", 0, {0.0});
  const DataHandle beta = program.data("beta", 0, {0.0});

  // rho_0 = r . r
  for (int blk = 0; blk < nblocks; ++blk) {
    program.insert_task("rr-partial", blk,
                        {{hr[blk], Access::Read}, {hrr[blk], Access::Write}},
                        [r = hr[blk], out = hrr[blk]](DtdTaskView& t) {
                          const auto v = t.read(r);
                          t.write(out, {block_dot(v, v)});
                        });
  }
  {
    std::vector<std::pair<DataHandle, Access>> acc{{rho, Access::Write}};
    for (int blk = 0; blk < nblocks; ++blk) acc.push_back({hrr[blk], Access::Read});
    program.insert_task("rho-init", 0, acc,
                        [parts = hrr, rho](DtdTaskView& t) {
                          double sum = 0.0;
                          for (const auto& h : parts) sum += t.read(h)[0];
                          t.write(rho, {sum});
                        });
  }

  for (int it = 0; it < iterations; ++it) {
    // ap_b = A p (halo: neighbor blocks of p).
    for (int blk = 0; blk < nblocks; ++blk) {
      std::vector<std::pair<DataHandle, Access>> acc{
          {hp[blk], Access::Read}, {hap[blk], Access::Write}};
      if (blk > 0) acc.push_back({hp[blk - 1], Access::Read});
      if (blk < nblocks - 1) acc.push_back({hp[blk + 1], Access::Read});
      const int rows = static_cast<int>(part.count(blk));
      program.insert_task(
          "spmv", blk, acc,
          [blk, nblocks, n, rows, hp, ap = hap[blk]](DtdTaskView& t) {
            const std::span<const double> none;
            t.write(ap, block_spmv(blk > 0 ? t.read(hp[blk - 1]) : none,
                                   t.read(hp[blk]),
                                   blk < nblocks - 1 ? t.read(hp[blk + 1])
                                                     : none,
                                   n, rows));
          });
    }
    // alpha = rho / (p . Ap)
    for (int blk = 0; blk < nblocks; ++blk) {
      program.insert_task(
          "pap-partial", blk,
          {{hp[blk], Access::Read}, {hap[blk], Access::Read},
           {hpap[blk], Access::Write}},
          [p = hp[blk], ap = hap[blk], out = hpap[blk]](DtdTaskView& t) {
            t.write(out, {block_dot(t.read(p), t.read(ap))});
          });
    }
    {
      std::vector<std::pair<DataHandle, Access>> acc{
          {rho, Access::Read}, {alpha, Access::Write}};
      for (int blk = 0; blk < nblocks; ++blk) {
        acc.push_back({hpap[blk], Access::Read});
      }
      program.insert_task("alpha", 0, acc,
                          [parts = hpap, rho, alpha](DtdTaskView& t) {
                            double pap = 0.0;
                            for (const auto& h : parts) pap += t.read(h)[0];
                            t.write(alpha, {t.read(rho)[0] / pap});
                          });
    }
    // x += alpha p;  r -= alpha Ap;  partial = r . r
    for (int blk = 0; blk < nblocks; ++blk) {
      program.insert_task(
          "update", blk,
          {{alpha, Access::Read}, {hp[blk], Access::Read},
           {hap[blk], Access::Read}, {hx[blk], Access::ReadWrite},
           {hr[blk], Access::ReadWrite}, {hrr[blk], Access::Write}},
          [alpha, p = hp[blk], ap = hap[blk], x = hx[blk], r = hr[blk],
           out = hrr[blk]](DtdTaskView& t) {
            const double a = t.read(alpha)[0];
            auto xv = t.read_vector(x);
            auto rv = t.read_vector(r);
            const auto pv = t.read(p);
            const auto apv = t.read(ap);
            for (std::size_t i = 0; i < xv.size(); ++i) {
              xv[i] += a * pv[i];
              rv[i] -= a * apv[i];
            }
            t.write(out, {block_dot(rv, rv)});
            t.write(x, std::move(xv));
            t.write(r, std::move(rv));
          });
    }
    // beta = rho_new / rho;  rho = rho_new
    {
      std::vector<std::pair<DataHandle, Access>> acc{
          {rho, Access::ReadWrite}, {beta, Access::Write}};
      for (int blk = 0; blk < nblocks; ++blk) {
        acc.push_back({hrr[blk], Access::Read});
      }
      program.insert_task("beta", 0, acc,
                          [parts = hrr, rho, beta](DtdTaskView& t) {
                            double rr_next = 0.0;
                            for (const auto& h : parts) {
                              rr_next += t.read(h)[0];
                            }
                            const double rr_old = t.read(rho)[0];
                            t.write(beta, {rr_next / rr_old});
                            t.write(rho, {rr_next});
                          });
    }
    // p = r + beta p
    for (int blk = 0; blk < nblocks; ++blk) {
      program.insert_task(
          "direction", blk,
          {{beta, Access::Read}, {hr[blk], Access::Read},
           {hp[blk], Access::ReadWrite}},
          [beta, r = hr[blk], p = hp[blk]](DtdTaskView& t) {
            const double bt = t.read(beta)[0];
            auto pv = t.read_vector(p);
            const auto rv = t.read(r);
            for (std::size_t i = 0; i < pv.size(); ++i) {
              pv[i] = rv[i] + bt * pv[i];
            }
            t.write(p, std::move(pv));
          });
    }
  }

  rt::TaskGraph graph = program.compile();
  rt::Config config;
  config.nranks = nblocks;
  config.workers_per_rank = workers_per_rank;
  rt::Runtime runtime(config);

  TaskCgResult result;
  result.stats = runtime.run(graph);

  result.x.resize(b.size());
  for (int blk = 0; blk < nblocks; ++blk) {
    const rt::Buffer block = runtime.result(program.result_key(hx[blk]),
                                            program.result_slot(hx[blk]));
    std::copy(block->begin(), block->end(),
              result.x.begin() + static_cast<std::ptrdiff_t>(part.begin(blk)) * n);
  }

  // Post-run residual ||b - A x||.
  double rnorm = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      auto at = [&](int ii, int jj) -> double {
        if (ii < 0 || ii >= n || jj < 0 || jj >= n) return 0.0;
        return result.x[static_cast<std::size_t>(ii) * n + jj];
      };
      const double ax = 4.0 * at(i, j) - at(i - 1, j) - at(i + 1, j) -
                        at(i, j - 1) - at(i, j + 1);
      const double diff = b[static_cast<std::size_t>(i) * n + j] - ax;
      rnorm += diff * diff;
    }
  }
  result.residual_norm = std::sqrt(rnorm);
  return result;
}

}  // namespace repro::spmv
