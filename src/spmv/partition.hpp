// 1D contiguous row partition, PETSc's default matrix/vector layout
// ("PETSc by default will partition the sparse matrix by rows with each
// process having a block of matrix rows").
#pragma once

#include <cstdint>
#include <stdexcept>

namespace repro::spmv {

class RowPartition {
 public:
  RowPartition(std::int64_t n, int nranks) : n_(n), nranks_(nranks) {
    if (n < 1 || nranks < 1 || n < nranks) {
      throw std::invalid_argument("RowPartition: need n >= nranks >= 1");
    }
  }

  std::int64_t n() const { return n_; }
  int nranks() const { return nranks_; }

  /// First row owned by `rank`. Balanced: first n%p ranks get one extra row.
  std::int64_t begin(int rank) const {
    const std::int64_t base = n_ / nranks_;
    const std::int64_t rem = n_ % nranks_;
    return rank * base + (rank < rem ? rank : rem);
  }
  std::int64_t end(int rank) const { return begin(rank + 1); }
  std::int64_t count(int rank) const { return end(rank) - begin(rank); }

  int owner(std::int64_t row) const {
    if (row < 0 || row >= n_) {
      throw std::out_of_range("RowPartition: row out of range");
    }
    const std::int64_t base = n_ / nranks_;
    const std::int64_t rem = n_ % nranks_;
    const std::int64_t pivot = rem * (base + 1);
    if (row < pivot) return static_cast<int>(row / (base + 1));
    return static_cast<int>(rem + (row - pivot) / base);
  }

 private:
  std::int64_t n_;
  int nranks_;
};

}  // namespace repro::spmv
