// Mini-PETSc distributed Jacobi: x_{k+1} = A x_k over row-partitioned CSR.
//
// Reproduces the paper's baseline implementation: the grid is flattened into
// a (ring-extended) 1D vector, the Jacobi update is a CSR matrix partitioned
// by contiguous row blocks with one single-threaded rank per (virtual) core,
// and each iteration performs a VecScatter-style ghost exchange followed by
// a local SpMV. Ranks run as real threads communicating only through the
// in-memory Transport, mirroring MPI point-to-point semantics.
//
// The scatter plan is negotiated at setup time with request-list messages
// (each rank tells every other rank which of its rows it needs), exactly the
// handshake a VecScatterCreate performs.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"
#include "stencil/grid.hpp"
#include "stencil/problem.hpp"

namespace repro::spmv {

struct SpmvRunResult {
  stencil::Grid2D grid;       ///< gathered final field (interior + ring)
  double wall_time_s = 0.0;
  std::uint64_t messages = 0;        ///< iteration-phase messages
  std::uint64_t bytes = 0;           ///< iteration-phase bytes
  std::uint64_t setup_messages = 0;  ///< scatter-plan handshake messages
  double local_traffic_bytes_per_iter = 0.0;  ///< CSR memory-traffic model
};

/// Run the PETSc-like solver on `nranks` single-threaded virtual MPI ranks.
/// `metrics`, when given, receives the transport's net_* families plus
/// spmv_iteration_messages_total / spmv_setup_messages_total /
/// spmv_iteration_bytes_total.
SpmvRunResult run_petsc_like(
    const stencil::Problem& problem, int nranks,
    std::shared_ptr<obs::MetricsRegistry> metrics = nullptr);

/// Analytic memory traffic per grid point per iteration for the CSR SpMV
/// formulation (values + 64-bit indices + vector traffic), in bytes. The
/// stencil formulation moves 16-24 B/point; the ratio of the two is the
/// paper's explanation for PETSc's ~2x deficit.
double spmv_bytes_per_point();

/// The stencil formulation's bytes/point bounds (paper section V: "16 to 24
/// Bytes ... depending on the size of tiles").
inline constexpr double kStencilBytesPerPointMin = 16.0;
inline constexpr double kStencilBytesPerPointMax = 24.0;

}  // namespace repro::spmv
