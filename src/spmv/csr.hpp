// Compressed Sparse Row matrix with 64-bit indices (mini-PETSc substrate).
//
// The paper's PETSc baseline "expand[s] the 2D compute grid points into 1D
// solution vector, and the corresponding 5 points stencil update expresses
// as a sparse matrix", compiled "using 64-bit integers". Its performance gap
// vs the tile stencil is explained by exactly this structure: every FLOP
// drags a 64-bit column index along, "at the very least doubl[ing] the
// number of memory loads".
//
// To make the matrix route bit-identical to the stencil route, the vector
// includes the Dirichlet ring: boundary cells are rows of the identity, and
// interior rows store their five coefficients in the stencil's evaluation
// order (center, north, south, west, east).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stencil/kernel.hpp"
#include "stencil/problem.hpp"

namespace repro::spmv {

struct CsrMatrix {
  std::int64_t nrows = 0;
  std::int64_t ncols = 0;
  std::vector<std::int64_t> row_ptr;  ///< size nrows+1
  std::vector<std::int64_t> col;      ///< size nnz, global column indices
  std::vector<double> val;            ///< size nnz

  std::int64_t nnz() const { return static_cast<std::int64_t>(col.size()); }

  /// y = A * x (serial). x.size() == ncols, y.size() == nrows.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Bytes touched by one multiply under a cold-cache CSR traffic model:
  /// values + column indices + row pointers + one x load per entry + y store.
  double traffic_bytes() const;
};

/// Linear index of grid cell (i,j), i in [-1,rows], j in [-1,cols], in the
/// ring-extended vector of length (rows+2)*(cols+2).
inline std::int64_t grid_vec_index(int rows, int cols, int i, int j) {
  (void)rows;
  return static_cast<std::int64_t>(i + 1) * (cols + 2) + (j + 1);
}

/// Build the ring-extended Jacobi update matrix for a rows x cols interior:
/// interior rows carry the five stencil weights, ring rows are identity
/// (Dirichlet values are fixed points of the update).
CsrMatrix build_grid_matrix(int rows, int cols,
                            const stencil::Stencil5& weights);

/// Variable-coefficient variant: interior row (i,j) carries coefficient(i,j)
/// in the same (center, north, south, west, east) order.
CsrMatrix build_grid_matrix_variable(int rows, int cols,
                                     const stencil::CoeffFn& coefficient);

/// Dispatch on problem.coefficient.
CsrMatrix build_problem_matrix(const stencil::Problem& problem);

}  // namespace repro::spmv
