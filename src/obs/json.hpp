// Minimal JSON document model: build, serialize, parse.
//
// Exists so run reports and metric exports are real JSON without an external
// dependency. Objects preserve insertion order (stable, diffable reports);
// signed/unsigned integers and doubles are distinct alternatives so 64-bit
// counters round-trip exactly all the way to UINT64_MAX (values above 2^53
// would silently lose low bits through a double); the parser is a strict
// recursive-descent one (UTF-8 pass-through, \uXXXX escapes decoded,
// depth-limited) used by the report validator and tests. Integer literals
// beyond uint64 range are rejected rather than rounded — a lossy round-trip
// is a schema violation, not a parse success.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace repro::obs {

class Json {
 public:
  enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;  // insertion order preserved

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : Json(static_cast<unsigned long long>(v)) {}
  Json(unsigned long long v);  // lossless: stays Uint above INT64_MAX
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_int() const { return type() == Type::Int; }
  bool is_uint() const { return type() == Type::Uint; }
  bool is_double() const { return type() == Type::Double; }
  bool is_number() const { return is_int() || is_uint() || is_double(); }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  bool as_bool() const { return std::get<bool>(value_); }
  std::int64_t as_int() const;     ///< Int, wrapped Uint, or truncated Double
  std::uint64_t as_uint() const;   ///< Uint, non-negative Int, or truncated
                                   ///< Double; exact for 64-bit counters
  double as_number() const;        ///< Int, Uint or Double, widened
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  /// Object access. operator[] inserts a null member if absent (a null Json
  /// silently becomes an object); find() returns nullptr when absent.
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;

  /// Array append (a null Json silently becomes an array).
  void push_back(Json v);

  std::size_t size() const;  ///< elements (array) or members (object)

  /// Serialize. indent == 0 -> compact one-liner; indent > 0 -> pretty with
  /// that many spaces per level. Non-finite doubles serialize as null.
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (trailing garbage rejected).
  /// Returns false and fills *error (when non-null) on malformed input.
  static bool parse(std::string_view text, Json* out, std::string* error);

 private:
  explicit Json(Array a) : value_(std::move(a)) {}
  explicit Json(Object o) : value_(std::move(o)) {}

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      value_{nullptr};
};

}  // namespace repro::obs
