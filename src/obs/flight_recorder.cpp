#include "obs/flight_recorder.hpp"

#ifndef REPRO_OBS_DISABLE

namespace repro::obs {

FlightRecorder::FlightRecorder(std::size_t lanes, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      lanes_(lanes == 0 ? 1 : lanes) {
  for (Lane& lane : lanes_) {
    lane.slots = std::vector<Slot>(capacity_);
  }
}

void FlightRecorder::record(std::size_t lane_idx, const FlightSample& sample) {
  if (lane_idx >= lanes_.size()) return;
  Lane& lane = lanes_[lane_idx];
  const std::uint64_t n = lane.count.load(std::memory_order_relaxed);
  Slot& slot = lane.slots[n % capacity_];

  // Odd sequence = write in progress. release on the odd store orders it
  // before the field stores for acquire readers; the closing even store
  // releases the fields themselves.
  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  slot.t_s.store(sample.t_s, std::memory_order_relaxed);
  slot.superstep.store(sample.superstep, std::memory_order_relaxed);
  slot.tasks_executed.store(sample.tasks_executed, std::memory_order_relaxed);
  slot.steals.store(sample.steals, std::memory_order_relaxed);
  slot.wire_bytes.store(sample.wire_bytes, std::memory_order_relaxed);
  slot.queue_depth.store(sample.queue_depth, std::memory_order_relaxed);
  slot.idle_halo_s.store(sample.idle_halo_s, std::memory_order_relaxed);
  slot.idle_noready_s.store(sample.idle_noready_s, std::memory_order_relaxed);
  slot.idle_steal_s.store(sample.idle_steal_s, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(seq + 2, std::memory_order_release);
  lane.count.store(n + 1, std::memory_order_release);
}

std::vector<FlightSample> FlightRecorder::snapshot(std::size_t lane_idx) const {
  std::vector<FlightSample> out;
  if (lane_idx >= lanes_.size()) return out;
  const Lane& lane = lanes_[lane_idx];
  const std::uint64_t n = lane.count.load(std::memory_order_acquire);
  const std::uint64_t retained = n < capacity_ ? n : capacity_;
  out.reserve(retained);
  for (std::uint64_t k = 0; k < retained; ++k) {
    const std::uint64_t idx = (n - retained + k) % capacity_;
    const Slot& slot = lane.slots[idx];
    const std::uint64_t s0 = slot.seq.load(std::memory_order_acquire);
    if (s0 & 1) continue;  // writer mid-flight, drop this slot
    std::atomic_thread_fence(std::memory_order_acquire);
    FlightSample sample;
    sample.t_s = slot.t_s.load(std::memory_order_relaxed);
    sample.superstep = slot.superstep.load(std::memory_order_relaxed);
    sample.tasks_executed = slot.tasks_executed.load(std::memory_order_relaxed);
    sample.steals = slot.steals.load(std::memory_order_relaxed);
    sample.wire_bytes = slot.wire_bytes.load(std::memory_order_relaxed);
    sample.queue_depth = slot.queue_depth.load(std::memory_order_relaxed);
    sample.idle_halo_s = slot.idle_halo_s.load(std::memory_order_relaxed);
    sample.idle_noready_s = slot.idle_noready_s.load(std::memory_order_relaxed);
    sample.idle_steal_s = slot.idle_steal_s.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_acquire) != s0) continue;  // torn
    out.push_back(sample);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded(std::size_t lane_idx) const {
  if (lane_idx >= lanes_.size()) return 0;
  return lanes_[lane_idx].count.load(std::memory_order_acquire);
}

}  // namespace repro::obs

#endif  // REPRO_OBS_DISABLE
