// Always-on flight recorder: bounded-memory rings of coarse progress samples.
//
// One lane per worker thread (the runtime allocates nranks x workers lanes),
// each lane a fixed-capacity ring of samples. A sample is a handful of
// cumulative counters — superstep index, tasks executed, idle-taxonomy
// seconds, steals, bytes on wire, ready-queue depth — cheap enough to record
// at every idle transition without perturbing the run (<2% on the micro
// kernels, see bench_micro_kernels --flight-recorder).
//
// Writers are wait-free and never contend: a lane has exactly one writer, and
// every sample field is a relaxed atomic guarded by an even/odd per-slot
// sequence counter (seqlock per slot). A concurrent reader that catches a
// slot mid-write sees an odd or changed sequence and discards the slot, so a
// live scrape (TelemetryCollector, repro_top dumps) never blocks a worker and
// never observes a torn sample.
//
// Under -DREPRO_OBS_DISABLE the recorder compiles to an empty struct whose
// methods are constexpr no-ops — zero memory, zero instructions.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace repro::obs {

/// One coarse progress sample. All counter fields are cumulative since lane
/// start (deltas are taken by consumers), times are steady-clock seconds.
struct FlightSample {
  double t_s = 0.0;            ///< steady-clock capture time (seconds)
  std::uint64_t superstep = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t queue_depth = 0;
  double idle_halo_s = 0.0;    ///< waiting on a halo dependency
  double idle_noready_s = 0.0; ///< ready queue empty, nothing to steal
  double idle_steal_s = 0.0;   ///< idle gap ended by a successful steal
};

#ifndef REPRO_OBS_DISABLE

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;  ///< samples per lane

  explicit FlightRecorder(std::size_t lanes,
                          std::size_t capacity = kDefaultCapacity);

  std::size_t lanes() const { return lanes_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Record a sample into `lane`. Wait-free; exactly one writer per lane
  /// (enforced by the caller — the runtime maps each worker to its own lane).
  void record(std::size_t lane, const FlightSample& sample);

  /// Consistent snapshot of a lane's retained samples, oldest first. Slots
  /// caught mid-write are skipped, so the result is torn-free but may be one
  /// sample short of the writer's count.
  std::vector<FlightSample> snapshot(std::size_t lane) const;

  /// Total samples ever recorded into `lane` (retained = min(count,
  /// capacity)).
  std::uint64_t recorded(std::size_t lane) const;

 private:
  // Slot fields are individually-relaxed atomics; `seq` (even = stable,
  // odd = write in progress) makes the group consistent. Per-slot, not a
  // lane-wide seqlock, so the reader only discards the slot actually racing.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<double> t_s{0.0};
    std::atomic<std::uint64_t> superstep{0};
    std::atomic<std::uint64_t> tasks_executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> wire_bytes{0};
    std::atomic<std::uint64_t> queue_depth{0};
    std::atomic<double> idle_halo_s{0.0};
    std::atomic<double> idle_noready_s{0.0};
    std::atomic<double> idle_steal_s{0.0};
  };
  struct Lane {
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> count{0};  ///< samples ever written
  };

  std::size_t capacity_;
  std::vector<Lane> lanes_;
};

#else  // REPRO_OBS_DISABLE

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 0;
  explicit FlightRecorder(std::size_t, std::size_t = 0) {}
  std::size_t lanes() const { return 0; }
  std::size_t capacity() const { return 0; }
  void record(std::size_t, const FlightSample&) {}
  std::vector<FlightSample> snapshot(std::size_t) const { return {}; }
  std::uint64_t recorded(std::size_t) const { return 0; }
};

#endif  // REPRO_OBS_DISABLE

}  // namespace repro::obs
