#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace repro::obs {

std::vector<double> encode_telemetry(const TelemetrySnapshot& snap) {
  return {static_cast<double>(snap.rank),
          static_cast<double>(snap.superstep),
          static_cast<double>(snap.tasks_executed),
          static_cast<double>(snap.sent_messages),
          static_cast<double>(snap.sent_bytes),
          static_cast<double>(snap.steals),
          static_cast<double>(snap.queue_depth),
          snap.idle_halo_s,
          snap.idle_noready_s,
          snap.idle_steal_s,
          snap.t_s};
}

bool decode_telemetry(const std::vector<double>& payload,
                      TelemetrySnapshot* out) {
  if (payload.size() != kTelemetryDoubles) return false;
  TelemetrySnapshot snap;
  snap.rank = static_cast<int>(payload[0]);
  snap.superstep = static_cast<std::uint64_t>(payload[1]);
  snap.tasks_executed = static_cast<std::uint64_t>(payload[2]);
  snap.sent_messages = static_cast<std::uint64_t>(payload[3]);
  snap.sent_bytes = static_cast<std::uint64_t>(payload[4]);
  snap.steals = static_cast<std::uint64_t>(payload[5]);
  snap.queue_depth = static_cast<std::uint64_t>(payload[6]);
  snap.idle_halo_s = payload[7];
  snap.idle_noready_s = payload[8];
  snap.idle_steal_s = payload[9];
  snap.t_s = payload[10];
  if (out != nullptr) *out = snap;
  return true;
}

TelemetryCollector::TelemetryCollector(int nranks, DetectorConfig config,
                                       std::shared_ptr<MetricsRegistry> registry,
                                       std::string source)
    : nranks_(nranks < 1 ? 1 : nranks),
      config_(config),
      source_(std::move(source)),
      registry_(std::move(registry)),
      last_(static_cast<std::size_t>(nranks_)),
      snapshots_per_rank_(static_cast<std::size_t>(nranks_), 0) {
  for (TelemetrySnapshot& s : last_) s.rank = -1;  // "never reported"
  if (registry_ != nullptr) {
    snapshots_total_ = registry_->counter(
        "obs_telemetry_snapshots_total", {{"source", source_}},
        "Telemetry snapshots ingested by the collector");
    events_total_ = registry_->counter(
        "obs_telemetry_detector_events_total", {{"source", source_}},
        "Online-detector rising edges");
    const int series = std::min(nranks_, kMaxRankSeries);
    superstep_gauges_.resize(static_cast<std::size_t>(series));
    queue_gauges_.resize(static_cast<std::size_t>(series));
    for (int r = 0; r < series; ++r) {
      const Labels labels = {{"source", source_}, {"rank", std::to_string(r)}};
      superstep_gauges_[static_cast<std::size_t>(r)] = registry_->gauge(
          "obs_telemetry_superstep", labels,
          "Last superstep boundary a rank reported");
      queue_gauges_[static_cast<std::size_t>(r)] = registry_->gauge(
          "obs_telemetry_queue_depth", labels,
          "Ready-queue depth at a rank's last report");
    }
  }
}

void TelemetryCollector::ingest(const TelemetrySnapshot& snap) {
  if (snap.rank < 0 || snap.rank >= nranks_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto r = static_cast<std::size_t>(snap.rank);
  const TelemetrySnapshot& prev = last_[r];
  const bool first = prev.rank < 0;

  Delta delta;
  delta.rank = snap.rank;
  delta.superstep = snap.superstep;
  delta.d_tasks = snap.tasks_executed - (first ? 0 : prev.tasks_executed);
  delta.d_messages = snap.sent_messages - (first ? 0 : prev.sent_messages);
  delta.d_bytes = snap.sent_bytes - (first ? 0 : prev.sent_bytes);
  delta.d_steals = snap.steals - (first ? 0 : prev.steals);
  delta.queue_depth = snap.queue_depth;
  delta.d_idle_halo_s = snap.idle_halo_s - (first ? 0.0 : prev.idle_halo_s);
  delta.d_idle_noready_s =
      snap.idle_noready_s - (first ? 0.0 : prev.idle_noready_s);
  delta.d_idle_steal_s = snap.idle_steal_s - (first ? 0.0 : prev.idle_steal_s);
  deltas_.push_back(delta);

  last_[r] = snap;
  ++snapshots_per_rank_[r];
  if (snapshots_total_) snapshots_total_->inc();
  if (r < superstep_gauges_.size() && superstep_gauges_[r]) {
    superstep_gauges_[r]->set(static_cast<double>(snap.superstep));
    queue_gauges_[r]->set(static_cast<double>(snap.queue_depth));
  }

  evaluate_detectors_locked(snap, delta);
}

void TelemetryCollector::evaluate_detectors_locked(
    const TelemetrySnapshot& snap, const Delta& delta) {
  // Straggler: only meaningful once every rank has reported at least once
  // (before that, lag just measures boot order).
  if (config_.straggler_lag > 0) {
    bool all = true;
    for (const TelemetrySnapshot& s : last_) all = all && s.rank >= 0;
    if (all) {
      std::vector<std::uint64_t> steps;
      steps.reserve(last_.size());
      for (const TelemetrySnapshot& s : last_) steps.push_back(s.superstep);
      std::sort(steps.begin(), steps.end());
      const std::uint64_t median = steps[steps.size() / 2];
      for (int rank = 0; rank < nranks_; ++rank) {
        const TelemetrySnapshot& s = last_[static_cast<std::size_t>(rank)];
        const std::uint64_t lag =
            median > s.superstep ? median - s.superstep : 0;
        set_active_locked("straggler", rank, lag >= config_.straggler_lag, s,
                          static_cast<double>(lag),
                          static_cast<double>(config_.straggler_lag));
      }
    }
  }

  // Idle-taxonomy anomaly: halo-wait share of this delta's idle time.
  if (config_.halo_share > 0.0) {
    const double idle =
        delta.d_idle_halo_s + delta.d_idle_noready_s + delta.d_idle_steal_s;
    if (idle >= config_.halo_min_idle_s) {
      const double share = delta.d_idle_halo_s / idle;
      set_active_locked("halo_share", snap.rank, share >= config_.halo_share,
                        snap, share, config_.halo_share);
    }
  }

  if (config_.queue_watermark > 0) {
    set_active_locked("queue_depth", snap.rank,
                      snap.queue_depth >= config_.queue_watermark, snap,
                      static_cast<double>(snap.queue_depth),
                      static_cast<double>(config_.queue_watermark));
  }
}

void TelemetryCollector::set_active_locked(const std::string& detector,
                                           int rank, bool active,
                                           const TelemetrySnapshot& snap,
                                           double value, double threshold) {
  const auto key = std::make_pair(detector, rank);
  if (active && active_.insert(key).second) {
    events_.push_back(
        TelemetryEvent{detector, rank, snap.superstep, value, threshold});
    if (events_total_) events_total_->inc();
  } else if (!active) {
    active_.erase(key);
  }
}

std::vector<TelemetrySnapshot> TelemetryCollector::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

std::vector<TelemetryEvent> TelemetryCollector::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t TelemetryCollector::deltas_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deltas_.size();
}

std::uint64_t TelemetryCollector::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Delta> sorted = deltas_;
  // Canonical order: ingest interleaving across ranks is racy, the per-rank
  // content is not. (rank, superstep) is unique — one delta per boundary.
  std::sort(sorted.begin(), sorted.end(), [](const Delta& a, const Delta& b) {
    if (a.superstep != b.superstep) return a.superstep < b.superstep;
    return a.rank < b.rank;
  });
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (const Delta& d : sorted) {
    mix(static_cast<std::uint64_t>(d.rank));
    mix(d.superstep);
    mix(d.d_tasks);
    mix(d.d_messages);
    mix(d.d_bytes);
  }
  return h;
}

Json TelemetryCollector::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc = Json::object();
  doc["schema"] = "repro.telemetry/v1";
  doc["source"] = source_;
  doc["nranks"] = nranks_;

  Json config = Json::object();
  config["straggler_lag"] = config_.straggler_lag;
  config["halo_share"] = config_.halo_share;
  config["halo_min_idle_s"] = config_.halo_min_idle_s;
  config["queue_watermark"] = config_.queue_watermark;
  doc["config"] = std::move(config);

  Json ranks = Json::array();
  for (int r = 0; r < nranks_; ++r) {
    const TelemetrySnapshot& s = last_[static_cast<std::size_t>(r)];
    Json entry = Json::object();
    entry["rank"] = r;
    entry["reported"] = s.rank >= 0;
    entry["superstep"] = s.superstep;
    entry["tasks_executed"] = s.tasks_executed;
    entry["sent_messages"] = s.sent_messages;
    entry["sent_bytes"] = s.sent_bytes;
    entry["steals"] = s.steals;
    entry["queue_depth"] = s.queue_depth;
    Json idle = Json::object();
    idle["halo_s"] = s.idle_halo_s;
    idle["noready_s"] = s.idle_noready_s;
    idle["steal_s"] = s.idle_steal_s;
    entry["idle"] = std::move(idle);
    entry["snapshots"] = snapshots_per_rank_[static_cast<std::size_t>(r)];
    ranks.push_back(std::move(entry));
  }
  doc["ranks"] = std::move(ranks);

  Json deltas = Json::array();
  for (const Delta& d : deltas_) {
    Json entry = Json::object();
    entry["rank"] = d.rank;
    entry["superstep"] = d.superstep;
    entry["tasks"] = d.d_tasks;
    entry["messages"] = d.d_messages;
    entry["bytes"] = d.d_bytes;
    entry["steals"] = d.d_steals;
    entry["queue_depth"] = d.queue_depth;
    entry["idle_halo_s"] = d.d_idle_halo_s;
    entry["idle_noready_s"] = d.d_idle_noready_s;
    entry["idle_steal_s"] = d.d_idle_steal_s;
    deltas.push_back(std::move(entry));
  }
  doc["deltas"] = std::move(deltas);

  Json events = Json::array();
  for (const TelemetryEvent& e : events_) {
    Json entry = Json::object();
    entry["detector"] = e.detector;
    entry["rank"] = e.rank;
    entry["superstep"] = e.superstep;
    entry["value"] = e.value;
    entry["threshold"] = e.threshold;
    events.push_back(std::move(entry));
  }
  doc["events"] = std::move(events);
  return doc;
}

bool TelemetryCollector::write_dump(const std::string& path) const {
  const std::string text = to_json().dump(2);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text << "\n";
    if (!out.flush()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

namespace {

bool telemetry_fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool require_number(const Json& obj, const char* key, std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    return telemetry_fail(error, std::string("missing numeric field '") + key +
                                     "'");
  }
  return true;
}

}  // namespace

bool validate_telemetry(const Json& doc, std::string* error) {
  if (!doc.is_object()) return telemetry_fail(error, "document not an object");
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "repro.telemetry/v1") {
    return telemetry_fail(error, "schema is not repro.telemetry/v1");
  }
  const Json* source = doc.find("source");
  if (source == nullptr || !source->is_string()) {
    return telemetry_fail(error, "missing string field 'source'");
  }
  if (!require_number(doc, "nranks", error)) return false;
  const auto nranks = doc.find("nranks")->as_int();
  if (nranks < 1) return telemetry_fail(error, "nranks must be >= 1");

  const Json* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    return telemetry_fail(error, "missing object field 'config'");
  }
  for (const char* key :
       {"straggler_lag", "halo_share", "halo_min_idle_s", "queue_watermark"}) {
    if (!require_number(*config, key, error)) return false;
  }

  const Json* ranks = doc.find("ranks");
  if (ranks == nullptr || !ranks->is_array()) {
    return telemetry_fail(error, "missing array field 'ranks'");
  }
  if (ranks->size() != static_cast<std::size_t>(nranks)) {
    return telemetry_fail(error, "ranks array size != nranks");
  }
  for (const Json& entry : ranks->as_array()) {
    if (!entry.is_object()) return telemetry_fail(error, "rank not an object");
    for (const char* key : {"rank", "superstep", "tasks_executed",
                            "sent_messages", "sent_bytes", "steals",
                            "queue_depth", "snapshots"}) {
      if (!require_number(entry, key, error)) return false;
    }
    const Json* reported = entry.find("reported");
    if (reported == nullptr || !reported->is_bool()) {
      return telemetry_fail(error, "rank missing bool field 'reported'");
    }
    const Json* idle = entry.find("idle");
    if (idle == nullptr || !idle->is_object()) {
      return telemetry_fail(error, "rank missing object field 'idle'");
    }
    for (const char* key : {"halo_s", "noready_s", "steal_s"}) {
      if (!require_number(*idle, key, error)) return false;
    }
  }

  const Json* deltas = doc.find("deltas");
  if (deltas == nullptr || !deltas->is_array()) {
    return telemetry_fail(error, "missing array field 'deltas'");
  }
  for (const Json& entry : deltas->as_array()) {
    if (!entry.is_object()) return telemetry_fail(error, "delta not an object");
    for (const char* key : {"rank", "superstep", "tasks", "messages", "bytes",
                            "steals", "queue_depth", "idle_halo_s",
                            "idle_noready_s", "idle_steal_s"}) {
      if (!require_number(entry, key, error)) return false;
    }
  }

  const Json* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    return telemetry_fail(error, "missing array field 'events'");
  }
  for (const Json& entry : events->as_array()) {
    if (!entry.is_object()) return telemetry_fail(error, "event not an object");
    const Json* detector = entry.find("detector");
    if (detector == nullptr || !detector->is_string()) {
      return telemetry_fail(error, "event missing string field 'detector'");
    }
    for (const char* key : {"rank", "superstep", "value", "threshold"}) {
      if (!require_number(entry, key, error)) return false;
    }
  }
  return true;
}

}  // namespace repro::obs
