#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace repro::obs {

namespace {

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (const char c : v) {  // minimal escaping for exposition safety
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::string render_key(const std::string& name, const Labels& labels) {
  return name + render_labels(labels);
}

/// Shortest decimal form that round-trips back to `v` exactly (so bound 0.1
/// prints "0.1", not "0.10000000000000001").
std::string format_double(double v) {
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

Json labels_json(const Labels& labels) {
  Json obj = Json::object();
  for (const auto& [k, v] : labels) obj[k] = v;
  return obj;
}

}  // namespace

#ifndef REPRO_OBS_DISABLE

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram bounds must be strictly increasing");
    }
  }
  const std::size_t n = num_buckets();
  for (auto& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    shard.sums = std::make_unique<std::atomic<double>[]>(n);
    for (std::size_t b = 0; b < n; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
      shard.sums[b].store(0.0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shards_[detail::shard_index()];
  shard.counts[b].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(shard.sums[b], v);
}

std::uint64_t Histogram::bucket_count(std::size_t b) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.counts[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::bucket_sum(std::size_t b) const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sums[b].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < num_buckets(); ++b) total += bucket_count(b);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (std::size_t b = 0; b < num_buckets(); ++b) total += bucket_sum(b);
  return total;
}

#else

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {}

#endif  // REPRO_OBS_DISABLE

std::vector<double> log2_size_bounds() {
  std::vector<double> bounds;
  bounds.reserve(63);
  for (int i = 1; i <= 63; ++i) {
    bounds.push_back(std::ldexp(1.0, i) - 1.0);  // 2^i - 1, "le" inclusive
  }
  return bounds;
}

std::vector<double> duration_seconds_bounds() {
  std::vector<double> bounds;
  bounds.reserve(25);
  double b = 1e-6;
  for (int i = 0; i < 25; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

MetricsRegistry::Entry& MetricsRegistry::locate(const std::string& name,
                                                const Labels& labels, Kind kind,
                                                std::string help) {
  const std::string key = render_key(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.name = name;
    entry.labels = labels;
    entry.help = std::move(help);
    entry.kind = kind;
    it = entries_.emplace(key, std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + key +
                           "' already registered as a different kind");
  }
  return it->second;
}

std::shared_ptr<Counter> MetricsRegistry::counter(const std::string& name,
                                                  Labels labels,
                                                  std::string help) {
#ifdef REPRO_OBS_DISABLE
  (void)name;
  (void)labels;
  (void)help;
  static const auto dummy = std::make_shared<Counter>();
  return dummy;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = locate(name, labels, Kind::Counter, std::move(help));
  if (!entry.counter) entry.counter = std::make_shared<Counter>();
  return entry.counter;
#endif
}

std::shared_ptr<Gauge> MetricsRegistry::gauge(const std::string& name,
                                              Labels labels,
                                              std::string help) {
#ifdef REPRO_OBS_DISABLE
  (void)name;
  (void)labels;
  (void)help;
  static const auto dummy = std::make_shared<Gauge>();
  return dummy;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = locate(name, labels, Kind::Gauge, std::move(help));
  if (!entry.gauge) entry.gauge = std::make_shared<Gauge>();
  return entry.gauge;
#endif
}

std::shared_ptr<Histogram> MetricsRegistry::histogram(
    const std::string& name, std::vector<double> bounds, Labels labels,
    std::string help) {
#ifdef REPRO_OBS_DISABLE
  (void)name;
  (void)labels;
  (void)help;
  static const auto dummy = std::make_shared<Histogram>(std::move(bounds));
  return dummy;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = locate(name, labels, Kind::Histogram, std::move(help));
  if (!entry.histogram) {
    entry.histogram = std::make_shared<Histogram>(std::move(bounds));
  }
  return entry.histogram;
#endif
}

void MetricsRegistry::attach(const std::string& name, Labels labels,
                             std::shared_ptr<Counter> metric,
                             std::string help) {
#ifdef REPRO_OBS_DISABLE
  (void)name;
  (void)labels;
  (void)metric;
  (void)help;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = locate(name, labels, Kind::Counter, std::move(help));
  entry.counter = std::move(metric);
#endif
}

void MetricsRegistry::attach(const std::string& name, Labels labels,
                             std::shared_ptr<Gauge> metric, std::string help) {
#ifdef REPRO_OBS_DISABLE
  (void)name;
  (void)labels;
  (void)metric;
  (void)help;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = locate(name, labels, Kind::Gauge, std::move(help));
  entry.gauge = std::move(metric);
#endif
}

void MetricsRegistry::attach(const std::string& name, Labels labels,
                             std::shared_ptr<Histogram> metric,
                             std::string help) {
#ifdef REPRO_OBS_DISABLE
  (void)name;
  (void)labels;
  (void)metric;
  (void)help;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = locate(name, labels, Kind::Histogram, std::move(help));
  entry.histogram = std::move(metric);
#endif
}

bool MetricsRegistry::remove(const std::string& name, const Labels& labels) {
#ifdef REPRO_OBS_DISABLE
  (void)name;
  (void)labels;
  return false;
#else
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(render_key(name, labels)) > 0;
#endif
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
#ifndef REPRO_OBS_DISABLE
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        snap.counters.push_back(
            {entry.name, entry.labels, entry.help, entry.counter->value()});
        break;
      case Kind::Gauge:
        snap.gauges.push_back(
            {entry.name, entry.labels, entry.help, entry.gauge->value()});
        break;
      case Kind::Histogram: {
        const Histogram& h = *entry.histogram;
        HistogramSample sample;
        sample.name = entry.name;
        sample.labels = entry.labels;
        sample.help = entry.help;
        sample.bounds = h.bounds();
        sample.counts.resize(h.num_buckets());
        sample.sums.resize(h.num_buckets());
        for (std::size_t b = 0; b < h.num_buckets(); ++b) {
          sample.counts[b] = h.bucket_count(b);
          sample.sums[b] = h.bucket_sum(b);
          sample.count += sample.counts[b];
          sample.sum += sample.sums[b];
        }
        snap.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
#endif
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string MetricsRegistry::prometheus() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  std::string last_family;
  // entries_ is sorted by key (= name first), so families come out grouped;
  // snapshot preserves that order per metric kind. Emit counters, gauges,
  // then histograms.
  auto emit_header = [&](const std::string& name, const std::string& help,
                         const char* type) {
    if (name == last_family) return;
    last_family = name;
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const auto& c : snap.counters) {
    emit_header(c.name, c.help, "counter");
    out += c.name + render_labels(c.labels) + " " + std::to_string(c.value) +
           "\n";
  }
  for (const auto& g : snap.gauges) {
    emit_header(g.name, g.help, "gauge");
    out += g.name + render_labels(g.labels) + " " + format_double(g.value) +
           "\n";
  }
  for (const auto& h : snap.histograms) {
    emit_header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      Labels with_le = h.labels;
      with_le.emplace_back(
          "le", b < h.bounds.size() ? format_double(h.bounds[b]) : "+Inf");
      out += h.name + "_bucket" + render_labels(with_le) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_sum" + render_labels(h.labels) + " " +
           format_double(h.sum) + "\n";
    out += h.name + "_count" + render_labels(h.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

Json to_json(const MetricsSnapshot& snapshot) {
  Json out = Json::object();
  Json counters = Json::array();
  for (const auto& c : snapshot.counters) {
    Json entry = Json::object();
    entry["name"] = c.name;
    entry["labels"] = labels_json(c.labels);
    entry["value"] = c.value;
    counters.push_back(std::move(entry));
  }
  Json gauges = Json::array();
  for (const auto& g : snapshot.gauges) {
    Json entry = Json::object();
    entry["name"] = g.name;
    entry["labels"] = labels_json(g.labels);
    entry["value"] = g.value;
    gauges.push_back(std::move(entry));
  }
  Json histograms = Json::array();
  for (const auto& h : snapshot.histograms) {
    Json entry = Json::object();
    entry["name"] = h.name;
    entry["labels"] = labels_json(h.labels);
    Json bounds = Json::array();
    for (const double b : h.bounds) bounds.push_back(b);
    Json counts = Json::array();
    for (const std::uint64_t c : h.counts) counts.push_back(c);
    Json sums = Json::array();
    for (const double s : h.sums) sums.push_back(s);
    entry["bounds"] = std::move(bounds);
    entry["counts"] = std::move(counts);
    entry["sums"] = std::move(sums);
    entry["count"] = h.count;
    entry["sum"] = h.sum;
    histograms.push_back(std::move(entry));
  }
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

Json MetricsRegistry::json() const { return to_json(snapshot()); }

double MetricsSnapshot::counter_total(const std::string& name) const {
  double total = 0.0;
  for (const auto& c : counters) {
    if (c.name == name) total += static_cast<double>(c.value);
  }
  return total;
}

double MetricsSnapshot::gauge_total(const std::string& name) const {
  double total = 0.0;
  for (const auto& g : gauges) {
    if (g.name == name) total += g.value;
  }
  return total;
}

const CounterSample* MetricsSnapshot::find_counter(const std::string& name,
                                                   const Labels& labels) const {
  for (const auto& c : counters) {
    if (c.name == name && c.labels == labels) return &c;
  }
  return nullptr;
}

}  // namespace repro::obs
