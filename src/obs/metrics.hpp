// obs: low-overhead metrics shared by every layer of the runtime.
//
// Counters, gauges and fixed-bucket histograms designed for hot paths:
//
//   * Write side: relaxed atomics in per-thread shards (16 cache-line-aligned
//     shards; each thread hashes to one shard once and sticks with it), so
//     concurrent increments from workers + comm threads never contend on a
//     single cache line.
//   * Read side: a scraper merges the shards on demand -- snapshot(),
//     prometheus(), json() -- without pausing writers. A concurrent scrape
//     may lag by in-flight increments; values are exact once writers
//     quiesce (e.g. after Runtime::run joins its threads).
//   * Registry: named metric families with Prometheus-style labels. Metrics
//     are shared_ptr-owned so a component can keep a hot handle and
//     re-attach a fresh instance per run (attach() replaces); the registry
//     stays the single scrape point across runtime, net, fault, and sim.
//
// Compile-out: building with -DREPRO_OBS_DISABLE (CMake option of the same
// name) turns every primitive into an inline no-op -- no atomics, no clock
// reads, empty snapshots. Accounting the public API guarantees independently
// of obs (Transport::stats, ReliableStats, DistResult counters) falls back
// to its pre-obs implementation, so the disabled build still passes the
// whole test suite; only the scraped view goes dark.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "support/timing.hpp"

namespace repro::obs {

#ifdef REPRO_OBS_DISABLE
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Label set, rendered in the given order (call sites keep it deterministic).
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline constexpr std::size_t kShards = 16;  // power of two

/// Stable per-thread shard slot: threads round-robin over the shards, so up
/// to kShards concurrent writers touch distinct cache lines.
inline std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) PaddedF64 {
  std::atomic<double> v{0.0};
};

/// Relaxed atomic add for doubles via CAS (atomic<double>::fetch_add is not
/// guaranteed pre-C++20 libs; this is portable and equally fast uncontended).
inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonically increasing 64-bit counter, sharded per thread.
class Counter {
 public:
#ifndef REPRO_OBS_DISABLE
  void inc() { add(1); }
  void add(std::uint64_t n) {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::PaddedU64, detail::kShards> shards_;
#else
  void inc() {}
  void add(std::uint64_t) {}
  std::uint64_t value() const { return 0; }
#endif
};

/// Double-valued gauge: set() for levels, add() for accumulated seconds etc.
class Gauge {
 public:
#ifndef REPRO_OBS_DISABLE
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { detail::atomic_add(value_, d); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
#else
  void set(double) {}
  void add(double) {}
  double value() const { return 0.0; }
#endif
};

/// Fixed-bucket histogram with inclusive upper bounds (Prometheus "le"
/// semantics) plus one overflow bucket, tracking per-bucket counts AND
/// per-bucket value sums (the latter lets net reconstruct its exact per-size
/// byte totals). Bounds must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

#ifndef REPRO_OBS_DISABLE
  void observe(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t num_buckets() const { return bounds_.size() + 1; }
  std::uint64_t bucket_count(std::size_t b) const;
  double bucket_sum(std::size_t b) const;
  std::uint64_t count() const;
  double sum() const;

 private:
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::unique_ptr<std::atomic<double>[]> sums;
  };
  std::vector<double> bounds_;
  std::array<Shard, detail::kShards> shards_;
#else
  void observe(double) {}
  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t num_buckets() const { return 0; }
  std::uint64_t bucket_count(std::size_t) const { return 0; }
  double bucket_sum(std::size_t) const { return 0.0; }
  std::uint64_t count() const { return 0; }
  double sum() const { return 0.0; }

 private:
  std::vector<double> bounds_;  // kept so bounds() stays valid
#endif
};

/// Bounds matching net::SizeHistogram's 64 log2 buckets: bucket 0 holds
/// sizes <= 1, bucket i holds [2^i, 2^{i+1}-1], bucket 63 is the overflow.
std::vector<double> log2_size_bounds();

/// Exponential seconds bounds for latency-style histograms: 1us .. ~16s, x2.
std::vector<double> duration_seconds_bounds();

/// RAII wall-clock timer recording elapsed seconds into a Histogram
/// (observe) or Gauge (add) on destruction. Disabled builds read no clock.
class ScopedTimer {
 public:
#ifndef REPRO_OBS_DISABLE
  explicit ScopedTimer(Histogram& h) : hist_(&h), start_(wall_time()) {}
  explicit ScopedTimer(Gauge& g) : gauge_(&g), start_(wall_time()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Record now instead of at scope exit; returns elapsed seconds.
  double stop() {
    if (done_) return 0.0;
    done_ = true;
    const double elapsed = wall_time() - start_;
    if (hist_ != nullptr) hist_->observe(elapsed);
    if (gauge_ != nullptr) gauge_->add(elapsed);
    return elapsed;
  }

 private:
  Histogram* hist_ = nullptr;
  Gauge* gauge_ = nullptr;
  double start_ = 0.0;
  bool done_ = false;
#else
  explicit ScopedTimer(Histogram&) {}
  explicit ScopedTimer(Gauge&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  double stop() { return 0.0; }
#endif
};

struct CounterSample {
  std::string name;
  Labels labels;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  std::string help;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // per bucket, bounds.size() + 1
  std::vector<double> sums;           // per bucket value sums
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time merge of every metric in a registry.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Sum of every counter in the family `name`, across all label sets.
  double counter_total(const std::string& name) const;
  /// Sum of every gauge in the family `name`, across all label sets.
  double gauge_total(const std::string& name) const;
  const CounterSample* find_counter(const std::string& name,
                                    const Labels& labels) const;
};

/// Thread-safe named registry. counter()/gauge()/histogram() create-or-get;
/// attach() insert-or-replace (per-run components attach fresh instances so
/// a scrape always shows the latest run). Keys are name + rendered labels;
/// registering the same key as two different metric kinds throws.
class MetricsRegistry {
 public:
  std::shared_ptr<Counter> counter(const std::string& name, Labels labels = {},
                                   std::string help = "");
  std::shared_ptr<Gauge> gauge(const std::string& name, Labels labels = {},
                               std::string help = "");
  std::shared_ptr<Histogram> histogram(const std::string& name,
                                       std::vector<double> bounds,
                                       Labels labels = {},
                                       std::string help = "");

  void attach(const std::string& name, Labels labels,
              std::shared_ptr<Counter> metric, std::string help = "");
  void attach(const std::string& name, Labels labels,
              std::shared_ptr<Gauge> metric, std::string help = "");
  void attach(const std::string& name, Labels labels,
              std::shared_ptr<Histogram> metric, std::string help = "");

  /// Drop the series (name, labels) from the registry, if present. Returns
  /// whether a series was removed. Holders of the metric handle may keep
  /// writing to it — the series just stops being scraped. Used by per-run
  /// components to retire series whose label values no longer exist (e.g. a
  /// tenant lane absent from the next graph), so back-to-back runs on one
  /// resident registry never accumulate stale series.
  bool remove(const std::string& name, const Labels& labels);

  MetricsSnapshot snapshot() const;
  /// Prometheus text exposition format (HELP/TYPE once per family).
  std::string prometheus() const;
  /// {"counters": [...], "gauges": [...], "histograms": [...]}.
  Json json() const;

  std::size_t size() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Labels labels;
    std::string help;
    Kind kind = Kind::Counter;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };

  Entry& locate(const std::string& name, const Labels& labels, Kind kind,
                std::string help);  // caller holds mutex_

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // key: name{labels} -> deterministic
};

/// Json conversion shared with RunReport.
Json to_json(const MetricsSnapshot& snapshot);

}  // namespace repro::obs
