// Normalized benchmark results: the repro.bench_result/v1 schema.
//
// Every gate-worthy bench (fig 8/10, scheduler compare, serve saturation)
// emits one of these documents via --bench-json=<path>. The committed
// baselines under bench/baselines/ are the same schema, so the CI
// perf-regression gate (tools/check_bench_regression.py) is a pure
// document-vs-document diff: per-metric tolerance bands, hard-fail on
// exactness counters (kind "exact" — message/byte/allocation counts that a
// correct change must reproduce bit for bit), warn-only on timing metrics
// whose noise band the baseline records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace repro::obs {

/// One gated metric. `kind` drives the regression policy:
///   "exact"  — deterministic counter, any difference fails the gate;
///   "time"   — seconds, noisy, gated by tolerance_pct (warn past it);
///   "ratio"  — derived speedup/share, gated by tolerance_pct;
///   "count"  — deterministic but scale-dependent count, gated tight.
/// `direction` says which way regressions point: "lower" = smaller is
/// better (times), "higher" = bigger is better (GFLOP/s, speedups),
/// "exact" = equality is the only pass.
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  std::string kind = "time";
  std::string direction = "lower";
  double tolerance_pct = 10.0;
};

/// Builder for a repro.bench_result/v1 document.
class BenchResult {
 public:
  explicit BenchResult(std::string name) : name_(std::move(name)) {}

  /// Free-form run parameters (problem size, tile, steps, ...) recorded so a
  /// baseline mismatch on configuration is visible in the diff.
  void set_context(const std::string& key, Json value);

  void add_metric(BenchMetric metric);
  void add_exact(const std::string& name, std::uint64_t value,
                 const std::string& unit);
  void add_time(const std::string& name, double seconds,
                double tolerance_pct = 15.0);
  void add_ratio(const std::string& name, double value,
                 const std::string& direction = "higher",
                 double tolerance_pct = 10.0);

  Json to_json() const;
  /// Write to_json() to `path` (returns false on I/O failure).
  bool write(const std::string& path) const;

 private:
  std::string name_;
  Json context_ = Json::object();
  std::vector<BenchMetric> metrics_;
};

/// Schema check for repro.bench_result/v1 (tools/validate_report hook).
bool validate_bench_result(const Json& doc, std::string* error);

}  // namespace repro::obs
