// Cross-rank live telemetry: snapshot codec, collector, online detectors.
//
// Every rank periodically condenses its flight-recorder state into a
// TelemetrySnapshot (cumulative counters + idle taxonomy). Non-zero ranks
// encode the snapshot as a fixed vector of doubles and ship it to rank 0
// over the ordinary channel stack (a dedicated wire format, see
// rt::kWireTelemetry); rank 0 ingests its own snapshot locally. The
// TelemetryCollector aggregates the stream into per-rank live state plus an
// ordered delta log, evaluates online detectors on every ingest, publishes
// `obs_telemetry_*` metric families, and serializes the whole thing as a
// `repro.telemetry/v1` document — the format `tools/repro_top` tails and the
// RunReport embeds.
//
// Layering: this header is transport-agnostic on purpose (repro_obs links
// only repro_support). The codec speaks std::vector<double>; the runtime owns
// putting that on the wire.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::obs {

/// One rank's cumulative progress snapshot. Counters are since-run-start;
/// `t_s` is the rank-local steady clock at capture.
struct TelemetrySnapshot {
  int rank = 0;
  std::uint64_t superstep = 0;      ///< last completed superstep boundary
  std::uint64_t tasks_executed = 0;
  std::uint64_t sent_messages = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t steals = 0;
  std::uint64_t queue_depth = 0;    ///< instantaneous ready-queue depth
  double idle_halo_s = 0.0;
  double idle_noready_s = 0.0;
  double idle_steal_s = 0.0;
  double t_s = 0.0;
};

/// Snapshots cross the wire as exactly this many doubles (one per field of
/// TelemetrySnapshot, rank first). Integer counters ride as doubles — exact
/// below 2^53, far above anything a run of this scale produces.
inline constexpr std::size_t kTelemetryDoubles = 11;

/// Bytes one telemetry snapshot costs on the wire: 8-byte tag + one
/// format-discriminator header word + the payload doubles. The DES charges
/// the same constant, making telemetry traffic byte-exact in sim-vs-real.
inline constexpr std::uint64_t kTelemetryWireBytes =
    (2 + kTelemetryDoubles) * sizeof(double);

std::vector<double> encode_telemetry(const TelemetrySnapshot& snap);
/// Returns false (leaving *out untouched) on a wrong-size payload.
bool decode_telemetry(const std::vector<double>& payload,
                      TelemetrySnapshot* out);

/// Online-detector thresholds. A detector with a non-positive threshold is
/// disabled.
struct DetectorConfig {
  /// Straggler: rank's superstep lags the median across ranks by >= this
  /// many boundaries (evaluated once every rank has reported).
  std::uint64_t straggler_lag = 2;
  /// Idle-taxonomy anomaly: halo-wait share of a snapshot delta's idle time
  /// exceeds this fraction...
  double halo_share = 0.90;
  /// ...provided the delta accumulated at least this much idle time (gates
  /// out startup noise).
  double halo_min_idle_s = 0.05;
  /// Queue-depth watermark: instantaneous ready-queue depth at or above
  /// this. 0 disables.
  std::uint64_t queue_watermark = 0;
};

/// A detector firing (rising edge only; detectors are edge-triggered per
/// (detector, rank) so a persistent condition records one event).
struct TelemetryEvent {
  std::string detector;  ///< "straggler" | "halo_share" | "queue_depth"
  int rank = 0;
  std::uint64_t superstep = 0;  ///< reporting rank's superstep at detection
  double value = 0.0;
  double threshold = 0.0;
};

/// Aggregates per-rank snapshots into live state + delta log + events.
/// Thread-safe: ingest() may be called from any thread (the runtime's
/// receiver thread and rank 0's workers race), readers take the same lock.
class TelemetryCollector {
 public:
  /// `registry` may be null (no metric families published). `source` labels
  /// the published families ("real" for runtime ingest, "sim" for the DES).
  TelemetryCollector(int nranks, DetectorConfig config = {},
                     std::shared_ptr<MetricsRegistry> registry = nullptr,
                     std::string source = "real");

  int nranks() const { return nranks_; }
  const DetectorConfig& config() const { return config_; }

  void ingest(const TelemetrySnapshot& snap);

  /// Latest snapshot per rank (ranks that never reported keep rank = -1).
  std::vector<TelemetrySnapshot> latest() const;
  std::vector<TelemetryEvent> events() const;
  std::uint64_t deltas_total() const;

  /// Order-independent digest of the deterministic delta fields (rank,
  /// superstep, tasks, messages, bytes) — identical across repeated seeded
  /// runs regardless of ingest interleaving. Timing fields excluded. The
  /// counter fields are sampled at boundary completion, so they reproduce
  /// exactly when each rank's execution stream is sequential (one tile and
  /// one worker per rank); concurrent tiles or workers can race ahead of
  /// the sampling point, making only the stream shape (rank, superstep)
  /// deterministic.
  std::uint64_t fingerprint() const;

  /// Full `repro.telemetry/v1` document.
  Json to_json() const;

  /// Atomically replace `path` with to_json() (write temp + rename), so a
  /// concurrent `repro_top --file=path` never reads a half-written dump.
  bool write_dump(const std::string& path) const;

 private:
  struct Delta {
    int rank;
    std::uint64_t superstep;
    std::uint64_t d_tasks;
    std::uint64_t d_messages;
    std::uint64_t d_bytes;
    std::uint64_t d_steals;
    std::uint64_t queue_depth;
    double d_idle_halo_s;
    double d_idle_noready_s;
    double d_idle_steal_s;
  };

  void evaluate_detectors_locked(const TelemetrySnapshot& snap,
                                 const Delta& delta);
  void set_active_locked(const std::string& detector, int rank, bool active,
                         const TelemetrySnapshot& snap, double value,
                         double threshold);

  const int nranks_;
  const DetectorConfig config_;
  const std::string source_;
  std::shared_ptr<MetricsRegistry> registry_;

  mutable std::mutex mu_;
  std::vector<TelemetrySnapshot> last_;  ///< latest per rank
  std::vector<std::uint64_t> snapshots_per_rank_;
  std::vector<Delta> deltas_;
  std::vector<TelemetryEvent> events_;
  std::set<std::pair<std::string, int>> active_;

  // Published families (nullptr when no registry / obs disabled). Rank label
  // cardinality is capped like net::Transport's per-destination series.
  static constexpr int kMaxRankSeries = 64;
  std::vector<std::shared_ptr<Gauge>> superstep_gauges_;
  std::vector<std::shared_ptr<Gauge>> queue_gauges_;
  std::shared_ptr<Counter> snapshots_total_;
  std::shared_ptr<Counter> events_total_;
};

/// Schema check for a `repro.telemetry/v1` document (used by
/// tools/validate_report and the tests).
bool validate_telemetry(const Json& doc, std::string* error);

}  // namespace repro::obs
