#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace repro::obs {

namespace {

constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  std::string* err;

  bool fail(const std::string& what) {
    if (err != nullptr) {
      *err = what + " at offset " + std::to_string(i);
    }
    return false;
  }

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }

  bool consume(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) == word) {
      i += word.size();
      return true;
    }
    return false;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(unsigned* out) {
    if (i + 4 > s.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i + k];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    i += 4;
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return fail("truncated escape");
        const char e = s[i++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!hex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
              if (!literal("\\u")) return fail("unpaired surrogate");
              unsigned lo = 0;
              if (!hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(*out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        *out += c;
        ++i;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json* out) {
    const std::size_t start = i;
    if (consume('-')) {}
    // Integer part: "0" or a nonzero digit followed by digits (no leading 0).
    const std::size_t int_start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t int_digits = i - int_start;
    if (int_digits == 0) return fail("bad number");
    if (int_digits > 1 && s[int_start] == '0') {
      return fail("leading zero in number");
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      const std::size_t frac_start = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
      if (i == frac_start) return fail("bad number: empty fraction");
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      integral = false;
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      const std::size_t exp_start = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
      if (i == exp_start) return fail("bad number: empty exponent");
    }
    const std::string text(s.substr(start, i - start));
    try {
      if (integral) {
        *out = Json(static_cast<long long>(std::stoll(text)));
      } else {
        *out = Json(std::stod(text));
      }
    } catch (const std::out_of_range&) {
      // Integral overflow past int64: a non-negative literal may still fit
      // uint64 (64-bit counters near UINT64_MAX). Anything larger is rejected
      // outright — rounding it through a double would not round-trip.
      if (integral && text[0] != '-') {
        try {
          *out = Json(static_cast<unsigned long long>(std::stoull(text)));
          return true;
        } catch (...) {
          return fail("integer out of range");
        }
      }
      if (integral) return fail("integer out of range");
      try {
        *out = Json(std::stod(text));  // huge real literal -> double
      } catch (...) {
        return fail("number out of range");
      }
    } catch (...) {
      return fail("bad number");
    }
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == '{') {
      ++i;
      *out = Json::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Json value;
        if (!parse_value(&value, depth + 1)) return false;
        (*out)[key] = std::move(value);
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++i;
      *out = Json::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Json value;
        if (!parse_value(&value, depth + 1)) return false;
        out->push_back(std::move(value));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string str;
      if (!parse_string(&str)) return false;
      *out = Json(std::move(str));
      return true;
    }
    if (literal("true")) {
      *out = Json(true);
      return true;
    }
    if (literal("false")) {
      *out = Json(false);
      return true;
    }
    if (literal("null")) {
      *out = Json(nullptr);
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number(out);
    }
    return fail("unexpected character");
  }
};

void dump_impl(const Json& v, std::string& out, int indent, int level);

void append_newline(std::string& out, int indent, int level) {
  if (indent > 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * level, ' ');
  }
}

void dump_impl(const Json& v, std::string& out, int indent, int level) {
  switch (v.type()) {
    case Json::Type::Null: out += "null"; break;
    case Json::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::Int: out += std::to_string(v.as_int()); break;
    case Json::Type::Uint: out += std::to_string(v.as_uint()); break;
    case Json::Type::Double: append_double(out, v.as_number()); break;
    case Json::Type::String: append_escaped(out, v.as_string()); break;
    case Json::Type::Array: {
      const auto& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& e : arr) {
        if (!first) out += ',';
        first = false;
        append_newline(out, indent, level + 1);
        dump_impl(e, out, indent, level + 1);
      }
      append_newline(out, indent, level);
      out += ']';
      break;
    }
    case Json::Type::Object: {
      const auto& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        append_newline(out, indent, level + 1);
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        dump_impl(value, out, indent, level + 1);
      }
      append_newline(out, indent, level);
      out += '}';
      break;
    }
  }
}

}  // namespace

Json::Json(unsigned long long v) {
  if (v <= static_cast<unsigned long long>(INT64_MAX)) {
    value_ = static_cast<std::int64_t>(v);
  } else {
    value_ = static_cast<std::uint64_t>(v);
  }
}

std::int64_t Json::as_int() const {
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
  if (is_uint()) {
    return static_cast<std::int64_t>(std::get<std::uint64_t>(value_));
  }
  return std::get<std::int64_t>(value_);
}

std::uint64_t Json::as_uint() const {
  if (is_double()) return static_cast<std::uint64_t>(std::get<double>(value_));
  if (is_int()) {
    return static_cast<std::uint64_t>(std::get<std::int64_t>(value_));
  }
  return std::get<std::uint64_t>(value_);
}

double Json::as_number() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (is_uint()) return static_cast<double>(std::get<std::uint64_t>(value_));
  return std::get<double>(value_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(key, Json());
  return obj.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

bool Json::parse(std::string_view text, Json* out, std::string* error) {
  Parser p{text, 0, error};
  Json result;
  if (!p.parse_value(&result, 0)) return false;
  p.skip_ws();
  if (p.i != text.size()) return p.fail("trailing characters after document");
  if (out != nullptr) *out = std::move(result);
  return true;
}

}  // namespace repro::obs
