#include "obs/bench_result.hpp"

#include <fstream>

namespace repro::obs {

void BenchResult::set_context(const std::string& key, Json value) {
  context_[key] = std::move(value);
}

void BenchResult::add_metric(BenchMetric metric) {
  metrics_.push_back(std::move(metric));
}

void BenchResult::add_exact(const std::string& name, std::uint64_t value,
                            const std::string& unit) {
  BenchMetric m;
  m.name = name;
  m.value = static_cast<double>(value);
  m.unit = unit;
  m.kind = "exact";
  m.direction = "exact";
  m.tolerance_pct = 0.0;
  metrics_.push_back(std::move(m));
}

void BenchResult::add_time(const std::string& name, double seconds,
                           double tolerance_pct) {
  BenchMetric m;
  m.name = name;
  m.value = seconds;
  m.unit = "seconds";
  m.kind = "time";
  m.direction = "lower";
  m.tolerance_pct = tolerance_pct;
  metrics_.push_back(std::move(m));
}

void BenchResult::add_ratio(const std::string& name, double value,
                            const std::string& direction,
                            double tolerance_pct) {
  BenchMetric m;
  m.name = name;
  m.value = value;
  m.unit = "ratio";
  m.kind = "ratio";
  m.direction = direction;
  m.tolerance_pct = tolerance_pct;
  metrics_.push_back(std::move(m));
}

Json BenchResult::to_json() const {
  Json doc = Json::object();
  doc["schema"] = "repro.bench_result/v1";
  doc["name"] = name_;
  doc["context"] = context_;
  Json metrics = Json::array();
  for (const BenchMetric& m : metrics_) {
    Json entry = Json::object();
    entry["name"] = m.name;
    entry["value"] = m.value;
    entry["unit"] = m.unit;
    entry["kind"] = m.kind;
    entry["direction"] = m.direction;
    entry["tolerance_pct"] = m.tolerance_pct;
    metrics.push_back(std::move(entry));
  }
  doc["metrics"] = std::move(metrics);
  return doc;
}

bool BenchResult::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json().dump(2) << "\n";
  return static_cast<bool>(out.flush());
}

namespace {

bool bench_fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool is_one_of(const std::string& v, std::initializer_list<const char*> set) {
  for (const char* s : set) {
    if (v == s) return true;
  }
  return false;
}

}  // namespace

bool validate_bench_result(const Json& doc, std::string* error) {
  if (!doc.is_object()) return bench_fail(error, "document not an object");
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "repro.bench_result/v1") {
    return bench_fail(error, "schema is not repro.bench_result/v1");
  }
  const Json* name = doc.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return bench_fail(error, "missing non-empty string field 'name'");
  }
  const Json* context = doc.find("context");
  if (context == nullptr || !context->is_object()) {
    return bench_fail(error, "missing object field 'context'");
  }
  const Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array() || metrics->size() == 0) {
    return bench_fail(error, "missing non-empty array field 'metrics'");
  }
  for (const Json& entry : metrics->as_array()) {
    if (!entry.is_object()) return bench_fail(error, "metric not an object");
    const Json* mname = entry.find("name");
    if (mname == nullptr || !mname->is_string() || mname->as_string().empty()) {
      return bench_fail(error, "metric missing non-empty 'name'");
    }
    const Json* value = entry.find("value");
    if (value == nullptr || !value->is_number()) {
      return bench_fail(error, "metric '" + mname->as_string() +
                                   "' missing numeric 'value'");
    }
    const Json* unit = entry.find("unit");
    if (unit == nullptr || !unit->is_string()) {
      return bench_fail(error, "metric '" + mname->as_string() +
                                   "' missing string 'unit'");
    }
    const Json* kind = entry.find("kind");
    if (kind == nullptr || !kind->is_string() ||
        !is_one_of(kind->as_string(), {"time", "ratio", "count", "exact"})) {
      return bench_fail(error, "metric '" + mname->as_string() +
                                   "' has bad 'kind'");
    }
    const Json* direction = entry.find("direction");
    if (direction == nullptr || !direction->is_string() ||
        !is_one_of(direction->as_string(), {"lower", "higher", "exact"})) {
      return bench_fail(error, "metric '" + mname->as_string() +
                                   "' has bad 'direction'");
    }
    const Json* tol = entry.find("tolerance_pct");
    if (tol == nullptr || !tol->is_number() || tol->as_number() < 0.0) {
      return bench_fail(error, "metric '" + mname->as_string() +
                                   "' has bad 'tolerance_pct'");
    }
    if (kind->as_string() == "exact" && tol->as_number() != 0.0) {
      return bench_fail(error, "metric '" + mname->as_string() +
                                   "' is exact but has nonzero tolerance");
    }
  }
  return true;
}

}  // namespace repro::obs
