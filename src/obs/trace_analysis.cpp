#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace repro::obs {

namespace {

using rt::TaskKey;
using rt::TaskKeyHash;
using rt::TraceEvent;
using rt::TraceEventKind;

/// Hash for the (consumer, producer) edge index over Recv events.
struct EdgeKey {
  TaskKey consumer;
  TaskKey producer;
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& e) const {
    TaskKeyHash h;
    return h(e.consumer) * 0x9e3779b97f4a7c15ULL + h(e.producer);
  }
};

/// Sorted, disjoint [begin, end) intervals from an unsorted span list.
std::vector<std::pair<double, double>> merge_intervals(
    std::vector<std::pair<double, double>> spans) {
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& [b, e] : spans) {
    if (e <= b) continue;  // zero-width spans carry no time
    if (merged.empty() || b > merged.back().second) {
      merged.emplace_back(b, e);
    } else if (e > merged.back().second) {
      merged.back().second = e;
    }
  }
  return merged;
}

double union_length(const std::vector<std::pair<double, double>>& merged) {
  double total = 0.0;
  for (const auto& [b, e] : merged) total += e - b;
  return total;
}

/// Length of [begin, end) covered by the merged interval union.
double overlap_with(const std::vector<std::pair<double, double>>& merged,
                    double begin, double end) {
  double covered = 0.0;
  for (const auto& [b, e] : merged) {
    if (e <= begin) continue;
    if (b >= end) break;
    covered += std::min(e, end) - std::max(b, begin);
  }
  return covered;
}

}  // namespace

TraceAnalysis analyze_dataflow(const std::vector<TraceEvent>& events) {
  TraceAnalysis out;
  if (events.empty()) {
    out.overlap_efficiency = 1.0;  // nothing in flight, nothing unhidden
    return out;
  }

  // Pass 1: index the stream and accumulate whole-trace totals.
  std::unordered_map<TaskKey, const TraceEvent*, TaskKeyHash> tasks;
  std::unordered_map<EdgeKey, const TraceEvent*, EdgeKeyHash> recv_edges;
  struct FlowWindow {
    double queued = 0.0;
    double delivered = 0.0;
    bool seen_recv = false;
  };
  std::unordered_map<std::uint64_t, FlowWindow> flows;
  std::vector<std::pair<double, double>> task_spans;

  double min_begin = events.front().begin_s;
  double max_end = events.front().end_s;
  const TraceEvent* last_task = nullptr;

  for (const TraceEvent& e : events) {
    min_begin = std::min(min_begin, e.begin_s);
    max_end = std::max(max_end, e.end_s);
    switch (e.kind) {
      case TraceEventKind::Task: {
        ++out.tasks;
        out.compute_seconds += e.duration();
        // Rewritten tasks carry the "fused<members>|<klass>" class stamped
        // by rt::fuse_supersteps; attribute them without disturbing any
        // other klass-based logic.
        if (e.klass.rfind("fused", 0) == 0) {
          const std::size_t bar = e.klass.find('|');
          if (bar != std::string::npos && bar > 5) {
            int members = 0;
            bool digits = true;
            for (std::size_t i = 5; i < bar; ++i) {
              if (e.klass[i] < '0' || e.klass[i] > '9') {
                digits = false;
                break;
              }
              members = members * 10 + (e.klass[i] - '0');
            }
            if (digits && members > 0) {
              ++out.fused_tasks;
              out.fused_depth = std::max(out.fused_depth, members);
            }
          }
        }
        task_spans.emplace_back(e.begin_s, e.end_s);
        // Keep the earliest execution per key (duplicates should not occur).
        tasks.emplace(e.key, &e);
        if (last_task == nullptr || e.end_s > last_task->end_s) {
          last_task = &e;
        }
        break;
      }
      case TraceEventKind::Steal:
        ++out.steals;
        break;
      case TraceEventKind::Send: {
        ++out.sends;
        out.bytes_sent += e.bytes;
        out.wire_seconds += e.duration();
        FlowWindow& w = flows[e.flow];
        w.queued = e.queued_s > 0.0 ? e.queued_s : e.begin_s;
        break;
      }
      case TraceEventKind::Recv: {
        ++out.recvs;
        out.retransmits += e.retransmits;
        if (!e.deps.empty()) {
          recv_edges.emplace(EdgeKey{e.key, e.deps.front()}, &e);
        }
        FlowWindow& w = flows[e.flow];
        if (!w.seen_recv && w.queued == 0.0 && e.queued_s > 0.0) {
          w.queued = e.queued_s;  // trace without the matching Send event
        }
        w.delivered = std::max(w.delivered, e.end_s);
        w.seen_recv = true;
        break;
      }
      case TraceEventKind::Idle: {
        std::string kind = e.klass;
        if (kind.rfind("idle-", 0) == 0) kind = kind.substr(5);
        out.idle_by_rank[e.rank][kind] += e.duration();
        break;
      }
    }
  }
  out.span_s = max_end - min_begin;

  // Comm/compute overlap: a flow is "in flight" from producer enqueue until
  // the last of its sections is delivered; it is "hidden" while at least one
  // task body is running anywhere. Efficiency 1.0 when nothing was sent.
  const auto busy = merge_intervals(std::move(task_spans));
  out.compute_active_s = union_length(busy);
  double hidden = 0.0;
  for (const auto& [flow, w] : flows) {
    (void)flow;
    if (!w.seen_recv || w.delivered <= w.queued) continue;
    ++out.flows_delivered;
    out.network_inflight_s += w.delivered - w.queued;
    hidden += overlap_with(busy, w.queued, w.delivered);
  }
  out.overlap_efficiency =
      out.network_inflight_s > 0.0 ? hidden / out.network_inflight_s : 1.0;

  // Critical path: back-chain from the last-finishing task. Each task's
  // binding predecessor is the dependency whose release arrived last — via
  // the Recv event for remote flows (release = delivery time) or the
  // producer's own end for local ones. The walk follows measured timestamps,
  // so chain length == last.end - head.begin <= wall clock by construction.
  if (last_task != nullptr) {
    std::unordered_set<TaskKey, TaskKeyHash> visited;
    std::vector<CriticalStep> reverse_path;
    const TraceEvent* cur = last_task;
    for (;;) {
      if (!visited.insert(cur->key).second) break;

      const TraceEvent* binding = nullptr;
      const TraceEvent* binding_recv = nullptr;
      double release = 0.0;
      for (const TaskKey& dep : cur->deps) {
        auto prod = tasks.find(dep);
        if (prod == tasks.end()) continue;  // partial trace: chain ends here
        const TraceEvent* recv = nullptr;
        double r = prod->second->end_s;
        auto edge = recv_edges.find(EdgeKey{cur->key, dep});
        if (edge != recv_edges.end()) {
          recv = edge->second;
          r = std::max(r, recv->end_s);
        }
        if (binding == nullptr || r > release) {
          binding = prod->second;
          binding_recv = recv;
          release = r;
        }
      }

      CriticalStep step;
      step.key = cur->key;
      step.klass = cur->klass;
      step.rank = cur->rank;
      step.compute_s = std::max(0.0, cur->duration());
      if (binding != nullptr) {
        step.remote_release = binding_recv != nullptr;
        // The receiver thread stamps a Recv's end after the consumer may
        // already be running; cap the release at the consumer's begin so the
        // per-step parts telescope to exactly begin - predecessor.end and
        // the attribution sum never exceeds the chain length.
        const double capped = std::min(release, cur->begin_s);
        step.network_s = std::max(0.0, capped - binding->end_s);
        step.runtime_s = std::max(0.0, cur->begin_s - capped);
      }
      reverse_path.push_back(std::move(step));
      if (binding == nullptr) break;
      cur = binding;
    }

    std::reverse(reverse_path.begin(), reverse_path.end());
    out.path = std::move(reverse_path);
    out.cp_tasks = out.path.size();
    for (const CriticalStep& s : out.path) {
      out.cp_compute_s += s.compute_s;
      out.cp_network_s += s.network_s;
      out.cp_runtime_s += s.runtime_s;
      if (s.remote_release) ++out.cp_messages;
    }
    // The exact chain length; clamp-induced drift in the attribution sums
    // never leaks into the headline number.
    out.critical_path_s = std::max(0.0, last_task->end_s - cur->begin_s);
  }
  return out;
}

Json make_trace_analysis_report(const std::string& name,
                                const TraceAnalysis& a, Json params) {
  Json out = Json::object();
  out["schema"] = kTraceAnalysisSchema;
  out["name"] = name;
  out["params"] = params.is_object() ? std::move(params) : Json::object();

  Json cp = Json::object();
  cp["seconds"] = a.critical_path_s;
  cp["compute_s"] = a.cp_compute_s;
  cp["network_s"] = a.cp_network_s;
  cp["runtime_s"] = a.cp_runtime_s;
  cp["network_share"] = a.network_share();
  cp["tasks"] = a.cp_tasks;
  cp["messages"] = a.cp_messages;
  Json steps = Json::array();
  for (const CriticalStep& s : a.path) {
    Json step = Json::object();
    step["key"] = s.key.to_string();
    step["klass"] = s.klass;
    step["rank"] = s.rank;
    step["compute_s"] = s.compute_s;
    step["network_s"] = s.network_s;
    step["runtime_s"] = s.runtime_s;
    step["remote"] = s.remote_release;
    steps.push_back(std::move(step));
  }
  cp["steps"] = std::move(steps);
  out["critical_path"] = std::move(cp);

  Json overlap = Json::object();
  overlap["efficiency"] = a.overlap_efficiency;
  overlap["inflight_s"] = a.network_inflight_s;
  overlap["compute_active_s"] = a.compute_active_s;
  out["overlap"] = std::move(overlap);

  Json idle = Json::array();
  for (const auto& [rank, kinds] : a.idle_by_rank) {
    for (const auto& [kind, seconds] : kinds) {
      Json row = Json::object();
      row["rank"] = rank;
      row["kind"] = kind;
      row["seconds"] = seconds;
      idle.push_back(std::move(row));
    }
  }
  out["idle"] = std::move(idle);

  Json totals = Json::object();
  totals["span_s"] = a.span_s;
  totals["compute_seconds"] = a.compute_seconds;
  totals["tasks"] = a.tasks;
  totals["sends"] = a.sends;
  totals["recvs"] = a.recvs;
  totals["steals"] = a.steals;
  totals["bytes_sent"] = a.bytes_sent;
  totals["retransmits"] = a.retransmits;
  totals["fused_tasks"] = a.fused_tasks;
  totals["fused_depth"] = a.fused_depth;
  out["totals"] = std::move(totals);
  return out;
}

namespace {

/// Same first-failure-wins accumulator idiom as the run-report validator.
struct Checker {
  std::string error;

  bool ok() const { return error.empty(); }
  bool fail(const std::string& what) {
    if (error.empty()) error = what;
    return false;
  }

  bool check_finite_number(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (!v.is_number()) return fail(where + ": expected a number");
    if (!std::isfinite(v.as_number())) {
      return fail(where + ": number is not finite");
    }
    return true;
  }

  bool check_nonneg_number(const Json& v, const std::string& where) {
    if (!check_finite_number(v, where)) return false;
    if (v.as_number() < 0.0) return fail(where + ": must be non-negative");
    return true;
  }

  bool check_scalar(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (v.is_string() || v.is_bool()) return true;
    if (v.is_number()) return check_finite_number(v, where);
    return fail(where + ": expected a scalar (number, string, or bool)");
  }

  const Json* require(const Json& parent, const std::string& key,
                      const std::string& where) {
    if (!ok()) return nullptr;
    const Json* v = parent.find(key);
    if (v == nullptr) {
      fail(where + ": missing required key '" + key + "'");
      return nullptr;
    }
    return v;
  }

  bool require_nonneg(const Json& parent, const std::string& key,
                      const std::string& where) {
    const Json* v = require(parent, key, where);
    if (v == nullptr) return false;
    return check_nonneg_number(*v, where + "." + key);
  }
};

}  // namespace

bool validate_trace_analysis(const std::string& json_text,
                             std::string* error) {
  Json doc;
  std::string parse_error;
  if (!Json::parse(json_text, &doc, &parse_error)) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return false;
  }
  Checker ck;
  auto done = [&]() {
    if (error != nullptr) *error = ck.error;
    return ck.ok();
  };
  if (!doc.is_object()) {
    ck.fail("top level: expected an object");
    return done();
  }
  const Json* schema = ck.require(doc, "schema", "top level");
  if (schema != nullptr &&
      (!schema->is_string() || schema->as_string() != kTraceAnalysisSchema)) {
    ck.fail(std::string("schema: expected \"") + kTraceAnalysisSchema + "\"");
  }
  const Json* name = ck.require(doc, "name", "top level");
  if (name != nullptr && (!name->is_string() || name->as_string().empty())) {
    ck.fail("name: expected a non-empty string");
  }
  const Json* params = ck.require(doc, "params", "top level");
  if (params != nullptr) {
    if (!params->is_object()) {
      ck.fail("params: expected an object");
    } else {
      for (const auto& [key, value] : params->as_object()) {
        ck.check_scalar(value, "params." + key);
      }
    }
  }

  const Json* cp = ck.require(doc, "critical_path", "top level");
  if (cp != nullptr) {
    if (!cp->is_object()) {
      ck.fail("critical_path: expected an object");
    } else {
      for (const char* key :
           {"seconds", "compute_s", "network_s", "runtime_s", "network_share",
            "tasks", "messages"}) {
        ck.require_nonneg(*cp, key, "critical_path");
      }
      const Json* share = cp->find("network_share");
      if (ck.ok() && share != nullptr && share->as_number() > 1.0) {
        ck.fail("critical_path.network_share: must be <= 1");
      }
      const Json* steps = ck.require(*cp, "steps", "critical_path");
      if (steps != nullptr) {
        if (!steps->is_array()) {
          ck.fail("critical_path.steps: expected an array");
        } else {
          for (std::size_t i = 0; i < steps->size(); ++i) {
            const Json& step = steps->as_array()[i];
            const std::string where =
                "critical_path.steps[" + std::to_string(i) + "]";
            if (!step.is_object()) {
              ck.fail(where + ": expected an object");
              break;
            }
            const Json* key = ck.require(step, "key", where);
            if (key != nullptr && !key->is_string()) {
              ck.fail(where + ".key: expected a string");
            }
            const Json* klass = ck.require(step, "klass", where);
            if (klass != nullptr && !klass->is_string()) {
              ck.fail(where + ".klass: expected a string");
            }
            const Json* rank = ck.require(step, "rank", where);
            if (rank != nullptr) {
              ck.check_finite_number(*rank, where + ".rank");
            }
            for (const char* field : {"compute_s", "network_s", "runtime_s"}) {
              ck.require_nonneg(step, field, where);
            }
            const Json* remote = ck.require(step, "remote", where);
            if (remote != nullptr && !remote->is_bool()) {
              ck.fail(where + ".remote: expected a bool");
            }
          }
        }
      }
    }
  }

  const Json* overlap = ck.require(doc, "overlap", "top level");
  if (overlap != nullptr) {
    if (!overlap->is_object()) {
      ck.fail("overlap: expected an object");
    } else {
      for (const char* key : {"efficiency", "inflight_s", "compute_active_s"}) {
        ck.require_nonneg(*overlap, key, "overlap");
      }
      const Json* eff = overlap->find("efficiency");
      if (ck.ok() && eff != nullptr && eff->as_number() > 1.0 + 1e-9) {
        ck.fail("overlap.efficiency: must be <= 1");
      }
    }
  }

  const Json* idle = ck.require(doc, "idle", "top level");
  if (idle != nullptr) {
    if (!idle->is_array()) {
      ck.fail("idle: expected an array");
    } else {
      for (std::size_t i = 0; i < idle->size(); ++i) {
        const Json& row = idle->as_array()[i];
        const std::string where = "idle[" + std::to_string(i) + "]";
        if (!row.is_object()) {
          ck.fail(where + ": expected an object");
          break;
        }
        const Json* rank = ck.require(row, "rank", where);
        if (rank != nullptr) ck.check_finite_number(*rank, where + ".rank");
        const Json* kind = ck.require(row, "kind", where);
        if (kind != nullptr && (!kind->is_string() || kind->as_string().empty())) {
          ck.fail(where + ".kind: expected a non-empty string");
        }
        ck.require_nonneg(row, "seconds", where);
      }
    }
  }

  const Json* totals = ck.require(doc, "totals", "top level");
  if (totals != nullptr) {
    if (!totals->is_object()) {
      ck.fail("totals: expected an object");
    } else {
      for (const char* key :
           {"span_s", "compute_seconds", "tasks", "sends", "recvs", "steals",
            "bytes_sent", "retransmits", "fused_tasks", "fused_depth"}) {
        ck.require_nonneg(*totals, key, "totals");
      }
    }
  }
  return done();
}

}  // namespace repro::obs
