// Machine-readable run reports: one JSON file per benchmark/experiment run.
//
// Schema "repro.run_report/v1":
//
//   {
//     "schema":  "repro.run_report/v1",
//     "name":    "<benchmark id>",             // e.g. "bench_fig7_strong_scaling"
//     "params":  { scalar, ... },              // machine preset, N, tile, iters...
//     "results": [ { scalar, ... }, ... ],     // one row per measured config
//     "metrics": { "counters": [...],          // MetricsSnapshot export
//                  "gauges": [...],
//                  "histograms": [...] },
//     "derived": { scalar, ... },              // stats computed from the above
//     "stencil_spec": [ { "name", "rank",      // OPTIONAL: stencil specs the
//                         "radius", "stages",  // run swept (spec-driven
//                         "points", ... }, ... ]  // benches only)
//     "telemetry": { ... }                     // OPTIONAL: embedded
//                                              // repro.telemetry/v1 stream
//   }
//
// "scalar" means finite number, string, or bool — rows stay flat so reports
// diff cleanly across PRs. validate_run_report() enforces the schema; the
// tools/validate_report CLI wraps it for CI.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace repro::obs {

class RunReport {
 public:
  static constexpr const char* kSchema = "repro.run_report/v1";

  explicit RunReport(std::string name) : name_(std::move(name)) {}

  void set_param(const std::string& key, Json value);
  void set_derived(const std::string& key, Json value);
  /// Append one stencil-spec descriptor (object of scalars: name, rank,
  /// radius, stages, points, ...). Emits the optional top-level
  /// "stencil_spec" array; reports that never call this are unchanged.
  void add_stencil_spec(Json descriptor);
  /// Append one result row; must be a JSON object of scalars.
  void add_result(Json row);
  /// Merge a metrics snapshot into the report (appends samples; callable
  /// once per registry when a run spans several).
  void add_metrics(const MetricsSnapshot& snapshot);
  void add_metrics(const MetricsRegistry& registry);
  /// Embed a live-telemetry stream (a repro.telemetry/v1 object, typically
  /// TelemetryCollector::to_json()). Emits the optional top-level
  /// "telemetry" block; throws std::invalid_argument if not an object.
  void set_telemetry(Json telemetry_doc);

  Json to_json() const;
  std::string to_string(int indent = 2) const;
  /// Serialize to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::string name_;
  Json params_ = Json::object();
  Json derived_ = Json::object();
  Json results_ = Json::array();
  Json stencil_specs_ = Json::array();
  Json telemetry_;  // null unless set_telemetry() was called
  Json counters_ = Json::array();
  Json gauges_ = Json::array();
  Json histograms_ = Json::array();
};

/// Validate a serialized report against repro.run_report/v1. Returns true on
/// success; otherwise false with a human-readable reason in *error.
bool validate_run_report(const std::string& json_text, std::string* error);

}  // namespace repro::obs
