// Causal analysis over a finished rt::Tracer event stream: the layer that
// turns the paper's Fig. 10 Gantt strips into the story the text narrates.
//
// From the flat stream (Task spans with predecessor keys, Send/Recv message
// spans linked by flow id, classified Idle gaps) this library rebuilds the
// executed dataflow DAG and derives:
//   * the critical path — the timestamp-backed chain from the last finishing
//     task through each task's binding predecessor (the one whose release
//     arrived last), with every second attributed to compute (task bodies),
//     network (remote message segments) or runtime (scheduling gaps),
//   * comm/compute overlap efficiency — the fraction of message in-flight
//     time during which at least one worker was computing (fully hidden
//     communication scores 1.0),
//   * per-rank idle breakdowns from the worker gap taxonomy.
//
// Because the walk follows real timestamps, the reported critical path is a
// lower bound on the measured wall clock by construction — the cross-check
// tests assert exactly that on every traced run.
//
// Lives in obs (report/JSON side) but reads rt::TraceEvent, so it builds as
// its own library target (repro_obs_trace) on top of repro_runtime and
// repro_obs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "runtime/trace.hpp"

namespace repro::obs {

/// One link of the critical path, in execution order.
struct CriticalStep {
  rt::TaskKey key;
  std::string klass;
  int rank = 0;
  double compute_s = 0.0;  ///< the task body itself
  double network_s = 0.0;  ///< remote message segment that released the task
  double runtime_s = 0.0;  ///< gap between release and the body starting
  bool remote_release = false;  ///< binding predecessor was on another rank
};

struct TraceAnalysis {
  // Critical path and its per-class attribution (seconds on the path).
  double critical_path_s = 0.0;
  double cp_compute_s = 0.0;
  double cp_network_s = 0.0;
  double cp_runtime_s = 0.0;
  std::size_t cp_tasks = 0;     ///< tasks on the path
  std::size_t cp_messages = 0;  ///< remote releases on the path
  std::vector<CriticalStep> path;  ///< chronological

  /// cp_network_s / critical_path_s (0 when the path is empty).
  double network_share() const {
    return critical_path_s > 0.0 ? cp_network_s / critical_path_s : 0.0;
  }

  // Comm/compute overlap.
  double overlap_efficiency = 0.0;  ///< hidden fraction of in-flight time
  double network_inflight_s = 0.0;  ///< summed per-flow in-flight seconds
  double compute_active_s = 0.0;    ///< wall seconds with >=1 task running

  // Idle taxonomy: rank -> kind ("halo"|"noready"|"steal"|"shutdown") ->
  // summed gap seconds.
  std::map<int, std::map<std::string, double>> idle_by_rank;

  // Whole-trace totals.
  double span_s = 0.0;            ///< max(end) - min(begin) over all events
  double compute_seconds = 0.0;   ///< summed task durations (CPU seconds)
  std::size_t tasks = 0;
  /// Fused-wavefront attribution: rt::fuse_supersteps stamps rewritten
  /// tasks with a "fused<members>|<klass>" class. fused_tasks counts them;
  /// fused_depth is the largest member count observed (1 = no rewrite —
  /// ragged final windows make per-task counts vary, so the max is the
  /// configured window). trace_analyze prints both, single and --diff mode.
  std::size_t fused_tasks = 0;
  int fused_depth = 1;
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t steals = 0;
  std::uint64_t bytes_sent = 0;   ///< wire bytes over Send events
  std::uint64_t retransmits = 0;  ///< per-flow resends observed on delivery

  // Per-message wire costs (the persistent-channel before/after metric:
  // trace_analyze --diff gates on these means regressing).
  std::size_t flows_delivered = 0;  ///< flows with a matching delivery
  double wire_seconds = 0.0;        ///< summed Send event durations

  /// Mean producer-enqueue -> consumer-delivery latency per delivered flow.
  double mean_flow_latency_s() const {
    return flows_delivered > 0
               ? network_inflight_s / static_cast<double>(flows_delivered)
               : 0.0;
  }
  /// Mean sender-side wire occupancy per Send event.
  double mean_wire_s() const {
    return sends > 0 ? wire_seconds / static_cast<double>(sends) : 0.0;
  }
};

/// Rebuild the executed DAG from the event stream and derive the analysis.
/// Tolerates partial traces (a missing predecessor event ends the chain).
TraceAnalysis analyze_dataflow(const std::vector<rt::TraceEvent>& events);

inline constexpr const char* kTraceAnalysisSchema = "repro.trace_analysis/v1";

/// Build a "repro.trace_analysis/v1" report document:
///   { "schema", "name", "params": {scalars},
///     "critical_path": {...}, "overlap": {...},
///     "idle": [ {"rank", "kind", "seconds"}, ... ], "totals": {...} }
Json make_trace_analysis_report(const std::string& name,
                                const TraceAnalysis& analysis,
                                Json params = Json::object());

/// Validate a serialized document against repro.trace_analysis/v1. Returns
/// true on success; otherwise false with a human-readable reason in *error.
bool validate_trace_analysis(const std::string& json_text, std::string* error);

}  // namespace repro::obs
