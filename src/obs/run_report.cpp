#include "obs/run_report.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace repro::obs {

void RunReport::set_param(const std::string& key, Json value) {
  params_[key] = std::move(value);
}

void RunReport::set_derived(const std::string& key, Json value) {
  derived_[key] = std::move(value);
}

void RunReport::add_stencil_spec(Json descriptor) {
  if (!descriptor.is_object()) {
    throw std::invalid_argument(
        "RunReport stencil_spec entries must be JSON objects");
  }
  stencil_specs_.push_back(std::move(descriptor));
}

void RunReport::add_result(Json row) {
  if (!row.is_object()) {
    throw std::invalid_argument("RunReport result rows must be JSON objects");
  }
  results_.push_back(std::move(row));
}

void RunReport::add_metrics(const MetricsSnapshot& snapshot) {
  Json exported = obs::to_json(snapshot);
  for (auto& entry : exported["counters"].as_array()) {
    counters_.push_back(entry);
  }
  for (auto& entry : exported["gauges"].as_array()) {
    gauges_.push_back(entry);
  }
  for (auto& entry : exported["histograms"].as_array()) {
    histograms_.push_back(entry);
  }
}

void RunReport::add_metrics(const MetricsRegistry& registry) {
  add_metrics(registry.snapshot());
}

void RunReport::set_telemetry(Json telemetry_doc) {
  if (!telemetry_doc.is_object()) {
    throw std::invalid_argument(
        "RunReport telemetry must be a repro.telemetry/v1 object");
  }
  telemetry_ = std::move(telemetry_doc);
}

Json RunReport::to_json() const {
  Json out = Json::object();
  out["schema"] = kSchema;
  out["name"] = name_;
  out["params"] = params_;
  out["results"] = results_;
  Json metrics = Json::object();
  metrics["counters"] = counters_;
  metrics["gauges"] = gauges_;
  metrics["histograms"] = histograms_;
  out["metrics"] = std::move(metrics);
  out["derived"] = derived_;
  if (stencil_specs_.size() > 0) out["stencil_spec"] = stencil_specs_;
  if (telemetry_.is_object()) out["telemetry"] = telemetry_;
  return out;
}

std::string RunReport::to_string(int indent) const {
  return to_json().dump(indent) + "\n";
}

void RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RunReport: cannot open '" + path +
                             "' for writing");
  }
  out << to_string();
  if (!out) {
    throw std::runtime_error("RunReport: write to '" + path + "' failed");
  }
}

namespace {

/// Accumulates the first validation failure; all check_* helpers are no-ops
/// once an error is recorded.
struct Checker {
  std::string error;

  bool ok() const { return error.empty(); }
  bool fail(const std::string& what) {
    if (error.empty()) error = what;
    return false;
  }

  bool check_finite_number(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (!v.is_number()) return fail(where + ": expected a number");
    if (!std::isfinite(v.as_number())) {
      return fail(where + ": number is not finite");
    }
    return true;
  }

  bool check_scalar(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (v.is_string() || v.is_bool()) return true;
    if (v.is_number()) return check_finite_number(v, where);
    return fail(where + ": expected a scalar (number, string, or bool)");
  }

  bool check_scalar_object(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (!v.is_object()) return fail(where + ": expected an object");
    for (const auto& [key, value] : v.as_object()) {
      if (!check_scalar(value, where + "." + key)) return false;
    }
    return true;
  }

  bool check_label_object(const Json& v, const std::string& where) {
    if (!ok()) return false;
    if (!v.is_object()) return fail(where + ": expected a label object");
    for (const auto& [key, value] : v.as_object()) {
      if (!value.is_string()) {
        return fail(where + "." + key + ": label values must be strings");
      }
    }
    return true;
  }

  const Json* require(const Json& parent, const std::string& key,
                      const std::string& where) {
    if (!ok()) return nullptr;
    const Json* v = parent.find(key);
    if (v == nullptr) {
      fail(where + ": missing required key '" + key + "'");
      return nullptr;
    }
    return v;
  }

  bool check_sample_common(const Json& entry, const std::string& where) {
    const Json* name = require(entry, "name", where);
    if (name == nullptr) return false;
    if (!name->is_string() || name->as_string().empty()) {
      return fail(where + ".name: expected a non-empty string");
    }
    const Json* labels = require(entry, "labels", where);
    if (labels == nullptr) return false;
    return check_label_object(*labels, where + ".labels");
  }

  bool check_counter(const Json& entry, const std::string& where) {
    if (!entry.is_object()) return fail(where + ": expected an object");
    if (!check_sample_common(entry, where)) return false;
    const Json* value = require(entry, "value", where);
    if (value == nullptr) return false;
    if (!check_finite_number(*value, where + ".value")) return false;
    if (value->as_number() < 0.0) {
      return fail(where + ".value: counters cannot be negative");
    }
    return true;
  }

  bool check_gauge(const Json& entry, const std::string& where) {
    if (!entry.is_object()) return fail(where + ": expected an object");
    if (!check_sample_common(entry, where)) return false;
    const Json* value = require(entry, "value", where);
    if (value == nullptr) return false;
    return check_finite_number(*value, where + ".value");
  }

  bool check_histogram(const Json& entry, const std::string& where) {
    if (!entry.is_object()) return fail(where + ": expected an object");
    if (!check_sample_common(entry, where)) return false;
    const Json* bounds = require(entry, "bounds", where);
    const Json* counts = require(entry, "counts", where);
    const Json* sums = require(entry, "sums", where);
    if (bounds == nullptr || counts == nullptr || sums == nullptr) return false;
    if (!bounds->is_array()) return fail(where + ".bounds: expected an array");
    if (!counts->is_array()) return fail(where + ".counts: expected an array");
    if (!sums->is_array()) return fail(where + ".sums: expected an array");
    double prev = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < bounds->size(); ++i) {
      const Json& b = bounds->as_array()[i];
      const std::string slot = where + ".bounds[" + std::to_string(i) + "]";
      if (!check_finite_number(b, slot)) return false;
      if (!(b.as_number() > prev)) {
        return fail(slot + ": bounds must be strictly increasing");
      }
      prev = b.as_number();
    }
    const std::size_t expected =
        bounds->size() == 0 ? 0 : bounds->size() + 1;
    if (bounds->size() != 0 && counts->size() != expected) {
      return fail(where + ".counts: expected " + std::to_string(expected) +
                  " buckets (bounds + overflow)");
    }
    if (sums->size() != counts->size()) {
      return fail(where + ".sums: length must match counts");
    }
    for (std::size_t i = 0; i < counts->size(); ++i) {
      const std::string slot = where + ".counts[" + std::to_string(i) + "]";
      const Json& c = counts->as_array()[i];
      if (!check_finite_number(c, slot)) return false;
      if (c.as_number() < 0.0) return fail(slot + ": negative bucket count");
    }
    for (std::size_t i = 0; i < sums->size(); ++i) {
      if (!check_finite_number(sums->as_array()[i],
                               where + ".sums[" + std::to_string(i) + "]")) {
        return false;
      }
    }
    const Json* count = require(entry, "count", where);
    const Json* sum = require(entry, "sum", where);
    if (count == nullptr || sum == nullptr) return false;
    if (!check_finite_number(*count, where + ".count")) return false;
    return check_finite_number(*sum, where + ".sum");
  }
};

}  // namespace

bool validate_run_report(const std::string& json_text, std::string* error) {
  Json doc;
  std::string parse_error;
  if (!Json::parse(json_text, &doc, &parse_error)) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return false;
  }
  Checker ck;
  auto done = [&]() {
    if (error != nullptr) *error = ck.error;
    return ck.ok();
  };
  if (!doc.is_object()) {
    ck.fail("top level: expected an object");
    return done();
  }
  const Json* schema = ck.require(doc, "schema", "top level");
  if (schema != nullptr) {
    if (!schema->is_string() || schema->as_string() != RunReport::kSchema) {
      ck.fail(std::string("schema: expected \"") + RunReport::kSchema + "\"");
    }
  }
  const Json* name = ck.require(doc, "name", "top level");
  if (name != nullptr && (!name->is_string() || name->as_string().empty())) {
    ck.fail("name: expected a non-empty string");
  }
  const Json* params = ck.require(doc, "params", "top level");
  if (params != nullptr) ck.check_scalar_object(*params, "params");
  const Json* derived = ck.require(doc, "derived", "top level");
  if (derived != nullptr) ck.check_scalar_object(*derived, "derived");
  const Json* results = ck.require(doc, "results", "top level");
  if (results != nullptr) {
    if (!results->is_array()) {
      ck.fail("results: expected an array");
    } else {
      for (std::size_t i = 0; i < results->size(); ++i) {
        ck.check_scalar_object(results->as_array()[i],
                               "results[" + std::to_string(i) + "]");
      }
    }
  }
  // Optional block: spec-driven benches describe the stencils they swept.
  const Json* stencil_spec = doc.find("stencil_spec");
  if (stencil_spec != nullptr) {
    if (!stencil_spec->is_array()) {
      ck.fail("stencil_spec: expected an array");
    } else {
      for (std::size_t i = 0; i < stencil_spec->size(); ++i) {
        const std::string where = "stencil_spec[" + std::to_string(i) + "]";
        const Json& entry = stencil_spec->as_array()[i];
        if (!ck.check_scalar_object(entry, where)) break;
        const Json* spec_name = ck.require(entry, "name", where);
        if (spec_name != nullptr &&
            (!spec_name->is_string() || spec_name->as_string().empty())) {
          ck.fail(where + ".name: expected a non-empty string");
        }
        for (const char* key : {"rank", "radius", "stages", "points"}) {
          const Json* v = ck.require(entry, key, where);
          if (v != nullptr) ck.check_finite_number(*v, where + "." + key);
        }
      }
    }
  }
  // Optional block: live-telemetry runs embed the full repro.telemetry/v1
  // stream (deltas, detector events, fingerprint).
  const Json* telemetry = doc.find("telemetry");
  if (telemetry != nullptr) {
    std::string telemetry_error;
    if (!validate_telemetry(*telemetry, &telemetry_error)) {
      ck.fail("telemetry: " + telemetry_error);
    }
  }
  const Json* metrics = ck.require(doc, "metrics", "top level");
  if (metrics != nullptr) {
    if (!metrics->is_object()) {
      ck.fail("metrics: expected an object");
    } else {
      const Json* counters = ck.require(*metrics, "counters", "metrics");
      if (counters != nullptr) {
        if (!counters->is_array()) {
          ck.fail("metrics.counters: expected an array");
        } else {
          for (std::size_t i = 0; i < counters->size(); ++i) {
            ck.check_counter(counters->as_array()[i],
                             "metrics.counters[" + std::to_string(i) + "]");
          }
        }
      }
      const Json* gauges = ck.require(*metrics, "gauges", "metrics");
      if (gauges != nullptr) {
        if (!gauges->is_array()) {
          ck.fail("metrics.gauges: expected an array");
        } else {
          for (std::size_t i = 0; i < gauges->size(); ++i) {
            ck.check_gauge(gauges->as_array()[i],
                           "metrics.gauges[" + std::to_string(i) + "]");
          }
        }
      }
      const Json* histograms = ck.require(*metrics, "histograms", "metrics");
      if (histograms != nullptr) {
        if (!histograms->is_array()) {
          ck.fail("metrics.histograms: expected an array");
        } else {
          for (std::size_t i = 0; i < histograms->size(); ++i) {
            ck.check_histogram(histograms->as_array()[i],
                               "metrics.histograms[" + std::to_string(i) + "]");
          }
        }
      }
    }
  }
  return done();
}

}  // namespace repro::obs
