// Convergence-driven driver over the distributed solvers.
//
// The paper's benchmarks run a fixed iteration count; real applications run
// Jacobi until the update stalls. solve_to_tolerance() runs rounds of
// `round_iterations` sweeps through run_distributed(), warm-starting each
// round from the previous round's field (exact continuation: the entire
// solver state is the grid), until the max per-round change drops below
// `tolerance` or `max_rounds` elapse.
#pragma once

#include "stencil/dist_stencil.hpp"

namespace repro::stencil {

struct IterativeSolveResult {
  Grid2D grid;
  int iterations = 0;       ///< total sweeps performed
  double last_delta = 0.0;  ///< max |change| over the final round
  bool converged = false;
  std::uint64_t messages = 0;  ///< total remote messages across rounds
};

/// `problem.iterations` is ignored; rounds of `round_iterations` sweeps run
/// until max-change < tolerance. Throws on invalid arguments. The compute
/// kernel (and the fused-temporal graph shape) is selected by
/// `config.kernel`, exactly as in a direct run_distributed() call.
IterativeSolveResult solve_to_tolerance(const Problem& problem,
                                        const DistConfig& config,
                                        double tolerance,
                                        int round_iterations = 50,
                                        int max_rounds = 1000);

}  // namespace repro::stencil
