// Distributed Jacobi over the task runtime: base and communication-avoiding.
//
// One generic builder covers both paper variants:
//   * steps == 1 reproduces base-PaRSEC: every tile task consumes its own
//     previous state, same-node neighbors' states (zero-copy), and one-deep
//     halo bands from remote neighbors (messages) — every iteration.
//   * steps == s > 1 reproduces CA-PaRSEC (PA1): tiles facing a node boundary
//     carry s-deep ghost bands on those sides; remote bands (plus s x s
//     corner blocks from diagonal neighbors) are exchanged only at superstep
//     starts, and the tile redundantly recomputes the ghost band, shrinking
//     by one layer per inner step. Node-interior sides still exchange
//     locally (shared buffers) every step, exactly as the paper describes
//     ("tiles that have all neighbors local ... have one layer ghost
//     region").
//
// The kernel_ratio knob reproduces the paper's kernel-time tuning: only a
// (ratio*h) x (ratio*w) sub-rectangle is updated, "which effectively reduces
// the memory access thus speedup the kernel execution". Results are not
// numerically meaningful when ratio < 1 (timing experiments only).
#pragma once

#include <functional>
#include <vector>

#include "net/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runtime/runtime.hpp"
#include "stencil/grid.hpp"
#include "stencil/kernel_opt.hpp"
#include "stencil/problem.hpp"
#include "stencil/tile_map.hpp"

namespace repro::stencil {

/// Called as tile (ti,tj) reaches a globally consistent state: after INIT
/// (k == 0) and after each iteration k with k % steps == 0. `core` is the
/// tile's h x w interior, row-major (spec-driven runs pass the program's
/// nfield field planes, plane-major — nfield * h * w values — and k counts
/// ORIGINAL iterations, not atomic stages). Invoked concurrently from worker
/// threads — the callee must be thread-safe. Used by the fault subsystem to
/// checkpoint at CA superstep boundaries.
using SuperstepHook =
    std::function<void(int k, int ti, int tj, const std::vector<double>& core)>;

struct Decomposition {
  int mb = 0;         ///< nominal tile rows
  int nb = 0;         ///< nominal tile cols
  int node_rows = 1;  ///< virtual process grid rows
  int node_cols = 1;  ///< virtual process grid cols
};

struct DistConfig {
  Decomposition decomp;
  int steps = 1;              ///< CA step size; 1 = base version
  /// Cross-node temporal blocking: fuse this many consecutive CA supersteps
  /// into one pipelined wavefront per tile (rt::fuse_supersteps, DESIGN.md
  /// §17). With fuse_depth = f > 1 the builder emits a FUSE-READY graph —
  /// every neighbor side carries a (steps * f)-deep ghost band, cross-tile
  /// edges exist only at window boundaries — and the driver rewrites the
  /// per-step task chains so each window of steps * f stage-steps runs
  /// cache-resident inside one task. Remote halo exchanges collapse to one
  /// per f supersteps (deeper bands, more redundant recompute — the CA
  /// trade, taken f times further). Composes with every kernel variant
  /// (Temporal deepens its in-kernel window instead of rewriting), specs,
  /// schedulers, persistent channels, and the fault stack; results stay
  /// bit-identical to the serial reference. Requires kernel_ratio == 1 and
  /// radius * steps * f (stage units) within the smallest tile extent.
  int fuse_depth = 1;
  double kernel_ratio = 1.0;  ///< <1 = simulated faster kernel (timing only)
  int workers_per_rank = 1;
  bool dedicated_comm_thread = true;
  bool trace = false;
  rt::SchedPolicy scheduler = rt::SchedPolicy::PriorityFifo;
  /// Per-destination-node message aggregation (see rt::Config).
  bool aggregate_messages = false;
  /// Compute-kernel variant for the constant-coefficient 5-point path
  /// (shape/coefficient problems always use their dedicated kernels).
  /// Scalar/Vector/Blocked only change the inner sweep — the task graph is
  /// unchanged and results stay bit-identical to the serial reference.
  /// Temporal additionally FUSES each superstep into one task per tile:
  /// every neighbor side carries a steps-deep ghost band (local neighbors
  /// included, since there is no per-inner-step exchange to refresh them)
  /// and jacobi5_temporal advances all inner steps in-task. Temporal
  /// requires the plain constant-coefficient problem (no shape, no variable
  /// coefficients) and kernel_ratio == 1.
  KernelVariant kernel = KernelVariant::Scalar;
  /// Blocking and SIMD-dispatch tuning for the optimized variants.
  KernelTuning tuning{};
  /// Snapshot callback at superstep boundaries (empty = disabled).
  SuperstepHook superstep_hook{};
  /// Custom channel stack for remote traffic (empty = plain Transport).
  net::ChannelFactory channel_factory{};
  /// Persistent halo channels (net::PersistentChannel): every remote
  /// band/corner flow is annotated with a route id + exact size, the channel
  /// stack is wrapped in a PersistentChannel, endpoints negotiate buffers
  /// once at run start, and halo publishes go out as partitioned zero-copy
  /// fragment sends from pre-registered buffers. Results are bit-identical
  /// to the default path; only the wire mechanics change. In
  /// add_solve_subgraph this flag annotates routes only — the caller wraps
  /// its own runtime channel (see serve::FarmConfig::persistent).
  bool persistent = false;
  /// Registry every layer of the run scrapes into: rt_* (runtime), net_*
  /// (default transport), stencil_* (this driver). Null = private registry,
  /// returned in DistResult::metrics either way.
  std::shared_ptr<obs::MetricsRegistry> metrics{};
  /// Victim-selection seed for SchedPolicy::WorkStealing (see rt::Config).
  std::uint64_t sched_seed = 0;
  /// Schedule-fuzzing hook, forwarded to the runtime (tests only).
  std::shared_ptr<rt::SchedTestHook> sched_test_hook{};
  /// Task-key namespace. Every task key's type becomes
  /// key_space * 2 + {0 = INIT, 1 = STEP}, so several solves can coexist in
  /// one TaskGraph without key collisions (the serve layer batches small
  /// jobs into shared graphs this way). 0 = the classic single-job keys.
  std::uint32_t key_space = 0;
  /// Added to every task's priority. The serve layer maps tenant lanes onto
  /// the scheduler's priority levels with this knob (a latency-sensitive
  /// tenant's interior tasks outrank a batch tenant's halo publishes when
  /// bias >= 3, since the per-job priorities span 0..2).
  int priority_bias = 0;
  /// Accounting lane stamped on every task (rt::TaskSpec::lane); -1 = none.
  int lane = -1;
  /// Live cross-rank telemetry: at every superstep boundary each rank
  /// condenses its progress (tasks, idle taxonomy, wire bytes, queue depth)
  /// into one obs::TelemetrySnapshot; ranks > 0 ship it to rank 0 as a real
  /// wire message (obs::kTelemetryWireBytes each, charged to the channel and
  /// modeled byte-exactly by the DES), rank 0 ingests locally. The stream,
  /// online detectors, and events land in DistResult::telemetry.
  bool telemetry = false;
  /// Online-detector thresholds (straggler lag, halo-share, queue depth).
  obs::DetectorConfig telemetry_detectors{};
  /// When non-empty, rank 0 atomically rewrites this file with the live
  /// repro.telemetry/v1 document on every ingest — the attach point for
  /// `tools/repro_top --file=<path>`.
  std::string telemetry_dump;
  /// Optional externally-owned collector (e.g. shared across runs); null =
  /// run_distributed creates one per run.
  std::shared_ptr<obs::TelemetryCollector> telemetry_collector{};
};

struct DistResult {
  Grid2D grid;                ///< gathered final field (spec runs: z plane 0)
  rt::RunStats stats;         ///< wall time + remote traffic
  std::vector<rt::TraceEvent> trace_events;
  /// Spec-driven runs: all nz interior z planes (planes[0] == grid); empty
  /// on the classic paths.
  std::vector<Grid2D> planes;
  /// Stencil points updated (incl. redundant). Spec runs count STAGE cell
  /// updates (one per atomic stage per cell), matching the stage-averaged
  /// flops_per_point below.
  long long computed_points = 0;
  long long nominal_points = 0;   ///< rows*cols*iterations (no redundancy;
                                  ///< spec runs: iterations * stages basis)
  double flops_per_point = kFlopsPerPoint;  ///< 9 for 5-point; shape/spec-derived
  /// Scrape point for the run's metric families (never null after
  /// run_distributed returns).
  std::shared_ptr<obs::MetricsRegistry> metrics{};
  /// Telemetry stream + detector events (null unless DistConfig::telemetry).
  std::shared_ptr<obs::TelemetryCollector> telemetry{};

  double flops() const {
    return flops_per_point * static_cast<double>(computed_points);
  }
  /// Fraction of extra work the CA scheme performed, e.g. 0.08 = +8%.
  double redundancy() const {
    return nominal_points > 0
               ? static_cast<double>(computed_points - nominal_points) /
                     static_cast<double>(nominal_points)
               : 0.0;
  }
};

/// Run the distributed solver. Validates that `steps` fits the decomposition
/// (1 <= steps <= smallest tile extent) and that tile/node grids are sound.
DistResult run_distributed(const Problem& problem, const DistConfig& config);

/// Handle to one solve compiled into a (possibly shared) TaskGraph by
/// add_solve_subgraph(). After a runtime has executed the graph, gather()
/// reassembles the final field from the retained state buffers. The handle
/// stays valid for exactly one run — gather before Runtime::release_run().
class SolveSubgraph {
 public:
  /// Virtual process count the subgraph was decomposed for; must equal the
  /// executing runtime's nranks.
  int nodes() const;
  /// Tasks this solve contributed to the graph.
  std::size_t tasks() const;
  /// Gather the solve's final field (spec runs: z plane 0). Throws if the
  /// graph has not run.
  Grid2D gather(const rt::Runtime& runtime) const;
  /// Gather z plane `z` of a spec-driven solve (classic paths: z must be 0).
  Grid2D gather_plane(const rt::Runtime& runtime, int z) const;
  /// All nz interior z planes (classic paths: one plane, == gather()).
  std::vector<Grid2D> gather_planes(const rt::Runtime& runtime) const;
  /// Stencil points updated (redundant recompute included); valid after run.
  long long computed_points() const;
  /// rows * cols * iterations (no redundancy).
  long long nominal_points() const;
  /// Members per fuse window for rt::fuse_supersteps: > 1 when the config
  /// requested a fused wavefront on a per-step path (the emitted graph is
  /// fuse-ready but NOT yet fused — the caller owning the TaskGraph applies
  /// the rewrite, since a shared multi-solve graph can only be fused at one
  /// global depth). 1 = run the graph as built (classic, or Temporal whose
  /// windows are already intra-task).
  int fuse_window() const;

  struct Impl;

 private:
  friend SolveSubgraph add_solve_subgraph(rt::TaskGraph& graph,
                                          const Problem& problem,
                                          const DistConfig& config);
  std::shared_ptr<Impl> impl_;
};

/// Compile one solve into `graph` (the multi-tenant entry point: the serve
/// layer batches several solves — distinct key_space values — into one graph
/// and runs them on a resident runtime). Performs the same validation as
/// run_distributed. The runtime-level DistConfig knobs (workers, scheduler,
/// channel_factory, ...) are ignored here; only the decomposition, CA steps,
/// kernel, hook, key_space, priority_bias, and lane matter.
SolveSubgraph add_solve_subgraph(rt::TaskGraph& graph, const Problem& problem,
                                 const DistConfig& config);

}  // namespace repro::stencil
