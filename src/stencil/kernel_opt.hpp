// Optimized 5-point Jacobi kernel variants, bit-identical to scalar jacobi5.
//
// Three optimization layers behind the same per-point contract as jacobi5:
//
//   * Vector   — the inner loop in an explicitly vectorizable form, with an
//                AVX2 path under runtime dispatch (portable form otherwise).
//   * Blocked  — cache-blocked traversal with tunable block extents, calling
//                the vectorized row kernel per block.
//   * Temporal — multi-step fusion (jacobi5_temporal): advance m Jacobi steps
//                in one call over a shrinking region, the shared-memory
//                analogue of PA1's redundant ghost-band recompute. The CA
//                builder uses it to run a whole superstep as one task.
//
// Bit-equivalence rule (load-bearing, tested): every variant evaluates each
// point as (((w0*m + wn*u) + ws*d) + ww*w) + we*e with every multiply and add
// individually rounded. IEEE-754 ops are deterministic and Jacobi has no
// cross-point ordering, so any traversal/blocking order yields identical
// bits. The AVX2 path therefore uses explicit mul/add intrinsics and never
// FMA — fused contraction would change the rounding and break equivalence
// with the baseline (compiled without FMA).
#pragma once

#include <array>
#include <string>

#include "stencil/kernel.hpp"

namespace repro::stencil {

/// Kernel implementation selector, exposed as --kernel= on the bench CLIs.
enum class KernelVariant {
  Scalar,   ///< the reference jacobi5 loop (default)
  Vector,   ///< vectorized rows (AVX2 when available, portable otherwise)
  Blocked,  ///< cache-blocked traversal over vectorized rows
  Temporal, ///< Blocked per sweep; the CA builder additionally fuses each
            ///< superstep's s inner steps into one task (5-point constant
            ///< coefficients only)
};

inline constexpr KernelVariant kAllKernelVariants[] = {
    KernelVariant::Scalar, KernelVariant::Vector, KernelVariant::Blocked,
    KernelVariant::Temporal};

/// Stable lowercase name ("scalar", "vector", "blocked", "temporal").
const char* kernel_variant_name(KernelVariant v);

/// Inverse of kernel_variant_name; throws std::invalid_argument naming the
/// accepted spellings on anything else.
KernelVariant parse_kernel_variant(const std::string& name);

/// Tunables for the optimized variants. Defaults target a ~256 KiB L2: a
/// block of 64 x 1024 doubles touches three read rows + one write row per
/// sweep row and stays resident across the row loop.
struct KernelTuning {
  int block_rows = 64;    ///< cache-block height (rows per block)
  int block_cols = 1024;  ///< cache-block width (columns per block)
  /// AVX2 dispatch override: -1 = auto (REPRO_KERNEL_AVX2 env var if set,
  /// else CPU detection), 0 = force portable path, 1 = use AVX2 whenever the
  /// CPU has it. Forcing on without hardware support falls back to portable.
  int force_avx2 = -1;
};

/// True when this build and CPU can execute the AVX2 path.
bool avx2_available();

/// The dispatch decision jacobi5_opt will make for `tuning`: force_avx2
/// wins, then the REPRO_KERNEL_AVX2 env var ("on"/"off"/"1"/"0"), then CPU
/// detection. Never true when avx2_available() is false.
bool avx2_selected(const KernelTuning& tuning);

/// One Jacobi step over [r0,r1) x [c0,c1), same contract and bit-identical
/// results as jacobi5 (bounds may reach into ghost regions; all read cells
/// must lie within the padded extents). Temporal degenerates to Blocked here
/// — multi-step fusion needs jacobi5_temporal.
void jacobi5_opt(const double* in, double* out, const TileGeom& geom,
                 const Stencil5& weights, int r0, int r1, int c0, int c1,
                 KernelVariant variant, const KernelTuning& tuning = {});

/// Advance `m` Jacobi steps in one call. The rectangle [r0,r1) x [c0,c1) is
/// the FIRST step's region; each subsequent step shrinks it by one layer on
/// every side whose `shrink` flag (Side order: N,S,W,E) is set — exactly the
/// CA scheme's redundant ghost-band recompute. Non-shrinking sides must abut
/// a fixed (never-written) boundary line in `in`, e.g. the Dirichlet ring.
/// Writes the final-step region of `out` with step-m values; cells of `out`
/// outside that region are left untouched. Intermediate steps ping-pong
/// through internal scratch, so `in` is read-only and results are
/// bit-identical to m separate jacobi5 calls over the shrinking regions.
/// Throws std::invalid_argument if m < 1 or shrinking empties the region.
void jacobi5_temporal(const double* in, double* out, const TileGeom& geom,
                      const Stencil5& weights, int r0, int r1, int c0, int c1,
                      int m, const std::array<bool, 4>& shrink,
                      const KernelTuning& tuning = {});

}  // namespace repro::stencil
