// Five-point Jacobi stencil kernel over halo-padded tiles.
//
// The paper's update (eq. 1) uses the general variable-weight form so every
// implementation performs the same 9 FLOP per point (5 multiplies + 4 adds):
//   x'(i,j) = w0*x(i,j) + wN*x(i-1,j) + wS*x(i+1,j) + wW*x(i,j-1) + wE*x(i,j+1)
#pragma once

#include <cstddef>

namespace repro::stencil {

/// Stencil coefficients. Constant-coefficient across the grid (the paper's
/// configuration); classic Jacobi-for-Laplace is {0, .25, .25, .25, .25}.
struct Stencil5 {
  double center = 0.0;
  double north = 0.25;
  double south = 0.25;
  double west = 0.25;
  double east = 0.25;

  static Stencil5 laplace_jacobi() { return {}; }

  /// A mildly asymmetric contraction used by tests so that directional bugs
  /// (swapped north/south, transposed indices) change the answer.
  static Stencil5 test_weights() { return {0.20, 0.23, 0.17, 0.19, 0.21}; }
};

inline constexpr double kFlopsPerPoint = 9.0;

/// Geometry of a halo-padded tile buffer. Core cells are addressed with
/// i in [0,h), j in [0,w); ghost cells with negative/overflowing indices up
/// to the per-side depths. Row-major with leading dimension ld().
struct TileGeom {
  int h = 0;   ///< core rows
  int w = 0;   ///< core cols
  int gn = 0;  ///< ghost depth above row 0
  int gs = 0;  ///< ghost depth below row h-1
  int gw = 0;  ///< ghost depth left of col 0
  int ge = 0;  ///< ghost depth right of col w-1

  int ld() const { return gw + w + ge; }
  int rows() const { return gn + h + gs; }
  std::size_t size() const {
    return static_cast<std::size_t>(rows()) * static_cast<std::size_t>(ld());
  }
  /// Linear index of cell (i,j); valid for i in [-gn, h+gs), j in [-gw, w+ge).
  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i + gn) * static_cast<std::size_t>(ld()) +
           static_cast<std::size_t>(j + gw);
  }

  friend bool operator==(const TileGeom&, const TileGeom&) = default;
};

/// Apply one Jacobi step over the rectangle [r0,r1) x [c0,c1) in core
/// coordinates (bounds may reach into the ghost region for the CA scheme's
/// redundant computation). Reads `in`, writes the same cells of `out`; both
/// buffers share `geom`. All read cells must lie within the padded extents:
/// the caller guarantees r0-1 >= -gn, r1 <= h+gs, etc.
void jacobi5(const double* in, double* out, const TileGeom& geom,
             const Stencil5& weights, int r0, int r1, int c0, int c1);

/// Number of coefficient planes in a variable-coefficient buffer and their
/// order (matching the constant-weight evaluation order).
inline constexpr int kCoeffPlanes = 5;
enum CoeffPlane { kCoeffCenter = 0, kCoeffNorth, kCoeffSouth, kCoeffWest,
                  kCoeffEast };

/// Variable-coefficient update (paper section III-A: "these coefficients may
/// ... differ at each grid point"). `coeff` holds kCoeffPlanes planes, each
/// laid out exactly like the tile buffer (geom.size() doubles per plane,
/// addressed via geom.idx). Evaluation order per point matches jacobi5, so
/// a variable run with constant planes is bit-identical to jacobi5.
void jacobi5_var(const double* in, double* out, const TileGeom& geom,
                 const double* coeff, int r0, int r1, int c0, int c1);

/// FLOPs performed over the rectangle [r0,r1) x [c0,c1): kFlopsPerPoint (9)
/// per updated point, zero when either extent is empty or inverted. The same
/// count applies to every jacobi5 path, including the variable-coefficient
/// jacobi5_var — per-point coefficients change which operands are loaded (5
/// extra plane reads per point), not the 5-multiply/4-add arithmetic — and
/// all optimized variants in kernel_opt.hpp, whose redundant temporal-step
/// work the caller accounts by summing this over each step's region.
inline double jacobi5_flops(int r0, int r1, int c0, int c1) {
  if (r1 <= r0 || c1 <= c0) return 0.0;
  return kFlopsPerPoint * static_cast<double>(r1 - r0) *
         static_cast<double>(c1 - c0);
}

}  // namespace repro::stencil
