#include "stencil/tile_map.hpp"

#include <algorithm>

namespace repro::stencil {

TileMap::TileMap(int rows, int cols, int mb, int nb, int node_rows,
                 int node_cols)
    : rows_(rows),
      cols_(cols),
      mb_(mb),
      nb_(nb),
      tiles_r_(tile_count(rows, mb)),
      tiles_c_(tile_count(cols, nb)),
      node_rows_(node_rows),
      node_cols_(node_cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("TileMap: empty grid");
  if (node_rows < 1 || node_cols < 1) {
    throw std::invalid_argument("TileMap: empty node grid");
  }
  if (tiles_r_ < node_rows_ || tiles_c_ < node_cols_) {
    throw std::invalid_argument(
        "TileMap: fewer tiles than nodes in some dimension");
  }
}

int TileMap::tile_count(int n, int t) {
  if (t < 1) throw std::invalid_argument("TileMap: empty tile");
  return (n + t - 1) / t;
}

int TileMap::tile_h(int ti) const {
  return ti == tiles_r_ - 1 ? rows_ - ti * mb_ : mb_;
}

int TileMap::tile_w(int tj) const {
  return tj == tiles_c_ - 1 ? cols_ - tj * nb_ : nb_;
}

int TileMap::block_owner(int index, int count, int parts) {
  // Balanced contiguous blocks: the first `count % parts` owners hold one
  // extra element.
  const int base = count / parts;
  const int rem = count % parts;
  const int pivot = rem * (base + 1);
  if (index < pivot) return index / (base + 1);
  return rem + (index - pivot) / base;
}

int TileMap::neighbor_count(int ti, int tj, bool remote_only) const {
  int count = 0;
  for (int dti = -1; dti <= 1; ++dti) {
    for (int dtj = -1; dtj <= 1; ++dtj) {
      if (dti == 0 && dtj == 0) continue;
      if (remote_only ? neighbor_remote(ti, tj, dti, dtj)
                      : neighbor_exists(ti, tj, dti, dtj)) {
        ++count;
      }
    }
  }
  return count;
}

int TileMap::min_tile_extent() const {
  int smallest = std::min(mb_, nb_);
  smallest = std::min(smallest, tile_h(tiles_r_ - 1));
  smallest = std::min(smallest, tile_w(tiles_c_ - 1));
  return smallest;
}

int TileMap::tiles_on_rank(int rank) const {
  int count = 0;
  for (int ti = 0; ti < tiles_r_; ++ti) {
    for (int tj = 0; tj < tiles_c_; ++tj) {
      if (rank_of(ti, tj) == rank) ++count;
    }
  }
  return count;
}

}  // namespace repro::stencil
