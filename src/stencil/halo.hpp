// Halo packing/unpacking between halo-padded tiles.
//
// Terminology (all in a tile's core coordinates, see TileGeom):
//   * a BAND is `depth` rows/cols of a producer's core adjacent to one side,
//     shipped to the neighbor on that side, which stores it in its ghost
//     region: producer's South band becomes its south neighbor's north ghost.
//   * a CORNER block is an s x s piece of a producer's core corner, shipped
//     to the diagonal neighbor (PA1's "buffer additional data from the four
//     corner neighbors"); the consumer uses the gn x gw (etc.) sub-block its
//     ghost geometry actually has.
//   * a LOCAL LINE is the one-deep ghost line refreshed every inner step from
//     a same-node neighbor's buffer; it spans the full *extended* lateral
//     extent so that the lateral cells of deep (remote-side) ghost bands are
//     refreshed transparently — this is what keeps the CA shrinking regions
//     of adjacent boundary tiles consistent without extra messages.
#pragma once

#include <span>
#include <vector>

#include "stencil/kernel.hpp"

namespace repro::stencil {

enum class Side { North = 0, South = 1, West = 2, East = 3 };
enum class Corner { NW = 0, NE = 1, SW = 2, SE = 3 };

inline constexpr Side kAllSides[] = {Side::North, Side::South, Side::West,
                                     Side::East};
inline constexpr Corner kAllCorners[] = {Corner::NW, Corner::NE, Corner::SW,
                                         Corner::SE};

/// Tile-coordinate delta of the neighbor on `side` / at `corner`.
constexpr int d_ti(Side s) { return s == Side::North ? -1 : s == Side::South ? 1 : 0; }
constexpr int d_tj(Side s) { return s == Side::West ? -1 : s == Side::East ? 1 : 0; }
constexpr int d_ti(Corner c) { return (c == Corner::NW || c == Corner::NE) ? -1 : 1; }
constexpr int d_tj(Corner c) { return (c == Corner::NW || c == Corner::SW) ? -1 : 1; }

/// The side/corner seen from the other end of the edge.
constexpr Side opposite(Side s) {
  switch (s) {
    case Side::North: return Side::South;
    case Side::South: return Side::North;
    case Side::West: return Side::East;
    case Side::East: return Side::West;
  }
  return Side::North;
}
constexpr Corner opposite(Corner c) {
  switch (c) {
    case Corner::NW: return Corner::SE;
    case Corner::NE: return Corner::SW;
    case Corner::SW: return Corner::NE;
    case Corner::SE: return Corner::NW;
  }
  return Corner::NW;
}

/// Static display name of a side ("north", "south", "west", "east").
const char* side_name(Side s);

/// Pack `depth` core rows/cols adjacent to `side`. North/South bands are
/// depth x w row-major; West/East bands are h x depth row-major.
std::vector<double> pack_band(const double* ext, const TileGeom& g, Side side,
                              int depth);

/// Fill this tile's ghost band on `side` (core-width lateral extent, full
/// ghost depth on that side) from the band packed by the neighbor's opposite
/// side with the same depth.
void unpack_band(double* ext, const TileGeom& g, Side side,
                 std::span<const double> band, int depth);

/// Pack the s x s core block at `corner`.
std::vector<double> pack_corner(const double* ext, const TileGeom& g,
                                Corner corner, int s);

/// Fill this tile's ghost corner region at `corner` (gn x gw cells etc.) from
/// the s x s block packed by the diagonal neighbor's opposite corner.
void unpack_corner(double* ext, const TileGeom& g, Corner corner,
                   std::span<const double> block, int s);

/// Refresh the `depth`-deep ghost band on `side`, spanning the full extended
/// lateral extent, from the same-node neighbor's buffer (depth = the stencil
/// radius; 1 for the paper's 5-point case). The two geometries must agree on
/// the lateral extents (guaranteed by blocked distribution), and the ghost
/// depth on `side` must equal `depth`.
void copy_local_line(double* ext, const TileGeom& g, Side side,
                     const double* nbr, const TileGeom& ng, int depth = 1);

/// Refresh this tile's ghost corner region at `corner` (gn x gw cells etc.)
/// from the same-node DIAGONAL neighbor's core corner — needed every step by
/// box-shaped stencils, whose points read diagonal neighbors directly.
void copy_local_corner(double* ext, const TileGeom& g, Corner corner,
                       const double* diag, const TileGeom& dg);

// ------------------------------------------------------- multi-plane variants
//
// Spec-driven tiles hold ncomp planes of g.size() doubles each (plane p of
// buffer `ext` starts at ext + p * g.size()). These variants apply the
// single-plane operation to the first `nplanes` planes, packing/unpacking
// payloads plane-major (plane 0's band first). The single-plane functions are
// the nplanes == 1 case, so the classic 5-point paths are unchanged.

std::vector<double> pack_band_planes(const double* ext, const TileGeom& g,
                                     Side side, int depth, int nplanes);

/// Zero-allocation variants for persistent-channel registered buffers: pack
/// straight into caller-provided storage (plane-major, same layout the
/// allocating packers produce). `dst` must hold band/block doubles x nplanes;
/// returns the doubles written so callers can assert against the negotiated
/// route size.
std::size_t pack_band_planes_into(double* dst, const double* ext,
                                  const TileGeom& g, Side side, int depth,
                                  int nplanes);
std::size_t pack_corner_planes_into(double* dst, const double* ext,
                                    const TileGeom& g, Corner corner, int s,
                                    int nplanes);
void unpack_band_planes(double* ext, const TileGeom& g, Side side,
                        std::span<const double> band, int depth, int nplanes);
std::vector<double> pack_corner_planes(const double* ext, const TileGeom& g,
                                       Corner corner, int s, int nplanes);
void unpack_corner_planes(double* ext, const TileGeom& g, Corner corner,
                          std::span<const double> block, int s, int nplanes);
void copy_local_line_planes(double* ext, const TileGeom& g, Side side,
                            const double* nbr, const TileGeom& ng, int depth,
                            int nplanes);
void copy_local_corner_planes(double* ext, const TileGeom& g, Corner corner,
                              const double* diag, const TileGeom& dg,
                              int nplanes);

}  // namespace repro::stencil
