#include "stencil/solver.hpp"

#include <memory>
#include <stdexcept>

namespace repro::stencil {

IterativeSolveResult solve_to_tolerance(const Problem& problem,
                                        const DistConfig& config,
                                        double tolerance,
                                        int round_iterations,
                                        int max_rounds) {
  if (tolerance <= 0.0 || round_iterations < 1 || max_rounds < 1) {
    throw std::invalid_argument("solve_to_tolerance: bad arguments");
  }
  if (problem.spec) {
    // Warm-starting rounds rewires `initial`, but spec problems sample
    // initial3 — restarting them from a 2D snapshot would silently drop the
    // extra z planes. Explicitly unsupported until someone needs it.
    throw std::invalid_argument(
        "solve_to_tolerance does not support spec-driven problems");
  }

  IterativeSolveResult result{Grid2D(problem.rows, problem.cols), 0, 0.0,
                              false, 0};
  result.grid.fill(problem.initial, problem.boundary);

  Problem round = problem;
  round.iterations = round_iterations;

  for (int r = 0; r < max_rounds; ++r) {
    // Warm start: this round's initial condition is the current field.
    auto snapshot = std::make_shared<Grid2D>(std::move(result.grid));
    round.initial = [snapshot](long i, long j) {
      return snapshot->at(static_cast<int>(i), static_cast<int>(j));
    };

    DistResult step = run_distributed(round, config);
    result.iterations += round_iterations;
    result.messages += step.stats.messages;
    result.last_delta = Grid2D::max_abs_diff(*snapshot, step.grid);
    result.grid = std::move(step.grid);
    if (result.last_delta < tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace repro::stencil
