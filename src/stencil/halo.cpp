#include "stencil/halo.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace repro::stencil {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("halo: ") + what);
}

}  // namespace

const char* side_name(Side s) {
  switch (s) {
    case Side::North: return "north";
    case Side::South: return "south";
    case Side::West: return "west";
    case Side::East: return "east";
  }
  return "?";
}

namespace {

/// Core of pack_band writing into caller storage; returns doubles written.
std::size_t pack_band_into(double* dst, const double* ext, const TileGeom& g,
                           Side side, int depth) {
  require(depth >= 1, "band depth must be >= 1");
  std::size_t written = 0;
  switch (side) {
    case Side::North:
    case Side::South: {
      require(depth <= g.h, "band depth exceeds tile height");
      const int first = side == Side::North ? 0 : g.h - depth;
      for (int r = 0; r < depth; ++r) {
        std::memcpy(dst + static_cast<std::size_t>(r) * g.w,
                    ext + g.idx(first + r, 0),
                    static_cast<std::size_t>(g.w) * sizeof(double));
      }
      written = static_cast<std::size_t>(depth) * g.w;
      break;
    }
    case Side::West:
    case Side::East: {
      require(depth <= g.w, "band depth exceeds tile width");
      const int first = side == Side::West ? 0 : g.w - depth;
      for (int i = 0; i < g.h; ++i) {
        for (int c = 0; c < depth; ++c) {
          dst[static_cast<std::size_t>(i) * depth + c] =
              ext[g.idx(i, first + c)];
        }
      }
      written = static_cast<std::size_t>(g.h) * depth;
      break;
    }
  }
  return written;
}

/// Core of pack_corner writing into caller storage; returns doubles written.
std::size_t pack_corner_into(double* dst, const double* ext, const TileGeom& g,
                             Corner corner, int s) {
  require(s >= 1 && s <= g.h && s <= g.w, "corner block exceeds tile");
  const int r0 = (corner == Corner::NW || corner == Corner::NE) ? 0 : g.h - s;
  const int c0 = (corner == Corner::NW || corner == Corner::SW) ? 0 : g.w - s;
  for (int r = 0; r < s; ++r) {
    std::memcpy(dst + static_cast<std::size_t>(r) * s, ext + g.idx(r0 + r, c0),
                static_cast<std::size_t>(s) * sizeof(double));
  }
  return static_cast<std::size_t>(s) * s;
}

}  // namespace

std::vector<double> pack_band(const double* ext, const TileGeom& g, Side side,
                              int depth) {
  require(depth >= 1, "band depth must be >= 1");
  std::size_t n = 0;
  switch (side) {
    case Side::North:
    case Side::South:
      require(depth <= g.h, "band depth exceeds tile height");
      n = static_cast<std::size_t>(depth) * g.w;
      break;
    case Side::West:
    case Side::East:
      require(depth <= g.w, "band depth exceeds tile width");
      n = static_cast<std::size_t>(g.h) * depth;
      break;
  }
  std::vector<double> band(n);
  pack_band_into(band.data(), ext, g, side, depth);
  return band;
}

void unpack_band(double* ext, const TileGeom& g, Side side,
                 std::span<const double> band, int depth) {
  switch (side) {
    case Side::North:
    case Side::South: {
      const int ghost = side == Side::North ? g.gn : g.gs;
      require(depth == ghost, "band depth must equal ghost depth");
      require(band.size() == static_cast<std::size_t>(depth) * g.w,
              "band size mismatch");
      // North ghost rows -depth..-1 map to band rows 0..depth-1 (producer's
      // bottom rows, global row order preserved). South ghost rows h..h+d-1
      // map to the producer's top rows in the same order.
      const int first = side == Side::North ? -depth : g.h;
      for (int r = 0; r < depth; ++r) {
        std::memcpy(ext + g.idx(first + r, 0),
                    band.data() + static_cast<std::size_t>(r) * g.w,
                    static_cast<std::size_t>(g.w) * sizeof(double));
      }
      break;
    }
    case Side::West:
    case Side::East: {
      const int ghost = side == Side::West ? g.gw : g.ge;
      require(depth == ghost, "band depth must equal ghost depth");
      require(band.size() == static_cast<std::size_t>(g.h) * depth,
              "band size mismatch");
      const int first = side == Side::West ? -depth : g.w;
      for (int i = 0; i < g.h; ++i) {
        for (int c = 0; c < depth; ++c) {
          ext[g.idx(i, first + c)] =
              band[static_cast<std::size_t>(i) * depth + c];
        }
      }
      break;
    }
  }
}

std::vector<double> pack_corner(const double* ext, const TileGeom& g,
                                Corner corner, int s) {
  require(s >= 1 && s <= g.h && s <= g.w, "corner block exceeds tile");
  std::vector<double> block(static_cast<std::size_t>(s) * s);
  pack_corner_into(block.data(), ext, g, corner, s);
  return block;
}

void unpack_corner(double* ext, const TileGeom& g, Corner corner,
                   std::span<const double> block, int s) {
  require(block.size() == static_cast<std::size_t>(s) * s,
          "corner block size mismatch");
  // Ghost extents at this corner.
  const int depth_r = (corner == Corner::NW || corner == Corner::NE) ? g.gn : g.gs;
  const int depth_c = (corner == Corner::NW || corner == Corner::SW) ? g.gw : g.ge;
  require(depth_r <= s && depth_c <= s, "ghost deeper than corner block");

  for (int a = 1; a <= depth_r; ++a) {
    for (int b = 1; b <= depth_c; ++b) {
      // Consumer ghost cell at distance (a,b) into the corner equals the
      // diagonal producer's core cell at distance (a,b) from its opposite
      // corner, i.e. block element (s-a, s-b) mirrored appropriately.
      int gi = 0;
      int gj = 0;
      int br = 0;
      int bc = 0;
      switch (corner) {
        case Corner::NW:
          gi = -a; gj = -b; br = s - a; bc = s - b; break;
        case Corner::NE:
          gi = -a; gj = g.w - 1 + b; br = s - a; bc = b - 1; break;
        case Corner::SW:
          gi = g.h - 1 + a; gj = -b; br = a - 1; bc = s - b; break;
        case Corner::SE:
          gi = g.h - 1 + a; gj = g.w - 1 + b; br = a - 1; bc = b - 1; break;
      }
      ext[g.idx(gi, gj)] = block[static_cast<std::size_t>(br) * s + bc];
    }
  }
}

void copy_local_line(double* ext, const TileGeom& g, Side side,
                     const double* nbr, const TileGeom& ng, int depth) {
  require(depth >= 1, "local line depth must be >= 1");
  switch (side) {
    case Side::West:
    case Side::East: {
      require(g.gn == ng.gn && g.gs == ng.gs && g.h == ng.h,
              "row extents misaligned for local line copy");
      require((side == Side::West ? g.gw : g.ge) == depth,
              "local line depth must equal ghost depth");
      require(depth <= ng.w, "local line deeper than neighbor tile");
      for (int d = 0; d < depth; ++d) {
        const int dst_col = side == Side::West ? -depth + d : g.w + d;
        const int src_col = side == Side::West ? ng.w - depth + d : d;
        for (int i = -g.gn; i < g.h + g.gs; ++i) {
          ext[g.idx(i, dst_col)] = nbr[ng.idx(i, src_col)];
        }
      }
      break;
    }
    case Side::North:
    case Side::South: {
      require(g.gw == ng.gw && g.ge == ng.ge && g.w == ng.w,
              "col extents misaligned for local line copy");
      require((side == Side::North ? g.gn : g.gs) == depth,
              "local line depth must equal ghost depth");
      require(depth <= ng.h, "local line deeper than neighbor tile");
      for (int d = 0; d < depth; ++d) {
        const int dst_row = side == Side::North ? -depth + d : g.h + d;
        const int src_row = side == Side::North ? ng.h - depth + d : d;
        std::memcpy(ext + g.idx(dst_row, -g.gw), nbr + ng.idx(src_row, -ng.gw),
                    static_cast<std::size_t>(g.ld()) * sizeof(double));
      }
      break;
    }
  }
}

void copy_local_corner(double* ext, const TileGeom& g, Corner corner,
                       const double* diag, const TileGeom& dg) {
  const int depth_r = (corner == Corner::NW || corner == Corner::NE) ? g.gn : g.gs;
  const int depth_c = (corner == Corner::NW || corner == Corner::SW) ? g.gw : g.ge;
  require(depth_r <= dg.h && depth_c <= dg.w,
          "local corner deeper than diagonal tile");
  for (int a = 1; a <= depth_r; ++a) {
    for (int b = 1; b <= depth_c; ++b) {
      int gi = 0, gj = 0, si = 0, sj = 0;
      switch (corner) {
        case Corner::NW:
          gi = -a; gj = -b; si = dg.h - a; sj = dg.w - b; break;
        case Corner::NE:
          gi = -a; gj = g.w - 1 + b; si = dg.h - a; sj = b - 1; break;
        case Corner::SW:
          gi = g.h - 1 + a; gj = -b; si = a - 1; sj = dg.w - b; break;
        case Corner::SE:
          gi = g.h - 1 + a; gj = g.w - 1 + b; si = a - 1; sj = b - 1; break;
      }
      ext[g.idx(gi, gj)] = diag[dg.idx(si, sj)];
    }
  }
}

std::vector<double> pack_band_planes(const double* ext, const TileGeom& g,
                                     Side side, int depth, int nplanes) {
  require(nplanes >= 1, "nplanes must be >= 1");
  std::vector<double> out;
  for (int p = 0; p < nplanes; ++p) {
    std::vector<double> band =
        pack_band(ext + static_cast<std::size_t>(p) * g.size(), g, side, depth);
    out.insert(out.end(), band.begin(), band.end());
  }
  return out;
}

void unpack_band_planes(double* ext, const TileGeom& g, Side side,
                        std::span<const double> band, int depth, int nplanes) {
  require(nplanes >= 1 && band.size() % static_cast<std::size_t>(nplanes) == 0,
          "band size not a multiple of nplanes");
  const std::size_t per = band.size() / static_cast<std::size_t>(nplanes);
  for (int p = 0; p < nplanes; ++p) {
    unpack_band(ext + static_cast<std::size_t>(p) * g.size(), g, side,
                band.subspan(static_cast<std::size_t>(p) * per, per), depth);
  }
}

std::vector<double> pack_corner_planes(const double* ext, const TileGeom& g,
                                       Corner corner, int s, int nplanes) {
  require(nplanes >= 1, "nplanes must be >= 1");
  std::vector<double> out;
  for (int p = 0; p < nplanes; ++p) {
    std::vector<double> block = pack_corner(
        ext + static_cast<std::size_t>(p) * g.size(), g, corner, s);
    out.insert(out.end(), block.begin(), block.end());
  }
  return out;
}

void unpack_corner_planes(double* ext, const TileGeom& g, Corner corner,
                          std::span<const double> block, int s, int nplanes) {
  require(nplanes >= 1 && block.size() % static_cast<std::size_t>(nplanes) == 0,
          "corner block size not a multiple of nplanes");
  const std::size_t per = block.size() / static_cast<std::size_t>(nplanes);
  for (int p = 0; p < nplanes; ++p) {
    unpack_corner(ext + static_cast<std::size_t>(p) * g.size(), g, corner,
                  block.subspan(static_cast<std::size_t>(p) * per, per), s);
  }
}

std::size_t pack_band_planes_into(double* dst, const double* ext,
                                  const TileGeom& g, Side side, int depth,
                                  int nplanes) {
  require(nplanes >= 1, "nplanes must be >= 1");
  std::size_t written = 0;
  for (int p = 0; p < nplanes; ++p) {
    written += pack_band_into(dst + written,
                              ext + static_cast<std::size_t>(p) * g.size(), g,
                              side, depth);
  }
  return written;
}

std::size_t pack_corner_planes_into(double* dst, const double* ext,
                                    const TileGeom& g, Corner corner, int s,
                                    int nplanes) {
  require(nplanes >= 1, "nplanes must be >= 1");
  std::size_t written = 0;
  for (int p = 0; p < nplanes; ++p) {
    written += pack_corner_into(dst + written,
                                ext + static_cast<std::size_t>(p) * g.size(),
                                g, corner, s);
  }
  return written;
}

void copy_local_line_planes(double* ext, const TileGeom& g, Side side,
                            const double* nbr, const TileGeom& ng, int depth,
                            int nplanes) {
  require(nplanes >= 1, "nplanes must be >= 1");
  for (int p = 0; p < nplanes; ++p) {
    copy_local_line(ext + static_cast<std::size_t>(p) * g.size(), g, side,
                    nbr + static_cast<std::size_t>(p) * ng.size(), ng, depth);
  }
}

void copy_local_corner_planes(double* ext, const TileGeom& g, Corner corner,
                              const double* diag, const TileGeom& dg,
                              int nplanes) {
  require(nplanes >= 1, "nplanes must be >= 1");
  for (int p = 0; p < nplanes; ++p) {
    copy_local_corner(ext + static_cast<std::size_t>(p) * g.size(), g, corner,
                      diag + static_cast<std::size_t>(p) * dg.size(), dg);
  }
}

}  // namespace repro::stencil
