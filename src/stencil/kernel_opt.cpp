#include "stencil/kernel_opt.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define REPRO_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace repro::stencil {

namespace {

// Portable row sweep: the same pointer form as jacobi5, kept in one place so
// the AVX2 tail and the no-AVX2 path share the exact expression.
void rows_portable(const double* in, double* out, const TileGeom& geom,
                   const Stencil5& weights, int r0, int r1, int c0, int c1) {
  const int ld = geom.ld();
  const double w0 = weights.center;
  const double wn = weights.north;
  const double ws = weights.south;
  const double ww = weights.west;
  const double we = weights.east;
  for (int i = r0; i < r1; ++i) {
    const double* mid = in + geom.idx(i, 0);
    const double* up = mid - ld;
    const double* down = mid + ld;
    double* dst = out + geom.idx(i, 0);
    for (int j = c0; j < c1; ++j) {
      dst[j] = w0 * mid[j] + wn * up[j] + ws * down[j] + ww * mid[j - 1] +
               we * mid[j + 1];
    }
  }
}

#ifdef REPRO_KERNEL_X86
// Explicit mul/add intrinsics only: target("avx2") does not enable FMA, so
// neither the intrinsics nor the scalar tail can be contracted, keeping the
// rounding identical to the baseline-ISA scalar kernel.
__attribute__((target("avx2"))) void rows_avx2(const double* in, double* out,
                                               const TileGeom& geom,
                                               const Stencil5& weights, int r0,
                                               int r1, int c0, int c1) {
  const int ld = geom.ld();
  const __m256d w0 = _mm256_set1_pd(weights.center);
  const __m256d wn = _mm256_set1_pd(weights.north);
  const __m256d ws = _mm256_set1_pd(weights.south);
  const __m256d ww = _mm256_set1_pd(weights.west);
  const __m256d we = _mm256_set1_pd(weights.east);
  for (int i = r0; i < r1; ++i) {
    const double* mid = in + geom.idx(i, 0);
    const double* up = mid - ld;
    const double* down = mid + ld;
    double* dst = out + geom.idx(i, 0);
    int j = c0;
    for (; j + 4 <= c1; j += 4) {
      __m256d acc = _mm256_mul_pd(w0, _mm256_loadu_pd(mid + j));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(wn, _mm256_loadu_pd(up + j)));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(ws, _mm256_loadu_pd(down + j)));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(ww, _mm256_loadu_pd(mid + j - 1)));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(we, _mm256_loadu_pd(mid + j + 1)));
      _mm256_storeu_pd(dst + j, acc);
    }
    for (; j < c1; ++j) {
      dst[j] = weights.center * mid[j] + weights.north * up[j] +
               weights.south * down[j] + weights.west * mid[j - 1] +
               weights.east * mid[j + 1];
    }
  }
}
#endif  // REPRO_KERNEL_X86

/// REPRO_KERNEL_AVX2 env override, read once: -1 unset, 0 off, 1 on.
int env_avx2_override() {
  static const int value = [] {
    const char* e = std::getenv("REPRO_KERNEL_AVX2");
    if (e == nullptr) return -1;
    const std::string s(e);
    if (s == "off" || s == "0" || s == "no" || s == "false") return 0;
    if (s == "on" || s == "1" || s == "yes" || s == "true") return 1;
    return -1;
  }();
  return value;
}

/// Vectorized sweep over one rectangle, AVX2-dispatched.
void rows_vector(const double* in, double* out, const TileGeom& geom,
                 const Stencil5& weights, int r0, int r1, int c0, int c1,
                 const KernelTuning& tuning) {
#ifdef REPRO_KERNEL_X86
  if (avx2_selected(tuning)) {
    rows_avx2(in, out, geom, weights, r0, r1, c0, c1);
    return;
  }
#endif
  (void)tuning;
  rows_portable(in, out, geom, weights, r0, r1, c0, c1);
}

/// Cache-blocked traversal over rows_vector. Pure reordering of independent
/// per-point updates, so bitwise equal to any other traversal.
void sweep_blocked(const double* in, double* out, const TileGeom& geom,
                   const Stencil5& weights, int r0, int r1, int c0, int c1,
                   const KernelTuning& tuning) {
  const int br = std::max(1, tuning.block_rows);
  const int bc = std::max(1, tuning.block_cols);
  for (int bi = r0; bi < r1; bi += br) {
    const int bi1 = std::min(bi + br, r1);
    for (int bj = c0; bj < c1; bj += bc) {
      const int bj1 = std::min(bj + bc, c1);
      rows_vector(in, out, geom, weights, bi, bi1, bj, bj1, tuning);
    }
  }
}

}  // namespace

const char* kernel_variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::Scalar: return "scalar";
    case KernelVariant::Vector: return "vector";
    case KernelVariant::Blocked: return "blocked";
    case KernelVariant::Temporal: return "temporal";
  }
  return "scalar";
}

KernelVariant parse_kernel_variant(const std::string& name) {
  for (KernelVariant v : kAllKernelVariants) {
    if (name == kernel_variant_name(v)) return v;
  }
  throw std::invalid_argument(
      "unknown kernel variant '" + name +
      "' (expected scalar, vector, blocked, or temporal)");
}

bool avx2_available() {
#if defined(REPRO_KERNEL_X86) && defined(__GNUC__)
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

bool avx2_selected(const KernelTuning& tuning) {
  if (tuning.force_avx2 == 0) return false;
  if (tuning.force_avx2 == 1) return avx2_available();
  const int env = env_avx2_override();
  if (env == 0) return false;
  return avx2_available();
}

void jacobi5_opt(const double* in, double* out, const TileGeom& geom,
                 const Stencil5& weights, int r0, int r1, int c0, int c1,
                 KernelVariant variant, const KernelTuning& tuning) {
  if (r1 <= r0 || c1 <= c0) return;
  switch (variant) {
    case KernelVariant::Scalar:
      jacobi5(in, out, geom, weights, r0, r1, c0, c1);
      return;
    case KernelVariant::Vector:
      rows_vector(in, out, geom, weights, r0, r1, c0, c1, tuning);
      return;
    case KernelVariant::Blocked:
    case KernelVariant::Temporal:
      sweep_blocked(in, out, geom, weights, r0, r1, c0, c1, tuning);
      return;
  }
}

void jacobi5_temporal(const double* in, double* out, const TileGeom& geom,
                      const Stencil5& weights, int r0, int r1, int c0, int c1,
                      int m, const std::array<bool, 4>& shrink,
                      const KernelTuning& tuning) {
  if (m < 1) throw std::invalid_argument("jacobi5_temporal: m must be >= 1");
  const auto region = [&](int t) {
    return std::array<int, 4>{r0 + (shrink[0] ? t : 0),
                              r1 - (shrink[1] ? t : 0),
                              c0 + (shrink[2] ? t : 0),
                              c1 - (shrink[3] ? t : 0)};
  };
  const auto last = region(m - 1);
  if (last[1] <= last[0] || last[3] <= last[2]) {
    throw std::invalid_argument(
        "jacobi5_temporal: shrinking empties the region before step m");
  }
  if (m == 1) {
    sweep_blocked(in, out, geom, weights, r0, r1, c0, c1, tuning);
    return;
  }

  // Ping-pong through full-geometry scratch copies. Step t reads only cells
  // inside step t-1's region plus never-written boundary lines, both of which
  // the full copy preserves; `out` receives only the final region.
  std::vector<double> a(in, in + geom.size());
  std::vector<double> b;
  if (m > 2) b.assign(in, in + geom.size());
  double* scratch[2] = {a.data(), m > 2 ? b.data() : a.data()};
  const double* src = in;
  for (int t = 0; t < m; ++t) {
    const auto r = region(t);
    double* target = t == m - 1 ? out : scratch[t & 1];
    sweep_blocked(src, target, geom, weights, r[0], r[1], r[2], r[3], tuning);
    src = target;
  }
}

}  // namespace repro::stencil
