// Problem definition shared by every implementation (serial, base, CA, SpMV).
#pragma once

#include <array>
#include <functional>

#include <optional>

#include "spec/stencil_spec.hpp"
#include "stencil/grid.hpp"
#include "stencil/kernel.hpp"
#include "stencil/shape.hpp"

namespace repro::stencil {

/// Per-point coefficients (center, north, south, west, east) at global
/// coordinates — the paper's "variable-coefficient stencil".
using CoeffFn = std::function<std::array<double, 5>(long, long)>;

/// 3-coordinate field sampler for spec-driven problems: value at global
/// (i, j, z). Rank <= 2 specs are always sampled with z == 0; rank-3 specs
/// sample the boundary with z == -1 or z == nz for the Dirichlet z planes
/// (the z analogue of the ring convention in CellFn).
using CellFn3 = std::function<double(long, long, long)>;

struct Problem {
  int rows = 0;           ///< interior rows
  int cols = 0;           ///< interior cols
  int iterations = 0;     ///< number of Jacobi sweeps
  Stencil5 weights;       ///< constant coefficients (used when !coefficient)
  CellFn initial;         ///< interior initial condition u0(i,j)
  CellFn boundary;        ///< Dirichlet ring values g(i,j)
  /// When set, the stencil is variable-coefficient: `weights` is ignored and
  /// every point uses coefficient(i, j).
  CoeffFn coefficient;
  /// When set, a general cross/box stencil shape is used instead of the
  /// 5-point `weights` (mutually exclusive with `coefficient`).
  std::optional<StencilShape> shape;
  /// When set, the solve runs the spec's compiled atomic-stage program
  /// (spec/stages.hpp): every spec — any rank, radius, or point subset —
  /// executes as chained radius-1 multi-component stages. Mutually exclusive
  /// with `shape` and `coefficient`; requires initial3/boundary3.
  std::optional<spec::StencilSpec> spec;
  int nz = 1;             ///< interior z planes (rank-3 specs only)
  CellFn3 initial3;       ///< spec path: interior initial condition u0(i,j,z)
  CellFn3 boundary3;      ///< spec path: Dirichlet values g(i,j,z)
};

/// Variable-coefficient variant of random_problem: hash-based field AND
/// hash-based per-point coefficients (kept contractive: |sum| < 1).
Problem random_variable_problem(int rows, int cols, int iterations,
                                unsigned long seed = 99);

/// Laplace's equation on the unit square: zero interior, hot west wall,
/// linear ramps elsewhere — the classic Jacobi textbook setup.
Problem laplace_problem(int n, int iterations);

/// Deterministic pseudo-random initial/boundary data with asymmetric weights;
/// designed so that index bugs, transpositions, and halo mistakes change the
/// answer. `seed` varies the field.
Problem random_problem(int rows, int cols, int iterations,
                       unsigned long seed = 42);

/// Spec-driven analogue of random_problem: hash-based 3-coordinate field so
/// every cell (and every z plane) differs from its neighbors. `nz` is only
/// meaningful for rank-3 specs (must be 1 otherwise).
Problem spec_problem(spec::StencilSpec stencil, int rows, int cols,
                     int iterations, int nz = 1, unsigned long seed = 42);

}  // namespace repro::stencil
