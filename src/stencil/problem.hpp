// Problem definition shared by every implementation (serial, base, CA, SpMV).
#pragma once

#include <array>
#include <functional>

#include <optional>

#include "stencil/grid.hpp"
#include "stencil/kernel.hpp"
#include "stencil/shape.hpp"

namespace repro::stencil {

/// Per-point coefficients (center, north, south, west, east) at global
/// coordinates — the paper's "variable-coefficient stencil".
using CoeffFn = std::function<std::array<double, 5>(long, long)>;

struct Problem {
  int rows = 0;           ///< interior rows
  int cols = 0;           ///< interior cols
  int iterations = 0;     ///< number of Jacobi sweeps
  Stencil5 weights;       ///< constant coefficients (used when !coefficient)
  CellFn initial;         ///< interior initial condition u0(i,j)
  CellFn boundary;        ///< Dirichlet ring values g(i,j)
  /// When set, the stencil is variable-coefficient: `weights` is ignored and
  /// every point uses coefficient(i, j).
  CoeffFn coefficient;
  /// When set, a general cross/box stencil shape is used instead of the
  /// 5-point `weights` (mutually exclusive with `coefficient`).
  std::optional<StencilShape> shape;
};

/// Variable-coefficient variant of random_problem: hash-based field AND
/// hash-based per-point coefficients (kept contractive: |sum| < 1).
Problem random_variable_problem(int rows, int cols, int iterations,
                                unsigned long seed = 99);

/// Laplace's equation on the unit square: zero interior, hot west wall,
/// linear ramps elsewhere — the classic Jacobi textbook setup.
Problem laplace_problem(int n, int iterations);

/// Deterministic pseudo-random initial/boundary data with asymmetric weights;
/// designed so that index bugs, transpositions, and halo mistakes change the
/// answer. `seed` varies the field.
Problem random_problem(int rows, int cols, int iterations,
                       unsigned long seed = 42);

}  // namespace repro::stencil
