#include "stencil/serial.hpp"

#include <algorithm>

#include "stencil/spec_kernel.hpp"
#include <array>
#include <stdexcept>
#include <utility>
#include <vector>

namespace repro::stencil {

void serial_sweep(const Grid2D& in, Grid2D& out, const Stencil5& weights) {
  const int rows = in.rows();
  const int cols = in.cols();
  for (int i = -1; i <= rows; ++i) {
    out.at(i, -1) = in.at(i, -1);
    out.at(i, cols) = in.at(i, cols);
  }
  for (int j = -1; j <= cols; ++j) {
    out.at(-1, j) = in.at(-1, j);
    out.at(rows, j) = in.at(rows, j);
  }
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      out.at(i, j) = weights.center * in.at(i, j) +
                     weights.north * in.at(i - 1, j) +
                     weights.south * in.at(i + 1, j) +
                     weights.west * in.at(i, j - 1) +
                     weights.east * in.at(i, j + 1);
    }
  }
}

void serial_sweep_var(const Grid2D& in, Grid2D& out, const CoeffFn& coeff) {
  const int rows = in.rows();
  const int cols = in.cols();
  for (int i = -1; i <= rows; ++i) {
    out.at(i, -1) = in.at(i, -1);
    out.at(i, cols) = in.at(i, cols);
  }
  for (int j = -1; j <= cols; ++j) {
    out.at(-1, j) = in.at(-1, j);
    out.at(rows, j) = in.at(rows, j);
  }
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const auto w = coeff(i, j);
      out.at(i, j) = w[kCoeffCenter] * in.at(i, j) +
                     w[kCoeffNorth] * in.at(i - 1, j) +
                     w[kCoeffSouth] * in.at(i + 1, j) +
                     w[kCoeffWest] * in.at(i, j - 1) +
                     w[kCoeffEast] * in.at(i, j + 1);
    }
  }
}

Grid2D solve_serial_shape(const Problem& problem) {
  const StencilShape& shape = *problem.shape;
  shape.validate();
  const int r = shape.radius;
  const TileGeom g{problem.rows, problem.cols, r, r, r, r};

  std::vector<double> current(g.size());
  for (int i = -r; i < problem.rows + r; ++i) {
    for (int j = -r; j < problem.cols + r; ++j) {
      const bool inside = i >= 0 && i < problem.rows && j >= 0 &&
                          j < problem.cols;
      current[g.idx(i, j)] =
          inside ? problem.initial(i, j) : problem.boundary(i, j);
    }
  }
  std::vector<double> next = current;
  for (int iter = 0; iter < problem.iterations; ++iter) {
    apply_shape(current.data(), next.data(), g, shape, 0, problem.rows, 0,
                problem.cols);
    std::swap(current, next);
  }

  Grid2D grid(problem.rows, problem.cols);
  grid.fill([&](long i, long j) { return current[g.idx(static_cast<int>(i),
                                                       static_cast<int>(j))]; },
            problem.boundary);
  return grid;
}

Grid2D solve_serial_opt(const Problem& problem, KernelVariant variant,
                        const KernelTuning& tuning, int fuse) {
  if (problem.shape || problem.coefficient) {
    throw std::invalid_argument(
        "solve_serial_opt supports only the plain constant-coefficient "
        "5-point stencil");
  }
  if (fuse < 1) {
    throw std::invalid_argument("solve_serial_opt: fuse must be >= 1");
  }

  // One ring-padded "tile" covering the whole grid, like solve_serial_shape.
  const TileGeom g{problem.rows, problem.cols, 1, 1, 1, 1};
  std::vector<double> current(g.size());
  for (int i = -1; i < problem.rows + 1; ++i) {
    for (int j = -1; j < problem.cols + 1; ++j) {
      const bool inside = i >= 0 && i < problem.rows && j >= 0 &&
                          j < problem.cols;
      current[g.idx(i, j)] =
          inside ? problem.initial(i, j) : problem.boundary(i, j);
    }
  }
  std::vector<double> next = current;

  if (variant == KernelVariant::Temporal) {
    // The fixed Dirichlet ring bounds all four sides, so fused steps need no
    // shrinking: each inner step re-reads the ring and the previous step's
    // full interior.
    const std::array<bool, 4> no_shrink = {false, false, false, false};
    int iter = 0;
    while (iter < problem.iterations) {
      const int m = std::min(fuse, problem.iterations - iter);
      jacobi5_temporal(current.data(), next.data(), g, problem.weights, 0,
                       g.h, 0, g.w, m, no_shrink, tuning);
      std::swap(current, next);
      iter += m;
    }
  } else {
    for (int iter = 0; iter < problem.iterations; ++iter) {
      jacobi5_opt(current.data(), next.data(), g, problem.weights, 0, g.h, 0,
                  g.w, variant, tuning);
      std::swap(current, next);
    }
  }

  Grid2D grid(problem.rows, problem.cols);
  grid.fill([&](long i, long j) { return current[g.idx(static_cast<int>(i),
                                                       static_cast<int>(j))]; },
            problem.boundary);
  return grid;
}

Grid2D solve_serial(const Problem& problem) {
  // Spec-driven problems run the compiled atomic-stage program (the bit-exact
  // oracle for the spec-driven distributed path); z plane 0 is the field.
  if (problem.spec) {
    std::vector<Grid2D> planes = solve_serial_spec(problem);
    return std::move(planes.front());
  }
  if (problem.shape) return solve_serial_shape(problem);

  Grid2D current(problem.rows, problem.cols);
  Grid2D next(problem.rows, problem.cols);
  current.fill(problem.initial, problem.boundary);
  next.fill(problem.initial, problem.boundary);

  for (int iter = 0; iter < problem.iterations; ++iter) {
    if (problem.coefficient) {
      serial_sweep_var(current, next, problem.coefficient);
    } else {
      serial_sweep(current, next, problem.weights);
    }
    std::swap(current, next);
  }
  return current;
}

}  // namespace repro::stencil
