#include "stencil/serial.hpp"

#include <utility>
#include <vector>

namespace repro::stencil {

void serial_sweep(const Grid2D& in, Grid2D& out, const Stencil5& weights) {
  const int rows = in.rows();
  const int cols = in.cols();
  for (int i = -1; i <= rows; ++i) {
    out.at(i, -1) = in.at(i, -1);
    out.at(i, cols) = in.at(i, cols);
  }
  for (int j = -1; j <= cols; ++j) {
    out.at(-1, j) = in.at(-1, j);
    out.at(rows, j) = in.at(rows, j);
  }
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      out.at(i, j) = weights.center * in.at(i, j) +
                     weights.north * in.at(i - 1, j) +
                     weights.south * in.at(i + 1, j) +
                     weights.west * in.at(i, j - 1) +
                     weights.east * in.at(i, j + 1);
    }
  }
}

void serial_sweep_var(const Grid2D& in, Grid2D& out, const CoeffFn& coeff) {
  const int rows = in.rows();
  const int cols = in.cols();
  for (int i = -1; i <= rows; ++i) {
    out.at(i, -1) = in.at(i, -1);
    out.at(i, cols) = in.at(i, cols);
  }
  for (int j = -1; j <= cols; ++j) {
    out.at(-1, j) = in.at(-1, j);
    out.at(rows, j) = in.at(rows, j);
  }
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const auto w = coeff(i, j);
      out.at(i, j) = w[kCoeffCenter] * in.at(i, j) +
                     w[kCoeffNorth] * in.at(i - 1, j) +
                     w[kCoeffSouth] * in.at(i + 1, j) +
                     w[kCoeffWest] * in.at(i, j - 1) +
                     w[kCoeffEast] * in.at(i, j + 1);
    }
  }
}

Grid2D solve_serial_shape(const Problem& problem) {
  const StencilShape& shape = *problem.shape;
  shape.validate();
  const int r = shape.radius;
  const TileGeom g{problem.rows, problem.cols, r, r, r, r};

  std::vector<double> current(g.size());
  for (int i = -r; i < problem.rows + r; ++i) {
    for (int j = -r; j < problem.cols + r; ++j) {
      const bool inside = i >= 0 && i < problem.rows && j >= 0 &&
                          j < problem.cols;
      current[g.idx(i, j)] =
          inside ? problem.initial(i, j) : problem.boundary(i, j);
    }
  }
  std::vector<double> next = current;
  for (int iter = 0; iter < problem.iterations; ++iter) {
    apply_shape(current.data(), next.data(), g, shape, 0, problem.rows, 0,
                problem.cols);
    std::swap(current, next);
  }

  Grid2D grid(problem.rows, problem.cols);
  grid.fill([&](long i, long j) { return current[g.idx(static_cast<int>(i),
                                                       static_cast<int>(j))]; },
            problem.boundary);
  return grid;
}

Grid2D solve_serial(const Problem& problem) {
  if (problem.shape) return solve_serial_shape(problem);

  Grid2D current(problem.rows, problem.cols);
  Grid2D next(problem.rows, problem.cols);
  current.fill(problem.initial, problem.boundary);
  next.fill(problem.initial, problem.boundary);

  for (int iter = 0; iter < problem.iterations; ++iter) {
    if (problem.coefficient) {
      serial_sweep_var(current, next, problem.coefficient);
    } else {
      serial_sweep(current, next, problem.weights);
    }
    std::swap(current, next);
  }
  return current;
}

}  // namespace repro::stencil
