#include "stencil/spec_kernel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace repro::stencil {

spec::CompiledProgram compile_problem_spec(const Problem& problem) {
  if (!problem.spec) {
    throw std::invalid_argument("compile_problem_spec: problem has no spec");
  }
  if (problem.shape || problem.coefficient) {
    throw std::invalid_argument(
        "compile_problem_spec: spec is mutually exclusive with shape and "
        "coefficient");
  }
  if (!problem.initial3 || !problem.boundary3) {
    throw std::invalid_argument(
        "compile_problem_spec: spec problems need initial3/boundary3");
  }
  if (problem.nz < 1) {
    throw std::invalid_argument("compile_problem_spec: nz < 1");
  }
  return spec::compile_spec(*problem.spec, problem.nz);
}

double spec_sample(const spec::CompiledProgram& prog, const Problem& problem,
                   int plane, long gi, long gj) {
  const long z = static_cast<long>(plane - prog.zlo);
  const bool inside = gi >= 0 && gi < problem.rows && gj >= 0 &&
                      gj < problem.cols && z >= 0 && z < prog.nz;
  return inside ? problem.initial3(gi, gj, z) : problem.boundary3(gi, gj, z);
}

double spec_init_value(const spec::CompiledProgram& prog,
                       const Problem& problem, int comp, long gi, long gj) {
  const bool interior2d =
      gi >= 0 && gi < problem.rows && gj >= 0 && gj < problem.cols;
  if (interior2d) {
    // Field planes sample the field (z-ghost planes resolve to boundary3 via
    // spec_sample); intermediates are dead on the interior — stage 1 rewrites
    // them before any read — so 0 keeps the buffers deterministic.
    return comp < prog.nfield ? spec_sample(prog, problem, comp, gi, gj) : 0.0;
  }
  // Exterior: the component's static pad rule. Term order pins the rounding
  // sequence; serial and distributed inits both run this exact loop.
  double acc = 0.0;
  for (const spec::ExteriorTerm& t : prog.pad[comp]) {
    acc += t.w * spec_sample(prog, problem, t.z, gi + t.di, gj + t.dj);
  }
  return acc;
}

namespace {

// One output of one stage over a row range, apply_shape's idiom: linear tap
// deltas precomputed per call, per-point accumulation "w0*x0 then += wk*xk"
// in listed order with every multiply and add individually rounded.
void apply_output(const double* in, double* out, const TileGeom& geom,
                  const spec::StageOutput& output, int r0, int r1, int c0,
                  int c1) {
  const int ld = geom.ld();
  const std::size_t plane = geom.size();
  const std::size_t n = output.taps.size();
  std::vector<std::ptrdiff_t> deltas(n);
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const spec::StageTap& t = output.taps[k];
    deltas[k] = static_cast<std::ptrdiff_t>(t.in_comp) *
                    static_cast<std::ptrdiff_t>(plane) +
                static_cast<std::ptrdiff_t>(t.di) * ld + t.dj;
    w[k] = t.w;
  }
  double* out_plane = out + static_cast<std::size_t>(output.comp) * plane;

  for (int i = r0; i < r1; ++i) {
    const std::size_t row = geom.idx(i, 0);
    double* dst = out_plane + row;
    const double* src = in + row;
    for (int j = c0; j < c1; ++j) {
      double sum = w[0] * src[j + deltas[0]];
      for (std::size_t k = 1; k < n; ++k) {
        sum += w[k] * src[j + deltas[k]];
      }
      dst[j] = sum;
    }
  }
}

}  // namespace

void apply_program_stage(const double* in, double* out, const TileGeom& geom,
                         const spec::CompiledProgram& prog, int stage_idx,
                         int r0, int r1, int c0, int c1, KernelVariant kernel,
                         const KernelTuning& tuning) {
  if (stage_idx < 0 || stage_idx >= prog.nstages) {
    throw std::invalid_argument("apply_program_stage: stage out of range");
  }
  if (prog.star5) {
    // Recognized classic 5-point program: single stage, single component, tap
    // order (c,n,s,w,e) — dispatch the classic kernels (bit-identical to the
    // generic loop by the repo-wide per-point rounding rule).
    const auto& s5 = *prog.star5;
    const Stencil5 weights{s5[0], s5[1], s5[2], s5[3], s5[4]};
    if (kernel == KernelVariant::Scalar) {
      jacobi5(in, out, geom, weights, r0, r1, c0, c1);
    } else {
      jacobi5_opt(in, out, geom, weights, r0, r1, c0, c1, kernel, tuning);
    }
    return;
  }

  const spec::Stage& stage = prog.stages[static_cast<std::size_t>(stage_idx)];
  if (kernel == KernelVariant::Scalar || r1 - r0 <= tuning.block_rows) {
    for (const spec::StageOutput& output : stage.outputs) {
      apply_output(in, out, geom, output, r0, r1, c0, c1);
    }
    return;
  }
  // Blocked traversal (Vector/Temporal degenerate to it for generic
  // programs): row-band blocking keeps all ncomp input planes' working rows
  // resident; traversal order cannot change bits (Jacobi stages have no
  // cross-point ordering).
  const int br = std::max(1, tuning.block_rows);
  for (int i0 = r0; i0 < r1; i0 += br) {
    const int i1 = std::min(r1, i0 + br);
    for (const spec::StageOutput& output : stage.outputs) {
      apply_output(in, out, geom, output, i0, i1, c0, c1);
    }
  }
}

std::vector<Grid2D> solve_serial_spec(const Problem& problem) {
  const spec::CompiledProgram prog = compile_problem_spec(problem);
  const int rows = problem.rows;
  const int cols = problem.cols;
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("solve_serial_spec: empty interior");
  }

  // One ring-padded "tile" covering the whole grid (each stage reads one cell
  // deep, so a depth-1 ring suffices), ncomp planes deep.
  const TileGeom g{rows, cols, 1, 1, 1, 1};
  const std::size_t plane = g.size();
  std::vector<double> current(static_cast<std::size_t>(prog.ncomp) * plane);
  for (int c = 0; c < prog.ncomp; ++c) {
    double* dst = current.data() + static_cast<std::size_t>(c) * plane;
    for (int i = -1; i <= rows; ++i) {
      for (int j = -1; j <= cols; ++j) {
        dst[g.idx(i, j)] = spec_init_value(prog, problem, c, i, j);
      }
    }
  }
  std::vector<double> next = current;

  // iterations * nstages atomic stage applications, cycling through the
  // program — the SAME schedule and kernel the distributed driver runs.
  // The full-buffer copy carries non-output components and the static ring.
  const long total = static_cast<long>(problem.iterations) * prog.nstages;
  for (long k = 0; k < total; ++k) {
    std::copy(current.begin(), current.end(), next.begin());
    apply_program_stage(current.data(), next.data(), g, prog,
                        static_cast<int>(k % prog.nstages), 0, rows, 0, cols);
    std::swap(current, next);
  }

  std::vector<Grid2D> result;
  result.reserve(static_cast<std::size_t>(prog.nz));
  for (int z = 0; z < prog.nz; ++z) {
    const double* src =
        current.data() + static_cast<std::size_t>(prog.zlo + z) * plane;
    Grid2D grid(rows, cols);
    grid.fill(
        [&](long i, long j) {
          return src[g.idx(static_cast<int>(i), static_cast<int>(j))];
        },
        [&](long i, long j) { return problem.boundary3(i, j, z); });
    result.push_back(std::move(grid));
  }
  return result;
}

}  // namespace repro::stencil
