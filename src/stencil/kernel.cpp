#include "stencil/kernel.hpp"

namespace repro::stencil {

void jacobi5(const double* in, double* out, const TileGeom& geom,
             const Stencil5& weights, int r0, int r1, int c0, int c1) {
  const int ld = geom.ld();
  const double w0 = weights.center;
  const double wn = weights.north;
  const double ws = weights.south;
  const double ww = weights.west;
  const double we = weights.east;

  for (int i = r0; i < r1; ++i) {
    const double* mid = in + geom.idx(i, 0);
    const double* up = mid - ld;
    const double* down = mid + ld;
    double* dst = out + geom.idx(i, 0);
    // The inner loop is written over raw pointers so the compiler can
    // vectorize; all five streams are unit-stride.
    for (int j = c0; j < c1; ++j) {
      dst[j] = w0 * mid[j] + wn * up[j] + ws * down[j] + ww * mid[j - 1] +
               we * mid[j + 1];
    }
  }
}

void jacobi5_var(const double* in, double* out, const TileGeom& geom,
                 const double* coeff, int r0, int r1, int c0, int c1) {
  const int ld = geom.ld();
  const std::size_t plane = geom.size();
  const double* w0 = coeff + kCoeffCenter * plane;
  const double* wn = coeff + kCoeffNorth * plane;
  const double* ws = coeff + kCoeffSouth * plane;
  const double* ww = coeff + kCoeffWest * plane;
  const double* we = coeff + kCoeffEast * plane;

  for (int i = r0; i < r1; ++i) {
    const std::size_t row = geom.idx(i, 0);
    const double* mid = in + row;
    const double* up = mid - ld;
    const double* down = mid + ld;
    double* dst = out + row;
    for (int j = c0; j < c1; ++j) {
      dst[j] = w0[row + j] * mid[j] + wn[row + j] * up[j] +
               ws[row + j] * down[j] + ww[row + j] * mid[j - 1] +
               we[row + j] * mid[j + 1];
    }
  }
}

}  // namespace repro::stencil
