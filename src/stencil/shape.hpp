// General stencil shapes: radius-r cross and box neighborhoods.
//
// The paper evaluates the 5-point (radius-1 cross) stencil but frames the
// contribution as infrastructure "for a broad range of numerical algorithms";
// the PA1 scheme itself is defined for arbitrary-radius stencils (Demmel et
// al. formulate it for general sparse patterns). This module generalizes the
// distributed solvers:
//   * Cross(r): reads +/-1..r along both axes (4r+1 points) — e.g. the
//     radius-2 cross of 4th-order finite differences;
//   * Box(r): the full (2r+1)^2 neighborhood — e.g. the 9-point stencil at
//     r = 1 — which additionally requires diagonal-neighbor data every step.
//
// The CA geometry scales accordingly: remote-side ghosts are r*s deep, the
// redundant compute region shrinks by r per inner step, local halo lines are
// r deep, and corner blocks are (r*s) x (r*s). Cross(1) with the classic
// weights reproduces the 5-point path bit for bit.
#pragma once

#include <utility>
#include <vector>

#include "stencil/kernel.hpp"

namespace repro::stencil {

struct StencilShape {
  int radius = 1;
  bool box = false;            ///< cross when false
  std::vector<double> weights; ///< one per offsets() entry, same order

  /// Deterministic offset order (defines the floating-point summation order
  /// everywhere): center; then for k = 1..r: (-k,0), (k,0), (0,-k), (0,k);
  /// then, for box shapes, the off-axis cells in row-major order.
  std::vector<std::pair<int, int>> offsets() const;

  std::size_t num_points() const;
  /// FLOPs per updated point: one multiply per point + (points-1) adds.
  double flops_per_point() const {
    return 2.0 * static_cast<double>(num_points()) - 1.0;
  }

  /// Throws unless radius >= 1 and weights.size() == num_points().
  void validate() const;

  /// The paper's 5-point stencil as a shape (cross radius 1).
  static StencilShape five_point(const Stencil5& w);
  /// Radius-r cross with deterministic pseudo-random contractive weights.
  static StencilShape random_cross(int radius, unsigned long seed = 17);
  /// Radius-r box with deterministic pseudo-random contractive weights
  /// (radius 1 = the 9-point stencil).
  static StencilShape random_box(int radius, unsigned long seed = 23);
};

/// Apply one step of `shape` over the rectangle [r0,r1) x [c0,c1) in core
/// coordinates. All read cells (offset reach r) must lie within the padded
/// extents. Summation follows offsets() order exactly.
void apply_shape(const double* in, double* out, const TileGeom& geom,
                 const StencilShape& shape, int r0, int r1, int c0, int c1);

}  // namespace repro::stencil
