#include "stencil/dist_stencil.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "net/persistent_channel.hpp"
#include "runtime/graph_transform.hpp"
#include "stencil/halo.hpp"
#include "stencil/spec_kernel.hpp"

namespace repro::stencil {

namespace {

// Task types and output slots of the stencil graph. A solve's key space
// shifts both types by key_space * 2, so batched solves sharing one graph
// stay collision-free.
constexpr std::uint32_t kTypeInit = 0;  // INIT(0, ti, tj)
constexpr std::uint32_t kTypeStep = 1;  // STEP(k, ti, tj), k in 1..iterations

constexpr std::uint16_t kSlotState = 0;
constexpr std::uint16_t kSlotBand(Side s) {
  return static_cast<std::uint16_t>(1 + static_cast<int>(s));
}
constexpr std::uint16_t kSlotCorner(Corner c) {
  return static_cast<std::uint16_t>(5 + static_cast<int>(c));
}
/// Variable-coefficient planes, published once per tile by INIT.
constexpr std::uint16_t kSlotCoeff = 9;

/// Immutable per-run context shared by all task bodies.
///
/// Spec-driven problems run in STAGE UNITS: the compiled program's nstages
/// radius-1 atomic stages replace each original iteration, so the constructor
/// multiplies both `steps` and `problem.iterations` by nstages and fixes
/// radius = 1. Every downstream mechanism — superstep gating, ghost depth
/// radius * steps, the per-step shrink, pack plans, ragged final supersteps —
/// then works unchanged; only the task bodies know that state buffers carry
/// ncomp planes and that remote exchanges ship just the nfield field planes
/// (stage 1 reads only field planes, and intermediates inside the deep ghost
/// bands are recomputed locally stage by stage — so shipping them would be
/// pure waste).
struct Shared {
  Shared(Problem p, TileMap m, int s, double r, int f)
      : problem(std::move(p)), map(m), steps(s), ratio(r), fuse(f) {
    if (problem.shape) {
      problem.shape->validate();
      radius = problem.shape->radius;
      box = problem.shape->box;
    }
    if (problem.spec) {
      program = std::make_shared<const spec::CompiledProgram>(
          compile_problem_spec(problem));
      nstages = program->nstages;
      nfield = program->nfield;
      radius = 1;  // every atomic stage reads one cell deep
      box = program->diagonal_taps;
      steps = s * nstages;
      problem.iterations *= nstages;
    }
    // Fused wavefronts widen the exchange window: `steps` becomes the full
    // window (fuse supersteps' worth of stage units) so every downstream
    // mechanism — ghost depth, superstep gating, shrink, pack plans — sees
    // one exchange per window. hook_period keeps the ORIGINAL superstep
    // cadence, so checkpoints/snapshots stay every config.steps iterations
    // regardless of fusing (fuse-ready tile cores are consistent at every
    // stage boundary; the Temporal path only surfaces window boundaries).
    hook_period = steps;
    steps *= fuse;
  }

  Problem problem;
  TileMap map;
  int steps;
  double ratio;
  int fuse = 1;         ///< supersteps fused per wavefront window
  int hook_period = 1;  ///< superstep-hook cadence in stage units
  int radius = 1;    ///< stencil reach (1 for the paper's 5-point case)
  bool box = false;  ///< box-shaped stencil (reads diagonals every step)
  /// Spec path: compiled atomic-stage program (null = classic 5-point/shape).
  std::shared_ptr<const spec::CompiledProgram> program;
  int nstages = 1;  ///< stages per original iteration (1 = classic paths)
  int nfield = 1;   ///< planes remote halo exchange carries
  SuperstepHook hook;  ///< superstep-boundary snapshot callback (may be empty)
  KernelVariant kernel = KernelVariant::Scalar;
  KernelTuning tuning{};
  /// Temporal variant: one fused task per tile per superstep.
  bool fused = false;
  /// Per-step graph emitted in fuse-ready shape (fuse > 1, non-Temporal):
  /// deep bands on EVERY neighbor side, cross-tile edges only at window
  /// boundaries — the precondition for rt::fuse_supersteps.
  bool fuse_ready = false;
  /// All-neighbor-deep halo layout (Temporal tasks or fuse-ready graphs).
  bool deep_all() const { return fused || fuse_ready; }
  std::atomic<long long> computed_points{0};
};

/// Static per-tile facts derived from the TileMap.
struct TileInfo {
  int ti = 0, tj = 0;
  int rank = 0;
  TileGeom geom;
  bool side_exists[4] = {};
  bool side_remote[4] = {};
  bool side_local[4] = {};
  /// Deep (radius*steps) ghost band on this side, refreshed by packed bands
  /// at superstep starts. Classic: the remote sides. All-deep (Temporal
  /// tasks or fuse-ready graphs): every side with a neighbor — there is no
  /// per-inner-step local exchange inside a fused window, so local
  /// neighbors need deep bands too.
  bool side_deep[4] = {};
  /// This tile consumes a corner block from the diagonal neighbor at Corner c.
  bool corner_in[4] = {};
  /// Box shapes only: this tile reads the same-node diagonal's state at c.
  bool corner_local[4] = {};
  bool boundary = false;  ///< any remote side (paper's "boundary tile")
};

TileInfo make_tile_info(const TileMap& map, int steps, int radius, bool box,
                        bool deep_all, int ti, int tj) {
  TileInfo info;
  info.ti = ti;
  info.tj = tj;
  info.rank = map.rank_of(ti, tj);

  for (Side s : kAllSides) {
    const auto i = static_cast<int>(s);
    info.side_exists[i] = map.neighbor_exists(ti, tj, d_ti(s), d_tj(s));
    info.side_remote[i] = map.neighbor_remote(ti, tj, d_ti(s), d_tj(s));
    // Fused windows exchange packed bands with every neighbor; per-inner-step
    // local line copies only happen in the classic graph.
    info.side_deep[i] = deep_all ? info.side_exists[i] : info.side_remote[i];
    info.side_local[i] =
        !deep_all && info.side_exists[i] && !info.side_remote[i];
    if (info.side_remote[i]) info.boundary = true;
  }

  auto ghost = [&](Side s) {
    return info.side_deep[static_cast<int>(s)] ? radius * steps : radius;
  };
  info.geom = TileGeom{map.tile_h(ti), map.tile_w(tj),
                       ghost(Side::North), ghost(Side::South),
                       ghost(Side::West), ghost(Side::East)};

  for (Corner c : kAllCorners) {
    const bool diag_exists = map.neighbor_exists(ti, tj, d_ti(c), d_tj(c));
    const bool diag_remote = map.neighbor_remote(ti, tj, d_ti(c), d_tj(c));
    if (deep_all) {
      // Fused windows redundantly compute into every neighbor-facing band,
      // so every existing diagonal must supply its corner block (steps > 1;
      // a 1-step fused task only reads the one-deep cross halo — unless the
      // stencil is box-shaped and reads diagonals every step).
      info.corner_in[static_cast<int>(c)] = diag_exists && (steps > 1 || box);
      info.corner_local[static_cast<int>(c)] = false;
      continue;
    }
    // The corner is read only when the tile redundantly computes into a
    // neighboring ghost band (steps > 1) adjacent to this corner.
    const Side row_side = d_ti(c) < 0 ? Side::North : Side::South;
    const Side col_side = d_tj(c) < 0 ? Side::West : Side::East;
    const bool adjacent_remote = info.side_remote[static_cast<int>(row_side)] ||
                                 info.side_remote[static_cast<int>(col_side)];
    // Cross shapes read into the ghost corners only while redundantly
    // computing (steps > 1); box shapes read diagonals on every step.
    info.corner_in[static_cast<int>(c)] =
        diag_exists && diag_remote &&
        (box || (steps > 1 && adjacent_remote));
    info.corner_local[static_cast<int>(c)] = box && diag_exists && !diag_remote;
  }
  return info;
}

/// Hand the tile's h x w core (row-major) to the superstep hook. Spec runs
/// pass the nfield field planes (plane-major) — everything a restart needs,
/// since intermediates are dead at superstep boundaries.
void call_hook(const Shared& shared, const TileInfo& info, int k,
               const double* ext) {
  const TileGeom& g = info.geom;
  const int planes = shared.program ? shared.nfield : 1;
  std::vector<double> core(static_cast<std::size_t>(planes) * g.h * g.w);
  for (int p = 0; p < planes; ++p) {
    const double* src = ext + static_cast<std::size_t>(p) * g.size();
    double* dst = core.data() + static_cast<std::size_t>(p) * g.h * g.w;
    for (int i = 0; i < g.h; ++i) {
      for (int j = 0; j < g.w; ++j) {
        dst[static_cast<std::size_t>(i) * g.w + j] = src[g.idx(i, j)];
      }
    }
  }
  shared.hook(k, info.ti, info.tj, core);
}

/// What a task publishes besides its state, decided at graph-build time so
/// that producers and consumers agree by construction.
struct PackPlan {
  bool bands[4] = {};
  bool corners[4] = {};
};

/// Does this plan ship bands/corners to a remote node?
bool publishes_remote(const PackPlan& plan) {
  for (const bool band : plan.bands) {
    if (band) return true;
  }
  for (const bool corner : plan.corners) {
    if (corner) return true;
  }
  return false;
}

// Task priorities, highest first: tasks whose outputs cross the wire leave
// earliest (the paper's overlap argument — remote sends should depart while
// interior work still fills the workers), then boundary tiles, then interior.
constexpr int kPriorityHaloPublish = 2;
constexpr int kPriorityBoundary = 1;
constexpr int kPriorityInterior = 0;

int task_priority(bool boundary, const PackPlan& plan) {
  if (publishes_remote(plan)) return kPriorityHaloPublish;
  return boundary ? kPriorityBoundary : kPriorityInterior;
}

class Builder {
 public:
  Builder(const Problem& problem, const DistConfig& config)
      : shared_(std::make_shared<Shared>(
            problem,
            TileMap(problem.rows, problem.cols, config.decomp.mb,
                    config.decomp.nb, config.decomp.node_rows,
                    config.decomp.node_cols),
            config.steps, config.kernel_ratio, config.fuse_depth)),
        type_base_(config.key_space * 2),
        key_space_(config.key_space),
        priority_bias_(config.priority_bias),
        lane_(config.lane),
        persistent_(config.persistent) {
    if (config.key_space > (std::numeric_limits<std::uint32_t>::max() - 1) / 2) {
      throw std::invalid_argument("key_space out of range");
    }
    if (persistent_ && config.key_space >= (1u << 20)) {
      throw std::invalid_argument(
          "persistent mode packs key_space into 20 route-id bits");
    }
    shared_->hook = config.superstep_hook;
    shared_->kernel = config.kernel;
    shared_->tuning = config.tuning;
    shared_->fused = config.kernel == KernelVariant::Temporal;
    shared_->fuse_ready = config.fuse_depth > 1 && !shared_->fused;
    if (config.steps < 1) {
      throw std::invalid_argument("steps must be >= 1");
    }
    if (config.fuse_depth < 1) {
      throw std::invalid_argument("fuse_depth must be >= 1");
    }
    if (config.fuse_depth > 1 && config.kernel_ratio != 1.0) {
      throw std::invalid_argument(
          "fused wavefronts (fuse_depth > 1) require kernel_ratio == 1");
    }
    if (shared_->problem.shape && shared_->problem.coefficient) {
      throw std::invalid_argument(
          "shape and variable coefficients are mutually exclusive");
    }
    if (shared_->fused &&
        (shared_->problem.shape || shared_->problem.coefficient ||
         shared_->program)) {
      throw std::invalid_argument(
          "the temporal kernel variant supports only the plain "
          "constant-coefficient 5-point stencil");
    }
    if (shared_->fused && config.kernel_ratio != 1.0) {
      throw std::invalid_argument(
          "the temporal kernel variant requires kernel_ratio == 1");
    }
    if (shared_->program && config.kernel_ratio != 1.0) {
      throw std::invalid_argument(
          "spec-driven problems require kernel_ratio == 1");
    }
    // Spec runs compare against ca_ghost_depth: steps here is already in
    // stage units (config.steps * nstages) and radius is 1.
    if (shared_->radius * shared_->steps > shared_->map.min_tile_extent()) {
      throw std::invalid_argument(
          "radius * steps exceeds the smallest tile extent (" +
          std::to_string(shared_->map.min_tile_extent()) + ")");
    }
    if (config.kernel_ratio <= 0.0 || config.kernel_ratio > 1.0) {
      throw std::invalid_argument("kernel_ratio must be in (0, 1]");
    }
    const TileMap& map = shared_->map;
    tiles_.reserve(static_cast<std::size_t>(map.tiles_r()) * map.tiles_c());
    for (int ti = 0; ti < map.tiles_r(); ++ti) {
      for (int tj = 0; tj < map.tiles_c(); ++tj) {
        tiles_.push_back(make_tile_info(map, shared_->steps, shared_->radius,
                                        shared_->box, shared_->deep_all(), ti,
                                        tj));
      }
    }
  }

  const TileMap& map() const { return shared_->map; }
  std::shared_ptr<Shared> shared() const { return shared_; }

  const TileInfo& tile(int ti, int tj) const {
    return tiles_[static_cast<std::size_t>(ti) * shared_->map.tiles_c() + tj];
  }

  void build(rt::TaskGraph& graph) {
    const TileMap& map = shared_->map;
    const int iters = shared_->problem.iterations;
    const int steps = shared_->steps;

    for (int ti = 0; ti < map.tiles_r(); ++ti) {
      for (int tj = 0; tj < map.tiles_c(); ++tj) {
        graph.add_task(make_init_task(tile(ti, tj)));
        if (shared_->fused) {
          // One task per superstep, keyed by its ending iteration so that
          // state_key(boundary) names the same task in both graph shapes.
          for (int k_start = 1; k_start <= iters; k_start += steps) {
            graph.add_task(make_fused_step_task(tile(ti, tj), k_start));
          }
        } else {
          for (int k = 1; k <= iters; ++k) {
            graph.add_task(make_step_task(tile(ti, tj), k));
          }
        }
      }
    }
  }

  rt::TaskKey init_key(int ti, int tj) const {
    return rt::TaskKey{type_base_ + kTypeInit, 0, ti, tj};
  }
  rt::TaskKey step_key(int k, int ti, int tj) const {
    return rt::TaskKey{type_base_ + kTypeStep, k, ti, tj};
  }
  /// The task holding tile (ti,tj)'s state after iteration k.
  rt::TaskKey state_key(int k, int ti, int tj) const {
    return k == 0 ? init_key(ti, tj) : step_key(k, ti, tj);
  }

  std::uint32_t type_base() const { return type_base_; }

 private:
  bool superstep_start(int k) const { return (k - 1) % shared_->steps == 0; }

  /// Persistent route id for the halo stream published by producer tile
  /// (ti, tj) on output slot `slot` (one id shared by every superstep of
  /// that stream). Bit layout: 63 = route marker, [36..55] = key_space
  /// (keeps batched solves collision-free), [32..35] = slot (1..8),
  /// [16..31] = ti, [0..15] = tj.
  std::uint64_t route_id(int ti, int tj, std::uint16_t slot) const {
    return (1ull << 63) | (static_cast<std::uint64_t>(key_space_) << 36) |
           (static_cast<std::uint64_t>(slot) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(ti)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(tj));
  }

  /// Doubles in one packed band instance published by a tile with geometry
  /// `g` on `side` (plane-major, nfield planes).
  std::uint32_t band_doubles(const TileGeom& g, Side side) const {
    const int depth = shared_->radius * shared_->steps;
    const long lateral =
        (side == Side::North || side == Side::South) ? g.w : g.h;
    return static_cast<std::uint32_t>(static_cast<long>(depth) * lateral *
                                      shared_->nfield);
  }

  /// Doubles in one packed corner-block instance.
  std::uint32_t corner_doubles() const {
    const int depth = shared_->radius * shared_->steps;
    return static_cast<std::uint32_t>(static_cast<long>(depth) * depth *
                                      shared_->nfield);
  }

  /// Annotate `flow` (a remote band/corner flow from producer tile
  /// (pti, ptj)) with its persistent route when the mode is on. Fragments =
  /// nfield: the pack layout is plane-major, so each field plane is one
  /// equal even-split partition, publishable independently.
  void annotate_route(rt::FlowRef& flow, int pti, int ptj,
                      std::uint32_t doubles) const {
    if (!persistent_) return;
    flow.route = route_id(pti, ptj, flow.slot);
    flow.route_doubles = doubles;
    flow.route_fragments = static_cast<std::uint16_t>(shared_->nfield);
  }

  /// Does the task publishing state k of this tile pack remote bands/corners?
  PackPlan pack_plan(const TileInfo& info, int k) const {
    PackPlan plan;
    const int iters = shared_->problem.iterations;
    if (k >= iters || k % shared_->steps != 0) return plan;
    for (Side s : kAllSides) {
      plan.bands[static_cast<int>(s)] = info.side_deep[static_cast<int>(s)];
    }
    for (Corner c : kAllCorners) {
      // We pack corner c iff the diagonal neighbor consumes from its
      // opposite corner.
      const int dti = d_ti(c);
      const int dtj = d_tj(c);
      if (!shared_->map.neighbor_exists(info.ti, info.tj, dti, dtj)) continue;
      const TileInfo& diag = tile(info.ti + dti, info.tj + dtj);
      plan.corners[static_cast<int>(c)] =
          diag.corner_in[static_cast<int>(opposite(c))];
    }
    return plan;
  }

  /// Publish state + any planned bands/corners from the freshly computed
  /// extended buffer. `nplanes` is the plane count exchanged remotely (the
  /// spec path's nfield; 1 on the classic paths, where the _planes variants
  /// reduce to the single-plane pack functions byte-for-byte).
  static void publish_all(rt::TaskContext& ctx, const TileInfo& info,
                          const PackPlan& plan, int depth,
                          std::vector<double>&& ext, int nplanes) {
    const TileGeom& g = info.geom;
    // Persistent-channel runs hand back a pre-registered route buffer per
    // halo slot: pack straight into it (no allocation) and publish the
    // fragments immediately, so remote bands depart while the state publish
    // and bookkeeping below are still pending. Slots without a negotiated
    // route (default runs, local fused edges) take the classic path.
    for (Side s : kAllSides) {
      if (plan.bands[static_cast<int>(s)]) {
        const auto slot = kSlotBand(s);
        if (auto buf = ctx.acquire_route_buffer(slot)) {
          pack_band_planes_into(buf->data(), ext.data(), g, s, depth, nplanes);
          ctx.publish_fragments(slot, std::move(buf));
        } else {
          ctx.publish(slot, pack_band_planes(ext.data(), g, s, depth, nplanes));
        }
      }
    }
    for (Corner c : kAllCorners) {
      if (plan.corners[static_cast<int>(c)]) {
        const auto slot = kSlotCorner(c);
        if (auto buf = ctx.acquire_route_buffer(slot)) {
          pack_corner_planes_into(buf->data(), ext.data(), g, c, depth,
                                  nplanes);
          ctx.publish_fragments(slot, std::move(buf));
        } else {
          ctx.publish(slot,
                      pack_corner_planes(ext.data(), g, c, depth, nplanes));
        }
      }
    }
    ctx.publish(kSlotState, std::move(ext));
  }

  rt::TaskSpec make_init_task(const TileInfo& info) {
    rt::TaskSpec spec;
    spec.key = init_key(info.ti, info.tj);
    spec.rank = info.rank;
    spec.lane = lane_;
    spec.klass = "init";

    auto shared = shared_;
    const TileInfo tile_info = info;
    const PackPlan plan = pack_plan(info, 0);
    spec.priority = task_priority(info.boundary, plan) + priority_bias_;
    const int depth = shared_->radius * shared_->steps;
    spec.body = [shared, tile_info, plan, depth](rt::TaskContext& ctx) {
      const TileGeom& g = tile_info.geom;
      const TileMap& map = shared->map;
      const long gr0 = map.row0(tile_info.ti);
      const long gc0 = map.col0(tile_info.tj);

      const int ncomp = shared->program ? shared->program->ncomp : 1;
      std::vector<double> ext(static_cast<std::size_t>(ncomp) * g.size());
      if (shared->program) {
        // Spec path: every component at every padded cell gets its derived
        // initial value — the same spec_init_value the serial oracle uses,
        // which is what makes the never-recomputed exterior ring partials
        // agree bit-for-bit.
        for (int c = 0; c < ncomp; ++c) {
          double* dst = ext.data() + static_cast<std::size_t>(c) * g.size();
          for (int i = -g.gn; i < g.h + g.gs; ++i) {
            for (int j = -g.gw; j < g.w + g.ge; ++j) {
              dst[g.idx(i, j)] = spec_init_value(*shared->program,
                                                 shared->problem, c, gr0 + i,
                                                 gc0 + j);
            }
          }
        }
      } else {
        for (int i = -g.gn; i < g.h + g.gs; ++i) {
          for (int j = -g.gw; j < g.w + g.ge; ++j) {
            const long gi = gr0 + i;
            const long gj = gc0 + j;
            const bool inside = gi >= 0 && gi < map.rows() && gj >= 0 &&
                                gj < map.cols();
            ext[g.idx(i, j)] = inside ? shared->problem.initial(gi, gj)
                                      : shared->problem.boundary(gi, gj);
          }
        }
      }

      // Variable-coefficient problems: materialize the coefficient planes
      // over the full extended geometry (the CA scheme evaluates the stencil
      // inside the ghost bands too, so planes must cover them).
      if (shared->problem.coefficient) {
        std::vector<double> coeff(kCoeffPlanes * g.size());
        for (int i = -g.gn; i < g.h + g.gs; ++i) {
          for (int j = -g.gw; j < g.w + g.ge; ++j) {
            const auto w = shared->problem.coefficient(gr0 + i, gc0 + j);
            for (int plane = 0; plane < kCoeffPlanes; ++plane) {
              coeff[plane * g.size() + g.idx(i, j)] =
                  w[static_cast<std::size_t>(plane)];
            }
          }
        }
        ctx.publish(kSlotCoeff, std::move(coeff));
      }
      if (shared->hook) call_hook(*shared, tile_info, 0, ext.data());
      publish_all(ctx, tile_info, plan, depth, std::move(ext),
                  shared->nfield);
    };
    return spec;
  }

  rt::TaskSpec make_step_task(const TileInfo& info, int k) {
    rt::TaskSpec spec;
    spec.key = step_key(k, info.ti, info.tj);
    spec.rank = info.rank;
    spec.lane = lane_;
    spec.priority = task_priority(info.boundary, pack_plan(info, k)) +
                    priority_bias_;
    spec.klass = info.boundary ? "boundary" : "interior";
    // Dependence-cone metadata: each tile's STEP tasks form one totally
    // ordered chain (k is the position), which is exactly what
    // rt::fuse_supersteps needs to window them into wavefront tasks. +1
    // keeps key_space 0 distinguishable from "no chain".
    spec.chain = (static_cast<std::uint64_t>(key_space_) + 1) << 32 |
                 (static_cast<std::uint64_t>(info.ti) *
                      static_cast<std::uint64_t>(shared_->map.tiles_c()) +
                  static_cast<std::uint64_t>(info.tj));
    spec.chain_step = k;

    const bool start = superstep_start(k);

    // Input order: own prev state; local neighbor states (N,S,W,E); then at
    // superstep starts, remote bands (N,S,W,E) and remote corners
    // (NW,NE,SW,SE). Body indexes inputs in exactly this order.
    spec.inputs.push_back({state_key(k - 1, info.ti, info.tj),
                           kSlotState});
    for (Side s : kAllSides) {
      if (info.side_local[static_cast<int>(s)]) {
        spec.inputs.push_back(
            {state_key(k - 1, info.ti + d_ti(s), info.tj + d_tj(s)),
             kSlotState});
      }
    }
    for (Corner c : kAllCorners) {
      if (info.corner_local[static_cast<int>(c)]) {
        spec.inputs.push_back(
            {state_key(k - 1, info.ti + d_ti(c), info.tj + d_tj(c)),
             kSlotState});
      }
    }
    if (start) {
      for (Side s : kAllSides) {
        if (info.side_deep[static_cast<int>(s)]) {
          // Our north ghost comes from the north neighbor's south band.
          // Fuse-ready graphs exchange packed bands with local neighbors
          // too; only the remote ones cross the wire and get a route.
          const int pti = info.ti + d_ti(s);
          const int ptj = info.tj + d_tj(s);
          rt::FlowRef flow{state_key(k - 1, pti, ptj),
                           kSlotBand(opposite(s))};
          if (info.side_remote[static_cast<int>(s)]) {
            annotate_route(flow, pti, ptj,
                           band_doubles(tile(pti, ptj).geom, opposite(s)));
          }
          spec.inputs.push_back(flow);
        }
      }
      for (Corner c : kAllCorners) {
        if (info.corner_in[static_cast<int>(c)]) {
          const int pti = info.ti + d_ti(c);
          const int ptj = info.tj + d_tj(c);
          rt::FlowRef flow{state_key(k - 1, pti, ptj),
                           kSlotCorner(opposite(c))};
          if (shared_->map.neighbor_remote(info.ti, info.tj, d_ti(c),
                                           d_tj(c))) {
            annotate_route(flow, pti, ptj, corner_doubles());
          }
          spec.inputs.push_back(flow);
        }
      }
    }
    const bool variable = static_cast<bool>(shared_->problem.coefficient);
    if (variable) {
      // The tile's coefficient planes, published once by INIT; always the
      // last input so the earlier positional indexing is undisturbed.
      spec.inputs.push_back({init_key(info.ti, info.tj), kSlotCoeff});
    }

    auto shared = shared_;
    const TileInfo tile_info = info;
    const PackPlan plan = pack_plan(info, k);
    spec.body = [shared, tile_info, plan, k, start,
                 variable](rt::TaskContext& ctx) {
      const TileGeom& g = tile_info.geom;
      const int steps = shared->steps;

      // 1. Assemble the input view: previous own state (covers the core, the
      //    still-valid redundant bands, and the Dirichlet ring)...
      const int radius = shared->radius;
      const int exchange_depth = radius * steps;
      std::span<const double> prev = ctx.input(0);
      std::vector<double> assembled(prev.begin(), prev.end());

      // 2. ...refresh radius-deep local ghost lines (full extended extent),
      //    then (box shapes / diagonal-tap programs) local corner blocks.
      //    Local copies carry ALL state planes: a spec stage t > 1 reads the
      //    neighbor's stage-(t-1) intermediates one cell deep.
      const int ncomp = shared->program ? shared->program->ncomp : 1;
      std::size_t next_input = 1;
      for (Side s : kAllSides) {
        if (!tile_info.side_local[static_cast<int>(s)]) continue;
        const TileInfo nbr = make_nbr_info(*shared, tile_info, s);
        copy_local_line_planes(assembled.data(), g, s,
                               ctx.input(next_input).data(), nbr.geom, radius,
                               ncomp);
        ++next_input;
      }
      for (Corner c : kAllCorners) {
        if (!tile_info.corner_local[static_cast<int>(c)]) continue;
        const TileInfo diag = make_diag_info(*shared, tile_info, c);
        copy_local_corner_planes(assembled.data(), g, c,
                                 ctx.input(next_input).data(), diag.geom,
                                 ncomp);
        ++next_input;
      }

      // 3. ...and at superstep starts overwrite the deep remote bands and
      //    corners with freshly received data. Remote payloads carry only the
      //    nfield field planes: stage 1 reads nothing else, and ghost-band
      //    intermediates are recomputed locally stage by stage.
      if (start) {
        for (Side s : kAllSides) {
          if (!tile_info.side_deep[static_cast<int>(s)]) continue;
          unpack_band_planes(assembled.data(), g, s, ctx.input(next_input),
                             exchange_depth, shared->nfield);
          ++next_input;
        }
        for (Corner c : kAllCorners) {
          if (!tile_info.corner_in[static_cast<int>(c)]) continue;
          unpack_corner_planes(assembled.data(), g, c, ctx.input(next_input),
                               exchange_depth, shared->nfield);
          ++next_input;
        }
      }

      // 4. Compute the (possibly shrunken) region for this inner step: the
      //    valid region loses `radius` layers per step on deep sides (the
      //    remote sides classically; every neighbor side when fuse-ready).
      const int jj = (k - 1) % steps;  // inner step within the superstep
      const int shrink = radius * (jj + 1);
      int r0 = tile_info.side_deep[0] ? -(exchange_depth - shrink) : 0;
      int r1 = g.h + (tile_info.side_deep[1] ? exchange_depth - shrink : 0);
      int c0 = tile_info.side_deep[2] ? -(exchange_depth - shrink) : 0;
      int c1 = g.w + (tile_info.side_deep[3] ? exchange_depth - shrink : 0);

      if (shared->ratio < 1.0) {
        // Kernel-time tuning (paper section VI-D): update only a
        // ratio-scaled sub-rectangle. Timing experiments only.
        r1 = r0 + std::max(1, static_cast<int>(std::lround(
                                  shared->ratio * (r1 - r0))));
        c1 = c0 + std::max(1, static_cast<int>(std::lround(
                                  shared->ratio * (c1 - c0))));
      }

      std::vector<double> out = assembled;  // ring + unwritten cells persist
      if (shared->program) {
        // Stage (k-1) % nstages of the compiled program; non-output planes
        // and the static exterior ring were carried by the copy above.
        apply_program_stage(assembled.data(), out.data(), g, *shared->program,
                            (k - 1) % shared->nstages, r0, r1, c0, c1,
                            shared->kernel, shared->tuning);
      } else if (shared->problem.shape) {
        apply_shape(assembled.data(), out.data(), g, *shared->problem.shape,
                    r0, r1, c0, c1);
      } else if (variable) {
        const auto coeff = ctx.input(ctx.num_inputs() - 1);
        jacobi5_var(assembled.data(), out.data(), g, coeff.data(), r0, r1, c0,
                    c1);
      } else {
        // Constant-coefficient path: dispatch the selected kernel variant
        // (bit-identical to jacobi5 by construction, see kernel_opt.hpp).
        jacobi5_opt(assembled.data(), out.data(), g, shared->problem.weights,
                    r0, r1, c0, c1, shared->kernel, shared->tuning);
      }
      shared->computed_points.fetch_add(
          static_cast<long long>(r1 - r0) * (c1 - c0),
          std::memory_order_relaxed);

      // The tile is globally consistent again at superstep boundaries — the
      // natural checkpoint instant. Spec runs report the ORIGINAL iteration
      // index (k is in stage units there). Fused windows keep the original
      // cadence: hook_period is the pre-fuse superstep length, and the tile
      // core is consistent at every one of those interior boundaries (all
      // deep sides shrink uniformly past the core only at window end).
      if (shared->hook && k % shared->hook_period == 0) {
        call_hook(*shared, tile_info, k / shared->nstages, out.data());
      }
      publish_all(ctx, tile_info, plan, exchange_depth, std::move(out),
                  shared->nfield);
    };
    return spec;
  }

  /// One fused CA superstep (Temporal variant): consume the state and
  /// deep bands/corners published at the previous superstep boundary, then
  /// advance every inner step of the superstep inside this single task via
  /// jacobi5_temporal. The task is keyed by its ENDING iteration so that
  /// state_key(boundary, ti, tj) names the same producer in both graph
  /// shapes (gather, pack_plan, and neighbor wiring all reuse it).
  rt::TaskSpec make_fused_step_task(const TileInfo& info, int k_start) {
    const int iters = shared_->problem.iterations;
    const int steps = shared_->steps;
    const int k_end = std::min(k_start + steps - 1, iters);
    const int m = k_end - k_start + 1;

    rt::TaskSpec spec;
    spec.key = step_key(k_end, info.ti, info.tj);
    spec.rank = info.rank;
    spec.lane = lane_;
    spec.priority = task_priority(info.boundary, pack_plan(info, k_end)) +
                    priority_bias_;
    spec.klass = info.boundary ? "boundary" : "interior";
    // Same chain id as the per-step shape; position = ending iteration.
    spec.chain = (static_cast<std::uint64_t>(key_space_) + 1) << 32 |
                 (static_cast<std::uint64_t>(info.ti) *
                      static_cast<std::uint64_t>(shared_->map.tiles_c()) +
                  static_cast<std::uint64_t>(info.tj));
    spec.chain_step = k_end;

    // Input order: own previous-boundary state; neighbor bands (N,S,W,E);
    // corner blocks (NW,NE,SW,SE). Body indexes inputs in exactly this order.
    spec.inputs.push_back({state_key(k_start - 1, info.ti, info.tj),
                           kSlotState});
    for (Side s : kAllSides) {
      if (info.side_deep[static_cast<int>(s)]) {
        const int pti = info.ti + d_ti(s);
        const int ptj = info.tj + d_tj(s);
        rt::FlowRef flow{state_key(k_start - 1, pti, ptj),
                         kSlotBand(opposite(s))};
        // Fused tasks exchange bands with local neighbors too; only the
        // remote ones cross the wire and get a persistent route.
        if (info.side_remote[static_cast<int>(s)]) {
          annotate_route(flow, pti, ptj,
                         band_doubles(tile(pti, ptj).geom, opposite(s)));
        }
        spec.inputs.push_back(flow);
      }
    }
    for (Corner c : kAllCorners) {
      if (info.corner_in[static_cast<int>(c)]) {
        const int pti = info.ti + d_ti(c);
        const int ptj = info.tj + d_tj(c);
        rt::FlowRef flow{state_key(k_start - 1, pti, ptj),
                         kSlotCorner(opposite(c))};
        if (shared_->map.neighbor_remote(info.ti, info.tj, d_ti(c), d_tj(c))) {
          annotate_route(flow, pti, ptj, corner_doubles());
        }
        spec.inputs.push_back(flow);
      }
    }

    auto shared = shared_;
    const TileInfo tile_info = info;
    const PackPlan plan = pack_plan(info, k_end);
    spec.body = [shared, tile_info, plan, k_end, m](rt::TaskContext& ctx) {
      const TileGeom& g = tile_info.geom;
      const int radius = shared->radius;  // always 1 on this path
      const int depth = radius * shared->steps;

      // 1. Assemble: previous boundary state (core + Dirichlet ring), then
      //    overwrite every deep ghost band and corner block with the data
      //    the neighbors packed at the boundary.
      std::span<const double> prev = ctx.input(0);
      std::vector<double> assembled(prev.begin(), prev.end());
      std::size_t next_input = 1;
      for (Side s : kAllSides) {
        if (!tile_info.side_deep[static_cast<int>(s)]) continue;
        unpack_band(assembled.data(), g, s, ctx.input(next_input), depth);
        ++next_input;
      }
      for (Corner c : kAllCorners) {
        if (!tile_info.corner_in[static_cast<int>(c)]) continue;
        unpack_corner(assembled.data(), g, c, ctx.input(next_input), depth);
        ++next_input;
      }

      // 2. First inner step covers the full redundant band on deep sides;
      //    jacobi5_temporal shrinks it one layer per step toward the core.
      //    Non-deep sides sit on the grid edge, against the fixed ring.
      const std::array<bool, 4> shrink = {
          tile_info.side_deep[0], tile_info.side_deep[1],
          tile_info.side_deep[2], tile_info.side_deep[3]};
      const int r0 = shrink[0] ? -(depth - radius) : 0;
      const int r1 = g.h + (shrink[1] ? depth - radius : 0);
      const int c0 = shrink[2] ? -(depth - radius) : 0;
      const int c1 = g.w + (shrink[3] ? depth - radius : 0);

      std::vector<double> out = assembled;  // ring + unwritten cells persist
      jacobi5_temporal(assembled.data(), out.data(), g,
                       shared->problem.weights, r0, r1, c0, c1, m, shrink,
                       shared->tuning);

      // Same accounting as m non-fused tasks: one shrinking region per step.
      long long points = 0;
      for (int t = 0; t < m; ++t) {
        points += static_cast<long long>((r1 - (shrink[1] ? t : 0)) -
                                         (r0 + (shrink[0] ? t : 0))) *
                  ((c1 - (shrink[3] ? t : 0)) - (c0 + (shrink[2] ? t : 0)));
      }
      shared->computed_points.fetch_add(points, std::memory_order_relaxed);

      if (shared->hook && k_end % shared->hook_period == 0) {
        call_hook(*shared, tile_info, k_end, out.data());
      }
      publish_all(ctx, tile_info, plan, depth, std::move(out), 1);
    };
    return spec;
  }

  /// Geometry of the neighbor on `side` (for local line copies).
  static TileInfo make_nbr_info(const Shared& shared, const TileInfo& info,
                                Side s) {
    return make_tile_info(shared.map, shared.steps, shared.radius, shared.box,
                          shared.deep_all(), info.ti + d_ti(s),
                          info.tj + d_tj(s));
  }

  /// Geometry of the diagonal neighbor at `corner` (for box local corners).
  static TileInfo make_diag_info(const Shared& shared, const TileInfo& info,
                                 Corner c) {
    return make_tile_info(shared.map, shared.steps, shared.radius, shared.box,
                          shared.deep_all(), info.ti + d_ti(c),
                          info.tj + d_tj(c));
  }

  std::shared_ptr<Shared> shared_;
  std::uint32_t type_base_ = 0;
  std::uint32_t key_space_ = 0;
  int priority_bias_ = 0;
  int lane_ = -1;
  bool persistent_ = false;
  std::vector<TileInfo> tiles_;
};

}  // namespace

// ----------------------------------------------------------- subgraph API --

/// Everything gather() needs, captured at build time. Holds the Builder
/// itself (its Shared context carries the live computed_points counter the
/// task bodies update).
struct SolveSubgraph::Impl {
  Impl(const Problem& problem, const DistConfig& config)
      : builder(problem, config), kernel_ratio(config.kernel_ratio) {}

  Builder builder;
  double kernel_ratio;
};

int SolveSubgraph::nodes() const { return impl_->builder.map().nodes(); }

std::size_t SolveSubgraph::tasks() const {
  const Shared& shared = *impl_->builder.shared();
  const TileMap& map = shared.map;
  const auto tiles = static_cast<std::size_t>(map.tiles_r()) * map.tiles_c();
  const int iters = shared.problem.iterations;
  const int steps = shared.steps;
  const int per_tile =
      1 + (shared.fused ? (iters + steps - 1) / steps : iters);
  return tiles * static_cast<std::size_t>(per_tile);
}

Grid2D SolveSubgraph::gather(const rt::Runtime& runtime) const {
  return gather_plane(runtime, 0);
}

Grid2D SolveSubgraph::gather_plane(const rt::Runtime& runtime, int z) const {
  const Builder& builder = impl_->builder;
  const Shared& shared = *builder.shared();
  const TileMap& map = shared.map;
  const Problem& problem = shared.problem;
  const int nz = shared.program ? shared.program->nz : 1;
  if (z < 0 || z >= nz) {
    throw std::invalid_argument("gather_plane: z out of range");
  }
  // Spec state buffers hold ncomp planes; z's field plane is zlo + z.
  const std::size_t plane_off =
      shared.program ? static_cast<std::size_t>(shared.program->zlo + z) : 0;

  Grid2D grid(problem.rows, problem.cols);
  const CellFn ring = shared.program
                          ? CellFn([&problem, z](long i, long j) {
                              return problem.boundary3(i, j, z);
                            })
                          : problem.boundary;
  grid.fill([](long, long) { return 0.0; }, ring);
  for (int ti = 0; ti < map.tiles_r(); ++ti) {
    for (int tj = 0; tj < map.tiles_c(); ++tj) {
      const rt::Buffer state = runtime.result(
          builder.state_key(problem.iterations, ti, tj), 0);
      const TileGeom& g = builder.tile(ti, tj).geom;
      const double* src = state->data() + plane_off * g.size();
      for (int i = 0; i < g.h; ++i) {
        for (int j = 0; j < g.w; ++j) {
          grid.at(map.row0(ti) + i, map.col0(tj) + j) = src[g.idx(i, j)];
        }
      }
    }
  }
  return grid;
}

std::vector<Grid2D> SolveSubgraph::gather_planes(
    const rt::Runtime& runtime) const {
  const Shared& shared = *impl_->builder.shared();
  const int nz = shared.program ? shared.program->nz : 1;
  std::vector<Grid2D> planes;
  planes.reserve(static_cast<std::size_t>(nz));
  for (int z = 0; z < nz; ++z) planes.push_back(gather_plane(runtime, z));
  return planes;
}

long long SolveSubgraph::computed_points() const {
  return impl_->builder.shared()->computed_points.load();
}

int SolveSubgraph::fuse_window() const {
  const Shared& shared = *impl_->builder.shared();
  // Temporal already runs each window inside one task — nothing to rewrite.
  // Per-step fuse-ready graphs want one wavefront task per full window of
  // stage-steps (shared.steps is the window after the constructor's
  // fuse multiplication).
  return (!shared.fused && shared.fuse > 1) ? shared.steps : 1;
}

long long SolveSubgraph::nominal_points() const {
  const Problem& problem = impl_->builder.shared()->problem;
  auto nominal = static_cast<long long>(problem.rows) * problem.cols *
                 problem.iterations;
  if (impl_->kernel_ratio < 1.0) {
    // Nominal work shrinks with the ratio squared (paper's definition).
    nominal = static_cast<long long>(static_cast<double>(nominal) *
                                     impl_->kernel_ratio *
                                     impl_->kernel_ratio);
  }
  return nominal;
}

SolveSubgraph add_solve_subgraph(rt::TaskGraph& graph, const Problem& problem,
                                 const DistConfig& config) {
  SolveSubgraph subgraph;
  subgraph.impl_ = std::make_shared<SolveSubgraph::Impl>(problem, config);
  subgraph.impl_->builder.build(graph);
  return subgraph;
}

namespace {

/// Shared state behind the telemetry-wrapped superstep hook. The hook fires
/// once per tile per boundary from worker threads; the pump counts tiles down
/// per (rank, boundary) and, when a rank's boundary completes, condenses that
/// rank's runtime counters into one TelemetrySnapshot. Rank 0 ingests its own
/// snapshot directly; every other rank ships it to rank 0 as a real wire
/// message (obs::kTelemetryWireBytes), so telemetry traffic is charged to the
/// channel stack exactly like halo traffic and the DES can model it.
struct TelemetryPump {
  TelemetryPump(const Problem& problem, const DistConfig& config)
      : map(problem.rows, problem.cols, config.decomp.mb, config.decomp.nb,
            config.decomp.node_rows, config.decomp.node_cols),
        steps(config.steps),
        boundaries(1 + problem.iterations / config.steps),
        dump_path(config.telemetry_dump) {
    pending = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(map.nodes()) * boundaries);
    std::vector<int> tiles(map.nodes(), 0);
    for (int ti = 0; ti < map.tiles_r(); ++ti) {
      for (int tj = 0; tj < map.tiles_c(); ++tj) ++tiles[map.rank_of(ti, tj)];
    }
    for (int rank = 0; rank < map.nodes(); ++rank) {
      for (int b = 0; b < boundaries; ++b) {
        pending[static_cast<std::size_t>(rank) * boundaries + b].store(
            tiles[rank], std::memory_order_relaxed);
      }
    }
  }

  /// Wrapped-hook body: countdown for (rank-of-tile, boundary k/steps), and
  /// on the last tile emit that rank's snapshot.
  void on_boundary(int k, int ti, int tj) {
    const int b = k / steps;
    if (b < 0 || b >= boundaries) return;
    const int rank = map.rank_of(ti, tj);
    auto& counter = pending[static_cast<std::size_t>(rank) * boundaries + b];
    if (counter.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    rt::Runtime* rt = runtime.load(std::memory_order_acquire);
    if (rt == nullptr) return;
    rt->set_superstep(rank, static_cast<std::uint64_t>(b));
    obs::TelemetrySnapshot snap = rt->rank_sample(rank);
    snap.superstep = static_cast<std::uint64_t>(b);
    if (rank == 0) {
      ingest(snap);
    } else {
      rt->post_telemetry(rank, 0, obs::encode_telemetry(snap));
    }
  }

  /// Rank-0 side: feed the collector and keep the live dump fresh.
  void ingest(const obs::TelemetrySnapshot& snap) {
    collector->ingest(snap);
    maybe_dump(false);
  }

  void maybe_dump(bool force) {
    if (dump_path.empty()) return;
    if (!force) {
      // Throttle rewrites: one per completed cross-rank wave is plenty for a
      // live view, and the final forced dump always lands.
      const std::uint64_t n = dumps_pending.fetch_add(1) + 1;
      if (n % static_cast<std::uint64_t>(std::max(1, map.nodes())) != 0) return;
    }
    collector->write_dump(dump_path);
  }

  TileMap map;
  int steps;
  int boundaries;
  std::string dump_path;
  std::shared_ptr<obs::TelemetryCollector> collector;
  std::atomic<rt::Runtime*> runtime{nullptr};
  std::unique_ptr<std::atomic<int>[]> pending;
  std::atomic<std::uint64_t> dumps_pending{0};
};

}  // namespace

DistResult run_distributed(const Problem& problem, const DistConfig& config) {
  // Live telemetry rides the superstep hook: wrap it on a local config copy
  // BEFORE building the graph (the builder captures the hook at
  // construction).
  DistConfig build_config = config;
  std::shared_ptr<TelemetryPump> pump;
  if (config.telemetry) {
    pump = std::make_shared<TelemetryPump>(problem, config);
    SuperstepHook inner = config.superstep_hook;
    std::shared_ptr<TelemetryPump> captured = pump;
    build_config.superstep_hook = [captured, inner](
                                      int k, int ti, int tj,
                                      const std::vector<double>& core) {
      if (inner) inner(k, ti, tj, core);
      captured->on_boundary(k, ti, tj);
    };
  }

  rt::TaskGraph graph;
  const SolveSubgraph subgraph = add_solve_subgraph(graph, problem, build_config);
  // Fused wavefronts: the builder emitted a fuse-ready per-step graph; the
  // generic pass windows each tile chain into one cache-resident task and
  // collapses cross-rank halo edges to one exchange per window.
  if (const int window = subgraph.fuse_window(); window > 1) {
    rt::fuse_supersteps(graph, window);
  }

  rt::Config rt_config;
  rt_config.nranks = subgraph.nodes();
  rt_config.workers_per_rank = config.workers_per_rank;
  rt_config.dedicated_comm_thread = config.dedicated_comm_thread;
  rt_config.trace = config.trace;
  rt_config.scheduler = config.scheduler;
  rt_config.aggregate_messages = config.aggregate_messages;
  rt_config.metrics = config.metrics ? config.metrics
                                     : std::make_shared<obs::MetricsRegistry>();
  rt_config.channel_factory =
      config.persistent ? net::persistent_channel_factory(
                              config.channel_factory, rt_config.metrics)
                        : config.channel_factory;
  rt_config.sched_seed = config.sched_seed;
  rt_config.sched_test_hook = config.sched_test_hook;
  if (pump) {
    pump->collector = config.telemetry_collector
                          ? config.telemetry_collector
                          : std::make_shared<obs::TelemetryCollector>(
                                rt_config.nranks, config.telemetry_detectors,
                                rt_config.metrics, "real");
    std::shared_ptr<TelemetryPump> captured = pump;
    rt_config.telemetry_sink = [captured](int /*src_rank*/,
                                          const std::vector<double>& payload) {
      obs::TelemetrySnapshot snap;
      if (obs::decode_telemetry(payload, &snap)) captured->ingest(snap);
    };
  }

  rt::Runtime runtime(rt_config);
  if (pump) pump->runtime.store(&runtime, std::memory_order_release);
  rt::RunStats stats = runtime.run(graph);
  if (pump) {
    pump->runtime.store(nullptr, std::memory_order_release);
    pump->maybe_dump(true);
  }

  DistResult result{subgraph.gather(runtime), std::move(stats), {}, {},
                    0, 0, kFlopsPerPoint, {}};
  if (problem.spec) {
    result.planes = subgraph.gather_planes(runtime);
    result.flops_per_point =
        spec::compile_spec(*problem.spec, problem.nz).flops_per_point();
  } else if (problem.shape) {
    result.flops_per_point = problem.shape->flops_per_point();
  }
  result.trace_events = runtime.tracer().events();
  result.computed_points = subgraph.computed_points();
  result.nominal_points = subgraph.nominal_points();

  result.metrics = rt_config.metrics;
  if (pump) result.telemetry = pump->collector;
  if constexpr (obs::kEnabled) {
    // Publish driver-level counters into the same registry the runtime and
    // transport scraped into, so one snapshot tells the whole story.
    auto& registry = *result.metrics;
    const auto publish = [&registry](const char* name, std::uint64_t value,
                                     const char* help) {
      auto counter = std::make_shared<obs::Counter>();
      counter->add(value);
      registry.attach(name, {}, std::move(counter), help);
    };
    const int iters = problem.iterations;
    // Fused wavefronts widen the exchange window: one remote round per
    // fuse_depth supersteps.
    const int window = config.steps * config.fuse_depth;
    publish("stencil_iterations_total", static_cast<std::uint64_t>(iters),
            "Jacobi iterations performed");
    publish("stencil_supersteps_total",
            static_cast<std::uint64_t>((iters + window - 1) / window),
            "CA supersteps (remote halo-exchange rounds)");
    auto fuse = registry.gauge("stencil_fuse_depth", {},
                               "Supersteps fused per wavefront window "
                               "(1 = no temporal blocking across nodes)");
    fuse->set(static_cast<double>(config.fuse_depth));
    publish("stencil_computed_points_total",
            static_cast<std::uint64_t>(result.computed_points),
            "Stencil points updated, redundant recompute included");
    const long long redundant =
        std::max(0LL, result.computed_points - result.nominal_points);
    publish("stencil_redundant_points_total",
            static_cast<std::uint64_t>(redundant),
            "Ghost-band points recomputed beyond nominal work");
    auto flops = registry.gauge("stencil_flops_total", {},
                                "Floating-point ops, redundancy included");
    flops->set(result.flops());
    auto variant = registry.gauge(
        "stencil_kernel_variant_info",
        {{"variant", kernel_variant_name(config.kernel)}},
        "Selected compute-kernel variant (value is always 1)");
    variant->set(1.0);
    if (problem.spec) {
      auto spec_info = registry.gauge(
          "stencil_spec_info", {{"spec", problem.spec->name}},
          "Stencil spec of this run (value = atomic stage count)");
      spec_info->set(static_cast<double>(spec::stage_count(*problem.spec)));
    }
    if (result.stats.wall_time_s > 0.0) {
      auto rate = registry.gauge("stencil_points_per_second", {},
                                 "Computed points (redundancy included) "
                                 "per wall-clock second");
      rate->set(static_cast<double>(result.computed_points) /
                result.stats.wall_time_s);
    }
  }
  return result;
}

}  // namespace repro::stencil
