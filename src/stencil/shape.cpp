#include "stencil/shape.hpp"

#include <stdexcept>

namespace repro::stencil {

std::vector<std::pair<int, int>> StencilShape::offsets() const {
  std::vector<std::pair<int, int>> result;
  result.emplace_back(0, 0);
  for (int k = 1; k <= radius; ++k) {
    result.emplace_back(-k, 0);
    result.emplace_back(k, 0);
    result.emplace_back(0, -k);
    result.emplace_back(0, k);
  }
  if (box) {
    for (int di = -radius; di <= radius; ++di) {
      for (int dj = -radius; dj <= radius; ++dj) {
        if (di == 0 || dj == 0) continue;  // center and axes already listed
        result.emplace_back(di, dj);
      }
    }
  }
  return result;
}

std::size_t StencilShape::num_points() const {
  if (box) {
    return static_cast<std::size_t>(2 * radius + 1) *
           static_cast<std::size_t>(2 * radius + 1);
  }
  return static_cast<std::size_t>(4 * radius + 1);
}

void StencilShape::validate() const {
  if (radius < 1) throw std::invalid_argument("StencilShape: radius < 1");
  if (weights.size() != num_points()) {
    throw std::invalid_argument("StencilShape: expected " +
                                std::to_string(num_points()) + " weights, got " +
                                std::to_string(weights.size()));
  }
}

StencilShape StencilShape::five_point(const Stencil5& w) {
  StencilShape shape;
  shape.radius = 1;
  shape.box = false;
  // offsets(): center, north, south, west, east — the jacobi5 order.
  shape.weights = {w.center, w.north, w.south, w.west, w.east};
  return shape;
}

namespace {

double hash_weight(unsigned long a, unsigned long b, unsigned long seed) {
  unsigned long z = a * 0x9e3779b97f4a7c15UL ^ b * 0xbf58476d1ce4e5b9UL ^
                    seed * 0x94d049bb133111ebUL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9UL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
}

std::vector<double> contractive_weights(std::size_t n, unsigned long seed) {
  // Random positive weights normalized to sum 0.9 (contractive).
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.05 + hash_weight(i, n, seed);
    sum += w[i];
  }
  for (double& v : w) v *= 0.9 / sum;
  return w;
}

}  // namespace

StencilShape StencilShape::random_cross(int radius, unsigned long seed) {
  StencilShape shape;
  shape.radius = radius;
  shape.box = false;
  shape.weights = contractive_weights(shape.num_points(), seed);
  shape.validate();
  return shape;
}

StencilShape StencilShape::random_box(int radius, unsigned long seed) {
  StencilShape shape;
  shape.radius = radius;
  shape.box = true;
  shape.weights = contractive_weights(shape.num_points(), seed);
  shape.validate();
  return shape;
}

void apply_shape(const double* in, double* out, const TileGeom& geom,
                 const StencilShape& shape, int r0, int r1, int c0, int c1) {
  const auto offsets = shape.offsets();
  const int ld = geom.ld();
  // Precompute linear deltas once per call.
  std::vector<std::ptrdiff_t> deltas(offsets.size());
  for (std::size_t k = 0; k < offsets.size(); ++k) {
    deltas[k] = static_cast<std::ptrdiff_t>(offsets[k].first) * ld +
                offsets[k].second;
  }
  const double* w = shape.weights.data();
  const std::size_t n = offsets.size();

  for (int i = r0; i < r1; ++i) {
    const std::size_t row = geom.idx(i, 0);
    double* dst = out + row;
    const double* src = in + row;
    for (int j = c0; j < c1; ++j) {
      double sum = w[0] * src[j];  // center first, matching offsets() order
      for (std::size_t k = 1; k < n; ++k) {
        sum += w[k] * src[j + deltas[k]];
      }
      dst[j] = sum;
    }
  }
}

}  // namespace repro::stencil
