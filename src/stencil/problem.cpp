#include "stencil/problem.hpp"

#include <cmath>

namespace repro::stencil {

Problem laplace_problem(int n, int iterations) {
  Problem p;
  p.rows = n;
  p.cols = n;
  p.iterations = iterations;
  p.weights = Stencil5::laplace_jacobi();
  p.initial = [](long, long) { return 0.0; };
  p.boundary = [n](long /*i*/, long j) {
    // Hot (1.0) west wall, cold east wall, linear ramp north/south.
    if (j < 0) return 1.0;
    if (j >= n) return 0.0;
    return 1.0 - static_cast<double>(j) / static_cast<double>(n - 1);
  };
  return p;
}

Problem random_problem(int rows, int cols, int iterations,
                       unsigned long seed) {
  Problem p;
  p.rows = rows;
  p.cols = cols;
  p.iterations = iterations;
  p.weights = Stencil5::test_weights();
  // Hash-based field: reproducible, no shared RNG state, and every cell
  // differs from its neighbors. Kept in [0,1) to avoid growth under the
  // contraction weights.
  auto field = [seed](long i, long j) {
    unsigned long z = static_cast<unsigned long>(i) * 0x9e3779b97f4a7c15UL ^
                      (static_cast<unsigned long>(j) + seed) * 0xbf58476d1ce4e5b9UL;
    z = (z ^ (z >> 30)) * 0x94d049bb133111ebUL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  };
  p.initial = field;
  p.boundary = field;
  return p;
}

Problem spec_problem(spec::StencilSpec stencil, int rows, int cols,
                     int iterations, int nz, unsigned long seed) {
  Problem p;
  p.rows = rows;
  p.cols = cols;
  p.iterations = iterations;
  p.spec = std::move(stencil);
  p.nz = nz;
  // Hash-based 3D field in [0,1): same construction as random_problem with z
  // mixed in, so plane transpositions and z-offset bugs change the answer.
  auto field = [seed](long i, long j, long z) {
    unsigned long h = static_cast<unsigned long>(i) * 0x9e3779b97f4a7c15UL ^
                      (static_cast<unsigned long>(j) + seed) *
                          0xbf58476d1ce4e5b9UL ^
                      (static_cast<unsigned long>(z) + 17UL) *
                          0x94d049bb133111ebUL;
    h = (h ^ (h >> 30)) * 0x94d049bb133111ebUL;
    h ^= h >> 31;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  };
  p.initial3 = field;
  p.boundary3 = field;
  // 2D views of plane 0 so code that only understands CellFn (gather ring
  // fill, report summaries) keeps working.
  p.initial = [field](long i, long j) { return field(i, j, 0); };
  p.boundary = [field](long i, long j) { return field(i, j, 0); };
  return p;
}

Problem random_variable_problem(int rows, int cols, int iterations,
                                unsigned long seed) {
  Problem p = random_problem(rows, cols, iterations, seed);
  p.coefficient = [seed](long i, long j) {
    auto h = [seed](long a, long b, unsigned long salt) {
      unsigned long z = static_cast<unsigned long>(a) * 0x9e3779b97f4a7c15UL ^
                        static_cast<unsigned long>(b) * 0xbf58476d1ce4e5b9UL ^
                        (seed + salt) * 0x94d049bb133111ebUL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9UL;
      z ^= z >> 31;
      return static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
    };
    // Five weights in [0.02, 0.21), summing to < 1.05 worst case but
    // typically ~0.6 — effectively contractive over random fields.
    return std::array<double, 5>{0.02 + 0.19 * h(i, j, 1),
                                 0.02 + 0.19 * h(i, j, 2),
                                 0.02 + 0.19 * h(i, j, 3),
                                 0.02 + 0.19 * h(i, j, 4),
                                 0.02 + 0.19 * h(i, j, 5)};
  };
  return p;
}

}  // namespace repro::stencil
