#include "stencil/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::stencil {

Grid2D::Grid2D(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(AlignedBuffer<double>::zeroed(
          static_cast<std::size_t>(rows + 2) *
          static_cast<std::size_t>(cols + 2))) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("Grid2D: dimensions must be >= 1");
  }
}

void Grid2D::fill(const CellFn& initial, const CellFn& boundary) {
  for (int i = -1; i <= rows_; ++i) {
    for (int j = -1; j <= cols_; ++j) {
      const bool ring = i < 0 || i >= rows_ || j < 0 || j >= cols_;
      at(i, j) = ring ? boundary(i, j) : initial(i, j);
    }
  }
}

double Grid2D::max_abs_diff(const Grid2D& a, const Grid2D& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("Grid2D: shape mismatch in max_abs_diff");
  }
  double worst = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::fabs(a.at(i, j) - b.at(i, j)));
    }
  }
  return worst;
}

double Grid2D::interior_sum() const {
  double sum = 0.0;
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) sum += at(i, j);
  }
  return sum;
}

}  // namespace repro::stencil
