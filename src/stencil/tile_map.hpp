// Tile decomposition and 2D-block node ownership.
//
// The global interior grid is cut into tiles of nominal size mb x nb (edge
// tiles may be smaller). Tiles are distributed over a node_rows x node_cols
// grid of virtual processes in contiguous 2D blocks — the paper's "2D blocked
// data distribution [that] ensures the surface to volume ratio is minimized".
//
// Because node ownership is blocked by tile rows/columns, all tiles in one
// tile-row share the same north/south remoteness and all tiles in one
// tile-column share east/west remoteness; the CA ghost geometry relies on
// this alignment.
//
// Neighborhood queries are generic over (dti, dtj) in {-1,0,1}^2 — the four
// corner directions are as first-class as the faces, which spec-driven box
// stencils (diagonal taps) rely on for their every-superstep corner
// exchanges. Nothing in this class assumes an exactly-4-neighbor topology.
#pragma once

#include <stdexcept>

namespace repro::stencil {

struct TileCoord {
  int ti = 0;
  int tj = 0;
  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

class TileMap {
 public:
  /// rows/cols: global interior size; mb/nb: nominal tile size;
  /// node_rows/node_cols: the virtual process grid.
  TileMap(int rows, int cols, int mb, int nb, int node_rows, int node_cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int tiles_r() const { return tiles_r_; }
  int tiles_c() const { return tiles_c_; }
  int node_rows() const { return node_rows_; }
  int node_cols() const { return node_cols_; }
  int nodes() const { return node_rows_ * node_cols_; }

  /// Core height/width of tile (ti,tj); edge tiles absorb the remainder.
  int tile_h(int ti) const;
  int tile_w(int tj) const;

  /// Global coordinates of tile (ti,tj)'s core origin.
  int row0(int ti) const { return ti * mb_; }
  int col0(int tj) const { return tj * nb_; }

  /// Node-grid row owning tile-row ti (balanced contiguous blocks).
  int node_r(int ti) const { return block_owner(ti, tiles_r_, node_rows_); }
  int node_c(int tj) const { return block_owner(tj, tiles_c_, node_cols_); }

  /// Linear rank of the node owning tile (ti,tj) (row-major node grid).
  int rank_of(int ti, int tj) const {
    return node_r(ti) * node_cols_ + node_c(tj);
  }

  /// Whether (ti,tj) names a tile of this decomposition.
  bool valid(int ti, int tj) const {
    return ti >= 0 && ti < tiles_r_ && tj >= 0 && tj < tiles_c_;
  }

  /// Does tile (ti,tj) have a neighbor tile in the given direction, and is it
  /// owned by a different node? dti/dtj in {-1,0,1}.
  bool neighbor_exists(int ti, int tj, int dti, int dtj) const {
    return valid(ti + dti, tj + dtj);
  }
  bool neighbor_remote(int ti, int tj, int dti, int dtj) const {
    if (!neighbor_exists(ti, tj, dti, dtj)) return false;
    return rank_of(ti + dti, tj + dtj) != rank_of(ti, tj);
  }

  /// Count of existing 8-neighborhood neighbors of tile (ti,tj) — faces AND
  /// corners, since spec-driven box stencils exchange with diagonal tiles
  /// too. `remote_only` restricts the count to neighbors on other nodes.
  int neighbor_count(int ti, int tj, bool remote_only = false) const;

  /// Smallest tile extent in either dimension (bounds the legal CA step).
  int min_tile_extent() const;

  /// Number of tiles owned by `rank`.
  int tiles_on_rank(int rank) const;

 private:
  static int block_owner(int index, int count, int parts);
  static int tile_count(int n, int t);

  int rows_, cols_, mb_, nb_, tiles_r_, tiles_c_, node_rows_, node_cols_;
};

}  // namespace repro::stencil
