// Serial reference Jacobi solver: the ground truth every distributed
// implementation must match bit-for-bit (identical per-point operation
// order; Jacobi has no cross-point ordering, so determinism is exact).
#pragma once

#include "stencil/grid.hpp"
#include "stencil/kernel_opt.hpp"
#include "stencil/problem.hpp"

namespace repro::stencil {

/// Run `problem.iterations` Jacobi sweeps and return the final grid.
/// Shape problems dispatch to solve_serial_shape; spec problems run the
/// compiled atomic-stage program (solve_serial_spec in spec_kernel.hpp) and
/// return its z plane 0.
Grid2D solve_serial(const Problem& problem);

/// Serial solve through an optimized kernel variant (kernel_opt.hpp):
/// Scalar/Vector/Blocked sweep the whole interior once per iteration;
/// Temporal fuses the iterations in blocks of `fuse` steps via
/// jacobi5_temporal (no shrinking — the single "tile" is bounded by the
/// fixed Dirichlet ring on all four sides). Every variant returns a grid
/// bit-identical to solve_serial. Only the plain constant-coefficient
/// problem is supported; shape/coefficient problems throw.
Grid2D solve_serial_opt(const Problem& problem, KernelVariant variant,
                        const KernelTuning& tuning = {}, int fuse = 4);

/// One sweep: out.interior = stencil(in), ring copied through.
void serial_sweep(const Grid2D& in, Grid2D& out, const Stencil5& weights);

/// Variable-coefficient sweep; evaluation order per point matches the
/// constant-weight sweep, so constant planes give bit-identical results.
void serial_sweep_var(const Grid2D& in, Grid2D& out, const CoeffFn& coeff);

/// Serial reference for general shapes: runs on a radius-padded buffer whose
/// ghost ring (depth = shape.radius) holds `boundary` values. Used by
/// solve_serial when problem.shape is set.
Grid2D solve_serial_shape(const Problem& problem);

}  // namespace repro::stencil
