// Dense 2D grid with a one-cell Dirichlet boundary ring.
//
// The interior is rows x cols; indices i in [-1, rows] and j in [-1, cols]
// are valid, with the ring holding fixed boundary values. Used by the serial
// reference implementation and as the gather target for distributed runs.
#pragma once

#include <cstddef>
#include <functional>

#include "support/aligned_buffer.hpp"

namespace repro::stencil {

/// Value sources for grid cells, as functions of *global* coordinates.
/// `initial` is sampled on the interior, `boundary` on the ring (called with
/// i == -1, i == rows, j == -1, or j == cols).
using CellFn = std::function<double(long, long)>;

class Grid2D {
 public:
  Grid2D(int rows, int cols);

  /// Interior extent (the boundary ring is not counted).
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Cell access; i in [-1, rows] and j in [-1, cols] are valid (ring cells
  /// hold the Dirichlet boundary). No bounds checking.
  double& at(int i, int j) { return data_[index(i, j)]; }
  double at(int i, int j) const { return data_[index(i, j)]; }

  /// Fill interior from `initial` and the ring from `boundary`.
  void fill(const CellFn& initial, const CellFn& boundary);

  /// Max |a-b| over the interior. Grids must have identical shape.
  static double max_abs_diff(const Grid2D& a, const Grid2D& b);

  /// Sum of interior values (used as a cheap checksum in benches).
  double interior_sum() const;

 private:
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(i + 1) *
               static_cast<std::size_t>(cols_ + 2) +
           static_cast<std::size_t>(j + 1);
  }

  int rows_;
  int cols_;
  AlignedBuffer<double> data_;
};

}  // namespace repro::stencil
