// Generic spec kernel: execute a compiled atomic-stage program
// (spec/stages.hpp) over halo-padded multi-plane tile buffers, plus the
// spec-driven serial reference (solve_serial_spec) — the bit-exact oracle
// for every spec-driven distributed run.
//
// Buffer layout: ncomp planes of geom.size() doubles each, plane-major —
// component c's cell (i, j) lives at c * geom.size() + geom.idx(i, j)
// (the same layout as the variable-coefficient kCoeffPlanes buffers).
//
// Bit-exactness contract: the serial oracle and the distributed driver call
// the SAME apply_program_stage with the same per-point tap order, and Jacobi
// stages have no cross-point ordering, so any tiling/traversal yields
// identical bits. The recognized star5 program additionally dispatches the
// classic jacobi5 kernels (bit-identical by kernel_opt.hpp's rule).
#pragma once

#include <vector>

#include "spec/stages.hpp"
#include "stencil/grid.hpp"
#include "stencil/kernel_opt.hpp"
#include "stencil/problem.hpp"

namespace repro::stencil {

/// Compile problem.spec for problem.nz, validating the spec-path invariants
/// (spec set; initial3/boundary3 present; no shape/coefficient; nz matches
/// the rank). Throws std::invalid_argument on violations.
spec::CompiledProgram compile_problem_spec(const Problem& problem);

/// Sample the global Dirichlet/initial field for field plane `plane` (in
/// [0, nfield)) at global (gi, gj): initial3 inside the interior box (all
/// three axes), boundary3 outside — the "G" sampler of the exterior rules.
double spec_sample(const spec::CompiledProgram& prog, const Problem& problem,
                   int plane, long gi, long gj);

/// Initial value of component `comp` at global (gi, gj): field planes sample
/// G directly; intermediate components are 0 on the interior (dead — stage 1
/// rewrites them before any read) and hold their static exterior-rule
/// partial of the boundary data outside. Used identically by the serial
/// oracle and the distributed INIT tasks, which is what makes their
/// never-recomputed ring cells agree bit-for-bit.
double spec_init_value(const spec::CompiledProgram& prog,
                       const Problem& problem, int comp, long gi, long gj);

/// Apply stage `stage_idx` of the program over [r0,r1) x [c0,c1) in core
/// coordinates (bounds may reach into ghost regions; each stage reads at
/// most 1 cell deep). `in` and `out` are ncomp-plane buffers; components the
/// stage does not output must already hold their carried-over values in
/// `out` (callers copy in -> out first). Blocked/Vector variants change the
/// traversal only (bit-identical); the recognized star5 program dispatches
/// jacobi5_opt.
void apply_program_stage(const double* in, double* out, const TileGeom& geom,
                         const spec::CompiledProgram& prog, int stage_idx,
                         int r0, int r1, int c0, int c1,
                         KernelVariant kernel = KernelVariant::Scalar,
                         const KernelTuning& tuning = {});

/// The spec-driven serial reference: runs the SAME staged program as the
/// distributed driver on one ring-padded buffer and returns the nz interior
/// z planes (rank <= 2: exactly one). Ring cells hold boundary3, like the
/// distributed gather.
std::vector<Grid2D> solve_serial_spec(const Problem& problem);

}  // namespace repro::stencil
